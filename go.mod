module bbcast

go 1.22
