// Package bbcast is a Byzantine-tolerant broadcast protocol for wireless
// ad-hoc networks, reproducing Drabkin, Friedman and Segal, "Efficient
// Byzantine Broadcast in Wireless Ad-Hoc Networks" (DSN 2005).
//
// The protocol disseminates signed messages along a self-maintained overlay
// (a connected dominating set elected by unforgeable node ids), gossips
// message signatures among all nodes so everyone learns what exists even if
// Byzantine overlay nodes drop traffic, recovers missing messages with
// REQUEST/FIND-MISSING exchanges, and evicts detectably faulty nodes from
// the overlay using MUTE, VERBOSE and TRUST failure detectors. It requires
// only one correct node per one-hop neighbourhood and sends a single
// overlay's worth of traffic when nobody misbehaves — unlike the classical
// f+1-independent-overlays approach that pays (f+1)× always.
//
// # Running simulations
//
// The package ships a deterministic discrete-event wireless simulator
// (radio with collisions and fading fringe, CSMA MAC, mobility models) and
// two baseline protocols (plain flooding and f+1 overlays):
//
//	sc := bbcast.DefaultScenario()
//	sc.N = 100
//	sc.Adversaries = []bbcast.Adversaries{{Kind: bbcast.AdvMute, Count: 10}}
//	res, err := bbcast.Run(sc)
//	fmt.Println(res.Results)
//
// # Running over a real network
//
// The same protocol engine runs over UDP datagrams:
//
//	keys := bbcast.NewHMACKeyring(3, 42)
//	node, err := bbcast.NewNode(bbcast.DefaultProtocolConfig(), 0, keys,
//	    "0.0.0.0:9000", func(origin bbcast.NodeID, id bbcast.MsgID, payload []byte) {
//	        fmt.Printf("accepted %v from %d: %s\n", id, origin, payload)
//	    })
//	node.SetPeers([]string{"10.0.0.2:9000", "10.0.0.3:9000"})
//	node.Broadcast([]byte("hello"))
package bbcast

import (
	"bbcast/internal/core"
	"bbcast/internal/faultplan"
	"bbcast/internal/geo"
	"bbcast/internal/invariant"
	"bbcast/internal/loadgen"
	"bbcast/internal/mac"
	"bbcast/internal/metrics"
	"bbcast/internal/obsv"
	"bbcast/internal/overlay"
	"bbcast/internal/persist"
	"bbcast/internal/radio"
	"bbcast/internal/runner"
	"bbcast/internal/sig"
	"bbcast/internal/wire"
)

// NodeID identifies a device; ids are unforgeable (bound to signature keys).
type NodeID = wire.NodeID

// MsgID identifies an application message by originator and sequence number.
type MsgID = wire.MsgID

// Scenario describes a complete simulation experiment: network size and
// geometry, radio and MAC parameters, mobility, the protocol under test,
// adversaries, and workload.
type Scenario = runner.Scenario

// Adversaries places Byzantine nodes in a scenario.
type Adversaries = runner.Adversaries

// Workload describes a scenario's traffic injection.
type Workload = runner.Workload

// Result bundles a run's metrics with physical-layer statistics.
type Result = runner.Result

// Results is the metrics summary (delivery ratio, latency percentiles,
// per-kind transmission counts) embedded in Result.
type Results = metrics.Results

// Observer receives every protocol event (transmissions, receptions,
// injections, acceptances, role changes, suspicions, signature
// verifications, queue depths) exactly once at its source. Attach one to a
// simulation via Scenario.Observer; live UDP nodes always feed a built-in
// MetricsRegistry (see NewNode). Combine observers with
// bbcast/internal/obsv semantics: implementations must not block.
type Observer = obsv.Observer

// MetricsRegistry is a per-run or per-node metrics store (counters, gauges,
// bounded latency summaries) with Prometheus text and JSON exposition.
type MetricsRegistry = obsv.Registry

// NewMetricsRegistry returns an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return obsv.NewRegistry() }

// NewMetricsObserver returns an Observer that maintains the standard bbcast
// metric set (bbcast_tx_total, bbcast_rx_total, bbcast_accepts_total,
// suspicion counters, signature-verify latency, queue-depth gauges, …) in r.
// Attach it to Scenario.Observer and a simulation exports the same schema a
// live node serves from /metrics.
func NewMetricsObserver(r *MetricsRegistry) Observer { return obsv.NewRegistryObserver(r) }

// ProtocolConfig holds every parameter of the paper's protocol.
type ProtocolConfig = core.Config

// RadioConfig holds the physical-layer parameters.
type RadioConfig = radio.Config

// MACConfig holds the CSMA medium-access parameters.
type MACConfig = mac.Config

// Area is the rectangular deployment area, in metres.
type Area = geo.Rect

// Protocol selects the dissemination protocol a scenario runs.
type Protocol = runner.Protocol

// Protocols available to scenarios.
const (
	// ProtoByzCast is the paper's Byzantine-tolerant overlay broadcast.
	ProtoByzCast = runner.ProtoByzCast
	// ProtoFlooding is the classic flood baseline.
	ProtoFlooding = runner.ProtoFlooding
	// ProtoFPlusOne is the f+1 node-independent-overlays baseline.
	ProtoFPlusOne = runner.ProtoFPlusOne
)

// AdversaryKind selects a Byzantine behaviour.
type AdversaryKind = runner.AdversaryKind

// Adversary behaviours.
const (
	// AdvMute drops all forwards while still claiming overlay membership.
	AdvMute = runner.AdvMute
	// AdvMuteSilent additionally suppresses gossip advertisements.
	AdvMuteSilent = runner.AdvMuteSilent
	// AdvVerbose floods the network with valid-looking requests.
	AdvVerbose = runner.AdvVerbose
	// AdvTamper corrupts forwarded payloads (caught by signatures).
	AdvTamper = runner.AdvTamper
	// AdvSelective drops a random half of its forwards (selfishness).
	AdvSelective = runner.AdvSelective
	// AdvEquivocate signs conflicting payloads for its own messages under
	// one message id — the attack the agreement invariant catches.
	AdvEquivocate = runner.AdvEquivocate
	// AdvFlooder spams fresh validly-signed messages far above the workload
	// rate (resource exhaustion; bounded by admission control).
	AdvFlooder = runner.AdvFlooder
	// AdvReplayer re-transmits harvested packets verbatim.
	AdvReplayer = runner.AdvReplayer
	// AdvForgeSpammer sends junk signatures from nonexistent origins.
	AdvForgeSpammer = runner.AdvForgeSpammer
)

// AdversaryPlacement selects where adversaries are placed.
type AdversaryPlacement = runner.AdversaryPlacement

// Adversary placements.
const (
	// PlaceSpread distributes adversaries across the network.
	PlaceSpread = runner.PlaceSpread
	// PlaceDominators puts them on the nodes the election will make
	// overlay dominators — the paper's worst case.
	PlaceDominators = runner.PlaceDominators
)

// MobilityKind selects a scenario's movement model.
type MobilityKind = runner.MobilityKind

// Mobility models.
const (
	// MobGrid places nodes on a jittered grid (static).
	MobGrid = runner.MobGrid
	// MobUniform places nodes uniformly at random (static).
	MobUniform = runner.MobUniform
	// MobWaypoint is the random-waypoint model.
	MobWaypoint = runner.MobWaypoint
	// MobWalk is a reflecting random walk.
	MobWalk = runner.MobWalk
	// MobFerry is two disconnected clusters joined only by a shuttling
	// ferry node (delay-tolerant operation).
	MobFerry = runner.MobFerry
	// MobGaussMarkov is smooth temporally-correlated motion.
	MobGaussMarkov = runner.MobGaussMarkov
)

// OverlayKind selects the overlay maintenance protocol.
type OverlayKind = overlay.Kind

// Overlay maintenance protocols (§3.3).
const (
	// OverlayCDS is the Wu–Li connected-dominating-set marking protocol
	// with ID-based pruning.
	OverlayCDS = overlay.CDS
	// OverlayMISB is the maximal-independent-set-with-bridges protocol
	// (smaller overlays; the default).
	OverlayMISB = overlay.MISB
)

// Keyring signs and verifies on behalf of registered nodes (the PKI the
// paper presumes, §2).
type Keyring = sig.Scheme

// FaultPlan is a declarative, deterministic fault schedule for a scenario:
// timed crashes, recoveries, partitions, radio degradation and behaviour
// swaps, plus an optional churn generator. Plans round-trip through JSON
// (see ParseFaultPlan) for use with `bbsim -faults`.
type FaultPlan = faultplan.Plan

// FaultEvent is one scheduled fault in a FaultPlan.
type FaultEvent = faultplan.Event

// Churn generates Poisson crash/recover pairs inside a FaultPlan.
type Churn = faultplan.Churn

// Fault event kinds.
const (
	// FaultCrash takes a node's radio off the air.
	FaultCrash = faultplan.Crash
	// FaultRecover puts it back.
	FaultRecover = faultplan.Recover
	// FaultPartition splits the network into non-communicating groups.
	FaultPartition = faultplan.Partition
	// FaultHeal removes the partition.
	FaultHeal = faultplan.Heal
	// FaultDegradeRadio adds temporary per-reception loss.
	FaultDegradeRadio = faultplan.DegradeRadio
	// FaultSwapBehavior replaces a node's behaviour mid-run.
	FaultSwapBehavior = faultplan.SwapBehavior
	// FaultCrashAmnesia crashes a node and wipes its volatile state; on
	// recovery the node restarts from scratch (plus whatever its durable
	// store preserved, when ProtocolConfig.Persist is on).
	FaultCrashAmnesia = faultplan.CrashAmnesia
)

// PersistCorruption describes deterministic damage applied to an amnesiac
// node's durable log at recovery time (a torn tail record, flipped bits) to
// exercise the replay-truncate recovery path. Attach via
// Scenario.PersistCorrupt.
type PersistCorruption = persist.Corruption

// InvariantConfig selects the runtime invariant checks (agreement, validity,
// detector soundness, overlay recovery) a run performs. The zero value
// disables them all.
type InvariantConfig = invariant.Config

// InvariantViolation is one detected invariant breach, reported in
// Result.Violations alongside a reproducing command line in Result.Repro.
type InvariantViolation = invariant.Violation

// ParseFaultPlan decodes a JSON fault plan.
func ParseFaultPlan(data []byte) (*FaultPlan, error) { return faultplan.Parse(data) }

// LoadFaultPlan reads and decodes a JSON fault-plan file.
func LoadFaultPlan(path string) (*FaultPlan, error) { return faultplan.Load(path) }

// LoadGenConfig is a deterministic load-generator schedule: ramped or
// stepped offered load over concurrent senders with a payload-size sweep,
// under open-loop (periodic/Poisson) or closed-loop arrivals. Attached to
// Scenario.LoadGen it replaces the fixed-rate Workload; it round-trips
// through JSON (see ParseLoadGen) for use with `bbsim -load`.
type LoadGenConfig = loadgen.Config

// LoadGenStep is one segment of a LoadGenConfig schedule: an offered rate
// (optionally ramping linearly to EndRate) held for a duration.
type LoadGenStep = loadgen.Step

// Load-generator arrival models.
const (
	// ArrivalPeriodic injects at evenly spaced intervals.
	ArrivalPeriodic = loadgen.Periodic
	// ArrivalPoisson draws open-loop Poisson arrivals at the scheduled rate.
	ArrivalPoisson = loadgen.Poisson
	// ArrivalClosedLoop keeps a window of messages outstanding per sender,
	// injecting the next when a quorum of nodes delivers the previous.
	ArrivalClosedLoop = loadgen.ClosedLoop
)

// ParseLoadGen decodes and validates a JSON load-generator schedule.
func ParseLoadGen(data []byte) (*LoadGenConfig, error) { return loadgen.Parse(data) }

// LoadLoadGen reads and decodes a JSON load-generator schedule file.
func LoadLoadGen(path string) (*LoadGenConfig, error) { return loadgen.Load(path) }

// DefaultInvariantConfig enables the full invariant set with default
// windows; DefaultScenario already includes it.
func DefaultInvariantConfig() InvariantConfig { return invariant.DefaultConfig() }

// ReproCommand renders a one-line bbsim invocation reproducing the scenario,
// fault plan included.
func ReproCommand(sc Scenario) string { return runner.ReproCommand(sc) }

// DefaultScenario returns the base experiment configuration: 75 nodes on a
// jittered grid in a 1000×1000 m area with 250 m radios, five senders
// injecting one 256-byte message per second for a minute.
func DefaultScenario() Scenario { return runner.DefaultScenario() }

// DefaultProtocolConfig returns the protocol parameters used throughout the
// paper's experiments.
func DefaultProtocolConfig() ProtocolConfig { return core.DefaultConfig() }

// DefaultRadioConfig returns 802.11b-flavoured physical parameters.
func DefaultRadioConfig() RadioConfig { return radio.DefaultConfig() }

// DefaultMACConfig returns 802.11b-flavoured CSMA parameters.
func DefaultMACConfig() MACConfig { return mac.DefaultConfig() }

// Run executes a simulation scenario and returns its results. Runs are
// deterministic in Scenario.Seed.
func Run(sc Scenario) (Result, error) { return runner.Run(sc) }

// ReplicateSeed derives the seed for replicate k of a base seed (SplitMix64;
// replicate 0 keeps the base). Replicate streams are decorrelated and depend
// only on (base, k), never on how many workers execute them.
func ReplicateSeed(base int64, k int) int64 { return runner.ReplicateSeed(base, k) }

// RunReplicates executes count independent replicates of the scenario (seeds
// derived by ReplicateSeed) across a pool of workers — GOMAXPROCS when
// workers <= 0 — and returns per-replicate results in replicate order. Each
// simulation stays single-threaded; per-replicate results are bit-identical
// at any worker count.
func RunReplicates(sc Scenario, count, workers int) ([]Result, error) {
	return runner.Pool{Workers: workers}.RunReplicates(sc, count)
}

// AverageResults reduces per-replicate results to their mean (ratios and
// latencies become per-replicate means, counters mean counts). Violations
// and fault events are concatenated, not averaged.
func AverageResults(rs []Result) Result { return runner.Average(rs) }

// NewHMACKeyring returns the fast symmetric simulation keyring: node keys
// are derived deterministically from seed and verification consults an
// omniscient registry standing in for the PKI. Use it for simulations and
// tests; use NewEd25519Keyring for real deployments.
func NewHMACKeyring(n int, seed int64) Keyring { return sig.NewHMAC(n, seed) }

// NewEd25519Keyring returns a keyring of real Ed25519 keys for node ids
// 0..n-1, derived deterministically from seed.
func NewEd25519Keyring(n int, seed int64) (Keyring, error) { return sig.NewEd25519(n, seed) }

// GenerateKeystores writes one node-<id>.keys.json per node into dir — each
// device's private key plus the full PKI — for real deployments (see also
// cmd/bbkeys).
func GenerateKeystores(dir string, n int, seed int64) error {
	return sig.GenerateKeystores(dir, n, seed)
}

// LoadKeystore reads one node's key file; the result is a Keyring that can
// sign only as that node and verify everyone.
func LoadKeystore(path string) (Keyring, error) { return sig.LoadKeystore(path) }
