package bbcast_test

// The benchmark harness regenerates every experiment table from DESIGN.md
// (E1–E10 and ablations A1–A6): one benchmark per table, plus micro
// benchmarks for the hot substrate paths (wire codec, signatures, event
// engine, full simulation throughput).
//
// Experiment benchmarks run the Quick variant of each table per iteration
// (E1–E11, A1–A9) and report the row count via b.ReportMetric; run the
// full-size tables with `go run ./cmd/bbexp -all` (EXPERIMENTS.md records
// those results).

import (
	"bytes"
	"math/rand"
	"strconv"
	"testing"
	"time"

	"bbcast"
	"bbcast/internal/experiments"
	"bbcast/internal/geo"
	"bbcast/internal/mobility"
	"bbcast/internal/radio"
	"bbcast/internal/sim"
	"bbcast/internal/wire"
)

func benchTable(b *testing.B, fn func(experiments.Config) experiments.Table) {
	b.Helper()
	cfg := experiments.Config{Quick: true, Seed: 1}
	var rows int
	for i := 0; i < b.N; i++ {
		t := fn(cfg)
		rows = len(t.Rows)
	}
	b.ReportMetric(float64(rows), "rows")
}

func BenchmarkE1MessageOverhead(b *testing.B) { benchTable(b, experiments.E1MessageOverhead) }
func BenchmarkE2DeliveryRatio(b *testing.B)   { benchTable(b, experiments.E2Delivery) }
func BenchmarkE3Latency(b *testing.B)         { benchTable(b, experiments.E3Latency) }
func BenchmarkE4MuteDelivery(b *testing.B)    { benchTable(b, experiments.E4MuteDelivery) }
func BenchmarkE5MuteLatency(b *testing.B)     { benchTable(b, experiments.E5MuteLatency) }
func BenchmarkE6OverlayCompare(b *testing.B)  { benchTable(b, experiments.E6OverlayCompare) }
func BenchmarkE7Breakdown(b *testing.B)       { benchTable(b, experiments.E7Breakdown) }
func BenchmarkE8Mobility(b *testing.B)        { benchTable(b, experiments.E8Mobility) }
func BenchmarkE9Verbose(b *testing.B)         { benchTable(b, experiments.E9Verbose) }
func BenchmarkE10FPlusOne(b *testing.B)       { benchTable(b, experiments.E10FPlusOne) }

func BenchmarkA1GossipAggregation(b *testing.B) { benchTable(b, experiments.A1GossipAggregation) }
func BenchmarkA2Recovery(b *testing.B)          { benchTable(b, experiments.A2Recovery) }
func BenchmarkA3FindMissing(b *testing.B)       { benchTable(b, experiments.A3FindMissing) }
func BenchmarkA4Signatures(b *testing.B)        { benchTable(b, experiments.A4Signatures) }
func BenchmarkA5RateSweep(b *testing.B)         { benchTable(b, experiments.A5RateSweep) }
func BenchmarkA6Tamper(b *testing.B)            { benchTable(b, experiments.A6Tamper) }
func BenchmarkA7FDClasses(b *testing.B)         { benchTable(b, experiments.A7FDClasses) }
func BenchmarkA8Poisson(b *testing.B)           { benchTable(b, experiments.A8Poisson) }
func BenchmarkA9Capture(b *testing.B)           { benchTable(b, experiments.A9Capture) }
func BenchmarkE11FastPathTimeline(b *testing.B) { benchTable(b, experiments.E11FastPathTimeline) }
func BenchmarkE12Churn(b *testing.B)            { benchTable(b, experiments.E12Churn) }
func BenchmarkE13PartitionHeal(b *testing.B)    { benchTable(b, experiments.E13PartitionHeal) }

// BenchmarkSimulatedSecond measures how fast the simulator runs one virtual
// second of the default 75-node scenario (the sims-per-wallclock figure of
// merit for the whole substrate).
func BenchmarkSimulatedSecond(b *testing.B) {
	sc := bbcast.DefaultScenario()
	sc.Duration = time.Duration(b.N) * time.Second
	sc.Workload.End = sc.Duration
	b.ResetTimer()
	if _, err := bbcast.Run(sc); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkScenarioSizes measures full-run cost vs. network size.
func BenchmarkScenarioSizes(b *testing.B) {
	for _, n := range []int{25, 50, 100, 200} {
		b.Run("n="+strconv.Itoa(n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sc := bbcast.DefaultScenario()
				sc.N = n
				sc.Workload.End = 25 * time.Second
				sc.Duration = 30 * time.Second
				res, err := bbcast.Run(sc)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.DeliveryRatio, "delivery")
			}
		})
	}
}

func samplePacket() *wire.Packet {
	return &wire.Packet{
		Kind: wire.KindData, Sender: 7, TTL: 1, Target: wire.NoNode,
		Origin: 3, Seq: 41,
		Payload: make([]byte, 256),
		Sig:     make([]byte, 32),
		State: &wire.OverlayState{
			Active: true, Dominator: true,
			Neighbors:          []wire.NodeID{1, 2, 3, 4, 5, 6, 7, 8},
			ActiveNeighbors:    []wire.NodeID{2, 5},
			DominatorNeighbors: []wire.NodeID{5},
		},
		StateSig: make([]byte, 32),
	}
}

func BenchmarkWireMarshal(b *testing.B) {
	pkt := samplePacket()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = pkt.Marshal()
	}
}

func BenchmarkWireUnmarshal(b *testing.B) {
	buf := samplePacket().Marshal()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := wire.Unmarshal(buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWireClone(b *testing.B) {
	pkt := samplePacket()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = pkt.Clone()
	}
}

func BenchmarkHMACSign(b *testing.B) {
	keys := bbcast.NewHMACKeyring(4, 1)
	msg := make([]byte, 264)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = keys.Sign(1, msg)
	}
}

func BenchmarkHMACVerify(b *testing.B) {
	keys := bbcast.NewHMACKeyring(4, 1)
	msg := make([]byte, 264)
	tag := keys.Sign(1, msg)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if !keys.Verify(1, msg, tag) {
			b.Fatal("verify failed")
		}
	}
}

func BenchmarkEd25519Sign(b *testing.B) {
	keys, err := bbcast.NewEd25519Keyring(4, 1)
	if err != nil {
		b.Fatal(err)
	}
	msg := make([]byte, 264)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = keys.Sign(1, msg)
	}
}

func BenchmarkEd25519Verify(b *testing.B) {
	keys, err := bbcast.NewEd25519Keyring(4, 1)
	if err != nil {
		b.Fatal(err)
	}
	msg := make([]byte, 264)
	tag := keys.Sign(1, msg)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if !keys.Verify(1, msg, tag) {
			b.Fatal("verify failed")
		}
	}
}

// BenchmarkWireRoundTrip measures a full encode+decode cycle and asserts the
// decoded packet re-encodes to identical bytes every iteration, so the
// benchmark doubles as a codec-correctness test.
func BenchmarkWireRoundTrip(b *testing.B) {
	pkt := samplePacket()
	want := pkt.Marshal()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf := pkt.Marshal()
		got, err := wire.Unmarshal(buf)
		if err != nil {
			b.Fatal(err)
		}
		if len(got.Payload) != len(pkt.Payload) || got.Seq != pkt.Seq {
			b.Fatal("round trip lost fields")
		}
		if i == 0 && !bytes.Equal(buf, want) {
			b.Fatal("marshal not stable")
		}
	}
}

// BenchmarkRadioReception measures the physical layer end to end: one
// broadcast per iteration over a 25-node in-range cluster, running the
// engine until the reception batch resolves. The delivery count doubles as a
// correctness assertion.
func BenchmarkRadioReception(b *testing.B) {
	const n = 25
	eng := sim.New(1)
	area := geo.Rect{W: 500, H: 500}
	pts := make([]geo.Point, n)
	rng := rand.New(rand.NewSource(2))
	for i := range pts {
		pts[i] = geo.Point{X: 200 + rng.Float64()*100, Y: 200 + rng.Float64()*100}
	}
	model := mobility.NewStatic(area, pts)
	cfg := radio.DefaultConfig()
	cfg.PosUpdate = 0 // static placement; skip refresh timers
	m := radio.New(eng, model, n, cfg)
	defer m.Close()
	for i := 0; i < n; i++ {
		m.Attach(wire.NodeID(i), func(*wire.Packet) {})
	}
	pkt := samplePacket()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Broadcast(0, pkt)
		eng.RunAll()
	}
	b.StopTimer()
	st := m.Stats()
	if st.Transmissions != uint64(b.N) {
		b.Fatalf("transmissions = %d, want %d", st.Transmissions, b.N)
	}
	if st.Deliveries == 0 {
		b.Fatal("no deliveries — cluster not in range")
	}
	b.ReportMetric(float64(st.Deliveries)/float64(b.N), "deliveries/op")
}

// BenchmarkSimStep measures the heap pop + dispatch cost in isolation: all
// b.N events are pre-scheduled, then stepped through.
func BenchmarkSimStep(b *testing.B) {
	eng := sim.New(1)
	fired := 0
	fn := func() { fired++ }
	for i := 0; i < b.N; i++ {
		eng.At(time.Duration(i)*time.Microsecond, fn)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for eng.Step() {
	}
	b.StopTimer()
	if fired != b.N {
		b.Fatalf("fired %d of %d events", fired, b.N)
	}
}

func BenchmarkEngineEventThroughput(b *testing.B) {
	eng := sim.New(1)
	fired := 0
	var tick func()
	tick = func() {
		fired++
		if fired < b.N {
			eng.After(time.Microsecond, tick)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	eng.After(0, tick)
	eng.RunAll()
}
