package bbcast_test

import (
	"sync"
	"testing"
	"time"

	"bbcast"
)

func TestPublicSimulationAPI(t *testing.T) {
	sc := bbcast.DefaultScenario()
	sc.N = 30
	sc.Workload.End = 30 * time.Second
	sc.Duration = 40 * time.Second
	res, err := bbcast.Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if res.DeliveryRatio < 0.95 {
		t.Fatalf("delivery = %.3f", res.DeliveryRatio)
	}
	if res.String() == "" || res.KindBreakdown() == "" {
		t.Fatal("result rendering empty")
	}
}

func TestPublicAPIWithAdversaries(t *testing.T) {
	sc := bbcast.DefaultScenario()
	sc.N = 30
	sc.Adversaries = []bbcast.Adversaries{{Kind: bbcast.AdvMute, Count: 5}}
	sc.Placement = bbcast.PlaceDominators
	sc.Workload.End = 40 * time.Second
	sc.Duration = 55 * time.Second
	res, err := bbcast.Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if res.DeliveryRatio < 0.95 {
		t.Fatalf("delivery = %.3f under mute adversaries", res.DeliveryRatio)
	}
}

func TestPublicNodeAPI(t *testing.T) {
	keys := bbcast.NewHMACKeyring(2, 1)
	cfg := bbcast.DefaultProtocolConfig()
	cfg.GossipInterval = 100 * time.Millisecond
	cfg.MaintenanceInterval = 100 * time.Millisecond

	var mu sync.Mutex
	got := map[bbcast.MsgID]string{}
	deliver := func(origin bbcast.NodeID, id bbcast.MsgID, payload []byte) {
		mu.Lock()
		defer mu.Unlock()
		got[id] = string(payload)
	}

	a, err := bbcast.NewNode(cfg, 0, keys, "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := bbcast.NewNode(cfg, 1, keys, "127.0.0.1:0", deliver)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if err := a.SetPeers([]string{b.Addr().String()}); err != nil {
		t.Fatal(err)
	}
	if err := b.SetPeers([]string{a.Addr().String()}); err != nil {
		t.Fatal(err)
	}

	id := a.Broadcast([]byte("public api"))
	deadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		payload, ok := got[id]
		mu.Unlock()
		if ok {
			if payload != "public api" {
				t.Fatalf("payload = %q", payload)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("message never delivered over the public node API")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestKeyrings(t *testing.T) {
	h := bbcast.NewHMACKeyring(2, 1)
	tag := h.Sign(0, []byte("m"))
	if !h.Verify(0, []byte("m"), tag) {
		t.Fatal("HMAC keyring broken")
	}
	e, err := bbcast.NewEd25519Keyring(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	tag = e.Sign(1, []byte("m"))
	if !e.Verify(1, []byte("m"), tag) {
		t.Fatal("Ed25519 keyring broken")
	}
}
