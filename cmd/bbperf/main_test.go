package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"bbcast/internal/runner"
)

// fakeReport writes a v2 report file with the given serial figures and
// returns its path.
func fakeReport(t *testing.T, dir, name string, ns, allocs float64) string {
	t.Helper()
	rep := runner.BenchReport{
		Schema: runner.BenchSchema,
		Serial: runner.BenchArm{
			Workers: 1, Replicates: 8, Events: 50000,
			NsPerEvent: ns, AllocsPerEvent: allocs, BytesPerEvent: allocs * 100,
		},
		SimMSPerSimS: ns / 2000,
	}
	raw, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestGateExitCodes drives the gate end to end with pre-measured reports:
// identical reports pass (exit 0), a synthetically slowed current report
// fails (exit 1), garbage is a usage error (exit 2).
func TestGateExitCodes(t *testing.T) {
	dir := t.TempDir()
	base := fakeReport(t, dir, "BENCH_7.json", 5000, 20)
	same := fakeReport(t, dir, "same.json", 5000, 20)
	slow := fakeReport(t, dir, "slow.json", 12000, 31)

	var out, errw bytes.Buffer
	if code := run([]string{"gate", "-baseline", base, "-current", same}, &out, &errw); code != 0 {
		t.Fatalf("identical reports: exit %d, stderr %s stdout %s", code, errw.String(), out.String())
	}
	if !strings.Contains(out.String(), "PASS") {
		t.Errorf("pass output should say PASS, got %q", out.String())
	}

	out.Reset()
	if code := run([]string{"gate", "-baseline", base, "-current", slow}, &out, &errw); code != 1 {
		t.Fatalf("slowed report: exit %d, want 1; stdout %s", code, out.String())
	}
	if !strings.Contains(out.String(), "FAIL") || !strings.Contains(out.String(), "serial.ns_per_event") {
		t.Errorf("fail output should name the regressed metric, got %q", out.String())
	}

	if code := run([]string{"gate", "-baseline", filepath.Join(dir, "missing.json"), "-current", same}, &out, &errw); code != 2 {
		t.Errorf("missing baseline: exit %d, want 2", code)
	}
}

// TestGateFindsLatestBaseline: with no -baseline, the highest-numbered
// BENCH_<n>.json in -dir is used.
func TestGateFindsLatestBaseline(t *testing.T) {
	dir := t.TempDir()
	fakeReport(t, dir, "BENCH_2.json", 100, 20) // older and absurdly fast: would fail
	fakeReport(t, dir, "BENCH_9.json", 5000, 20)
	cur := fakeReport(t, dir, "cur.json", 5000, 20)

	var out, errw bytes.Buffer
	if code := run([]string{"gate", "-dir", dir, "-current", cur}, &out, &errw); code != 0 {
		t.Fatalf("exit %d, want 0 (should compare against BENCH_9, not BENCH_2); stdout %s", code, out.String())
	}
	if !strings.Contains(out.String(), "BENCH_9.json") {
		t.Errorf("output should name the chosen baseline, got %q", out.String())
	}
}

// TestGateEnvOverride: widening the tolerance via BBPERF_TOL_* turns a
// failing gate into a passing one.
func TestGateEnvOverride(t *testing.T) {
	dir := t.TempDir()
	base := fakeReport(t, dir, "BENCH_1.json", 5000, 20)
	slower := fakeReport(t, dir, "slower.json", 8000, 20) // +60% ns/event, same allocs

	var out, errw bytes.Buffer
	if code := run([]string{"gate", "-baseline", base, "-current", slower}, &out, &errw); code != 1 {
		t.Fatalf("without override: exit %d, want 1", code)
	}
	t.Setenv("BBPERF_TOL_NS_PER_EVENT", "1.0")
	t.Setenv("BBPERF_TOL_SIM_MS", "off")
	out.Reset()
	if code := run([]string{"gate", "-baseline", base, "-current", slower}, &out, &errw); code != 0 {
		t.Fatalf("with 100%% tolerance: exit %d, want 0; stdout %s", code, out.String())
	}
}

func TestUsageAndUnknown(t *testing.T) {
	var out, errw bytes.Buffer
	if code := run(nil, &out, &errw); code != 2 {
		t.Errorf("no args: exit %d, want 2", code)
	}
	if code := run([]string{"help"}, &out, &errw); code != 0 {
		t.Errorf("help: exit %d, want 0", code)
	}
	if code := run([]string{"frobnicate"}, &out, &errw); code != 2 {
		t.Errorf("unknown subcommand: exit %d, want 2", code)
	}
}
