// Command bbperf measures simulator performance and gates it against the
// committed BENCH_*.json trajectory.
//
//	bbperf measure -o report.json          # run the bench + knee sweep, emit bbcast-bench/v2
//	bbperf gate                            # measure, compare vs latest BENCH_<n>.json, exit 1 on regression
//	bbperf gate -baseline BENCH_8.json     # pin the baseline file
//	bbperf gate -current report.json       # gate a pre-measured report (no run)
//	bbperf gate -quick                     # CI shape: fewer replicates, same knee sweep
//
// The gate compares the serial arm's ns/event, allocs/event and bytes/event,
// the simulated-second figure, and the knee sweep's wall-clock and located
// knee rate. Tolerances come from internal/perfgate defaults, overridable via
// BBPERF_TOL_* environment variables ("off" disables a metric) — see that
// package for the metric classes and rationale.
//
// Exit status: 0 gate passes, 1 regressions found, 2 usage/measurement error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"bbcast/internal/perfgate"
	"bbcast/internal/runner"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	if len(args) == 0 {
		usage(stderr)
		return 2
	}
	switch args[0] {
	case "measure":
		return runMeasure(args[1:], stdout, stderr)
	case "gate":
		return runGate(args[1:], stdout, stderr)
	case "-h", "-help", "--help", "help":
		usage(stderr)
		return 0
	default:
		fmt.Fprintf(stderr, "bbperf: unknown subcommand %q\n", args[0])
		usage(stderr)
		return 2
	}
}

func usage(w io.Writer) {
	fmt.Fprint(w, `usage:
  bbperf measure [-o path] [-seed n] [-replicates n] [-duration d] [-parallel n] [-quick]
  bbperf gate    [-baseline path] [-current path] [-seed n] [-replicates n] [-quick]

measure runs the benchmark harness (serial/parallel sweep, simulated-second,
offered-load knee) and writes a bbcast-bench/v2 JSON report. gate measures
(or loads -current) and compares against the committed BENCH_<n>.json
trajectory, exiting 1 if any metric regressed past its tolerance
(BBPERF_TOL_* env vars override; "off" disables a metric).
`)
}

// measureFlags are shared between measure and gate's measuring path.
type measureFlags struct {
	seed       int64
	replicates int
	duration   time.Duration
	parallel   int
	quick      bool
}

func (m *measureFlags) register(fs *flag.FlagSet) {
	fs.Int64Var(&m.seed, "seed", 1, "base random seed")
	fs.IntVar(&m.replicates, "replicates", 32, "replicates per sweep arm")
	fs.DurationVar(&m.duration, "duration", 30*time.Second, "simulated duration per replicate")
	fs.IntVar(&m.parallel, "parallel", 0, "concurrent simulations (0 = GOMAXPROCS)")
	fs.BoolVar(&m.quick, "quick", false, "CI shape: 8 replicates of 10s (knee sweep shape unchanged)")
}

// measure runs the full v2 bench. The knee sweep always uses the
// gate-standard DefaultKneeOptions shape so wall-clock stays comparable with
// committed baselines; -quick only shrinks the replicate arms.
func (m measureFlags) measure() (runner.BenchReport, error) {
	if m.quick {
		m.replicates = 8
		m.duration = 10 * time.Second
	}
	sc := runner.DefaultScenario()
	sc.Name = "bench-default"
	sc.Seed = m.seed
	sc.Duration = m.duration
	sc.Workload.End = m.duration - 5*time.Second
	knee := runner.DefaultKneeOptions(m.seed)
	knee.Workers = m.parallel
	return runner.FullBench(sc, m.replicates, m.parallel, &knee)
}

func runMeasure(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("bbperf measure", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var m measureFlags
	m.register(fs)
	out := fs.String("o", "-", "output path ('-' for stdout)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	report, err := m.measure()
	if err != nil {
		fmt.Fprintln(stderr, "bbperf:", err)
		return 2
	}
	raw, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fmt.Fprintln(stderr, "bbperf:", err)
		return 2
	}
	raw = append(raw, '\n')
	if *out == "-" {
		stdout.Write(raw)
		return 0
	}
	if err := os.WriteFile(*out, raw, 0o644); err != nil {
		fmt.Fprintln(stderr, "bbperf:", err)
		return 2
	}
	return 0
}

func runGate(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("bbperf gate", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var m measureFlags
	m.register(fs)
	baseline := fs.String("baseline", "", "baseline report or BENCH_<n>.json wrapper (default: highest-numbered BENCH_*.json in -dir)")
	dir := fs.String("dir", ".", "directory scanned for BENCH_*.json when -baseline is unset")
	current := fs.String("current", "", "pre-measured current report to gate instead of running the bench")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	basePath := *baseline
	if basePath == "" {
		var err error
		if basePath, err = perfgate.LatestBaseline(*dir); err != nil {
			fmt.Fprintln(stderr, "bbperf:", err)
			return 2
		}
	}
	base, err := perfgate.LoadBaseline(basePath)
	if err != nil {
		fmt.Fprintln(stderr, "bbperf:", err)
		return 2
	}

	var cur runner.BenchReport
	if *current != "" {
		if cur, err = perfgate.LoadBaseline(*current); err != nil {
			fmt.Fprintln(stderr, "bbperf:", err)
			return 2
		}
	} else {
		fmt.Fprintf(stderr, "bbperf: measuring (baseline %s)...\n", basePath)
		if cur, err = m.measure(); err != nil {
			fmt.Fprintln(stderr, "bbperf:", err)
			return 2
		}
	}

	tol, err := perfgate.FromEnv(os.Getenv)
	if err != nil {
		fmt.Fprintln(stderr, "bbperf:", err)
		return 2
	}
	regs := perfgate.Compare(base, cur, tol)
	fmt.Fprintf(stdout, "baseline %s: serial %.0f ns/event, %.1f allocs/event; current: %.0f ns/event, %.1f allocs/event\n",
		basePath, base.Serial.NsPerEvent, base.Serial.AllocsPerEvent,
		cur.Serial.NsPerEvent, cur.Serial.AllocsPerEvent)
	if len(regs) == 0 {
		fmt.Fprintln(stdout, "perf gate: PASS")
		return 0
	}
	fmt.Fprintf(stdout, "perf gate: FAIL (%d regression(s))\n", len(regs))
	for _, r := range regs {
		fmt.Fprintln(stdout, "  "+r.String())
	}
	return 1
}
