package main

import "testing"

func TestRunDefaultsSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a simulation")
	}
	err := run([]string{"-n", "20", "-duration", "30s", "-breakdown",
		"-svg", t.TempDir() + "/t.svg", "-trace", t.TempDir() + "/t.jsonl"})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunFlagValidation(t *testing.T) {
	cases := [][]string{
		{"-proto", "bogus"},
		{"-overlay", "bogus"},
		{"-placement", "bogus"},
		{"-mobility", "bogus"},
	}
	for _, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

func TestRunAdversaries(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a simulation")
	}
	err := run([]string{"-n", "20", "-duration", "30s",
		"-mute", "2", "-tamper", "1", "-verbose", "1", "-selective", "1",
		"-placement", "dominators", "-proto", "byzcast", "-overlay", "cds"})
	if err != nil {
		t.Fatal(err)
	}
}
