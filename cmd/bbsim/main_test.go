package main

import (
	"os"
	"strings"
	"testing"
)

func TestRunDefaultsSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a simulation")
	}
	err := run([]string{"-n", "20", "-duration", "30s", "-breakdown",
		"-svg", t.TempDir() + "/t.svg", "-trace", t.TempDir() + "/t.jsonl"})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunFlagValidation(t *testing.T) {
	cases := [][]string{
		{"-proto", "bogus"},
		{"-overlay", "bogus"},
		{"-placement", "bogus"},
		{"-mobility", "bogus"},
	}
	for _, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

func TestRunAdversaries(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a simulation")
	}
	err := run([]string{"-n", "20", "-duration", "30s",
		"-mute", "2", "-tamper", "1", "-verbose", "1", "-selective", "1",
		"-placement", "dominators", "-proto", "byzcast", "-overlay", "cds"})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunInlineFaultPlan(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a simulation")
	}
	plan := `{"events":[{"at":"10s","kind":"crash","node":3},{"at":"18s","kind":"recover","node":3}]}`
	if err := run([]string{"-n", "20", "-duration", "30s", "-faults", plan}); err != nil {
		t.Fatal(err)
	}
}

func TestRunFaultPlanFromFile(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a simulation")
	}
	path := t.TempDir() + "/plan.json"
	plan := `{"churn":{"rate":0.3,"start":"5s","end":"20s"}}`
	if err := os.WriteFile(path, []byte(plan), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-n", "20", "-duration", "30s", "-faults", path}); err != nil {
		t.Fatal(err)
	}
}

func TestRunFaultPlanRejected(t *testing.T) {
	cases := [][]string{
		{"-faults", `{"events":[{"kind":"crash","node":1}]}`}, // missing at
		{"-faults", `{"events":[{"at":"5s","kind":"melt"}]}`}, // unknown kind
		{"-faults", "/definitely/not/there.json"},
		{"-n", "5", "-faults", `{"events":[{"at":"5s","kind":"crash","node":99}]}`}, // out of range
	}
	for _, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

func TestRunEquivocationExitsWithViolation(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a simulation")
	}
	// Two equivocators reinforcing each other's variants: a lone one only
	// splits the network transiently, so whether a violation fires is seed
	// luck (see the runner's TestEquivocationFiresAgreement).
	err := run([]string{"-n", "50", "-duration", "55s", "-equivocate", "2"})
	if err == nil {
		t.Fatal("equivocation run reported success")
	}
	if !strings.Contains(err.Error(), "invariant") {
		t.Fatalf("unexpected error: %v", err)
	}
	// The same run with checks disabled succeeds.
	if err := run([]string{"-n", "50", "-duration", "55s", "-equivocate", "2", "-no-invariants"}); err != nil {
		t.Fatal(err)
	}
}
