// Command bbsim runs one simulated broadcast scenario and prints its
// results.
//
// Examples:
//
//	bbsim -n 100 -rate 2 -duration 90s
//	bbsim -proto flooding -n 50
//	bbsim -mute 10 -placement dominators -no-fd
//	bbsim -mobility waypoint -speed 10
//	bbsim -faults plan.json
//	bbsim -faults '{"events":[{"at":"30s","kind":"crash","node":7}]}'
//	bbsim -sync -faults '{"churn":{"rate":0.2,"start":"15s","end":"75s","downtime":"20s","wipe":true}}'
//
// With -faults, the plan's events (crashes, recoveries, partitions, radio
// degradation, behaviour swaps, churn) execute during the run and the
// runtime invariant checker audits agreement, validity, detector soundness
// and overlay recovery. Violations fail the run (exit 1) and print a
// one-line command that reproduces them.
//
// Amnesiac crashes (event kind "crash-amnesia", or churn with "wipe": true)
// wipe the node's volatile state, so on recovery it restarts from scratch.
// -persist gives every node a durable store an amnesiac rejoiner restores
// its sequence number, delivered digests and suspicions from; -sync
// additionally lets it bulk-recover the messages it missed from one
// neighbour. -persist-tear and -persist-flip damage the durable log at
// recovery to exercise the replay-truncate and CRC-rejection paths.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"bbcast"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "bbsim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("bbsim", flag.ContinueOnError)
	var (
		n          = fs.Int("n", 75, "number of nodes")
		seed       = fs.Int64("seed", 1, "random seed (runs are deterministic per seed)")
		replicates = fs.Int("replicates", 1, "independent replicates to run (seeds derived from -seed via SplitMix64); results are averaged")
		parallel   = fs.Int("parallel", 0, "concurrent replicate simulations (0 = GOMAXPROCS); per-replicate results are identical at any setting")
		proto      = fs.String("proto", "byzcast", "protocol: byzcast | flooding | f+1")
		f          = fs.Int("f", 2, "tolerated failures for the f+1 baseline")
		area       = fs.Float64("area", 1000, "square area side in metres")
		rng        = fs.Float64("range", 250, "radio range in metres")
		rate       = fs.Float64("rate", 1, "injection rate δ in messages/second")
		senders    = fs.Int("senders", 5, "number of distinct senders")
		size       = fs.Int("size", 256, "payload size in bytes")
		duration   = fs.Duration("duration", 85*time.Second, "total simulated time")
		warmup     = fs.Duration("warmup", 15*time.Second, "time before the first injection")
		drain      = fs.Duration("drain", 10*time.Second, "time after the last injection")

		overlayKind = fs.String("overlay", "mis+b", "overlay maintainer: cds | mis+b")
		noFD        = fs.Bool("no-fd", false, "disable the failure detectors")
		noAdapt     = fs.Bool("no-adapt", false, "disable adaptive timing and bounded retransmission (static timers, no retry chain)")
		ed25519     = fs.Bool("ed25519", false, "use real Ed25519 signatures")

		persistOn   = fs.Bool("persist", false, "give every node a durable store: amnesiac rejoiners restore their sequence number, delivered-message digests and suspicions instead of restarting blank")
		syncOn      = fs.Bool("sync", false, "enable rejoin catch-up sync (SYNC-REQ/SYNC-RESP from one neighbour after a wipe); implies -persist")
		persistTear = fs.Bool("persist-tear", false, "tear the tail record off each amnesiac node's durable log at recovery (exercises replay-truncate)")
		persistFlip = fs.Int("persist-flip", 0, "flip this many seeded-random bits in each amnesiac node's durable log at recovery (exercises CRC rejection)")

		mute       = fs.Int("mute", 0, "mute Byzantine nodes")
		tamper     = fs.Int("tamper", 0, "payload-tampering Byzantine nodes")
		verbose    = fs.Int("verbose", 0, "request-spamming Byzantine nodes")
		selective  = fs.Int("selective", 0, "selfish 50%-dropping nodes")
		equivocate = fs.Int("equivocate", 0, "equivocating Byzantine sources (conflicting payloads, same id)")
		flooder    = fs.Int("flooder", 0, "message-flooding nodes (fresh signed spam at ~10x workload rate)")
		replayer   = fs.Int("replayer", 0, "packet-replaying nodes (re-send harvested traffic)")
		forge      = fs.Int("forge", 0, "junk-signature spamming nodes (nonexistent origins)")
		placement  = fs.String("placement", "spread", "adversary placement: spread | dominators")

		faults = fs.String("faults", "", "fault plan: a JSON file path, or inline JSON starting with '{'")
		load   = fs.String("load", "", "load-generator schedule replacing the fixed-rate workload: a JSON file path, or inline JSON starting with '{'")
		noInv  = fs.Bool("no-invariants", false, "disable the runtime invariant checker")

		mobility = fs.String("mobility", "grid", "mobility: grid | uniform | waypoint | walk | gauss-markov | ferry")
		speed    = fs.Float64("speed", 5, "node speed (m/s) for waypoint/walk")
		pause    = fs.Duration("pause", 2*time.Second, "waypoint pause time")

		breakdown  = fs.Bool("breakdown", false, "print per-kind transmission counts")
		svg        = fs.String("svg", "", "write an SVG of the final topology/overlay to this path")
		traceFile  = fs.String("trace", "", "write a JSONL event trace to this path")
		metricsOut = fs.String("metrics-out", "", "write the run's metrics registry as JSON to this path ('-' for stdout); same schema a live node serves at /metrics.json")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	sc := bbcast.DefaultScenario()
	sc.N = *n
	sc.Seed = *seed
	sc.Area = bbcast.Area{W: *area, H: *area}
	sc.Radio.Range = *rng
	sc.F = *f
	sc.UseEd25519 = *ed25519
	sc.Workload.Rate = *rate
	sc.Workload.Senders = *senders
	sc.Workload.PayloadSize = *size
	sc.Workload.Start = *warmup
	sc.Workload.End = *duration - *drain
	sc.Duration = *duration
	sc.Core.EnableFDs = !*noFD
	if *noAdapt {
		sc.Core.AdaptiveTiming = false
		sc.Core.RetryMaxAttempts = 0
	}
	sc.Core.Persist = *persistOn || *syncOn
	sc.Core.CatchUpSync = *syncOn
	if *persistFlip < 0 {
		return fmt.Errorf("-persist-flip must be >= 0, got %d", *persistFlip)
	}
	if *persistTear || *persistFlip > 0 {
		if !sc.Core.Persist {
			return fmt.Errorf("-persist-tear/-persist-flip need -persist or -sync (there is no durable log to damage otherwise)")
		}
		sc.PersistCorrupt = &bbcast.PersistCorruption{TearTail: *persistTear, FlipBits: *persistFlip}
	}
	sc.SnapshotSVG = *svg
	if *noInv {
		sc.Invariants = bbcast.InvariantConfig{}
	}
	if *faults != "" {
		var plan *bbcast.FaultPlan
		var err error
		if strings.HasPrefix(strings.TrimSpace(*faults), "{") {
			plan, err = bbcast.ParseFaultPlan([]byte(*faults))
		} else {
			plan, err = bbcast.LoadFaultPlan(*faults)
		}
		if err != nil {
			return err
		}
		sc.FaultPlan = plan
	}
	if *load != "" {
		var lg *bbcast.LoadGenConfig
		var err error
		if strings.HasPrefix(strings.TrimSpace(*load), "{") {
			lg, err = bbcast.ParseLoadGen([]byte(*load))
		} else {
			lg, err = bbcast.LoadLoadGen(*load)
		}
		if err != nil {
			return err
		}
		sc.LoadGen = lg
		sc.Workload = bbcast.Workload{}
		if sc.Duration < lg.End()+*drain {
			sc.Duration = lg.End() + *drain
		}
	}
	if *traceFile != "" {
		f, err := os.Create(*traceFile)
		if err != nil {
			return err
		}
		defer f.Close()
		sc.Trace = f
	}
	var registry *bbcast.MetricsRegistry
	if *metricsOut != "" {
		registry = bbcast.NewMetricsRegistry()
		sc.Observer = bbcast.NewMetricsObserver(registry)
	}

	switch *proto {
	case "byzcast":
		sc.Protocol = bbcast.ProtoByzCast
	case "flooding":
		sc.Protocol = bbcast.ProtoFlooding
	case "f+1":
		sc.Protocol = bbcast.ProtoFPlusOne
	default:
		return fmt.Errorf("unknown protocol %q", *proto)
	}
	switch *overlayKind {
	case "cds":
		sc.Core.Overlay = bbcast.OverlayCDS
	case "mis+b":
		sc.Core.Overlay = bbcast.OverlayMISB
	default:
		return fmt.Errorf("unknown overlay %q", *overlayKind)
	}
	switch *placement {
	case "spread":
		sc.Placement = bbcast.PlaceSpread
	case "dominators":
		sc.Placement = bbcast.PlaceDominators
	default:
		return fmt.Errorf("unknown placement %q", *placement)
	}
	switch *mobility {
	case "grid":
		sc.Mobility = bbcast.MobGrid
	case "uniform":
		sc.Mobility = bbcast.MobUniform
	case "waypoint":
		sc.Mobility = bbcast.MobWaypoint
		sc.Speed = *speed
		sc.Pause = *pause
	case "walk":
		sc.Mobility = bbcast.MobWalk
		sc.Speed = *speed
	case "gauss-markov":
		sc.Mobility = bbcast.MobGaussMarkov
		sc.Speed = *speed
	case "ferry":
		sc.Mobility = bbcast.MobFerry
		sc.Speed = *speed
	default:
		return fmt.Errorf("unknown mobility %q", *mobility)
	}
	for _, adv := range []struct {
		kind  bbcast.AdversaryKind
		count int
	}{
		{bbcast.AdvMute, *mute},
		{bbcast.AdvTamper, *tamper},
		{bbcast.AdvVerbose, *verbose},
		{bbcast.AdvSelective, *selective},
		{bbcast.AdvEquivocate, *equivocate},
		{bbcast.AdvFlooder, *flooder},
		{bbcast.AdvReplayer, *replayer},
		{bbcast.AdvForgeSpammer, *forge},
	} {
		if adv.count > 0 {
			sc.Adversaries = append(sc.Adversaries, bbcast.Adversaries{Kind: adv.kind, Count: adv.count})
		}
	}

	if *replicates < 1 {
		return fmt.Errorf("-replicates must be >= 1, got %d", *replicates)
	}
	// With several replicates, single-writer sinks (-trace, -svg, the
	// metrics registry) are kept on replicate 0 only; replicate 0 runs the
	// base seed, so its outputs match a plain single run.
	all, err := bbcast.RunReplicates(sc, *replicates, *parallel)
	if err != nil {
		return err
	}
	res := all[0]
	if *replicates > 1 {
		for k, r := range all {
			fmt.Printf("replicate %-3d seed=%-20d delivery=%.3f tx/msg=%.1f lat-mean=%s violations=%d\n",
				k, bbcast.ReplicateSeed(*seed, k), r.DeliveryRatio, r.TxPerMessage, r.LatMean.Round(time.Millisecond), len(r.Violations))
		}
		res = bbcast.AverageResults(all)
		fmt.Printf("aggregate over %d replicates:\n", *replicates)
	}
	if all[0].TraceErr != nil {
		fmt.Fprintf(os.Stderr, "bbsim: warning: trace is incomplete (first write error: %v)\n", all[0].TraceErr)
	}
	if registry != nil {
		// The ratio is only known once the run's eligible-receiver counts
		// are; exported here so the JSON dump is self-contained. The
		// registry observes replicate 0 only, so its gauge uses that run.
		registry.Gauge("bbcast_delivery_ratio").Set(all[0].Results.DeliveryRatio)
		if err := writeMetrics(*metricsOut, registry); err != nil {
			return err
		}
	}
	fmt.Println(res.Results.String())
	if len(res.FaultEvents) > 0 {
		fmt.Println("fault events:")
		for _, fe := range res.FaultEvents {
			fmt.Printf("  %-8s %s\n", fe.At, fe.Name)
		}
	}
	if len(res.Violations) > 0 {
		fmt.Fprintf(os.Stderr, "INVARIANT VIOLATIONS (%d):\n", len(res.Violations))
		for _, v := range res.Violations {
			fmt.Fprintf(os.Stderr, "  %s\n", v)
		}
		fmt.Fprintf(os.Stderr, "reproduce with:\n  %s\n", res.Repro)
		return fmt.Errorf("%d invariant violation(s)", len(res.Violations))
	}
	if *breakdown {
		fmt.Println(res.Results.KindBreakdown())
		fmt.Printf("phys: collisions=%d fringe-losses=%d half-duplex-drops=%d bytes=%d\n",
			res.Phys.Collisions, res.Phys.FringeLosses, res.Phys.HalfDuplexDrop, res.Phys.BytesOnAir)
		fmt.Printf("node: forwarded=%d gossips=%d requests=%d finds=%d served=%d bad-sigs=%d\n",
			res.Node.Forwarded, res.Node.GossipsSent, res.Node.RequestsSent,
			res.Node.FindsSent, res.Node.RecoveredByData, res.Node.BadSignatures)
		if len(sc.Adversaries) > 0 {
			fmt.Printf("adversaries detected by correct nodes: %d\n", res.AdversariesDetected)
		}
	}
	return nil
}

// writeMetrics dumps the registry as JSON to path, or stdout for "-".
func writeMetrics(path string, r *bbcast.MetricsRegistry) error {
	if path == "-" {
		return r.WriteJSON(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := r.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
