// Command bbkeys generates the per-node key files a real deployment needs:
// one node-<id>.keys.json per device, holding its Ed25519 private key and
// the full set of public keys (the PKI the paper presumes, §2).
//
//	bbkeys -n 10 -out ./keys           # generate keys for nodes 0..9
//	bbkeys -check ./keys/node-3.keys.json
package main

import (
	"crypto/rand"
	"flag"
	"fmt"
	"os"

	"bbcast/internal/sig"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "bbkeys:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("bbkeys", flag.ContinueOnError)
	n := fs.Int("n", 0, "number of nodes to generate keys for")
	out := fs.String("out", ".", "output directory")
	seed := fs.Int64("seed", 0, "deterministic seed (0 draws fresh entropy)")
	check := fs.String("check", "", "validate a key file instead of generating")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *check != "" {
		keys, err := sig.LoadKeystore(*check)
		if err != nil {
			return err
		}
		fmt.Printf("ok: node %d, %d public keys\n", keys.Self(), len(keys.Known()))
		return nil
	}
	if *n <= 0 {
		fs.Usage()
		return fmt.Errorf("pass -n <nodes> to generate or -check <file> to validate")
	}
	s := *seed
	if s == 0 {
		// A fixed default seed would make every unseeded deployment share
		// keys; draw real entropy instead.
		var b [8]byte
		if _, err := rand.Read(b[:]); err != nil {
			return fmt.Errorf("gather entropy: %w", err)
		}
		for _, v := range b {
			s = s<<8 | int64(v)
		}
	}
	if err := os.MkdirAll(*out, 0o700); err != nil {
		return err
	}
	if err := sig.GenerateKeystores(*out, *n, s); err != nil {
		return err
	}
	fmt.Printf("wrote %d key files to %s\n", *n, *out)
	return nil
}
