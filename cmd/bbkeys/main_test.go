package main

import (
	"testing"

	"bbcast/internal/sig"
)

func TestGenerateAndCheck(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-n", "2", "-out", dir, "-seed", "5"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-check", sig.KeystorePath(dir, 1)}); err != nil {
		t.Fatal(err)
	}
}

func TestGenerateUnseededUsesEntropy(t *testing.T) {
	dirA, dirB := t.TempDir(), t.TempDir()
	if err := run([]string{"-n", "1", "-out", dirA}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-n", "1", "-out", dirB}); err != nil {
		t.Fatal(err)
	}
	a, err := sig.LoadKeystore(sig.KeystorePath(dirA, 0))
	if err != nil {
		t.Fatal(err)
	}
	b, err := sig.LoadKeystore(sig.KeystorePath(dirB, 0))
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("m")
	if b.Verify(0, msg, a.Sign(0, msg)) {
		t.Fatal("two unseeded deployments produced identical keys")
	}
}

func TestNoArgsErrors(t *testing.T) {
	if err := run(nil); err == nil {
		t.Fatal("no-op invocation should error")
	}
}

func TestCheckMissingFile(t *testing.T) {
	if err := run([]string{"-check", t.TempDir() + "/nope.json"}); err == nil {
		t.Fatal("missing key file accepted")
	}
}
