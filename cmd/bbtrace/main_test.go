package main

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestAnalyzeFile(t *testing.T) {
	path := t.TempDir() + "/trace.jsonl"
	content := `{"t":1000000,"node":0,"type":"inject","msg":"0/1"}
{"t":2000000,"node":1,"type":"accept","msg":"0/1"}
{"t":1000000,"node":0,"type":"tx","kind":"data","msg":"0/1"}
`
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errb bytes.Buffer
	if err := run([]string{path}, &out, &errb); err != nil {
		t.Fatal(err)
	}
	if errb.Len() != 0 {
		t.Fatalf("clean trace produced a warning: %q", errb.String())
	}
}

func TestUsageErrors(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run(nil, &out, &errb); err == nil {
		t.Fatal("missing argument accepted")
	}
	if err := run([]string{"/definitely/not/there.jsonl"}, &out, &errb); err == nil {
		t.Fatal("missing file accepted")
	}
	if err := run([]string{"explain", "-msg", "1/1", "/nope"}, &out, &errb); err == nil {
		t.Fatal("explain without -node accepted")
	}
}

// truncatedOffset computes where the mid-line-truncated final line of the
// fixture starts, so the tests track the fixture instead of hard-coding it.
func truncatedOffset(t *testing.T) int {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("testdata", "truncated.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	return bytes.LastIndexByte(data, '\n') + 1
}

func TestSummaryWarnsOnTruncatedTrace(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run([]string{filepath.Join("testdata", "truncated.jsonl")}, &out, &errb); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out.String(), "events: 2") {
		t.Fatalf("summary did not report the decodable events:\n%s", out.String())
	}
	want := fmt.Sprintf("byte offset %d", truncatedOffset(t))
	if !strings.Contains(errb.String(), want) || !strings.Contains(errb.String(), "1 undecodable") {
		t.Fatalf("stderr = %q, want warning mentioning %q", errb.String(), want)
	}
}

func TestSummaryErrorsOnZeroDecodableEvents(t *testing.T) {
	var out, errb bytes.Buffer
	err := run([]string{filepath.Join("testdata", "garbage.jsonl")}, &out, &errb)
	if err == nil || !strings.Contains(err.Error(), "no decodable events") {
		t.Fatalf("err = %v, want no-decodable-events error", err)
	}
	// The warning still localizes the damage: first bad line is at offset 0.
	if !strings.Contains(errb.String(), "byte offset 0") {
		t.Fatalf("stderr = %q, want byte offset 0", errb.String())
	}
}

func TestSummaryErrorsOnEmptyTrace(t *testing.T) {
	empty := filepath.Join(t.TempDir(), "empty.jsonl")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errb bytes.Buffer
	err := run([]string{empty}, &out, &errb)
	if err == nil || !strings.Contains(err.Error(), "no decodable events") {
		t.Fatalf("err = %v, want no-decodable-events error", err)
	}
	if out.Len() != 0 {
		t.Fatalf("empty trace still printed a report:\n%s", out.String())
	}
}

func TestLineageWarnsAndReportsOnTruncatedTrace(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run([]string{"lineage", filepath.Join("testdata", "truncated.jsonl")}, &out, &errb); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out.String(), "msg 1/1") {
		t.Fatalf("lineage report missing message:\n%s", out.String())
	}
	if !strings.Contains(errb.String(), fmt.Sprintf("byte offset %d", truncatedOffset(t))) {
		t.Fatalf("stderr = %q, want truncation warning", errb.String())
	}
}

func TestLineageErrorsOnGarbageTrace(t *testing.T) {
	var out, errb bytes.Buffer
	err := run([]string{"lineage", filepath.Join("testdata", "garbage.jsonl")}, &out, &errb)
	if err == nil || !strings.Contains(err.Error(), "no decodable events") {
		t.Fatalf("err = %v, want no-decodable-events error", err)
	}
}

func TestExplainDelivered(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "run.jsonl")
	lines := []string{
		`{"t":1000000,"node":1,"type":"inject","msg":"1/1"}`,
		`{"t":1000000,"node":1,"type":"tx","kind":"data","msg":"1/1","frame":1,"hops":1,"cause":"origin"}`,
		`{"t":2000000,"node":2,"type":"rx","kind":"data","msg":"1/1","frame":1,"hops":1,"cause":"origin"}`,
		`{"t":2000000,"node":2,"type":"accept","msg":"1/1","frame":1,"hops":1,"cause":"origin"}`,
		`{"t":3000000,"node":2,"type":"tx","kind":"data","msg":"1/1","frame":2,"parent":1,"hops":2,"cause":"origin-relay"}`,
		`{"t":4000000,"node":3,"type":"rx","kind":"data","msg":"1/1","frame":2,"hops":2,"cause":"origin-relay"}`,
		`{"t":4000000,"node":3,"type":"accept","msg":"1/1","frame":2,"hops":2,"cause":"origin-relay"}`,
	}
	if err := os.WriteFile(path, []byte(strings.Join(lines, "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errb bytes.Buffer
	if err := run([]string{"explain", "-msg", "1/1", "-node", "3", path}, &out, &errb); err != nil {
		t.Fatalf("run: %v", err)
	}
	got := out.String()
	if !strings.Contains(got, "delivered") || !strings.Contains(got, "frame 2") || !strings.Contains(got, "frame 1") {
		t.Fatalf("explain did not walk the frame chain:\n%s", got)
	}

	// A node absent from the accept set is explained as a loss.
	out.Reset()
	if err := run([]string{"explain", "-msg", "1/1", "-node", "9", path}, &out, &errb); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out.String(), "never delivered") {
		t.Fatalf("explain for non-deliverer:\n%s", out.String())
	}
}

func TestChromeExport(t *testing.T) {
	dir := t.TempDir()
	outPath := filepath.Join(dir, "chrome.json")
	var out, errb bytes.Buffer
	err := run([]string{"lineage", "-chrome", outPath, filepath.Join("testdata", "truncated.jsonl")}, &out, &errb)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	data, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(data, []byte(`"traceEvents"`)) {
		t.Fatalf("chrome export missing traceEvents:\n%s", data)
	}
}
