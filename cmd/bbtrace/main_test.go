package main

import (
	"os"
	"testing"
)

func TestAnalyzeFile(t *testing.T) {
	path := t.TempDir() + "/trace.jsonl"
	content := `{"t":1000000,"node":0,"type":"inject","msg":"0/1"}
{"t":2000000,"node":1,"type":"accept","msg":"0/1"}
{"t":1000000,"node":0,"type":"tx","kind":"data","msg":"0/1"}
`
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{path}); err != nil {
		t.Fatal(err)
	}
}

func TestUsageErrors(t *testing.T) {
	if err := run(nil); err == nil {
		t.Fatal("missing argument accepted")
	}
	if err := run([]string{"/definitely/not/there.jsonl"}); err == nil {
		t.Fatal("missing file accepted")
	}
}
