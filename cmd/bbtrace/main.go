// Command bbtrace digests a JSONL event trace produced by `bbsim -trace`.
//
//	bbsim -n 50 -trace /tmp/run.jsonl
//	bbtrace /tmp/run.jsonl                       # propagation summary
//	bbtrace lineage /tmp/run.jsonl               # per-message dissemination DAGs
//	bbtrace lineage -chrome /tmp/run.json /tmp/run.jsonl
//	bbtrace explain -msg 1/3 -node 42 /tmp/run.jsonl
//
// The summary reports per-message propagation times, transmission counts by
// kind and overlay role churn. The lineage report reconstructs each
// message's dissemination DAG: phase latencies, hop-count distributions,
// data-path vs gossip-recovery delivery attribution and loss-site
// localization. Explain answers "why was this delivery late" / "why did this
// node never deliver" for one (message, node) pair. The -chrome flag
// additionally exports the DAGs as Chrome trace-event JSON for
// about:tracing or Perfetto.
//
// Truncated or corrupt traces are reported, not ignored: undecodable lines
// produce a warning with the byte offset of the first one, and a trace with
// zero decodable events is an error.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"bbcast/internal/trace"
	"bbcast/internal/wire"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "bbtrace:", err)
		os.Exit(1)
	}
}

const usage = `usage: bbtrace [summary] <trace.jsonl>
       bbtrace lineage [-chrome <out.json>] <trace.jsonl>
       bbtrace explain -msg <origin/seq> -node <id> <trace.jsonl>`

func run(args []string, stdout, stderr io.Writer) error {
	if len(args) == 0 {
		return fmt.Errorf("%s", usage)
	}
	switch args[0] {
	case "lineage":
		return runLineage(args[1:], stdout, stderr)
	case "explain":
		return runExplain(args[1:], stdout, stderr)
	case "summary":
		args = args[1:]
	}
	if len(args) != 1 {
		return fmt.Errorf("%s", usage)
	}
	f, err := os.Open(args[0])
	if err != nil {
		return err
	}
	defer f.Close()
	analysis, err := trace.Analyze(f)
	if err != nil {
		return err
	}
	warnDecode(stderr, trace.DecodeStats{
		Decoded:        analysis.Events,
		Undecodable:    analysis.Undecodable,
		FirstBadOffset: analysis.FirstBadOffset,
	})
	if analysis.Events == 0 {
		return fmt.Errorf("%s: no decodable events", args[0])
	}
	fmt.Fprint(stdout, analysis.Summary())
	return nil
}

func runLineage(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("lineage", flag.ContinueOnError)
	fs.SetOutput(stderr)
	chrome := fs.String("chrome", "", "also export Chrome trace-event JSON to this path")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("%s", usage)
	}
	l, err := loadLineage(fs.Arg(0), stderr)
	if err != nil {
		return err
	}
	fmt.Fprint(stdout, l.Report())
	if *chrome != "" {
		out, err := os.Create(*chrome)
		if err != nil {
			return err
		}
		if err := l.ChromeTrace(out); err != nil {
			out.Close()
			return err
		}
		if err := out.Close(); err != nil {
			return err
		}
		fmt.Fprintf(stderr, "bbtrace: wrote Chrome trace to %s (load in about:tracing or Perfetto)\n", *chrome)
	}
	return nil
}

func runExplain(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("explain", flag.ContinueOnError)
	fs.SetOutput(stderr)
	msg := fs.String("msg", "", "message id as origin/seq (required)")
	node := fs.Uint("node", 0, "node id (required)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 || *msg == "" {
		return fmt.Errorf("%s", usage)
	}
	nodeSet := false
	fs.Visit(func(f *flag.Flag) {
		if f.Name == "node" {
			nodeSet = true
		}
	})
	if !nodeSet {
		return fmt.Errorf("%s", usage)
	}
	l, err := loadLineage(fs.Arg(0), stderr)
	if err != nil {
		return err
	}
	fmt.Fprint(stdout, l.Explain(*msg, wire.NodeID(*node)))
	return nil
}

// loadLineage decodes a trace file and builds its lineage, enforcing the
// decode-health contract shared by every subcommand.
func loadLineage(path string, stderr io.Writer) (*trace.Lineage, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	events, stats, err := trace.Decode(f)
	if err != nil {
		return nil, err
	}
	warnDecode(stderr, stats)
	if stats.Decoded == 0 {
		return nil, fmt.Errorf("%s: no decodable events", path)
	}
	return trace.BuildLineage(events, stats), nil
}

// warnDecode surfaces lossy decodes on stderr so a truncated trace is never
// mistaken for a quiet run.
func warnDecode(stderr io.Writer, stats trace.DecodeStats) {
	if stats.Undecodable > 0 {
		fmt.Fprintf(stderr, "bbtrace: warning: %d undecodable line(s), first at byte offset %d (truncated or corrupt trace?)\n",
			stats.Undecodable, stats.FirstBadOffset)
	}
}
