// Command bbtrace digests a JSONL event trace produced by `bbsim -trace`:
// per-message propagation times, transmission counts by kind, and overlay
// role churn.
//
//	bbsim -n 50 -trace /tmp/run.jsonl
//	bbtrace /tmp/run.jsonl
package main

import (
	"fmt"
	"os"

	"bbcast/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "bbtrace:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: bbtrace <trace.jsonl>")
	}
	f, err := os.Open(args[0])
	if err != nil {
		return err
	}
	defer f.Close()
	analysis, err := trace.Analyze(f)
	if err != nil {
		return err
	}
	fmt.Print(analysis.Summary())
	return nil
}
