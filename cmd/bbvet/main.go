// Command bbvet runs the repo's project-specific static analyzers over Go
// package patterns and fails on any finding:
//
//	determinism   no wall-clock time, global math/rand or order-leaking map
//	              iteration in simulation-deterministic packages
//	obsvonce      obsv.Observer events emitted only from their designated
//	              source functions (the PR 2 emission table)
//	boundedstate  every map-typed field in internal/core is capped or
//	              //bbvet:bounded-by annotated (the PR 4 caps table)
//	detflow       interprocedural determinism: no det-package call chain
//	              reaches wall clock, global rand or an order-dependent map
//	              range through helpers the direct checks cannot see
//	ordering      internal/core packet ingress hits token-bucket admission
//	              and dedup before any sig verify (the PR 4 contract)
//	errflow       no dropped, discarded or overwritten errors from persist
//	              and transport writes (the PR 9 latch discipline)
//
// Usage:
//
//	go run ./cmd/bbvet ./...
//	go run ./cmd/bbvet -run determinism,obsvonce ./internal/core
//	go run ./cmd/bbvet -json ./...
//	go run ./cmd/bbvet -sarif bbvet.sarif ./...
//
// -json replaces the text lines on stdout with a JSON array; -sarif
// additionally writes a SARIF 2.1.0 file for GitHub code scanning. Exit
// status: 0 clean, 1 findings, 2 load/usage error.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"bbcast/internal/analysis"
	"bbcast/internal/analysis/boundedstate"
	"bbcast/internal/analysis/determinism"
	"bbcast/internal/analysis/detflow"
	"bbcast/internal/analysis/errflow"
	"bbcast/internal/analysis/obsvonce"
	"bbcast/internal/analysis/ordering"
)

var all = []*analysis.Analyzer{
	determinism.Analyzer,
	obsvonce.Analyzer,
	boundedstate.Analyzer,
	detflow.Analyzer,
	ordering.Analyzer,
	errflow.Analyzer,
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("bbvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	runList := fs.String("run", "", "comma-separated analyzer subset (default: all)")
	dir := fs.String("C", ".", "module directory to analyze from")
	jsonOut := fs.Bool("json", false, "write findings to stdout as JSON instead of text")
	sarifPath := fs.String("sarif", "", "also write findings to this file as SARIF 2.1.0")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: bbvet [-run names] [-C dir] [-json] [-sarif file] [packages]\n\nanalyzers:\n")
		for _, a := range all {
			fmt.Fprintf(stderr, "  %-12s %s\n", a.Name, a.Doc)
		}
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	analyzers := all
	if *runList != "" {
		byName := map[string]*analysis.Analyzer{}
		for _, a := range all {
			byName[a.Name] = a
		}
		analyzers = nil
		for _, name := range strings.Split(*runList, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(stderr, "bbvet: unknown analyzer %q\n", name)
				return 2
			}
			analyzers = append(analyzers, a)
		}
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	moduleDir, err := filepath.Abs(*dir)
	if err != nil {
		fmt.Fprintf(stderr, "bbvet: %v\n", err)
		return 2
	}
	pkgs, err := analysis.Load(moduleDir, patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "bbvet: %v\n", err)
		return 2
	}
	diags, err := analysis.Run(pkgs, analyzers)
	if err != nil {
		fmt.Fprintf(stderr, "bbvet: %v\n", err)
		return 2
	}
	if *jsonOut {
		if err := analysis.WriteJSON(stdout, moduleDir, diags); err != nil {
			fmt.Fprintf(stderr, "bbvet: %v\n", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d)
		}
	}
	if *sarifPath != "" {
		f, err := os.Create(*sarifPath)
		if err != nil {
			fmt.Fprintf(stderr, "bbvet: %v\n", err)
			return 2
		}
		werr := analysis.WriteSARIF(f, moduleDir, analyzers, diags)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			fmt.Fprintf(stderr, "bbvet: write %s: %v\n", *sarifPath, werr)
			return 2
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "bbvet: %d finding(s) in %d package(s)\n", len(diags), len(pkgs))
		return 1
	}
	return 0
}
