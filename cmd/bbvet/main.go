// Command bbvet runs the repo's project-specific static analyzers over Go
// package patterns and fails on any finding:
//
//	determinism   no wall-clock time, global math/rand or order-leaking map
//	              iteration in simulation-deterministic packages
//	obsvonce      obsv.Observer events emitted only from their designated
//	              source functions (the PR 2 emission table)
//	boundedstate  every map-typed field in internal/core is capped or
//	              //bbvet:bounded-by annotated (the PR 4 caps table)
//
// Usage:
//
//	go run ./cmd/bbvet ./...
//	go run ./cmd/bbvet -run determinism,obsvonce ./internal/core
//
// Exit status: 0 clean, 1 findings, 2 load/usage error.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"bbcast/internal/analysis"
	"bbcast/internal/analysis/boundedstate"
	"bbcast/internal/analysis/determinism"
	"bbcast/internal/analysis/obsvonce"
)

var all = []*analysis.Analyzer{
	determinism.Analyzer,
	obsvonce.Analyzer,
	boundedstate.Analyzer,
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("bbvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	runList := fs.String("run", "", "comma-separated analyzer subset (default: all)")
	dir := fs.String("C", ".", "module directory to analyze from")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: bbvet [-run names] [-C dir] [packages]\n\nanalyzers:\n")
		for _, a := range all {
			fmt.Fprintf(stderr, "  %-12s %s\n", a.Name, a.Doc)
		}
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	analyzers := all
	if *runList != "" {
		byName := map[string]*analysis.Analyzer{}
		for _, a := range all {
			byName[a.Name] = a
		}
		analyzers = nil
		for _, name := range strings.Split(*runList, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(stderr, "bbvet: unknown analyzer %q\n", name)
				return 2
			}
			analyzers = append(analyzers, a)
		}
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analysis.Load(*dir, patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "bbvet: %v\n", err)
		return 2
	}
	diags, err := analysis.Run(pkgs, analyzers)
	if err != nil {
		fmt.Fprintf(stderr, "bbvet: %v\n", err)
		return 2
	}
	for _, d := range diags {
		fmt.Fprintln(stdout, d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "bbvet: %d finding(s) in %d package(s)\n", len(diags), len(pkgs))
		return 1
	}
	return 0
}
