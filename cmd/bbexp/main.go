// Command bbexp regenerates the paper-reproduction experiment tables
// (DESIGN.md E1–E15 and ablations A1–A9).
//
// Usage:
//
//	bbexp -all                  # run the full suite (minutes)
//	bbexp -exp E4               # run one experiment
//	bbexp -all -quick           # shrunken sweeps for a fast smoke run
//	bbexp -all -parallel 8      # cap the worker pool at 8 simulations
//	bbexp -list                 # list experiment ids
//	bbexp -bench BENCH.json     # measure simulator throughput + sweep speedup
//
// Replicates of every experiment scenario run concurrently on a worker pool
// (-parallel, default GOMAXPROCS). Each simulation remains single-threaded
// and bit-identical: per-replicate seeds are derived from the base seed with
// SplitMix64, so results never depend on the worker count.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"bbcast/internal/experiments"
	"bbcast/internal/runner"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "bbexp:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("bbexp", flag.ContinueOnError)
	all := fs.Bool("all", false, "run the full experiment suite")
	exp := fs.String("exp", "", "run one experiment by id (e.g. E4)")
	quick := fs.Bool("quick", false, "shrink sweeps and durations")
	list := fs.Bool("list", false, "list experiment ids")
	seed := fs.Int64("seed", 1, "base random seed")
	parallel := fs.Int("parallel", 0, "concurrent simulations (0 = GOMAXPROCS); per-replicate results are identical at any setting")
	bench := fs.String("bench", "", "write a machine-readable benchmark report (events/sec, ns/event, allocs/event, sweep speedup, knee) to this path ('-' for stdout)")
	benchN := fs.Int("bench-replicates", 32, "replicates for the -bench sweep")
	benchDur := fs.Duration("bench-duration", 30*time.Second, "simulated duration per -bench replicate")
	benchKnee := fs.Bool("bench-knee", true, "include the offered-load knee sweep in the -bench report")
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg := experiments.Config{Quick: *quick, Seed: *seed, Parallel: *parallel}

	switch {
	case *bench != "":
		return runBench(*bench, *seed, *benchN, *benchDur, *parallel, *benchKnee)
	case *list:
		fmt.Println(strings.Join(experiments.IDs(), " "))
		return nil
	case *exp != "":
		table, ok := experiments.ByID(*exp, cfg)
		if !ok {
			return fmt.Errorf("unknown experiment %q (use -list)", *exp)
		}
		fmt.Println(table)
		return nil
	case *all:
		for _, table := range experiments.All(cfg) {
			fmt.Println(table)
		}
		return nil
	default:
		fs.Usage()
		return fmt.Errorf("nothing to do: pass -all, -exp <id>, -bench <path>, or -list")
	}
}

// runBench measures simulator throughput on the default scenario: a serial
// sweep and a parallel sweep over identical replicates, the simulated-second
// figure, and (unless disabled) the offered-load knee sweep, reported as JSON
// (the BENCH_<pr>.json schema; see EXPERIMENTS.md).
func runBench(path string, seed int64, replicates int, dur time.Duration, workers int, knee bool) error {
	sc := runner.DefaultScenario()
	sc.Name = "bench-default"
	sc.Seed = seed
	sc.Duration = dur
	sc.Workload.End = dur - 5*time.Second
	var kneeOpt *runner.KneeOptions
	if knee {
		o := runner.DefaultKneeOptions(seed)
		o.Workers = workers
		kneeOpt = &o
	}
	report, err := runner.FullBench(sc, replicates, workers, kneeOpt)
	if err != nil {
		return err
	}
	out, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(out)
		return err
	}
	return os.WriteFile(path, out, 0o644)
}
