// Command bbexp regenerates the paper-reproduction experiment tables
// (DESIGN.md E1–E10 and ablations A1–A6).
//
// Usage:
//
//	bbexp -all            # run the full suite (minutes)
//	bbexp -exp E4         # run one experiment
//	bbexp -all -quick     # shrunken sweeps for a fast smoke run
//	bbexp -list           # list experiment ids
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"bbcast/internal/experiments"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "bbexp:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("bbexp", flag.ContinueOnError)
	all := fs.Bool("all", false, "run the full experiment suite")
	exp := fs.String("exp", "", "run one experiment by id (e.g. E4)")
	quick := fs.Bool("quick", false, "shrink sweeps and durations")
	list := fs.Bool("list", false, "list experiment ids")
	seed := fs.Int64("seed", 1, "base random seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg := experiments.Config{Quick: *quick, Seed: *seed}

	switch {
	case *list:
		fmt.Println(strings.Join(experiments.IDs(), " "))
		return nil
	case *exp != "":
		table, ok := experiments.ByID(*exp, cfg)
		if !ok {
			return fmt.Errorf("unknown experiment %q (use -list)", *exp)
		}
		fmt.Println(table)
		return nil
	case *all:
		for _, table := range experiments.All(cfg) {
			fmt.Println(table)
		}
		return nil
	default:
		fs.Usage()
		return fmt.Errorf("nothing to do: pass -all, -exp <id>, or -list")
	}
}
