package main

import (
	"strings"
	"testing"
)

func TestRunList(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	err := run([]string{"-exp", "bogus"})
	if err == nil || !strings.Contains(err.Error(), "unknown experiment") {
		t.Fatalf("err = %v", err)
	}
}

func TestRunNothingToDo(t *testing.T) {
	if err := run(nil); err == nil {
		t.Fatal("no-op invocation should error")
	}
}

func TestRunOneQuickExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a simulation")
	}
	if err := run([]string{"-exp", "E7", "-quick"}); err != nil {
		t.Fatal(err)
	}
}
