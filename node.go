package bbcast

import (
	"bbcast/internal/transport"
	"bbcast/internal/wire"
)

// Node runs the broadcast protocol over real UDP datagrams. Construct with
// NewNode, wire the broadcast domain with SetPeers, and originate messages
// with Broadcast; accepted messages arrive on the deliver callback passed to
// NewNode.
type Node = transport.UDPNode

// DeliverFunc receives accepted application messages. It is invoked on the
// node's internal goroutines with its lock held: return quickly and do not
// call back into the Node.
type DeliverFunc = func(origin wire.NodeID, id wire.MsgID, payload []byte)

// NewNode binds a UDP socket on listen (e.g. "0.0.0.0:9000" or
// "127.0.0.1:0") and starts a protocol instance for the given node id. All
// nodes of a deployment must share the keyring construction (same n, seed
// for NewHMACKeyring, or a distributed Ed25519 PKI).
func NewNode(cfg ProtocolConfig, id NodeID, keys Keyring, listen string, deliver DeliverFunc) (*Node, error) {
	return transport.NewUDPNode(cfg, id, keys, listen, deliver)
}
