package bbcast

import (
	"bbcast/internal/transport"
	"bbcast/internal/wire"
)

// Node runs the broadcast protocol over real UDP datagrams. Construct with
// NewNode, wire the broadcast domain with SetPeers, and originate messages
// with Broadcast; accepted messages arrive on the deliver callback passed to
// NewNode.
type Node = transport.UDPNode

// DeliverFunc receives accepted application messages. It is invoked on the
// node's internal goroutines with its lock held: return quickly and do not
// call back into the Node.
type DeliverFunc = func(origin wire.NodeID, id wire.MsgID, payload []byte)

// NewNode binds a UDP socket on listen (e.g. "0.0.0.0:9000" or
// "127.0.0.1:0") and starts a protocol instance for the given node id. All
// nodes of a deployment must share the keyring construction (same n, seed
// for NewHMACKeyring, or a distributed Ed25519 PKI).
func NewNode(cfg ProtocolConfig, id NodeID, keys Keyring, listen string, deliver DeliverFunc) (*Node, error) {
	return transport.NewUDPNode(cfg, id, keys, listen, deliver)
}

// NewNodeDir is NewNode with durable state: the node keeps its origination
// sequence number, delivered-message digests and suspicions in dir
// (snapshot + CRC-framed log) and restores them on the next NewNodeDir with
// the same dir, so a device that reboots does not reuse sequence numbers or
// re-deliver pre-crash traffic. The log tolerates torn tails (recovery
// replays to the first bad record and truncates). Each node needs its own
// directory.
func NewNodeDir(cfg ProtocolConfig, id NodeID, keys Keyring, listen, dir string, deliver DeliverFunc) (*Node, error) {
	return transport.NewUDPNodeDir(cfg, id, keys, listen, dir, deliver)
}
