package bbcast_test

import (
	"fmt"
	"log"
	"time"

	"bbcast"
)

// ExampleRun simulates a small network under a mute-Byzantine attack and
// prints whether dissemination survived.
func ExampleRun() {
	sc := bbcast.DefaultScenario()
	sc.N = 30
	sc.Adversaries = []bbcast.Adversaries{{Kind: bbcast.AdvMute, Count: 5}}
	sc.Placement = bbcast.PlaceDominators
	sc.Workload.End = 40 * time.Second
	sc.Duration = 55 * time.Second

	res, err := bbcast.Run(sc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("every message delivered: %v\n", res.DeliveryRatio >= 0.99)
	// Output: every message delivered: true
}

// ExampleNewNode wires two protocol instances over real UDP sockets.
func ExampleNewNode() {
	keys := bbcast.NewHMACKeyring(2, 42)
	cfg := bbcast.DefaultProtocolConfig()
	cfg.GossipInterval = 100 * time.Millisecond
	cfg.MaintenanceInterval = 100 * time.Millisecond

	got := make(chan string, 1)
	a, err := bbcast.NewNode(cfg, 0, keys, "127.0.0.1:0", nil)
	if err != nil {
		log.Fatal(err)
	}
	defer a.Close()
	b, err := bbcast.NewNode(cfg, 1, keys, "127.0.0.1:0",
		func(origin bbcast.NodeID, id bbcast.MsgID, payload []byte) {
			select {
			case got <- string(payload):
			default:
			}
		})
	if err != nil {
		log.Fatal(err)
	}
	defer b.Close()

	if err := a.SetPeers([]string{b.Addr().String()}); err != nil {
		log.Fatal(err)
	}
	if err := b.SetPeers([]string{a.Addr().String()}); err != nil {
		log.Fatal(err)
	}

	a.Broadcast([]byte("hello over UDP"))
	select {
	case msg := <-got:
		fmt.Println(msg)
	case <-time.After(10 * time.Second):
		fmt.Println("timed out")
	}
	// Output: hello over UDP
}
