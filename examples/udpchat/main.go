// Udpchat runs the protocol engine over real UDP sockets on loopback: five
// nodes form a broadcast domain, each says hello, and a late joiner recovers
// every message it missed purely through the signature-gossip recovery path
// — no simulator involved.
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	"bbcast"
)

const nodes = 5

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	keys := bbcast.NewHMACKeyring(nodes+1, 42)
	cfg := bbcast.DefaultProtocolConfig()
	cfg.GossipInterval = 200 * time.Millisecond
	cfg.MaintenanceInterval = 200 * time.Millisecond
	cfg.RequestDelay = 100 * time.Millisecond

	var mu sync.Mutex
	received := map[bbcast.NodeID]int{}
	deliver := func(self bbcast.NodeID) bbcast.DeliverFunc {
		return func(origin bbcast.NodeID, id bbcast.MsgID, payload []byte) {
			mu.Lock()
			defer mu.Unlock()
			received[self]++
			fmt.Printf("  node %d accepted %v from %d: %q\n", self, id, origin, payload)
		}
	}

	all := make([]*bbcast.Node, 0, nodes+1)
	addrs := make([]string, 0, nodes+1)
	for i := 0; i < nodes; i++ {
		id := bbcast.NodeID(i)
		n, err := bbcast.NewNode(cfg, id, keys, "127.0.0.1:0", deliver(id))
		if err != nil {
			return err
		}
		defer n.Close()
		all = append(all, n)
		addrs = append(addrs, n.Addr().String())
	}
	wirePeers(all, addrs)

	fmt.Println("== five nodes chat over UDP ==")
	for i, n := range all {
		n.Broadcast([]byte(fmt.Sprintf("hello from node %d", i)))
	}
	waitUntil(5*time.Second, func() bool {
		mu.Lock()
		defer mu.Unlock()
		for i := 0; i < nodes; i++ {
			if received[bbcast.NodeID(i)] < nodes { // own + 4 others
				return false
			}
		}
		return true
	})

	fmt.Println("== a sixth node joins late and recovers the history via gossip ==")
	late, err := bbcast.NewNode(cfg, nodes, keys, "127.0.0.1:0", deliver(nodes))
	if err != nil {
		return err
	}
	defer late.Close()
	all = append(all, late)
	addrs = append(addrs, late.Addr().String())
	wirePeers(all, addrs)

	ok := waitUntil(10*time.Second, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return received[bbcast.NodeID(nodes)] >= nodes
	})
	if !ok {
		return fmt.Errorf("late joiner recovered only %d of %d messages", received[bbcast.NodeID(nodes)], nodes)
	}
	fmt.Println("late joiner recovered the full history.")
	return nil
}

func wirePeers(all []*bbcast.Node, addrs []string) {
	for i, n := range all {
		peers := make([]string, 0, len(addrs)-1)
		for j, a := range addrs {
			if i != j {
				peers = append(peers, a)
			}
		}
		if err := n.SetPeers(peers); err != nil {
			log.Fatal(err)
		}
	}
}

func waitUntil(timeout time.Duration, cond func() bool) bool {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return true
		}
		time.Sleep(20 * time.Millisecond)
	}
	return cond()
}
