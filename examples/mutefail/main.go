// Mutefail demonstrates the paper's central scenario: Byzantine overlay
// nodes silently black-hole all traffic they should forward. The protocol's
// signature gossip detects the missing messages, the recovery path fetches
// them around the mute nodes, and the failure detectors evict the offenders
// from the overlay. Compare the three arms printed below.
package main

import (
	"fmt"
	"log"
	"time"

	"bbcast"
)

func main() {
	fmt.Println("10 mute Byzantine nodes planted on overlay-dominator positions (n=75)")
	fmt.Println()
	fmt.Printf("%-28s %-10s %-12s %-12s %s\n", "arm", "delivery", "lat-mean", "lat-p95", "detections")

	arms := []struct {
		label string
		mod   func(*bbcast.Scenario)
	}{
		{"full protocol (FDs on)", func(sc *bbcast.Scenario) {}},
		{"recovery only (FDs off)", func(sc *bbcast.Scenario) { sc.Core.EnableFDs = false }},
		{"no recovery, no FDs", func(sc *bbcast.Scenario) {
			sc.Core.EnableFDs = false
			sc.Core.EnableRecovery = false
		}},
	}
	for _, arm := range arms {
		sc := bbcast.DefaultScenario()
		sc.N = 75
		sc.Adversaries = []bbcast.Adversaries{{Kind: bbcast.AdvMute, Count: 10}}
		sc.Placement = bbcast.PlaceDominators
		sc.Workload.End = 75 * time.Second
		sc.Duration = 90 * time.Second
		arm.mod(&sc)

		res, err := bbcast.Run(sc)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-28s %-10.3f %-12s %-12s %d\n",
			arm.label, res.DeliveryRatio,
			res.LatMean.Round(time.Millisecond), res.LatP95.Round(time.Millisecond),
			res.AdversariesDetected)
	}

	fmt.Println()
	fmt.Println("Expected shape: recovery keeps delivery near 1.0 even without FDs;")
	fmt.Println("without recovery the mute overlay nodes silently lose messages;")
	fmt.Println("with FDs the offenders are detected and latency improves as traffic")
	fmt.Println("returns to the overlay fast path.")
}
