// Ferry demonstrates eventual dissemination across a *partitioned* network:
// two clusters of nodes sit at opposite ends of the area, never in mutual
// radio range; one ferry node shuttles between them. Messages originate on
// the left, the ferry absorbs them through normal dissemination, carries
// them across, and the right cluster discovers and recovers them through the
// signature gossip — delay-tolerant networking as an emergent property of
// the paper's recovery design (its footnote 7 discusses exactly this
// weakened connectivity).
package main

import (
	"fmt"
	"log"
	"time"

	"bbcast"
)

func main() {
	sc := bbcast.DefaultScenario()
	sc.N = 21 // 10 nodes per cluster + the ferry (id 20)
	sc.Area = bbcast.Area{W: 1200, H: 300}
	sc.Mobility = bbcast.MobFerry
	sc.Speed = 50 // one crossing ≈ 20 s

	// The ferry must keep advertising and serving what it carries for at
	// least a full crossing.
	sc.Core.GossipRetention = 60 * time.Second
	sc.Core.PurgeTimeout = 180 * time.Second

	sc.Workload.Senders = 2 // both sources in the left cluster
	sc.Workload.Rate = 0.5
	sc.Workload.Start = 10 * time.Second
	sc.Workload.End = 70 * time.Second
	sc.Duration = 160 * time.Second
	sc.LatencyBucket = 20 * time.Second

	res, err := bbcast.Run(sc)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("partitioned network, one message ferry")
	fmt.Println("--------------------------------------")
	fmt.Printf("delivery ratio:       %.3f (across the partition!)\n", res.DeliveryRatio)
	fmt.Printf("latency p50 / max:    %s / %s\n",
		res.LatP50.Round(time.Millisecond), res.LatMax.Round(time.Second))
	fmt.Println()
	fmt.Println("latency by injection window (the ferry's rhythm is visible):")
	for _, b := range res.Timeline {
		if b.Count == 0 {
			continue
		}
		fmt.Printf("  t=%-6s accepts=%-4d mean=%-10s p95=%s\n",
			b.Start, b.Count, b.Mean.Round(time.Millisecond), b.P95.Round(time.Millisecond))
	}
	fmt.Println()
	fmt.Println("Same-side deliveries are milliseconds; cross-partition deliveries")
	fmt.Println("wait for the next ferry crossing (tens of seconds) — eventual")
	fmt.Println("dissemination under the paper's weakened connectivity assumption.")
}
