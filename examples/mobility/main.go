// Mobility sweeps node speed under the random-waypoint model and shows how
// the protocol's gossip recovery compensates for the broken links that
// movement keeps creating, where plain flooding just loses the messages.
package main

import (
	"fmt"
	"log"
	"time"

	"bbcast"
)

func main() {
	fmt.Println("random waypoint mobility, n=75, pause 2 s")
	fmt.Println()
	fmt.Printf("%-12s %-10s %-10s %-12s %-12s\n", "speed(m/s)", "protocol", "delivery", "lat-mean", "lat-p95")

	for _, speed := range []float64{0, 5, 15} {
		for _, proto := range []bbcast.Protocol{bbcast.ProtoByzCast, bbcast.ProtoFlooding} {
			sc := bbcast.DefaultScenario()
			sc.N = 75
			sc.Protocol = proto
			if speed > 0 {
				sc.Mobility = bbcast.MobWaypoint
				sc.Speed = speed
				sc.Pause = 2 * time.Second
			}
			res, err := bbcast.Run(sc)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-12.0f %-10v %-10.3f %-12s %-12s\n",
				speed, proto, res.DeliveryRatio,
				res.LatMean.Round(time.Millisecond), res.LatP95.Round(time.Millisecond))
		}
	}
}
