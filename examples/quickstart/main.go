// Quickstart: simulate a 50-node ad-hoc network, broadcast messages with
// the Byzantine-tolerant protocol, and print the outcome.
package main

import (
	"fmt"
	"log"
	"time"

	"bbcast"
)

func main() {
	// Start from the canonical experiment configuration and shrink it.
	sc := bbcast.DefaultScenario()
	sc.N = 50                             // 50 devices
	sc.Area = bbcast.Area{W: 800, H: 800} // in an 800x800 m field
	sc.Workload.Senders = 3               // three application sources
	sc.Workload.Rate = 2                  // two messages per second overall
	sc.Workload.End = 45 * time.Second    // injecting for 30 s after warm-up
	sc.Duration = 55 * time.Second        // plus drain time

	res, err := bbcast.Run(sc)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Byzantine broadcast, failure-free run")
	fmt.Println("-------------------------------------")
	fmt.Printf("messages injected:   %d\n", res.Injected)
	fmt.Printf("delivery ratio:      %.3f\n", res.DeliveryRatio)
	fmt.Printf("latency mean / p95:  %s / %s\n",
		res.LatMean.Round(time.Millisecond), res.LatP95.Round(time.Millisecond))
	fmt.Printf("transmissions/msg:   %.1f (%s)\n", res.TxPerMessage, res.KindBreakdown())
	fmt.Printf("overlay size:        %d of %d nodes\n", res.OverlaySize, sc.N)
}
