package fd

import (
	"sort"
	"time"

	"bbcast/internal/wire"
)

// Level is the trust the TRUST detector assigns a node (§3.3): untrusted
// means locally suspected; unknown means a trusted neighbour reported a
// suspicion; trusted means no reason to suspect.
type Level int

// Trust levels. Higher is better.
const (
	Untrusted Level = iota + 1
	Unknown
	Trusted
)

// String implements fmt.Stringer.
func (l Level) String() string {
	switch l {
	case Untrusted:
		return "untrusted"
	case Unknown:
		return "unknown"
	case Trusted:
		return "trusted"
	default:
		return "level(?)"
	}
}

// TrustConfig parameterizes the TRUST detector.
type TrustConfig struct {
	// DirectTTL is how long a direct suspicion (bad signature, protocol
	// deviation) lasts. Zero or negative means forever.
	DirectTTL time.Duration
	// ReportTTL is how long a second-hand report demotes a node to Unknown.
	ReportTTL time.Duration
}

// DefaultTrustConfig returns parameters suited to the simulation's scales.
func DefaultTrustConfig() TrustConfig {
	return TrustConfig{
		DirectTTL: 60 * time.Second,
		ReportTTL: 30 * time.Second,
	}
}

// Trust aggregates MUTE, VERBOSE, direct observations and second-hand
// reports into per-node trust levels. Not safe for concurrent use.
type Trust struct {
	now     Now
	cfg     TrustConfig
	mute    *Mute
	verbose *Verbose

	direct     map[wire.NodeID]time.Duration // untrusted until
	reasons    map[wire.NodeID]Reason
	secondHand map[wire.NodeID]time.Duration // unknown until

	// OnDirect, if non-nil, observes every direct local suspicion
	// (a raise; direct suspicions expire silently rather than clear).
	OnDirect func(id wire.NodeID, reason Reason)
}

// NewTrust builds a TRUST detector over the given MUTE and VERBOSE
// detectors (either may be nil in tests).
func NewTrust(now Now, cfg TrustConfig, mute *Mute, verbose *Verbose) *Trust {
	return &Trust{
		now:        now,
		cfg:        cfg,
		mute:       mute,
		verbose:    verbose,
		direct:     make(map[wire.NodeID]time.Duration),
		reasons:    make(map[wire.NodeID]Reason),
		secondHand: make(map[wire.NodeID]time.Duration),
	}
}

// Suspect lowers id's trust based on a locally observed deviation
// (TRUST.suspect of §3.1; e.g. a bad signature).
func (t *Trust) Suspect(id wire.NodeID, reason Reason) {
	until := time.Duration(1<<62 - 1)
	if t.cfg.DirectTTL > 0 {
		until = t.now() + t.cfg.DirectTTL
	}
	t.direct[id] = until
	t.reasons[id] = reason
	if t.OnDirect != nil {
		t.OnDirect(id, reason)
	}
}

// Report records that `reporter` told us it suspects `subject`. Per §3.3 the
// subject becomes Unknown — unless we already suspect the reporter (its word
// is worthless) or already suspect the subject (nothing to demote).
func (t *Trust) Report(reporter, subject wire.NodeID) {
	if t.Level(reporter) == Untrusted || t.Level(subject) == Untrusted {
		return
	}
	until := time.Duration(1<<62 - 1)
	if t.cfg.ReportTTL > 0 {
		until = t.now() + t.cfg.ReportTTL
	}
	t.secondHand[subject] = until
}

// Level returns id's current trust level.
func (t *Trust) Level(id wire.NodeID) Level {
	now := t.now()
	if u, ok := t.direct[id]; ok {
		if now < u {
			return Untrusted
		}
		delete(t.direct, id)
		delete(t.reasons, id)
	}
	if t.mute != nil && t.mute.Suspected(id) {
		return Untrusted
	}
	if t.verbose != nil && t.verbose.Suspected(id) {
		return Untrusted
	}
	if u, ok := t.secondHand[id]; ok {
		if now < u {
			return Unknown
		}
		delete(t.secondHand, id)
	}
	return Trusted
}

// Reason returns why id is directly suspected, if it is.
func (t *Trust) Reason(id wire.NodeID) (Reason, bool) {
	if t.Level(id) != Untrusted {
		return "", false
	}
	if r, ok := t.reasons[id]; ok {
		return r, true
	}
	if t.mute != nil && t.mute.Suspected(id) {
		return ReasonMute, true
	}
	if t.verbose != nil && t.verbose.Suspected(id) {
		return ReasonVerbose, true
	}
	return "", false
}

// Suspects returns the nodes this detector considers Untrusted, sorted.
// These are what the node advertises in its overlay-state Suspects list.
func (t *Trust) Suspects() []wire.NodeID {
	seen := make(map[wire.NodeID]bool)
	// Sorted: Level folds expired suspicions lazily and can emit raise/clear
	// transitions, so it must not run in map iteration order.
	for _, id := range sortedKeys(t.direct) {
		if t.Level(id) == Untrusted {
			seen[id] = true
		}
	}
	if t.mute != nil {
		for _, id := range t.mute.Suspects() {
			seen[id] = true
		}
	}
	if t.verbose != nil {
		for _, id := range t.verbose.Suspects() {
			seen[id] = true
		}
	}
	out := make([]wire.NodeID, 0, len(seen))
	for id := range seen {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
