package fd

import (
	"time"

	"bbcast/internal/wire"
)

// VerboseConfig parameterizes the VERBOSE detector.
type VerboseConfig struct {
	// Threshold is how many indictments make a node suspected.
	Threshold int
	// SuspicionTTL is how long a suspicion lasts. Zero or negative means
	// forever (◇P_verbose behaviour).
	SuspicionTTL time.Duration
	// AgeInterval is the decay period of indictment counters.
	AgeInterval time.Duration
	// MinSpacing, when non-zero for a kind, is the smallest legitimate gap
	// between consecutive messages of that kind from one node; closer
	// arrivals auto-indict (the "general requirements about minimal
	// spacing" hook of §3.1, set at initialization time).
	MinSpacing map[wire.Kind]time.Duration
}

// DefaultVerboseConfig returns interval-detector parameters suited to the
// simulation's time scales.
func DefaultVerboseConfig() VerboseConfig {
	return VerboseConfig{
		Threshold:    5,
		SuspicionTTL: 30 * time.Second,
		AgeInterval:  10 * time.Second,
	}
}

// Verbose is the VERBOSE failure detector: it suspects nodes that send too
// many messages (§3.1). Not safe for concurrent use.
type Verbose struct {
	now  Now
	cfg  VerboseConfig
	set  *counterSet
	last map[wire.NodeID]map[wire.Kind]time.Duration

	// OnSuspect, if non-nil, observes suspicion transitions.
	OnSuspect func(id wire.NodeID, suspected bool)
}

// NewVerbose builds a VERBOSE detector.
func NewVerbose(now Now, cfg VerboseConfig) *Verbose {
	v := &Verbose{
		now:  now,
		cfg:  cfg,
		set:  newCounterSet(now, cfg.Threshold, cfg.SuspicionTTL, cfg.AgeInterval),
		last: make(map[wire.NodeID]map[wire.Kind]time.Duration),
	}
	v.set.onChange = func(id wire.NodeID, s bool) {
		if v.OnSuspect != nil {
			v.OnSuspect(id, s)
		}
	}
	return v
}

// Indict charges id with one count of excessive sending (VERBOSE.indict).
func (v *Verbose) Indict(id wire.NodeID) { v.set.bump(id, 1) }

// Observe records the arrival of a message of the given kind from id and
// auto-indicts if it violates the configured minimum spacing.
func (v *Verbose) Observe(id wire.NodeID, kind wire.Kind) {
	minGap := v.cfg.MinSpacing[kind]
	if minGap <= 0 {
		return
	}
	now := v.now()
	kinds := v.last[id]
	if kinds == nil {
		kinds = make(map[wire.Kind]time.Duration)
		v.last[id] = kinds
	}
	prev, seen := kinds[kind]
	kinds[kind] = now
	if seen && now-prev < minGap {
		v.Indict(id)
	}
}

// Suspected reports whether the detector currently suspects id.
func (v *Verbose) Suspected(id wire.NodeID) bool { return v.set.suspected(id) }

// Suspects returns the currently suspected nodes, sorted.
func (v *Verbose) Suspects() []wire.NodeID { return v.set.suspects() }

// Indictments reports id's current (decayed) indictment count.
func (v *Verbose) Indictments(id wire.NodeID) int { return v.set.count(id) }
