package fd

import (
	"testing"
	"time"

	"bbcast/internal/wire"
)

// fakeClock is a manually advanced time source.
type fakeClock struct{ t time.Duration }

func (c *fakeClock) Now() time.Duration      { return c.t }
func (c *fakeClock) Advance(d time.Duration) { c.t += d }
func (c *fakeClock) NowFunc() Now            { return c.Now }
func key(origin, seq uint32) ExpectKey {
	return ExpectKey{Kind: wire.KindData, ID: wire.MsgID{Origin: wire.NodeID(origin), Seq: wire.Seq(seq)}}
}

func muteCfg() MuteConfig {
	return MuteConfig{
		Timeout:      100 * time.Millisecond,
		Threshold:    1,
		SuspicionTTL: time.Second,
		AgeInterval:  500 * time.Millisecond,
	}
}

func TestMuteFulfilledNotSuspected(t *testing.T) {
	c := &fakeClock{}
	m := NewMute(c.NowFunc(), muteCfg())
	m.Expect(key(1, 1), []wire.NodeID{5}, ExpectAny)
	c.Advance(50 * time.Millisecond)
	m.Fulfill(key(1, 1), 5)
	c.Advance(200 * time.Millisecond)
	if m.Suspected(5) {
		t.Fatal("fulfilled expectation led to suspicion (accuracy violated)")
	}
}

func TestMuteTimeoutSuspects(t *testing.T) {
	c := &fakeClock{}
	m := NewMute(c.NowFunc(), muteCfg())
	m.Expect(key(1, 1), []wire.NodeID{5}, ExpectAny)
	c.Advance(150 * time.Millisecond)
	if !m.Suspected(5) {
		t.Fatal("missed expectation not suspected (completeness violated)")
	}
}

func TestMuteExpectAnySatisfiedByOne(t *testing.T) {
	c := &fakeClock{}
	m := NewMute(c.NowFunc(), muteCfg())
	m.Expect(key(1, 1), []wire.NodeID{2, 3, 4}, ExpectAny)
	m.Fulfill(key(1, 1), 3)
	c.Advance(time.Second)
	for _, id := range []wire.NodeID{2, 3, 4} {
		if m.Suspected(id) {
			t.Fatalf("node %d suspected though ANY expectation was satisfied", id)
		}
	}
}

func TestMuteExpectAnyTimeoutSuspectsAll(t *testing.T) {
	c := &fakeClock{}
	m := NewMute(c.NowFunc(), muteCfg())
	m.Expect(key(1, 1), []wire.NodeID{2, 3}, ExpectAny)
	c.Advance(150 * time.Millisecond)
	if !m.Suspected(2) || !m.Suspected(3) {
		t.Fatal("unfulfilled ANY expectation should suspect all listed nodes")
	}
}

func TestMuteExpectAllIndividual(t *testing.T) {
	c := &fakeClock{}
	m := NewMute(c.NowFunc(), muteCfg())
	m.Expect(key(1, 1), []wire.NodeID{2, 3}, ExpectAll)
	m.Fulfill(key(1, 1), 2)
	c.Advance(150 * time.Millisecond)
	if m.Suspected(2) {
		t.Fatal("node 2 sent and is still suspected")
	}
	if !m.Suspected(3) {
		t.Fatal("node 3 never sent and is not suspected")
	}
}

func TestMuteFulfillWrongKeyIgnored(t *testing.T) {
	c := &fakeClock{}
	m := NewMute(c.NowFunc(), muteCfg())
	m.Expect(key(1, 1), []wire.NodeID{5}, ExpectAny)
	m.Fulfill(key(1, 2), 5) // different message
	c.Advance(150 * time.Millisecond)
	if !m.Suspected(5) {
		t.Fatal("fulfilment of unrelated key cleared the expectation")
	}
}

func TestMuteFulfillFromUnlistedNodeIgnored(t *testing.T) {
	c := &fakeClock{}
	m := NewMute(c.NowFunc(), muteCfg())
	m.Expect(key(1, 1), []wire.NodeID{5}, ExpectAny)
	m.Fulfill(key(1, 1), 9)
	c.Advance(150 * time.Millisecond)
	if !m.Suspected(5) {
		t.Fatal("fulfilment by unlisted node cleared the expectation")
	}
}

func TestMuteSuspicionExpires(t *testing.T) {
	c := &fakeClock{}
	m := NewMute(c.NowFunc(), muteCfg()) // suspicion TTL 1s
	m.Expect(key(1, 1), []wire.NodeID{5}, ExpectAny)
	c.Advance(150 * time.Millisecond)
	if !m.Suspected(5) {
		t.Fatal("not suspected")
	}
	c.Advance(2 * time.Second)
	if m.Suspected(5) {
		t.Fatal("suspicion did not expire after suspicion interval")
	}
}

func TestMuteThresholdRequiresRepeatedMisses(t *testing.T) {
	c := &fakeClock{}
	cfg := muteCfg()
	cfg.Threshold = 3
	cfg.AgeInterval = 0
	m := NewMute(c.NowFunc(), cfg)
	for i := 0; i < 2; i++ {
		m.Expect(key(1, uint32(i)), []wire.NodeID{5}, ExpectAny)
		c.Advance(150 * time.Millisecond)
	}
	if m.Suspected(5) {
		t.Fatal("suspected below threshold")
	}
	m.Expect(key(1, 9), []wire.NodeID{5}, ExpectAny)
	c.Advance(150 * time.Millisecond)
	if !m.Suspected(5) {
		t.Fatal("not suspected at threshold")
	}
}

func TestMuteCounterAging(t *testing.T) {
	c := &fakeClock{}
	cfg := muteCfg()
	cfg.Threshold = 2
	cfg.AgeInterval = 300 * time.Millisecond
	m := NewMute(c.NowFunc(), cfg)
	m.Expect(key(1, 1), []wire.NodeID{5}, ExpectAny)
	c.Advance(150 * time.Millisecond)
	if got := m.Misses(5); got != 1 {
		t.Fatalf("Misses = %d, want 1", got)
	}
	// After one age interval the counter decays back to 0, so a later
	// single miss does not cross the threshold.
	c.Advance(400 * time.Millisecond)
	if got := m.Misses(5); got != 0 {
		t.Fatalf("Misses after aging = %d, want 0", got)
	}
	m.Expect(key(1, 2), []wire.NodeID{5}, ExpectAny)
	c.Advance(150 * time.Millisecond)
	if m.Suspected(5) {
		t.Fatal("aged counter should prevent suspicion from isolated misses")
	}
}

func TestMuteOnSuspectCallback(t *testing.T) {
	c := &fakeClock{}
	m := NewMute(c.NowFunc(), muteCfg())
	var events []bool
	m.OnSuspect = func(id wire.NodeID, s bool) { events = append(events, s) }
	m.Expect(key(1, 1), []wire.NodeID{5}, ExpectAny)
	c.Advance(150 * time.Millisecond)
	m.Suspected(5) // trigger sweep
	c.Advance(2 * time.Second)
	m.Suspected(5) // trigger expiry
	if len(events) != 2 || events[0] != true || events[1] != false {
		t.Fatalf("callback events = %v, want [true false]", events)
	}
}

func TestMutePendingCleanup(t *testing.T) {
	c := &fakeClock{}
	m := NewMute(c.NowFunc(), muteCfg())
	for i := 0; i < 10; i++ {
		m.Expect(key(1, uint32(i)), []wire.NodeID{5}, ExpectAny)
	}
	if got := m.PendingExpectations(); got != 10 {
		t.Fatalf("pending = %d", got)
	}
	c.Advance(time.Second)
	if got := m.PendingExpectations(); got != 0 {
		t.Fatalf("expired expectations not reaped: %d", got)
	}
}

func TestMuteEmptyExpectNoop(t *testing.T) {
	c := &fakeClock{}
	m := NewMute(c.NowFunc(), muteCfg())
	m.Expect(key(1, 1), nil, ExpectAny)
	c.Advance(time.Second)
	if len(m.Suspects()) != 0 {
		t.Fatal("empty expectation produced suspects")
	}
}

func verboseCfg() VerboseConfig {
	return VerboseConfig{
		Threshold:    3,
		SuspicionTTL: time.Second,
		AgeInterval:  500 * time.Millisecond,
	}
}

func TestVerboseThreshold(t *testing.T) {
	c := &fakeClock{}
	v := NewVerbose(c.NowFunc(), verboseCfg())
	v.Indict(7)
	v.Indict(7)
	if v.Suspected(7) {
		t.Fatal("suspected below threshold")
	}
	v.Indict(7)
	if !v.Suspected(7) {
		t.Fatal("not suspected at threshold")
	}
}

func TestVerboseSuspicionExpiresAndAges(t *testing.T) {
	c := &fakeClock{}
	v := NewVerbose(c.NowFunc(), verboseCfg())
	for i := 0; i < 3; i++ {
		v.Indict(7)
	}
	c.Advance(2 * time.Second)
	if v.Suspected(7) {
		t.Fatal("suspicion did not expire")
	}
	if v.Indictments(7) != 0 {
		t.Fatalf("indictments did not age out: %d", v.Indictments(7))
	}
}

func TestVerboseMinSpacing(t *testing.T) {
	c := &fakeClock{}
	cfg := verboseCfg()
	cfg.Threshold = 1
	cfg.MinSpacing = map[wire.Kind]time.Duration{wire.KindGossip: 100 * time.Millisecond}
	v := NewVerbose(c.NowFunc(), cfg)
	v.Observe(3, wire.KindGossip)
	c.Advance(200 * time.Millisecond)
	v.Observe(3, wire.KindGossip) // legitimate spacing
	if v.Suspected(3) {
		t.Fatal("well-spaced messages indicted")
	}
	c.Advance(10 * time.Millisecond)
	v.Observe(3, wire.KindGossip) // too fast
	if !v.Suspected(3) {
		t.Fatal("spacing violation not indicted")
	}
}

func TestVerboseMinSpacingPerKind(t *testing.T) {
	c := &fakeClock{}
	cfg := verboseCfg()
	cfg.Threshold = 1
	cfg.MinSpacing = map[wire.Kind]time.Duration{wire.KindGossip: 100 * time.Millisecond}
	v := NewVerbose(c.NowFunc(), cfg)
	v.Observe(3, wire.KindData)
	v.Observe(3, wire.KindData) // data unconstrained
	if v.Suspected(3) {
		t.Fatal("unconstrained kind triggered indictment")
	}
}

func TestTrustDefaultsTrusted(t *testing.T) {
	c := &fakeClock{}
	tr := NewTrust(c.NowFunc(), DefaultTrustConfig(), nil, nil)
	if tr.Level(1) != Trusted {
		t.Fatal("fresh node not trusted")
	}
}

func TestTrustDirectSuspicion(t *testing.T) {
	c := &fakeClock{}
	cfg := TrustConfig{DirectTTL: time.Second, ReportTTL: time.Second}
	tr := NewTrust(c.NowFunc(), cfg, nil, nil)
	tr.Suspect(4, ReasonBadSignature)
	if tr.Level(4) != Untrusted {
		t.Fatal("direct suspicion not Untrusted")
	}
	r, ok := tr.Reason(4)
	if !ok || r != ReasonBadSignature {
		t.Fatalf("Reason = %v,%v", r, ok)
	}
	c.Advance(2 * time.Second)
	if tr.Level(4) != Trusted {
		t.Fatal("direct suspicion did not expire")
	}
}

func TestTrustConsultsMuteAndVerbose(t *testing.T) {
	c := &fakeClock{}
	m := NewMute(c.NowFunc(), muteCfg())
	v := NewVerbose(c.NowFunc(), verboseCfg())
	tr := NewTrust(c.NowFunc(), DefaultTrustConfig(), m, v)
	m.Expect(key(1, 1), []wire.NodeID{8}, ExpectAny)
	c.Advance(150 * time.Millisecond)
	if tr.Level(8) != Untrusted {
		t.Fatal("mute suspicion not reflected in trust")
	}
	for i := 0; i < 3; i++ {
		v.Indict(9)
	}
	if tr.Level(9) != Untrusted {
		t.Fatal("verbose suspicion not reflected in trust")
	}
	if got, _ := tr.Reason(8); got != ReasonMute {
		t.Fatalf("Reason(8) = %v", got)
	}
	if got, _ := tr.Reason(9); got != ReasonVerbose {
		t.Fatalf("Reason(9) = %v", got)
	}
}

func TestTrustSecondHandReportUnknown(t *testing.T) {
	c := &fakeClock{}
	tr := NewTrust(c.NowFunc(), TrustConfig{DirectTTL: time.Second, ReportTTL: time.Second}, nil, nil)
	tr.Report(2, 3)
	if tr.Level(3) != Unknown {
		t.Fatalf("Level(3) = %v, want Unknown", tr.Level(3))
	}
	c.Advance(2 * time.Second)
	if tr.Level(3) != Trusted {
		t.Fatal("second-hand report did not expire")
	}
}

func TestTrustReportFromUntrustedIgnored(t *testing.T) {
	// §3.3: "unless p already suspects either q or r".
	c := &fakeClock{}
	tr := NewTrust(c.NowFunc(), DefaultTrustConfig(), nil, nil)
	tr.Suspect(2, ReasonBadSignature)
	tr.Report(2, 3) // reporter untrusted
	if tr.Level(3) != Trusted {
		t.Fatal("report from untrusted node demoted subject")
	}
}

func TestTrustReportAboutUntrustedKeepsUntrusted(t *testing.T) {
	c := &fakeClock{}
	tr := NewTrust(c.NowFunc(), DefaultTrustConfig(), nil, nil)
	tr.Suspect(3, ReasonBadSignature)
	tr.Report(2, 3)
	if tr.Level(3) != Untrusted {
		t.Fatal("already-untrusted node should stay untrusted")
	}
}

func TestTrustSuspectsAggregates(t *testing.T) {
	c := &fakeClock{}
	m := NewMute(c.NowFunc(), muteCfg())
	v := NewVerbose(c.NowFunc(), verboseCfg())
	tr := NewTrust(c.NowFunc(), DefaultTrustConfig(), m, v)
	tr.Suspect(1, ReasonBadSignature)
	m.Expect(key(9, 9), []wire.NodeID{2}, ExpectAny)
	c.Advance(150 * time.Millisecond)
	for i := 0; i < 3; i++ {
		v.Indict(3)
	}
	got := tr.Suspects()
	want := []wire.NodeID{1, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("Suspects = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Suspects = %v, want %v", got, want)
		}
	}
}

func TestTrustSecondHandDoesNotAppearInSuspects(t *testing.T) {
	// Only locally observed (Untrusted) nodes are advertised; Unknown nodes
	// are not, preventing endless rumor propagation.
	c := &fakeClock{}
	tr := NewTrust(c.NowFunc(), DefaultTrustConfig(), nil, nil)
	tr.Report(2, 3)
	if len(tr.Suspects()) != 0 {
		t.Fatalf("Suspects = %v, want empty", tr.Suspects())
	}
}

func TestForeverSuspicionWithZeroTTL(t *testing.T) {
	// Zero TTL realizes the ◇P (eventually-perfect) variants.
	c := &fakeClock{}
	cfg := muteCfg()
	cfg.SuspicionTTL = 0
	cfg.AgeInterval = 0
	m := NewMute(c.NowFunc(), cfg)
	m.Expect(key(1, 1), []wire.NodeID{5}, ExpectAny)
	c.Advance(150 * time.Millisecond)
	if !m.Suspected(5) {
		t.Fatal("not suspected")
	}
	c.Advance(1000 * time.Hour)
	if !m.Suspected(5) {
		t.Fatal("◇P-style suspicion expired")
	}
}

func TestMuteHealFiresOnChangeExactlyOnce(t *testing.T) {
	c := &fakeClock{}
	m := NewMute(c.NowFunc(), muteCfg())
	type ev struct {
		id wire.NodeID
		s  bool
	}
	var events []ev
	m.OnSuspect = func(id wire.NodeID, s bool) { events = append(events, ev{id, s}) }
	m.Expect(key(1, 1), []wire.NodeID{5}, ExpectAny)
	c.Advance(150 * time.Millisecond)
	if !m.Suspected(5) {
		t.Fatal("not suspected after miss")
	}
	// Past the TTL: the first query heals and notifies; repeated queries
	// through every read path must not re-fire the heal notification.
	c.Advance(2 * time.Second)
	for i := 0; i < 3; i++ {
		if m.Suspected(5) {
			t.Fatal("suspicion did not expire")
		}
		if len(m.Suspects()) != 0 {
			t.Fatal("Suspects still lists healed node")
		}
	}
	want := []ev{{5, true}, {5, false}}
	if len(events) != 2 || events[0] != want[0] || events[1] != want[1] {
		t.Fatalf("onChange events = %v, want %v", events, want)
	}
}

func TestMuteDecayAcrossMultipleAgeIntervals(t *testing.T) {
	c := &fakeClock{}
	cfg := muteCfg()
	cfg.Threshold = 10 // never suspect; this test is about the counter
	cfg.AgeInterval = 200 * time.Millisecond
	m := NewMute(c.NowFunc(), cfg)
	for i := 0; i < 5; i++ {
		m.Expect(key(1, uint32(i)), []wire.NodeID{5}, ExpectAny)
	}
	c.Advance(150 * time.Millisecond)
	if got := m.Misses(5); got != 5 {
		t.Fatalf("Misses = %d, want 5", got)
	}
	// 3 full age intervals elapse at once: the counter must decay by 3,
	// not by 1, and the residue must keep decaying on later reads.
	c.Advance(600 * time.Millisecond)
	if got := m.Misses(5); got != 2 {
		t.Fatalf("Misses after 3 intervals = %d, want 2", got)
	}
	c.Advance(10 * cfg.AgeInterval)
	if got := m.Misses(5); got != 0 {
		t.Fatalf("counter did not drain to 0: %d", got)
	}
	// Draining past zero must not go negative (a fresh miss still counts).
	m.Expect(key(1, 99), []wire.NodeID{5}, ExpectAny)
	c.Advance(150 * time.Millisecond)
	if got := m.Misses(5); got != 1 {
		t.Fatalf("Misses after drain+miss = %d, want 1", got)
	}
}

func TestMuteReSuspicionAfterHeal(t *testing.T) {
	c := &fakeClock{}
	cfg := muteCfg()
	cfg.AgeInterval = 0 // isolate the TTL cycle from counter decay
	m := NewMute(c.NowFunc(), cfg)
	var events []bool
	m.OnSuspect = func(id wire.NodeID, s bool) { events = append(events, s) }

	m.Expect(key(1, 1), []wire.NodeID{5}, ExpectAny)
	c.Advance(150 * time.Millisecond)
	if !m.Suspected(5) {
		t.Fatal("first suspicion missing")
	}
	c.Advance(2 * time.Second)
	if m.Suspected(5) {
		t.Fatal("first suspicion did not heal")
	}
	// The node misbehaves again after healing: a fresh suspicion must open
	// with a fresh TTL and a fresh onChange(true).
	m.Expect(key(1, 2), []wire.NodeID{5}, ExpectAny)
	c.Advance(150 * time.Millisecond)
	if !m.Suspected(5) {
		t.Fatal("re-suspicion missing")
	}
	c.Advance(500 * time.Millisecond)
	if !m.Suspected(5) {
		t.Fatal("re-suspicion expired before its TTL")
	}
	c.Advance(time.Second)
	if m.Suspected(5) {
		t.Fatal("re-suspicion did not heal")
	}
	want := []bool{true, false, true, false}
	if len(events) != len(want) {
		t.Fatalf("onChange events = %v, want %v", events, want)
	}
	for i := range want {
		if events[i] != want[i] {
			t.Fatalf("onChange events = %v, want %v", events, want)
		}
	}
}
