package fd

import (
	"time"

	"bbcast/internal/wire"
)

// MuteConfig parameterizes the MUTE detector.
type MuteConfig struct {
	// Timeout is how long after Expect a matching message must arrive.
	Timeout time.Duration
	// Threshold is how many misses make a node suspected.
	Threshold int
	// SuspicionTTL is how long a suspicion lasts (the paper's suspicion
	// interval). Zero or negative means forever (◇P_mute behaviour).
	SuspicionTTL time.Duration
	// AgeInterval is the decay period of miss counters (the paper's aging
	// mechanism). Zero disables decay.
	AgeInterval time.Duration
}

// DefaultMuteConfig returns interval-detector parameters suited to the
// simulation's time scales.
func DefaultMuteConfig() MuteConfig {
	return MuteConfig{
		Timeout:      500 * time.Millisecond,
		Threshold:    2,
		SuspicionTTL: 30 * time.Second,
		AgeInterval:  10 * time.Second,
	}
}

// expectation is one armed Expect call.
type expectation struct {
	key      ExpectKey
	mode     ExpectMode
	deadline time.Duration
	// waiting is the set of nodes still on the hook. For ExpectAny a single
	// fulfilment clears the whole expectation; for ExpectAll nodes clear
	// individually.
	waiting map[wire.NodeID]bool
}

// Mute is the MUTE failure detector: it suspects nodes that failed to send
// an anticipated message (§3.1). Not safe for concurrent use.
type Mute struct {
	now     Now
	cfg     MuteConfig
	set     *counterSet
	pending []*expectation

	// OnSuspect, if non-nil, observes suspicion transitions.
	OnSuspect func(id wire.NodeID, suspected bool)
}

// NewMute builds a MUTE detector.
func NewMute(now Now, cfg MuteConfig) *Mute {
	m := &Mute{
		now: now,
		cfg: cfg,
		set: newCounterSet(now, cfg.Threshold, cfg.SuspicionTTL, cfg.AgeInterval),
	}
	m.set.onChange = func(id wire.NodeID, s bool) {
		if m.OnSuspect != nil {
			m.OnSuspect(id, s)
		}
	}
	return m
}

// Expect arms the detector: one of (ExpectAny) or each of (ExpectAll) the
// nodes must send a message matching key within the configured timeout.
// Arming with no nodes is a no-op.
func (m *Mute) Expect(key ExpectKey, nodes []wire.NodeID, mode ExpectMode) {
	m.sweep()
	if len(nodes) == 0 {
		return
	}
	waiting := make(map[wire.NodeID]bool, len(nodes))
	for _, id := range nodes {
		waiting[id] = true
	}
	m.pending = append(m.pending, &expectation{
		key:      key,
		mode:     mode,
		deadline: m.now() + m.cfg.Timeout,
		waiting:  waiting,
	})
}

// SetTimeout changes the expectation timeout applied to future Expect calls.
// Already-armed expectations keep the deadline they were armed with. Values
// <= 0 are ignored.
func (m *Mute) SetTimeout(d time.Duration) {
	if d > 0 {
		m.cfg.Timeout = d
	}
}

// Timeout reports the expectation timeout applied to future Expect calls.
func (m *Mute) Timeout() time.Duration { return m.cfg.Timeout }

// Fulfill records that `from` sent a message matching key. It clears every
// matching ExpectAny expectation that listed `from`, and removes `from` from
// matching ExpectAll expectations.
func (m *Mute) Fulfill(key ExpectKey, from wire.NodeID) {
	m.sweep()
	kept := m.pending[:0]
	for _, e := range m.pending {
		if e.key == key && e.waiting[from] {
			if e.mode == ExpectAny {
				continue // fully satisfied; drop
			}
			delete(e.waiting, from)
			if len(e.waiting) == 0 {
				continue
			}
		}
		kept = append(kept, e)
	}
	m.pending = kept
}

// sweep folds expired expectations into miss counters.
func (m *Mute) sweep() {
	now := m.now()
	kept := m.pending[:0]
	for _, e := range m.pending {
		if now < e.deadline {
			kept = append(kept, e)
			continue
		}
		// Missed: every still-waiting node takes a miss. Under ExpectAny
		// this matches the paper's Lemma 3.7 flavour — if none of the
		// overlay neighbours forwarded, they are all suspected (only
		// genuinely mute nodes stay suspected once good ones fulfil later
		// expectations and counters age).
		// Sorted: bump can raise a suspicion, and the OnSuspect emissions
		// must not depend on map iteration order.
		for _, id := range sortedKeys(e.waiting) {
			m.set.bump(id, 1)
		}
	}
	m.pending = kept
}

// Suspected reports whether the detector currently suspects id.
func (m *Mute) Suspected(id wire.NodeID) bool {
	m.sweep()
	return m.set.suspected(id)
}

// Suspects returns the currently suspected nodes, sorted.
func (m *Mute) Suspects() []wire.NodeID {
	m.sweep()
	return m.set.suspects()
}

// Misses reports id's current (decayed) miss count, for tests and debugging.
func (m *Mute) Misses(id wire.NodeID) int {
	m.sweep()
	return m.set.count(id)
}

// PendingExpectations reports how many expectations are armed (test hook).
func (m *Mute) PendingExpectations() int {
	m.sweep()
	return len(m.pending)
}
