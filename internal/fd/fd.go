// Package fd implements the paper's three failure detectors (§2.2, §3.1):
//
//   - MUTE detects nodes that fail to send a message with an expected
//     header. The protocol arms it with Expect(header, nodes, ONE|ALL); a
//     node that misses its deadline accumulates a miss and, past a
//     threshold, is suspected for a suspicion interval.
//   - VERBOSE detects nodes that send too many messages. The protocol
//     indicts offenders; past a threshold they are suspected.
//   - TRUST aggregates MUTE, VERBOSE, locally observed deviations (bad
//     signatures), and second-hand reports from trusted neighbours into a
//     per-node trust level: Trusted, Unknown or Untrusted.
//
// Both MUTE and VERBOSE use an aging mechanism — suspicion counters decay
// over time — which realizes the paper's Interval failure-detector classes
// (I_mute, I_verbose): suspicions triggered during a mute interval last for
// a suspicion interval and then heal. With decay disabled and an infinite
// suspicion TTL the detectors behave like the eventually-perfect classes
// (◇P_mute, ◇P_verbose) instead.
//
// All detectors are driven purely by a Clock (no internal goroutines or
// timers): expired expectations are folded into counters lazily whenever a
// method runs. This keeps them deterministic under simulation and trivially
// portable to real time.
package fd

import (
	"sort"
	"time"

	"bbcast/internal/wire"
)

// Now is the time source the detectors sample. It is a function rather than
// an interface so detectors can share the protocol's clock cheaply.
type Now func() time.Duration

// Reason classifies why a node was suspected, for TRUST bookkeeping and logs.
type Reason string

// Suspicion reasons.
const (
	ReasonMute         Reason = "mute"
	ReasonVerbose      Reason = "verbose"
	ReasonBadSignature Reason = "bad-signature"
	ReasonProtocol     Reason = "protocol-deviation"
)

// ExpectMode says whether all listed nodes must send the expected message or
// any one of them suffices (the ONE|ALL parameter of MUTE.expect).
type ExpectMode int

// Expect modes.
const (
	ExpectAny ExpectMode = iota + 1
	ExpectAll
)

// ExpectKey identifies an anticipated message header: its kind and the
// message id it concerns. Wildcards are not needed by the protocol — every
// expectation it arms names a concrete message.
type ExpectKey struct {
	Kind wire.Kind
	ID   wire.MsgID
}

// agingCounter is a per-node miss counter with linear decay.
type agingCounter struct {
	count     int
	lastDecay time.Duration
}

// counterSet manages aging counters and suspicion deadlines for many nodes.
type counterSet struct {
	now          Now
	threshold    int
	suspicionTTL time.Duration
	ageInterval  time.Duration // 0 disables decay

	counters map[wire.NodeID]*agingCounter
	until    map[wire.NodeID]time.Duration // suspected until
	onChange func(id wire.NodeID, suspected bool)
}

func newCounterSet(now Now, threshold int, suspicionTTL, ageInterval time.Duration) *counterSet {
	if threshold < 1 {
		threshold = 1
	}
	return &counterSet{
		now:          now,
		threshold:    threshold,
		suspicionTTL: suspicionTTL,
		ageInterval:  ageInterval,
		counters:     make(map[wire.NodeID]*agingCounter),
		until:        make(map[wire.NodeID]time.Duration),
	}
}

func (c *counterSet) bump(id wire.NodeID, n int) {
	now := c.now()
	ctr := c.counters[id]
	if ctr == nil {
		ctr = &agingCounter{lastDecay: now}
		c.counters[id] = ctr
	}
	c.decay(ctr, now)
	ctr.count += n
	if ctr.count >= c.threshold {
		wasSuspected := c.suspected(id)
		if c.suspicionTTL <= 0 {
			c.until[id] = 1<<62 - 1 // effectively forever (◇P-style)
		} else {
			c.until[id] = now + c.suspicionTTL
		}
		if !wasSuspected && c.onChange != nil {
			c.onChange(id, true)
		}
	}
}

func (c *counterSet) decay(ctr *agingCounter, now time.Duration) {
	if c.ageInterval <= 0 || ctr.count == 0 {
		ctr.lastDecay = now
		return
	}
	steps := int((now - ctr.lastDecay) / c.ageInterval)
	if steps <= 0 {
		return
	}
	ctr.count -= steps
	if ctr.count < 0 {
		ctr.count = 0
	}
	ctr.lastDecay += time.Duration(steps) * c.ageInterval
}

func (c *counterSet) suspected(id wire.NodeID) bool {
	u, ok := c.until[id]
	if !ok {
		return false
	}
	if c.now() >= u {
		delete(c.until, id)
		if c.onChange != nil {
			c.onChange(id, false)
		}
		return false
	}
	return true
}

func (c *counterSet) count(id wire.NodeID) int {
	ctr := c.counters[id]
	if ctr == nil {
		return 0
	}
	c.decay(ctr, c.now())
	return ctr.count
}

func (c *counterSet) suspects() []wire.NodeID {
	out := make([]wire.NodeID, 0, len(c.until))
	// Iterate in id order: suspected() emits clear events through onChange
	// when an entry has expired, and those must not fire in map order.
	for _, id := range sortedKeys(c.until) {
		if c.suspected(id) {
			out = append(out, id)
		}
	}
	return out
}

// sortedKeys returns m's keys in ascending id order. The detectors touch
// suspicion state only in sorted order wherever a callback (and hence an
// observer emission) can fire, so Go's randomized map iteration never leaks
// into the event trace.
func sortedKeys[V any](m map[wire.NodeID]V) []wire.NodeID {
	ids := make([]wire.NodeID, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}
