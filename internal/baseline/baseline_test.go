package baseline

import (
	"bytes"
	"testing"

	"bbcast/internal/core"
	"bbcast/internal/env"
	"bbcast/internal/sig"
	"bbcast/internal/sim"
	"bbcast/internal/wire"
)

type capture struct {
	sent      []*wire.Packet
	delivered [][]byte
}

func deps(t *testing.T, id wire.NodeID, scheme sig.Scheme, cap *capture) core.Deps {
	t.Helper()
	eng := sim.New(1)
	return core.Deps{
		ID:     id,
		Clock:  env.SimClock{Eng: eng},
		Send:   func(p *wire.Packet) { cap.sent = append(cap.sent, p) },
		Scheme: scheme,
		Rand:   eng.SubRand(uint64(id)),
		Deliver: func(_ wire.NodeID, _ wire.MsgID, payload []byte) {
			cap.delivered = append(cap.delivered, payload)
		},
	}
}

func TestFloodingBroadcastAndDeliver(t *testing.T) {
	scheme := sig.NewHMAC(4, 1)
	var capA, capB capture
	a := NewFlooding(deps(t, 0, scheme, &capA), 0)
	b := NewFlooding(deps(t, 1, scheme, &capB), 0)
	a.Broadcast([]byte("hello"))
	if len(capA.sent) != 1 {
		t.Fatalf("originator sent %d packets", len(capA.sent))
	}
	if len(capA.delivered) != 1 {
		t.Fatal("originator did not self-deliver")
	}
	b.HandlePacket(capA.sent[0])
	if len(capB.delivered) != 1 || !bytes.Equal(capB.delivered[0], []byte("hello")) {
		t.Fatalf("receiver delivered %v", capB.delivered)
	}
	if len(capB.sent) != 1 {
		t.Fatal("receiver did not re-flood")
	}
	// Duplicate: neither delivered nor re-flooded again.
	b.HandlePacket(capA.sent[0].Clone())
	if len(capB.delivered) != 1 || len(capB.sent) != 1 {
		t.Fatal("duplicate not suppressed")
	}
	if b.Stats().Duplicates != 1 {
		t.Fatalf("duplicates = %d", b.Stats().Duplicates)
	}
}

func TestFloodingRejectsBadSignature(t *testing.T) {
	scheme := sig.NewHMAC(4, 1)
	var capA, capB capture
	a := NewFlooding(deps(t, 0, scheme, &capA), 0)
	b := NewFlooding(deps(t, 1, scheme, &capB), 0)
	a.Broadcast([]byte("hello"))
	bad := capA.sent[0].Clone()
	bad.Payload[0] ^= 0xFF
	b.HandlePacket(bad)
	if len(capB.delivered) != 0 || len(capB.sent) != 0 {
		t.Fatal("tampered flood accepted")
	}
	if b.Stats().BadSignatures != 1 {
		t.Fatalf("bad signatures = %d", b.Stats().BadSignatures)
	}
}

func TestFloodingIgnoresOwnAndNonData(t *testing.T) {
	scheme := sig.NewHMAC(4, 1)
	var cap capture
	f := NewFlooding(deps(t, 0, scheme, &cap), 0)
	f.HandlePacket(&wire.Packet{Kind: wire.KindGossip, Sender: 1})
	f.HandlePacket(&wire.Packet{Kind: wire.KindData, Sender: 0})
	if len(cap.delivered) != 0 {
		t.Fatal("processed own/non-data packets")
	}
}

func TestFPlusOneBroadcastsOneCopyPerOverlay(t *testing.T) {
	scheme := sig.NewHMAC(4, 1)
	var cap capture
	p := NewFPlusOne(deps(t, 0, scheme, &cap), 2, []int{0}, 0)
	p.Broadcast([]byte("m"))
	if len(cap.sent) != 3 {
		t.Fatalf("sent %d copies, want f+1=3", len(cap.sent))
	}
	seen := map[byte]bool{}
	for _, pkt := range cap.sent {
		seen[pkt.Payload[0]] = true
		id := pkt.ID()
		if !scheme.Verify(0, wire.DataSigBytes(id, pkt.Payload), pkt.Sig) {
			t.Fatal("copy signature invalid")
		}
	}
	if !seen[0] || !seen[1] || !seen[2] {
		t.Fatalf("channels = %v", seen)
	}
}

func TestFPlusOneDeliversOnceRelaysMemberChannels(t *testing.T) {
	scheme := sig.NewHMAC(4, 1)
	var capA, capB capture
	a := NewFPlusOne(deps(t, 0, scheme, &capA), 1, nil, 0)
	b := NewFPlusOne(deps(t, 1, scheme, &capB), 1, []int{1}, 0) // member of overlay 1 only
	a.Broadcast([]byte("m"))
	for _, pkt := range capA.sent {
		b.HandlePacket(pkt)
	}
	if len(capB.delivered) != 1 || !bytes.Equal(capB.delivered[0], []byte("m")) {
		t.Fatalf("delivered %v", capB.delivered)
	}
	if len(capB.sent) != 1 || capB.sent[0].Payload[0] != 1 {
		t.Fatalf("relayed %d copies (want only channel 1): %v", len(capB.sent), capB.sent)
	}
	// Re-handling the same copies: no new relays.
	for _, pkt := range capA.sent {
		b.HandlePacket(pkt.Clone())
	}
	if len(capB.sent) != 1 {
		t.Fatal("duplicate copy re-relayed")
	}
}

func TestFPlusOneRejectsBadChannelAndSig(t *testing.T) {
	scheme := sig.NewHMAC(4, 1)
	var capA, capB capture
	a := NewFPlusOne(deps(t, 0, scheme, &capA), 1, nil, 0)
	b := NewFPlusOne(deps(t, 1, scheme, &capB), 1, []int{0, 1}, 0)
	a.Broadcast([]byte("m"))
	bad := capA.sent[0].Clone()
	bad.Payload[0] = 9 // out-of-range channel, breaks signature too
	b.HandlePacket(bad)
	if len(capB.delivered) != 0 {
		t.Fatal("bad copy accepted")
	}
}

func TestDisjointOverlaysProperties(t *testing.T) {
	// Build a 4x4 grid graph.
	const n = 16
	adj := make([][]bool, n)
	for i := range adj {
		adj[i] = make([]bool, n)
	}
	conn := func(a, b int) { adj[a][b] = true; adj[b][a] = true }
	for r := 0; r < 4; r++ {
		for c := 0; c < 4; c++ {
			i := r*4 + c
			if c < 3 {
				conn(i, i+1)
			}
			if r < 3 {
				conn(i, i+4)
			}
			// Diagonals give enough redundancy for disjoint CDSs.
			if c < 3 && r < 3 {
				conn(i, i+5)
			}
			if c > 0 && r < 3 {
				conn(i, i+3)
			}
		}
	}
	overlays := DisjointOverlays(adj, 1)
	if len(overlays) != 2 {
		t.Fatalf("got %d overlays, want 2", len(overlays))
	}
	used := map[int]int{}
	for c, ov := range overlays {
		if len(ov) == 0 {
			t.Fatalf("overlay %d empty", c)
		}
		for _, v := range ov {
			used[v]++
		}
	}
	for v, cnt := range used {
		if cnt > 1 {
			t.Fatalf("node %d in %d overlays (must be disjoint)", v, cnt)
		}
	}
	// First overlay (unconstrained greedy) must dominate the graph.
	dominated := make([]bool, n)
	for _, v := range overlays[0] {
		dominated[v] = true
		for u := 0; u < n; u++ {
			if adj[v][u] {
				dominated[u] = true
			}
		}
	}
	for v := 0; v < n; v++ {
		if !dominated[v] {
			t.Fatalf("overlay 0 does not dominate node %d", v)
		}
	}
}

func TestDisjointOverlaysFallback(t *testing.T) {
	// A path graph cannot host two disjoint CDSs; the second overlay falls
	// back to the remaining nodes.
	const n = 5
	adj := make([][]bool, n)
	for i := range adj {
		adj[i] = make([]bool, n)
	}
	for i := 0; i+1 < n; i++ {
		adj[i][i+1] = true
		adj[i+1][i] = true
	}
	overlays := DisjointOverlays(adj, 1)
	if len(overlays) != 2 {
		t.Fatalf("got %d overlays", len(overlays))
	}
	total := len(overlays[0]) + len(overlays[1])
	if total > n {
		t.Fatalf("overlays overlap: %v", overlays)
	}
}

func TestDisjointOverlaysEmptyGraph(t *testing.T) {
	overlays := DisjointOverlays(nil, 2)
	if len(overlays) != 3 {
		t.Fatalf("got %d overlays for empty graph", len(overlays))
	}
}
