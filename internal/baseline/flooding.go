// Package baseline implements the two comparison protocols of the paper's
// evaluation: plain flooding (§1, [45]) and f+1 node-disjoint overlays
// (§1, [15, 34, 36]). Both use the same signatures, wire format, MAC and
// radio as the main protocol so measured differences come from the
// dissemination strategy alone.
package baseline

import (
	"time"

	"bbcast/internal/core"
	"bbcast/internal/wire"
)

// Flooding is the classic broadcast: the originator transmits, and every
// node re-transmits the first valid copy of each message it receives.
type Flooding struct {
	deps   core.Deps
	jitter time.Duration
	seq    wire.Seq
	seen   map[wire.MsgID]bool

	stats core.Stats
}

// NewFlooding builds a flooding instance. jitter is the random assessment
// delay inserted before each re-flood (0 disables it).
func NewFlooding(deps core.Deps, jitter time.Duration) *Flooding {
	return &Flooding{deps: deps, jitter: jitter, seen: make(map[wire.MsgID]bool)}
}

// Stop is a no-op (flooding has no periodic tasks); it exists for interface
// symmetry with the main protocol.
func (f *Flooding) Stop() {}

// Stats returns protocol counters.
func (f *Flooding) Stats() core.Stats { return f.stats }

// Broadcast originates a message and returns its id.
func (f *Flooding) Broadcast(payload []byte) wire.MsgID {
	f.seq++
	id := wire.MsgID{Origin: f.deps.ID, Seq: f.seq}
	body := make([]byte, len(payload))
	copy(body, payload)
	f.seen[id] = true
	digest := wire.Digest(body)
	f.deps.Send(&wire.Packet{
		Kind:    wire.KindData,
		Sender:  f.deps.ID,
		TTL:     1,
		Target:  wire.NoNode,
		Origin:  id.Origin,
		Seq:     id.Seq,
		Payload: body,
		Sig:     f.deps.Scheme.Sign(uint32(f.deps.ID), wire.DataSigBytes(id, body)),
		Meta:    wire.Meta{Hops: 1, Cause: wire.CauseOrigin, Digest: digest},
	})
	if f.deps.Deliver != nil {
		f.stats.Accepted++
		f.deps.Accept(id, body, wire.Meta{Cause: wire.CauseOrigin, Digest: digest})
	}
	return id
}

// HandlePacket processes a received frame: verify, deliver once, re-flood.
func (f *Flooding) HandlePacket(pkt *wire.Packet) {
	if pkt.Sender == f.deps.ID {
		return
	}
	f.deps.ObserveRx(pkt)
	if pkt.Kind != wire.KindData {
		return
	}
	id := pkt.ID()
	if f.seen[id] {
		f.stats.Duplicates++
		f.deps.ObserveSuppressed(id, pkt.Meta)
		return
	}
	if !f.deps.Scheme.Verify(uint32(id.Origin), wire.DataSigBytes(id, pkt.Payload), pkt.Sig) {
		f.stats.BadSignatures++
		return
	}
	f.seen[id] = true
	f.stats.Accepted++
	f.deps.Accept(id, pkt.Payload, pkt.Meta)
	f.stats.Forwarded++
	fwd := pkt.Clone()
	fwd.Sender = f.deps.ID
	fwd.Meta = wire.Meta{
		Parent:    pkt.Meta.Frame,
		Hops:      pkt.Meta.Hops + 1,
		Cause:     wire.CauseOriginRelay,
		Digest:    pkt.Meta.Digest,
		Recovered: pkt.Meta.Recovered,
	}
	if f.jitter > 0 {
		f.deps.Clock.After(time.Duration(f.deps.Rand.Int63n(int64(f.jitter))), func() {
			f.deps.Send(fwd)
		})
		return
	}
	f.deps.Send(fwd)
}
