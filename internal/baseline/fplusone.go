package baseline

import (
	"sort"
	"time"

	"bbcast/internal/core"
	"bbcast/internal/wire"
)

// FPlusOne implements the f+1 node-independent-overlays approach the paper
// compares against (§1, [15]): to tolerate up to f Byzantine nodes, maintain
// f+1 node-disjoint overlays and flood every message along each of them, so
// at least one overlay is entirely correct. The price is that every message
// costs f+1 overlay floods even in failure-free runs — the overhead the
// paper's protocol eliminates.
//
// The message copy for overlay c carries c as its first payload byte, signed
// by the originator, so copies are individually authenticated and receivers
// know which overlay should relay each copy.
type FPlusOne struct {
	deps   core.Deps
	jitter time.Duration
	f      int
	// member[c] reports whether this node relays on overlay c.
	member []bool

	seq       wire.Seq
	seen      map[wire.MsgID]bool
	forwarded map[chanMsg]bool

	stats core.Stats
}

type chanMsg struct {
	id wire.MsgID
	c  uint8
}

// NewFPlusOne builds an instance for a node that is a member of the given
// overlays (indices in [0, f]). jitter is the random assessment delay before
// each relay.
func NewFPlusOne(deps core.Deps, f int, memberOf []int, jitter time.Duration) *FPlusOne {
	p := &FPlusOne{
		deps:      deps,
		jitter:    jitter,
		f:         f,
		member:    make([]bool, f+1),
		seen:      make(map[wire.MsgID]bool),
		forwarded: make(map[chanMsg]bool),
	}
	for _, c := range memberOf {
		if c >= 0 && c <= f {
			p.member[c] = true
		}
	}
	return p
}

// Stop is a no-op, for interface symmetry.
func (p *FPlusOne) Stop() {}

// Stats returns protocol counters.
func (p *FPlusOne) Stats() core.Stats { return p.stats }

// Broadcast originates a message: one signed copy per overlay.
func (p *FPlusOne) Broadcast(payload []byte) wire.MsgID {
	p.seq++
	id := wire.MsgID{Origin: p.deps.ID, Seq: p.seq}
	p.seen[id] = true
	for c := 0; c <= p.f; c++ {
		body := make([]byte, 0, len(payload)+1)
		body = append(body, byte(c))
		body = append(body, payload...)
		p.deps.Send(&wire.Packet{
			Kind:    wire.KindData,
			Sender:  p.deps.ID,
			TTL:     1,
			Target:  wire.NoNode,
			Origin:  id.Origin,
			Seq:     id.Seq,
			Payload: body,
			Sig:     p.deps.Scheme.Sign(uint32(p.deps.ID), wire.DataSigBytes(id, body)),
			Meta:    wire.Meta{Hops: 1, Cause: wire.CauseOrigin, Digest: wire.Digest(body)},
		})
	}
	if p.deps.Deliver != nil {
		p.stats.Accepted++
		p.deps.Accept(id, payload, wire.Meta{Cause: wire.CauseOrigin, Digest: wire.Digest(payload)})
	}
	return id
}

// HandlePacket verifies a copy, delivers the message once, and relays the
// copy if this node serves its overlay.
func (p *FPlusOne) HandlePacket(pkt *wire.Packet) {
	if pkt.Sender == p.deps.ID {
		return
	}
	p.deps.ObserveRx(pkt)
	if pkt.Kind != wire.KindData || len(pkt.Payload) < 1 {
		return
	}
	id := pkt.ID()
	if !p.deps.Scheme.Verify(uint32(id.Origin), wire.DataSigBytes(id, pkt.Payload), pkt.Sig) {
		p.stats.BadSignatures++
		return
	}
	c := pkt.Payload[0]
	if int(c) > p.f {
		return
	}
	if !p.seen[id] {
		p.seen[id] = true
		p.stats.Accepted++
		p.deps.Accept(id, pkt.Payload[1:], pkt.Meta)
	} else {
		p.stats.Duplicates++
		p.deps.ObserveSuppressed(id, pkt.Meta)
	}
	key := chanMsg{id: id, c: c}
	if p.member[c] && !p.forwarded[key] {
		p.forwarded[key] = true
		p.stats.Forwarded++
		fwd := pkt.Clone()
		fwd.Sender = p.deps.ID
		fwd.Meta = wire.Meta{
			Parent:    pkt.Meta.Frame,
			Hops:      pkt.Meta.Hops + 1,
			Cause:     wire.CauseOriginRelay,
			Digest:    pkt.Meta.Digest,
			Recovered: pkt.Meta.Recovered,
		}
		if p.jitter > 0 {
			p.deps.Clock.After(time.Duration(p.deps.Rand.Int63n(int64(p.jitter))), func() {
				p.deps.Send(fwd)
			})
		} else {
			p.deps.Send(fwd)
		}
	}
}

// DisjointOverlays greedily partitions relays into f+1 node-disjoint
// connected dominating sets over the ground-truth adjacency (indexed by
// node id 0..n-1). Overlay construction is a setup-time, global-knowledge
// operation for this baseline, mirroring how [15]-style systems precompute
// their overlays. When the remaining nodes cannot dominate the graph, the
// overlay falls back to all remaining nodes (degenerate but functional).
//
// The originator of a message always transmits regardless of membership, so
// overlays only need to cover relaying.
func DisjointOverlays(adj [][]bool, f int) [][]int {
	n := len(adj)
	used := make([]bool, n)
	out := make([][]int, 0, f+1)
	for c := 0; c <= f; c++ {
		cds := greedyCDS(adj, used)
		if cds == nil {
			// Fallback: everything not yet used.
			for i := 0; i < n; i++ {
				if !used[i] {
					cds = append(cds, i)
				}
			}
		}
		for _, v := range cds {
			used[v] = true
		}
		sort.Ints(cds)
		out = append(out, cds)
	}
	return out
}

// greedyCDS grows a connected dominating set from allowed (unused) nodes:
// start at the allowed node with the largest closed neighbourhood, then
// repeatedly add the allowed node adjacent to the current set that covers
// the most uncovered nodes. Returns nil if the allowed nodes cannot
// dominate the graph.
func greedyCDS(adj [][]bool, used []bool) []int {
	n := len(adj)
	if n == 0 {
		return nil
	}
	covered := make([]bool, n)
	inSet := make([]bool, n)
	newCover := func(v int) int {
		cnt := 0
		if !covered[v] {
			cnt++
		}
		for u := 0; u < n; u++ {
			if adj[v][u] && !covered[u] {
				cnt++
			}
		}
		return cnt
	}
	addToSet := func(v int) {
		inSet[v] = true
		covered[v] = true
		for u := 0; u < n; u++ {
			if adj[v][u] {
				covered[u] = true
			}
		}
	}
	allCovered := func() bool {
		for i := 0; i < n; i++ {
			if !covered[i] {
				return false
			}
		}
		return true
	}

	// Seed: allowed node with maximum coverage.
	best, bestCover := -1, 0
	for v := 0; v < n; v++ {
		if used[v] {
			continue
		}
		if c := newCover(v); c > bestCover {
			best, bestCover = v, c
		}
	}
	if best < 0 {
		return nil
	}
	set := []int{best}
	addToSet(best)

	for !allCovered() {
		cand, candCover := -1, 0
		for v := 0; v < n; v++ {
			if used[v] || inSet[v] {
				continue
			}
			// Must touch the current set to stay connected.
			touches := false
			for _, s := range set {
				if adj[v][s] {
					touches = true
					break
				}
			}
			if !touches {
				continue
			}
			if c := newCover(v); c > candCover {
				cand, candCover = v, c
			}
		}
		if cand < 0 {
			return nil // cannot extend: allowed nodes exhausted around the set
		}
		set = append(set, cand)
		addToSet(cand)
	}
	return set
}
