// Package wire defines the on-air message format of the broadcast protocol
// and a compact hand-rolled binary codec for it.
//
// Every transmission is a Packet. A packet has a fixed header (kind,
// link-layer sender, TTL, optional addressed target, and the identifier of
// the data message it concerns) plus kind-specific content:
//
//   - Data: the application payload and the originator's signature.
//   - Gossip: a batch of GossipEntry records (aggregation of several
//     message advertisements into one packet, per §1 of the paper).
//   - Request / FindMissing: the advertised header and its originator
//     signature, proving the requested message exists.
//   - OverlayState: the overlay-maintenance record, signed by its sender.
//
// Any packet may piggyback an OverlayState record, which is how maintenance
// traffic rides on gossip packets (§3 "most overlay maintenance messages can
// be piggybacked on gossip messages").
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// NodeID identifies a device. IDs are unforgeable in the model (backed by
// signature keys).
type NodeID uint32

// NoNode is the sentinel "no target" value.
const NoNode NodeID = 0xFFFFFFFF

// Seq is a per-originator message sequence number.
type Seq uint32

// MsgID uniquely identifies an application message by originator and
// sequence number.
type MsgID struct {
	Origin NodeID
	Seq    Seq
}

// Less orders MsgIDs lexicographically (origin, then seq).
func (m MsgID) Less(o MsgID) bool {
	if m.Origin != o.Origin {
		return m.Origin < o.Origin
	}
	return m.Seq < o.Seq
}

// String renders the id as "origin/seq".
func (m MsgID) String() string { return fmt.Sprintf("%d/%d", m.Origin, m.Seq) }

// Kind discriminates packet types.
type Kind uint8

// Packet kinds. Values are part of the wire format; do not reorder.
const (
	KindData         Kind = iota + 1 // application data + originator signature
	KindGossip                       // aggregated message advertisements
	KindRequest                      // REQUEST_MSG: ask for a missing message
	KindFindMissing                  // FIND_MISSING_MSG: overlay-level search
	KindOverlayState                 // overlay maintenance record
	KindSyncReq                      // SYNC-REQ: catch-up request with a compact store summary
	KindSyncResp                     // SYNC-RESP: bulk transfer of entries the requester is missing
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindData:
		return "data"
	case KindGossip:
		return "gossip"
	case KindRequest:
		return "request"
	case KindFindMissing:
		return "find-missing"
	case KindOverlayState:
		return "overlay-state"
	case KindSyncReq:
		return "sync-req"
	case KindSyncResp:
		return "sync-resp"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// NumKinds is the number of defined packet kinds (for metrics arrays).
const NumKinds = 7

// GossipEntry advertises that the gossiper holds message ID, carrying the
// originator's signature over the message header as proof of existence.
type GossipEntry struct {
	ID  MsgID
	Sig []byte
}

// SyncEntry is one message carried in a SYNC-RESP bulk transfer: the payload
// with the originator's data signature (so the receiver verifies before
// accepting, exactly as on the normal data path) and the header signature so
// the rejoiner can advertise the message in its own gossip rounds.
type SyncEntry struct {
	ID        MsgID
	Payload   []byte
	Sig       []byte // originator signature over DataSigBytes(ID, Payload)
	HeaderSig []byte // originator signature over HeaderSigBytes(ID); may be empty
}

// OverlayState is the record a node publishes for overlay maintenance:
// whether it considers itself active (in the overlay), who its neighbours
// are, which of them it believes active, and whom it suspects. The paper's
// second-hand suspicion rule (§3.3) consumes Suspects.
type OverlayState struct {
	Active bool
	// Dominator distinguishes independent-set members from bridge nodes in
	// the MIS+B maintainer (suppression flows only from dominators). CDS
	// overlay nodes are all dominators.
	Dominator       bool
	Neighbors       []NodeID
	ActiveNeighbors []NodeID
	// DominatorNeighbors is the subset of Neighbors the sender believes to
	// be dominators; bridge election connects dominator pairs.
	DominatorNeighbors []NodeID
	Suspects           []NodeID
}

// Cause tags why a frame was transmitted, for causal lineage tracing. It is
// observability metadata: never serialized, never consulted by the protocol.
type Cause uint8

// Forward causes. CauseNone marks a frame whose sender predates lineage
// tracing (or a live rx, where Meta does not cross the wire).
const (
	CauseNone           Cause = iota
	CauseOrigin               // the originator's initial data transmission
	CauseOriginRelay          // overlay data-path relay of a freshly accepted message
	CauseGossipRecovery       // data (re)sent to repair a gap: request service, find service, TTL-flood
	CauseRetry                // bounded-retransmission request (adaptive retry chain)
	CauseGossip               // periodic gossip advertisement round
	CauseRequest              // first REQUEST_MSG for a gossip-advertised gap
	CauseFind                 // FIND_MISSING_MSG overlay search (dispatch or relay)
	CauseState                // standalone overlay-maintenance record
	CauseSyncReq              // rejoiner's catch-up SYNC-REQ
	CauseSyncResp             // neighbour's SYNC-RESP bulk transfer
)

// String implements fmt.Stringer.
func (c Cause) String() string {
	switch c {
	case CauseNone:
		return ""
	case CauseOrigin:
		return "origin"
	case CauseOriginRelay:
		return "origin-relay"
	case CauseGossipRecovery:
		return "gossip-recovery"
	case CauseRetry:
		return "retry"
	case CauseGossip:
		return "gossip"
	case CauseRequest:
		return "request"
	case CauseFind:
		return "find"
	case CauseState:
		return "state"
	case CauseSyncReq:
		return "sync-req"
	case CauseSyncResp:
		return "sync-resp"
	default:
		return fmt.Sprintf("cause(%d)", uint8(c))
	}
}

// Meta is per-frame causal metadata carried alongside a Packet in memory. It
// is not part of the wire format: the simulated medium hands each receiver a
// clone that keeps the sender's Meta, while a live transport decodes frames
// with a zero Meta (rx causality is a simulation-only capability). Frame ids
// are assigned by the transmitting layer; Parent is the frame id of the
// reception that caused this transmission (0 for origin sends).
type Meta struct {
	Frame  uint64 // unique id of this transmission, assigned at tx
	Parent uint64 // frame id this transmission was caused by, or 0
	Hops   uint32 // data frames: path length from the originator (origin tx = 1)
	Cause  Cause  // why this frame was sent
	Digest uint64 // data frames: FNV-64a of the payload
	// Recovered marks a data frame whose payload reached the sender through
	// gossip recovery at some hop (sticky along the forward chain), so every
	// delivery downstream of one repair is attributed to recovery.
	Recovered bool
}

// Digest returns the payload fingerprint carried in lineage events: FNV-64a
// over the raw payload bytes. Zero-length payloads hash to the FNV offset
// basis, never 0, so 0 reads as "no digest".
func Digest(payload []byte) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, b := range payload {
		h ^= uint64(b)
		h *= prime64
	}
	return h
}

// Packet is one radio transmission.
type Packet struct {
	Kind   Kind
	Sender NodeID // link-layer sender of this hop
	TTL    uint8
	Target NodeID // addressed node, or NoNode
	Origin NodeID // originator of the data message concerned (Data/Request/FindMissing)
	Seq    Seq

	Payload []byte // Data only
	Sig     []byte // originator signature (over data or header bytes)

	Gossip []GossipEntry // Gossip only

	State    *OverlayState // OverlayState, or piggybacked on any kind
	StateSig []byte        // sender's signature over the state record

	// SyncHave is the requester's compact store summary (SyncReq only): the
	// message ids it already holds, so the responder sends only the gap.
	SyncHave []MsgID
	// SyncEntries is the responder's bulk transfer (SyncResp only).
	SyncEntries []SyncEntry

	// Meta is in-memory causal metadata (see Meta). Excluded from
	// Marshal/Unmarshal; Clone's value copy carries it to receivers under
	// simulation.
	Meta Meta
}

// ID returns the message identifier the packet concerns.
func (p *Packet) ID() MsgID { return MsgID{Origin: p.Origin, Seq: p.Seq} }

// DataSigBytes returns the byte string an originator signs for a data
// message: msg_id ‖ node_id ‖ msg (§3.2 line 1).
func DataSigBytes(id MsgID, payload []byte) []byte {
	b := make([]byte, 0, 8+len(payload))
	b = binary.LittleEndian.AppendUint32(b, uint32(id.Origin))
	b = binary.LittleEndian.AppendUint32(b, uint32(id.Seq))
	return append(b, payload...)
}

// HeaderSigBytes returns the byte string an originator signs for a gossip
// advertisement: msg_id ‖ node_id (§3.2 line 2).
func HeaderSigBytes(id MsgID) []byte {
	b := make([]byte, 0, 9)
	b = binary.LittleEndian.AppendUint32(b, uint32(id.Origin))
	b = binary.LittleEndian.AppendUint32(b, uint32(id.Seq))
	return append(b, 'h') // domain separation from DataSigBytes of empty payload
}

// StateSigBytes returns the byte string a sender signs over its overlay
// maintenance record ("overlay maintenance messages are signed as well").
func StateSigBytes(sender NodeID, s *OverlayState) []byte {
	b := make([]byte, 0, 20+4*(len(s.Neighbors)+len(s.ActiveNeighbors)+len(s.DominatorNeighbors)+len(s.Suspects)))
	b = binary.LittleEndian.AppendUint32(b, uint32(sender))
	if s.Active {
		b = append(b, 1)
	} else {
		b = append(b, 0)
	}
	if s.Dominator {
		b = append(b, 1)
	} else {
		b = append(b, 0)
	}
	for _, set := range [][]NodeID{s.Neighbors, s.ActiveNeighbors, s.DominatorNeighbors, s.Suspects} {
		b = binary.LittleEndian.AppendUint32(b, uint32(len(set)))
		for _, id := range set {
			b = binary.LittleEndian.AppendUint32(b, uint32(id))
		}
	}
	return b
}

// Codec errors.
var (
	ErrShortPacket = errors.New("wire: truncated packet")
	ErrBadVersion  = errors.New("wire: unknown format version")
	ErrBadKind     = errors.New("wire: unknown packet kind")
)

const wireVersion = 1

// maxSliceLen bounds decoded slice lengths so a corrupted or hostile packet
// cannot force a huge allocation.
const maxSliceLen = 1 << 16

// Marshal encodes the packet. The result is self-contained and versioned.
func (p *Packet) Marshal() []byte {
	b := make([]byte, 0, p.sizeHint())
	b = append(b, wireVersion, byte(p.Kind), p.TTL)
	b = binary.LittleEndian.AppendUint32(b, uint32(p.Sender))
	b = binary.LittleEndian.AppendUint32(b, uint32(p.Target))
	b = binary.LittleEndian.AppendUint32(b, uint32(p.Origin))
	b = binary.LittleEndian.AppendUint32(b, uint32(p.Seq))
	b = appendBytes(b, p.Payload)
	b = appendBytes(b, p.Sig)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(p.Gossip)))
	for _, g := range p.Gossip {
		b = binary.LittleEndian.AppendUint32(b, uint32(g.ID.Origin))
		b = binary.LittleEndian.AppendUint32(b, uint32(g.ID.Seq))
		b = appendBytes(b, g.Sig)
	}
	if p.State == nil {
		b = append(b, 0)
	} else {
		b = append(b, 1)
		if p.State.Active {
			b = append(b, 1)
		} else {
			b = append(b, 0)
		}
		if p.State.Dominator {
			b = append(b, 1)
		} else {
			b = append(b, 0)
		}
		b = appendIDs(b, p.State.Neighbors)
		b = appendIDs(b, p.State.ActiveNeighbors)
		b = appendIDs(b, p.State.DominatorNeighbors)
		b = appendIDs(b, p.State.Suspects)
		b = appendBytes(b, p.StateSig)
	}
	// Sync content is encoded only for the sync kinds, so every pre-existing
	// kind keeps a byte-identical encoding.
	switch p.Kind {
	case KindSyncReq:
		b = binary.LittleEndian.AppendUint32(b, uint32(len(p.SyncHave)))
		for _, id := range p.SyncHave {
			b = binary.LittleEndian.AppendUint32(b, uint32(id.Origin))
			b = binary.LittleEndian.AppendUint32(b, uint32(id.Seq))
		}
	case KindSyncResp:
		b = binary.LittleEndian.AppendUint32(b, uint32(len(p.SyncEntries)))
		for _, e := range p.SyncEntries {
			b = binary.LittleEndian.AppendUint32(b, uint32(e.ID.Origin))
			b = binary.LittleEndian.AppendUint32(b, uint32(e.ID.Seq))
			b = appendBytes(b, e.Payload)
			b = appendBytes(b, e.Sig)
			b = appendBytes(b, e.HeaderSig)
		}
	}
	return b
}

func (p *Packet) sizeHint() int {
	n := 24 + len(p.Payload) + len(p.Sig) + 8
	for _, g := range p.Gossip {
		n += 12 + len(g.Sig)
	}
	if p.State != nil {
		n += 28 + 4*(len(p.State.Neighbors)+len(p.State.ActiveNeighbors)+len(p.State.DominatorNeighbors)+len(p.State.Suspects)) + len(p.StateSig)
	}
	switch p.Kind {
	case KindSyncReq:
		n += 4 + 8*len(p.SyncHave)
	case KindSyncResp:
		n += 4
		for _, e := range p.SyncEntries {
			n += 20 + len(e.Payload) + len(e.Sig) + len(e.HeaderSig)
		}
	}
	return n
}

// AirSize returns the packet's size in bytes as transmitted, used by the
// radio layer to compute airtime.
func (p *Packet) AirSize() int { return p.sizeHint() }

// Unmarshal decodes a packet from b.
func Unmarshal(b []byte) (*Packet, error) {
	d := decoder{b: b}
	ver := d.u8()
	if d.err == nil && ver != wireVersion {
		return nil, ErrBadVersion
	}
	p := &Packet{}
	p.Kind = Kind(d.u8())
	p.TTL = d.u8()
	p.Sender = NodeID(d.u32())
	p.Target = NodeID(d.u32())
	p.Origin = NodeID(d.u32())
	p.Seq = Seq(d.u32())
	p.Payload = d.bytes()
	p.Sig = d.bytes()
	ng := d.u32()
	if d.err == nil && ng > maxSliceLen {
		return nil, ErrShortPacket
	}
	if d.err == nil && ng > 0 {
		p.Gossip = make([]GossipEntry, 0, ng)
		for i := uint32(0); i < ng && d.err == nil; i++ {
			var g GossipEntry
			g.ID.Origin = NodeID(d.u32())
			g.ID.Seq = Seq(d.u32())
			g.Sig = d.bytes()
			p.Gossip = append(p.Gossip, g)
		}
	}
	if d.u8() == 1 && d.err == nil {
		st := &OverlayState{}
		st.Active = d.u8() == 1
		st.Dominator = d.u8() == 1
		st.Neighbors = d.ids()
		st.ActiveNeighbors = d.ids()
		st.DominatorNeighbors = d.ids()
		st.Suspects = d.ids()
		p.State = st
		p.StateSig = d.bytes()
	}
	switch p.Kind {
	case KindSyncReq:
		p.SyncHave = d.msgIDs()
	case KindSyncResp:
		ne := d.u32()
		if d.err == nil && ne > maxSliceLen {
			return nil, ErrShortPacket
		}
		if d.err == nil && ne > 0 {
			p.SyncEntries = make([]SyncEntry, 0, ne)
			for i := uint32(0); i < ne && d.err == nil; i++ {
				var e SyncEntry
				e.ID.Origin = NodeID(d.u32())
				e.ID.Seq = Seq(d.u32())
				e.Payload = d.bytes()
				e.Sig = d.bytes()
				e.HeaderSig = d.bytes()
				p.SyncEntries = append(p.SyncEntries, e)
			}
		}
	}
	if d.err != nil {
		return nil, d.err
	}
	if p.Kind < KindData || p.Kind > KindSyncResp {
		return nil, ErrBadKind
	}
	return p, nil
}

// Clone returns a deep copy of the packet. The radio layer hands each
// receiver its own copy so receivers cannot corrupt one another.
func (p *Packet) Clone() *Packet {
	cp := *p
	// All byte fields share one arena and all id slices another, so a clone
	// costs a handful of allocations regardless of how many fields are set.
	// The medium clones every delivered packet, which makes this the
	// simulator's hottest allocation site.
	nb := len(p.Payload) + len(p.Sig)
	for _, g := range p.Gossip {
		nb += len(g.Sig)
	}
	if p.State != nil {
		nb += len(p.StateSig)
	}
	for _, e := range p.SyncEntries {
		nb += len(e.Payload) + len(e.Sig) + len(e.HeaderSig)
	}
	var arena []byte
	if nb > 0 {
		arena = make([]byte, 0, nb)
	}
	carve := func(b []byte) []byte {
		if len(b) == 0 {
			if b == nil {
				return nil
			}
			return []byte{}
		}
		start := len(arena)
		arena = append(arena, b...)
		return arena[start:len(arena):len(arena)]
	}
	cp.Payload = carve(p.Payload)
	cp.Sig = carve(p.Sig)
	if p.Gossip != nil {
		cp.Gossip = make([]GossipEntry, len(p.Gossip))
		for i, g := range p.Gossip {
			cp.Gossip[i] = GossipEntry{ID: g.ID, Sig: carve(g.Sig)}
		}
	}
	if p.State != nil {
		ni := len(p.State.Neighbors) + len(p.State.ActiveNeighbors) +
			len(p.State.DominatorNeighbors) + len(p.State.Suspects)
		var ids []NodeID
		if ni > 0 {
			ids = make([]NodeID, 0, ni)
		}
		carveIDs := func(s []NodeID) []NodeID {
			if len(s) == 0 {
				if s == nil {
					return nil
				}
				return []NodeID{}
			}
			start := len(ids)
			ids = append(ids, s...)
			return ids[start:len(ids):len(ids)]
		}
		cp.State = &OverlayState{
			Active:             p.State.Active,
			Dominator:          p.State.Dominator,
			Neighbors:          carveIDs(p.State.Neighbors),
			ActiveNeighbors:    carveIDs(p.State.ActiveNeighbors),
			DominatorNeighbors: carveIDs(p.State.DominatorNeighbors),
			Suspects:           carveIDs(p.State.Suspects),
		}
		cp.StateSig = carve(p.StateSig)
	}
	if p.SyncHave != nil {
		cp.SyncHave = append([]MsgID(nil), p.SyncHave...)
	}
	if p.SyncEntries != nil {
		cp.SyncEntries = make([]SyncEntry, len(p.SyncEntries))
		for i, e := range p.SyncEntries {
			cp.SyncEntries[i] = SyncEntry{
				ID:        e.ID,
				Payload:   carve(e.Payload),
				Sig:       carve(e.Sig),
				HeaderSig: carve(e.HeaderSig),
			}
		}
	}
	return &cp
}

func appendBytes(b, v []byte) []byte {
	b = binary.LittleEndian.AppendUint32(b, uint32(len(v)))
	return append(b, v...)
}

func appendIDs(b []byte, ids []NodeID) []byte {
	b = binary.LittleEndian.AppendUint32(b, uint32(len(ids)))
	for _, id := range ids {
		b = binary.LittleEndian.AppendUint32(b, uint32(id))
	}
	return b
}

type decoder struct {
	b   []byte
	err error
}

func (d *decoder) u8() uint8 {
	if d.err != nil {
		return 0
	}
	if len(d.b) < 1 {
		d.err = ErrShortPacket
		return 0
	}
	v := d.b[0]
	d.b = d.b[1:]
	return v
}

func (d *decoder) u32() uint32 {
	if d.err != nil {
		return 0
	}
	if len(d.b) < 4 {
		d.err = ErrShortPacket
		return 0
	}
	v := binary.LittleEndian.Uint32(d.b)
	d.b = d.b[4:]
	return v
}

func (d *decoder) bytes() []byte {
	n := d.u32()
	if d.err != nil {
		return nil
	}
	if n > maxSliceLen || int(n) > len(d.b) {
		d.err = ErrShortPacket
		return nil
	}
	if n == 0 {
		return nil
	}
	v := make([]byte, n)
	copy(v, d.b[:n])
	d.b = d.b[n:]
	return v
}

func (d *decoder) msgIDs() []MsgID {
	n := d.u32()
	if d.err != nil {
		return nil
	}
	if n > maxSliceLen || int(n)*8 > len(d.b) {
		d.err = ErrShortPacket
		return nil
	}
	if n == 0 {
		return nil
	}
	out := make([]MsgID, n)
	for i := range out {
		out[i].Origin = NodeID(binary.LittleEndian.Uint32(d.b[i*8:]))
		out[i].Seq = Seq(binary.LittleEndian.Uint32(d.b[i*8+4:]))
	}
	d.b = d.b[n*8:]
	return out
}

func (d *decoder) ids() []NodeID {
	n := d.u32()
	if d.err != nil {
		return nil
	}
	if n > maxSliceLen || int(n)*4 > len(d.b) {
		d.err = ErrShortPacket
		return nil
	}
	if n == 0 {
		return nil
	}
	out := make([]NodeID, n)
	for i := range out {
		out[i] = NodeID(binary.LittleEndian.Uint32(d.b[i*4:]))
	}
	d.b = d.b[n*4:]
	return out
}
