package wire

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func samplePacket() *Packet {
	return &Packet{
		Kind:    KindData,
		Sender:  7,
		TTL:     2,
		Target:  NoNode,
		Origin:  3,
		Seq:     41,
		Payload: []byte("hello world"),
		Sig:     []byte{1, 2, 3, 4},
		State: &OverlayState{
			Active:          true,
			Neighbors:       []NodeID{1, 2, 3},
			ActiveNeighbors: []NodeID{2},
			Suspects:        []NodeID{9},
		},
		StateSig: []byte{9, 9},
	}
}

func TestRoundTripData(t *testing.T) {
	p := samplePacket()
	got, err := Unmarshal(p.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p, got) {
		t.Fatalf("round trip mismatch:\n in: %+v\nout: %+v", p, got)
	}
}

func TestRoundTripGossip(t *testing.T) {
	p := &Packet{
		Kind:   KindGossip,
		Sender: 1,
		TTL:    1,
		Target: NoNode,
		Origin: NoNode,
		Gossip: []GossipEntry{
			{ID: MsgID{Origin: 3, Seq: 1}, Sig: []byte{0xa}},
			{ID: MsgID{Origin: 4, Seq: 9}, Sig: []byte{0xb, 0xc}},
		},
	}
	got, err := Unmarshal(p.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p, got) {
		t.Fatalf("round trip mismatch:\n in: %+v\nout: %+v", p, got)
	}
}

func TestRoundTripMinimal(t *testing.T) {
	p := &Packet{Kind: KindRequest, Sender: 2, TTL: 1, Target: 5, Origin: 1, Seq: 1}
	got, err := Unmarshal(p.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p, got) {
		t.Fatalf("round trip mismatch:\n in: %+v\nout: %+v", p, got)
	}
}

func TestUnmarshalErrors(t *testing.T) {
	if _, err := Unmarshal(nil); err == nil {
		t.Fatal("nil input should error")
	}
	if _, err := Unmarshal([]byte{99}); err != ErrBadVersion {
		t.Fatalf("bad version: got %v", err)
	}
	p := &Packet{Kind: Kind(200), Sender: 1, TTL: 1, Target: NoNode}
	if _, err := Unmarshal(p.Marshal()); err != ErrBadKind {
		t.Fatalf("bad kind: got %v", err)
	}
}

func TestUnmarshalTruncated(t *testing.T) {
	full := samplePacket().Marshal()
	for i := 1; i < len(full); i++ {
		if _, err := Unmarshal(full[:i]); err == nil {
			t.Fatalf("truncation at %d bytes did not error", i)
		}
	}
}

func TestUnmarshalHugeLengthRejected(t *testing.T) {
	p := &Packet{Kind: KindData, Sender: 1, TTL: 1, Target: NoNode, Payload: []byte("x")}
	b := p.Marshal()
	// Payload length field sits right after the 19-byte fixed header.
	b[19] = 0xff
	b[20] = 0xff
	b[21] = 0xff
	b[22] = 0xff
	if _, err := Unmarshal(b); err == nil {
		t.Fatal("oversized length field should be rejected")
	}
}

func TestCloneIsDeep(t *testing.T) {
	p := samplePacket()
	p.Gossip = []GossipEntry{{ID: MsgID{Origin: 1, Seq: 2}, Sig: []byte{5}}}
	c := p.Clone()
	if !reflect.DeepEqual(p, c) {
		t.Fatal("clone differs")
	}
	c.Payload[0] = 'X'
	c.Sig[0] = 0xFF
	c.Gossip[0].Sig[0] = 0xFF
	c.State.Neighbors[0] = 42
	c.StateSig[0] = 0xFF
	if p.Payload[0] == 'X' || p.Sig[0] == 0xFF || p.Gossip[0].Sig[0] == 0xFF ||
		p.State.Neighbors[0] == 42 || p.StateSig[0] == 0xFF {
		t.Fatal("clone aliases original buffers")
	}
}

func TestMsgIDOrdering(t *testing.T) {
	a := MsgID{Origin: 1, Seq: 5}
	b := MsgID{Origin: 2, Seq: 1}
	c := MsgID{Origin: 1, Seq: 6}
	if !a.Less(b) || !a.Less(c) || b.Less(a) || c.Less(a) {
		t.Fatal("Less ordering wrong")
	}
	if a.Less(a) {
		t.Fatal("Less not irreflexive")
	}
	if a.String() != "1/5" {
		t.Fatalf("String = %q", a.String())
	}
}

func TestKindString(t *testing.T) {
	names := map[Kind]string{
		KindData:         "data",
		KindGossip:       "gossip",
		KindRequest:      "request",
		KindFindMissing:  "find-missing",
		KindOverlayState: "overlay-state",
		Kind(99):         "kind(99)",
	}
	for k, want := range names {
		if k.String() != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, k.String(), want)
		}
	}
}

func TestSigBytesDomainSeparation(t *testing.T) {
	id := MsgID{Origin: 1, Seq: 2}
	if bytes.Equal(DataSigBytes(id, nil), HeaderSigBytes(id)) {
		t.Fatal("data and header signing bytes must differ for empty payload")
	}
	if !bytes.Equal(HeaderSigBytes(id), HeaderSigBytes(id)) {
		t.Fatal("HeaderSigBytes not deterministic")
	}
}

func TestStateSigBytesSensitive(t *testing.T) {
	s := &OverlayState{Active: true, Neighbors: []NodeID{1, 2}}
	base := StateSigBytes(5, s)
	if bytes.Equal(base, StateSigBytes(6, s)) {
		t.Fatal("sender not bound into state signature bytes")
	}
	s2 := &OverlayState{Active: false, Neighbors: []NodeID{1, 2}}
	if bytes.Equal(base, StateSigBytes(5, s2)) {
		t.Fatal("active flag not bound")
	}
	s3 := &OverlayState{Active: true, Neighbors: []NodeID{1}, ActiveNeighbors: []NodeID{2}}
	if bytes.Equal(base, StateSigBytes(5, s3)) {
		t.Fatal("list boundaries not bound (ambiguous concatenation)")
	}
}

func TestAirSizeCoversMarshal(t *testing.T) {
	p := samplePacket()
	if p.AirSize() < len(p.Marshal()) {
		t.Fatalf("AirSize %d < marshal size %d", p.AirSize(), len(p.Marshal()))
	}
}

// Property: Marshal/Unmarshal round-trips arbitrary packets.
func TestQuickRoundTrip(t *testing.T) {
	f := func(kindRaw uint8, sender, target, origin uint32, seq uint32, ttl uint8,
		payload, sig []byte, gossipN uint8, active bool, nbrs []uint32) bool {
		p := &Packet{
			Kind:    Kind(kindRaw%NumKinds) + KindData,
			Sender:  NodeID(sender),
			TTL:     ttl,
			Target:  NodeID(target),
			Origin:  NodeID(origin),
			Seq:     Seq(seq),
			Payload: payload,
			Sig:     sig,
		}
		for i := uint8(0); i < gossipN%8; i++ {
			p.Gossip = append(p.Gossip, GossipEntry{
				ID:  MsgID{Origin: NodeID(i), Seq: Seq(seq + uint32(i))},
				Sig: []byte{i, i + 1},
			})
		}
		if active {
			ids := make([]NodeID, 0, len(nbrs))
			for _, n := range nbrs {
				ids = append(ids, NodeID(n))
			}
			p.State = &OverlayState{Active: true, Neighbors: ids}
			p.StateSig = []byte{1}
		}
		got, err := Unmarshal(p.Marshal())
		if err != nil {
			return false
		}
		// Normalize empty-vs-nil slices before comparing.
		if len(p.Payload) == 0 {
			p.Payload = nil
		}
		if len(p.Sig) == 0 {
			p.Sig = nil
		}
		if p.State != nil && len(p.State.Neighbors) == 0 {
			p.State.Neighbors = nil
		}
		return reflect.DeepEqual(p, got)
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(5))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: Unmarshal never panics on arbitrary input.
func TestQuickUnmarshalNoPanic(t *testing.T) {
	f := func(b []byte) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("panic on input %x: %v", b, r)
			}
		}()
		p, err := Unmarshal(b)
		return err == nil && p != nil || err != nil && p == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: decoding valid bytes, mutating one byte, never panics.
func TestQuickBitFlipNoPanic(t *testing.T) {
	base := samplePacket().Marshal()
	f := func(idx uint16, val byte) bool {
		b := make([]byte, len(base))
		copy(b, base)
		b[int(idx)%len(b)] = val
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("panic: %v", r)
			}
		}()
		Unmarshal(b)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestRoundTripSync(t *testing.T) {
	req := &Packet{
		Kind: KindSyncReq, Sender: 12, TTL: 1, Target: 3, Origin: NoNode,
		SyncHave: []MsgID{{Origin: 1, Seq: 1}, {Origin: 1, Seq: 2}, {Origin: 7, Seq: 9}},
	}
	resp := &Packet{
		Kind: KindSyncResp, Sender: 3, TTL: 1, Target: 12, Origin: NoNode,
		SyncEntries: []SyncEntry{
			{ID: MsgID{Origin: 1, Seq: 3}, Payload: []byte("alpha"), Sig: []byte{1, 2, 3}, HeaderSig: []byte{4, 5}},
			{ID: MsgID{Origin: 7, Seq: 10}, Payload: []byte("beta"), Sig: []byte{6}},
		},
	}
	for _, p := range []*Packet{req, resp} {
		got, err := Unmarshal(p.Marshal())
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(p, got) {
			t.Fatalf("round trip mismatch:\n in: %+v\nout: %+v", p, got)
		}
	}
	// Sync fields are kind-conditional: attached to any other kind they must
	// not reach the wire, so pre-sync decoders stay byte-compatible.
	data := samplePacket()
	plain := data.Marshal()
	data.SyncHave = []MsgID{{Origin: 1, Seq: 1}}
	data.SyncEntries = []SyncEntry{{ID: MsgID{Origin: 1, Seq: 1}}}
	if !bytes.Equal(data.Marshal(), plain) {
		t.Fatal("sync fields leaked into a non-sync packet encoding")
	}
}

func TestCloneSyncIsDeep(t *testing.T) {
	p := &Packet{
		Kind: KindSyncResp, Sender: 3, TTL: 1, Target: 12, Origin: NoNode,
		SyncHave: []MsgID{{Origin: 2, Seq: 2}},
		SyncEntries: []SyncEntry{
			{ID: MsgID{Origin: 1, Seq: 3}, Payload: []byte("alpha"), Sig: []byte{1, 2}, HeaderSig: []byte{3}},
		},
	}
	c := p.Clone()
	if !reflect.DeepEqual(p, c) {
		t.Fatalf("clone mismatch:\n in: %+v\nout: %+v", p, c)
	}
	c.SyncHave[0] = MsgID{Origin: 99, Seq: 99}
	c.SyncEntries[0].Payload[0] = 'X'
	c.SyncEntries[0].Sig[0] = 0xFF
	if p.SyncHave[0].Origin == 99 {
		t.Fatal("clone shares SyncHave backing array")
	}
	if p.SyncEntries[0].Payload[0] == 'X' || p.SyncEntries[0].Sig[0] == 0xFF {
		t.Fatal("clone shares SyncEntries backing arrays")
	}
}
