package wire

import (
	"bytes"
	"testing"
)

// FuzzUnmarshal drives the codec with arbitrary bytes (run with
// `go test -fuzz=FuzzUnmarshal ./internal/wire` for continuous fuzzing; the
// seed corpus runs in normal test mode).
func FuzzUnmarshal(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1})
	f.Add(samplePacket().Marshal())
	gossip := &Packet{
		Kind: KindGossip, Sender: 1, TTL: 1, Target: NoNode, Origin: NoNode,
		Gossip: []GossipEntry{{ID: MsgID{Origin: 3, Seq: 1}, Sig: []byte{0xa}}},
	}
	f.Add(gossip.Marshal())
	f.Fuzz(func(t *testing.T, data []byte) {
		pkt, err := Unmarshal(data)
		if err != nil {
			if pkt != nil {
				t.Fatal("error with non-nil packet")
			}
			return
		}
		// Round-trip stability: re-marshalling a decoded packet and decoding
		// again must be a fixpoint.
		again, err := Unmarshal(pkt.Marshal())
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if !bytes.Equal(again.Marshal(), pkt.Marshal()) {
			t.Fatal("marshal not a fixpoint after one round trip")
		}
	})
}
