package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"
)

// FuzzUnmarshal drives the codec with arbitrary bytes (run with
// `go test -fuzz=FuzzUnmarshal ./internal/wire` for continuous fuzzing; the
// seed corpus runs in normal test mode).
func FuzzUnmarshal(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1})
	f.Add(samplePacket().Marshal())
	gossip := &Packet{
		Kind: KindGossip, Sender: 1, TTL: 1, Target: NoNode, Origin: NoNode,
		Gossip: []GossipEntry{{ID: MsgID{Origin: 3, Seq: 1}, Sig: []byte{0xa}}},
	}
	f.Add(gossip.Marshal())
	// Truncations of a valid packet at a few interesting boundaries (the
	// deterministic sweep over every prefix lives in TestUnmarshalTruncated).
	full := samplePacket().Marshal()
	for _, cut := range []int{1, 2, 3, 7, 15, len(full) / 2, len(full) - 1} {
		if cut < len(full) {
			f.Add(full[:cut])
		}
	}
	// Oversized declared lengths: a hostile packet claiming a payload far
	// beyond the buffer, and one just past maxSliceLen.
	huge := append([]byte{}, full[:19]...)
	huge = binary.LittleEndian.AppendUint32(huge, 0xFFFFFFFF)
	f.Add(huge)
	capped := append([]byte{}, full[:19]...)
	capped = binary.LittleEndian.AppendUint32(capped, maxSliceLen+1)
	f.Add(capped)
	f.Fuzz(func(t *testing.T, data []byte) {
		pkt, err := Unmarshal(data)
		if err != nil {
			if pkt != nil {
				t.Fatal("error with non-nil packet")
			}
			return
		}
		// Round-trip stability: re-marshalling a decoded packet and decoding
		// again must be a fixpoint.
		again, err := Unmarshal(pkt.Marshal())
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if !bytes.Equal(again.Marshal(), pkt.Marshal()) {
			t.Fatal("marshal not a fixpoint after one round trip")
		}
	})
}

// TestUnmarshalTruncatedAllKinds feeds every strict prefix of a valid packet
// of each kind to the decoder: none may panic, and all must fail cleanly (a
// shorter valid packet cannot be a prefix of a longer one in this format,
// because every variable-length field is length-prefixed and the state flag
// byte is mandatory).
func TestUnmarshalTruncatedAllKinds(t *testing.T) {
	for _, pkt := range fuzzKindSamples() {
		full := pkt.Marshal()
		for cut := 0; cut < len(full); cut++ {
			got, err := Unmarshal(full[:cut])
			if err == nil {
				t.Fatalf("kind %v: decoding %d of %d bytes succeeded: %+v", pkt.Kind, cut, len(full), got)
			}
			if got != nil {
				t.Fatalf("kind %v: error with non-nil packet at cut %d", pkt.Kind, cut)
			}
		}
		if _, err := Unmarshal(full); err != nil {
			t.Fatalf("kind %v: full packet failed to decode: %v", pkt.Kind, err)
		}
	}
}

// TestUnmarshalOversizedLengths checks that declared slice lengths beyond the
// buffer or beyond maxSliceLen are rejected without huge allocations.
func TestUnmarshalOversizedLengths(t *testing.T) {
	full := samplePacket().Marshal()
	// The payload length field sits right after the 19-byte fixed header
	// (version, kind, ttl, then four 4-byte id/seq fields).
	const payloadLenOff = 19
	for _, declared := range []uint32{maxSliceLen + 1, 1 << 30, 0xFFFFFFFF} {
		evil := append([]byte{}, full...)
		binary.LittleEndian.PutUint32(evil[payloadLenOff:], declared)
		got, err := Unmarshal(evil)
		if err == nil {
			t.Fatalf("declared payload length %d accepted: %+v", declared, got)
		}
		if !errors.Is(err, ErrShortPacket) {
			t.Fatalf("declared payload length %d: got %v, want ErrShortPacket", declared, err)
		}
	}
	// A declared length larger than the remaining buffer but under the cap
	// must also fail as a short packet, not read out of bounds.
	evil := append([]byte{}, full...)
	binary.LittleEndian.PutUint32(evil[payloadLenOff:], uint32(len(full)))
	if _, err := Unmarshal(evil); !errors.Is(err, ErrShortPacket) {
		t.Fatalf("over-buffer payload length: got %v, want ErrShortPacket", err)
	}
}

// fuzzKindSamples returns one representative valid packet per kind.
func fuzzKindSamples() []*Packet {
	return []*Packet{
		samplePacket(),
		{
			Kind: KindGossip, Sender: 2, TTL: 3, Target: NoNode, Origin: NoNode,
			Gossip: []GossipEntry{
				{ID: MsgID{Origin: 3, Seq: 1}, Sig: []byte{0xa, 0xb}},
				{ID: MsgID{Origin: 9, Seq: 4}, Sig: []byte{0xc}},
			},
		},
		{Kind: KindRequest, Sender: 5, TTL: 1, Target: 6, Origin: 3, Seq: 41, Sig: []byte{1, 2, 3}},
		{Kind: KindFindMissing, Sender: 5, TTL: 4, Target: NoNode, Origin: 3, Seq: 41, Sig: []byte{1, 2, 3}},
		{
			Kind: KindOverlayState, Sender: 8, TTL: 1, Target: NoNode, Origin: NoNode,
			State: &OverlayState{
				Active: true, Dominator: true,
				Neighbors:       []NodeID{1, 2, 3},
				ActiveNeighbors: []NodeID{2},
				Suspects:        []NodeID{3},
			},
			StateSig: []byte{9, 9},
		},
		{
			Kind: KindSyncReq, Sender: 4, TTL: 1, Target: 9, Origin: NoNode,
			SyncHave: []MsgID{{Origin: 1, Seq: 2}, {Origin: 3, Seq: 4}},
		},
		{
			Kind: KindSyncResp, Sender: 9, TTL: 1, Target: 4, Origin: NoNode,
			SyncEntries: []SyncEntry{
				{ID: MsgID{Origin: 1, Seq: 5}, Payload: []byte("pay"), Sig: []byte{1, 2}, HeaderSig: []byte{3}},
				{ID: MsgID{Origin: 2, Seq: 6}, Payload: []byte("load"), Sig: []byte{4}},
			},
		},
	}
}
