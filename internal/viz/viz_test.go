package viz

import (
	"strings"
	"testing"

	"bbcast/internal/geo"
	"bbcast/internal/overlay"
	"bbcast/internal/wire"
)

func sampleSnapshot() Snapshot {
	return Snapshot{
		Area:  geo.Rect{W: 1000, H: 500},
		Range: 250,
		Nodes: []Node{
			{ID: 0, Pos: geo.Point{X: 100, Y: 100}, Role: overlay.Dominator},
			{ID: 1, Pos: geo.Point{X: 300, Y: 100}, Role: overlay.Bridge},
			{ID: 2, Pos: geo.Point{X: 500, Y: 100}, Role: overlay.Passive, Adversary: true},
		},
		Links: [][2]wire.NodeID{{0, 1}, {1, 2}},
	}
}

func TestRenderProducesSVG(t *testing.T) {
	var b strings.Builder
	if err := Render(&b, sampleSnapshot()); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.HasPrefix(out, "<svg") || !strings.HasSuffix(strings.TrimSpace(out), "</svg>") {
		t.Fatal("not a complete SVG document")
	}
	for _, want := range []string{
		"#d04a4a", // dominator colour
		"#d0924a", // bridge colour
		"#999999", // passive colour
		"#4a7bd0", // overlay link colour
		"Byzantine",
		"<line",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
	// The adversary carries the black ring.
	if !strings.Contains(out, `stroke="#000000"`) {
		t.Error("adversary ring missing")
	}
}

func TestRenderCountsElements(t *testing.T) {
	var b strings.Builder
	if err := Render(&b, sampleSnapshot()); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if got := strings.Count(out, "<line"); got != 2 {
		t.Errorf("lines = %d, want 2", got)
	}
	// 3 node circles + 1 range disk + 3 legend dots.
	if got := strings.Count(out, "<circle"); got != 7 {
		t.Errorf("circles = %d, want 7", got)
	}
	// 3 id labels + 3 legend labels + 1 byzantine note.
	if got := strings.Count(out, "<text"); got != 7 {
		t.Errorf("texts = %d, want 7", got)
	}
}

func TestRenderEmptySnapshot(t *testing.T) {
	var b strings.Builder
	if err := Render(&b, Snapshot{Area: geo.Rect{W: 100, H: 100}}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "<svg") {
		t.Fatal("empty snapshot did not render")
	}
}

func TestRenderTallArea(t *testing.T) {
	s := sampleSnapshot()
	s.Area = geo.Rect{W: 500, H: 1000} // taller than wide: scale by height
	var b strings.Builder
	if err := Render(&b, s); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "<svg") {
		t.Fatal("tall area did not render")
	}
}
