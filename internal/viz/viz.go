// Package viz renders a network snapshot — node positions, overlay roles,
// adversaries and radio links — as a standalone SVG, for inspecting what a
// scenario's overlay actually looks like.
package viz

import (
	"fmt"
	"io"
	"strings"

	"bbcast/internal/geo"
	"bbcast/internal/overlay"
	"bbcast/internal/wire"
)

// Node is one device in a snapshot.
type Node struct {
	ID        wire.NodeID
	Pos       geo.Point
	Role      overlay.Role
	Adversary bool
}

// Snapshot is a render input.
type Snapshot struct {
	Area  geo.Rect
	Range float64
	Nodes []Node
	// Links are undirected radio links (pairs of node ids).
	Links [][2]wire.NodeID
}

// svg canvas size (px) for the longer area edge.
const canvas = 800.0

// Render writes the snapshot as an SVG document.
func Render(w io.Writer, s Snapshot) error {
	scale := canvas / s.Area.W
	if s.Area.H > s.Area.W {
		scale = canvas / s.Area.H
	}
	width := s.Area.W * scale
	height := s.Area.H * scale
	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%.0f" height="%.0f" viewBox="0 0 %.0f %.0f">`+"\n",
		width+40, height+40, width+40, height+40)
	b.WriteString(`<rect width="100%" height="100%" fill="#fafafa"/>` + "\n")

	pos := make(map[wire.NodeID]geo.Point, len(s.Nodes))
	active := make(map[wire.NodeID]bool, len(s.Nodes))
	for _, n := range s.Nodes {
		pos[n.ID] = geo.Point{X: n.Pos.X*scale + 20, Y: n.Pos.Y*scale + 20}
		active[n.ID] = n.Role.Active()
	}

	// Links: overlay-to-overlay links drawn stronger.
	for _, l := range s.Links {
		a, okA := pos[l[0]]
		z, okB := pos[l[1]]
		if !okA || !okB {
			continue
		}
		stroke, width := "#d0d0d0", 0.6
		if active[l[0]] && active[l[1]] {
			stroke, width = "#4a7bd0", 1.8
		}
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="%s" stroke-width="%.1f"/>`+"\n",
			a.X, a.Y, z.X, z.Y, stroke, width)
	}

	// One sample radio-range disk on the first node, for scale.
	if len(s.Nodes) > 0 && s.Range > 0 {
		p := pos[s.Nodes[0].ID]
		fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="%.1f" fill="none" stroke="#bbb" stroke-dasharray="4 4"/>`+"\n",
			p.X, p.Y, s.Range*scale)
	}

	for _, n := range s.Nodes {
		p := pos[n.ID]
		fill, r := "#999999", 4.0 // passive
		switch n.Role {
		case overlay.Dominator:
			fill, r = "#d04a4a", 7.0
		case overlay.Bridge:
			fill, r = "#d0924a", 5.5
		}
		stroke := "none"
		if n.Adversary {
			stroke = "#000000"
		}
		fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="%.1f" fill="%s" stroke="%s" stroke-width="2"/>`+"\n",
			p.X, p.Y, r, fill, stroke)
		fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-size="9" fill="#333" text-anchor="middle">%d</text>`+"\n",
			p.X, p.Y-9, n.ID)
	}

	// Legend.
	legend := []struct {
		label, fill string
	}{
		{"dominator", "#d04a4a"},
		{"bridge", "#d0924a"},
		{"passive", "#999999"},
	}
	for i, item := range legend {
		y := 18 + float64(i)*16
		fmt.Fprintf(&b, `<circle cx="14" cy="%.1f" r="5" fill="%s"/><text x="24" y="%.1f" font-size="11" fill="#333">%s</text>`+"\n",
			y, item.fill, y+4, item.label)
	}
	fmt.Fprintf(&b, `<text x="24" y="%.1f" font-size="11" fill="#333">black ring = Byzantine</text>`+"\n", 18+3*16+4.0)
	b.WriteString("</svg>\n")
	_, err := io.WriteString(w, b.String())
	return err
}
