package persist

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"math/rand"
	"reflect"
	"testing"

	"bbcast/internal/wire"
)

// frame wraps one record payload in the log framing.
func frame(payload []byte) []byte {
	out := make([]byte, frameHeader+len(payload))
	binary.LittleEndian.PutUint32(out, uint32(len(payload)))
	binary.LittleEndian.PutUint32(out[4:], crc32.ChecksumIEEE(payload))
	copy(out[frameHeader:], payload)
	return out
}

func deliveredRec(origin, seq uint32, digest uint64) []byte {
	p := make([]byte, 17)
	p[0] = recDelivered
	binary.LittleEndian.PutUint32(p[1:], origin)
	binary.LittleEndian.PutUint32(p[5:], seq)
	binary.LittleEndian.PutUint64(p[9:], digest)
	return p
}

func seqRec(seq uint32) []byte {
	p := make([]byte, 5)
	p[0] = recSeq
	binary.LittleEndian.PutUint32(p[1:], seq)
	return p
}

func suspicionRec(detector uint8, subject uint32, raised bool) []byte {
	p := make([]byte, 7)
	p[0] = recSuspicion
	p[1] = detector
	binary.LittleEndian.PutUint32(p[2:], subject)
	if raised {
		p[6] = 1
	}
	return p
}

func id(origin, seq uint32) wire.MsgID {
	return wire.MsgID{Origin: wire.NodeID(origin), Seq: wire.Seq(seq)}
}

// TestReplayTable drives Open through the recovery cases the log format is
// designed around: clean logs, torn tails, corrupted middle records, records
// with bad structure, and a snapshot the log extends.
func TestReplayTable(t *testing.T) {
	goodSnap := func() []byte {
		st := newState()
		st.Seq = 3
		st.Delivered[id(1, 1)] = DeliveredRec{Digest: 11, Gen: 0}
		st.Gen = 1
		return encodeSnapshot(st)
	}

	cases := map[string]struct {
		snapshot []byte
		log      []byte
		wantSeq  uint32
		wantIDs  []wire.MsgID
		wantLog  []byte // expected compacted log; nil means unchanged
	}{
		"empty log": {
			wantSeq: 0,
			wantIDs: nil,
		},
		"clean log": {
			log: bytes.Join([][]byte{
				frame(seqRec(7)),
				frame(deliveredRec(2, 1, 22)),
				frame(deliveredRec(2, 2, 23)),
			}, nil),
			wantSeq: 7,
			wantIDs: []wire.MsgID{id(2, 1), id(2, 2)},
		},
		"truncated tail": {
			// A torn final record: replay keeps everything before it and Open
			// compacts the log back to the valid prefix.
			log: append(
				frame(deliveredRec(2, 1, 22)),
				frame(deliveredRec(2, 2, 23))[:11]...),
			wantSeq: 0,
			wantIDs: []wire.MsgID{id(2, 1)},
			wantLog: frame(deliveredRec(2, 1, 22)),
		},
		"corrupted middle record": {
			// A flipped bit in the middle record's payload fails its CRC;
			// everything from there on is discarded even though the final
			// record is intact (no resynchronization heuristics).
			log: func() []byte {
				a := frame(deliveredRec(2, 1, 22))
				b := frame(deliveredRec(2, 2, 23))
				b[frameHeader+3] ^= 0x40
				c := frame(deliveredRec(2, 3, 24))
				return bytes.Join([][]byte{a, b, c}, nil)
			}(),
			wantSeq: 0,
			wantIDs: []wire.MsgID{id(2, 1)},
			wantLog: frame(deliveredRec(2, 1, 22)),
		},
		"bad record structure": {
			// Correct framing and CRC around a payload whose length does not
			// match its tag: structurally invalid, truncate there.
			log: append(
				frame(seqRec(9)),
				frame([]byte{recDelivered, 1, 2, 3})...),
			wantSeq: 9,
			wantIDs: nil,
			wantLog: frame(seqRec(9)),
		},
		"unknown tag": {
			log:     frame([]byte{0xEE, 1, 2}),
			wantSeq: 0,
			wantIDs: nil,
			wantLog: []byte{},
		},
		"snapshot plus log": {
			snapshot: goodSnap(),
			log: bytes.Join([][]byte{
				frame(seqRec(5)),
				frame(deliveredRec(4, 1, 44)),
			}, nil),
			wantSeq: 5,
			wantIDs: []wire.MsgID{id(1, 1), id(4, 1)},
		},
		"corrupt snapshot ignored": {
			snapshot: append(goodSnap(), 0xFF), // trailing byte → structurally invalid
			log:      frame(seqRec(2)),
			wantSeq:  2,
			wantIDs:  nil,
		},
	}

	for name, tc := range cases {
		t.Run(name, func(t *testing.T) {
			dev := &MemDevice{snapshot: tc.snapshot, log: append([]byte(nil), tc.log...)}
			s, err := Open(dev)
			if err != nil {
				t.Fatal(err)
			}
			if s.Seq() != tc.wantSeq {
				t.Errorf("Seq = %d, want %d", s.Seq(), tc.wantSeq)
			}
			var wantIDs []wire.MsgID
			wantIDs = append(wantIDs, tc.wantIDs...)
			got := s.DeliveredSorted()
			if len(got) == 0 {
				got = nil
			}
			if len(wantIDs) == 0 {
				wantIDs = nil
			}
			if !reflect.DeepEqual(got, wantIDs) {
				t.Errorf("Delivered = %v, want %v", got, wantIDs)
			}
			wantLog := tc.log
			if tc.wantLog != nil {
				wantLog = tc.wantLog
			}
			if gotLog, _ := dev.ReadLog(); !bytes.Equal(gotLog, wantLog) {
				t.Errorf("log after Open = %x, want %x", gotLog, wantLog)
			}
		})
	}
}

// TestRecordReopenRoundTrip writes state through the public API, reopens the
// device, and expects identical recovered state — with and without an
// intervening snapshot compaction.
func TestRecordReopenRoundTrip(t *testing.T) {
	for _, snapshot := range []bool{false, true} {
		dev := &MemDevice{}
		s, err := Open(dev)
		if err != nil {
			t.Fatal(err)
		}
		s.RecordSeq(4)
		s.RecordDelivered(id(7, 1), 71)
		s.RecordDelivered(id(7, 2), 72)
		s.RecordSuspicion(DetectorTrust, 9, true)
		s.RecordSuspicion(DetectorMute, 5, true)
		s.RecordSuspicion(DetectorMute, 5, false) // cleared: must not survive
		if snapshot {
			if err := s.Snapshot(); err != nil {
				t.Fatal(err)
			}
			if log, _ := dev.ReadLog(); len(log) != 0 {
				t.Fatal("snapshot did not truncate the log")
			}
			// Post-snapshot appends extend the compacted state.
			s.RecordDelivered(id(7, 3), 73)
		}
		back, err := Open(dev)
		if err != nil {
			t.Fatal(err)
		}
		if back.Seq() != 4 {
			t.Errorf("snapshot=%v: Seq = %d, want 4", snapshot, back.Seq())
		}
		wantN := 2
		if snapshot {
			wantN = 3
		}
		if back.Len() != wantN {
			t.Errorf("snapshot=%v: Len = %d, want %d", snapshot, back.Len(), wantN)
		}
		if rec, ok := back.Delivered(id(7, 2)); !ok || rec.Digest != 72 {
			t.Errorf("snapshot=%v: Delivered(7/2) = %+v, %v", snapshot, rec, ok)
		}
		sus := back.SuspicionsSorted()
		if len(sus) != 1 || sus[0] != (Suspicion{Detector: DetectorTrust, Subject: 9}) {
			t.Errorf("snapshot=%v: Suspicions = %+v, want only trust(9)", snapshot, sus)
		}
	}
}

func TestDeliveredCapEvictsOldest(t *testing.T) {
	dev := &MemDevice{}
	s, err := Open(dev)
	if err != nil {
		t.Fatal(err)
	}
	s.MaxDelivered = 4
	for i := uint32(1); i <= 6; i++ {
		s.RecordDelivered(id(1, i), uint64(i))
	}
	want := []wire.MsgID{id(1, 3), id(1, 4), id(1, 5), id(1, 6)}
	if got := s.DeliveredSorted(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Delivered = %v, want %v (oldest evicted first)", got, want)
	}
}

// TestCorruptDeterministic pins the seeded corruption injection: same seed,
// same damage, byte for byte.
func TestCorruptDeterministic(t *testing.T) {
	build := func() *MemDevice {
		dev := &MemDevice{}
		s, _ := Open(dev)
		for i := uint32(1); i <= 8; i++ {
			s.RecordDelivered(id(3, i), uint64(100+i))
		}
		return dev
	}
	a, b := build(), build()
	c := Corruption{TearTail: true, FlipBits: 3}
	a.Corrupt(rand.New(rand.NewSource(42)), c)
	b.Corrupt(rand.New(rand.NewSource(42)), c)
	if !bytes.Equal(a.log, b.log) {
		t.Fatal("same seed produced different corruption")
	}
	pristine := build()
	if bytes.Equal(a.log, pristine.log) {
		t.Fatal("corruption did not change the log")
	}
	// Whatever the damage, Open must recover a valid prefix without error.
	s, err := Open(a)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() > 8 {
		t.Fatalf("recovered %d deliveries from a log of 8", s.Len())
	}
}

func TestFileDeviceRoundTrip(t *testing.T) {
	dir := t.TempDir()
	dev, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	s, err := Open(dev)
	if err != nil {
		t.Fatal(err)
	}
	s.RecordSeq(11)
	s.RecordDelivered(id(2, 9), 29)
	if err := s.Snapshot(); err != nil {
		t.Fatal(err)
	}
	s.RecordDelivered(id(2, 10), 30)
	if err := s.Err(); err != nil {
		t.Fatal(err)
	}
	if err := dev.Close(); err != nil {
		t.Fatal(err)
	}

	dev2, err := OpenDir(dir) // same directory: a daemon restart
	if err != nil {
		t.Fatal(err)
	}
	defer dev2.Close()
	back, err := Open(dev2)
	if err != nil {
		t.Fatal(err)
	}
	if back.Seq() != 11 || back.Len() != 2 {
		t.Fatalf("recovered Seq=%d Len=%d, want 11, 2", back.Seq(), back.Len())
	}
}

// FuzzReplayLog feeds arbitrary bytes through the log replay path: it must
// never panic, and the recovered byte count must be a valid prefix that
// replays to the same state a second time (truncation is idempotent).
func FuzzReplayLog(f *testing.F) {
	f.Add([]byte{})
	f.Add(frame(seqRec(7)))
	f.Add(bytes.Join([][]byte{frame(deliveredRec(1, 2, 3)), frame(suspicionRec(DetectorTrust, 4, true))}, nil))
	torn := frame(deliveredRec(9, 9, 9))
	f.Add(torn[:len(torn)-3])
	f.Fuzz(func(t *testing.T, raw []byte) {
		s := &Store{state: newState()}
		valid := s.replay(raw)
		if valid < 0 || valid > len(raw) {
			t.Fatalf("valid = %d outside [0,%d]", valid, len(raw))
		}
		s2 := &Store{state: newState()}
		if again := s2.replay(raw[:valid]); again != valid {
			t.Fatalf("replay of valid prefix stopped at %d, want %d", again, valid)
		}
		if !reflect.DeepEqual(s.state, s2.state) {
			t.Fatal("replaying the valid prefix produced different state")
		}
	})
}

// FuzzSnapshotDecode feeds arbitrary bytes through the snapshot decoder: it
// must never panic, and whatever decodes must re-encode to an equivalent
// snapshot.
func FuzzSnapshotDecode(f *testing.F) {
	st := newState()
	st.Seq = 5
	st.Delivered[id(1, 2)] = DeliveredRec{Digest: 3, Gen: 0}
	st.Gen = 1
	st.Suspicions[Suspicion{Detector: DetectorTrust, Subject: 7}] = true
	f.Add(encodeSnapshot(st))
	f.Add([]byte("BBPS"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, raw []byte) {
		decoded, ok := decodeSnapshot(raw)
		if !ok {
			return
		}
		back, ok2 := decodeSnapshot(encodeSnapshot(decoded))
		if !ok2 {
			t.Fatal("re-encoded snapshot failed to decode")
		}
		if !reflect.DeepEqual(decoded, back) {
			t.Fatal("snapshot decode/encode/decode not a fixpoint")
		}
	})
}
