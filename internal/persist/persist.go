package persist

import (
	"encoding/binary"
	"hash/crc32"
	"sort"

	"bbcast/internal/wire"
)

// Record framing: every log record is [u32 length][u32 crc32(payload)]
// [payload]. The length is the payload's, excluding the 8-byte frame header.
// A record whose frame is short, whose length is implausible, or whose CRC
// mismatches marks the end of the usable log: everything after it is
// discarded (replay-truncate-at-first-bad-record).
const (
	frameHeader  = 8
	maxRecordLen = 1 << 10
)

// Record tags.
const (
	recDelivered = 1 // origin u32, seq u32, digest u64
	recSeq       = 2 // seq u32
	recSuspicion = 3 // detector u8, subject u32, raised u8
)

// Snapshot framing: magic, version, a CRC over the body, then the body.
var snapMagic = [4]byte{'B', 'B', 'P', 'S'}

const snapVersion = 1

// DefaultMaxDelivered bounds the delivered-digest table when the caller does
// not set Store.MaxDelivered (matches core's default MaxStore).
const DefaultMaxDelivered = 4096

// DeliveredRec is one remembered delivery: the payload digest (for duplicate
// detection across a restart) and a monotonic generation used for bounded
// oldest-first eviction.
type DeliveredRec struct {
	Digest uint64
	Gen    uint64
}

// Detector identifiers used in Suspicion records. Small fixed bytes rather
// than the detectors' own types so the on-disk format does not depend on
// higher-layer packages.
const (
	DetectorMute    uint8 = 1
	DetectorVerbose uint8 = 2
	DetectorTrust   uint8 = 3
)

// Suspicion identifies one detector/subject suspicion slot.
type Suspicion struct {
	Detector uint8
	Subject  wire.NodeID
}

// State is the recovered durable state.
type State struct {
	// Seq is the highest recorded origination sequence counter.
	Seq uint32
	// Gen is the next delivery generation.
	Gen uint64
	// Delivered maps message ids to their recorded delivery digests.
	Delivered map[wire.MsgID]DeliveredRec
	// Suspicions is the set of suspicion slots recorded as raised.
	Suspicions map[Suspicion]bool
}

func newState() State {
	return State{
		Delivered:  make(map[wire.MsgID]DeliveredRec),
		Suspicions: make(map[Suspicion]bool),
	}
}

// Store is the durable-state handle the protocol records into. Writes are
// best-effort: the first device error is retained in Err and later writes
// become no-ops, because durable state is an accelerator — a node whose disk
// died keeps broadcasting, it just rejoins with amnesia next time.
type Store struct {
	dev   Device
	state State
	// MaxDelivered caps the delivered-digest table (oldest generation
	// evicted first); <= 0 means DefaultMaxDelivered.
	MaxDelivered int
	err          error
}

// Open replays dev's snapshot and log into a Store. A corrupt snapshot is
// treated as absent; the log is replayed up to its first bad record and, if
// damage was found, compacted back to the valid prefix so the next append
// does not extend garbage. Only device I/O errors are returned.
func Open(dev Device) (*Store, error) {
	s := &Store{dev: dev, state: newState()}
	snap, err := dev.ReadSnapshot()
	if err != nil {
		return nil, err
	}
	if st, ok := decodeSnapshot(snap); ok {
		s.state = st
	}
	raw, err := dev.ReadLog()
	if err != nil {
		return nil, err
	}
	valid := s.replay(raw)
	if valid < len(raw) {
		// Damage found: rewrite the log as its valid prefix.
		if err := dev.ResetLog(); err != nil {
			return nil, err
		}
		if valid > 0 {
			if err := dev.AppendLog(raw[:valid]); err != nil {
				return nil, err
			}
		}
	}
	return s, nil
}

// replay applies framed records from raw until the first bad record and
// returns how many bytes were valid.
func (s *Store) replay(raw []byte) int {
	off := 0
	for {
		if len(raw)-off < frameHeader {
			return off
		}
		n := int(binary.LittleEndian.Uint32(raw[off:]))
		crc := binary.LittleEndian.Uint32(raw[off+4:])
		if n == 0 || n > maxRecordLen || len(raw)-off-frameHeader < n {
			return off
		}
		payload := raw[off+frameHeader : off+frameHeader+n]
		if crc32.ChecksumIEEE(payload) != crc {
			return off
		}
		if !s.apply(payload) {
			return off
		}
		off += frameHeader + n
	}
}

// apply interprets one record payload; false means the record is
// structurally invalid (wrong length for its tag, unknown tag).
func (s *Store) apply(p []byte) bool {
	switch p[0] {
	case recDelivered:
		if len(p) != 17 {
			return false
		}
		id := wire.MsgID{
			Origin: wire.NodeID(binary.LittleEndian.Uint32(p[1:])),
			Seq:    wire.Seq(binary.LittleEndian.Uint32(p[5:])),
		}
		s.noteDelivered(id, binary.LittleEndian.Uint64(p[9:]))
	case recSeq:
		if len(p) != 5 {
			return false
		}
		if seq := binary.LittleEndian.Uint32(p[1:]); seq > s.state.Seq {
			s.state.Seq = seq
		}
	case recSuspicion:
		if len(p) != 7 {
			return false
		}
		key := Suspicion{Detector: p[1], Subject: wire.NodeID(binary.LittleEndian.Uint32(p[2:]))}
		if p[6] != 0 {
			s.state.Suspicions[key] = true
		} else {
			delete(s.state.Suspicions, key)
		}
	default:
		return false
	}
	return true
}

// noteDelivered inserts one delivery into the in-memory table under the
// bounded-state cap.
func (s *Store) noteDelivered(id wire.MsgID, digest uint64) {
	if _, known := s.state.Delivered[id]; !known {
		s.enforceDeliveredCap()
	}
	s.state.Delivered[id] = DeliveredRec{Digest: digest, Gen: s.state.Gen}
	s.state.Gen++
}

// enforceDeliveredCap makes room for one insertion by evicting the oldest
// generation (ties broken by smallest id — a pure minimum with a total
// order, so the randomized map iteration cannot pick the victim).
func (s *Store) enforceDeliveredCap() {
	max := s.MaxDelivered
	if max <= 0 {
		max = DefaultMaxDelivered
	}
	for len(s.state.Delivered) >= max {
		var victim wire.MsgID
		var victimGen uint64
		found := false
		//bbvet:unordered pure minimum under a total order; every iteration order picks the same victim
		for id, rec := range s.state.Delivered {
			if !found || rec.Gen < victimGen || (rec.Gen == victimGen && id.Less(victim)) {
				victim, victimGen, found = id, rec.Gen, true
			}
		}
		if !found {
			return
		}
		delete(s.state.Delivered, victim)
	}
}

// appendRecord frames and appends one record payload.
func (s *Store) appendRecord(payload []byte) {
	if s.err != nil {
		return
	}
	frame := make([]byte, frameHeader+len(payload))
	binary.LittleEndian.PutUint32(frame, uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:], crc32.ChecksumIEEE(payload))
	copy(frame[frameHeader:], payload)
	if err := s.dev.AppendLog(frame); err != nil {
		s.err = err
	}
}

// RecordDelivered persists one delivery (id + payload digest).
func (s *Store) RecordDelivered(id wire.MsgID, digest uint64) {
	s.noteDelivered(id, digest)
	p := make([]byte, 17)
	p[0] = recDelivered
	binary.LittleEndian.PutUint32(p[1:], uint32(id.Origin))
	binary.LittleEndian.PutUint32(p[5:], uint32(id.Seq))
	binary.LittleEndian.PutUint64(p[9:], digest)
	s.appendRecord(p)
}

// RecordSeq persists the origination sequence counter high-water mark.
func (s *Store) RecordSeq(seq uint32) {
	if seq > s.state.Seq {
		s.state.Seq = seq
	}
	p := make([]byte, 5)
	p[0] = recSeq
	binary.LittleEndian.PutUint32(p[1:], seq)
	s.appendRecord(p)
}

// RecordSuspicion persists one suspicion transition.
func (s *Store) RecordSuspicion(detector uint8, subject wire.NodeID, raised bool) {
	key := Suspicion{Detector: detector, Subject: subject}
	if raised {
		s.state.Suspicions[key] = true
	} else {
		delete(s.state.Suspicions, key)
	}
	p := make([]byte, 7)
	p[0] = recSuspicion
	p[1] = detector
	binary.LittleEndian.PutUint32(p[2:], uint32(subject))
	if raised {
		p[6] = 1
	}
	s.appendRecord(p)
}

// Snapshot serializes the full state, atomically replaces the snapshot blob,
// and truncates the log it subsumes.
func (s *Store) Snapshot() error {
	if s.err != nil {
		return s.err
	}
	if err := s.dev.WriteSnapshot(encodeSnapshot(s.state)); err != nil {
		s.err = err
		return err
	}
	if err := s.dev.ResetLog(); err != nil {
		s.err = err
		return err
	}
	return nil
}

// State returns the recovered/current state (shared maps; callers must not
// mutate).
func (s *Store) State() State { return s.state }

// Seq returns the recorded origination sequence high-water mark.
func (s *Store) Seq() uint32 { return s.state.Seq }

// DeliveredSorted returns the delivered ids in ascending (origin, seq)
// order, for deterministic restoration walks.
func (s *Store) DeliveredSorted() []wire.MsgID {
	ids := make([]wire.MsgID, 0, len(s.state.Delivered))
	for id := range s.state.Delivered {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i].Less(ids[j]) })
	return ids
}

// Delivered returns the recorded digest for id.
func (s *Store) Delivered(id wire.MsgID) (DeliveredRec, bool) {
	rec, ok := s.state.Delivered[id]
	return rec, ok
}

// SuspicionsSorted returns the raised suspicion slots in ascending
// (detector, subject) order, for deterministic restoration walks.
func (s *Store) SuspicionsSorted() []Suspicion {
	keys := make([]Suspicion, 0, len(s.state.Suspicions))
	for k, raised := range s.state.Suspicions {
		if raised {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Detector != keys[j].Detector {
			return keys[i].Detector < keys[j].Detector
		}
		return keys[i].Subject < keys[j].Subject
	})
	return keys
}

// Len reports how many deliveries are remembered.
func (s *Store) Len() int { return len(s.state.Delivered) }

// Err returns the first device write error, if any.
func (s *Store) Err() error { return s.err }

// encodeSnapshot serializes state: magic, version, body CRC, body. The body
// walks both tables in sorted order so identical states produce identical
// bytes.
func encodeSnapshot(st State) []byte {
	body := make([]byte, 0, 16+24*len(st.Delivered)+8*len(st.Suspicions))
	var u4 [4]byte
	var u8 [8]byte
	put32 := func(v uint32) {
		binary.LittleEndian.PutUint32(u4[:], v)
		body = append(body, u4[:]...)
	}
	put64 := func(v uint64) {
		binary.LittleEndian.PutUint64(u8[:], v)
		body = append(body, u8[:]...)
	}
	put32(st.Seq)
	put64(st.Gen)
	ids := make([]wire.MsgID, 0, len(st.Delivered))
	for id := range st.Delivered {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i].Less(ids[j]) })
	put32(uint32(len(ids)))
	for _, id := range ids {
		rec := st.Delivered[id]
		put32(uint32(id.Origin))
		put32(uint32(id.Seq))
		put64(rec.Digest)
		put64(rec.Gen)
	}
	keys := make([]Suspicion, 0, len(st.Suspicions))
	for k := range st.Suspicions {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Detector != keys[j].Detector {
			return keys[i].Detector < keys[j].Detector
		}
		return keys[i].Subject < keys[j].Subject
	})
	put32(uint32(len(keys)))
	for _, k := range keys {
		body = append(body, k.Detector)
		put32(uint32(k.Subject))
	}

	out := make([]byte, 0, 9+len(body))
	out = append(out, snapMagic[:]...)
	out = append(out, snapVersion)
	binary.LittleEndian.PutUint32(u4[:], crc32.ChecksumIEEE(body))
	out = append(out, u4[:]...)
	out = append(out, body...)
	return out
}

// decodeSnapshot parses a snapshot blob; any framing, version, CRC, or
// structural mismatch yields (zero, false) — a bad snapshot is simply an
// absent one.
func decodeSnapshot(b []byte) (State, bool) {
	st := newState()
	if len(b) < 9 || [4]byte(b[:4]) != snapMagic || b[4] != snapVersion {
		return st, false
	}
	crc := binary.LittleEndian.Uint32(b[5:])
	body := b[9:]
	if crc32.ChecksumIEEE(body) != crc {
		return st, false
	}
	off := 0
	need := func(n int) bool { return len(body)-off >= n }
	if !need(16) {
		return st, false
	}
	st.Seq = binary.LittleEndian.Uint32(body[off:])
	st.Gen = binary.LittleEndian.Uint64(body[off+4:])
	nDel := int(binary.LittleEndian.Uint32(body[off+12:]))
	off += 16
	if nDel < 0 || !need(24*nDel) {
		return newState(), false
	}
	for i := 0; i < nDel; i++ {
		id := wire.MsgID{
			Origin: wire.NodeID(binary.LittleEndian.Uint32(body[off:])),
			Seq:    wire.Seq(binary.LittleEndian.Uint32(body[off+4:])),
		}
		st.Delivered[id] = DeliveredRec{
			Digest: binary.LittleEndian.Uint64(body[off+8:]),
			Gen:    binary.LittleEndian.Uint64(body[off+16:]),
		}
		off += 24
	}
	if !need(4) {
		return newState(), false
	}
	nSus := int(binary.LittleEndian.Uint32(body[off:]))
	off += 4
	if nSus < 0 || !need(5*nSus) {
		return newState(), false
	}
	for i := 0; i < nSus; i++ {
		st.Suspicions[Suspicion{
			Detector: body[off],
			Subject:  wire.NodeID(binary.LittleEndian.Uint32(body[off+1:])),
		}] = true
		off += 5
	}
	if off != len(body) {
		return newState(), false
	}
	return st, true
}
