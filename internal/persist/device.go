// Package persist is the durable-state layer under the broadcast protocol:
// a periodic snapshot plus a CRC-framed append-only record log of delivered
// digests, the origination sequence counter, and detector suspicion epochs.
//
// The layer is deliberately loss-tolerant: every record and the snapshot are
// integrity-framed, and Open replays the snapshot then the log, truncating
// the log at the first bad record (a torn tail from a crash mid-append, or a
// flipped bit from a failing flash page). Whatever survives the truncation is
// the recovered state — the protocol above treats durable state as a dedup
// and catch-up accelerator, never as a correctness requirement, so "less
// state than we wrote" is always safe.
//
// Two device implementations back the same store: MemDevice (a virtual
// in-simulation byte store, with deterministic seeded corruption injection
// for crash-recovery scenarios) and FileDevice (snapshot + log files for the
// live UDP node, with atomic snapshot replacement via rename).
package persist

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
)

// Device is the byte-level storage a Store persists into: one snapshot blob
// (replaced wholesale) and one append-only log.
type Device interface {
	// ReadSnapshot returns the current snapshot blob (nil when none exists).
	ReadSnapshot() ([]byte, error)
	// WriteSnapshot atomically replaces the snapshot blob.
	WriteSnapshot(b []byte) error
	// ReadLog returns the full log contents (nil when empty).
	ReadLog() ([]byte, error)
	// AppendLog appends framed record bytes to the log.
	AppendLog(b []byte) error
	// ResetLog truncates the log to empty (after a snapshot subsumed it).
	ResetLog() error
}

// MemDevice is the in-simulation Device: plain byte slices, plus seeded
// corruption injection so crash-recovery scenarios can model torn writes and
// bit rot deterministically.
type MemDevice struct {
	snapshot []byte
	log      []byte
}

var _ Device = (*MemDevice)(nil)

// ReadSnapshot implements Device.
func (m *MemDevice) ReadSnapshot() ([]byte, error) { return m.snapshot, nil }

// WriteSnapshot implements Device.
func (m *MemDevice) WriteSnapshot(b []byte) error {
	m.snapshot = append([]byte(nil), b...)
	return nil
}

// ReadLog implements Device.
func (m *MemDevice) ReadLog() ([]byte, error) { return m.log, nil }

// AppendLog implements Device.
func (m *MemDevice) AppendLog(b []byte) error {
	m.log = append(m.log, b...)
	return nil
}

// ResetLog implements Device.
func (m *MemDevice) ResetLog() error {
	m.log = nil
	return nil
}

// Corruption selects which storage faults Corrupt injects.
type Corruption struct {
	// TearTail truncates the log mid-record, as a crash during an append
	// would.
	TearTail bool
	// FlipBits flips this many randomly chosen bits across the log.
	FlipBits int
}

// Corrupt injects the configured storage faults into the device, drawing
// every position from rng so a seeded scenario replays the exact same
// damage. Corrupting an empty log is a no-op.
func (m *MemDevice) Corrupt(rng *rand.Rand, c Corruption) {
	if len(m.log) == 0 {
		return
	}
	if c.TearTail {
		// Cut a random number of tail bytes, at least one, at most a whole
		// record frame's worth — the shape of a crash mid-append.
		cut := rng.Intn(minInt(len(m.log), 64)) + 1
		m.log = m.log[:len(m.log)-cut]
	}
	for i := 0; i < c.FlipBits && len(m.log) > 0; i++ {
		pos := rng.Intn(len(m.log))
		bit := byte(1) << uint(rng.Intn(8))
		m.log[pos] ^= bit
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// FileDevice stores the snapshot and log as two files in a directory, for
// the live UDP node. Snapshot replacement is atomic (write to a temp file,
// then rename); log appends go through a single O_APPEND handle.
type FileDevice struct {
	dir     string
	logFile *os.File
}

var _ Device = (*FileDevice)(nil)

// OpenDir opens (creating if needed) a file-backed device rooted at dir.
func OpenDir(dir string) (*FileDevice, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("persist: create %q: %w", dir, err)
	}
	f, err := os.OpenFile(filepath.Join(dir, "records.log"), os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("persist: open log: %w", err)
	}
	return &FileDevice{dir: dir, logFile: f}, nil
}

// Close releases the log handle.
func (d *FileDevice) Close() error {
	if d.logFile == nil {
		return nil
	}
	err := d.logFile.Close()
	d.logFile = nil
	return err
}

func (d *FileDevice) snapshotPath() string { return filepath.Join(d.dir, "snapshot.bin") }
func (d *FileDevice) logPath() string      { return filepath.Join(d.dir, "records.log") }

// ReadSnapshot implements Device.
func (d *FileDevice) ReadSnapshot() ([]byte, error) {
	b, err := os.ReadFile(d.snapshotPath())
	if os.IsNotExist(err) {
		return nil, nil
	}
	return b, err
}

// WriteSnapshot implements Device: write-temp-then-rename so a crash during
// the write leaves the previous snapshot intact.
func (d *FileDevice) WriteSnapshot(b []byte) error {
	tmp := d.snapshotPath() + ".tmp"
	if err := os.WriteFile(tmp, b, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, d.snapshotPath())
}

// ReadLog implements Device.
func (d *FileDevice) ReadLog() ([]byte, error) {
	b, err := os.ReadFile(d.logPath())
	if os.IsNotExist(err) {
		return nil, nil
	}
	return b, err
}

// AppendLog implements Device.
func (d *FileDevice) AppendLog(b []byte) error {
	if d.logFile == nil {
		return fmt.Errorf("persist: log closed")
	}
	_, err := d.logFile.Write(b)
	return err
}

// ResetLog implements Device.
func (d *FileDevice) ResetLog() error {
	if d.logFile == nil {
		return fmt.Errorf("persist: log closed")
	}
	return d.logFile.Truncate(0)
}
