//bbvet:wallclock RealClock is the production wall-clock Clock implementation; everything deterministic goes through SimClock

// Package env defines the small runtime interface the protocol stack needs
// from its host — a clock and timers — so the same code runs inside the
// deterministic simulator and over a real transport.
package env

import (
	"sync"
	"time"

	"bbcast/internal/sim"
)

// Clock provides virtual or real time and one-shot timers.
type Clock interface {
	// Now returns the current time as an offset from an arbitrary epoch.
	Now() time.Duration
	// After runs fn once after d. The returned function cancels the timer;
	// cancelling a fired timer is a no-op.
	After(d time.Duration, fn func()) (cancel func())
}

// SimClock adapts a simulation engine to Clock.
type SimClock struct {
	Eng *sim.Engine
}

var _ Clock = SimClock{}

// Now implements Clock.
func (c SimClock) Now() time.Duration { return c.Eng.Now() }

// After implements Clock.
func (c SimClock) After(d time.Duration, fn func()) func() {
	t := c.Eng.After(d, fn)
	return func() { t.Stop() }
}

// RealClock implements Clock over wall time. The zero value is ready to use;
// its epoch is the first call to Now.
type RealClock struct {
	once  sync.Once
	epoch time.Time
}

var _ Clock = (*RealClock)(nil)

// Now implements Clock.
func (c *RealClock) Now() time.Duration {
	c.once.Do(func() { c.epoch = time.Now() })
	return time.Since(c.epoch)
}

// After implements Clock.
func (c *RealClock) After(d time.Duration, fn func()) func() {
	t := time.AfterFunc(d, fn)
	return func() { t.Stop() }
}
