package env

import (
	"sync"
	"testing"
	"time"

	"bbcast/internal/sim"
)

func TestSimClock(t *testing.T) {
	eng := sim.New(1)
	var c Clock = SimClock{Eng: eng}
	if c.Now() != 0 {
		t.Fatal("sim clock not at zero")
	}
	fired := false
	c.After(10*time.Millisecond, func() { fired = true })
	eng.RunAll()
	if !fired {
		t.Fatal("sim timer did not fire")
	}
	if c.Now() != 10*time.Millisecond {
		t.Fatalf("Now() = %v", c.Now())
	}
}

func TestSimClockCancel(t *testing.T) {
	eng := sim.New(1)
	var c Clock = SimClock{Eng: eng}
	fired := false
	cancel := c.After(10*time.Millisecond, func() { fired = true })
	cancel()
	eng.RunAll()
	if fired {
		t.Fatal("cancelled sim timer fired")
	}
}

func TestRealClockMonotonic(t *testing.T) {
	c := &RealClock{}
	a := c.Now()
	time.Sleep(5 * time.Millisecond)
	b := c.Now()
	if b <= a {
		t.Fatalf("real clock not monotonic: %v then %v", a, b)
	}
}

func TestRealClockAfterFiresAndCancels(t *testing.T) {
	c := &RealClock{}
	var mu sync.Mutex
	fired := 0
	done := make(chan struct{})
	c.After(5*time.Millisecond, func() {
		mu.Lock()
		fired++
		mu.Unlock()
		close(done)
	})
	cancel := c.After(5*time.Millisecond, func() {
		mu.Lock()
		fired += 100
		mu.Unlock()
	})
	cancel()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("real timer never fired")
	}
	time.Sleep(20 * time.Millisecond)
	mu.Lock()
	defer mu.Unlock()
	if fired != 1 {
		t.Fatalf("fired = %d, want exactly the uncancelled timer", fired)
	}
}
