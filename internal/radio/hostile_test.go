package radio

import (
	"testing"
	"time"

	"bbcast/internal/wire"
)

// TestOverlappingDegradationsCompose is the regression test for the
// last-writer-wins SetExtraLoss bug: a second degrade window's expiry used to
// restore the channel to nominal even while the first window was still
// active. Stacked windows must compose and pop independently.
func TestOverlappingDegradationsCompose(t *testing.T) {
	_, m := lineNetwork(t, 100, 2, idealConfig())
	popA := m.PushDegradation(0.5)
	popB := m.PushDegradation(0.5)
	if got := m.ExtraLoss(); got < 0.74 || got > 0.76 {
		t.Fatalf("two 0.5 windows compose to %v, want 0.75", got)
	}
	popB() // second window expires first
	if got := m.ExtraLoss(); got != 0.5 {
		t.Fatalf("after inner pop ExtraLoss = %v, want 0.5 (first window still active)", got)
	}
	popB() // idempotent
	if got := m.ExtraLoss(); got != 0.5 {
		t.Fatalf("double pop changed ExtraLoss to %v", got)
	}
	popA()
	if got := m.ExtraLoss(); got != 0 {
		t.Fatalf("all windows popped, ExtraLoss = %v, want 0", got)
	}
}

// TestDegradationStacksOnBaseExtraLoss: the legacy scalar and pushed windows
// compose as independent drop chances.
func TestDegradationStacksOnBaseExtraLoss(t *testing.T) {
	_, m := lineNetwork(t, 100, 2, idealConfig())
	m.SetExtraLoss(0.5)
	pop := m.PushDegradation(0.5)
	if got := m.ExtraLoss(); got < 0.74 || got > 0.76 {
		t.Fatalf("base 0.5 + window 0.5 = %v, want 0.75", got)
	}
	pop()
	m.SetExtraLoss(0)
	if got := m.ExtraLoss(); got != 0 {
		t.Fatalf("ExtraLoss = %v, want 0", got)
	}
}

// TestActiveDegradationBlocksDelivery drives the composed path through the
// medium: while a near-total window is active, delivery collapses; once the
// last window pops, the channel is nominal again.
func TestActiveDegradationBlocksDelivery(t *testing.T) {
	eng, m := lineNetwork(t, 100, 2, idealConfig())
	var got int
	m.Attach(1, func(*wire.Packet) { got++ })
	popOuter := m.PushDegradation(0.999)
	popInner := m.PushDegradation(0.3)
	popInner() // the overlapping inner window expires; outer must keep biting
	const rounds = 50
	for i := 0; i < rounds; i++ {
		m.Broadcast(0, dataPkt(0))
		eng.RunAll()
	}
	if got > rounds/4 {
		t.Fatalf("outer window active but %d/%d delivered", got, rounds)
	}
	popOuter()
	got = 0
	for i := 0; i < rounds; i++ {
		m.Broadcast(0, dataPkt(0))
		eng.RunAll()
	}
	if got != rounds {
		t.Fatalf("restored medium delivered %d/%d", got, rounds)
	}
}

// TestBurstLossIsBursty: with total loss in the bad state and dwell times
// much longer than the inter-frame spacing, losses arrive in runs, not
// independently — and every loss is accounted to BurstLosses.
func TestBurstLossIsBursty(t *testing.T) {
	eng, m := lineNetwork(t, 100, 2, idealConfig())
	var times []time.Duration
	m.Attach(1, func(*wire.Packet) { times = append(times, eng.Now()) })
	m.SetBurst(BurstConfig{Loss: 1, MeanBad: 200 * time.Millisecond, MeanGood: 200 * time.Millisecond})
	const trials = 1000
	for i := 0; i < trials; i++ {
		at := time.Duration(i) * 5 * time.Millisecond
		eng.At(at, func() { m.Broadcast(0, dataPkt(0)) })
	}
	eng.RunAll()
	st := m.Stats()
	if st.BurstLosses == 0 {
		t.Fatal("no burst losses under an active burst model")
	}
	if st.Deliveries == 0 {
		t.Fatal("burst model killed every frame; good state never held")
	}
	if st.Deliveries+st.BurstLosses != trials {
		t.Fatalf("Deliveries(%d) + BurstLosses(%d) != %d frames", st.Deliveries, st.BurstLosses, trials)
	}
	// Burstiness: count loss runs. Independent losses at the observed rate
	// would flip between loss and delivery far more often than a chain with
	// 200 ms dwell sampled every 5 ms.
	lost := make([]bool, 0, trials)
	ti := 0
	for i := 0; i < trials; i++ {
		// Delivery times are ordered; match them to send slots.
		gotIt := ti < len(times) && times[ti] < time.Duration(i+1)*5*time.Millisecond
		if gotIt {
			ti++
		}
		lost = append(lost, !gotIt)
	}
	flips := 0
	for i := 1; i < len(lost); i++ {
		if lost[i] != lost[i-1] {
			flips++
		}
	}
	// ~50% marginal loss: independent drops would flip ≈ trials/2 times.
	// A 200 ms dwell chain flips ≈ trials*5ms/200ms*2 ≈ 50 times.
	if flips > trials/4 {
		t.Fatalf("losses look independent: %d flips in %d frames", flips, trials)
	}
}

// TestBurstLossReplaysBitIdentical: two engines with the same seed produce
// identical delivery schedules under the burst model.
func TestBurstLossReplaysBitIdentical(t *testing.T) {
	run := func() []time.Duration {
		eng, m := lineNetwork(t, 100, 2, idealConfig())
		var times []time.Duration
		m.Attach(1, func(*wire.Packet) { times = append(times, eng.Now()) })
		m.SetBurst(BurstConfig{Loss: 0.9, MeanBad: 50 * time.Millisecond, MeanGood: 100 * time.Millisecond})
		m.SetJitter(2 * time.Millisecond)
		m.SetDuplication(0.2)
		m.SetAsymLoss(0.5)
		for i := 0; i < 300; i++ {
			at := time.Duration(i) * 5 * time.Millisecond
			eng.At(at, func() { m.Broadcast(0, dataPkt(0)) })
		}
		eng.RunAll()
		return times
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("replay length differs: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replay diverges at delivery %d: %v vs %v", i, a[i], b[i])
		}
	}
}

// TestJitterDefersDeliveryWithinBound: deliveries land after the nominal
// arrival instant but within the configured bound.
func TestJitterDefersDeliveryWithinBound(t *testing.T) {
	eng, m := lineNetwork(t, 100, 2, idealConfig())
	const maxJitter = 10 * time.Millisecond
	m.SetJitter(maxJitter)
	var at []time.Duration
	m.Attach(1, func(*wire.Packet) { at = append(at, eng.Now()) })
	nominal := m.cfg.PropDelay + m.Airtime(dataPkt(0).AirSize())
	const trials = 100
	for i := 0; i < trials; i++ {
		t0 := time.Duration(i) * 20 * time.Millisecond
		eng.At(t0, func() { m.Broadcast(0, dataPkt(0)) })
	}
	eng.RunAll()
	if len(at) != trials {
		t.Fatalf("delivered %d/%d", len(at), trials)
	}
	spread := false
	for i, got := range at {
		t0 := time.Duration(i) * 20 * time.Millisecond
		d := got - t0 - nominal
		if d < 0 || d >= maxJitter {
			t.Fatalf("frame %d jitter %v outside [0,%v)", i, d, maxJitter)
		}
		if d > 0 {
			spread = true
		}
	}
	if !spread {
		t.Fatal("jitter enabled but every delivery landed at the nominal instant")
	}
}

// TestDuplicationDeliversTwiceAndCounts: near-certain duplication doubles
// deliveries and accounts every extra frame in DupFrames.
func TestDuplicationDeliversTwiceAndCounts(t *testing.T) {
	eng, m := lineNetwork(t, 100, 2, idealConfig())
	m.SetDuplication(1) // clamped to 0.999
	var got int
	m.Attach(1, func(*wire.Packet) { got++ })
	const trials = 200
	for i := 0; i < trials; i++ {
		at := time.Duration(i) * 10 * time.Millisecond
		eng.At(at, func() { m.Broadcast(0, dataPkt(0)) })
	}
	eng.RunAll()
	st := m.Stats()
	if st.DupFrames == 0 || uint64(got) != st.Deliveries || st.Deliveries != trials+st.DupFrames {
		t.Fatalf("got %d callbacks, Deliveries=%d, DupFrames=%d over %d frames",
			got, st.Deliveries, st.DupFrames, trials)
	}
	if st.DupFrames < trials*9/10 {
		t.Fatalf("0.999 duplication produced only %d/%d duplicates", st.DupFrames, trials)
	}
}

// TestAsymmetricDegradationIsDirectional: the per-link hash gives the two
// directions of a link distinct loss probabilities from seed alone.
func TestAsymmetricDegradationIsDirectional(t *testing.T) {
	eng, m := lineNetwork(t, 100, 2, idealConfig())
	if m.hash01(0, 1) == m.hash01(1, 0) {
		t.Fatal("ordered-link hash is symmetric")
	}
	h := m.hash01(0, 1)
	if h < 0 || h >= 1 {
		t.Fatalf("hash01 = %v outside [0,1)", h)
	}
	m.SetAsymLoss(1)
	var fwd, rev int
	m.Attach(0, func(*wire.Packet) { rev++ })
	m.Attach(1, func(*wire.Packet) { fwd++ })
	const trials = 300
	for i := 0; i < trials; i++ {
		at := time.Duration(i) * 10 * time.Millisecond
		eng.At(at, func() { m.Broadcast(0, dataPkt(0)) })
		eng.At(at+5*time.Millisecond, func() { m.Broadcast(1, dataPkt(1)) })
	}
	eng.RunAll()
	if m.Stats().AsymLosses == 0 {
		t.Fatal("severity-1 asymmetric degradation dropped nothing")
	}
	if fwd+rev == 0 {
		t.Fatal("asymmetric degradation killed both directions entirely")
	}
	wantFwd := float64(trials) * (1 - m.hash01(0, 1))
	wantRev := float64(trials) * (1 - m.hash01(1, 0))
	if diff := float64(fwd) - wantFwd; diff < -60 || diff > 60 {
		t.Fatalf("forward deliveries %d, want ≈%.0f", fwd, wantFwd)
	}
	if diff := float64(rev) - wantRev; diff < -60 || diff > 60 {
		t.Fatalf("reverse deliveries %d, want ≈%.0f", rev, wantRev)
	}
}

// TestHostileChannelConservation is the satellite property test: with burst
// loss, duplication, jitter, asymmetric degradation, fringe decay, base
// noise, collisions and half-duplex drops all composed, every scheduled
// reception is accounted to exactly one outcome:
//
//	receptions == Collisions + HalfDuplexDrop + FringeLosses
//	            + BurstLosses + AsymLosses + (Deliveries - DupFrames)
func TestHostileChannelConservation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PosUpdate = 0
	cfg.FringeStart = 0.5 // fringe decay active at 187 m
	eng, m := lineNetwork(t, 187, 3, cfg)
	for i := 0; i < 3; i++ {
		m.Attach(wire.NodeID(i), func(*wire.Packet) {})
	}
	m.SetBurst(BurstConfig{Loss: 0.8, MeanBad: 40 * time.Millisecond, MeanGood: 80 * time.Millisecond})
	m.SetJitter(3 * time.Millisecond)
	m.SetDuplication(0.3)
	m.SetAsymLoss(0.6)
	pop := m.PushDegradation(0.2)
	defer pop()

	// Node layout: 0 at 0m, 1 at 187m, 2 at 374m. Range 250: links 0↔1 and
	// 1↔2 only, so each broadcast from 0 or 2 schedules one reception and a
	// broadcast from 1 schedules two. Simultaneous edge broadcasts collide
	// at 1; interleaved rounds exercise every loss class.
	var receptions uint64
	const rounds = 400
	for i := 0; i < rounds; i++ {
		at := time.Duration(i) * 10 * time.Millisecond
		switch i % 3 {
		case 0: // spaced: one reception
			eng.At(at, func() { m.Broadcast(0, dataPkt(0)) })
			receptions++
		case 1: // middle node: two receptions
			eng.At(at, func() { m.Broadcast(1, dataPkt(1)) })
			receptions += 2
		case 2: // simultaneous edges: two receptions, collide at node 1
			eng.At(at, func() { m.Broadcast(0, dataPkt(0)) })
			eng.At(at, func() { m.Broadcast(2, dataPkt(2)) })
			receptions += 2
		}
	}
	eng.RunAll()
	st := m.Stats()
	accounted := st.Collisions + st.HalfDuplexDrop + st.FringeLosses +
		st.BurstLosses + st.AsymLosses + (st.Deliveries - st.DupFrames)
	if accounted != receptions {
		t.Fatalf("conservation violated: %d receptions but %d accounted (%+v)",
			receptions, accounted, st)
	}
	for name, v := range map[string]uint64{
		"Collisions": st.Collisions, "FringeLosses": st.FringeLosses,
		"BurstLosses": st.BurstLosses, "AsymLosses": st.AsymLosses,
		"DupFrames": st.DupFrames, "Deliveries": st.Deliveries,
	} {
		if v == 0 {
			t.Errorf("loss class %s never exercised", name)
		}
	}
}
