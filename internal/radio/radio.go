// Package radio models the shared wireless medium: omni-directional
// transmission disks, airtime, propagation delay, distance-dependent fringe
// loss, background noise loss, half-duplex radios, and collisions between
// overlapping transmissions at a common receiver (§2 of the paper).
//
// The model is deliberately richer than the paper's formal unit-disk
// abstraction, matching the paper's remark (footnote 2) that the evaluation
// simulator modelled "real transmission range behavior including
// distortions, background noise, etc.".
package radio

import (
	"math"
	"slices"
	"time"

	"bbcast/internal/geo"
	"bbcast/internal/mobility"
	"bbcast/internal/sim"
	"bbcast/internal/wire"
)

// Config are the physical-layer parameters.
type Config struct {
	// Range is the nominal transmission range in metres.
	Range float64
	// Bitrate is the channel rate in bits/s (2 Mb/s matches the 802.11
	// generation the paper's SWANS evaluation simulated).
	Bitrate float64
	// PropDelay is the fixed per-hop propagation + processing latency.
	PropDelay time.Duration
	// FringeStart is the fraction of Range beyond which reception
	// probability decays linearly to zero at Range. 1 disables fringe loss
	// (pure unit disk).
	FringeStart float64
	// BaseLoss is the distance-independent background loss probability.
	BaseLoss float64
	// HalfDuplex, when set, makes a node deaf while it transmits.
	HalfDuplex bool
	// CaptureRatio enables the capture effect: when two frames overlap at a
	// receiver, the closer one survives if its distance is at most
	// CaptureRatio times the other's (e.g. 0.5 ≈ a 6 dB power advantage
	// under inverse-square attenuation). Zero disables capture: any overlap
	// corrupts both frames.
	CaptureRatio float64
	// PosUpdate is how often node positions are refreshed from the mobility
	// model into the spatial index.
	PosUpdate time.Duration
}

// DefaultConfig returns the physical parameters used by the experiments.
func DefaultConfig() Config {
	return Config{
		Range:       250,
		Bitrate:     2e6,
		PropDelay:   5 * time.Microsecond,
		FringeStart: 0.85,
		BaseLoss:    0.01,
		HalfDuplex:  true,
		PosUpdate:   100 * time.Millisecond,
	}
}

// Stats counts physical-layer events.
type Stats struct {
	Transmissions  uint64 // frames put on the air
	BytesOnAir     uint64
	Deliveries     uint64 // frames handed to a receiver (duplicates included)
	Collisions     uint64 // receptions lost to overlap
	FringeLosses   uint64 // receptions lost to distance/noise
	HalfDuplexDrop uint64 // receptions lost because receiver was transmitting
	BurstLosses    uint64 // receptions lost to a Gilbert–Elliott bad state
	AsymLosses     uint64 // receptions lost to asymmetric link degradation
	DupFrames      uint64 // extra deliveries injected by frame duplication
}

// BurstConfig parameterises the per-link Gilbert–Elliott bursty-loss model:
// each ordered link is a two-state (good/bad) continuous-time Markov chain
// with mean dwell times MeanGood and MeanBad; receptions while the link is in
// the bad state drop with probability Loss. The zero value disables the model.
type BurstConfig struct {
	Loss     float64       // drop probability while in the bad state, in (0,1]
	MeanBad  time.Duration // mean dwell time of the bad state
	MeanGood time.Duration // mean dwell time of the good state
}

// Enabled reports whether the configuration describes an active burst model.
func (b BurstConfig) Enabled() bool {
	return b.Loss > 0 && b.MeanBad > 0 && b.MeanGood > 0
}

// geLink is the Gilbert–Elliott state of one ordered link.
type geLink struct {
	bad  bool
	last time.Duration // virtual time of the last state evolution
}

// reception is one in-flight frame at one receiver. Records are pooled on
// the medium and recycled when the frame's airtime ends.
type reception struct {
	dst        wire.NodeID
	start, end time.Duration
	dist       float64
	corrupted  bool
}

// txBatch groups every reception of one transmission. All receivers of a
// frame share the same arrival instant (PropDelay + airtime), so the batch
// completes in a single engine event instead of one per receiver; receptions
// resolve in ascending destination order, which is exactly the order the
// per-receiver events fired in before batching (they were scheduled with
// contiguous sequence numbers at an identical timestamp).
type txBatch struct {
	from wire.NodeID
	pkt  *wire.Packet
	recs []*reception
}

// interval is a closed transmit window, for half-duplex accounting.
type interval struct {
	start, end time.Duration
}

// Medium is the shared channel. It is single-threaded: all methods must be
// called from simulation callbacks (the sim engine's goroutine).
type Medium struct {
	eng   *sim.Engine
	model mobility.Model
	cfg   Config
	n     int

	grid *geo.Grid
	// Per-node state, indexed by NodeID (ids are dense 0..n-1).
	rx      []func(*wire.Packet)
	ongoing [][]*reception
	txBusy  [][]interval
	stats   Stats
	stopPos func()

	// down marks nodes whose radio is off the air (crashed): they neither
	// transmit nor receive. Installed by the fault-injection layer.
	down []bool
	// group is the partition group per node; nil means no partition. Frames
	// cross only between nodes of the same group.
	group []int
	// extraLoss is an additional per-reception loss probability in [0,1),
	// modelling a degraded radio environment (jamming, weather).
	extraLoss float64
	// degs are stacked degradation windows pushed by PushDegradation.
	// Overlapping windows compose: the effective loss probability is
	// 1 - Π(1-p_i) over the base extraLoss and every active window, so one
	// window ending never silently cancels another that is still active.
	degs      []degradation
	nextDegID uint64

	// Hostile-link models. All draws happen only when the corresponding
	// feature is active, so enabling none of them leaves the RNG stream —
	// and therefore every existing trace golden — untouched.
	burst      BurstConfig
	burstLinks map[uint64]*geLink // ordered link (from<<32|dst) → GE state; keyed access only
	jitter     time.Duration      // max extra delivery latency, uniform in [0,jitter)
	dupProb    float64            // probability of duplicating a successful reception
	asymLoss   float64            // severity of asymmetric per-link degradation

	// OnTransmit, if non-nil, observes every frame put on the air.
	OnTransmit func(from wire.NodeID, pkt *wire.Packet)

	// frameSeq numbers frames in transmission order: Broadcast stamps each
	// packet's Meta.Frame before OnTransmit fires, so lineage events can
	// reference a frame receivers will see under the same id (clones carry
	// the Meta by value). Transmission order is deterministic under the
	// simulation engine, so frame ids are reproducible across runs.
	frameSeq uint64

	scratch     []uint32
	freeRecs    []*reception
	freeBatches []*txBatch
}

// New builds a medium for n nodes moving per model.
func New(eng *sim.Engine, model mobility.Model, n int, cfg Config) *Medium {
	m := &Medium{
		eng:     eng,
		model:   model,
		cfg:     cfg,
		n:       n,
		grid:    geo.NewGrid(model.Area(), cfg.Range),
		rx:      make([]func(*wire.Packet), n),
		ongoing: make([][]*reception, n),
		txBusy:  make([][]interval, n),
	}
	for i := 0; i < n; i++ {
		m.grid.Insert(uint32(i), model.Pos(uint32(i), 0))
	}
	if cfg.PosUpdate > 0 {
		m.stopPos = eng.Every(cfg.PosUpdate, m.refreshPositions)
	}
	return m
}

// Close stops the medium's periodic position updates.
func (m *Medium) Close() {
	if m.stopPos != nil {
		m.stopPos()
		m.stopPos = nil
	}
}

func (m *Medium) refreshPositions() {
	now := m.eng.Now()
	for i := 0; i < m.n; i++ {
		m.grid.Move(uint32(i), m.model.Pos(uint32(i), now))
	}
}

// Attach registers the receive callback for node id. Each delivered packet
// is a deep copy private to the receiver.
func (m *Medium) Attach(id wire.NodeID, fn func(*wire.Packet)) {
	if int(id) < len(m.rx) {
		m.rx[id] = fn
	}
}

// SetDown marks node id's radio as off the air (true) or restores it
// (false). A down node neither transmits nor receives; frames still in
// flight toward it when it goes down are lost.
func (m *Medium) SetDown(id wire.NodeID, down bool) {
	if m.down == nil {
		m.down = make([]bool, m.n)
	}
	if int(id) < len(m.down) {
		m.down[id] = down
	}
}

// IsDown reports whether node id's radio is off the air.
func (m *Medium) IsDown(id wire.NodeID) bool {
	return m.down != nil && int(id) < len(m.down) && m.down[id]
}

// SetPartition installs a reachability mask: frames cross only between nodes
// of the same group. Nodes not named in any group form one implicit extra
// group of their own. A nil or empty groups argument heals the partition.
func (m *Medium) SetPartition(groups [][]wire.NodeID) {
	if len(groups) == 0 {
		m.group = nil
		return
	}
	m.group = make([]int, m.n)
	for i := range m.group {
		m.group[i] = 0 // implicit group for unlisted nodes
	}
	for gi, g := range groups {
		for _, id := range g {
			if int(id) < m.n {
				m.group[id] = gi + 1
			}
		}
	}
}

// Heal removes any installed partition mask.
func (m *Medium) Heal() { m.group = nil }

// degradation is one active PushDegradation window.
type degradation struct {
	id uint64
	p  float64
}

// clampLoss clamps a loss probability to [0, 0.999].
func clampLoss(p float64) float64 {
	if p < 0 {
		return 0
	}
	if p >= 1 {
		return 0.999
	}
	return p
}

// SetExtraLoss sets the base additional per-reception loss probability
// (clamped to [0,1)), modelling a degraded radio environment. Zero restores
// the nominal channel. Windowed degradations stack on top via
// PushDegradation.
func (m *Medium) SetExtraLoss(p float64) {
	m.extraLoss = clampLoss(p)
}

// PushDegradation adds an independent degradation source with per-reception
// loss probability p and returns a pop function that removes exactly that
// source. Active sources compose as independent drop chances
// (1 - Π(1-p_i)), so overlapping degrade-radio windows no longer clobber
// each other the way last-writer-wins SetExtraLoss calls did. Pop is
// idempotent.
func (m *Medium) PushDegradation(p float64) (pop func()) {
	id := m.nextDegID
	m.nextDegID++
	m.degs = append(m.degs, degradation{id: id, p: clampLoss(p)})
	return func() {
		for i, d := range m.degs {
			if d.id == id {
				m.degs = append(m.degs[:i], m.degs[i+1:]...)
				return
			}
		}
	}
}

// ExtraLoss reports the effective additional loss probability: the base
// SetExtraLoss value composed with every active PushDegradation window.
func (m *Medium) ExtraLoss() float64 {
	keep := 1 - m.extraLoss
	for _, d := range m.degs {
		keep *= 1 - d.p
	}
	return 1 - keep
}

// SetBurst installs (or, with a zero config, removes) the per-link
// Gilbert–Elliott bursty-loss model. Installing a config resets all link
// states; links re-enter the chain at its stationary distribution on first
// use.
func (m *Medium) SetBurst(cfg BurstConfig) {
	m.burst = cfg
	if cfg.Enabled() {
		m.burstLinks = make(map[uint64]*geLink)
	} else {
		m.burstLinks = nil
	}
}

// Burst reports the active bursty-loss configuration.
func (m *Medium) Burst() BurstConfig { return m.burst }

// SetJitter sets the maximum extra delivery latency: each successful
// reception is deferred by a uniform draw in [0,d). Zero restores immediate
// delivery.
func (m *Medium) SetJitter(d time.Duration) {
	if d < 0 {
		d = 0
	}
	m.jitter = d
}

// Jitter reports the maximum extra delivery latency.
func (m *Medium) Jitter() time.Duration { return m.jitter }

// SetDuplication sets the probability (clamped to [0,1)) that a successful
// reception is delivered twice, modelling MAC-level retransmit duplicates.
func (m *Medium) SetDuplication(p float64) {
	m.dupProb = clampLoss(p)
}

// Duplication reports the active duplication probability.
func (m *Medium) Duplication() float64 { return m.dupProb }

// SetAsymLoss sets the severity of asymmetric link degradation: each ordered
// link (a,b) gets a static extra loss probability severity·h(a,b), where h
// is a per-link hash in [0,1) derived from the engine seed — so a→b and b→a
// degrade differently, deterministically. Zero disables.
func (m *Medium) SetAsymLoss(severity float64) {
	m.asymLoss = clampLoss(severity)
}

// AsymLoss reports the active asymmetric degradation severity.
func (m *Medium) AsymLoss() float64 { return m.asymLoss }

// linkKey packs an ordered link into a map key.
func linkKey(from, dst wire.NodeID) uint64 {
	return uint64(from)<<32 | uint64(dst)
}

// hash01 maps an ordered link to a uniform value in [0,1) determined only by
// the engine seed (SplitMix64 finalizer; no RNG stream is consumed).
func (m *Medium) hash01(from, dst wire.NodeID) float64 {
	z := uint64(m.eng.Seed()) ^ (linkKey(from, dst)*0x9e3779b97f4a7c15 + 0x9e3779b97f4a7c15)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return float64(z>>11) / float64(1<<53)
}

// burstDrop evolves the ordered link's Gilbert–Elliott state to the current
// instant and reports whether this reception is lost to a bad-state burst.
// The two-state CTMC has closed-form transition probabilities, so the state
// advances lazily — one evolution per reception, however long the link was
// idle.
func (m *Medium) burstDrop(from, dst wire.NodeID) bool {
	rng := m.eng.Rand()
	lambda := 1 / m.burst.MeanGood.Seconds() // good → bad rate
	mu := 1 / m.burst.MeanBad.Seconds()      // bad → good rate
	piBad := lambda / (lambda + mu)
	key := linkKey(from, dst)
	st := m.burstLinks[key]
	now := m.eng.Now()
	if st == nil {
		// First use: enter the chain at its stationary distribution.
		st = &geLink{bad: rng.Float64() < piBad, last: now}
		m.burstLinks[key] = st
	} else if now > st.last {
		decay := math.Exp(-(lambda + mu) * (now - st.last).Seconds())
		pBad := piBad * (1 - decay)
		if st.bad {
			pBad = piBad + (1-piBad)*decay
		}
		st.bad = rng.Float64() < pBad
		st.last = now
	}
	return st.bad && rng.Float64() < m.burst.Loss
}

// linkUp reports whether frames can currently cross from a to b: both radios
// on the air and, under a partition, in the same group.
func (m *Medium) linkUp(a, b wire.NodeID) bool {
	if m.IsDown(a) || m.IsDown(b) {
		return false
	}
	if m.group != nil && int(a) < len(m.group) && int(b) < len(m.group) && m.group[a] != m.group[b] {
		return false
	}
	return true
}

// Stats returns a snapshot of the physical-layer counters.
func (m *Medium) Stats() Stats { return m.stats }

// Airtime returns the time a frame of the given size occupies the channel.
func (m *Medium) Airtime(size int) time.Duration {
	return time.Duration(float64(size*8) / m.cfg.Bitrate * float64(time.Second))
}

// Pos returns node id's current position.
func (m *Medium) Pos(id wire.NodeID) geo.Point {
	p, _ := m.grid.Pos(uint32(id))
	return p
}

// Neighbors returns the ids within transmission range of id, sorted. This is
// ground truth used by baselines and tests; the protocol itself discovers
// neighbours from traffic.
func (m *Medium) Neighbors(id wire.NodeID) []wire.NodeID {
	return m.neighborsWithin(id, m.cfg.Range)
}

// SolidNeighbors is Neighbors restricted to loss-free links: peers inside
// the fringe-decay boundary (FringeStart*Range). Links beyond it exist but
// drop receptions probabilistically, so they cannot carry any delivery
// guarantee. With FringeStart >= 1 this equals Neighbors.
func (m *Medium) SolidNeighbors(id wire.NodeID) []wire.NodeID {
	solid := m.cfg.Range
	if m.cfg.FringeStart < 1 {
		solid = m.cfg.FringeStart * m.cfg.Range
	}
	return m.neighborsWithin(id, solid)
}

func (m *Medium) neighborsWithin(id wire.NodeID, radius float64) []wire.NodeID {
	if m.IsDown(id) {
		return nil
	}
	p := m.Pos(id)
	m.scratch = m.grid.Near(p, radius, m.scratch[:0])
	out := make([]wire.NodeID, 0, len(m.scratch))
	for _, raw := range m.scratch {
		if wire.NodeID(raw) != id && m.linkUp(id, wire.NodeID(raw)) {
			out = append(out, wire.NodeID(raw))
		}
	}
	slices.Sort(out)
	return out
}

// Busy reports whether node id senses the channel busy now: it is itself
// transmitting, or at least one frame is currently arriving at it.
func (m *Medium) Busy(id wire.NodeID) bool {
	if int(id) >= m.n {
		return false
	}
	now := m.eng.Now()
	for _, iv := range m.txBusy[id] {
		if iv.start <= now && now < iv.end {
			return true
		}
	}
	for _, r := range m.ongoing[id] {
		if r.start <= now && now < r.end {
			return true
		}
	}
	return false
}

// allocRec takes a reception record from the pool.
func (m *Medium) allocRec() *reception {
	if n := len(m.freeRecs); n > 0 {
		rec := m.freeRecs[n-1]
		m.freeRecs = m.freeRecs[:n-1]
		return rec
	}
	return &reception{}
}

// allocBatch takes a batch record from the pool.
func (m *Medium) allocBatch() *txBatch {
	if n := len(m.freeBatches); n > 0 {
		b := m.freeBatches[n-1]
		m.freeBatches = m.freeBatches[:n-1]
		return b
	}
	return &txBatch{}
}

// Broadcast puts pkt on the air from node `from`. Delivery to each in-range
// node is scheduled after airtime + propagation delay, subject to collision,
// fringe-loss, noise and half-duplex rules. The caller must have set
// pkt.Sender; the medium alters only pkt.Meta.Frame (the lineage frame id),
// never any on-wire field.
func (m *Medium) Broadcast(from wire.NodeID, pkt *wire.Packet) {
	if m.IsDown(from) {
		return // radio is off the air; the frame vanishes
	}
	now := m.eng.Now()
	size := pkt.AirSize()
	dur := m.Airtime(size)
	m.stats.Transmissions++
	m.stats.BytesOnAir += uint64(size)
	m.frameSeq++
	pkt.Meta.Frame = m.frameSeq
	if m.OnTransmit != nil {
		m.OnTransmit(from, pkt)
	}

	m.txBusy[from] = pruneIntervals(append(m.txBusy[from], interval{now, now + dur}), now)

	src := m.Pos(from)
	m.scratch = m.grid.Near(src, m.cfg.Range, m.scratch[:0])
	// Sort for deterministic RNG draw order.
	slices.Sort(m.scratch)

	rxStart := now + m.cfg.PropDelay
	rxEnd := rxStart + dur
	batch := m.allocBatch()
	batch.from = from
	batch.pkt = pkt

	for _, raw := range m.scratch {
		dst := wire.NodeID(raw)
		if dst == from || !m.linkUp(from, dst) {
			continue
		}
		rec := m.allocRec()
		rec.dst = dst
		rec.start = rxStart
		rec.end = rxEnd
		rec.dist = src.Dist(m.Pos(dst))
		rec.corrupted = false

		// Overlapping frames at a receiver corrupt each other — unless the
		// capture effect lets the markedly stronger (closer) one survive.
		for _, other := range m.ongoing[dst] {
			if other.start < rxEnd && rxStart < other.end {
				m.collide(rec, other)
			}
		}
		m.ongoing[dst] = append(m.ongoing[dst], rec)
		batch.recs = append(batch.recs, rec)
	}

	if len(batch.recs) == 0 {
		m.releaseBatch(batch)
		return
	}
	m.eng.At(rxEnd, func() { m.finishBatch(batch) })
}

func (m *Medium) releaseBatch(b *txBatch) {
	b.pkt = nil
	b.recs = b.recs[:0]
	m.freeBatches = append(m.freeBatches, b)
}

// collide resolves an overlap between two receptions at one receiver.
func (m *Medium) collide(a, b *reception) {
	r := m.cfg.CaptureRatio
	switch {
	case r > 0 && a.dist <= r*b.dist:
		b.corrupted = true
	case r > 0 && b.dist <= r*a.dist:
		a.corrupted = true
	default:
		a.corrupted = true
		b.corrupted = true
	}
}

// finishBatch resolves every reception of one transmission, in ascending
// destination order (batch.recs was built from the sorted neighbour list).
func (m *Medium) finishBatch(b *txBatch) {
	for _, rec := range b.recs {
		m.finishReception(b.from, rec, b.pkt)
		m.freeRecs = append(m.freeRecs, rec)
	}
	m.releaseBatch(b)
}

func (m *Medium) finishReception(from wire.NodeID, rec *reception, pkt *wire.Packet) {
	dst := rec.dst
	// Drop the reception record from the receiver's in-flight list.
	list := m.ongoing[dst]
	for i, r := range list {
		if r == rec {
			list[i] = list[len(list)-1]
			list[len(list)-1] = nil
			m.ongoing[dst] = list[:len(list)-1]
			break
		}
	}

	if rec.corrupted {
		m.stats.Collisions++
		return
	}
	if !m.linkUp(from, dst) {
		return // receiver crashed or a partition landed while the frame was in flight
	}
	if m.cfg.HalfDuplex && m.transmittedDuring(dst, rec.start, rec.end) {
		m.stats.HalfDuplexDrop++
		return
	}
	if !m.receives(rec.dist) {
		m.stats.FringeLosses++
		return
	}
	if m.burst.Enabled() && m.burstDrop(from, dst) {
		m.stats.BurstLosses++
		return
	}
	if m.asymLoss > 0 && m.eng.Rand().Float64() < m.asymLoss*m.hash01(from, dst) {
		m.stats.AsymLosses++
		return
	}
	fn := m.rx[dst]
	if fn == nil {
		return
	}
	m.deliver(dst, fn, pkt)
	if m.dupProb > 0 && m.eng.Rand().Float64() < m.dupProb {
		m.stats.DupFrames++
		m.deliver(dst, fn, pkt)
	}
}

// deliver hands a successful reception to the receiver — immediately on the
// nominal channel, or deferred by a deterministic uniform draw in [0,jitter)
// when latency jitter is active. The packet is cloned at decision time so a
// deferred delivery cannot observe later sender-side mutation; a receiver
// that goes down while the frame is deferred loses it.
func (m *Medium) deliver(dst wire.NodeID, fn func(*wire.Packet), pkt *wire.Packet) {
	if m.jitter <= 0 {
		m.stats.Deliveries++
		fn(pkt.Clone())
		return
	}
	cp := pkt.Clone()
	d := time.Duration(m.eng.Rand().Int63n(int64(m.jitter)))
	m.eng.After(d, func() {
		if m.IsDown(dst) {
			return
		}
		m.stats.Deliveries++
		fn(cp)
	})
}

// receives draws the distance-dependent reception outcome.
func (m *Medium) receives(dist float64) bool {
	rng := m.eng.Rand()
	if el := m.ExtraLoss(); el > 0 && rng.Float64() < el {
		return false
	}
	if m.cfg.BaseLoss > 0 && rng.Float64() < m.cfg.BaseLoss {
		return false
	}
	fringe := m.cfg.FringeStart * m.cfg.Range
	if dist <= fringe || m.cfg.FringeStart >= 1 {
		return true
	}
	if dist >= m.cfg.Range {
		return false
	}
	// Linear decay from 1 at the fringe boundary to 0 at Range.
	p := 1 - (dist-fringe)/(m.cfg.Range-fringe)
	return rng.Float64() < p
}

func (m *Medium) transmittedDuring(id wire.NodeID, start, end time.Duration) bool {
	ivs := pruneIntervals(m.txBusy[id], start)
	m.txBusy[id] = ivs
	for _, iv := range ivs {
		if iv.start < end && start < iv.end {
			return true
		}
	}
	return false
}

// pruneIntervals drops intervals that ended before cutoff.
func pruneIntervals(ivs []interval, cutoff time.Duration) []interval {
	out := ivs[:0]
	for _, iv := range ivs {
		if iv.end >= cutoff {
			out = append(out, iv)
		}
	}
	return out
}
