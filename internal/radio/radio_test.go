package radio

import (
	"testing"
	"time"

	"bbcast/internal/geo"
	"bbcast/internal/mobility"
	"bbcast/internal/sim"
	"bbcast/internal/wire"
)

// idealConfig removes stochastic losses so tests are exact, and disables the
// periodic position updater (static topologies) so eng.RunAll terminates.
func idealConfig() Config {
	cfg := DefaultConfig()
	cfg.BaseLoss = 0
	cfg.FringeStart = 1
	cfg.PosUpdate = 0
	return cfg
}

func lineNetwork(t *testing.T, spacing float64, n int, cfg Config) (*sim.Engine, *Medium) {
	t.Helper()
	pts := make([]geo.Point, n)
	for i := range pts {
		pts[i] = geo.Point{X: float64(i) * spacing, Y: 0}
	}
	eng := sim.New(1)
	model := mobility.NewStatic(geo.Rect{W: spacing * float64(n), H: 10}, pts)
	return eng, New(eng, model, n, cfg)
}

func dataPkt(sender wire.NodeID) *wire.Packet {
	return &wire.Packet{
		Kind: wire.KindData, Sender: sender, TTL: 1, Target: wire.NoNode,
		Origin: sender, Seq: 1, Payload: []byte("payload"),
	}
}

func TestDeliveryWithinRange(t *testing.T) {
	eng, m := lineNetwork(t, 100, 3, idealConfig()) // range 250: node0 reaches 1 and 2
	got := map[wire.NodeID]int{}
	for i := 0; i < 3; i++ {
		id := wire.NodeID(i)
		m.Attach(id, func(p *wire.Packet) { got[id]++ })
	}
	m.Broadcast(0, dataPkt(0))
	eng.RunAll()
	if got[1] != 1 || got[2] != 1 {
		t.Fatalf("deliveries = %v, want nodes 1 and 2 to receive once", got)
	}
	if got[0] != 0 {
		t.Fatal("sender received its own frame")
	}
}

func TestNoDeliveryBeyondRange(t *testing.T) {
	eng, m := lineNetwork(t, 300, 2, idealConfig()) // 300 m apart, range 250
	received := false
	m.Attach(1, func(p *wire.Packet) { received = true })
	m.Broadcast(0, dataPkt(0))
	eng.RunAll()
	if received {
		t.Fatal("frame delivered beyond transmission range")
	}
	if m.Stats().Transmissions != 1 {
		t.Fatalf("Transmissions = %d, want 1", m.Stats().Transmissions)
	}
}

func TestDeliveryIsDeepCopy(t *testing.T) {
	eng, m := lineNetwork(t, 100, 3, idealConfig())
	var got []*wire.Packet
	for i := 1; i < 3; i++ {
		id := wire.NodeID(i)
		m.Attach(id, func(p *wire.Packet) { got = append(got, p) })
	}
	m.Broadcast(0, dataPkt(0))
	eng.RunAll()
	if len(got) != 2 {
		t.Fatalf("got %d deliveries", len(got))
	}
	got[0].Payload[0] = 'X'
	if got[1].Payload[0] == 'X' {
		t.Fatal("receivers share a packet buffer")
	}
}

func TestCollisionAtCommonReceiver(t *testing.T) {
	// Nodes 0 and 2 both in range of 1; simultaneous transmissions collide
	// at 1 (the paper's §2 example).
	eng, m := lineNetwork(t, 200, 3, idealConfig())
	delivered := 0
	m.Attach(1, func(p *wire.Packet) { delivered++ })
	m.Broadcast(0, dataPkt(0))
	m.Broadcast(2, dataPkt(2))
	eng.RunAll()
	if delivered != 0 {
		t.Fatalf("receiver got %d frames despite collision", delivered)
	}
	if m.Stats().Collisions != 2 {
		t.Fatalf("Collisions = %d, want 2", m.Stats().Collisions)
	}
}

func TestNoCollisionWhenSpacedInTime(t *testing.T) {
	eng, m := lineNetwork(t, 200, 3, idealConfig())
	delivered := 0
	m.Attach(1, func(p *wire.Packet) { delivered++ })
	m.Broadcast(0, dataPkt(0))
	// Second transmission after the first fully drains.
	eng.After(10*time.Millisecond, func() { m.Broadcast(2, dataPkt(2)) })
	eng.RunAll()
	if delivered != 2 {
		t.Fatalf("delivered = %d, want 2", delivered)
	}
}

func TestHiddenTerminalDoesNotCorruptOutOfRangeReceiver(t *testing.T) {
	// 0 -- 1 -- 2 -- 3 line, 200 m spacing: 0's frame reaches 1 only;
	// 3's frame reaches 2 only. No common receiver => no collision.
	eng, m := lineNetwork(t, 200, 4, idealConfig())
	got := map[wire.NodeID]int{}
	for i := 0; i < 4; i++ {
		id := wire.NodeID(i)
		m.Attach(id, func(p *wire.Packet) { got[id]++ })
	}
	m.Broadcast(0, dataPkt(0))
	m.Broadcast(3, dataPkt(3))
	eng.RunAll()
	if got[1] != 1 || got[2] != 1 {
		t.Fatalf("deliveries = %v; disjoint receivers should both receive", got)
	}
}

func TestHalfDuplexReceiverTransmitting(t *testing.T) {
	eng, m := lineNetwork(t, 100, 2, idealConfig())
	delivered := 0
	m.Attach(0, func(p *wire.Packet) { delivered++ })
	m.Attach(1, func(p *wire.Packet) { delivered++ })
	// Both transmit at once: each is deaf while transmitting... and in fact
	// the frames also overlap at each receiver? No: each node receives only
	// the other's frame (one ongoing reception each), so no collision; the
	// half-duplex rule is what kills delivery.
	m.Broadcast(0, dataPkt(0))
	m.Broadcast(1, dataPkt(1))
	eng.RunAll()
	if delivered != 0 {
		t.Fatalf("delivered = %d, want 0 (half duplex)", delivered)
	}
	if m.Stats().HalfDuplexDrop != 2 {
		t.Fatalf("HalfDuplexDrop = %d, want 2", m.Stats().HalfDuplexDrop)
	}
}

func TestBusyCarrierSense(t *testing.T) {
	eng, m := lineNetwork(t, 100, 3, idealConfig())
	if m.Busy(1) {
		t.Fatal("channel busy before any transmission")
	}
	m.Broadcast(0, dataPkt(0))
	busyDuringTx := false
	// Probe shortly after the transmission begins (prop delay 5µs, airtime
	// for a small frame at 2 Mb/s is ~hundreds of µs).
	eng.After(50*time.Microsecond, func() { busyDuringTx = m.Busy(1) })
	eng.RunAll()
	if !busyDuringTx {
		t.Fatal("receiver did not sense ongoing transmission")
	}
	if m.Busy(1) {
		t.Fatal("channel still busy after all frames drained")
	}
}

func TestBusyWhileSelfTransmitting(t *testing.T) {
	eng, m := lineNetwork(t, 100, 2, idealConfig())
	m.Broadcast(0, dataPkt(0))
	busy := false
	eng.After(10*time.Microsecond, func() { busy = m.Busy(0) })
	eng.RunAll()
	if !busy {
		t.Fatal("transmitter does not sense itself busy")
	}
}

func TestFringeLossProbabilistic(t *testing.T) {
	cfg := idealConfig()
	cfg.FringeStart = 0.5 // decay from 125 m to 250 m
	eng, m := lineNetwork(t, 187, 2, cfg)
	// distance 187 m: p ≈ 1 - (187-125)/125 ≈ 0.5
	delivered := 0
	m.Attach(1, func(p *wire.Packet) { delivered++ })
	const trials = 400
	for i := 0; i < trials; i++ {
		at := time.Duration(i) * 10 * time.Millisecond
		eng.At(at, func() { m.Broadcast(0, dataPkt(0)) })
	}
	eng.RunAll()
	if delivered < trials/4 || delivered > trials*3/4 {
		t.Fatalf("fringe delivery = %d/%d, want roughly half", delivered, trials)
	}
}

func TestBaseLossProbabilistic(t *testing.T) {
	cfg := idealConfig()
	cfg.BaseLoss = 0.3
	eng, m := lineNetwork(t, 50, 2, cfg)
	delivered := 0
	m.Attach(1, func(p *wire.Packet) { delivered++ })
	const trials = 500
	for i := 0; i < trials; i++ {
		at := time.Duration(i) * 10 * time.Millisecond
		eng.At(at, func() { m.Broadcast(0, dataPkt(0)) })
	}
	eng.RunAll()
	got := float64(delivered) / trials
	if got < 0.6 || got > 0.8 {
		t.Fatalf("delivery rate %.2f, want ≈0.7", got)
	}
}

func TestNeighborsGroundTruth(t *testing.T) {
	_, m := lineNetwork(t, 200, 4, idealConfig())
	nbrs := m.Neighbors(1)
	want := []wire.NodeID{0, 2}
	if len(nbrs) != len(want) || nbrs[0] != want[0] || nbrs[1] != want[1] {
		t.Fatalf("Neighbors(1) = %v, want %v", nbrs, want)
	}
}

func TestMobilityUpdatesTopology(t *testing.T) {
	// A node walking away stops receiving.
	area := geo.Rect{W: 2000, H: 10}
	eng := sim.New(1)
	// Node 1 moves right at 100 m/s starting from x=100.
	model := &movingModel{area: area}
	cfg := idealConfig()
	cfg.PosUpdate = 100 * time.Millisecond
	m := New(eng, model, 2, cfg)
	delivered := 0
	m.Attach(1, func(p *wire.Packet) { delivered++ })
	m.Broadcast(0, dataPkt(0)) // in range now
	eng.Run(time.Second)
	if delivered != 1 {
		t.Fatalf("initial delivery failed: %d", delivered)
	}
	// After 5 s node 1 is at x=600 > 250 m away.
	eng.At(5*time.Second, func() { m.Broadcast(0, dataPkt(0)) })
	eng.Run(10 * time.Second)
	if delivered != 1 {
		t.Fatalf("delivered = %d; node out of range should not receive", delivered)
	}
	m.Close()
}

// movingModel: node 0 fixed at origin; node 1 moves +x at 100 m/s from x=100.
type movingModel struct{ area geo.Rect }

func (m *movingModel) Pos(id uint32, t time.Duration) geo.Point {
	if id == 0 {
		return geo.Point{X: 0, Y: 0}
	}
	return geo.Point{X: 100 + 100*t.Seconds(), Y: 0}
}

func (m *movingModel) Area() geo.Rect { return m.area }

func TestAirtimeScalesWithSize(t *testing.T) {
	_, m := lineNetwork(t, 100, 2, idealConfig())
	small := m.Airtime(100)
	big := m.Airtime(1000)
	if big <= small {
		t.Fatalf("airtime(1000)=%v <= airtime(100)=%v", big, small)
	}
	// 1000 bytes at 2 Mb/s = 4 ms.
	want := 4 * time.Millisecond
	if big < want-time.Microsecond || big > want+time.Microsecond {
		t.Fatalf("airtime(1000) = %v, want ≈%v", big, want)
	}
}

func TestStatsCounting(t *testing.T) {
	eng, m := lineNetwork(t, 100, 2, idealConfig())
	m.Attach(1, func(p *wire.Packet) {})
	m.Broadcast(0, dataPkt(0))
	eng.RunAll()
	st := m.Stats()
	if st.Transmissions != 1 || st.Deliveries != 1 || st.BytesOnAir == 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestOnTransmitHook(t *testing.T) {
	eng, m := lineNetwork(t, 100, 2, idealConfig())
	var hookFrom wire.NodeID = wire.NoNode
	m.OnTransmit = func(from wire.NodeID, pkt *wire.Packet) { hookFrom = from }
	m.Broadcast(0, dataPkt(0))
	eng.RunAll()
	if hookFrom != 0 {
		t.Fatalf("OnTransmit saw %v, want 0", hookFrom)
	}
}

func TestCaptureEffectCloserFrameSurvives(t *testing.T) {
	// Nodes 0 and 2 transmit simultaneously; receiver 1 sits 10 m from 0
	// and 190 m from 2. With capture at ratio 0.5 the near frame survives.
	cfg := idealConfig()
	cfg.CaptureRatio = 0.5
	eng := sim.New(1)
	model := mobility.NewStatic(geo.Rect{W: 300, H: 10}, []geo.Point{
		{X: 0, Y: 0}, {X: 10, Y: 0}, {X: 200, Y: 0},
	})
	m := New(eng, model, 3, cfg)
	var got []wire.NodeID
	m.Attach(1, func(p *wire.Packet) { got = append(got, p.Sender) })
	m.Broadcast(0, dataPkt(0))
	m.Broadcast(2, dataPkt(2))
	eng.RunAll()
	if len(got) != 1 || got[0] != 0 {
		t.Fatalf("capture: received from %v, want only the near sender 0", got)
	}
	if m.Stats().Collisions != 1 {
		t.Fatalf("Collisions = %d, want 1 (the far frame)", m.Stats().Collisions)
	}
}

func TestCaptureEffectComparableDistancesBothDie(t *testing.T) {
	cfg := idealConfig()
	cfg.CaptureRatio = 0.5
	eng := sim.New(1)
	model := mobility.NewStatic(geo.Rect{W: 400, H: 10}, []geo.Point{
		{X: 0, Y: 0}, {X: 100, Y: 0}, {X: 210, Y: 0},
	})
	m := New(eng, model, 3, cfg)
	delivered := 0
	m.Attach(1, func(p *wire.Packet) { delivered++ })
	m.Broadcast(0, dataPkt(0)) // 100 m away
	m.Broadcast(2, dataPkt(2)) // 110 m away: ratio ≈ 0.91 > 0.5
	eng.RunAll()
	if delivered != 0 {
		t.Fatalf("comparable-strength overlap delivered %d frames", delivered)
	}
}

func TestCaptureDisabledByDefault(t *testing.T) {
	cfg := idealConfig() // CaptureRatio zero
	eng := sim.New(1)
	model := mobility.NewStatic(geo.Rect{W: 300, H: 10}, []geo.Point{
		{X: 0, Y: 0}, {X: 10, Y: 0}, {X: 200, Y: 0},
	})
	m := New(eng, model, 3, cfg)
	delivered := 0
	m.Attach(1, func(p *wire.Packet) { delivered++ })
	m.Broadcast(0, dataPkt(0))
	m.Broadcast(2, dataPkt(2))
	eng.RunAll()
	if delivered != 0 {
		t.Fatalf("capture disabled but %d frames survived an overlap", delivered)
	}
}

func TestDownNodeNeitherSendsNorReceives(t *testing.T) {
	eng, m := lineNetwork(t, 100, 3, idealConfig())
	var got []wire.NodeID
	for i := 0; i < 3; i++ {
		id := wire.NodeID(i)
		m.Attach(id, func(*wire.Packet) { got = append(got, id) })
	}
	m.SetDown(1, true)
	if !m.IsDown(1) || m.IsDown(0) {
		t.Fatal("IsDown wrong")
	}
	m.Broadcast(0, dataPkt(0))
	eng.RunAll()
	if len(got) != 1 || got[0] != 2 {
		t.Fatalf("want only node 2 to receive, got %v", got)
	}
	got = nil
	m.Broadcast(1, dataPkt(1))
	eng.RunAll()
	if len(got) != 0 {
		t.Fatalf("down node transmitted: %v", got)
	}
	m.SetDown(1, false)
	m.Broadcast(0, dataPkt(0))
	eng.RunAll()
	if len(got) != 2 {
		t.Fatalf("recovered node silent, got %v", got)
	}
}

func TestDownNodeExcludedFromNeighbors(t *testing.T) {
	_, m := lineNetwork(t, 100, 3, idealConfig())
	m.SetDown(1, true)
	if nbs := m.Neighbors(1); nbs != nil {
		t.Fatalf("down node has neighbours: %v", nbs)
	}
	for _, nb := range m.Neighbors(0) {
		if nb == 1 {
			t.Fatal("down node listed as a neighbour")
		}
	}
}

func TestPartitionBlocksCrossGroupFrames(t *testing.T) {
	eng, m := lineNetwork(t, 100, 4, idealConfig())
	var got []wire.NodeID
	for i := 0; i < 4; i++ {
		id := wire.NodeID(i)
		m.Attach(id, func(*wire.Packet) { got = append(got, id) })
	}
	// Nodes 0,1 in a named group; 2,3 in the implicit remainder group.
	m.SetPartition([][]wire.NodeID{{0, 1}})
	m.Broadcast(1, dataPkt(1))
	eng.RunAll()
	if len(got) != 1 || got[0] != 0 {
		t.Fatalf("partition leaked: %v", got)
	}
	for _, nb := range m.Neighbors(1) {
		if nb == 2 {
			t.Fatal("cross-partition neighbour listed")
		}
	}
	got = nil
	m.Heal()
	m.Broadcast(1, dataPkt(1))
	eng.RunAll()
	if len(got) != 3 {
		t.Fatalf("heal did not restore links: %v", got)
	}
}

func TestCrashLosesInFlightFrames(t *testing.T) {
	eng, m := lineNetwork(t, 100, 2, idealConfig())
	var got int
	m.Attach(1, func(*wire.Packet) { got++ })
	m.Broadcast(0, dataPkt(0))
	// Crash the receiver while the frame is on the air.
	m.SetDown(1, true)
	eng.RunAll()
	if got != 0 {
		t.Fatal("frame delivered to a node that crashed mid-flight")
	}
}

func TestExtraLossDegradesDelivery(t *testing.T) {
	cfg := idealConfig()
	eng, m := lineNetwork(t, 100, 2, cfg)
	var got int
	m.Attach(1, func(*wire.Packet) { got++ })
	m.SetExtraLoss(1.0) // clamped just below 1: almost everything drops
	if m.ExtraLoss() <= 0 || m.ExtraLoss() >= 1 {
		t.Fatalf("ExtraLoss = %v", m.ExtraLoss())
	}
	const rounds = 50
	for i := 0; i < rounds; i++ {
		m.Broadcast(0, dataPkt(0))
		eng.RunAll()
	}
	degraded := got
	if degraded > rounds/4 {
		t.Fatalf("0.999 loss delivered %d/%d", degraded, rounds)
	}
	m.SetExtraLoss(0)
	got = 0
	for i := 0; i < rounds; i++ {
		m.Broadcast(0, dataPkt(0))
		eng.RunAll()
	}
	if got != rounds {
		t.Fatalf("restored medium delivered %d/%d", got, rounds)
	}
}
