package mac

import (
	"testing"
	"time"

	"bbcast/internal/geo"
	"bbcast/internal/mobility"
	"bbcast/internal/radio"
	"bbcast/internal/sim"
	"bbcast/internal/wire"
)

func testNet(n int, spacing float64) (*sim.Engine, *radio.Medium) {
	pts := make([]geo.Point, n)
	for i := range pts {
		pts[i] = geo.Point{X: float64(i) * spacing, Y: 0}
	}
	eng := sim.New(1)
	rcfg := radio.DefaultConfig()
	rcfg.BaseLoss = 0
	rcfg.FringeStart = 1
	rcfg.PosUpdate = 0
	model := mobility.NewStatic(geo.Rect{W: spacing*float64(n) + 1, H: 10}, pts)
	return eng, radio.New(eng, model, n, rcfg)
}

func pkt(sender wire.NodeID, seq wire.Seq) *wire.Packet {
	return &wire.Packet{
		Kind: wire.KindData, Sender: sender, TTL: 1, Target: wire.NoNode,
		Origin: sender, Seq: seq, Payload: []byte("x"),
	}
}

func TestSendDelivers(t *testing.T) {
	eng, med := testNet(2, 100)
	m := New(eng, med, 0, eng.SubRand(0), DefaultConfig())
	got := 0
	med.Attach(1, func(p *wire.Packet) { got++ })
	m.Send(pkt(0, 1))
	eng.RunAll()
	if got != 1 {
		t.Fatalf("delivered %d, want 1", got)
	}
	if m.Stats().Sent != 1 {
		t.Fatalf("Sent = %d", m.Stats().Sent)
	}
}

func TestQueueSerializesFrames(t *testing.T) {
	// Two frames from the same node must not collide with each other.
	eng, med := testNet(2, 100)
	m := New(eng, med, 0, eng.SubRand(0), DefaultConfig())
	var seqs []wire.Seq
	med.Attach(1, func(p *wire.Packet) { seqs = append(seqs, p.Seq) })
	for i := 1; i <= 5; i++ {
		m.Send(pkt(0, wire.Seq(i)))
	}
	eng.RunAll()
	if len(seqs) != 5 {
		t.Fatalf("delivered %d frames, want 5", len(seqs))
	}
	for i, s := range seqs {
		if s != wire.Seq(i+1) {
			t.Fatalf("frames reordered: %v", seqs)
		}
	}
}

func TestCarrierSenseAvoidsCollision(t *testing.T) {
	// Nodes 0 and 2 both within carrier-sense range of each other? No —
	// place all three within 100 m so senders hear each other. With CSMA
	// both frames should get through to node 1.
	eng, med := testNet(3, 50)
	m0 := New(eng, med, 0, eng.SubRand(0), DefaultConfig())
	m2 := New(eng, med, 2, eng.SubRand(2), DefaultConfig())
	got := 0
	med.Attach(1, func(p *wire.Packet) { got++ })
	m0.Send(pkt(0, 1))
	m2.Send(pkt(2, 1))
	eng.RunAll()
	if got != 2 {
		st := med.Stats()
		t.Fatalf("delivered %d, want 2 (collisions=%d)", got, st.Collisions)
	}
}

func TestManySendersEventuallyAllDeliver(t *testing.T) {
	// A dense cell with many senders: carrier sense + backoff should let a
	// large majority of frames through.
	const n = 10
	eng, med := testNet(n, 10)
	macs := make([]*MAC, n)
	for i := range macs {
		macs[i] = New(eng, med, wire.NodeID(i), eng.SubRand(uint64(i)), DefaultConfig())
	}
	got := 0
	med.Attach(0, func(p *wire.Packet) { got++ })
	for i := 1; i < n; i++ {
		macs[i].Send(pkt(wire.NodeID(i), 1))
	}
	eng.RunAll()
	if got < n-2 { // allow one unlucky collision pair
		t.Fatalf("node 0 received %d of %d frames", got, n-1)
	}
}

func TestQueueOverflowDrops(t *testing.T) {
	eng, med := testNet(2, 100)
	cfg := DefaultConfig()
	cfg.QueueCap = 3
	m := New(eng, med, 0, eng.SubRand(0), cfg)
	for i := 0; i < 10; i++ {
		m.Send(pkt(0, wire.Seq(i)))
	}
	if m.Stats().Dropped == 0 {
		t.Fatal("no drops despite overflowing queue")
	}
	if m.QueueLen() > 3 {
		t.Fatalf("queue grew past cap: %d", m.QueueLen())
	}
	eng.RunAll()
}

func TestStopDiscards(t *testing.T) {
	eng, med := testNet(2, 100)
	m := New(eng, med, 0, eng.SubRand(0), DefaultConfig())
	got := 0
	med.Attach(1, func(p *wire.Packet) { got++ })
	m.Send(pkt(0, 1))
	m.Stop()
	m.Send(pkt(0, 2))
	eng.RunAll()
	if got != 0 {
		t.Fatalf("stopped MAC still delivered %d frames", got)
	}
}

func TestDeferralCounted(t *testing.T) {
	eng, med := testNet(3, 50)
	cfg := DefaultConfig()
	cfg.JitterMax = 0 // both try at the same instant
	m0 := New(eng, med, 0, eng.SubRand(0), cfg)
	m2 := New(eng, med, 2, eng.SubRand(2), cfg)
	// Long frame from 0 keeps the channel busy; 2 sends mid-flight.
	long := pkt(0, 1)
	long.Payload = make([]byte, 2000)
	m0.Send(long)
	eng.After(time.Millisecond, func() { m2.Send(pkt(2, 1)) })
	eng.RunAll()
	if m2.Stats().Deferrals == 0 {
		t.Fatal("no deferral despite busy channel")
	}
}

func TestProgressGuarantee(t *testing.T) {
	// Even under persistent interference a frame is sent after MaxDefer.
	eng, med := testNet(3, 50)
	cfg := DefaultConfig()
	cfg.MaxDefer = 3
	m0 := New(eng, med, 0, eng.SubRand(0), cfg)
	jam := New(eng, med, 2, eng.SubRand(2), DefaultConfig())
	// Node 2 jams: an endless stream of large frames.
	var refill func()
	sent := 0
	refill = func() {
		if sent < 200 {
			p := pkt(2, wire.Seq(sent))
			p.Payload = make([]byte, 1500)
			jam.Send(p)
			sent++
			eng.After(5*time.Millisecond, refill)
		}
	}
	refill()
	eng.After(10*time.Millisecond, func() { m0.Send(pkt(0, 1)) })
	eng.Run(2 * time.Second)
	if m0.Stats().Sent != 1 {
		t.Fatalf("frame never transmitted under interference (Sent=%d)", m0.Stats().Sent)
	}
}
