// Package mac implements a simple CSMA medium-access layer with carrier
// sensing, random backoff and per-node transmit queueing.
//
// Broadcast frames in 802.11-style MACs are not acknowledged, so the only
// MAC-level mechanisms that matter for the protocol's behaviour are (a)
// serialization of the node's own transmissions, (b) deferral while the
// channel is sensed busy, and (c) a random initial jitter that de-synchronises
// the many forwarders of a flooded frame (the classic broadcast-storm
// mitigation). All three are modelled here.
package mac

import (
	"math/rand"
	"time"

	"bbcast/internal/radio"
	"bbcast/internal/sim"
	"bbcast/internal/wire"
)

// Config holds MAC parameters.
type Config struct {
	// Slot is the backoff slot time.
	Slot time.Duration
	// CWMin and CWMax bound the contention window in slots. The window
	// doubles on every deferral, starting at CWMin.
	CWMin, CWMax int
	// JitterMax is the maximum random delay inserted before the first
	// transmission attempt of every frame.
	JitterMax time.Duration
	// MaxDefer caps how many times a frame defers to a busy channel before
	// being transmitted regardless (guarantees progress).
	MaxDefer int
	// QueueCap bounds the transmit queue; excess frames are dropped.
	QueueCap int
}

// DefaultConfig returns 802.11b-flavoured MAC parameters.
func DefaultConfig() Config {
	return Config{
		Slot:      20 * time.Microsecond,
		CWMin:     16,
		CWMax:     1024,
		JitterMax: 2 * time.Millisecond,
		MaxDefer:  50,
		QueueCap:  256,
	}
}

// Stats counts MAC events.
type Stats struct {
	Sent      uint64 // frames handed to the radio
	Deferrals uint64 // busy-channel backoffs
	Dropped   uint64 // frames dropped to queue overflow
}

// MAC serializes one node's transmissions onto the shared medium. It is
// single-threaded (simulation callbacks only).
type MAC struct {
	eng    *sim.Engine
	medium *radio.Medium
	id     wire.NodeID
	rng    *rand.Rand
	cfg    Config

	queue   []*wire.Packet
	busy    bool
	stats   Stats
	stopped bool
}

// New builds a MAC for node id. rng must be the node's deterministic stream.
func New(eng *sim.Engine, medium *radio.Medium, id wire.NodeID, rng *rand.Rand, cfg Config) *MAC {
	return &MAC{eng: eng, medium: medium, id: id, rng: rng, cfg: cfg}
}

// Stats returns a snapshot of the MAC counters.
func (m *MAC) Stats() Stats { return m.stats }

// QueueLen reports the number of frames waiting (excluding any in flight).
func (m *MAC) QueueLen() int { return len(m.queue) }

// Stop discards queued frames and refuses new ones.
func (m *MAC) Stop() {
	m.stopped = true
	m.queue = nil
}

// Send enqueues pkt for transmission. The packet must not be modified by the
// caller afterwards.
func (m *MAC) Send(pkt *wire.Packet) {
	if m.stopped {
		return
	}
	if len(m.queue) >= m.cfg.QueueCap {
		m.stats.Dropped++
		return
	}
	m.queue = append(m.queue, pkt)
	if !m.busy {
		m.busy = true
		m.scheduleAttempt(m.jitter(), m.cfg.CWMin, 0)
	}
}

func (m *MAC) jitter() time.Duration {
	if m.cfg.JitterMax <= 0 {
		return 0
	}
	return time.Duration(m.rng.Int63n(int64(m.cfg.JitterMax)))
}

func (m *MAC) scheduleAttempt(delay time.Duration, cw, defers int) {
	m.eng.After(delay, func() { m.attempt(cw, defers) })
}

func (m *MAC) attempt(cw, defers int) {
	if m.stopped || len(m.queue) == 0 {
		m.busy = false
		return
	}
	if m.medium.Busy(m.id) && defers < m.cfg.MaxDefer {
		m.stats.Deferrals++
		backoff := m.cfg.Slot * time.Duration(1+m.rng.Intn(cw))
		next := cw * 2
		if next > m.cfg.CWMax {
			next = m.cfg.CWMax
		}
		m.scheduleAttempt(backoff, next, defers+1)
		return
	}
	pkt := m.queue[0]
	copy(m.queue, m.queue[1:])
	m.queue = m.queue[:len(m.queue)-1]
	m.stats.Sent++
	m.medium.Broadcast(m.id, pkt)
	// Wait out our own airtime plus fresh jitter before the next frame.
	wait := m.medium.Airtime(pkt.AirSize()) + m.jitter()
	if len(m.queue) > 0 {
		m.scheduleAttempt(wait, m.cfg.CWMin, 0)
	} else {
		m.eng.After(wait, func() {
			if len(m.queue) > 0 {
				m.attempt(m.cfg.CWMin, 0)
			} else {
				m.busy = false
			}
		})
	}
}
