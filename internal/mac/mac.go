// Package mac implements a simple CSMA medium-access layer with carrier
// sensing, random backoff and per-node transmit queueing.
//
// Broadcast frames in 802.11-style MACs are not acknowledged, so the only
// MAC-level mechanisms that matter for the protocol's behaviour are (a)
// serialization of the node's own transmissions, (b) deferral while the
// channel is sensed busy, and (c) a random initial jitter that de-synchronises
// the many forwarders of a flooded frame (the classic broadcast-storm
// mitigation). All three are modelled here.
package mac

import (
	"math/rand"
	"time"

	"bbcast/internal/radio"
	"bbcast/internal/sim"
	"bbcast/internal/wire"
)

// Config holds MAC parameters.
type Config struct {
	// Slot is the backoff slot time.
	Slot time.Duration
	// CWMin and CWMax bound the contention window in slots. The window
	// doubles on every deferral, starting at CWMin.
	CWMin, CWMax int
	// JitterMax is the maximum random delay inserted before the first
	// transmission attempt of every frame.
	JitterMax time.Duration
	// MaxDefer caps how many times a frame defers to a busy channel before
	// being transmitted regardless (guarantees progress).
	MaxDefer int
	// QueueCap bounds the transmit queue; excess frames are dropped.
	QueueCap int
}

// DefaultConfig returns 802.11b-flavoured MAC parameters.
func DefaultConfig() Config {
	return Config{
		Slot:      20 * time.Microsecond,
		CWMin:     16,
		CWMax:     1024,
		JitterMax: 2 * time.Millisecond,
		MaxDefer:  50,
		QueueCap:  256,
	}
}

// Stats counts MAC events.
type Stats struct {
	Sent      uint64 // frames handed to the radio
	Deferrals uint64 // busy-channel backoffs
	Dropped   uint64 // frames dropped to queue overflow
}

// MAC serializes one node's transmissions onto the shared medium. It is
// single-threaded (simulation callbacks only).
//
// The transmit queue is a head-indexed ring (pops do not shift the slice) and
// the backoff state machine runs through two closures allocated once at
// construction, so steady-state operation schedules timers without
// allocating.
type MAC struct {
	eng    *sim.Engine
	medium *radio.Medium
	id     wire.NodeID
	rng    *rand.Rand
	cfg    Config

	queue   []*wire.Packet
	head    int
	busy    bool
	stats   Stats
	stopped bool

	// Pending-attempt state, consumed by attemptFn when its timer fires.
	cw        int
	defers    int
	attemptFn func()
	idleFn    func()
}

// New builds a MAC for node id. rng must be the node's deterministic stream.
func New(eng *sim.Engine, medium *radio.Medium, id wire.NodeID, rng *rand.Rand, cfg Config) *MAC {
	m := &MAC{eng: eng, medium: medium, id: id, rng: rng, cfg: cfg}
	m.attemptFn = m.attempt
	m.idleFn = func() {
		if m.QueueLen() > 0 {
			m.attempt()
		} else {
			m.busy = false
		}
	}
	return m
}

// Stats returns a snapshot of the MAC counters.
func (m *MAC) Stats() Stats { return m.stats }

// QueueLen reports the number of frames waiting (excluding any in flight).
func (m *MAC) QueueLen() int { return len(m.queue) - m.head }

// Stop discards queued frames and refuses new ones.
func (m *MAC) Stop() {
	m.stopped = true
	m.queue = nil
	m.head = 0
}

// Send enqueues pkt for transmission. The packet must not be modified by the
// caller afterwards.
func (m *MAC) Send(pkt *wire.Packet) {
	if m.stopped {
		return
	}
	if m.QueueLen() >= m.cfg.QueueCap {
		m.stats.Dropped++
		return
	}
	m.queue = append(m.queue, pkt)
	if !m.busy {
		m.busy = true
		m.scheduleAttempt(m.jitter(), m.cfg.CWMin, 0)
	}
}

// pop removes and returns the head frame, compacting the ring lazily so the
// backing array does not grow with dead slots.
func (m *MAC) pop() *wire.Packet {
	pkt := m.queue[m.head]
	m.queue[m.head] = nil
	m.head++
	switch {
	case m.head == len(m.queue):
		m.queue = m.queue[:0]
		m.head = 0
	case m.head >= 32 && m.head*2 >= len(m.queue):
		n := copy(m.queue, m.queue[m.head:])
		for i := n; i < len(m.queue); i++ {
			m.queue[i] = nil
		}
		m.queue = m.queue[:n]
		m.head = 0
	}
	return pkt
}

func (m *MAC) jitter() time.Duration {
	if m.cfg.JitterMax <= 0 {
		return 0
	}
	return time.Duration(m.rng.Int63n(int64(m.cfg.JitterMax)))
}

func (m *MAC) scheduleAttempt(delay time.Duration, cw, defers int) {
	m.cw = cw
	m.defers = defers
	m.eng.After(delay, m.attemptFn)
}

func (m *MAC) attempt() {
	if m.stopped || m.QueueLen() == 0 {
		m.busy = false
		return
	}
	if m.medium.Busy(m.id) && m.defers < m.cfg.MaxDefer {
		m.stats.Deferrals++
		backoff := m.cfg.Slot * time.Duration(1+m.rng.Intn(m.cw))
		next := m.cw * 2
		if next > m.cfg.CWMax {
			next = m.cfg.CWMax
		}
		m.scheduleAttempt(backoff, next, m.defers+1)
		return
	}
	pkt := m.pop()
	m.stats.Sent++
	m.medium.Broadcast(m.id, pkt)
	// Wait out our own airtime plus fresh jitter before the next frame.
	wait := m.medium.Airtime(pkt.AirSize()) + m.jitter()
	if m.QueueLen() > 0 {
		m.scheduleAttempt(wait, m.cfg.CWMin, 0)
	} else {
		m.cw, m.defers = m.cfg.CWMin, 0
		m.eng.After(wait, m.idleFn)
	}
}
