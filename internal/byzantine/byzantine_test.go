package byzantine

import (
	"math/rand"
	"testing"

	"bbcast/internal/wire"
)

func dataPkt(origin, sender wire.NodeID) *wire.Packet {
	return &wire.Packet{
		Kind: wire.KindData, Sender: sender, TTL: 1, Target: wire.NoNode,
		Origin: origin, Seq: 1, Payload: []byte("payload"), Sig: []byte{1, 2},
	}
}

func TestCorrectPassesEverything(t *testing.T) {
	var b Behavior = Correct{}
	pkt := dataPkt(1, 0)
	if got := b.FilterSend(pkt); got != pkt {
		t.Fatal("correct behaviour altered a packet")
	}
	b.OnReceive(pkt)
	b.Tick(func(*wire.Packet) { t.Fatal("correct behaviour injected traffic") })
}

func TestMuteDropsForwardsKeepsOwn(t *testing.T) {
	m := &Mute{Self: 5}
	if m.FilterSend(dataPkt(1, 5)) != nil {
		t.Fatal("mute node forwarded someone else's data")
	}
	own := dataPkt(5, 5)
	if m.FilterSend(own) != own {
		t.Fatal("mute node dropped its own origination")
	}
	if m.FilterSend(&wire.Packet{Kind: wire.KindRequest, Sender: 5}) != nil {
		t.Fatal("mute node sent a request")
	}
	if m.FilterSend(&wire.Packet{Kind: wire.KindFindMissing, Sender: 5}) != nil {
		t.Fatal("mute node relayed a search")
	}
	gossip := &wire.Packet{Kind: wire.KindGossip, Sender: 5, Gossip: []wire.GossipEntry{{}}}
	if m.FilterSend(gossip) != gossip {
		t.Fatal("non-silent mute node should keep gossiping (the sneaky variant)")
	}
}

func TestMuteSilentStripsGossipKeepsState(t *testing.T) {
	m := &Mute{Self: 5, DropGossip: true}
	bare := &wire.Packet{Kind: wire.KindGossip, Sender: 5, Gossip: []wire.GossipEntry{{}}}
	if m.FilterSend(bare) != nil {
		t.Fatal("silent mute node sent bare gossip")
	}
	withState := &wire.Packet{
		Kind: wire.KindGossip, Sender: 5,
		Gossip: []wire.GossipEntry{{}},
		State:  &wire.OverlayState{Active: true},
	}
	out := m.FilterSend(withState)
	if out == nil {
		t.Fatal("state beacon dropped — node would stop claiming overlay membership")
	}
	if len(out.Gossip) != 0 {
		t.Fatal("advertisements not stripped")
	}
	if out.State == nil || !out.State.Active {
		t.Fatal("overlay claim lost")
	}
	// The original packet must not be mutated.
	if len(withState.Gossip) != 1 {
		t.Fatal("FilterSend mutated the input packet")
	}
}

func TestVerboseHarvestsAndSpams(t *testing.T) {
	v := &Verbose{Self: 9, Rng: rand.New(rand.NewSource(1)), PerTick: 3}
	// Nothing to spam yet.
	v.Tick(func(*wire.Packet) { t.Fatal("spam without harvested entries") })
	// Harvest a gossip entry and a target.
	v.OnReceive(&wire.Packet{
		Kind: wire.KindGossip, Sender: 2,
		Gossip: []wire.GossipEntry{{ID: wire.MsgID{Origin: 1, Seq: 4}, Sig: []byte{7}}},
	})
	var spammed []*wire.Packet
	v.Tick(func(p *wire.Packet) { spammed = append(spammed, p) })
	if len(spammed) != 3 {
		t.Fatalf("spam count = %d, want 3", len(spammed))
	}
	for _, p := range spammed {
		if p.Kind != wire.KindRequest || p.Sender != 9 {
			t.Fatalf("bad spam packet: %+v", p)
		}
		if p.Origin != 1 || p.Seq != 4 {
			t.Fatal("spam does not reference a harvested (verifiable) entry")
		}
	}
}

func TestVerboseDoesNotTargetSelf(t *testing.T) {
	v := &Verbose{Self: 9, Rng: rand.New(rand.NewSource(1)), PerTick: 1}
	v.OnReceive(&wire.Packet{Kind: wire.KindGossip, Sender: 9,
		Gossip: []wire.GossipEntry{{ID: wire.MsgID{Origin: 1, Seq: 1}}}})
	v.Tick(func(*wire.Packet) { t.Fatal("spammed with only itself as target") })
}

func TestTamperCorruptsForwardsOnly(t *testing.T) {
	tm := &Tamper{Self: 5}
	fwd := dataPkt(1, 5)
	out := tm.FilterSend(fwd)
	if out == fwd || out.Payload[0] == fwd.Payload[0] {
		t.Fatal("forwarded data not corrupted")
	}
	if fwd.Payload[0] != 'p' {
		t.Fatal("original packet mutated")
	}
	own := dataPkt(5, 5)
	if tm.FilterSend(own) != own {
		t.Fatal("own origination corrupted")
	}
	gossip := &wire.Packet{Kind: wire.KindGossip, Sender: 5}
	if tm.FilterSend(gossip) != gossip {
		t.Fatal("non-data packet altered")
	}
}

func TestSelectiveDropProbabilistic(t *testing.T) {
	s := &SelectiveDrop{Self: 5, Rng: rand.New(rand.NewSource(1)), DropProb: 0.5}
	dropped, passed := 0, 0
	for i := 0; i < 1000; i++ {
		if s.FilterSend(dataPkt(1, 5)) == nil {
			dropped++
		} else {
			passed++
		}
	}
	if dropped < 400 || dropped > 600 {
		t.Fatalf("dropped %d of 1000 at p=0.5", dropped)
	}
	// Own messages never dropped.
	for i := 0; i < 100; i++ {
		if s.FilterSend(dataPkt(5, 5)) == nil {
			t.Fatal("own origination dropped")
		}
	}
}

func TestNames(t *testing.T) {
	cases := map[string]Behavior{
		"correct":        Correct{},
		"mute":           &Mute{},
		"verbose":        &Verbose{},
		"tamper":         &Tamper{},
		"selective-drop": &SelectiveDrop{},
	}
	for want, b := range cases {
		if b.Name() != want {
			t.Errorf("Name() = %q, want %q", b.Name(), want)
		}
	}
}
