package byzantine

import (
	"math/rand"
	"testing"

	"bbcast/internal/wire"
)

func dataPkt(origin, sender wire.NodeID) *wire.Packet {
	return &wire.Packet{
		Kind: wire.KindData, Sender: sender, TTL: 1, Target: wire.NoNode,
		Origin: origin, Seq: 1, Payload: []byte("payload"), Sig: []byte{1, 2},
	}
}

func TestCorrectPassesEverything(t *testing.T) {
	var b Behavior = Correct{}
	pkt := dataPkt(1, 0)
	if got := b.FilterSend(pkt); got != pkt {
		t.Fatal("correct behaviour altered a packet")
	}
	b.OnReceive(pkt)
	b.Tick(func(*wire.Packet) { t.Fatal("correct behaviour injected traffic") })
}

func TestMuteDropsForwardsKeepsOwn(t *testing.T) {
	m := &Mute{Self: 5}
	if m.FilterSend(dataPkt(1, 5)) != nil {
		t.Fatal("mute node forwarded someone else's data")
	}
	own := dataPkt(5, 5)
	if m.FilterSend(own) != own {
		t.Fatal("mute node dropped its own origination")
	}
	if m.FilterSend(&wire.Packet{Kind: wire.KindRequest, Sender: 5}) != nil {
		t.Fatal("mute node sent a request")
	}
	if m.FilterSend(&wire.Packet{Kind: wire.KindFindMissing, Sender: 5}) != nil {
		t.Fatal("mute node relayed a search")
	}
	gossip := &wire.Packet{Kind: wire.KindGossip, Sender: 5, Gossip: []wire.GossipEntry{{}}}
	if m.FilterSend(gossip) != gossip {
		t.Fatal("non-silent mute node should keep gossiping (the sneaky variant)")
	}
}

func TestMuteSilentStripsGossipKeepsState(t *testing.T) {
	m := &Mute{Self: 5, DropGossip: true}
	bare := &wire.Packet{Kind: wire.KindGossip, Sender: 5, Gossip: []wire.GossipEntry{{}}}
	if m.FilterSend(bare) != nil {
		t.Fatal("silent mute node sent bare gossip")
	}
	withState := &wire.Packet{
		Kind: wire.KindGossip, Sender: 5,
		Gossip: []wire.GossipEntry{{}},
		State:  &wire.OverlayState{Active: true},
	}
	out := m.FilterSend(withState)
	if out == nil {
		t.Fatal("state beacon dropped — node would stop claiming overlay membership")
	}
	if len(out.Gossip) != 0 {
		t.Fatal("advertisements not stripped")
	}
	if out.State == nil || !out.State.Active {
		t.Fatal("overlay claim lost")
	}
	// The original packet must not be mutated.
	if len(withState.Gossip) != 1 {
		t.Fatal("FilterSend mutated the input packet")
	}
}

func TestVerboseHarvestsAndSpams(t *testing.T) {
	v := &Verbose{Self: 9, Rng: rand.New(rand.NewSource(1)), PerTick: 3}
	// Nothing to spam yet.
	v.Tick(func(*wire.Packet) { t.Fatal("spam without harvested entries") })
	// Harvest a gossip entry and a target.
	v.OnReceive(&wire.Packet{
		Kind: wire.KindGossip, Sender: 2,
		Gossip: []wire.GossipEntry{{ID: wire.MsgID{Origin: 1, Seq: 4}, Sig: []byte{7}}},
	})
	var spammed []*wire.Packet
	v.Tick(func(p *wire.Packet) { spammed = append(spammed, p) })
	if len(spammed) != 3 {
		t.Fatalf("spam count = %d, want 3", len(spammed))
	}
	for _, p := range spammed {
		if p.Kind != wire.KindRequest || p.Sender != 9 {
			t.Fatalf("bad spam packet: %+v", p)
		}
		if p.Origin != 1 || p.Seq != 4 {
			t.Fatal("spam does not reference a harvested (verifiable) entry")
		}
	}
}

func TestVerboseDoesNotTargetSelf(t *testing.T) {
	v := &Verbose{Self: 9, Rng: rand.New(rand.NewSource(1)), PerTick: 1}
	v.OnReceive(&wire.Packet{Kind: wire.KindGossip, Sender: 9,
		Gossip: []wire.GossipEntry{{ID: wire.MsgID{Origin: 1, Seq: 1}}}})
	v.Tick(func(*wire.Packet) { t.Fatal("spammed with only itself as target") })
}

func TestTamperCorruptsForwardsOnly(t *testing.T) {
	tm := &Tamper{Self: 5}
	fwd := dataPkt(1, 5)
	out := tm.FilterSend(fwd)
	if out == fwd || out.Payload[0] == fwd.Payload[0] {
		t.Fatal("forwarded data not corrupted")
	}
	if fwd.Payload[0] != 'p' {
		t.Fatal("original packet mutated")
	}
	own := dataPkt(5, 5)
	if tm.FilterSend(own) != own {
		t.Fatal("own origination corrupted")
	}
	gossip := &wire.Packet{Kind: wire.KindGossip, Sender: 5}
	if tm.FilterSend(gossip) != gossip {
		t.Fatal("non-data packet altered")
	}
}

func TestSelectiveDropProbabilistic(t *testing.T) {
	s := &SelectiveDrop{Self: 5, Rng: rand.New(rand.NewSource(1)), DropProb: 0.5}
	dropped, passed := 0, 0
	for i := 0; i < 1000; i++ {
		if s.FilterSend(dataPkt(1, 5)) == nil {
			dropped++
		} else {
			passed++
		}
	}
	if dropped < 400 || dropped > 600 {
		t.Fatalf("dropped %d of 1000 at p=0.5", dropped)
	}
	// Own messages never dropped.
	for i := 0; i < 100; i++ {
		if s.FilterSend(dataPkt(5, 5)) == nil {
			t.Fatal("own origination dropped")
		}
	}
}

func TestNames(t *testing.T) {
	cases := map[string]Behavior{
		"correct":        Correct{},
		"mute":           &Mute{},
		"verbose":        &Verbose{},
		"tamper":         &Tamper{},
		"selective-drop": &SelectiveDrop{},
	}
	for want, b := range cases {
		if b.Name() != want {
			t.Errorf("Name() = %q, want %q", b.Name(), want)
		}
	}
}

func TestMakeVocabulary(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	sign := func(d []byte) []byte { return []byte{1} }
	wantName := map[string]string{
		"":               "correct",
		"correct":        "correct",
		"mute":           "mute",
		"mute-silent":    "mute",
		"verbose":        "verbose",
		"tamper":         "tamper",
		"selective-drop": "selective-drop",
		"equivocate":     "equivocate",
	}
	for in, want := range wantName {
		b, err := Make(in, 3, rng, sign)
		if err != nil {
			t.Fatalf("Make(%q): %v", in, err)
		}
		if b.Name() != want {
			t.Errorf("Make(%q).Name() = %q, want %q", in, b.Name(), want)
		}
	}
	if m, _ := Make("mute-silent", 3, nil, nil); !m.(*Mute).DropGossip {
		t.Error("mute-silent did not set DropGossip")
	}
	// Missing dependencies and unknown names fail.
	for _, name := range []string{"verbose", "selective-drop"} {
		if _, err := Make(name, 3, nil, sign); err == nil {
			t.Errorf("Make(%q) without rng accepted", name)
		}
	}
	if _, err := Make("equivocate", 3, rng, nil); err == nil {
		t.Error("Make(equivocate) without signer accepted")
	}
	if _, err := Make("gremlin", 3, rng, sign); err == nil {
		t.Error("unknown behaviour accepted")
	}
}

func TestFaulty(t *testing.T) {
	for name, want := range map[string]bool{
		"": false, "correct": false, "mute": true, "equivocate": true,
	} {
		if Faulty(name) != want {
			t.Errorf("Faulty(%q) = %v", name, !want)
		}
	}
}

func TestSwitchableDelegatesAndSwaps(t *testing.T) {
	sw := NewSwitchable(nil)
	if sw.Name() != "correct" {
		t.Fatalf("zero switchable = %q", sw.Name())
	}
	pkt := &wire.Packet{Kind: wire.KindData, Sender: 1, Origin: 2, Payload: []byte("x")}
	if sw.FilterSend(pkt) != pkt {
		t.Fatal("correct switchable altered a packet")
	}
	sw.Set(&Mute{Self: 1})
	if sw.Name() != "mute" {
		t.Fatalf("after swap = %q", sw.Name())
	}
	if sw.FilterSend(pkt) != nil {
		t.Fatal("mute switchable forwarded another node's data")
	}
	sw.Set(nil)
	if sw.Name() != "correct" || sw.FilterSend(pkt) != pkt {
		t.Fatal("Set(nil) did not restore correct")
	}
	var zero Switchable
	if zero.Name() != "correct" || zero.FilterSend(pkt) != pkt {
		t.Fatal("zero value does not behave as correct")
	}
}

func TestEquivocateOriginatesConflictingVariants(t *testing.T) {
	signed := map[string]bool{}
	e := &Equivocate{
		Self:           5,
		OriginateEvery: 1,
		Sign: func(d []byte) []byte {
			signed[string(d)] = true
			return append([]byte("sig:"), d...)
		},
	}
	var sent []*wire.Packet
	collect := func(p *wire.Packet) { sent = append(sent, p) }
	e.Tick(collect) // fresh message, variant A
	e.Tick(collect) // variant B of the same message
	if len(sent) != 2 {
		t.Fatalf("got %d packets, want 2", len(sent))
	}
	a, b := sent[0], sent[1]
	if a.ID() != b.ID() {
		t.Fatalf("variants have different ids: %v vs %v", a.ID(), b.ID())
	}
	if a.Origin != 5 || a.Seq < equivocateSeqBase {
		t.Fatalf("bad origination: %+v", a)
	}
	if string(a.Payload) == string(b.Payload) {
		t.Fatal("variants carry identical payloads")
	}
	if string(a.Sig) == string(b.Sig) {
		t.Fatal("variant B was not re-signed")
	}
	// Both variants were signed over their own payload.
	if !signed[string(wire.DataSigBytes(a.ID(), a.Payload))] ||
		!signed[string(wire.DataSigBytes(b.ID(), b.Payload))] {
		t.Fatal("signing input did not cover both payloads")
	}
	// The next cycle uses a fresh sequence number.
	e.Tick(collect)
	if sent[2].ID() == a.ID() {
		t.Fatal("sequence number not advanced")
	}
}

func TestEquivocateFilterSendAlternates(t *testing.T) {
	e := &Equivocate{Self: 2, Sign: func(d []byte) []byte { return []byte("s") }}
	own := &wire.Packet{Kind: wire.KindData, Sender: 2, Origin: 2, Seq: 9,
		Payload: []byte("hello"), Sig: []byte("orig")}
	first := e.FilterSend(own)
	if first != own {
		t.Fatal("first transmission must be honest")
	}
	second := e.FilterSend(own)
	if second == own || string(second.Payload) == "hello" {
		t.Fatal("second transmission not mutated")
	}
	if own.Payload[0] != 'h' {
		t.Fatal("original packet mutated in place")
	}
	third := e.FilterSend(own)
	if third != own {
		t.Fatal("third transmission must be honest again")
	}
	// Other nodes' data passes untouched.
	other := &wire.Packet{Kind: wire.KindData, Sender: 2, Origin: 7, Payload: []byte("x")}
	if e.FilterSend(other) != other {
		t.Fatal("forwarded data altered")
	}
}
