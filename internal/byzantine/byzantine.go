// Package byzantine implements the adversary behaviours used in the
// evaluation (§2.1, §4): Byzantine nodes "may fail to send messages, send
// too many messages, send messages with false information". A behaviour
// wraps a node's send path and observes its receive path; the runner
// installs it between the protocol and the MAC.
//
// Behaviours cannot forge other nodes' signatures (they hold only their own
// key), matching the model's assumption.
package byzantine

import (
	"math/rand"
	"time"

	"bbcast/internal/wire"
)

// Behavior intercepts one node's traffic.
type Behavior interface {
	// Name identifies the behaviour in reports.
	Name() string
	// FilterSend inspects an outgoing packet. It returns the packet to
	// actually transmit (possibly modified) or nil to silently drop it.
	FilterSend(pkt *wire.Packet) *wire.Packet
	// OnReceive observes every received packet (before the protocol does).
	OnReceive(pkt *wire.Packet)
	// Tick runs periodically and may inject extra traffic via send.
	Tick(send func(*wire.Packet))
}

// Correct is the identity behaviour.
type Correct struct{}

var _ Behavior = Correct{}

// Name implements Behavior.
func (Correct) Name() string { return "correct" }

// FilterSend implements Behavior.
func (Correct) FilterSend(pkt *wire.Packet) *wire.Packet { return pkt }

// OnReceive implements Behavior.
func (Correct) OnReceive(*wire.Packet) {}

// Tick implements Behavior.
func (Correct) Tick(func(*wire.Packet)) {}

// Mute models the paper's most adverse failure: the node keeps claiming
// overlay membership (its maintenance and gossip traffic flows) but never
// forwards other nodes' data and never relays searches, silently black-holing
// the overlay paths through it.
type Mute struct {
	// Self is the adversary's own id; its own originations still go out
	// (a mute node may still be an application source).
	Self wire.NodeID
	// DropGossip additionally silences its gossip (a totally mute node).
	DropGossip bool
}

var _ Behavior = (*Mute)(nil)

// Name implements Behavior.
func (m *Mute) Name() string { return "mute" }

// FilterSend implements Behavior.
func (m *Mute) FilterSend(pkt *wire.Packet) *wire.Packet {
	switch pkt.Kind {
	case wire.KindData:
		if pkt.Origin != m.Self {
			return nil // refuse to forward or serve others' data
		}
	case wire.KindFindMissing, wire.KindRequest:
		return nil // refuse to relay or initiate searches
	case wire.KindGossip:
		if m.DropGossip {
			if pkt.State == nil {
				return nil
			}
			// Keep claiming overlay membership: strip advertisements but
			// let the piggybacked state through.
			cp := pkt.Clone()
			cp.Gossip = nil
			return cp
		}
	}
	return pkt
}

// OnReceive implements Behavior.
func (m *Mute) OnReceive(*wire.Packet) {}

// Tick implements Behavior.
func (m *Mute) Tick(func(*wire.Packet)) {}

// Verbose floods the network with valid-looking requests for messages it has
// heard advertised, provoking overlay nodes into re-sending data (a
// reaction-amplification attack, §3.1).
type Verbose struct {
	// Self is the adversary's id.
	Self wire.NodeID
	// Rng drives target selection.
	Rng *rand.Rand
	// PerTick is how many spam requests go out per behaviour tick.
	PerTick int

	entries []wire.GossipEntry
	targets []wire.NodeID
}

var _ Behavior = (*Verbose)(nil)

// Name implements Behavior.
func (v *Verbose) Name() string { return "verbose" }

// FilterSend implements Behavior.
func (v *Verbose) FilterSend(pkt *wire.Packet) *wire.Packet { return pkt }

// OnReceive implements Behavior: harvest real gossip entries (their
// signatures are valid, so spam requests referencing them pass verification)
// and candidate targets.
func (v *Verbose) OnReceive(pkt *wire.Packet) {
	if pkt.Sender != v.Self {
		v.noteTarget(pkt.Sender)
	}
	for _, e := range pkt.Gossip {
		if len(v.entries) < 64 {
			v.entries = append(v.entries, e)
		}
	}
}

func (v *Verbose) noteTarget(id wire.NodeID) {
	for _, t := range v.targets {
		if t == id {
			return
		}
	}
	if len(v.targets) < 32 {
		v.targets = append(v.targets, id)
	}
}

// Tick implements Behavior: replay requests for known messages.
func (v *Verbose) Tick(send func(*wire.Packet)) {
	if len(v.entries) == 0 || len(v.targets) == 0 {
		return
	}
	n := v.PerTick
	if n <= 0 {
		n = 3
	}
	for i := 0; i < n; i++ {
		e := v.entries[v.Rng.Intn(len(v.entries))]
		t := v.targets[v.Rng.Intn(len(v.targets))]
		send(&wire.Packet{
			Kind:   wire.KindRequest,
			Sender: v.Self,
			TTL:    1,
			Target: t,
			Origin: e.ID.Origin,
			Seq:    e.ID.Seq,
			Sig:    e.Sig,
		})
	}
}

// Tamper corrupts the payload of every data message it forwards without
// being able to re-sign it, so correct receivers detect the bad signature
// and suspect the tamperer.
type Tamper struct {
	// Self is the adversary's id; its own originations are left intact
	// (tampering with its own signed messages would only hurt itself).
	Self wire.NodeID
}

var _ Behavior = (*Tamper)(nil)

// Name implements Behavior.
func (t *Tamper) Name() string { return "tamper" }

// FilterSend implements Behavior.
func (t *Tamper) FilterSend(pkt *wire.Packet) *wire.Packet {
	if pkt.Kind != wire.KindData || pkt.Origin == t.Self || len(pkt.Payload) == 0 {
		return pkt
	}
	cp := pkt.Clone()
	cp.Payload[0] ^= 0xFF
	return cp
}

// OnReceive implements Behavior.
func (t *Tamper) OnReceive(*wire.Packet) {}

// Tick implements Behavior.
func (t *Tamper) Tick(func(*wire.Packet)) {}

// SelectiveDrop drops a random fraction of all forwards — a "selfish" node
// saving battery rather than an outright attacker.
type SelectiveDrop struct {
	// Self is the adversary's id.
	Self wire.NodeID
	// Rng drives the drop decision.
	Rng *rand.Rand
	// DropProb is the probability of dropping a forwarded packet.
	DropProb float64
}

var _ Behavior = (*SelectiveDrop)(nil)

// Name implements Behavior.
func (s *SelectiveDrop) Name() string { return "selective-drop" }

// FilterSend implements Behavior.
func (s *SelectiveDrop) FilterSend(pkt *wire.Packet) *wire.Packet {
	if pkt.Kind == wire.KindData && pkt.Origin != s.Self && s.Rng.Float64() < s.DropProb {
		return nil
	}
	return pkt
}

// OnReceive implements Behavior.
func (s *SelectiveDrop) OnReceive(*wire.Packet) {}

// Tick implements Behavior.
func (s *SelectiveDrop) Tick(func(*wire.Packet)) {}

// TickInterval is the behaviour tick period used by the runner.
const TickInterval = 500 * time.Millisecond
