// Package byzantine implements the adversary behaviours used in the
// evaluation (§2.1, §4): Byzantine nodes "may fail to send messages, send
// too many messages, send messages with false information". A behaviour
// wraps a node's send path and observes its receive path; the runner
// installs it between the protocol and the MAC.
//
// Behaviours cannot forge other nodes' signatures (they hold only their own
// key), matching the model's assumption.
package byzantine

import (
	"fmt"
	"math/rand"
	"time"

	"bbcast/internal/wire"
)

// Behavior intercepts one node's traffic.
type Behavior interface {
	// Name identifies the behaviour in reports.
	Name() string
	// FilterSend inspects an outgoing packet. It returns the packet to
	// actually transmit (possibly modified) or nil to silently drop it.
	FilterSend(pkt *wire.Packet) *wire.Packet
	// OnReceive observes every received packet (before the protocol does).
	OnReceive(pkt *wire.Packet)
	// Tick runs periodically and may inject extra traffic via send.
	Tick(send func(*wire.Packet))
}

// Correct is the identity behaviour.
type Correct struct{}

var _ Behavior = Correct{}

// Name implements Behavior.
func (Correct) Name() string { return "correct" }

// FilterSend implements Behavior.
func (Correct) FilterSend(pkt *wire.Packet) *wire.Packet { return pkt }

// OnReceive implements Behavior.
func (Correct) OnReceive(*wire.Packet) {}

// Tick implements Behavior.
func (Correct) Tick(func(*wire.Packet)) {}

// Mute models the paper's most adverse failure: the node keeps claiming
// overlay membership (its maintenance and gossip traffic flows) but never
// forwards other nodes' data and never relays searches, silently black-holing
// the overlay paths through it.
type Mute struct {
	// Self is the adversary's own id; its own originations still go out
	// (a mute node may still be an application source).
	Self wire.NodeID
	// DropGossip additionally silences its gossip (a totally mute node).
	DropGossip bool
}

var _ Behavior = (*Mute)(nil)

// Name implements Behavior.
func (m *Mute) Name() string { return "mute" }

// FilterSend implements Behavior.
func (m *Mute) FilterSend(pkt *wire.Packet) *wire.Packet {
	switch pkt.Kind {
	case wire.KindData:
		if pkt.Origin != m.Self {
			return nil // refuse to forward or serve others' data
		}
	case wire.KindFindMissing, wire.KindRequest:
		return nil // refuse to relay or initiate searches
	case wire.KindGossip:
		if m.DropGossip {
			if pkt.State == nil {
				return nil
			}
			// Keep claiming overlay membership: strip advertisements but
			// let the piggybacked state through.
			cp := pkt.Clone()
			cp.Gossip = nil
			return cp
		}
	}
	return pkt
}

// OnReceive implements Behavior.
func (m *Mute) OnReceive(*wire.Packet) {}

// Tick implements Behavior.
func (m *Mute) Tick(func(*wire.Packet)) {}

// Verbose floods the network with valid-looking requests for messages it has
// heard advertised, provoking overlay nodes into re-sending data (a
// reaction-amplification attack, §3.1).
type Verbose struct {
	// Self is the adversary's id.
	Self wire.NodeID
	// Rng drives target selection.
	Rng *rand.Rand
	// PerTick is how many spam requests go out per behaviour tick.
	PerTick int

	entries []wire.GossipEntry
	targets []wire.NodeID
}

var _ Behavior = (*Verbose)(nil)

// Name implements Behavior.
func (v *Verbose) Name() string { return "verbose" }

// FilterSend implements Behavior.
func (v *Verbose) FilterSend(pkt *wire.Packet) *wire.Packet { return pkt }

// OnReceive implements Behavior: harvest real gossip entries (their
// signatures are valid, so spam requests referencing them pass verification)
// and candidate targets.
func (v *Verbose) OnReceive(pkt *wire.Packet) {
	if pkt.Sender != v.Self {
		v.noteTarget(pkt.Sender)
	}
	for _, e := range pkt.Gossip {
		if len(v.entries) < 64 {
			v.entries = append(v.entries, e)
		}
	}
}

func (v *Verbose) noteTarget(id wire.NodeID) {
	for _, t := range v.targets {
		if t == id {
			return
		}
	}
	if len(v.targets) < 32 {
		v.targets = append(v.targets, id)
	}
}

// Tick implements Behavior: replay requests for known messages.
func (v *Verbose) Tick(send func(*wire.Packet)) {
	if len(v.entries) == 0 || len(v.targets) == 0 {
		return
	}
	n := v.PerTick
	if n <= 0 {
		n = 3
	}
	for i := 0; i < n; i++ {
		e := v.entries[v.Rng.Intn(len(v.entries))]
		t := v.targets[v.Rng.Intn(len(v.targets))]
		send(&wire.Packet{
			Kind:   wire.KindRequest,
			Sender: v.Self,
			TTL:    1,
			Target: t,
			Origin: e.ID.Origin,
			Seq:    e.ID.Seq,
			Sig:    e.Sig,
		})
	}
}

// Tamper corrupts the payload of every data message it forwards without
// being able to re-sign it, so correct receivers detect the bad signature
// and suspect the tamperer.
type Tamper struct {
	// Self is the adversary's id; its own originations are left intact
	// (tampering with its own signed messages would only hurt itself).
	Self wire.NodeID
}

var _ Behavior = (*Tamper)(nil)

// Name implements Behavior.
func (t *Tamper) Name() string { return "tamper" }

// FilterSend implements Behavior.
func (t *Tamper) FilterSend(pkt *wire.Packet) *wire.Packet {
	if pkt.Kind != wire.KindData || pkt.Origin == t.Self || len(pkt.Payload) == 0 {
		return pkt
	}
	cp := pkt.Clone()
	cp.Payload[0] ^= 0xFF
	return cp
}

// OnReceive implements Behavior.
func (t *Tamper) OnReceive(*wire.Packet) {}

// Tick implements Behavior.
func (t *Tamper) Tick(func(*wire.Packet)) {}

// SelectiveDrop drops a random fraction of all forwards — a "selfish" node
// saving battery rather than an outright attacker.
type SelectiveDrop struct {
	// Self is the adversary's id.
	Self wire.NodeID
	// Rng drives the drop decision.
	Rng *rand.Rand
	// DropProb is the probability of dropping a forwarded packet.
	DropProb float64
}

var _ Behavior = (*SelectiveDrop)(nil)

// Name implements Behavior.
func (s *SelectiveDrop) Name() string { return "selective-drop" }

// FilterSend implements Behavior.
func (s *SelectiveDrop) FilterSend(pkt *wire.Packet) *wire.Packet {
	if pkt.Kind == wire.KindData && pkt.Origin != s.Self && s.Rng.Float64() < s.DropProb {
		return nil
	}
	return pkt
}

// OnReceive implements Behavior.
func (s *SelectiveDrop) OnReceive(*wire.Packet) {}

// Tick implements Behavior.
func (s *SelectiveDrop) Tick(func(*wire.Packet)) {}

// Equivocate is a Byzantine *source*: it signs conflicting payload variants
// of its own messages under the same message id, so different correct nodes
// accept different payloads (the classic equivocation attack). Signatures
// cannot prevent it — the attacker holds its own key and both variants
// verify — which is exactly why the agreement invariant has to watch for it.
// The behaviour originates its own traffic: every OriginateEvery-th tick it
// broadcasts variant A of a fresh message, then re-broadcasts the re-signed
// variant B one tick later. Receivers accept the first valid copy they hear,
// so any node that lost A to a collision or the fringe — or that first hears
// the message from a B-holder's forward — delivers B while the rest of the
// network delivers A.
type Equivocate struct {
	// Self is the adversary's id.
	Self wire.NodeID
	// Sign signs bytes with the node's own key (injected by the host; a
	// behaviour may only ever sign as itself, per the model).
	Sign func(data []byte) []byte
	// OriginateEvery is the number of behaviour ticks between fresh
	// messages (default 4, i.e. one equivocating message per 2 s).
	OriginateEvery int

	seq     wire.Seq
	ticks   int
	variant *wire.Packet // variant B awaiting re-broadcast
	sends   map[wire.MsgID]int
}

var _ Behavior = (*Equivocate)(nil)

// equivocateSeqBase keeps behaviour-originated sequence numbers clear of the
// node's protocol-level sequence counter.
const equivocateSeqBase wire.Seq = 1 << 20

// Name implements Behavior.
func (e *Equivocate) Name() string { return "equivocate" }

// FilterSend implements Behavior: every other transmission of one of its own
// protocol-originated data messages carries a mutated, re-signed payload, so
// copies the node re-serves during recovery conflict with the original.
func (e *Equivocate) FilterSend(pkt *wire.Packet) *wire.Packet {
	if pkt.Kind != wire.KindData || pkt.Origin != e.Self || len(pkt.Payload) == 0 || e.Sign == nil {
		return pkt
	}
	if e.sends == nil {
		e.sends = make(map[wire.MsgID]int)
	}
	id := pkt.ID()
	n := e.sends[id]
	e.sends[id] = n + 1
	if n%2 == 0 {
		return pkt // even transmissions: the honest variant
	}
	cp := pkt.Clone()
	cp.Payload[0] ^= 0x01
	cp.Sig = e.Sign(wire.DataSigBytes(id, cp.Payload))
	return cp
}

// OnReceive implements Behavior.
func (e *Equivocate) OnReceive(*wire.Packet) {}

// Tick implements Behavior: alternately broadcast a fresh variant-A message
// and the conflicting variant B of the previous one.
func (e *Equivocate) Tick(send func(*wire.Packet)) {
	if e.Sign == nil {
		return
	}
	if e.variant != nil {
		send(e.variant)
		e.variant = nil
		return
	}
	every := e.OriginateEvery
	if every <= 0 {
		every = 4
	}
	e.ticks++
	if e.ticks%every != 0 {
		return
	}
	e.seq++
	id := wire.MsgID{Origin: e.Self, Seq: equivocateSeqBase + e.seq}
	payload := []byte(fmt.Sprintf("equivocation %d/%d", e.Self, e.seq))
	a := &wire.Packet{
		Kind:    wire.KindData,
		Sender:  e.Self,
		TTL:     1,
		Target:  wire.NoNode,
		Origin:  id.Origin,
		Seq:     id.Seq,
		Payload: payload,
		Sig:     e.Sign(wire.DataSigBytes(id, payload)),
	}
	b := a.Clone()
	b.Payload[0] ^= 0x01
	b.Sig = e.Sign(wire.DataSigBytes(id, b.Payload))
	send(a)
	e.variant = b
}

// flooderSeqBase keeps Flooder-originated sequence numbers clear of both the
// node's protocol-level counter and the Equivocate range.
const flooderSeqBase wire.Seq = 2 << 20

// Flooder is a resource-exhaustion adversary: it originates a stream of
// fresh, validly signed data messages far above any legitimate workload rate.
// Every message verifies — the attack is not on agreement but on the
// receivers' memory (store growth) and CPU (one verification per message),
// which is exactly what the admission-control layer must bound.
type Flooder struct {
	// Self is the adversary's id.
	Self wire.NodeID
	// Sign signs bytes with the node's own key.
	Sign func(data []byte) []byte
	// PerTick is how many fresh messages go out per behaviour tick
	// (default 5 — 10 msg/s at the standard tick, 10× the default workload).
	PerTick int
	// PayloadSize is the spam payload length (default 64 bytes).
	PayloadSize int

	seq wire.Seq
}

var _ Behavior = (*Flooder)(nil)

// Name implements Behavior.
func (f *Flooder) Name() string { return "flooder" }

// FilterSend implements Behavior.
func (f *Flooder) FilterSend(pkt *wire.Packet) *wire.Packet { return pkt }

// OnReceive implements Behavior.
func (f *Flooder) OnReceive(*wire.Packet) {}

// Tick implements Behavior: spam fresh signed messages.
func (f *Flooder) Tick(send func(*wire.Packet)) {
	if f.Sign == nil {
		return
	}
	n := f.PerTick
	if n <= 0 {
		n = 5
	}
	size := f.PayloadSize
	if size <= 0 {
		size = 64
	}
	for i := 0; i < n; i++ {
		f.seq++
		id := wire.MsgID{Origin: f.Self, Seq: flooderSeqBase + f.seq}
		payload := make([]byte, size)
		copy(payload, fmt.Sprintf("flood %d/%d", f.Self, f.seq))
		send(&wire.Packet{
			Kind:    wire.KindData,
			Sender:  f.Self,
			TTL:     1,
			Target:  wire.NoNode,
			Origin:  id.Origin,
			Seq:     id.Seq,
			Payload: payload,
			Sig:     f.Sign(wire.DataSigBytes(id, payload)),
		})
	}
}

// Replayer harvests packets off the air and re-transmits byte-identical
// copies later. Every replayed signature verifies (the bytes once did), so
// the defence is duplicate suppression: without dedup-before-verify each
// replay costs a full signature check, and without tombstones an old replay
// is re-accepted.
type Replayer struct {
	// Self is the adversary's id.
	Self wire.NodeID
	// Rng picks which harvested packets to replay.
	Rng *rand.Rand
	// PerTick is how many replays go out per behaviour tick (default 8).
	PerTick int

	harvest []*wire.Packet
}

var _ Behavior = (*Replayer)(nil)

// Name implements Behavior.
func (r *Replayer) Name() string { return "replayer" }

// FilterSend implements Behavior.
func (r *Replayer) FilterSend(pkt *wire.Packet) *wire.Packet { return pkt }

// OnReceive implements Behavior: harvest up to 128 distinct packets.
func (r *Replayer) OnReceive(pkt *wire.Packet) {
	if pkt.Sender == r.Self || len(r.harvest) >= 128 {
		return
	}
	r.harvest = append(r.harvest, pkt.Clone())
}

// Tick implements Behavior: re-send harvested packets verbatim (except the
// sender id, which the radio stamps as us anyway — a node cannot spoof its
// link-layer source here).
func (r *Replayer) Tick(send func(*wire.Packet)) {
	if len(r.harvest) == 0 {
		return
	}
	n := r.PerTick
	if n <= 0 {
		n = 8
	}
	for i := 0; i < n; i++ {
		var pick int
		if r.Rng != nil {
			pick = r.Rng.Intn(len(r.harvest))
		} else {
			pick = i % len(r.harvest)
		}
		cp := r.harvest[pick].Clone()
		cp.Sender = r.Self
		send(cp)
	}
}

// ForgeSpammer sends packets with junk signatures attributed to nodes that do
// not exist, forcing receivers to spend one (failing) verification per packet
// and to churn their neighbour tables with phantom senders. It never frames a
// real node: signer ids are drawn from far outside the deployment's id range,
// so the bad-signature suspicions it provokes indict no one.
type ForgeSpammer struct {
	// Self is the adversary's id.
	Self wire.NodeID
	// Rng drives id and payload generation.
	Rng *rand.Rand
	// PerTick is how many junk packets go out per behaviour tick (default 8).
	PerTick int

	seq wire.Seq
}

var _ Behavior = (*ForgeSpammer)(nil)

// forgeIDBase keeps forged origin ids clear of any real deployment's node-id
// range (experiments use small dense ids).
const forgeIDBase = 1 << 24

// Name implements Behavior.
func (s *ForgeSpammer) Name() string { return "forge-spammer" }

// FilterSend implements Behavior.
func (s *ForgeSpammer) FilterSend(pkt *wire.Packet) *wire.Packet { return pkt }

// OnReceive implements Behavior.
func (s *ForgeSpammer) OnReceive(*wire.Packet) {}

// Tick implements Behavior: spam data and gossip packets with random
// signatures from nonexistent origins.
func (s *ForgeSpammer) Tick(send func(*wire.Packet)) {
	if s.Rng == nil {
		return
	}
	n := s.PerTick
	if n <= 0 {
		n = 8
	}
	for i := 0; i < n; i++ {
		s.seq++
		origin := wire.NodeID(forgeIDBase + s.Rng.Intn(1<<20))
		junk := make([]byte, 32)
		s.Rng.Read(junk)
		if s.seq%2 == 0 {
			send(&wire.Packet{
				Kind:   wire.KindGossip,
				Sender: s.Self,
				TTL:    1,
				Target: wire.NoNode,
				Origin: wire.NoNode,
				Gossip: []wire.GossipEntry{{ID: wire.MsgID{Origin: origin, Seq: s.seq}, Sig: junk}},
			})
			continue
		}
		payload := make([]byte, 32)
		s.Rng.Read(payload)
		send(&wire.Packet{
			Kind:    wire.KindData,
			Sender:  s.Self,
			TTL:     1,
			Target:  wire.NoNode,
			Origin:  origin,
			Seq:     s.seq,
			Payload: payload,
			Sig:     junk,
		})
	}
}

// Switchable wraps a Behavior so the fault-injection layer can replace it
// mid-run (a correct node turning mute, an adversary being "patched"). The
// zero value delegates to Correct.
type Switchable struct {
	cur Behavior
}

// NewSwitchable wraps b (nil means Correct).
func NewSwitchable(b Behavior) *Switchable {
	if b == nil {
		b = Correct{}
	}
	return &Switchable{cur: b}
}

var _ Behavior = (*Switchable)(nil)

// Set replaces the current behaviour (nil means Correct). The swap takes
// effect on the next packet.
func (s *Switchable) Set(b Behavior) {
	if b == nil {
		b = Correct{}
	}
	s.cur = b
}

// Current returns the behaviour currently in effect.
func (s *Switchable) Current() Behavior {
	if s.cur == nil {
		return Correct{}
	}
	return s.cur
}

// Name implements Behavior.
func (s *Switchable) Name() string { return s.Current().Name() }

// FilterSend implements Behavior.
func (s *Switchable) FilterSend(pkt *wire.Packet) *wire.Packet {
	return s.Current().FilterSend(pkt)
}

// OnReceive implements Behavior.
func (s *Switchable) OnReceive(pkt *wire.Packet) { s.Current().OnReceive(pkt) }

// Tick implements Behavior.
func (s *Switchable) Tick(send func(*wire.Packet)) { s.Current().Tick(send) }

// Make builds a behaviour by name — the vocabulary fault plans use for
// behaviour swaps. rng and sign may be nil for behaviours that do not need
// them. Known names: correct, mute, mute-silent, verbose, tamper,
// selective-drop, equivocate, flooder, replayer, forge-spammer.
func Make(name string, self wire.NodeID, rng *rand.Rand, sign func([]byte) []byte) (Behavior, error) {
	switch name {
	case "correct", "":
		return Correct{}, nil
	case "mute":
		return &Mute{Self: self}, nil
	case "mute-silent":
		return &Mute{Self: self, DropGossip: true}, nil
	case "verbose":
		if rng == nil {
			return nil, fmt.Errorf("byzantine: %q needs a random stream", name)
		}
		return &Verbose{Self: self, Rng: rng, PerTick: 4}, nil
	case "tamper":
		return &Tamper{Self: self}, nil
	case "selective-drop":
		if rng == nil {
			return nil, fmt.Errorf("byzantine: %q needs a random stream", name)
		}
		return &SelectiveDrop{Self: self, Rng: rng, DropProb: 0.5}, nil
	case "equivocate":
		if sign == nil {
			return nil, fmt.Errorf("byzantine: %q needs a signing function", name)
		}
		return &Equivocate{Self: self, Sign: sign}, nil
	case "flooder":
		if sign == nil {
			return nil, fmt.Errorf("byzantine: %q needs a signing function", name)
		}
		return &Flooder{Self: self, Sign: sign}, nil
	case "replayer":
		return &Replayer{Self: self, Rng: rng}, nil
	case "forge-spammer":
		if rng == nil {
			return nil, fmt.Errorf("byzantine: %q needs a random stream", name)
		}
		return &ForgeSpammer{Self: self, Rng: rng}, nil
	default:
		return nil, fmt.Errorf("byzantine: unknown behaviour %q", name)
	}
}

// Faulty reports whether the named behaviour deviates from the protocol
// (anything but "correct").
func Faulty(name string) bool { return name != "correct" && name != "" }

// TickInterval is the behaviour tick period used by the runner.
const TickInterval = 500 * time.Millisecond
