// Parallel experiment engine: a worker pool that fans independent
// (seed, scenario) replicates out across GOMAXPROCS workers while keeping
// each individual simulation run single-threaded and bit-identical.
//
// Every simulation owns its engine, medium, protocol instances, RNG streams
// and metric collectors, so runs share nothing and any interleaving of
// workers produces the same per-replicate results as a serial loop. The only
// sharing hazards are the caller-provided sinks on a Scenario (Trace,
// Observer, SnapshotSVG); ReplicateScenarios strips them from every
// replicate but the first so a sink is never written by two runs at once.
package runner

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"bbcast/internal/core"
	"bbcast/internal/wire"
)

// ReplicateSeed derives the engine seed for replicate k of a base seed.
// Replicate 0 keeps the base seed (a single replicate is exactly the plain
// run); later replicates pass base+k through a SplitMix64 finalizer so their
// RNG streams are decorrelated from the base and from each other.
//
// The derivation depends only on (base, k) — never on worker count or
// execution order — so replicate k's results are invariant under any
// parallelism level.
func ReplicateSeed(base int64, k int) int64 {
	if k == 0 {
		return base
	}
	z := uint64(base) + uint64(k)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return int64(z)
}

// ReplicateScenarios expands a base scenario into count replicates with
// seeds derived by ReplicateSeed. Caller-provided output sinks (Trace,
// Observer, SnapshotSVG) are kept only on replicate 0: they are single-writer
// objects, and sharing one across concurrently-running replicates would
// interleave their output (for observers backed by an obsv.Registry, mix
// atomic counters from unrelated runs). Callers that want per-replicate
// observers attach a fresh one to each returned scenario.
func ReplicateScenarios(base Scenario, count int) []Scenario {
	scs := make([]Scenario, count)
	for k := range scs {
		sc := base
		sc.Seed = ReplicateSeed(base.Seed, k)
		if count > 1 {
			sc.Name = fmt.Sprintf("%s/r%d", base.Name, k)
		}
		if k > 0 {
			sc.Trace = nil
			sc.Observer = nil
			sc.SnapshotSVG = ""
		}
		scs[k] = sc
	}
	return scs
}

// Pool runs independent scenarios across a fixed number of workers. Each
// scenario still executes on a single goroutine (the simulator is
// single-threaded by design); the pool only provides parallelism *across*
// runs. The zero value runs with GOMAXPROCS workers.
type Pool struct {
	// Workers is the number of concurrent simulations; <= 0 means
	// runtime.GOMAXPROCS(0).
	Workers int
}

// workers resolves the effective worker count.
func (p Pool) workers() int {
	if p.Workers > 0 {
		return p.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// RunAll executes every scenario and returns their results in input order.
// All scenarios run even if some fail; the first error (in input order) is
// returned alongside the results.
func (p Pool) RunAll(scs []Scenario) ([]Result, error) {
	results := make([]Result, len(scs))
	errs := make([]error, len(scs))
	w := p.workers()
	if w > len(scs) {
		w = len(scs)
	}
	if w <= 1 {
		for i := range scs {
			results[i], errs[i] = Run(scs[i])
		}
	} else {
		jobs := make(chan int)
		var wg sync.WaitGroup
		wg.Add(w)
		for g := 0; g < w; g++ {
			go func() {
				defer wg.Done()
				for i := range jobs {
					results[i], errs[i] = Run(scs[i])
				}
			}()
		}
		for i := range scs {
			jobs <- i
		}
		close(jobs)
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			return results, err
		}
	}
	return results, nil
}

// RunReplicates runs count replicates of the base scenario (seeds derived by
// ReplicateSeed) and returns the per-replicate results in replicate order.
func (p Pool) RunReplicates(base Scenario, count int) ([]Result, error) {
	if count <= 0 {
		return nil, fmt.Errorf("runner: need count > 0 replicates, got %d", count)
	}
	return p.RunAll(ReplicateScenarios(base, count))
}

// Average reduces per-replicate results to their mean: ratio and latency
// fields become per-replicate means, counters become per-replicate mean
// counts. Violations and fault events are concatenated (they identify the
// replicates that misbehaved, which averaging would hide).
func Average(rs []Result) Result {
	if len(rs) == 0 {
		return Result{}
	}
	if len(rs) == 1 {
		return rs[0]
	}
	out := rs[0]
	n := float64(len(rs))
	un := uint64(len(rs))
	var delivery, txPerMsg float64
	var latMean, latP50, latP95, latP99, latMax time.Duration
	var hopMean, hopP50, hopP95, hopMax, recoveryShare float64
	var remoteDeliveries, recoveryDeliveries uint64
	var totalTx, bytes, collisions, events uint64
	var rejoins, syncReqs, syncServed, syncApplied, syncBytes, syncAbandoned uint64
	var rejoinLatMean, rejoinLatMax time.Duration
	var overlaySize, detected, injected int
	byKind := make(map[wire.Kind]uint64)
	var node core.Stats
	out.Violations = nil
	out.FaultEvents = nil
	for _, r := range rs {
		delivery += r.DeliveryRatio
		txPerMsg += r.TxPerMessage
		latMean += r.LatMean
		latP50 += r.LatP50
		latP95 += r.LatP95
		latP99 += r.LatP99
		latMax += r.LatMax
		hopMean += r.HopMean
		hopP50 += r.HopP50
		hopP95 += r.HopP95
		hopMax += r.HopMax
		recoveryShare += r.RecoveryShare
		remoteDeliveries += r.RemoteDeliveries
		recoveryDeliveries += r.RecoveryDeliveries
		totalTx += r.TotalTx
		bytes += r.BytesOnAir
		collisions += r.Collisions
		events += r.Events
		rejoins += r.Rejoins
		syncReqs += r.SyncReqs
		syncServed += r.SyncEntriesServed
		syncApplied += r.SyncEntriesApplied
		syncBytes += r.SyncBytes
		syncAbandoned += r.SyncAbandoned
		rejoinLatMean += r.RejoinLatMean
		if r.RejoinLatMax > rejoinLatMax {
			rejoinLatMax = r.RejoinLatMax
		}
		overlaySize += r.OverlaySize
		detected += r.AdversariesDetected
		injected += r.Injected
		for k, v := range r.TxByKind {
			byKind[k] += v
		}
		node.Accepted += r.Node.Accepted
		node.Duplicates += r.Node.Duplicates
		node.BadSignatures += r.Node.BadSignatures
		node.Forwarded += r.Node.Forwarded
		node.GossipsSent += r.Node.GossipsSent
		node.RequestsSent += r.Node.RequestsSent
		node.FindsSent += r.Node.FindsSent
		node.RecoveredByData += r.Node.RecoveredByData
		node.RateLimited += r.Node.RateLimited
		node.DedupSkips += r.Node.DedupSkips
		node.Evictions += r.Node.Evictions
		node.Adaptations += r.Node.Adaptations
		node.RetriesSent += r.Node.RetriesSent
		node.RetriesAbandoned += r.Node.RetriesAbandoned
		node.Rejoins += r.Node.Rejoins
		node.SyncReqsSent += r.Node.SyncReqsSent
		node.SyncEntriesServed += r.Node.SyncEntriesServed
		node.SyncEntriesApplied += r.Node.SyncEntriesApplied
		node.SyncAbandoned += r.Node.SyncAbandoned
		out.Violations = append(out.Violations, r.Violations...)
		out.FaultEvents = append(out.FaultEvents, r.FaultEvents...)
		if out.Repro == "" {
			out.Repro = r.Repro
		}
	}
	out.DeliveryRatio = delivery / n
	out.TxPerMessage = txPerMsg / n
	out.LatMean = latMean / time.Duration(len(rs))
	out.LatP50 = latP50 / time.Duration(len(rs))
	out.LatP95 = latP95 / time.Duration(len(rs))
	out.LatP99 = latP99 / time.Duration(len(rs))
	out.LatMax = latMax / time.Duration(len(rs))
	out.HopMean = hopMean / n
	out.HopP50 = hopP50 / n
	out.HopP95 = hopP95 / n
	out.HopMax = hopMax / n
	out.RecoveryShare = recoveryShare / n
	out.RemoteDeliveries = remoteDeliveries / un
	out.RecoveryDeliveries = recoveryDeliveries / un
	out.TotalTx = totalTx / un
	out.BytesOnAir = bytes / un
	out.Collisions = collisions / un
	out.Events = events / un
	out.Rejoins = rejoins / un
	out.SyncReqs = syncReqs / un
	out.SyncEntriesServed = syncServed / un
	out.SyncEntriesApplied = syncApplied / un
	out.SyncBytes = syncBytes / un
	out.SyncAbandoned = syncAbandoned / un
	out.RejoinLatMean = rejoinLatMean / time.Duration(len(rs))
	out.RejoinLatMax = rejoinLatMax
	out.OverlaySize = overlaySize / len(rs)
	out.AdversariesDetected = detected / len(rs)
	out.Injected = injected / len(rs)
	out.TxByKind = make(map[wire.Kind]uint64, len(byKind))
	for k, v := range byKind {
		out.TxByKind[k] = v / un
	}
	out.Node = core.Stats{
		Accepted:           node.Accepted / un,
		Duplicates:         node.Duplicates / un,
		BadSignatures:      node.BadSignatures / un,
		Forwarded:          node.Forwarded / un,
		GossipsSent:        node.GossipsSent / un,
		RequestsSent:       node.RequestsSent / un,
		FindsSent:          node.FindsSent / un,
		RecoveredByData:    node.RecoveredByData / un,
		RateLimited:        node.RateLimited / un,
		DedupSkips:         node.DedupSkips / un,
		Evictions:          node.Evictions / un,
		Adaptations:        node.Adaptations / un,
		RetriesSent:        node.RetriesSent / un,
		RetriesAbandoned:   node.RetriesAbandoned / un,
		Rejoins:            node.Rejoins / un,
		SyncReqsSent:       node.SyncReqsSent / un,
		SyncEntriesServed:  node.SyncEntriesServed / un,
		SyncEntriesApplied: node.SyncEntriesApplied / un,
		SyncAbandoned:      node.SyncAbandoned / un,
	}
	return out
}
