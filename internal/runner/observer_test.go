package runner

// A Scenario.Observer must see the same events the built-in collector sees:
// a RegistryObserver attached to a run exports the same numbers (and the
// same JSON schema) a live node serves, which is the whole point of the
// shared observability layer.

import (
	"math"
	"strings"
	"testing"
	"time"

	"bbcast/internal/obsv"
)

func TestScenarioObserverRegistryMatchesResults(t *testing.T) {
	reg := obsv.NewRegistry()
	sc := quickScenario()
	sc.N = 30
	sc.Workload.End = 35 * time.Second
	sc.Duration = 45 * time.Second
	sc.Observer = obsv.NewRegistryObserver(reg)
	res, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	d := reg.Snapshot()

	if got := d.Counters[obsv.MetricInjectsTotal]; got != uint64(res.Injected) {
		t.Fatalf("registry injects = %d, results say %d", got, res.Injected)
	}
	var tx uint64
	for name, v := range d.Counters {
		if strings.HasPrefix(name, obsv.MetricTxTotal+"{") {
			tx += v
		}
	}
	if tx != res.TotalTx {
		t.Fatalf("registry tx = %d, results say %d", tx, res.TotalTx)
	}

	// The latency summary holds exactly the collector's samples (same
	// injects, same accepts, same originator exclusion), so the nearest-rank
	// quantiles must agree to float rounding.
	st := d.Summaries[obsv.MetricDeliveryLatency]
	if st.Count == 0 {
		t.Fatal("no delivery latency samples in registry")
	}
	for _, q := range []struct {
		name string
		reg  float64
		want time.Duration
	}{
		{"p50", st.P50, res.LatP50},
		{"p95", st.P95, res.LatP95},
	} {
		if diff := math.Abs(q.reg - q.want.Seconds()); diff > 0.001 {
			t.Fatalf("%s: registry %.6fs, results %v", q.name, q.reg, q.want)
		}
	}
	mean := st.Sum / float64(st.Count)
	if diff := math.Abs(mean - res.LatMean.Seconds()); diff > 0.001 {
		t.Fatalf("mean: registry %.6fs, results %v", mean, res.LatMean)
	}

	// Accepts at correct nodes only: adversary-free run, so every node's
	// accepts count — and each message is accepted at most once per node.
	if got := d.Counters[obsv.MetricAcceptsTotal]; got == 0 {
		t.Fatal("no accepts in registry")
	}
	if got := d.Counters[obsv.MetricRoleChanges]; got == 0 {
		t.Fatal("no role changes in registry")
	}
}

func TestScenarioObserverSkipsAdversaryAccepts(t *testing.T) {
	reg := obsv.NewRegistry()
	sc := quickScenario()
	sc.N = 30
	sc.Workload.End = 30 * time.Second
	sc.Duration = 40 * time.Second
	sc.Adversaries = []Adversaries{{Kind: AdvMute, Count: 5}}
	sc.Observer = obsv.NewRegistryObserver(reg)
	res, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	// Latency samples come only from correct nodes' accepts: with 5 mute
	// adversaries among 30 nodes, at most (correct nodes - originator) per
	// message.
	st := reg.Snapshot().Summaries[obsv.MetricDeliveryLatency]
	if max := uint64(res.Injected * (30 - 5 - 1)); st.Count > max {
		t.Fatalf("latency samples = %d, max %d with adversary accepts excluded", st.Count, max)
	}
}
