package runner

import (
	"bufio"
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"
	"time"

	"bbcast/internal/faultplan"
	"bbcast/internal/persist"
	"bbcast/internal/radio"
	"bbcast/internal/sim"
	"bbcast/internal/wire"
)

func chaosScenario() Scenario {
	sc := quickScenario()
	sc.FaultPlan = &faultplan.Plan{
		Events: []faultplan.Event{
			{At: 20 * time.Second, Kind: faultplan.Crash, Node: 7},
			{At: 35 * time.Second, Kind: faultplan.Recover, Node: 7},
			{At: 25 * time.Second, Kind: faultplan.DegradeRadio,
				LossFactor: 0.2, Duration: 5 * time.Second},
		},
	}
	return sc
}

func TestFaultPlanDeterministic(t *testing.T) {
	sc := chaosScenario()
	sc.FaultPlan.Churn = &faultplan.Churn{
		Rate: 0.3, Start: 15 * time.Second, End: 40 * time.Second}
	a, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.FaultEvents, b.FaultEvents) {
		t.Fatalf("same seed, different fault timelines:\n%v\n%v", a.FaultEvents, b.FaultEvents)
	}
	if a.DeliveryRatio != b.DeliveryRatio || a.TotalTx != b.TotalTx {
		t.Fatalf("same seed, different outcomes: %.4f/%d vs %.4f/%d",
			a.DeliveryRatio, a.TotalTx, b.DeliveryRatio, b.TotalTx)
	}
	sc.Seed = sc.Seed + 1
	c, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.FaultEvents, c.FaultEvents) {
		t.Fatal("different seeds produced identical churn timelines")
	}
}

func TestFaultEventsRecordedAndTraced(t *testing.T) {
	var buf bytes.Buffer
	sc := chaosScenario()
	sc.Trace = &buf
	res, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	// 3 planned events + the scheduled radio restoration.
	if len(res.FaultEvents) != 4 {
		t.Fatalf("fault events = %v", res.FaultEvents)
	}
	if res.FaultEvents[0].Name != "crash(7)" || res.FaultEvents[0].At != 20*time.Second {
		t.Fatalf("first event = %+v", res.FaultEvents[0])
	}
	names := make([]string, len(res.FaultEvents))
	for i, e := range res.FaultEvents {
		names[i] = e.Name
	}
	joined := strings.Join(names, " ")
	for _, want := range []string{"crash(7)", "recover(7)", "degrade-radio", "radio-restored"} {
		if !strings.Contains(joined, want) {
			t.Errorf("missing %q in %v", want, names)
		}
	}

	var faults []string
	scanner := bufio.NewScanner(&buf)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	for scanner.Scan() {
		var ev struct {
			Type   string `json:"type"`
			Detail string `json:"detail"`
		}
		if err := json.Unmarshal(scanner.Bytes(), &ev); err != nil {
			t.Fatalf("trace line not JSON: %v", err)
		}
		if ev.Type == "fault" {
			faults = append(faults, ev.Detail)
		}
	}
	if len(faults) != 4 || faults[0] != "crash(7)" {
		t.Fatalf("trace fault events = %v", faults)
	}
}

func TestPartitionHealRunsClean(t *testing.T) {
	sc := quickScenario()
	sc.Duration = 90 * time.Second
	sc.Workload.End = 75 * time.Second
	var left []wire.NodeID
	for i := 0; i < sc.N/2; i++ {
		left = append(left, wire.NodeID(i))
	}
	sc.FaultPlan = &faultplan.Plan{Events: []faultplan.Event{
		{At: 25 * time.Second, Kind: faultplan.Partition, Groups: [][]wire.NodeID{left}},
		{At: 50 * time.Second, Kind: faultplan.Heal},
	}}
	res, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) != 0 {
		t.Fatalf("clean partition/heal run violated invariants: %v", res.Violations)
	}
	if res.DeliveryRatio < 0.5 {
		t.Fatalf("delivery collapsed: %.3f", res.DeliveryRatio)
	}
}

func TestSwapBehaviorExcludedFromCorrect(t *testing.T) {
	sc := quickScenario()
	sc.FaultPlan = &faultplan.Plan{Events: []faultplan.Event{
		{At: 20 * time.Second, Kind: faultplan.SwapBehavior, Node: 4, Behavior: "mute"},
		{At: 22 * time.Second, Kind: faultplan.SwapBehavior, Node: 9, Behavior: "tamper"},
	}}
	res, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumCorrect != sc.N-2 {
		t.Fatalf("NumCorrect = %d, want %d", res.NumCorrect, sc.N-2)
	}
	if len(res.Violations) != 0 {
		t.Fatalf("swap run violated invariants: %v", res.Violations)
	}
}

// TestOverlappingDegradeRadioWindowsCompose is the regression test for the
// last-writer-wins bug: two overlapping degrade-radio events used to share
// one scalar, so the second event clobbered the first and the first expiry
// cleared both. Through the fault-plan path, overlapping windows must
// compose (survival probabilities multiply) and each expiry must remove
// exactly its own contribution.
func TestOverlappingDegradeRadioWindowsCompose(t *testing.T) {
	sc := DefaultScenario()
	sc.N = 4
	eng := sim.New(1)
	medium := radio.New(eng, buildMobility(sc), sc.N, sc.Radio)
	defer medium.Close()
	events := []faultplan.Event{
		{At: 10 * time.Second, Kind: faultplan.DegradeRadio, LossFactor: 0.5, Duration: 20 * time.Second}, // 10s–30s
		{At: 15 * time.Second, Kind: faultplan.DegradeRadio, LossFactor: 0.5, Duration: 5 * time.Second},  // 15s–20s
	}
	if err := scheduleFaultPlan(sc, eng, medium, nil, nil, nil, nil, nil, events); err != nil {
		t.Fatal(err)
	}
	probe := func(at time.Duration, lo, hi float64) {
		eng.At(at, func() {
			if got := medium.ExtraLoss(); got < lo || got > hi {
				t.Errorf("at %s: ExtraLoss = %v, want in [%v, %v]", at, got, lo, hi)
			}
		})
	}
	probe(12*time.Second, 0.5, 0.5)   // first window alone
	probe(17*time.Second, 0.74, 0.76) // overlap: 1-(1-0.5)² = 0.75
	probe(25*time.Second, 0.5, 0.5)   // second expired, first must survive
	probe(35*time.Second, 0, 0)       // both expired
	eng.Run(40 * time.Second)
}

func TestEquivocationFiresAgreement(t *testing.T) {
	sc := quickScenario()
	// Two equivocators: a lone one only splits the network for the moments
	// before its variants cross paths, so whether any correct pair durably
	// accepts different payloads is seed luck. A pair reinforcing each other's
	// variants produces agreement violations across seeds.
	sc.Adversaries = []Adversaries{{Kind: AdvEquivocate, Count: 2}}
	res, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	var agreement int
	for _, v := range res.Violations {
		if v.Invariant == "agreement" {
			agreement++
		}
	}
	if agreement == 0 {
		t.Fatal("equivocating source produced no agreement violations")
	}
	if !strings.Contains(res.Repro, "-seed") || !strings.Contains(res.Repro, "-equivocate 2") {
		t.Fatalf("repro line incomplete: %q", res.Repro)
	}
}

func TestInvariantsCleanOnAdversarialRuns(t *testing.T) {
	// Non-equivocating adversaries must not trip the checker: the protocol
	// tolerates them, and the invariants are scoped to what it promises.
	sc := quickScenario()
	sc.Adversaries = []Adversaries{
		{Kind: AdvMute, Count: 5},
		{Kind: AdvTamper, Count: 2},
	}
	res, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) != 0 {
		t.Fatalf("false positives: %v", res.Violations)
	}
}

func TestReproCommandRendersScenario(t *testing.T) {
	sc := DefaultScenario()
	sc.Seed = 42
	sc.N = 80
	sc.Adversaries = []Adversaries{{Kind: AdvMute, Count: 3}}
	sc.FaultPlan = &faultplan.Plan{Events: []faultplan.Event{
		{At: 10 * time.Second, Kind: faultplan.Crash, Node: 1},
	}}
	cmd := ReproCommand(sc)
	for _, want := range []string{"bbsim -seed 42", "-n 80", "-mute 3", `-faults '{"events"`} {
		if !strings.Contains(cmd, want) {
			t.Errorf("repro %q missing %q", cmd, want)
		}
	}
	// Defaults stay off the line.
	if strings.Contains(cmd, "-proto") || strings.Contains(cmd, "-no-fd") {
		t.Errorf("repro includes default flags: %q", cmd)
	}
}

func TestFaultPlanRejectsOutOfRangeNodes(t *testing.T) {
	cases := []struct {
		name string
		plan *faultplan.Plan
	}{
		{"crash", &faultplan.Plan{Events: []faultplan.Event{
			{At: 10 * time.Second, Kind: faultplan.Crash, Node: 50}}}},
		{"crash-amnesia", &faultplan.Plan{Events: []faultplan.Event{
			{At: 10 * time.Second, Kind: faultplan.CrashAmnesia, Node: 99}}}},
		{"recover", &faultplan.Plan{Events: []faultplan.Event{
			{At: 10 * time.Second, Kind: faultplan.Recover, Node: 50}}}},
		{"partition-member", &faultplan.Plan{Events: []faultplan.Event{
			{At: 10 * time.Second, Kind: faultplan.Partition,
				Groups: [][]wire.NodeID{{0, 1}, {2, 77}}}}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sc := quickScenario()
			sc.FaultPlan = tc.plan
			_, err := Run(sc)
			if err == nil {
				t.Fatal("out-of-range fault plan node accepted")
			}
			if !strings.Contains(err.Error(), "out of range") {
				t.Fatalf("error %q does not name the range problem", err)
			}
		})
	}
}

func TestAmnesiaRecoveryEndToEnd(t *testing.T) {
	// Churn wipes volatile state mid-workload; with the durable store and
	// catch-up sync on, rejoiners must actually rejoin, pull missed traffic
	// over SYNC, and do it all without tripping an invariant — including the
	// wipe-aware at-most-once check.
	sc := quickScenario()
	sc.Core.Persist = true
	sc.Core.CatchUpSync = true
	sc.FaultPlan = &faultplan.Plan{Churn: &faultplan.Churn{
		Rate:     0.2,
		Start:    15 * time.Second,
		End:      40 * time.Second,
		Downtime: 14 * time.Second,
		Wipe:     true,
		Exclude:  []wire.NodeID{0, 1, 2, 3, 4},
	}}
	res, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rejoins == 0 {
		t.Fatal("churn with wipe produced no rejoins")
	}
	if res.SyncReqs == 0 || res.SyncEntriesApplied == 0 {
		t.Fatalf("catch-up sync never ran: reqs=%d applied=%d", res.SyncReqs, res.SyncEntriesApplied)
	}
	if res.SyncBytes == 0 {
		t.Fatal("sync applied entries but metered zero bytes")
	}
	if len(res.Violations) != 0 {
		t.Fatalf("invariant violations under amnesiac churn: %v", res.Violations)
	}
}

func TestReproCommandRendersPersistFlags(t *testing.T) {
	sc := DefaultScenario()
	sc.Core.Persist = true
	sc.Core.CatchUpSync = true
	sc.PersistCorrupt = &persist.Corruption{TearTail: true, FlipBits: 5}
	cmd := ReproCommand(sc)
	for _, want := range []string{" -persist", " -sync", " -persist-tear", " -persist-flip 5"} {
		if !strings.Contains(cmd, want) {
			t.Errorf("repro %q missing %q", cmd, want)
		}
	}
}
