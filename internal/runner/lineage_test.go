package runner

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"bbcast/internal/trace"
)

// lineageReport decodes a raw trace and renders its lineage report, failing
// on any decode damage (golden traces must be complete).
func lineageReport(t *testing.T, name string, raw []byte) string {
	t.Helper()
	events, stats, err := trace.Decode(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("%s: decode: %v", name, err)
	}
	if stats.Undecodable != 0 {
		t.Fatalf("%s: %d undecodable lines in a fresh trace", name, stats.Undecodable)
	}
	return trace.BuildLineage(events, stats).Report()
}

// failSink accepts a fixed number of writes, then fails every subsequent one.
type failSink struct{ n, limit int }

func (f *failSink) Write(p []byte) (int, error) {
	if f.n >= f.limit {
		return 0, errors.New("sink full")
	}
	f.n++
	return len(p), nil
}

// TestTraceErrSurfacesLossySink pins the lossy-trace contract at the runner
// level: a failing sink never aborts the run, the loss is reported exactly
// once via Result.TraceErr (which is what drives bbsim's single warning),
// and under replicates only replicate 0 — the only one holding the sink —
// reports it.
func TestTraceErrSurfacesLossySink(t *testing.T) {
	sc := goldenConfigs()[0]
	sc.Trace = &failSink{limit: 10}
	res, err := Run(sc)
	if err != nil {
		t.Fatalf("lossy sink aborted the run: %v", err)
	}
	if res.TraceErr == nil {
		t.Fatal("sink failed after 10 writes but Result.TraceErr is nil")
	}

	sc.Trace = &failSink{limit: 10}
	rs, err := (Pool{Workers: 2}).RunReplicates(sc, 2)
	if err != nil {
		t.Fatalf("replicates: %v", err)
	}
	if rs[0].TraceErr == nil {
		t.Error("replicate 0 held the lossy sink but reports no TraceErr")
	}
	if rs[1].TraceErr != nil {
		t.Errorf("replicate 1 has no sink but reports TraceErr: %v", rs[1].TraceErr)
	}
}

// TestLineageDeterminism extends the golden-trace contract to the lineage
// analyzer: over every golden scenario the serial and pool-replicate-0 runs
// must produce byte-identical lineage reports, and the det-byzcast-grid
// report is pinned against a committed golden. Regenerate after an
// intentional change with:
//
//	go test ./internal/runner/ -run TestLineageDeterminism -update
func TestLineageDeterminism(t *testing.T) {
	goldenPath := filepath.Join("testdata", "lineage_golden.txt")
	for _, sc := range goldenConfigs() {
		var serialBuf bytes.Buffer
		serialSC := sc
		serialSC.Trace = &serialBuf
		if _, err := Run(serialSC); err != nil {
			t.Fatalf("%s: %v", sc.Name, err)
		}
		serialReport := lineageReport(t, sc.Name+"/serial", serialBuf.Bytes())

		var poolBuf bytes.Buffer
		poolSC := sc
		poolSC.Trace = &poolBuf
		if _, err := (Pool{Workers: 4}).RunReplicates(poolSC, 2); err != nil {
			t.Fatalf("%s: pool: %v", sc.Name, err)
		}
		poolReport := lineageReport(t, sc.Name+"/pool", poolBuf.Bytes())

		if serialReport != poolReport {
			t.Errorf("%s: lineage reports differ between serial and pool runs", sc.Name)
		}
		if serialReport == "" {
			t.Errorf("%s: empty lineage report", sc.Name)
		}

		if sc.Name != "det-byzcast-grid" {
			continue
		}
		if *updateGoldens {
			if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(goldenPath, []byte(serialReport), 0o644); err != nil {
				t.Fatal(err)
			}
			t.Logf("wrote %s", goldenPath)
			continue
		}
		want, err := os.ReadFile(goldenPath)
		if err != nil {
			t.Fatalf("read lineage golden (run with -update to create): %v", err)
		}
		if string(want) != serialReport {
			t.Errorf("%s: lineage report diverged from %s — if intentional, regenerate with -update",
				sc.Name, goldenPath)
		}
	}
}
