package runner

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"strings"
	"time"

	"bbcast/internal/byzantine"
	"bbcast/internal/core"
	"bbcast/internal/faultplan"
	"bbcast/internal/fd"
	"bbcast/internal/invariant"
	"bbcast/internal/obsv"
	"bbcast/internal/persist"
	"bbcast/internal/radio"
	"bbcast/internal/sig"
	"bbcast/internal/sim"
	"bbcast/internal/wire"
)

// buildChecker constructs the invariant checker for a run, gating off checks
// that do not apply to the configured protocol: overlay recovery and
// detector soundness are meaningless for the baselines, and validity is only
// promised when the recovery machinery is on (flooding legitimately leaves a
// tail of undelivered messages). Returns nil when nothing is enabled.
func buildChecker(sc Scenario, eng *sim.Engine, medium *radio.Medium, protos []broadcaster, correct []bool) *invariant.Checker {
	cfg := sc.Invariants
	if sc.Protocol != ProtoByzCast {
		cfg.Validity = false
		cfg.Recovery = false
		cfg.Detectors = false
	} else {
		if !sc.Core.EnableRecovery {
			cfg.Validity = false
		}
		if !sc.Core.EnableFDs {
			cfg.Detectors = false
		}
		// The at-most-once grace must cover the store's tombstone lifetime: a
		// replay older than the quiescence GC is a legitimate re-accept, not a
		// dedup bug.
		if cfg.RedeliveryGrace > 0 && sc.Core.StoreQuiescence > cfg.RedeliveryGrace {
			cfg.RedeliveryGrace = sc.Core.StoreQuiescence
		}
	}
	if !cfg.Enabled() {
		return nil
	}
	coreAt := func(id wire.NodeID) *core.Protocol {
		cp, _ := protos[id].(*core.Protocol)
		return cp
	}
	// State bounds mirror the core config caps; only capped tables get a
	// bound (zero/negative knobs mean unbounded and are skipped).
	bounds := make(map[string]int, 5)
	timerRanges := make(map[string][2]time.Duration, 2)
	if sc.Protocol == ProtoByzCast {
		for queue, cap := range map[obsv.Queue]int{
			obsv.QueueStore:     sc.Core.MaxStore,
			obsv.QueueMissing:   sc.Core.MaxMissing,
			obsv.QueueNeighbors: sc.Core.MaxNeighbors,
			obsv.QueueReqSeen:   sc.Core.MaxReqSeen,
			obsv.QueueLinkQual:  sc.Core.MaxNeighbors,
		} {
			if cap > 0 {
				bounds[string(queue)] = cap
			}
		}
		// Timer ranges come from the same Config helpers the protocol's AIMD
		// step clamps against, so checker and protocol cannot drift apart.
		gMin, gMax := sc.Core.GossipBounds()
		mMin, mMax := sc.Core.MuteTimeoutBounds()
		timerRanges[string(obsv.TimerGossip)] = [2]time.Duration{gMin, gMax}
		timerRanges[string(obsv.TimerMute)] = [2]time.Duration{mMin, mMax}
	}
	return invariant.New(cfg, eng.Now, invariant.Probes{
		N:           sc.N,
		Bounds:      bounds,
		TimerRanges: timerRanges,
		Correct: func(id wire.NodeID) bool {
			return int(id) < len(correct) && correct[id]
		},
		Up: func(id wire.NodeID) bool { return !medium.IsDown(id) },
		Neighbors: func(id wire.NodeID) []wire.NodeID {
			return medium.Neighbors(id)
		},
		ReliableNeighbors: func(id wire.NodeID) []wire.NodeID {
			return medium.SolidNeighbors(id)
		},
		OverlayActive: func(id wire.NodeID) bool {
			cp := coreAt(id)
			return cp != nil && cp.InOverlay()
		},
		Suspects: func(observer, subject wire.NodeID) bool {
			cp := coreAt(observer)
			return cp != nil && cp.Trust().Level(subject) == fd.Untrusted
		},
	})
}

// scheduleFaultPlan installs the expanded plan on the engine. Each event
// fires as a named epoch ("fault:<name>"), so every observer registered via
// OnEpoch — the result event log, the invariant checker, the tracer — sees
// the same timeline. Behaviour construction happens here, at schedule time,
// so a bad swap name fails the run before it starts.
func scheduleFaultPlan(sc Scenario, eng *sim.Engine, medium *radio.Medium, protos []broadcaster, devices []*persist.MemDevice, switchables []*byzantine.Switchable, scheme sig.Scheme, chk *invariant.Checker, events []faultplan.Event) error {
	recoveryChecked := make(map[time.Duration]bool)
	// amnesiac tracks nodes downed by a crash-amnesia event; their next
	// recovery wipes volatile state and runs the rejoin path.
	amnesiac := make(map[wire.NodeID]bool)
	// Corruption draws come from a dedicated substream, created lazily so
	// plans without PersistCorrupt leave the RNG schedule untouched.
	var corruptRng *rand.Rand
	rejoin := func(id wire.NodeID) {
		if chk != nil {
			chk.OnWipe(id, eng.Now())
		}
		cp, ok := protos[id].(*core.Protocol)
		if !ok {
			return // baselines keep no volatile protocol state worth wiping
		}
		if devices != nil && devices[id] != nil {
			if sc.PersistCorrupt != nil {
				if corruptRng == nil {
					corruptRng = eng.SubRand(0xc0de)
				}
				devices[id].Corrupt(corruptRng, *sc.PersistCorrupt)
			}
			// Re-open the device as the restarted process would: replay the
			// log, truncating at the first damaged record.
			st, err := persist.Open(devices[id])
			if err != nil {
				st = nil // unreadable device: the node is truly amnesiac
			}
			cp.SetStore(st)
		}
		cp.Rejoin()
	}
	for _, e := range events {
		e := e
		// Expanded events are validated against the scenario size here, at
		// schedule time: an out-of-range id would otherwise silently no-op in
		// the radio mask, making a typoed plan look like a clean pass.
		switch e.Kind {
		case faultplan.Crash, faultplan.CrashAmnesia, faultplan.Recover, faultplan.SwapBehavior:
			if int(e.Node) >= sc.N {
				return fmt.Errorf("runner: fault plan: %s at %s: node %d out of range [0,%d)", e.Kind, e.At, e.Node, sc.N)
			}
		case faultplan.Partition:
			for gi, g := range e.Groups {
				for _, id := range g {
					if int(id) >= sc.N {
						return fmt.Errorf("runner: fault plan: partition at %s: groups[%d] node %d out of range [0,%d)", e.At, gi, id, sc.N)
					}
				}
			}
		}
		var apply func()
		topology := false
		switch e.Kind {
		case faultplan.Crash:
			topology = true
			apply = func() {
				medium.SetDown(e.Node, true)
				if chk != nil {
					chk.OnDown(e.Node, eng.Now())
				}
			}
		case faultplan.CrashAmnesia:
			topology = true
			apply = func() {
				medium.SetDown(e.Node, true)
				amnesiac[e.Node] = true
				if chk != nil {
					chk.OnDown(e.Node, eng.Now())
				}
			}
		case faultplan.Recover:
			topology = true
			apply = func() {
				medium.SetDown(e.Node, false)
				if chk != nil {
					chk.OnUp(e.Node, eng.Now())
				}
				if amnesiac[e.Node] {
					delete(amnesiac, e.Node)
					rejoin(e.Node)
				}
			}
		case faultplan.Partition:
			topology = true
			groups := groupVector(e.Groups, sc.N)
			apply = func() {
				medium.SetPartition(e.Groups)
				if chk != nil {
					chk.OnPartition(groups, eng.Now())
				}
			}
		case faultplan.Heal:
			topology = true
			apply = func() {
				medium.Heal()
				if chk != nil {
					chk.OnPartition(nil, eng.Now())
				}
			}
		case faultplan.DegradeRadio:
			end := e.At + e.Duration
			apply = func() {
				// Each window pushes its own degradation and pops exactly it
				// at expiry: overlapping degrade-radio events compose (their
				// survival probabilities multiply) instead of the last writer
				// clobbering the shared scalar and the first expiry clearing
				// every later window.
				pop := medium.PushDegradation(e.LossFactor)
				eng.AtEpoch(end, "fault:radio-restored", pop)
			}
		case faultplan.BurstLoss:
			end := e.At + e.Duration
			apply = func() {
				medium.SetBurst(radio.BurstConfig{
					Loss:     e.LossFactor,
					MeanBad:  e.MeanBad,
					MeanGood: e.MeanGood,
				})
				eng.AtEpoch(end, "fault:burst-restored", func() {
					medium.SetBurst(radio.BurstConfig{})
				})
			}
		case faultplan.Jitter:
			end := e.At + e.Duration
			apply = func() {
				medium.SetJitter(e.MaxJitter)
				eng.AtEpoch(end, "fault:jitter-restored", func() {
					medium.SetJitter(0)
				})
			}
		case faultplan.Duplicate:
			end := e.At + e.Duration
			apply = func() {
				medium.SetDuplication(e.DupProb)
				eng.AtEpoch(end, "fault:duplicate-restored", func() {
					medium.SetDuplication(0)
				})
			}
		case faultplan.AsymDegrade:
			end := e.At + e.Duration
			apply = func() {
				medium.SetAsymLoss(e.LossFactor)
				eng.AtEpoch(end, "fault:asym-restored", func() {
					medium.SetAsymLoss(0)
				})
			}
		case faultplan.SwapBehavior:
			b, err := byzantine.Make(e.Behavior, e.Node,
				eng.SubRand(uint64(e.Node)+3<<32), signerFor(scheme, e.Node))
			if err != nil {
				return fmt.Errorf("runner: fault plan: %w", err)
			}
			sw := switchables[e.Node]
			apply = func() { sw.Set(b) }
		default:
			return fmt.Errorf("runner: fault plan: unknown kind %q", e.Kind)
		}
		eng.AtEpoch(e.At, "fault:"+e.Name(), apply)
		// After every topology change, the overlay must re-cover the network
		// before the RecoveryWindow deadline. Roles legitimately flap while
		// the detectors digest the change, so probe every couple of seconds
		// and record a violation only if no probe comes back clean in time.
		if topology && chk != nil && sc.Invariants.Recovery && !recoveryChecked[e.At] {
			recoveryChecked[e.At] = true
			deadline := e.At + sc.Invariants.RecoveryWindow
			var probe func()
			probe = func() {
				vs := chk.ProbeRecovery()
				if len(vs) == 0 {
					return
				}
				if eng.Now() >= deadline {
					chk.Report(vs...)
					return
				}
				eng.After(2*time.Second, probe)
			}
			eng.At(e.At+2*time.Second, probe)
		}
	}
	return nil
}

// groupVector flattens partition groups into a per-node group index, with
// the same semantics as radio.Medium.SetPartition: nodes listed in group i
// get index i+1, unlisted nodes share the implicit group 0.
func groupVector(groups [][]wire.NodeID, n int) []int {
	out := make([]int, n)
	for gi, g := range groups {
		for _, id := range g {
			if int(id) < n {
				out[id] = gi + 1
			}
		}
	}
	return out
}

// signerFor restricts a scheme to signing as one node — behaviours may only
// ever sign with their own key, per the system model.
func signerFor(scheme sig.Scheme, id wire.NodeID) func([]byte) []byte {
	return func(data []byte) []byte {
		return scheme.Sign(uint32(id), data)
	}
}

// ReproCommand renders a one-line bbsim invocation that reproduces the
// scenario, including the fault plan inline. Printed alongside invariant
// violations so a failing chaos run can be replayed directly.
func ReproCommand(sc Scenario) string {
	var b strings.Builder
	fmt.Fprintf(&b, "bbsim -seed %d -n %d", sc.Seed, sc.N)
	if sc.Protocol != ProtoByzCast {
		fmt.Fprintf(&b, " -proto %s", sc.Protocol)
	}
	def := DefaultScenario()
	if sc.Area.W != def.Area.W {
		fmt.Fprintf(&b, " -area %g", sc.Area.W)
	}
	if sc.Radio.Range > 0 && sc.Radio.Range != def.Radio.Range {
		fmt.Fprintf(&b, " -range %g", sc.Radio.Range)
	}
	w := sc.Workload
	if w.Rate != def.Workload.Rate {
		fmt.Fprintf(&b, " -rate %g", w.Rate)
	}
	if w.Senders != def.Workload.Senders {
		fmt.Fprintf(&b, " -senders %d", w.Senders)
	}
	if w.PayloadSize != def.Workload.PayloadSize {
		fmt.Fprintf(&b, " -size %d", w.PayloadSize)
	}
	fmt.Fprintf(&b, " -duration %s", sc.Duration)
	if w.Start != def.Workload.Start {
		fmt.Fprintf(&b, " -warmup %s", w.Start)
	}
	if drain := sc.Duration - w.End; drain != 10*time.Second {
		fmt.Fprintf(&b, " -drain %s", drain)
	}
	if sc.LoadGen != nil {
		if data, err := json.Marshal(sc.LoadGen); err == nil {
			fmt.Fprintf(&b, " -load '%s'", data)
		}
	}
	for _, a := range sc.Adversaries {
		switch a.Kind {
		case AdvMute, AdvMuteSilent:
			fmt.Fprintf(&b, " -mute %d", a.Count)
		case AdvVerbose:
			fmt.Fprintf(&b, " -verbose %d", a.Count)
		case AdvTamper:
			fmt.Fprintf(&b, " -tamper %d", a.Count)
		case AdvSelective:
			fmt.Fprintf(&b, " -selective %d", a.Count)
		case AdvEquivocate:
			fmt.Fprintf(&b, " -equivocate %d", a.Count)
		case AdvFlooder:
			fmt.Fprintf(&b, " -flooder %d", a.Count)
		case AdvReplayer:
			fmt.Fprintf(&b, " -replayer %d", a.Count)
		case AdvForgeSpammer:
			fmt.Fprintf(&b, " -forge %d", a.Count)
		}
	}
	if sc.Placement == PlaceDominators {
		b.WriteString(" -placement dominators")
	}
	if name := mobilityFlag(sc.Mobility); name != "grid" {
		fmt.Fprintf(&b, " -mobility %s -speed %g", name, sc.Speed)
	}
	if !sc.Core.EnableFDs {
		b.WriteString(" -no-fd")
	}
	if !sc.Core.AdaptiveTiming {
		b.WriteString(" -no-adapt")
	}
	if sc.Core.Persist {
		b.WriteString(" -persist")
	}
	if sc.Core.CatchUpSync {
		b.WriteString(" -sync")
	}
	if c := sc.PersistCorrupt; c != nil {
		if c.TearTail {
			b.WriteString(" -persist-tear")
		}
		if c.FlipBits > 0 {
			fmt.Fprintf(&b, " -persist-flip %d", c.FlipBits)
		}
	}
	if sc.FaultPlan != nil {
		fmt.Fprintf(&b, " -faults '%s'", sc.FaultPlan.String())
	}
	return b.String()
}

func mobilityFlag(m MobilityKind) string {
	switch m {
	case MobUniform:
		return "uniform"
	case MobWaypoint:
		return "waypoint"
	case MobWalk:
		return "walk"
	case MobGaussMarkov:
		return "gauss-markov"
	case MobFerry:
		return "ferry"
	default:
		return "grid"
	}
}
