//bbvet:wallclock benchmark harness: measures real elapsed wall time and allocator counters around deterministic runs

package runner

import (
	"runtime"
	"time"

	"bbcast/internal/invariant"
	"bbcast/internal/loadgen"
)

// BenchArm is one measured configuration of the benchmark harness: a
// multi-replicate sweep at a fixed worker count.
type BenchArm struct {
	Workers      int     `json:"workers"`
	Replicates   int     `json:"replicates"`
	WallClockMS  float64 `json:"wall_clock_ms"`
	Events       uint64  `json:"events"`
	EventsPerSec float64 `json:"events_per_sec"`
	NsPerEvent   float64 `json:"ns_per_event"`
	// AllocsPerEvent and BytesPerEvent are measured from the global
	// allocator counters across the arm, so they include per-run setup cost
	// amortized over the run's events.
	AllocsPerEvent float64 `json:"allocs_per_event"`
	BytesPerEvent  float64 `json:"bytes_per_event"`
}

// BenchReport is the machine-readable output of the benchmark harness
// (`bbexp -bench`): simulator throughput figures plus the serial-vs-parallel
// sweep comparison. BENCH_<pr>.json files committed to the repository pair
// two of these ("before"/"after") to track the perf trajectory.
type BenchReport struct {
	Schema     string `json:"schema"`
	GoVersion  string `json:"go_version"`
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`

	Scenario   string  `json:"scenario"`
	N          int     `json:"n"`
	DurationS  float64 `json:"sim_duration_s"`
	Replicates int     `json:"replicates"`

	// Serial is the -parallel 1 arm; Parallel uses ParallelWorkers workers.
	Serial   BenchArm `json:"serial"`
	Parallel BenchArm `json:"parallel"`
	// Speedup is serial wall-clock over parallel wall-clock.
	Speedup float64 `json:"speedup"`

	// SimMSPerSimS is wall-clock milliseconds per simulated second of the
	// default scenario (the BenchmarkSimulatedSecond figure of merit), when
	// measured (v2).
	SimMSPerSimS float64 `json:"sim_ms_per_sim_s,omitempty"`
	// Knee is the saturating-load sweep (v2), when measured.
	Knee *KneeReport `json:"knee,omitempty"`
}

// BenchSchema identifies the report format. v2 adds sim_ms_per_sim_s and the
// offered-load knee section to v1.
const BenchSchema = "bbcast-bench/v2"

// benchArm runs count replicates of sc at the given worker count and
// measures wall-clock, event throughput and allocator traffic.
func benchArm(sc Scenario, count, workers int) (BenchArm, error) {
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	results, err := Pool{Workers: workers}.RunReplicates(sc, count)
	wall := time.Since(start)
	runtime.ReadMemStats(&after)
	if err != nil {
		return BenchArm{}, err
	}
	arm := BenchArm{
		Workers:     workers,
		Replicates:  count,
		WallClockMS: float64(wall.Nanoseconds()) / 1e6,
	}
	for _, r := range results {
		arm.Events += r.Events
	}
	if arm.Events > 0 {
		arm.EventsPerSec = float64(arm.Events) / wall.Seconds()
		arm.NsPerEvent = float64(wall.Nanoseconds()) / float64(arm.Events)
		arm.AllocsPerEvent = float64(after.Mallocs-before.Mallocs) / float64(arm.Events)
		arm.BytesPerEvent = float64(after.TotalAlloc-before.TotalAlloc) / float64(arm.Events)
	}
	return arm, nil
}

// Bench measures simulator throughput on the given scenario: a warm-up run,
// then a serial sweep (-parallel 1) and a parallel sweep at `workers`
// workers over the same derived replicates. Per-replicate results are
// bit-identical across the two arms (see ReplicateSeed), so the arms do the
// same work and the wall-clock ratio is a pure scheduling speedup.
func Bench(sc Scenario, replicates, workers int) (BenchReport, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	rep := BenchReport{
		Schema:     BenchSchema,
		GoVersion:  runtime.Version(),
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Scenario:   sc.Name,
		N:          sc.N,
		DurationS:  sc.Duration.Seconds(),
		Replicates: replicates,
	}
	if _, err := Run(sc); err != nil { // warm-up
		return rep, err
	}
	var err error
	if rep.Serial, err = benchArm(sc, replicates, 1); err != nil {
		return rep, err
	}
	if rep.Parallel, err = benchArm(sc, replicates, workers); err != nil {
		return rep, err
	}
	if rep.Parallel.WallClockMS > 0 {
		rep.Speedup = rep.Serial.WallClockMS / rep.Parallel.WallClockMS
	}
	return rep, nil
}

// SimulatedSecondMS measures wall-clock milliseconds per simulated second of
// the default scenario — the same figure of merit as BenchmarkSimulatedSecond,
// reproducible outside `go test` so the perf gate can compare it against the
// committed trajectory.
func SimulatedSecondMS(seed int64, simSeconds int) (float64, error) {
	sc := DefaultScenario()
	sc.Name = "simulated-second"
	sc.Seed = seed
	sc.Duration = time.Duration(simSeconds) * time.Second
	sc.Workload.End = sc.Duration
	if _, err := Run(sc); err != nil { // warm-up
		return 0, err
	}
	start := time.Now()
	if _, err := Run(sc); err != nil {
		return 0, err
	}
	wall := time.Since(start)
	return float64(wall.Nanoseconds()) / 1e6 / float64(simSeconds), nil
}

// KneePoint is one measured offered-load level of the bench knee sweep.
type KneePoint struct {
	OfferedRate   float64 `json:"offered_msgs_per_s"`
	Injected      int     `json:"injected"`
	DeliveryRatio float64 `json:"delivery_ratio"`
	GoodputMsgS   float64 `json:"goodput_msgs_per_s"`
	LatP50MS      float64 `json:"lat_p50_ms"`
	LatP99MS      float64 `json:"lat_p99_ms"`
	BytesPerMsg   float64 `json:"bytes_per_msg"`
}

// KneeReport is the saturating-load section of a v2 bench report: the
// offered-load sweep, the located knee, and the sweep's wall-clock (the
// E16-shaped workload the perf gate tracks).
type KneeReport struct {
	N         int     `json:"n"`
	Senders   int     `json:"senders"`
	InjectS   float64 `json:"inject_window_s"`
	Threshold float64 `json:"delivery_threshold"`

	Points []KneePoint `json:"points"`
	// KneeRate is the highest swept offered load whose delivery ratio met
	// the threshold (0 when none did); KneeGoodput is its delivered
	// throughput.
	KneeRate    float64 `json:"knee_offered_msgs_per_s"`
	KneeGoodput float64 `json:"knee_goodput_msgs_per_s"`
	WallClockMS float64 `json:"wall_clock_ms"`
}

// KneeOptions configures the bench knee sweep.
type KneeOptions struct {
	N         int
	Senders   int
	Rates     []float64 // offered loads, msgs/second network-wide
	Seed      int64
	Inject    time.Duration // injection window per rate
	Drain     time.Duration
	Threshold float64 // delivery ratio that counts as sustained
	Workers   int     // concurrent simulations; <= 0 means GOMAXPROCS
}

// DefaultKneeOptions is the gate-standard sweep shape: small enough for CI,
// wide enough that the top rate sits past the knee. Keeping the shape fixed
// makes the sweep's wall-clock comparable across BENCH_*.json generations.
func DefaultKneeOptions(seed int64) KneeOptions {
	return KneeOptions{
		N:         40,
		Senders:   20,
		Rates:     []float64{2, 8, 32},
		Seed:      seed,
		Inject:    15 * time.Second,
		Drain:     10 * time.Second,
		Threshold: 0.95,
	}
}

// kneeScenario builds the load-generator scenario for one swept rate.
// Invariants are off: saturation violates liveness-style checks by design.
func (o KneeOptions) kneeScenario(rate float64) Scenario {
	sc := DefaultScenario()
	sc.Name = "bench-knee"
	sc.Seed = o.Seed
	sc.N = o.N
	sc.Invariants = invariant.Config{}
	sc.Workload = Workload{}
	start := 15 * time.Second
	sc.LoadGen = &loadgen.Config{
		Senders:      o.Senders,
		PayloadSizes: []int{256},
		Arrival:      loadgen.Poisson,
		Start:        start,
		Steps:        []loadgen.Step{{Rate: rate, Duration: o.Inject}},
	}
	sc.Duration = start + o.Inject + o.Drain
	return sc
}

// KneeSweep measures delivery, latency and bytes/msg across the offered-load
// sweep and locates the knee. Runs fan out across the worker pool; each is
// bit-identical at any worker count, so only the wall-clock depends on
// parallelism.
func KneeSweep(o KneeOptions) (KneeReport, error) {
	rep := KneeReport{
		N: o.N, Senders: o.Senders,
		InjectS: o.Inject.Seconds(), Threshold: o.Threshold,
	}
	scs := make([]Scenario, len(o.Rates))
	for i, rate := range o.Rates {
		scs[i] = o.kneeScenario(rate)
	}
	start := time.Now()
	results, err := Pool{Workers: o.Workers}.RunAll(scs)
	rep.WallClockMS = float64(time.Since(start).Nanoseconds()) / 1e6
	if err != nil {
		return rep, err
	}
	for i, res := range results {
		p := KneePoint{
			OfferedRate:   o.Rates[i],
			Injected:      res.Injected,
			DeliveryRatio: res.DeliveryRatio,
			GoodputMsgS:   float64(res.Injected) * res.DeliveryRatio / o.Inject.Seconds(),
			LatP50MS:      float64(res.LatP50.Nanoseconds()) / 1e6,
			LatP99MS:      float64(res.LatP99.Nanoseconds()) / 1e6,
		}
		if res.Injected > 0 {
			p.BytesPerMsg = float64(res.BytesOnAir) / float64(res.Injected)
		}
		rep.Points = append(rep.Points, p)
		if p.DeliveryRatio >= o.Threshold && p.OfferedRate > rep.KneeRate {
			rep.KneeRate = p.OfferedRate
			rep.KneeGoodput = p.GoodputMsgS
		}
	}
	return rep, nil
}

// FullBench composes the complete v2 report: the serial/parallel replicate
// arms, the simulated-second figure, and (when knee is non-nil) the
// offered-load sweep.
func FullBench(sc Scenario, replicates, workers int, knee *KneeOptions) (BenchReport, error) {
	rep, err := Bench(sc, replicates, workers)
	if err != nil {
		return rep, err
	}
	if rep.SimMSPerSimS, err = SimulatedSecondMS(sc.Seed, 10); err != nil {
		return rep, err
	}
	if knee != nil {
		k, err := KneeSweep(*knee)
		if err != nil {
			return rep, err
		}
		rep.Knee = &k
	}
	return rep, nil
}
