//bbvet:wallclock benchmark harness: measures real elapsed wall time and allocator counters around deterministic runs

package runner

import (
	"runtime"
	"time"
)

// BenchArm is one measured configuration of the benchmark harness: a
// multi-replicate sweep at a fixed worker count.
type BenchArm struct {
	Workers      int     `json:"workers"`
	Replicates   int     `json:"replicates"`
	WallClockMS  float64 `json:"wall_clock_ms"`
	Events       uint64  `json:"events"`
	EventsPerSec float64 `json:"events_per_sec"`
	NsPerEvent   float64 `json:"ns_per_event"`
	// AllocsPerEvent and BytesPerEvent are measured from the global
	// allocator counters across the arm, so they include per-run setup cost
	// amortized over the run's events.
	AllocsPerEvent float64 `json:"allocs_per_event"`
	BytesPerEvent  float64 `json:"bytes_per_event"`
}

// BenchReport is the machine-readable output of the benchmark harness
// (`bbexp -bench`): simulator throughput figures plus the serial-vs-parallel
// sweep comparison. BENCH_<pr>.json files committed to the repository pair
// two of these ("before"/"after") to track the perf trajectory.
type BenchReport struct {
	Schema     string `json:"schema"`
	GoVersion  string `json:"go_version"`
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`

	Scenario   string  `json:"scenario"`
	N          int     `json:"n"`
	DurationS  float64 `json:"sim_duration_s"`
	Replicates int     `json:"replicates"`

	// Serial is the -parallel 1 arm; Parallel uses ParallelWorkers workers.
	Serial   BenchArm `json:"serial"`
	Parallel BenchArm `json:"parallel"`
	// Speedup is serial wall-clock over parallel wall-clock.
	Speedup float64 `json:"speedup"`
}

// BenchSchema identifies the report format.
const BenchSchema = "bbcast-bench/v1"

// benchArm runs count replicates of sc at the given worker count and
// measures wall-clock, event throughput and allocator traffic.
func benchArm(sc Scenario, count, workers int) (BenchArm, error) {
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	results, err := Pool{Workers: workers}.RunReplicates(sc, count)
	wall := time.Since(start)
	runtime.ReadMemStats(&after)
	if err != nil {
		return BenchArm{}, err
	}
	arm := BenchArm{
		Workers:     workers,
		Replicates:  count,
		WallClockMS: float64(wall.Nanoseconds()) / 1e6,
	}
	for _, r := range results {
		arm.Events += r.Events
	}
	if arm.Events > 0 {
		arm.EventsPerSec = float64(arm.Events) / wall.Seconds()
		arm.NsPerEvent = float64(wall.Nanoseconds()) / float64(arm.Events)
		arm.AllocsPerEvent = float64(after.Mallocs-before.Mallocs) / float64(arm.Events)
		arm.BytesPerEvent = float64(after.TotalAlloc-before.TotalAlloc) / float64(arm.Events)
	}
	return arm, nil
}

// Bench measures simulator throughput on the given scenario: a warm-up run,
// then a serial sweep (-parallel 1) and a parallel sweep at `workers`
// workers over the same derived replicates. Per-replicate results are
// bit-identical across the two arms (see ReplicateSeed), so the arms do the
// same work and the wall-clock ratio is a pure scheduling speedup.
func Bench(sc Scenario, replicates, workers int) (BenchReport, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	rep := BenchReport{
		Schema:     BenchSchema,
		GoVersion:  runtime.Version(),
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Scenario:   sc.Name,
		N:          sc.N,
		DurationS:  sc.Duration.Seconds(),
		Replicates: replicates,
	}
	if _, err := Run(sc); err != nil { // warm-up
		return rep, err
	}
	var err error
	if rep.Serial, err = benchArm(sc, replicates, 1); err != nil {
		return rep, err
	}
	if rep.Parallel, err = benchArm(sc, replicates, workers); err != nil {
		return rep, err
	}
	if rep.Parallel.WallClockMS > 0 {
		rep.Speedup = rep.Serial.WallClockMS / rep.Parallel.WallClockMS
	}
	return rep, nil
}
