package runner

import (
	"testing"
	"time"

	"bbcast/internal/core"
	"bbcast/internal/fd"
	"bbcast/internal/wire"
)

// quickScenario is a small, fast base used by most tests.
func quickScenario() Scenario {
	sc := DefaultScenario()
	sc.N = 50
	sc.Workload.End = 45 * time.Second
	sc.Duration = 55 * time.Second
	return sc
}

func TestFailureFreeDelivery(t *testing.T) {
	for _, proto := range []Protocol{ProtoByzCast, ProtoFlooding, ProtoFPlusOne} {
		sc := quickScenario()
		sc.Protocol = proto
		res, err := Run(sc)
		if err != nil {
			t.Fatal(err)
		}
		min := 0.90
		if proto == ProtoByzCast {
			min = 0.99 // gossip recovery should make it near-perfect
		}
		if res.DeliveryRatio < min {
			t.Errorf("%v delivery = %.3f, want ≥ %.2f", proto, res.DeliveryRatio, min)
		}
		if res.Injected == 0 {
			t.Errorf("%v injected no messages", proto)
		}
	}
}

func TestByzCastFewerDataTransmissionsThanFlooding(t *testing.T) {
	// The overlay's whole point (§1): fewer data transmissions than
	// flooding's one-per-node.
	base := quickScenario()
	byz, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	fl := base
	fl.Protocol = ProtoFlooding
	flood, err := Run(fl)
	if err != nil {
		t.Fatal(err)
	}
	byzData := float64(byz.TxByKind[wire.KindData]) / float64(byz.Injected)
	floodData := float64(flood.TxByKind[wire.KindData]) / float64(flood.Injected)
	if byzData >= floodData {
		t.Errorf("byzcast data tx/msg = %.1f not below flooding's %.1f", byzData, floodData)
	}
}

func TestOverlaySubstantiallySmallerThanNetwork(t *testing.T) {
	sc := quickScenario()
	sc.N = 100
	res, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if res.OverlaySize == 0 || res.OverlaySize >= sc.N*3/4 {
		t.Errorf("overlay = %d of %d nodes", res.OverlaySize, sc.N)
	}
}

func TestMuteAdversariesDoNotStopDissemination(t *testing.T) {
	// The paper's headline property: even with Byzantine overlay nodes
	// black-holing traffic, gossip + recovery delivers everywhere
	// (eventual dissemination).
	sc := quickScenario()
	sc.Adversaries = []Adversaries{{Kind: AdvMute, Count: 10}}
	sc.Placement = PlaceDominators
	res, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if res.DeliveryRatio < 0.97 {
		t.Errorf("delivery under 20%% mute dominators = %.3f", res.DeliveryRatio)
	}
	if res.AdversariesDetected == 0 {
		t.Error("no correct node detected any mute adversary")
	}
}

func TestFDsReduceLatencyUnderMuteFailures(t *testing.T) {
	// With the detectors on, mute overlay nodes are evicted and traffic
	// returns to the overlay fast path; without them every affected message
	// pays the gossip-recovery latency (§4's mute-failure experiments).
	run := func(fds bool) Result {
		sc := quickScenario()
		sc.Adversaries = []Adversaries{{Kind: AdvMute, Count: 10}}
		sc.Placement = PlaceDominators
		sc.Core.EnableFDs = fds
		sc.Workload.End = 75 * time.Second
		sc.Duration = 90 * time.Second
		res, err := Run(sc)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	with := run(true)
	without := run(false)
	if with.DeliveryRatio < 0.97 || without.DeliveryRatio < 0.97 {
		t.Fatalf("delivery dropped: with=%.3f without=%.3f", with.DeliveryRatio, without.DeliveryRatio)
	}
	if with.LatMean >= without.LatMean {
		t.Errorf("FDs did not reduce mean latency: with=%v without=%v", with.LatMean, without.LatMean)
	}
}

func TestTamperAdversaryDetected(t *testing.T) {
	sc := quickScenario()
	sc.Adversaries = []Adversaries{{Kind: AdvTamper, Count: 5}}
	res, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if res.DeliveryRatio < 0.99 {
		t.Errorf("delivery under tamperers = %.3f", res.DeliveryRatio)
	}
	if res.Node.BadSignatures == 0 {
		t.Error("no tampered frame was caught by signature verification")
	}
	if res.AdversariesDetected == 0 {
		t.Error("no tamperer was distrusted")
	}
}

func TestVerboseAdversaryIndicted(t *testing.T) {
	sc := quickScenario()
	sc.Adversaries = []Adversaries{{Kind: AdvVerbose, Count: 3}}
	res, err := RunInspect(sc, func(protos []*core.Protocol) {})
	if err != nil {
		t.Fatal(err)
	}
	if res.DeliveryRatio < 0.98 {
		t.Errorf("delivery under verbose spam = %.3f", res.DeliveryRatio)
	}
	if res.AdversariesDetected == 0 {
		t.Error("no verbose spammer was distrusted")
	}
}

func TestSelectiveDropRecovered(t *testing.T) {
	sc := quickScenario()
	sc.Adversaries = []Adversaries{{Kind: AdvSelective, Count: 10}}
	res, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if res.DeliveryRatio < 0.98 {
		t.Errorf("delivery under selective droppers = %.3f", res.DeliveryRatio)
	}
}

func TestFPlusOneCostScalesWithF(t *testing.T) {
	// §1: the f+1 approach pays (f+1)× even when failure-free.
	var prev float64
	for f := 0; f <= 2; f++ {
		sc := quickScenario()
		sc.Protocol = ProtoFPlusOne
		sc.F = f
		res, err := Run(sc)
		if err != nil {
			t.Fatal(err)
		}
		perMsg := float64(res.TotalTx) / float64(res.Injected)
		if f > 0 && perMsg <= prev {
			t.Errorf("f=%d cost %.1f not above f=%d cost %.1f", f, perMsg, f-1, prev)
		}
		prev = perMsg
	}
}

func TestMobilityMaintainsDelivery(t *testing.T) {
	sc := quickScenario()
	sc.Mobility = MobWaypoint
	sc.Speed = 5
	sc.Pause = 2 * time.Second
	res, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if res.DeliveryRatio < 0.95 {
		t.Errorf("delivery at 5 m/s waypoint = %.3f", res.DeliveryRatio)
	}
}

func TestDeterministicRuns(t *testing.T) {
	sc := quickScenario()
	sc.N = 30
	sc.Workload.End = 30 * time.Second
	sc.Duration = 40 * time.Second
	a, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if a.TotalTx != b.TotalTx || a.DeliveryRatio != b.DeliveryRatio ||
		a.LatMean != b.LatMean || a.Collisions != b.Collisions {
		t.Errorf("same seed produced different results:\n a=%s\n b=%s", a.Results, b.Results)
	}
	sc.Seed = 2
	c, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if a.TotalTx == c.TotalTx && a.LatMean == c.LatMean {
		t.Error("different seeds produced identical results (suspicious)")
	}
}

func TestEd25519SchemeEndToEnd(t *testing.T) {
	sc := quickScenario()
	sc.N = 25
	sc.UseEd25519 = true
	sc.Workload.End = 30 * time.Second
	sc.Duration = 40 * time.Second
	res, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if res.DeliveryRatio < 0.90 {
		t.Errorf("ed25519 delivery = %.3f", res.DeliveryRatio)
	}
}

func TestScenarioValidation(t *testing.T) {
	sc := DefaultScenario()
	sc.N = 0
	if _, err := Run(sc); err == nil {
		t.Error("N=0 accepted")
	}
	sc = DefaultScenario()
	sc.Duration = 0
	if _, err := Run(sc); err == nil {
		t.Error("zero duration accepted")
	}
}

func TestProtocolStrings(t *testing.T) {
	if ProtoByzCast.String() != "byzcast" || ProtoFlooding.String() != "flooding" ||
		ProtoFPlusOne.String() != "f+1" || Protocol(99).String() != "proto(?)" {
		t.Error("Protocol.String broken")
	}
}

func TestCorrectnessUnderAllAdversaryMix(t *testing.T) {
	// Validity under a mixed attack: every accepted payload must have been
	// genuinely originated (checked implicitly by delivery accounting — a
	// tampered payload would fail signature checks and never be counted).
	sc := quickScenario()
	sc.Adversaries = []Adversaries{
		{Kind: AdvMute, Count: 4},
		{Kind: AdvTamper, Count: 3},
		{Kind: AdvVerbose, Count: 2},
	}
	sc.Workload.End = 60 * time.Second
	sc.Duration = 85 * time.Second
	res, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if res.DeliveryRatio < 0.97 {
		t.Errorf("delivery under mixed adversaries = %.3f", res.DeliveryRatio)
	}
}

func TestEventualDisseminationSparseNetwork(t *testing.T) {
	// Sparse connectivity stresses the recovery path; the protocol should
	// still beat flooding's delivery (flooding has no recovery).
	byz := quickScenario()
	byz.N = 25
	byzRes, err := Run(byz)
	if err != nil {
		t.Fatal(err)
	}
	fl := byz
	fl.Protocol = ProtoFlooding
	flRes, err := Run(fl)
	if err != nil {
		t.Fatal(err)
	}
	if byzRes.DeliveryRatio < flRes.DeliveryRatio {
		t.Errorf("sparse: byzcast %.3f below flooding %.3f", byzRes.DeliveryRatio, flRes.DeliveryRatio)
	}
}

func TestInspectHookSeesProtocols(t *testing.T) {
	sc := quickScenario()
	sc.N = 10
	sc.Workload.End = 20 * time.Second
	sc.Duration = 25 * time.Second
	var seen int
	var trusted bool
	_, err := RunInspect(sc, func(protos []*core.Protocol) {
		seen = len(protos)
		trusted = protos[0].Trust().Level(wire.NodeID(1)) == fd.Trusted
	})
	if err != nil {
		t.Fatal(err)
	}
	if seen != 10 || !trusted {
		t.Errorf("inspect hook saw %d protocols (trusted=%v)", seen, trusted)
	}
}
