package runner

import (
	"testing"
	"time"
)

func TestSoakLargeNetwork(t *testing.T) {
	// 200 nodes, two minutes of traffic: the simulator and protocol must
	// hold up at scale and keep full delivery.
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	sc := DefaultScenario()
	sc.N = 200
	sc.Workload.Rate = 2
	sc.Workload.End = 105 * time.Second
	sc.Duration = 120 * time.Second
	res, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if res.DeliveryRatio < 0.99 {
		t.Fatalf("delivery at n=200 = %.3f", res.DeliveryRatio)
	}
	if res.OverlaySize >= sc.N/2 {
		t.Fatalf("overlay grew to %d of %d at scale", res.OverlaySize, sc.N)
	}
}

func TestHalfTheNetworkByzantine(t *testing.T) {
	// The paper's headline requirement is only one correct node per one-hop
	// neighbourhood. Push toward it: 40% of nodes mute (spread), correct
	// connectivity retained — recovery must still deliver everywhere.
	if testing.Short() {
		t.Skip("heavy adversarial test skipped in -short mode")
	}
	sc := DefaultScenario()
	sc.N = 60
	sc.Adversaries = []Adversaries{{Kind: AdvMute, Count: 24}}
	sc.Workload.End = 90 * time.Second
	sc.Duration = 110 * time.Second
	res, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if res.DeliveryRatio < 0.95 {
		t.Fatalf("delivery with 40%% mute nodes = %.3f", res.DeliveryRatio)
	}
}

func TestSecondHandSuspicionPropagates(t *testing.T) {
	// A tamperer is caught red-handed only by nodes that receive its
	// corrupted frames; overlay-state Suspects reports must spread the
	// distrust at least one hop further (trust level Unknown counts).
	if testing.Short() {
		t.Skip("skipped in -short mode")
	}
	sc := DefaultScenario()
	sc.N = 50
	sc.Adversaries = []Adversaries{{Kind: AdvTamper, Count: 2}}
	sc.Placement = PlaceDominators
	sc.Workload.End = 75 * time.Second
	sc.Duration = 90 * time.Second
	res, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if res.Node.BadSignatures == 0 {
		t.Skip("no tampered frame reached a verifier this seed")
	}
	if res.AdversariesDetected == 0 {
		t.Fatal("tamperers never distrusted despite bad signatures")
	}
}

func TestFerryHealsPartition(t *testing.T) {
	// Two clusters that are never in mutual radio range, joined only by a
	// ferry node: the paper's weakened connectivity assumption (footnote 7)
	// — the well-connected graph is connected only infinitely often, and
	// dissemination slows proportionally to the disconnected periods. The
	// ferry picks messages up via normal dissemination, carries them across,
	// advertises them by gossip, and the far side recovers them by request.
	if testing.Short() {
		t.Skip("skipped in -short mode")
	}
	sc := DefaultScenario()
	sc.N = 21 // 10 per cluster + ferry
	sc.Area.W = 1200
	sc.Area.H = 300
	sc.Mobility = MobFerry
	sc.Speed = 50 // span 1000 m → 20 s per crossing
	// Retention must outlive a crossing so the ferry still advertises and
	// serves what it carries when it arrives.
	sc.Core.GossipRetention = 60 * time.Second
	sc.Core.PurgeTimeout = 180 * time.Second
	sc.Workload.Senders = 2 // nodes 0 and 1: both in the left cluster
	sc.Workload.Rate = 0.5
	sc.Workload.Start = 10 * time.Second
	sc.Workload.End = 70 * time.Second
	sc.Duration = 160 * time.Second // several crossings to drain
	res, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if res.DeliveryRatio < 0.95 {
		t.Fatalf("ferry delivery = %.3f; partition not healed", res.DeliveryRatio)
	}
	if res.LatMax < 10*time.Second {
		t.Fatalf("max latency %v suspiciously low for a partitioned network", res.LatMax)
	}
}

func TestGaussMarkovMobilityDelivers(t *testing.T) {
	if testing.Short() {
		t.Skip("skipped in -short mode")
	}
	// Smooth correlated motion lets the node distribution drift into
	// transient partitions (unlike waypoint, nothing pulls nodes back
	// through the centre), so run dense and give recovery drain time.
	sc := DefaultScenario()
	sc.N = 75
	sc.Mobility = MobGaussMarkov
	sc.Speed = 8
	sc.Workload.End = 55 * time.Second
	sc.Duration = 75 * time.Second
	res, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if res.DeliveryRatio < 0.95 {
		t.Fatalf("delivery under Gauss-Markov mobility = %.3f", res.DeliveryRatio)
	}
}
