package runner

import (
	"strings"
	"testing"
	"time"

	"bbcast/internal/geo"
	"bbcast/internal/invariant"
	"bbcast/internal/loadgen"
	"bbcast/internal/sim"
)

// loadGenScenario is a small, fast base for load-generator tests: 20 nodes,
// a 10s injection window after a 10s warm-up, invariants off (saturation
// tests violate liveness checks on purpose).
func loadGenScenario(cfg loadgen.Config) Scenario {
	sc := DefaultScenario()
	sc.Name = "loadgen-test"
	sc.N = 20
	sc.Area = geo.Rect{W: 500, H: 500} // dense enough that 20 nodes stay connected
	sc.Workload = Workload{}
	sc.LoadGen = &cfg
	sc.Invariants = invariant.Config{}
	sc.Duration = cfg.End() + 10*time.Second
	return sc
}

// rampCfg is an open-loop schedule with a flat step and a ramp, so the
// injected-count property covers both shapes.
func rampCfg(arrival loadgen.Arrival) loadgen.Config {
	return loadgen.Config{
		Senders:      8,
		PayloadSizes: []int{128},
		Arrival:      arrival,
		Start:        10 * time.Second,
		Steps: []loadgen.Step{
			{Rate: 3, Duration: 5 * time.Second},
			{Rate: 3, EndRate: 9, Duration: 5 * time.Second},
		},
	}
}

// TestLoadGenInjectedMatchesSchedule: the run's injected count equals the
// materialized arrival schedule exactly, per seed — the runner must schedule
// every arrival and lose none. The schedule is recomputed here from the same
// (seed, substream) derivation the runner uses, which pins both the count
// and the substream id as part of the determinism contract.
func TestLoadGenInjectedMatchesSchedule(t *testing.T) {
	for _, arrival := range []loadgen.Arrival{loadgen.Periodic, loadgen.Poisson} {
		for _, seed := range []int64{1, 7, 42} {
			cfg := rampCfg(arrival)
			sc := loadGenScenario(cfg)
			sc.Seed = seed
			res, err := Run(sc)
			if err != nil {
				t.Fatal(err)
			}
			want := len(cfg.Times(sim.New(seed).SubRand(0x10adc3)))
			if res.Injected != want {
				t.Errorf("%s seed %d: injected %d, want the %d scheduled arrivals",
					arrival, seed, res.Injected, want)
			}
			// The schedule realizes the offered-load curve: integral 30+30=60.
			if lo, hi := 30, 90; res.Injected < lo || res.Injected > hi {
				t.Errorf("%s seed %d: injected %d, implausible for expected %.0f",
					arrival, seed, res.Injected, cfg.ExpectedCount())
			}
		}
	}
}

// TestLoadGenPeriodicSeedInvariant: periodic schedules do not consume
// randomness — every seed injects the identical count.
func TestLoadGenPeriodicSeedInvariant(t *testing.T) {
	var first int
	for i, seed := range []int64{3, 11, 99} {
		sc := loadGenScenario(rampCfg(loadgen.Periodic))
		sc.Seed = seed
		res, err := Run(sc)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			first = res.Injected
		} else if res.Injected != first {
			t.Errorf("seed %d: periodic injected %d, seed 3 injected %d", seed, res.Injected, first)
		}
	}
}

// TestLoadGenPayloadSweep: payload sizes cycle per injection, so doubling
// every size must grow bytes on air without changing the injection count.
func TestLoadGenPayloadSweep(t *testing.T) {
	small := rampCfg(loadgen.Periodic)
	small.PayloadSizes = []int{64, 128}
	big := rampCfg(loadgen.Periodic)
	big.PayloadSizes = []int{512, 1024}

	resSmall, err := Run(loadGenScenario(small))
	if err != nil {
		t.Fatal(err)
	}
	resBig, err := Run(loadGenScenario(big))
	if err != nil {
		t.Fatal(err)
	}
	if resSmall.Injected != resBig.Injected {
		t.Errorf("payload size changed the arrival count: %d vs %d", resSmall.Injected, resBig.Injected)
	}
	if resBig.BytesOnAir <= resSmall.BytesOnAir {
		t.Errorf("bytes on air %d (big payloads) <= %d (small payloads)", resBig.BytesOnAir, resSmall.BytesOnAir)
	}
	if resSmall.DeliveryRatio < 0.95 {
		t.Errorf("unloaded sweep delivery %.3f, want >= 0.95", resSmall.DeliveryRatio)
	}
}

// TestLoadGenClosedLoop: the self-clocked arrival model injects within the
// schedule window, keeps at most Senders×Window messages outstanding per
// completion round, and sustains near-full delivery (it never outruns the
// network by construction).
func TestLoadGenClosedLoop(t *testing.T) {
	cfg := loadgen.Config{
		Senders:      5,
		PayloadSizes: []int{128},
		Arrival:      loadgen.ClosedLoop,
		Start:        10 * time.Second,
		Steps:        []loadgen.Step{{Duration: 15 * time.Second}},
		Window:       2,
		Quorum:       0.9,
		Timeout:      3 * time.Second,
	}
	res, err := Run(loadGenScenario(cfg))
	if err != nil {
		t.Fatal(err)
	}
	if res.Injected < 10 {
		t.Errorf("closed loop injected %d, want at least the initial window of 10", res.Injected)
	}
	// Each of the 10 outstanding slots needs at least one network round trip
	// (tens of ms) per completion; thousands per second would mean the loop
	// is relaunching without waiting for quorum.
	if max := 10 * 15 * 100; res.Injected > max {
		t.Errorf("closed loop injected %d, impossibly many for the window", res.Injected)
	}
	if res.DeliveryRatio < 0.9 {
		t.Errorf("closed-loop delivery %.3f, want >= 0.9 (self-clocking must not saturate)", res.DeliveryRatio)
	}
}

// TestLoadGenInvalidConfigFailsRun: Run surfaces the validation error,
// naming the offending field, before simulating anything.
func TestLoadGenInvalidConfigFailsRun(t *testing.T) {
	cfg := rampCfg(loadgen.Poisson)
	cfg.Steps[0].Rate = -1
	_, err := Run(loadGenScenario(cfg))
	if err == nil {
		t.Fatal("Run accepted an invalid loadgen config")
	}
	if !strings.Contains(err.Error(), "steps[0].rate") {
		t.Errorf("error %q does not name the offending field", err)
	}
}

// TestLoadGenReproCommandRoundTrips: scenarios with a load generator render
// a -load flag whose JSON parses back to the same config.
func TestLoadGenReproCommandRoundTrips(t *testing.T) {
	sc := loadGenScenario(rampCfg(loadgen.Poisson))
	repro := ReproCommand(sc)
	if !strings.Contains(repro, "-load '") {
		t.Fatalf("repro %q has no -load flag", repro)
	}
	jsonPart := repro[strings.Index(repro, "-load '")+len("-load '"):]
	jsonPart = jsonPart[:strings.Index(jsonPart, "'")]
	parsed, err := loadgen.Parse([]byte(jsonPart))
	if err != nil {
		t.Fatalf("repro -load payload does not parse: %v\npayload: %s", err, jsonPart)
	}
	if parsed.ExpectedCount() != sc.LoadGen.ExpectedCount() || parsed.Arrival != sc.LoadGen.Arrival {
		t.Errorf("repro round trip changed the schedule: %+v vs %+v", parsed, sc.LoadGen)
	}
}
