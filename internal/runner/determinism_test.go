package runner

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"testing"
	"time"

	"bbcast/internal/faultplan"
	"bbcast/internal/invariant"
	"bbcast/internal/loadgen"
	"bbcast/internal/persist"
	"bbcast/internal/wire"
)

var updateGoldens = flag.Bool("update", false, "rewrite testdata/trace_goldens.json from the current run")

// goldenConfigs are six representative scenario shapes whose event traces
// are pinned by checked-in hashes: the default protocol on a static grid, the
// protocol under mute adversaries with waypoint mobility, the flooding
// baseline, the protocol under bursty loss with the adaptive layer engaged,
// and a load-generated run (Poisson ramp with a payload sweep). Anything that
// perturbs the event schedule — RNG draw order, heap tie-breaking, reception
// batching — shows up as a hash mismatch here.
func goldenConfigs() []Scenario {
	grid := DefaultScenario()
	grid.Name = "det-byzcast-grid"
	grid.N = 40
	grid.Seed = 7
	grid.Duration = 25 * time.Second
	grid.Workload.Start = 5 * time.Second
	grid.Workload.End = 20 * time.Second

	mute := grid
	mute.Name = "det-byzcast-mute-waypoint"
	mute.Seed = 11
	mute.Mobility = MobWaypoint
	mute.Speed = 5
	mute.Pause = 2 * time.Second
	mute.Adversaries = []Adversaries{{Kind: AdvMute, Count: 4}}

	flood := grid
	flood.Name = "det-flooding"
	flood.Seed = 13
	flood.N = 30
	flood.Protocol = ProtoFlooding

	// Hostile-links shape: Gilbert–Elliott burst loss over the workload
	// window exercises the per-link RNG substreams, the adaptive timers and
	// the retransmission chain — all of which must replay bit-identically.
	burst := grid
	burst.Name = "det-byzcast-burst-loss"
	burst.Seed = 17
	burst.FaultPlan = &faultplan.Plan{Events: []faultplan.Event{{
		At: 6 * time.Second, Kind: faultplan.BurstLoss, Duration: 12 * time.Second,
		LossFactor: 0.85, MeanBad: 300 * time.Millisecond, MeanGood: 900 * time.Millisecond,
	}}}

	// Load-generator shape (the E16 quick config in miniature): Poisson
	// arrivals over a ramped offered load with a payload-size sweep. Pins
	// the loadgen substream derivation and the injection closure's draw
	// order into the determinism contract.
	load := grid
	load.Name = "det-byzcast-loadgen"
	load.Seed = 19
	load.Workload = Workload{}
	load.Invariants = invariant.Config{}
	load.LoadGen = &loadgen.Config{
		Senders:      10,
		PayloadSizes: []int{128, 512},
		Arrival:      loadgen.Poisson,
		Start:        5 * time.Second,
		Steps: []loadgen.Step{
			{Rate: 2, Duration: 5 * time.Second},
			{Rate: 2, EndRate: 8, Duration: 10 * time.Second},
		},
	}

	// Crash-amnesia shape: churn wipes volatile state mid-workload while the
	// durable store, log corruption at recovery and the catch-up sync
	// exchange all run. Pins the persist layer's zero-extra-RNG guarantee,
	// the 0xc0de corruption substream and the sync scheduling into the
	// determinism contract.
	amnesia := grid
	amnesia.Name = "det-byzcast-amnesia-sync"
	amnesia.Seed = 23
	amnesia.Core.Persist = true
	amnesia.Core.CatchUpSync = true
	amnesia.PersistCorrupt = &persist.Corruption{TearTail: true}
	amnesia.FaultPlan = &faultplan.Plan{Churn: &faultplan.Churn{
		Rate:     0.25,
		Start:    5 * time.Second,
		End:      18 * time.Second,
		Downtime: 8 * time.Second,
		Wipe:     true,
		Exclude:  []wire.NodeID{0, 1, 2, 3, 4},
	}}

	return []Scenario{grid, mute, flood, burst, load, amnesia}
}

func traceHash(t *testing.T, sc Scenario) (string, Result) {
	t.Helper()
	var buf bytes.Buffer
	sc.Trace = &buf
	res, err := Run(sc)
	if err != nil {
		t.Fatalf("%s: %v", sc.Name, err)
	}
	if res.TraceErr != nil {
		t.Fatalf("%s: lossy trace: %v", sc.Name, res.TraceErr)
	}
	sum := sha256.Sum256(buf.Bytes())
	return hex.EncodeToString(sum[:]), res
}

// TestTraceDeterminism runs each golden config twice — once directly and once
// through the parallel pool — and requires byte-identical traces and equal
// results, then checks the trace hash against the checked-in golden.
// Regenerate goldens after an intentional behaviour change with:
//
//	go test ./internal/runner/ -run TestTraceDeterminism -update
func TestTraceDeterminism(t *testing.T) {
	goldenPath := filepath.Join("testdata", "trace_goldens.json")
	want := map[string]string{}
	if !*updateGoldens {
		raw, err := os.ReadFile(goldenPath)
		if err != nil {
			t.Fatalf("read goldens (run with -update to create): %v", err)
		}
		if err := json.Unmarshal(raw, &want); err != nil {
			t.Fatalf("parse goldens: %v", err)
		}
	}

	got := map[string]string{}
	for _, sc := range goldenConfigs() {
		serialHash, serialRes := traceHash(t, sc)

		// Second run through the pool: replicate 0 keeps the base seed and
		// the trace sink, so its output must match the direct run exactly.
		var poolBuf bytes.Buffer
		poolSC := sc
		poolSC.Trace = &poolBuf
		poolResults, err := (Pool{Workers: 4}).RunReplicates(poolSC, 2)
		if err != nil {
			t.Fatalf("%s: pool: %v", sc.Name, err)
		}
		poolSum := sha256.Sum256(poolBuf.Bytes())
		poolHash := hex.EncodeToString(poolSum[:])

		if serialHash != poolHash {
			t.Errorf("%s: serial and pool replicate-0 traces differ: %s vs %s", sc.Name, serialHash, poolHash)
		}
		if !reflect.DeepEqual(serialRes, poolResults[0]) {
			t.Errorf("%s: serial and pool replicate-0 results differ:\nserial: %+v\npool:   %+v", sc.Name, serialRes, poolResults[0])
		}
		got[sc.Name] = serialHash
	}

	if *updateGoldens {
		out, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, '\n')
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, out, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s", goldenPath)
		return
	}
	names := make([]string, 0, len(got))
	for name := range got {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if want[name] == "" {
			t.Errorf("%s: no golden recorded (run with -update)", name)
			continue
		}
		if got[name] != want[name] {
			t.Errorf("%s: trace hash %s, golden %s — the event schedule changed; "+
				"if intentional, regenerate with -update", name, got[name], want[name])
		}
	}
}

// TestPoolWorkerInvariance checks the tentpole guarantee: per-replicate
// results are bit-identical whatever the worker count, because each replicate
// owns its engine, RNG stream and all per-run state.
func TestPoolWorkerInvariance(t *testing.T) {
	sc := DefaultScenario()
	sc.Name = "invariance"
	sc.N = 35
	sc.Seed = 3
	sc.Duration = 20 * time.Second
	sc.Workload.Start = 5 * time.Second
	sc.Workload.End = 15 * time.Second

	const replicates = 6
	serial, err := (Pool{Workers: 1}).RunReplicates(sc, replicates)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := (Pool{Workers: 8}).RunReplicates(sc, replicates)
	if err != nil {
		t.Fatal(err)
	}
	for k := range serial {
		if !reflect.DeepEqual(serial[k], parallel[k]) {
			t.Errorf("replicate %d: results differ between -parallel 1 and -parallel 8:\nserial:   %+v\nparallel: %+v",
				k, serial[k], parallel[k])
		}
	}
}

// TestReplicateSeedStreams pins the SplitMix64 seed derivation: replicate 0
// keeps the base seed, derived seeds are stable constants, and no two
// replicates of a sweep share a seed.
func TestReplicateSeedStreams(t *testing.T) {
	if got := ReplicateSeed(42, 0); got != 42 {
		t.Errorf("ReplicateSeed(42, 0) = %d, want the base seed", got)
	}
	// Stability: these constants are part of the reproducibility contract
	// (published results name a base seed and a replicate index).
	fixed := map[int]int64{
		1: -7995527694508729151,
		2: -4689498862643123097,
	}
	for k, v := range fixed {
		if got := ReplicateSeed(1, k); got != v {
			t.Errorf("ReplicateSeed(1, %d) = %d, want pinned %d", k, got, v)
		}
	}
	seen := map[int64]int{}
	for k := 0; k < 10_000; k++ {
		s := ReplicateSeed(99, k)
		if prev, dup := seen[s]; dup {
			t.Fatalf("replicates %d and %d share seed %d", prev, k, s)
		}
		seen[s] = k
	}
}
