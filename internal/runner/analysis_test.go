package runner

// Empirical checks of the paper's §3.4.1 analysis: the dissemination-time
// bound and the buffer-size bound. The bounds are deliberately loose in the
// paper; the tests verify the implementation stays inside them by generous
// margins and that the quantities scale the way the analysis says.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"os"
	"testing"
	"time"

	"bbcast/internal/core"
)

// maxTimeout mirrors the paper's max_timeout = gossip_timeout +
// request_timeout + rebroadcast_timeout + 3β (using the MUTE timeout as the
// rebroadcast allowance and a conservative per-hop β of 10 ms).
func maxTimeout(cfg core.Config) time.Duration {
	return cfg.GossipInterval + cfg.GossipJitter + cfg.RequestDelay + cfg.Mute.Timeout + 3*10*time.Millisecond
}

func TestDisseminationTimeBound(t *testing.T) {
	// §3.4.1: in a static network every correct node receives each message
	// within max_timeout·(n−1); our measured worst case must respect it.
	sc := quickScenario()
	sc.N = 50
	res, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	bound := maxTimeout(sc.Core) * time.Duration(sc.N-1)
	if res.LatMax > bound {
		t.Fatalf("worst-case latency %v exceeds the paper's bound %v", res.LatMax, bound)
	}
	if res.DeliveryRatio < 0.99 {
		t.Fatalf("bound check only meaningful at full delivery (got %.3f)", res.DeliveryRatio)
	}
}

func TestDisseminationTimeBoundUnderMuteOverlay(t *testing.T) {
	// The pathological case of Figure 5 (Byzantine overlay everywhere):
	// dissemination degrades to the gossip-request mechanism but stays
	// within max_timeout per hop.
	sc := quickScenario()
	sc.N = 50
	sc.Adversaries = []Adversaries{{Kind: AdvMute, Count: 10}}
	sc.Placement = PlaceDominators
	sc.Workload.End = 60 * time.Second
	sc.Duration = 80 * time.Second
	res, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	bound := maxTimeout(sc.Core) * time.Duration(sc.N-1)
	if res.LatMax > bound {
		t.Fatalf("worst-case latency %v exceeds bound %v under mute attack", res.LatMax, bound)
	}
}

func TestBufferBound(t *testing.T) {
	// §3.4.1: buffers need max_timeout·(n−1)·δ messages in the mobile case;
	// the static retention actually used is PurgeTimeout·δ plus the tail
	// still inside the purge interval. Verify held payloads stay within the
	// static bound (with slack for the purge period) at every node.
	sc := quickScenario()
	sc.N = 50
	sc.Workload.Rate = 4
	sc.Workload.End = 60 * time.Second
	sc.Duration = 70 * time.Second
	delta := sc.Workload.Rate
	bound := int((sc.Core.PurgeTimeout+sc.Core.PurgeInterval).Seconds()*delta) + 5
	_, err := RunInspect(sc, func(protos []*core.Protocol) {
		for i, p := range protos {
			held, _ := p.StoreSize()
			if held > bound {
				t.Errorf("node %d holds %d payloads, bound %d", i, held, bound)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTombstonesRetainDuplicateFilter(t *testing.T) {
	// After purging, ids survive as tombstones: total store size equals the
	// number of distinct accepted messages, held payloads only the recent
	// window.
	sc := quickScenario()
	sc.N = 30
	sc.Core.PurgeTimeout = 10 * time.Second
	sc.Core.PurgeInterval = 2 * time.Second
	sc.Workload.End = 55 * time.Second
	sc.Duration = 65 * time.Second
	injected := 0
	_, err := RunInspect(sc, func(protos []*core.Protocol) {
		held, tombs := protos[0].StoreSize()
		if tombs == 0 {
			t.Error("no tombstones despite a short purge timeout")
		}
		injected = held + tombs
	})
	if err != nil {
		t.Fatal(err)
	}
	if injected == 0 {
		t.Fatal("store empty at end of run")
	}
}

func TestStabilityPurgeShrinksBuffersEndToEnd(t *testing.T) {
	// With stability detection on, buffers shrink well before PurgeTimeout:
	// total held payloads across nodes must be well below the timeout-only
	// run's.
	base := quickScenario()
	base.N = 50
	base.Core.PurgeTimeout = time.Hour // isolate the stability mechanism
	base.Workload.End = 50 * time.Second
	base.Duration = 60 * time.Second

	heldWith, heldWithout := 0, 0
	sum := func(protos []*core.Protocol) int {
		total := 0
		for _, p := range protos {
			h, _ := p.StoreSize()
			total += h
		}
		return total
	}
	sc := base
	sc.Core.StabilityPurge = true
	if _, err := RunInspect(sc, func(ps []*core.Protocol) { heldWith = sum(ps) }); err != nil {
		t.Fatal(err)
	}
	sc = base
	if _, err := RunInspect(sc, func(ps []*core.Protocol) { heldWithout = sum(ps) }); err != nil {
		t.Fatal(err)
	}
	if heldWith >= heldWithout {
		t.Fatalf("stability purging did not shrink buffers: %d vs %d", heldWith, heldWithout)
	}
}

func TestStabilityPurgeKeepsDelivery(t *testing.T) {
	sc := quickScenario()
	sc.N = 50
	sc.Core.StabilityPurge = true
	res, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if res.DeliveryRatio < 0.99 {
		t.Fatalf("delivery with stability purging = %.3f", res.DeliveryRatio)
	}
}

func TestPoissonWorkloadDelivers(t *testing.T) {
	sc := quickScenario()
	sc.N = 50
	sc.Workload.Poisson = true
	res, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if res.Injected == 0 {
		t.Fatal("poisson workload injected nothing")
	}
	if res.DeliveryRatio < 0.98 {
		t.Fatalf("delivery under poisson arrivals = %.3f", res.DeliveryRatio)
	}
}

func TestTimelineBucketsCoverRun(t *testing.T) {
	sc := quickScenario()
	sc.N = 30
	sc.LatencyBucket = 10 * time.Second
	res, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Timeline) == 0 {
		t.Fatal("timeline empty despite LatencyBucket")
	}
	total := 0
	for _, b := range res.Timeline {
		total += b.Count
	}
	if total == 0 {
		t.Fatal("timeline has no delivery samples")
	}
	for i := 1; i < len(res.Timeline); i++ {
		if res.Timeline[i].Start <= res.Timeline[i-1].Start {
			t.Fatal("timeline buckets out of order")
		}
	}
}

func TestSnapshotSVGWritten(t *testing.T) {
	sc := quickScenario()
	sc.N = 20
	sc.Workload.End = 25 * time.Second
	sc.Duration = 30 * time.Second
	sc.SnapshotSVG = t.TempDir() + "/topo.svg"
	if _, err := Run(sc); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(sc.SnapshotSVG)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Fatal("snapshot file empty")
	}
}

func TestTraceRecordsRun(t *testing.T) {
	var buf bytes.Buffer
	sc := quickScenario()
	sc.N = 20
	sc.Workload.End = 25 * time.Second
	sc.Duration = 30 * time.Second
	sc.Trace = &buf
	res, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	types := map[string]int{}
	scanner := bufio.NewScanner(&buf)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	for scanner.Scan() {
		var ev struct {
			T    int64  `json:"t"`
			Type string `json:"type"`
		}
		if err := json.Unmarshal(scanner.Bytes(), &ev); err != nil {
			t.Fatalf("trace line not JSON: %v", err)
		}
		types[ev.Type]++
	}
	if types["tx"] == 0 || types["accept"] == 0 || types["inject"] == 0 || types["role"] == 0 {
		t.Fatalf("trace missing event types: %v", types)
	}
	if types["inject"] != res.Injected {
		t.Fatalf("trace injects = %d, result says %d", types["inject"], res.Injected)
	}
	if uint64(types["tx"]) != res.TotalTx {
		t.Fatalf("trace tx = %d, result says %d", types["tx"], res.TotalTx)
	}
}
