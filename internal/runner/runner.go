// Package runner assembles complete simulated networks — radio, MAC,
// protocol instances, adversaries and workload — runs them, and collects
// results. It is the engine behind the public bbcast API, the example
// programs and the benchmark harness.
package runner

import (
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"

	"bbcast/internal/baseline"
	"bbcast/internal/byzantine"
	"bbcast/internal/core"
	"bbcast/internal/env"
	"bbcast/internal/faultplan"
	"bbcast/internal/fd"
	"bbcast/internal/geo"
	"bbcast/internal/invariant"
	"bbcast/internal/loadgen"
	"bbcast/internal/mac"
	"bbcast/internal/metrics"
	"bbcast/internal/mobility"
	"bbcast/internal/obsv"
	"bbcast/internal/overlay"
	"bbcast/internal/persist"
	"bbcast/internal/radio"
	"bbcast/internal/sig"
	"bbcast/internal/sim"
	"bbcast/internal/trace"
	"bbcast/internal/viz"
	"bbcast/internal/wire"
)

// Protocol selects the dissemination protocol under test.
type Protocol int

// Protocols.
const (
	ProtoByzCast Protocol = iota + 1 // the paper's protocol
	ProtoFlooding
	ProtoFPlusOne
)

// String implements fmt.Stringer.
func (p Protocol) String() string {
	switch p {
	case ProtoByzCast:
		return "byzcast"
	case ProtoFlooding:
		return "flooding"
	case ProtoFPlusOne:
		return "f+1"
	default:
		return "proto(?)"
	}
}

// MobilityKind selects the movement model.
type MobilityKind int

// Mobility kinds.
const (
	MobGrid MobilityKind = iota + 1 // jittered grid, static (repeatable connectivity)
	MobUniform
	MobWaypoint
	MobWalk
	// MobFerry partitions the network into two static clusters joined only
	// by a shuttling ferry node (id N-1); N should be odd. Realizes the
	// paper's footnote-7 weakened connectivity.
	MobFerry
	// MobGaussMarkov is smooth temporally-correlated motion.
	MobGaussMarkov
)

// AdversaryPlacement selects where adversaries are placed.
type AdversaryPlacement int

// Placements.
const (
	// PlaceSpread distributes adversaries across the id space (default).
	PlaceSpread AdversaryPlacement = iota
	// PlaceDominators puts adversaries on the nodes the ID-based election
	// will make overlay dominators (greedy max-ID MIS over the ground-truth
	// topology) — the paper's worst case of Byzantine overlay nodes
	// (Figure 5).
	PlaceDominators
)

// AdversaryKind selects a Byzantine behaviour.
type AdversaryKind int

// Adversary kinds.
const (
	AdvMute       AdversaryKind = iota + 1
	AdvMuteSilent               // also suppresses gossip advertisements
	AdvVerbose
	AdvTamper
	AdvSelective
	// AdvEquivocate signs conflicting payloads for its own messages — the
	// attack the agreement invariant exists to catch.
	AdvEquivocate
	// AdvFlooder spams fresh validly-signed messages far above the workload
	// rate (resource exhaustion, not an agreement attack).
	AdvFlooder
	// AdvReplayer re-transmits harvested packets verbatim.
	AdvReplayer
	// AdvForgeSpammer sends junk signatures from nonexistent origins.
	AdvForgeSpammer
)

// Adversaries places Count nodes with the given behaviour. Adversaries are
// spread across the area (grid placement maps ids to positions) at the
// locally highest ids, which the ID-based overlay election favours as
// dominators — the paper's worst case of Byzantine overlay nodes (Figure 5).
type Adversaries struct {
	Kind  AdversaryKind
	Count int
}

// Workload describes traffic injection.
type Workload struct {
	// Senders is how many distinct correct nodes originate messages
	// (round-robin). They are taken from the lowest ids.
	Senders int
	// Rate is the network-wide injection rate δ in messages/second.
	Rate float64
	// PayloadSize is the application payload in bytes.
	PayloadSize int
	// Start and End bound the injection window.
	Start, End time.Duration
	// Poisson, when set, draws exponential inter-arrival gaps (rate Rate)
	// instead of a fixed period.
	Poisson bool
}

// Scenario is a complete experiment description.
type Scenario struct {
	Name string
	Seed int64

	N     int
	Area  geo.Rect
	Radio radio.Config
	MAC   mac.Config

	Mobility MobilityKind
	// Speed is the node speed (m/s) for waypoint/walk mobility.
	Speed float64
	// Pause is the waypoint pause time.
	Pause time.Duration

	Protocol Protocol
	// Core configures the paper's protocol (ProtoByzCast).
	Core core.Config
	// F is the tolerated failure count for ProtoFPlusOne (f+1 overlays).
	F int
	// UseEd25519 switches from the fast simulation signature scheme to
	// real Ed25519.
	UseEd25519 bool

	Adversaries []Adversaries
	// Placement selects where adversaries are put (see AdversaryPlacement).
	Placement AdversaryPlacement
	Workload  Workload
	// LoadGen, when non-nil, replaces Workload with a load-generator
	// schedule: stepped/ramped offered load over many senders, payload-size
	// sweeps, and periodic, Poisson or closed-loop arrivals — all seeded
	// from the engine so runs stay bit-identical serial vs pool.
	LoadGen *loadgen.Config
	// LatencyBucket, when positive, fills Result.Timeline with latency
	// statistics bucketed by message injection time.
	LatencyBucket time.Duration
	// SnapshotSVG, when non-empty, writes an SVG rendering of the final
	// topology and overlay to this path.
	SnapshotSVG string
	// Trace, when non-nil, receives a JSON line per simulation event
	// (transmissions, receptions, injections, acceptances, role changes,
	// suspicions, fault events).
	Trace io.Writer
	// Observer, when non-nil, receives every protocol and transport event of
	// the run alongside the built-in consumers (e.g. an obsv.RegistryObserver
	// so a simulation exports the same metrics schema as a live node).
	Observer obsv.Observer
	// Duration is the total simulated time (allow drain past Workload.End).
	Duration time.Duration

	// FaultPlan, when non-nil, is the chaos schedule executed during the
	// run: crashes, recoveries, partitions, radio degradation, behaviour
	// swaps and churn, all deterministic per seed.
	FaultPlan *faultplan.Plan
	// PersistCorrupt, when non-nil and Core.Persist is on, damages each
	// amnesiac node's durable device (seeded, deterministic) at recovery,
	// before the device is re-opened — exercising torn-write and bit-flip
	// replay recovery under churn.
	PersistCorrupt *persist.Corruption
	// Invariants selects the runtime invariant checks. The zero value
	// disables them; DefaultScenario enables the full set. Checks that do
	// not apply to the configured protocol (overlay recovery for flooding,
	// validity without the recovery machinery) are gated off automatically.
	Invariants invariant.Config
}

// DefaultScenario returns the base configuration the experiments perturb:
// 75 nodes on a jittered grid in 1000×1000 m, 250 m range, one message per
// second for 60 s.
func DefaultScenario() Scenario {
	return Scenario{
		Name:     "default",
		Seed:     1,
		N:        75,
		Area:     geo.Rect{W: 1000, H: 1000},
		Radio:    radio.DefaultConfig(),
		MAC:      mac.DefaultConfig(),
		Mobility: MobGrid,
		Protocol: ProtoByzCast,
		Core:     core.DefaultConfig(),
		F:        2,
		Workload: Workload{
			Senders:     5,
			Rate:        1,
			PayloadSize: 256,
			Start:       15 * time.Second,
			End:         75 * time.Second,
		},
		Duration:   85 * time.Second,
		Invariants: invariant.DefaultConfig(),
	}
}

// broadcaster is what the runner needs from any protocol under test.
type broadcaster interface {
	Broadcast(payload []byte) wire.MsgID
	HandlePacket(pkt *wire.Packet)
	Stop()
	Stats() core.Stats
}

// Result bundles the metrics summary with lower-layer statistics.
type Result struct {
	metrics.Results
	Phys radio.Stats
	// Node aggregates the protocol counters over all nodes.
	Node core.Stats
	// AdversariesDetected is how many correct nodes ended the run
	// distrusting at least one genuinely Byzantine node (FD effectiveness).
	AdversariesDetected int
	// Timeline is filled when Scenario.LatencyBucket is set.
	Timeline []metrics.Bucket
	// NumCorrect is how many nodes count as correct for metrics and
	// invariants: not adversarial at t=0 and never swapped to a faulty
	// behaviour by the fault plan.
	NumCorrect int
	// FaultEvents is the timestamped log of fault-plan events that fired,
	// in firing order — the timeline to correlate delivery dips against.
	FaultEvents []FaultRecord
	// Violations are the invariant breaches detected during the run. A
	// violated run still returns metrics; callers decide whether to fail.
	Violations []invariant.Violation
	// Repro, set when Violations is non-empty, is a one-line bbsim command
	// (seed, scenario and inline fault plan) that reproduces the failure.
	Repro string
	// TraceErr is the first trace-encoding error, if the run's trace was
	// lossy (only set when Scenario.Trace was configured).
	TraceErr error
	// Events is how many discrete simulation events the engine fired during
	// the run — the denominator for the ns/event and allocs/event figures the
	// benchmark harness reports.
	Events uint64
}

// FaultRecord is one fault-plan event that fired during the run.
type FaultRecord struct {
	At   time.Duration
	Name string
}

// Run executes the scenario and returns its results.
func Run(sc Scenario) (Result, error) {
	if sc.N <= 0 {
		return Result{}, fmt.Errorf("runner: scenario needs N > 0, got %d", sc.N)
	}
	if sc.Duration <= 0 {
		return Result{}, fmt.Errorf("runner: scenario needs a positive duration")
	}
	if sc.LoadGen != nil {
		if err := sc.LoadGen.Validate(); err != nil {
			return Result{}, err
		}
	}
	if sc.Radio.Range <= 0 {
		sc.Radio = radio.DefaultConfig()
	}
	if sc.MAC.Slot <= 0 {
		sc.MAC = mac.DefaultConfig()
	}

	eng := sim.New(sc.Seed)
	model := buildMobility(sc)
	if sc.Mobility == MobGrid || sc.Mobility == MobUniform {
		sc.Radio.PosUpdate = 0 // static: skip position refresh events
	}
	medium := radio.New(eng, model, sc.N, sc.Radio)
	defer medium.Close()

	scheme, err := buildScheme(sc)
	if err != nil {
		return Result{}, err
	}

	collector := metrics.NewCollector()
	var tracer *trace.Writer
	var traceObs obsv.Observer
	if sc.Trace != nil {
		tracer = trace.NewWriter(sc.Trace)
		traceObs = trace.NewObserver(tracer)
	}

	behaviors := assignAdversaries(sc, eng, medium, scheme)
	correct := make([]bool, sc.N)
	for i := range correct {
		_, isAdv := behaviors[wire.NodeID(i)]
		correct[i] = !isAdv
	}

	var planEvents []faultplan.Event
	if sc.FaultPlan != nil {
		if err := sc.FaultPlan.Validate(sc.N); err != nil {
			return Result{}, err
		}
		// Churn expansion draws from a dedicated substream so the schedule
		// is deterministic per seed without touching the engine stream.
		planEvents = sc.FaultPlan.Expanded(eng.SubRand(0xfa17), sc.N)
		// A node the plan ever turns faulty is conservatively not "correct"
		// for the whole run, for both metrics and invariants.
		for _, id := range sc.FaultPlan.SwapTargets() {
			correct[id] = false
		}
	}
	numCorrect := 0
	for _, c := range correct {
		if c {
			numCorrect++
		}
	}

	protos := make([]broadcaster, sc.N)
	macs := make([]*mac.MAC, sc.N)
	switchables := make([]*byzantine.Switchable, sc.N)
	clock := env.SimClock{Eng: eng}

	// Durable state: one in-memory device per node when persistence is on.
	// Devices survive amnesiac crashes; the fault scheduler re-opens them
	// (replay-truncate recovery) when the node rejoins.
	var devices []*persist.MemDevice
	if sc.Core.Persist && sc.Protocol == ProtoByzCast {
		devices = make([]*persist.MemDevice, sc.N)
	}

	chk := buildChecker(sc, eng, medium, protos, correct)

	// The closed-loop load driver listens on the observer chain: it counts
	// correct-node accepts towards per-message quorums and self-clocks the
	// next injection.
	var loadDriver *loadgen.Driver
	var loadObs obsv.Observer
	if sc.LoadGen != nil && sc.LoadGen.Arrival == loadgen.ClosedLoop {
		loadDriver = loadgen.NewDriver(*sc.LoadGen, numCorrect-1)
		loadObs = loadDriver
	}

	// One composite observer receives every event exactly once from the
	// emitting layer; accepts at non-correct nodes are filtered out so they
	// never count towards delivery (mirroring the old per-node wiring).
	obs := obsv.Multi(collector, traceObs, invariant.AsObserver(chk), loadObs, sc.Observer)
	advObs := obsv.SkipAccepts(obs)
	medium.OnTransmit = func(from wire.NodeID, pkt *wire.Packet) {
		obs.OnPacketTx(eng.Now(), from, pkt.Kind, pkt.ID(), pkt.Meta)
	}

	// Behaviour ticks run for t=0 adversaries and for any node a fault plan
	// may swap to an active behaviour later. (Correct.Tick is a no-op, so the
	// extra loops change nothing until the swap fires.)
	needsTick := make(map[wire.NodeID]bool, len(behaviors))
	for id := range behaviors {
		needsTick[id] = true
	}
	for _, e := range planEvents {
		if e.Kind == faultplan.SwapBehavior {
			needsTick[e.Node] = true
		}
	}

	var fpOverlays [][]int
	if sc.Protocol == ProtoFPlusOne {
		// Overlays are built from solid links only (inside the fringe-free
		// radius): a CDS whose edges sit in the lossy fringe is connected
		// on paper but black-holes in practice.
		solid := sc.Radio.Range * sc.Radio.FringeStart
		if solid <= 0 {
			solid = sc.Radio.Range
		}
		fpOverlays = baseline.DisjointOverlays(adjacency(medium, sc.N, solid), sc.F)
	}

	for i := 0; i < sc.N; i++ {
		id := wire.NodeID(i)
		macs[i] = mac.New(eng, medium, id, eng.SubRand(uint64(i)), sc.MAC)
		behavior := byzantine.NewSwitchable(behaviorFor(behaviors, id))
		switchables[i] = behavior
		m := macs[i]
		send := func(pkt *wire.Packet) {
			if out := behavior.FilterSend(pkt); out != nil {
				m.Send(out)
			}
		}
		deps := core.Deps{
			ID:     id,
			Clock:  clock,
			Send:   send,
			Scheme: scheme,
			Rand:   eng.SubRand(uint64(i) + 1<<32),
			Obs:    advObs,
		}
		if correct[i] {
			deps.Obs = obs
			// The no-op upcall marks an application as attached, so
			// originators still count their own deliveries (DeliverOwn);
			// measurement itself rides on the observer.
			deps.Deliver = func(wire.NodeID, wire.MsgID, []byte) {}
		}
		if devices != nil {
			devices[i] = &persist.MemDevice{}
			st, err := persist.Open(devices[i])
			if err != nil {
				return Result{}, fmt.Errorf("runner: persist: node %d: %w", i, err)
			}
			deps.Store = st
		}
		switch sc.Protocol {
		case ProtoFlooding:
			protos[i] = baseline.NewFlooding(deps, sc.Core.ForwardJitter)
		case ProtoFPlusOne:
			var memberOf []int
			for c, members := range fpOverlays {
				for _, v := range members {
					if v == i {
						memberOf = append(memberOf, c)
					}
				}
			}
			protos[i] = baseline.NewFPlusOne(deps, sc.F, memberOf, sc.Core.ForwardJitter)
		default:
			protos[i] = core.New(sc.Core, deps)
		}
		p := protos[i]
		medium.Attach(id, func(pkt *wire.Packet) {
			behavior.OnReceive(pkt)
			p.HandlePacket(pkt)
		})
		if needsTick[id] {
			b := behavior
			eng.Every(byzantine.TickInterval, func() { b.Tick(m.Send) })
		}
	}

	var faultEvents []FaultRecord
	if len(planEvents) > 0 {
		eng.OnEpoch(func(ep sim.Epoch) {
			name := strings.TrimPrefix(ep.Name, "fault:")
			faultEvents = append(faultEvents, FaultRecord{At: ep.At, Name: name})
			if chk != nil {
				chk.OnFault(name, ep.At)
			}
			if tracer != nil {
				tracer.Emit(trace.Event{
					T: trace.At(ep.At), Type: trace.TypeFault, Detail: name,
				})
			}
		})
		if err := scheduleFaultPlan(sc, eng, medium, protos, devices, switchables, scheme, chk, planEvents); err != nil {
			return Result{}, err
		}
	}

	scheduleWorkload(sc, eng, protos, correct, obs, loadDriver)

	eng.Run(sc.Duration)

	if chk != nil {
		chk.Finish(eng.Now())
	}

	if debugInspect != nil {
		cores := make([]*core.Protocol, sc.N)
		for i := range protos {
			cores[i], _ = protos[i].(*core.Protocol)
		}
		debugInspect(cores)
	}

	res := Result{Phys: medium.Stats(), FaultEvents: faultEvents, NumCorrect: numCorrect, TraceErr: tracer.Err(), Events: eng.Processed()}
	if chk != nil {
		res.Violations = chk.Violations()
		if len(res.Violations) > 0 {
			res.Repro = ReproCommand(sc)
		}
	}
	res.Results = collector.Summarize(sc.Protocol.String(), sc.N, func(origin wire.NodeID) int {
		if correct[origin] {
			return numCorrect - 1
		}
		return numCorrect
	})
	res.Results.BytesOnAir = medium.Stats().BytesOnAir
	res.Results.Collisions = medium.Stats().Collisions
	if sc.LatencyBucket > 0 {
		res.Timeline = collector.Timeline(sc.LatencyBucket)
	}
	if sc.SnapshotSVG != "" {
		if err := writeSnapshot(sc, medium, protos, behaviors); err != nil {
			return res, fmt.Errorf("runner: snapshot: %w", err)
		}
	}

	for i := 0; i < sc.N; i++ {
		st := protos[i].Stats()
		res.Node.Accepted += st.Accepted
		res.Node.Duplicates += st.Duplicates
		res.Node.BadSignatures += st.BadSignatures
		res.Node.Forwarded += st.Forwarded
		res.Node.GossipsSent += st.GossipsSent
		res.Node.RequestsSent += st.RequestsSent
		res.Node.FindsSent += st.FindsSent
		res.Node.RecoveredByData += st.RecoveredByData
		res.Node.RateLimited += st.RateLimited
		res.Node.DedupSkips += st.DedupSkips
		res.Node.Evictions += st.Evictions
		res.Node.Adaptations += st.Adaptations
		res.Node.RetriesSent += st.RetriesSent
		res.Node.RetriesAbandoned += st.RetriesAbandoned
		res.Node.Rejoins += st.Rejoins
		res.Node.SyncReqsSent += st.SyncReqsSent
		res.Node.SyncEntriesServed += st.SyncEntriesServed
		res.Node.SyncEntriesApplied += st.SyncEntriesApplied
		res.Node.SyncAbandoned += st.SyncAbandoned
		if cp, ok := protos[i].(*core.Protocol); ok {
			if cp.InOverlay() {
				res.Results.OverlaySize++
			}
			if correct[i] && distrustsAnAdversary(cp, behaviors) {
				res.AdversariesDetected++
			}
		}
		protos[i].Stop()
		macs[i].Stop()
	}
	if sc.Protocol == ProtoFPlusOne {
		for _, ov := range fpOverlays {
			res.Results.OverlaySize += len(ov)
		}
	}
	return res, nil
}

func distrustsAnAdversary(p *core.Protocol, behaviors map[wire.NodeID]byzantine.Behavior) bool {
	// Sorted: Level can emit suspicion transitions (lazy expiry), and the
	// early return below would otherwise make even the emitted *set* depend
	// on map iteration order.
	ids := make([]wire.NodeID, 0, len(behaviors))
	for id := range behaviors {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, advID := range ids {
		if p.Trust().Level(advID) != fd.Trusted {
			return true
		}
	}
	return false
}

func buildMobility(sc Scenario) mobility.Model {
	switch sc.Mobility {
	case MobUniform:
		return mobility.NewUniformStatic(sc.Area, sc.N, sc.Seed)
	case MobWaypoint:
		minSpeed := sc.Speed / 2
		if minSpeed <= 0 {
			minSpeed = 0.5
		}
		return mobility.NewRandomWaypoint(sc.Area, sc.N, minSpeed, sc.Speed, sc.Pause, sc.Seed)
	case MobWalk:
		return mobility.NewRandomWalk(sc.Area, sc.N, sc.Speed, 2*time.Second, sc.Seed)
	case MobFerry:
		speed := sc.Speed
		if speed <= 0 {
			speed = 30
		}
		return mobility.NewFerry(sc.Area, (sc.N-1)/2, speed, sc.Seed)
	case MobGaussMarkov:
		return mobility.NewGaussMarkov(sc.Area, sc.N, 0.85, sc.Speed, sc.Speed/3, time.Second, sc.Seed)
	default:
		return mobility.NewGridStatic(sc.Area, sc.N, 0.35, sc.Seed)
	}
}

func buildScheme(sc Scenario) (sig.Scheme, error) {
	if sc.UseEd25519 {
		return sig.NewEd25519(sc.N, sc.Seed)
	}
	return sig.NewHMAC(sc.N, sc.Seed), nil
}

// assignAdversaries spreads the configured behaviours across the id space,
// starting from the top id and stepping so adversaries land in distinct
// regions of the (id-ordered) placement.
func assignAdversaries(sc Scenario, eng *sim.Engine, medium *radio.Medium, scheme sig.Scheme) map[wire.NodeID]byzantine.Behavior {
	out := make(map[wire.NodeID]byzantine.Behavior)
	total := 0
	for _, a := range sc.Adversaries {
		total += a.Count
	}
	if total == 0 {
		return out
	}
	var order []wire.NodeID
	if sc.Placement == PlaceDominators {
		order = greedyMIS(medium, sc.N)
	}
	step := sc.N / total
	if step < 1 {
		step = 1
	}
	next := sc.N - 1
	mi := 0
	pick := func() wire.NodeID {
		// Prefer would-be dominators (descending id), then spread.
		for mi < len(order) {
			id := order[mi]
			mi++
			if _, taken := out[id]; !taken {
				return id
			}
		}
		for next >= 0 {
			id := wire.NodeID(next)
			next -= step
			if _, taken := out[id]; !taken {
				return id
			}
		}
		// Wrap around for dense adversary counts.
		for i := sc.N - 1; i >= 0; i-- {
			if _, taken := out[wire.NodeID(i)]; !taken {
				return wire.NodeID(i)
			}
		}
		return wire.NoNode
	}
	for _, a := range sc.Adversaries {
		for k := 0; k < a.Count; k++ {
			id := pick()
			if id == wire.NoNode {
				break
			}
			switch a.Kind {
			case AdvMuteSilent:
				out[id] = &byzantine.Mute{Self: id, DropGossip: true}
			case AdvVerbose:
				out[id] = &byzantine.Verbose{Self: id, Rng: eng.SubRand(uint64(id) + 2<<32), PerTick: 4}
			case AdvTamper:
				out[id] = &byzantine.Tamper{Self: id}
			case AdvSelective:
				out[id] = &byzantine.SelectiveDrop{Self: id, Rng: eng.SubRand(uint64(id) + 2<<32), DropProb: 0.5}
			case AdvEquivocate:
				out[id] = &byzantine.Equivocate{Self: id, Sign: signerFor(scheme, id)}
			case AdvFlooder:
				out[id] = &byzantine.Flooder{Self: id, Sign: signerFor(scheme, id)}
			case AdvReplayer:
				out[id] = &byzantine.Replayer{Self: id, Rng: eng.SubRand(uint64(id) + 2<<32)}
			case AdvForgeSpammer:
				out[id] = &byzantine.ForgeSpammer{Self: id, Rng: eng.SubRand(uint64(id) + 2<<32)}
			default:
				out[id] = &byzantine.Mute{Self: id}
			}
		}
	}
	return out
}

func behaviorFor(m map[wire.NodeID]byzantine.Behavior, id wire.NodeID) byzantine.Behavior {
	if b, ok := m[id]; ok {
		return b
	}
	return byzantine.Correct{}
}

// writeSnapshot renders the end-of-run topology to the configured SVG path.
func writeSnapshot(sc Scenario, medium *radio.Medium, protos []broadcaster, behaviors map[wire.NodeID]byzantine.Behavior) error {
	snap := viz.Snapshot{
		Area:  sc.Area,
		Range: sc.Radio.Range,
	}
	for i := 0; i < sc.N; i++ {
		id := wire.NodeID(i)
		node := viz.Node{ID: id, Pos: medium.Pos(id), Role: overlay.Passive}
		if cp, ok := protos[i].(*core.Protocol); ok {
			node.Role = cp.Role()
		}
		_, node.Adversary = behaviors[id]
		snap.Nodes = append(snap.Nodes, node)
		for _, j := range medium.Neighbors(id) {
			if j > id {
				snap.Links = append(snap.Links, [2]wire.NodeID{id, j})
			}
		}
	}
	f, err := os.Create(sc.SnapshotSVG)
	if err != nil {
		return err
	}
	if err := viz.Render(f, snap); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// greedyMIS computes the maximal independent set the ID-based election
// converges to on the initial ground-truth topology, highest ids first.
func greedyMIS(medium *radio.Medium, n int) []wire.NodeID {
	inMIS := make(map[wire.NodeID]bool, n)
	var out []wire.NodeID
	for i := n - 1; i >= 0; i-- {
		id := wire.NodeID(i)
		blocked := false
		for _, nb := range medium.Neighbors(id) {
			if nb > id && inMIS[nb] {
				blocked = true
				break
			}
		}
		if !blocked {
			inMIS[id] = true
			out = append(out, id)
		}
	}
	return out
}

// adjacency snapshots ground-truth connectivity up to the given link length
// (used by the f+1 baseline's setup-time overlay construction).
func adjacency(medium *radio.Medium, n int, maxDist float64) [][]bool {
	adj := make([][]bool, n)
	for i := range adj {
		adj[i] = make([]bool, n)
	}
	for i := 0; i < n; i++ {
		pi := medium.Pos(wire.NodeID(i))
		for _, j := range medium.Neighbors(wire.NodeID(i)) {
			if pi.Dist(medium.Pos(j)) <= maxDist {
				adj[i][j] = true
				adj[j][i] = true
			}
		}
	}
	return adj
}

// scheduleWorkload injects messages per the scenario's workload description:
// the load-generator schedule when Scenario.LoadGen is set, the simple
// fixed-rate workload otherwise. All OnInject emissions live here (and in
// closures created here) — the obsvonce contract's designated source.
func scheduleWorkload(sc Scenario, eng *sim.Engine, protos []broadcaster, correct []bool, obs obsv.Observer, loadDriver *loadgen.Driver) {
	if sc.LoadGen != nil {
		cfg := *sc.LoadGen
		var senders []int
		for i := 0; i < len(protos) && len(senders) < cfg.Senders; i++ {
			if correct[i] {
				senders = append(senders, i)
			}
		}
		if len(senders) == 0 {
			return
		}
		// One payload buffer per configured size, cycled per injection so a
		// single run sweeps payload sizes deterministically.
		payloads := make([][]byte, len(cfg.PayloadSizes))
		for i, sz := range cfg.PayloadSizes {
			p := make([]byte, sz)
			for j := range p {
				p[j] = byte(j)
			}
			payloads[i] = p
		}
		k := 0
		inject := func(slot int) (wire.MsgID, wire.NodeID) {
			sender := senders[slot%len(senders)]
			p := payloads[k%len(payloads)]
			k++
			id := protos[sender].Broadcast(p)
			if obs != nil {
				obs.OnInject(eng.Now(), wire.NodeID(sender), id)
			}
			return id, wire.NodeID(sender)
		}
		if cfg.Arrival == loadgen.ClosedLoop {
			loadDriver.Bind(eng.Now, func(at time.Duration, fn func()) { eng.At(at, fn) }, inject)
			loadDriver.Start()
			return
		}
		// Open loop: the whole arrival schedule is materialized up front
		// from a dedicated RNG substream; senders round-robin by arrival.
		for i, at := range cfg.Times(eng.SubRand(0x10adc3)) {
			slot := i
			eng.At(at, func() { inject(slot) })
		}
		return
	}

	w := sc.Workload
	if w.Rate <= 0 || w.Senders <= 0 {
		return
	}
	var senders []int
	for i := 0; i < len(protos) && len(senders) < w.Senders; i++ {
		if correct[i] {
			senders = append(senders, i)
		}
	}
	if len(senders) == 0 {
		return
	}
	interval := time.Duration(float64(time.Second) / w.Rate)
	payload := make([]byte, w.PayloadSize)
	for i := range payload {
		payload[i] = byte(i)
	}
	rng := eng.SubRand(0xb0ad)
	k := 0
	for at := w.Start; at < w.End; {
		sender := senders[k%len(senders)]
		k++
		eng.At(at, func() {
			id := protos[sender].Broadcast(payload)
			if obs != nil {
				obs.OnInject(eng.Now(), wire.NodeID(sender), id)
			}
		})
		if w.Poisson {
			at += time.Duration(rng.ExpFloat64() * float64(interval))
		} else {
			at += interval
		}
	}
}

// RunInspect is Run with a post-run inspection hook over the core protocol
// instances (nil entries for baseline protocols); used by tests and the
// experiment harness to sample internal state before teardown.
func RunInspect(sc Scenario, inspect func(protos []*core.Protocol)) (Result, error) {
	debugInspect = inspect
	defer func() { debugInspect = nil }()
	return Run(sc)
}

var debugInspect func(protos []*core.Protocol)
