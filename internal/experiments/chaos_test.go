package experiments

import (
	"strings"
	"testing"
)

func TestChaosExperimentsQuick(t *testing.T) {
	cfg := quickCfg()

	churn := E12Churn(cfg)
	if len(churn.Rows) != 2 {
		t.Fatalf("E12 quick mode: %d rows, want 2", len(churn.Rows))
	}
	// The zero-churn baseline fires no faults; the churning arm fires some.
	if churn.Rows[0][1] != "0" {
		t.Errorf("baseline arm reports faults: %v", churn.Rows[0])
	}
	if churn.Rows[1][1] == "0" {
		t.Errorf("churn arm fired no faults: %v", churn.Rows[1])
	}
	// No invariant violations in either arm.
	for _, row := range churn.Rows {
		if row[len(row)-1] != "0" {
			t.Errorf("E12 arm reports violations: %v", row)
		}
	}

	ph := E13PartitionHeal(cfg)
	if len(ph.Rows) < 3 {
		t.Fatalf("E13 produced too few rows: %v", ph.Rows)
	}
	last := ph.Rows[len(ph.Rows)-1]
	if last[0] != "overall" || !strings.Contains(last[4], "violations 0") {
		t.Errorf("E13 overall row = %v", last)
	}
	for _, tab := range []Table{churn, ph} {
		for _, row := range tab.Rows {
			if len(row) != len(tab.Header) {
				t.Fatalf("%s row width mismatch: %v", tab.ID, row)
			}
		}
	}
}
