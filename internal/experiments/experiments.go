// Package experiments defines the paper-reproduction experiment suite
// (DESIGN.md E1–E10 plus ablations A1–A5). Each experiment runs a set of
// scenarios through the runner and renders one table; the benchmark harness
// in the repository root and cmd/bbexp both drive this package, so the
// numbers in EXPERIMENTS.md regenerate from either entry point.
package experiments

import (
	"fmt"
	"strings"
	"time"

	"bbcast/internal/overlay"
	"bbcast/internal/runner"
	"bbcast/internal/wire"
)

// Table is one experiment's output: paper-style rows of series × sweep.
type Table struct {
	ID     string
	Title  string
	Params string
	Header []string
	Rows   [][]string
}

// String renders the table as aligned text.
func (t Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	if t.Params != "" {
		fmt.Fprintf(&b, "   (%s)\n", t.Params)
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i < len(widths) {
				fmt.Fprintf(&b, "%-*s  ", widths[i], c)
			} else {
				b.WriteString(c)
			}
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	for _, row := range t.Rows {
		line(row)
	}
	return b.String()
}

// Config tunes the suite.
type Config struct {
	// Quick shrinks sweeps and durations for CI-speed smoke runs.
	Quick bool
	// Seed is the base seed; repeats derive replicate seeds from it via
	// runner.ReplicateSeed (SplitMix64), so per-replicate RNG streams are
	// decorrelated and independent of worker scheduling.
	Seed int64
	// Repeats is how many seeds each scenario is averaged over
	// (default: 3, or 1 in Quick mode).
	Repeats int
	// Parallel is how many simulations may run concurrently (the runner
	// pool's worker count); <= 0 means GOMAXPROCS. Parallelism never changes
	// results: each replicate is bit-identical at any worker count.
	Parallel int
}

// base returns the canonical scenario every experiment perturbs.
func (c Config) base() runner.Scenario {
	sc := runner.DefaultScenario()
	sc.Seed = c.Seed
	if sc.Seed == 0 {
		sc.Seed = 1
	}
	if c.Quick {
		sc.Workload.End = 35 * time.Second
		sc.Duration = 45 * time.Second
	}
	return sc
}

func (c Config) nSweep() []int {
	if c.Quick {
		return []int{25, 50}
	}
	return []int{25, 50, 75, 100}
}

// run executes the scenario across the configured repeats (replicate seeds
// derived via runner.ReplicateSeed) on the runner's worker pool and returns
// the seed-averaged result. Counter-like fields are averaged too, so every
// reported number is a per-seed mean.
func (c Config) run(sc runner.Scenario) runner.Result {
	repeats := c.Repeats
	if repeats <= 0 {
		repeats = 3
		if c.Quick {
			repeats = 1
		}
	}
	results, err := runner.Pool{Workers: c.Parallel}.RunReplicates(sc, repeats)
	if err != nil {
		// Experiment scenarios are constructed by this package; a failure
		// is a programming error, surfaced loudly.
		panic(fmt.Sprintf("experiment scenario failed: %v", err))
	}
	return runner.Average(results)
}

func f1(v float64) string       { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string       { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string       { return fmt.Sprintf("%.3f", v) }
func ms(d time.Duration) string { return fmt.Sprintf("%d", d.Milliseconds()) }
func itoa(v int) string         { return fmt.Sprintf("%d", v) }
func u64(v uint64) string       { return fmt.Sprintf("%d", v) }
func perMsg(v uint64, n int) string {
	if n == 0 {
		return "0"
	}
	return f1(float64(v) / float64(n))
}

// E1MessageOverhead measures transmissions per message vs. network size for
// the three protocols (failure-free). Expected shape: ByzCast's data cost
// tracks the (flat) overlay size while flooding grows linearly with n; the
// f+1 baseline pays (f+1) overlays.
func E1MessageOverhead(c Config) Table {
	t := Table{
		ID:     "E1",
		Title:  "message overhead vs. network size (failure-free)",
		Params: "1000x1000 m, range 250 m, rate 1 msg/s, f=2",
		Header: []string{"n", "protocol", "tx/msg", "data/msg", "gossip/msg", "bytes/msg", "delivery", "hops-p50", "rec-share"},
	}
	for _, n := range c.nSweep() {
		for _, proto := range []runner.Protocol{runner.ProtoByzCast, runner.ProtoFlooding, runner.ProtoFPlusOne} {
			sc := c.base()
			sc.N = n
			sc.Protocol = proto
			res := c.run(sc)
			t.Rows = append(t.Rows, []string{
				itoa(n), proto.String(),
				f1(res.TxPerMessage),
				perMsg(res.TxByKind[wire.KindData], res.Injected),
				perMsg(res.TxByKind[wire.KindGossip], res.Injected),
				perMsg(res.BytesOnAir, res.Injected),
				f3(res.DeliveryRatio),
				f1(res.HopP50), f3(res.RecoveryShare),
			})
		}
	}
	return t
}

// E2Delivery measures the delivery ratio vs. network size (failure-free).
func E2Delivery(c Config) Table {
	t := Table{
		ID:     "E2",
		Title:  "delivery ratio vs. network size (failure-free)",
		Params: "as E1",
		Header: []string{"n", "byzcast", "flooding", "f+1"},
	}
	for _, n := range c.nSweep() {
		row := []string{itoa(n)}
		for _, proto := range []runner.Protocol{runner.ProtoByzCast, runner.ProtoFlooding, runner.ProtoFPlusOne} {
			sc := c.base()
			sc.N = n
			sc.Protocol = proto
			row = append(row, f3(c.run(sc).DeliveryRatio))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// E3Latency measures dissemination latency vs. network size (failure-free).
func E3Latency(c Config) Table {
	t := Table{
		ID:     "E3",
		Title:  "dissemination latency vs. network size (failure-free)",
		Params: "as E1; milliseconds",
		Header: []string{"n", "protocol", "mean", "p50", "p95", "max"},
	}
	for _, n := range c.nSweep() {
		for _, proto := range []runner.Protocol{runner.ProtoByzCast, runner.ProtoFlooding} {
			sc := c.base()
			sc.N = n
			sc.Protocol = proto
			res := c.run(sc)
			t.Rows = append(t.Rows, []string{
				itoa(n), proto.String(),
				ms(res.LatMean), ms(res.LatP50), ms(res.LatP95), ms(res.LatMax),
			})
		}
	}
	return t
}

func (c Config) muteCounts() []int {
	if c.Quick {
		return []int{0, 8}
	}
	return []int{0, 4, 8, 12, 15}
}

// E4MuteDelivery measures delivery under mute Byzantine overlay nodes — the
// paper's central claim: gossip recovery keeps delivery high where a pure
// overlay (or flooding with losses) degrades.
func E4MuteDelivery(c Config) Table {
	t := Table{
		ID:     "E4",
		Title:  "delivery under mute Byzantine overlay nodes",
		Params: "n=75, mute nodes placed on would-be dominators",
		Header: []string{"mute", "byzcast+fd", "byzcast-fd", "flooding", "detected(+fd)"},
	}
	for _, count := range c.muteCounts() {
		row := []string{itoa(count)}
		var detected int
		for _, arm := range []string{"fd", "nofd", "flood"} {
			sc := c.base()
			sc.N = 75
			if count > 0 {
				sc.Adversaries = []runner.Adversaries{{Kind: runner.AdvMute, Count: count}}
				sc.Placement = runner.PlaceDominators
			}
			switch arm {
			case "nofd":
				sc.Core.EnableFDs = false
			case "flood":
				sc.Protocol = runner.ProtoFlooding
			}
			res := c.run(sc)
			row = append(row, f3(res.DeliveryRatio))
			if arm == "fd" {
				detected = res.AdversariesDetected
			}
		}
		row = append(row, itoa(detected))
		t.Rows = append(t.Rows, row)
	}
	return t
}

// E5MuteLatency measures recovery latency under mute failures, with and
// without the failure detectors.
func E5MuteLatency(c Config) Table {
	t := Table{
		ID:     "E5",
		Title:  "latency under mute Byzantine overlay nodes (ms)",
		Params: "n=75, dominator placement; FDs evict mute nodes from the overlay",
		Header: []string{"mute", "mean(+fd)", "p95(+fd)", "mean(-fd)", "p95(-fd)"},
	}
	for _, count := range c.muteCounts() {
		row := []string{itoa(count)}
		for _, fds := range []bool{true, false} {
			sc := c.base()
			sc.N = 75
			if count > 0 {
				sc.Adversaries = []runner.Adversaries{{Kind: runner.AdvMute, Count: count}}
				sc.Placement = runner.PlaceDominators
			}
			sc.Core.EnableFDs = fds
			if !c.Quick {
				sc.Workload.End = 90 * time.Second
				sc.Duration = 105 * time.Second
			}
			res := c.run(sc)
			row = append(row, ms(res.LatMean), ms(res.LatP95))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// E6OverlayCompare contrasts the CDS and MIS+B maintainers.
func E6OverlayCompare(c Config) Table {
	t := Table{
		ID:     "E6",
		Title:  "overlay maintainers: CDS vs MIS+B",
		Params: "failure-free",
		Header: []string{"n", "overlay", "size", "tx/msg", "delivery", "lat-p95(ms)"},
	}
	for _, n := range c.nSweep() {
		for _, kind := range []overlay.Kind{overlay.CDS, overlay.MISB} {
			sc := c.base()
			sc.N = n
			sc.Core.Overlay = kind
			res := c.run(sc)
			t.Rows = append(t.Rows, []string{
				itoa(n), overlay.New(kind).Name(), itoa(res.OverlaySize),
				f1(res.TxPerMessage), f3(res.DeliveryRatio), ms(res.LatP95),
			})
		}
	}
	return t
}

// E7Breakdown reports per-kind transmission counts, failure-free vs. under
// mute attack — showing where the protocol's overhead goes.
func E7Breakdown(c Config) Table {
	t := Table{
		ID:     "E7",
		Title:  "transmission breakdown by packet kind",
		Params: "n=75",
		Header: []string{"scenario", "data", "gossip", "request", "find-missing", "total"},
	}
	for _, arm := range []struct {
		label string
		mute  int
	}{{"failure-free", 0}, {"8 mute dominators", 8}} {
		sc := c.base()
		sc.N = 75
		if arm.mute > 0 {
			sc.Adversaries = []runner.Adversaries{{Kind: runner.AdvMute, Count: arm.mute}}
			sc.Placement = runner.PlaceDominators
		}
		res := c.run(sc)
		t.Rows = append(t.Rows, []string{
			arm.label,
			u64(res.TxByKind[wire.KindData]),
			u64(res.TxByKind[wire.KindGossip]),
			u64(res.TxByKind[wire.KindRequest]),
			u64(res.TxByKind[wire.KindFindMissing]),
			u64(res.TotalTx),
		})
	}
	return t
}

// E8Mobility measures delivery and latency vs. node speed (random waypoint).
func E8Mobility(c Config) Table {
	t := Table{
		ID:     "E8",
		Title:  "mobility: delivery and latency vs. node speed",
		Params: "n=75, random waypoint, pause 2 s",
		Header: []string{"speed(m/s)", "protocol", "delivery", "lat-mean(ms)", "lat-p95(ms)"},
	}
	speeds := []float64{0, 1, 5, 10, 20}
	if c.Quick {
		speeds = []float64{0, 10}
	}
	for _, speed := range speeds {
		for _, proto := range []runner.Protocol{runner.ProtoByzCast, runner.ProtoFlooding} {
			sc := c.base()
			sc.N = 75
			sc.Protocol = proto
			if speed > 0 {
				sc.Mobility = runner.MobWaypoint
				sc.Speed = speed
				sc.Pause = 2 * time.Second
			}
			res := c.run(sc)
			t.Rows = append(t.Rows, []string{
				f1(speed), proto.String(), f3(res.DeliveryRatio),
				ms(res.LatMean), ms(res.LatP95),
			})
		}
	}
	return t
}

// E9Verbose measures the damage of verbose (request-spam) attackers with and
// without the VERBOSE failure detector.
func E9Verbose(c Config) Table {
	t := Table{
		ID:     "E9",
		Title:  "verbose attackers: reaction traffic with and without FDs",
		Params: "n=75; spammers replay valid requests",
		Header: []string{"verbose", "arm", "tx/msg", "delivery", "detected"},
	}
	counts := []int{0, 1, 3, 5}
	if c.Quick {
		counts = []int{0, 3}
	}
	for _, count := range counts {
		for _, fds := range []bool{true, false} {
			sc := c.base()
			sc.N = 75
			if count > 0 {
				sc.Adversaries = []runner.Adversaries{{Kind: runner.AdvVerbose, Count: count}}
			}
			sc.Core.EnableFDs = fds
			res := c.run(sc)
			arm := "+fd"
			if !fds {
				arm = "-fd"
			}
			t.Rows = append(t.Rows, []string{
				itoa(count), arm, f1(res.TxPerMessage), f3(res.DeliveryRatio),
				itoa(res.AdversariesDetected),
			})
		}
	}
	return t
}

// E10FPlusOne shows the §1 claim: the f+1-overlays baseline pays (f+1)×
// while ByzCast's failure-free cost is one overlay regardless of f.
func E10FPlusOne(c Config) Table {
	t := Table{
		ID:     "E10",
		Title:  "cost scaling vs. tolerated failures f (failure-free)",
		Params: "n=75; byzcast row is f-independent (tolerates any f with one correct node per neighbourhood)",
		Header: []string{"protocol", "f", "tx/msg", "data/msg", "delivery"},
	}
	byz := c.base()
	byz.N = 75
	byzRes := c.run(byz)
	t.Rows = append(t.Rows, []string{
		"byzcast", "any", f1(byzRes.TxPerMessage),
		perMsg(byzRes.TxByKind[wire.KindData], byzRes.Injected),
		f3(byzRes.DeliveryRatio),
	})
	fs := []int{0, 1, 2, 3, 4}
	if c.Quick {
		fs = []int{0, 2}
	}
	for _, f := range fs {
		sc := c.base()
		sc.N = 75
		sc.Protocol = runner.ProtoFPlusOne
		sc.F = f
		res := c.run(sc)
		t.Rows = append(t.Rows, []string{
			"f+1", itoa(f), f1(res.TxPerMessage),
			perMsg(res.TxByKind[wire.KindData], res.Injected),
			f3(res.DeliveryRatio),
		})
	}
	return t
}
