package experiments

import (
	"fmt"
	"time"

	"bbcast/internal/invariant"
	"bbcast/internal/loadgen"
	"bbcast/internal/runner"
)

// KneeThreshold is the delivery ratio an offered load must sustain to count
// as below the knee: the knee is the highest swept rate still at or above it.
const KneeThreshold = 0.95

// kneeRates is the offered-load sweep in messages/second network-wide.
func (c Config) kneeRates() []float64 {
	if c.Quick {
		return []float64{2, 8, 32}
	}
	return []float64{1, 2, 4, 8, 16, 32, 64, 128}
}

// kneeScenario builds the load-generator scenario for one offered rate. The
// runtime invariant checker is disabled: saturating the channel on purpose
// violates liveness-style invariants by design, and the measurement of
// interest is delivery/latency degradation, not protocol correctness.
func (c Config) kneeScenario(rate float64, arrival loadgen.Arrival) runner.Scenario {
	sc := c.base()
	sc.Name = fmt.Sprintf("knee-%s-%g", arrival, rate)
	sc.N = 50
	sc.Invariants = invariant.Config{}
	window := 30 * time.Second
	drain := 15 * time.Second
	senders := 25
	if c.Quick {
		sc.N = 40
		window = 15 * time.Second
		drain = 10 * time.Second
		senders = 20
	}
	start := 15 * time.Second
	sc.LoadGen = &loadgen.Config{
		Senders:      senders,
		PayloadSizes: []int{256},
		Arrival:      arrival,
		Start:        start,
		Steps:        []loadgen.Step{{Rate: rate, Duration: window}},
		Window:       2,
		Quorum:       KneeThreshold,
		Timeout:      5 * time.Second,
	}
	sc.Workload = runner.Workload{} // loadgen replaces the fixed-rate workload
	sc.Duration = start + window + drain
	return sc
}

// KneePoint is one measured offered-load level of the knee sweep.
type KneePoint struct {
	OfferedRate   float64 // msgs/s network-wide (0 for the closed-loop arm)
	Arrival       string
	Injected      int
	DeliveryRatio float64
	GoodputMsgS   float64 // delivered msgs/s: injected × delivery / window
	LatP50        time.Duration
	LatP99        time.Duration
	BytesPerMsg   float64
}

// kneeSweep runs the offered-load sweep plus a closed-loop reference arm and
// returns the measured points. The closed-loop arm self-clocks (each sender
// keeps two messages outstanding, completing at 95% coverage), so its goodput
// reads out the sustainable throughput directly.
func (c Config) kneeSweep() []KneePoint {
	var points []KneePoint
	measure := func(rate float64, arrival loadgen.Arrival) {
		sc := c.kneeScenario(rate, arrival)
		window := sc.LoadGen.End() - sc.LoadGen.Start
		res := c.run(sc)
		p := KneePoint{
			OfferedRate:   rate,
			Arrival:       arrival.String(),
			Injected:      res.Injected,
			DeliveryRatio: res.DeliveryRatio,
			GoodputMsgS:   float64(res.Injected) * res.DeliveryRatio / window.Seconds(),
			LatP50:        res.LatP50,
			LatP99:        res.LatP99,
		}
		if res.Injected > 0 {
			p.BytesPerMsg = float64(res.BytesOnAir) / float64(res.Injected)
		}
		points = append(points, p)
	}
	for _, rate := range c.kneeRates() {
		measure(rate, loadgen.Poisson)
	}
	measure(0, loadgen.ClosedLoop)
	return points
}

// LocateKnee returns the index of the knee point: the highest open-loop
// offered rate whose delivery ratio is still at or above the threshold
// (-1 when even the lowest rate is below it).
func LocateKnee(points []KneePoint, threshold float64) int {
	knee := -1
	for i, p := range points {
		if p.OfferedRate > 0 && p.DeliveryRatio >= threshold {
			if knee < 0 || p.OfferedRate > points[knee].OfferedRate {
				knee = i
			}
		}
	}
	return knee
}

// E16Knee sweeps offered load with the load generator to locate the
// protocol's throughput knee: delivery stays ≈1 and goodput tracks offered
// load up to a point, past which delivery degrades and p99 latency blows up.
// A closed-loop arm (senders self-clocked by delivery) reads out the maximum
// sustained delivery throughput directly.
func E16Knee(c Config) Table {
	points := c.kneeSweep()
	knee := LocateKnee(points, KneeThreshold)
	t := Table{
		ID:    "E16",
		Title: "throughput knee: delivery and latency vs offered load",
		Params: fmt.Sprintf("poisson arrivals over concurrent senders, payload 256 B; knee = highest offered load sustaining delivery >= %.2f",
			KneeThreshold),
		Header: []string{"offered(msg/s)", "arrival", "injected", "delivery", "goodput(msg/s)", "lat-p50(ms)", "lat-p99(ms)", "bytes/msg", "knee"},
	}
	for i, p := range points {
		offered := f1(p.OfferedRate)
		if p.OfferedRate == 0 {
			offered = "self-clocked"
		}
		mark := ""
		if i == knee {
			mark = "<= knee"
		}
		t.Rows = append(t.Rows, []string{
			offered, p.Arrival, itoa(p.Injected), f3(p.DeliveryRatio), f1(p.GoodputMsgS),
			ms(p.LatP50), ms(p.LatP99), f1(p.BytesPerMsg), mark,
		})
	}
	return t
}
