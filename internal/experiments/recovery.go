package experiments

import (
	"time"

	"bbcast/internal/faultplan"
)

// E17AmnesiaRecovery measures what durable state and catch-up sync buy under
// amnesiac churn. Nodes crash losing all volatile state (wipe), stay down
// longer than the gossip advertisement window (so plain gossip recovery
// cannot backfill what they missed) but shorter than the payload purge
// timeout (so a neighbour still holds the payloads a rejoiner asks for).
// Three arms: no durable state at all, persistence alone (dedup and sequence
// safety, but missed messages stay missed), and persistence plus catch-up
// sync (missed messages bulk-recovered from one neighbour). The invariant
// checker — including the wipe-aware at-most-once check — runs on every arm.
func E17AmnesiaRecovery(c Config) Table {
	t := Table{
		ID:     "E17",
		Title:  "crash-amnesia recovery: durable state and catch-up sync under churn",
		Params: "n=75, churn wipes volatile state, downtime > gossip retention, invariants on",
		Header: []string{"arm", "rejoins", "delivery", "rejoin-lat(ms)", "sync-KB", "violations"},
	}
	downtime := 20 * time.Second
	if c.Quick {
		downtime = 14 * time.Second // still past the 10s gossip retention
	}
	arms := []struct {
		name             string
		persist, catchup bool
	}{
		{"amnesia-no-persist", false, false},
		{"persist-only", true, false},
		{"persist+catch-up", true, true},
	}
	for _, arm := range arms {
		sc := c.base()
		sc.N = 75
		sc.Core.Persist = arm.persist
		sc.Core.CatchUpSync = arm.catchup
		sc.FaultPlan = &faultplan.Plan{Churn: &faultplan.Churn{
			Rate:     0.2,
			Start:    sc.Workload.Start,
			End:      sc.Workload.End,
			Downtime: downtime,
			Wipe:     true,
			// Keep the senders alive so every arm injects the same load.
			Exclude: senderIDs(sc),
		}}
		res := c.run(sc)
		t.Rows = append(t.Rows, []string{
			arm.name, itoa(int(res.Rejoins)), f3(res.DeliveryRatio),
			ms(res.RejoinLatMean), f1(float64(res.SyncBytes) / 1024),
			itoa(len(res.Violations)),
		})
	}
	return t
}
