package experiments

import (
	"time"

	"bbcast/internal/faultplan"
	"bbcast/internal/runner"
)

// E15HostileLinks crosses hostile-link conditions (Gilbert–Elliott burst
// loss, delivery jitter, asymmetric degradation, plus an equivocating
// adversary on top) with the timing mode: the adaptive arm runs the full
// ISSUE-6 layer (link-quality-driven AIMD timers + bounded retransmission),
// the static arm pins the pre-adaptive behaviour (fixed timers, no
// retransmission chain). The invariant checker runs on every arm with the
// timer-bounds probe armed, so "violations 0" certifies both agreement and
// that the adaptive timers never left their configured bounds. The headline
// is graceful degradation: under burst loss the adaptive arm holds delivery
// where the static baseline collapses.
func E15HostileLinks(c Config) Table {
	t := Table{
		ID:     "E15",
		Title:  "hostile links: adaptive vs static timing under burst loss, jitter and asymmetry",
		Params: "n=75, GE blackout bursts ~2s, ~74% mean loss, invariants + timer bounds on",
		Header: []string{"condition", "timing", "delivery", "lat-p95(ms)", "adaptations", "retries", "abandoned", "violations"},
	}
	type condition struct {
		label  string
		events []faultplan.Kind
		equiv  bool
	}
	conds := []condition{
		{"clean", nil, false},
		{"burst-loss", []faultplan.Kind{faultplan.BurstLoss}, false},
		{"burst+jitter", []faultplan.Kind{faultplan.BurstLoss, faultplan.Jitter}, false},
		{"burst+asym", []faultplan.Kind{faultplan.BurstLoss, faultplan.AsymDegrade}, false},
		{"burst+jitter+equiv", []faultplan.Kind{faultplan.BurstLoss, faultplan.Jitter}, true},
	}
	if c.Quick {
		conds = conds[:2]
	}
	for _, cond := range conds {
		for _, adaptive := range []bool{true, false} {
			sc := c.base()
			sc.N = 75
			sc.Core.AdaptiveTiming = adaptive
			if !adaptive {
				// The static baseline is the pre-adaptive protocol: fixed
				// timers and no retransmission chain.
				sc.Core.RetryMaxAttempts = 0
			}
			if len(cond.events) > 0 {
				sc.FaultPlan = &faultplan.Plan{Events: hostileEvents(sc, cond.events)}
			}
			if cond.equiv {
				sc.Adversaries = []runner.Adversaries{{Kind: runner.AdvEquivocate, Count: 2}}
			}
			res := c.run(sc)
			label := "static"
			if adaptive {
				label = "adaptive"
			}
			t.Rows = append(t.Rows, []string{
				cond.label, label,
				f3(res.DeliveryRatio), ms(res.LatP95),
				u64(res.Node.Adaptations), u64(res.Node.RetriesSent),
				u64(res.Node.RetriesAbandoned), itoa(len(res.Violations)),
			})
		}
	}
	return t
}

// hostileEvents builds the fault-plan events for one E15 condition: each
// requested hostile-link kind switches on shortly after the workload starts
// and stays hostile through the drain — recovery has to happen over the bad
// channel, not on a conveniently clean tail.
func hostileEvents(sc runner.Scenario, kinds []faultplan.Kind) []faultplan.Event {
	start := sc.Workload.Start + 5*time.Second
	dur := sc.Duration - start
	var out []faultplan.Event
	for _, k := range kinds {
		e := faultplan.Event{At: start, Kind: k, Duration: dur}
		switch k {
		case faultplan.BurstLoss:
			e.LossFactor = 1
			e.MeanBad = 2 * time.Second
			e.MeanGood = 700 * time.Millisecond
		case faultplan.Jitter:
			e.MaxJitter = 80 * time.Millisecond
		case faultplan.AsymDegrade:
			e.LossFactor = 0.3
		}
		out = append(out, e)
	}
	return out
}
