package experiments

import (
	"time"

	"bbcast/internal/faultplan"
	"bbcast/internal/runner"
)

// E15HostileLinks crosses hostile-link conditions (Gilbert–Elliott burst
// loss, delivery jitter, asymmetric degradation, plus an equivocating
// adversary on top) with the timing mode: the adaptive arm runs the full
// ISSUE-6 layer (link-quality-driven AIMD timers + bounded retransmission),
// the static arm pins the pre-adaptive behaviour (fixed timers, no
// retransmission chain). The invariant checker runs on every arm with the
// timer-bounds probe armed, so "violations 0" certifies both agreement and
// that the adaptive timers never left their configured bounds. The headline
// is graceful degradation: under burst loss the adaptive arm holds delivery
// where the static baseline collapses.
func E15HostileLinks(c Config) Table {
	t, _ := e15HostileTables(c)
	return t
}

// E15Lineage is the delivery-forensics companion to E15: the same arms, but
// every delivery attributed to its path. "data-path" deliveries arrived
// purely over the overlay relay chain; "recovery" deliveries carry the
// sticky recovered bit (the payload crossed a gossip-repair hop somewhere
// upstream), and rec-share is their fraction of remote deliveries. The hop
// columns summarize the accepting frame's relay depth per arm. Expected
// shape: hostile conditions push rec-share up and stretch the hop tail, and
// the adaptive arm converts would-be losses into recovery deliveries.
func E15Lineage(c Config) Table {
	_, t := e15HostileTables(c)
	return t
}

// e15HostileTables runs the E15 arms once and renders both views of the same
// results (headline degradation table, lineage attribution table).
func e15HostileTables(c Config) (Table, Table) {
	t := Table{
		ID:     "E15",
		Title:  "hostile links: adaptive vs static timing under burst loss, jitter and asymmetry",
		Params: "n=75, GE blackout bursts ~2s, ~74% mean loss, invariants + timer bounds on",
		Header: []string{"condition", "timing", "delivery", "lat-p95(ms)", "adaptations", "retries", "abandoned", "violations"},
	}
	lt := Table{
		ID:     "E15L",
		Title:  "hostile links: delivery lineage — data-path vs gossip-recovery attribution per arm",
		Params: "as E15; counts are per-seed means over remote deliveries",
		Header: []string{"condition", "timing", "deliveries", "data-path", "recovery", "rec-share", "hops-mean", "hops-p50", "hops-p95", "hops-max"},
	}
	type condition struct {
		label  string
		events []faultplan.Kind
		equiv  bool
	}
	conds := []condition{
		{"clean", nil, false},
		{"burst-loss", []faultplan.Kind{faultplan.BurstLoss}, false},
		{"burst+jitter", []faultplan.Kind{faultplan.BurstLoss, faultplan.Jitter}, false},
		{"burst+asym", []faultplan.Kind{faultplan.BurstLoss, faultplan.AsymDegrade}, false},
		{"burst+jitter+equiv", []faultplan.Kind{faultplan.BurstLoss, faultplan.Jitter}, true},
	}
	if c.Quick {
		conds = conds[:2]
	}
	for _, cond := range conds {
		for _, adaptive := range []bool{true, false} {
			sc := c.base()
			sc.N = 75
			sc.Core.AdaptiveTiming = adaptive
			if !adaptive {
				// The static baseline is the pre-adaptive protocol: fixed
				// timers and no retransmission chain.
				sc.Core.RetryMaxAttempts = 0
			}
			if len(cond.events) > 0 {
				sc.FaultPlan = &faultplan.Plan{Events: hostileEvents(sc, cond.events)}
			}
			if cond.equiv {
				sc.Adversaries = []runner.Adversaries{{Kind: runner.AdvEquivocate, Count: 2}}
			}
			res := c.run(sc)
			label := "static"
			if adaptive {
				label = "adaptive"
			}
			t.Rows = append(t.Rows, []string{
				cond.label, label,
				f3(res.DeliveryRatio), ms(res.LatP95),
				u64(res.Node.Adaptations), u64(res.Node.RetriesSent),
				u64(res.Node.RetriesAbandoned), itoa(len(res.Violations)),
			})
			lt.Rows = append(lt.Rows, []string{
				cond.label, label,
				u64(res.RemoteDeliveries),
				u64(res.RemoteDeliveries - res.RecoveryDeliveries),
				u64(res.RecoveryDeliveries),
				f3(res.RecoveryShare),
				f1(res.HopMean), f1(res.HopP50), f1(res.HopP95), f1(res.HopMax),
			})
		}
	}
	return t, lt
}

// hostileEvents builds the fault-plan events for one E15 condition: each
// requested hostile-link kind switches on shortly after the workload starts
// and stays hostile through the drain — recovery has to happen over the bad
// channel, not on a conveniently clean tail.
func hostileEvents(sc runner.Scenario, kinds []faultplan.Kind) []faultplan.Event {
	start := sc.Workload.Start + 5*time.Second
	dur := sc.Duration - start
	var out []faultplan.Event
	for _, k := range kinds {
		e := faultplan.Event{At: start, Kind: k, Duration: dur}
		switch k {
		case faultplan.BurstLoss:
			e.LossFactor = 1
			e.MeanBad = 2 * time.Second
			e.MeanGood = 700 * time.Millisecond
		case faultplan.Jitter:
			e.MaxJitter = 80 * time.Millisecond
		case faultplan.AsymDegrade:
			e.LossFactor = 0.3
		}
		out = append(out, e)
	}
	return out
}
