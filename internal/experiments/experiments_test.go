package experiments

import (
	"strconv"
	"strings"
	"testing"
	"time"

	"bbcast/internal/runner"
)

func quickCfg() Config { return Config{Quick: true, Seed: 1, Repeats: 1} }

func TestTableRendering(t *testing.T) {
	tab := Table{
		ID:     "T",
		Title:  "demo",
		Params: "p",
		Header: []string{"a", "long-header"},
		Rows:   [][]string{{"1", "2"}, {"333333333333", "4"}},
	}
	out := tab.String()
	if !strings.Contains(out, "== T: demo ==") || !strings.Contains(out, "(p)") {
		t.Fatalf("header missing:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 {
		t.Fatalf("lines = %d, want 5", len(lines))
	}
	// Columns align: the header's second column starts where row cells do.
	if !strings.Contains(lines[2], "long-header") && !strings.Contains(lines[2], "a") {
		t.Fatalf("unexpected table body: %q", lines[2])
	}
}

func TestByIDAndIDsAgree(t *testing.T) {
	for _, id := range IDs() {
		if _, ok := byIDFns()[id]; !ok {
			t.Errorf("IDs() lists %q but ByID cannot resolve it", id)
		}
	}
	if _, ok := ByID("nope", quickCfg()); ok {
		t.Error("ByID resolved a bogus id")
	}
}

// byIDFns mirrors ByID's registry without running anything.
func byIDFns() map[string]bool {
	out := map[string]bool{}
	for _, id := range IDs() {
		out[id] = true
	}
	return out
}

func TestQuickExperimentsProduceRows(t *testing.T) {
	// Run a representative subset end to end in quick mode; each must yield
	// a plausibly sized table with non-empty cells.
	cfg := quickCfg()
	for _, id := range []string{"E2", "E7", "A2"} {
		tab, ok := ByID(id, cfg)
		if !ok {
			t.Fatalf("experiment %s missing", id)
		}
		if len(tab.Rows) == 0 {
			t.Fatalf("%s produced no rows", id)
		}
		for _, row := range tab.Rows {
			if len(row) != len(tab.Header) {
				t.Fatalf("%s row width %d != header width %d", id, len(row), len(tab.Header))
			}
			for _, cell := range row {
				if cell == "" {
					t.Fatalf("%s has an empty cell in %v", id, row)
				}
			}
		}
	}
}

func TestE2DeliveryValuesParse(t *testing.T) {
	tab := E2Delivery(quickCfg())
	for _, row := range tab.Rows {
		for _, cell := range row[1:] {
			v, err := strconv.ParseFloat(cell, 64)
			if err != nil {
				t.Fatalf("unparseable delivery %q", cell)
			}
			if v < 0 || v > 1 {
				t.Fatalf("delivery %v out of range", v)
			}
		}
	}
}

func TestAverageReducesResults(t *testing.T) {
	a := runner.Result{}
	a.DeliveryRatio = 1.0
	a.LatMean = 100 * time.Millisecond
	a.TotalTx = 100
	a.OverlaySize = 10
	b := runner.Result{}
	b.DeliveryRatio = 0.5
	b.LatMean = 200 * time.Millisecond
	b.TotalTx = 200
	b.OverlaySize = 20
	avg := runner.Average([]runner.Result{a, b})
	if avg.DeliveryRatio != 0.75 {
		t.Fatalf("delivery = %v", avg.DeliveryRatio)
	}
	if avg.LatMean != 150*time.Millisecond {
		t.Fatalf("latency = %v", avg.LatMean)
	}
	if avg.TotalTx != 150 || avg.OverlaySize != 15 {
		t.Fatalf("tx = %d overlay = %d", avg.TotalTx, avg.OverlaySize)
	}
}

func TestAverageSingleIsIdentity(t *testing.T) {
	r := runner.Result{}
	r.DeliveryRatio = 0.9
	if got := runner.Average([]runner.Result{r}); got.DeliveryRatio != 0.9 {
		t.Fatal("single-element average altered the result")
	}
}

func TestAllQuickTablesEndToEnd(t *testing.T) {
	// Run the complete suite in quick mode: every experiment must produce a
	// well-formed table. Slow (~2 min); skipped with -short.
	if testing.Short() {
		t.Skip("full quick-suite run skipped in -short mode")
	}
	for _, tab := range All(quickCfg()) {
		if len(tab.Rows) == 0 {
			t.Errorf("%s produced no rows", tab.ID)
		}
		if tab.String() == "" {
			t.Errorf("%s renders empty", tab.ID)
		}
		for _, row := range tab.Rows {
			if len(row) != len(tab.Header) {
				t.Errorf("%s row/header width mismatch", tab.ID)
			}
		}
	}
}
