package experiments

import (
	"time"

	"bbcast/internal/faultplan"
	"bbcast/internal/runner"
	"bbcast/internal/wire"
)

// E12Churn sweeps the node churn rate: nodes crash at random and come back
// ten seconds later, so the overlay must keep re-electing dominators while
// the gossip layer backfills whatever the departed nodes missed. The
// invariant checker runs on every arm; a violation count above zero means
// the protocol broke one of its promises, not just that delivery dipped.
func E12Churn(c Config) Table {
	t := Table{
		ID:     "E12",
		Title:  "churn sweep: crash/recover pairs at increasing rate",
		Params: "n=75, downtime 10s per crash, invariants on",
		Header: []string{"churn(node/s)", "faults", "delivery", "lat-p95(ms)", "tx/msg", "violations"},
	}
	rates := []float64{0, 0.05, 0.1, 0.2, 0.4}
	if c.Quick {
		rates = []float64{0, 0.2}
	}
	for _, rate := range rates {
		sc := c.base()
		sc.N = 75
		if rate > 0 {
			sc.FaultPlan = &faultplan.Plan{Churn: &faultplan.Churn{
				Rate:  rate,
				Start: sc.Workload.Start,
				End:   sc.Workload.End,
				// Keep the senders alive so every arm injects the same load.
				Exclude: senderIDs(sc),
			}}
		}
		res := c.run(sc)
		t.Rows = append(t.Rows, []string{
			f2(rate), itoa(len(res.FaultEvents)), f3(res.DeliveryRatio),
			ms(res.LatP95), f1(res.TxPerMessage), itoa(len(res.Violations)),
		})
	}
	return t
}

// E13PartitionHeal splits the network in half mid-run and heals it later,
// reporting delivery per time window so the dip and the post-heal backfill
// are visible next to the fault timeline. Cross-partition messages are
// exempt from the validity invariant while the split lasts; after the heal
// the overlay must re-cover the whole network within the recovery window.
func E13PartitionHeal(c Config) Table {
	t := Table{
		ID:     "E13",
		Title:  "partition/heal timeline: delivery per window around the split",
		Params: "n=75, halves split mid-run, invariants on",
		Header: []string{"window", "samples", "lat-mean(ms)", "lat-p95(ms)", "faults-so-far"},
	}
	sc := c.base()
	sc.N = 75
	bucket := 20 * time.Second
	partAt, healAt := 40*time.Second, 100*time.Second
	sc.Workload.End = 140 * time.Second
	sc.Duration = 155 * time.Second
	if c.Quick {
		bucket = 15 * time.Second
		partAt, healAt = 20*time.Second, 45*time.Second
		sc.Workload.End = 60 * time.Second
		sc.Duration = 75 * time.Second
	}
	var left []wire.NodeID
	for i := 0; i < sc.N/2; i++ {
		left = append(left, wire.NodeID(i))
	}
	sc.FaultPlan = &faultplan.Plan{Events: []faultplan.Event{
		{At: partAt, Kind: faultplan.Partition, Groups: [][]wire.NodeID{left}},
		{At: healAt, Kind: faultplan.Heal},
	}}
	sc.LatencyBucket = bucket
	res := c.run(sc)
	for _, b := range res.Timeline {
		faults := 0
		for _, e := range res.FaultEvents {
			if e.At < b.Start+bucket {
				faults++
			}
		}
		t.Rows = append(t.Rows, []string{
			b.Start.String(), itoa(b.Count), ms(b.Mean), ms(b.P95), itoa(faults),
		})
	}
	t.Rows = append(t.Rows, []string{
		"overall", "delivery " + f3(res.DeliveryRatio), "-", "-",
		"violations " + itoa(len(res.Violations)),
	})
	return t
}

// senderIDs lists the workload's sender nodes (the lowest ids, per the
// runner's round-robin assignment).
func senderIDs(sc runner.Scenario) []wire.NodeID {
	out := make([]wire.NodeID, sc.Workload.Senders)
	for i := range out {
		out[i] = wire.NodeID(i)
	}
	return out
}
