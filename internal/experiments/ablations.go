package experiments

import (
	"bbcast/internal/runner"
	"bbcast/internal/wire"
)

// A1GossipAggregation ablates the §1 optimization of aggregating several
// signature advertisements into one gossip packet.
func A1GossipAggregation(c Config) Table {
	t := Table{
		ID:     "A1",
		Title:  "ablation: gossip aggregation",
		Params: "n=75, rate 5 msg/s (aggregation matters under load)",
		Header: []string{"aggregation", "gossip-packets", "tx/msg", "bytes/msg", "delivery"},
	}
	for _, agg := range []bool{true, false} {
		sc := c.base()
		sc.N = 75
		sc.Workload.Rate = 5
		sc.Core.GossipAggregation = agg
		res := c.run(sc)
		label := "on"
		if !agg {
			label = "off"
		}
		t.Rows = append(t.Rows, []string{
			label,
			u64(res.TxByKind[wire.KindGossip]),
			f1(res.TxPerMessage),
			perMsg(res.BytesOnAir, res.Injected),
			f3(res.DeliveryRatio),
		})
	}
	return t
}

// A2Recovery ablates the gossip-request recovery path under mute attack:
// without it the overlay's holes go unfilled (the cost of an efficient
// overlay that §1 warns about).
func A2Recovery(c Config) Table {
	t := Table{
		ID:     "A2",
		Title:  "ablation: gossip recovery under mute attack",
		Params: "n=75, 8 mute dominators",
		Header: []string{"recovery", "delivery", "lat-p95(ms)", "tx/msg"},
	}
	for _, rec := range []bool{true, false} {
		sc := c.base()
		sc.N = 75
		sc.Adversaries = []runner.Adversaries{{Kind: runner.AdvMute, Count: 8}}
		sc.Placement = runner.PlaceDominators
		sc.Core.EnableRecovery = rec
		res := c.run(sc)
		label := "on"
		if !rec {
			label = "off"
		}
		t.Rows = append(t.Rows, []string{
			label, f3(res.DeliveryRatio), ms(res.LatP95), f1(res.TxPerMessage),
		})
	}
	return t
}

// A3FindMissing ablates the TTL-2 FIND_MISSING_MSG escalation that bypasses
// a Byzantine overlay hop.
func A3FindMissing(c Config) Table {
	t := Table{
		ID:     "A3",
		Title:  "ablation: TTL-2 find-missing escalation under mute attack",
		Params: "n=75, 8 mute dominators",
		Header: []string{"find-missing", "delivery", "lat-mean(ms)", "lat-p95(ms)"},
	}
	for _, fm := range []bool{true, false} {
		sc := c.base()
		sc.N = 75
		sc.Adversaries = []runner.Adversaries{{Kind: runner.AdvMute, Count: 8}}
		sc.Placement = runner.PlaceDominators
		sc.Core.EnableFindMissing = fm
		res := c.run(sc)
		label := "on"
		if !fm {
			label = "off"
		}
		t.Rows = append(t.Rows, []string{
			label, f3(res.DeliveryRatio), ms(res.LatMean), ms(res.LatP95),
		})
	}
	return t
}

// A4Signatures compares the simulation HMAC scheme against real Ed25519
// signatures end to end (results should match; wall-clock cost differs,
// which the benchmark harness reports).
func A4Signatures(c Config) Table {
	t := Table{
		ID:     "A4",
		Title:  "ablation: signature scheme",
		Params: "n=50",
		Header: []string{"scheme", "delivery", "tx/msg", "lat-p95(ms)"},
	}
	for _, ed := range []bool{false, true} {
		sc := c.base()
		sc.N = 50
		sc.UseEd25519 = ed
		res := c.run(sc)
		label := "hmac-sim"
		if ed {
			label = "ed25519"
		}
		t.Rows = append(t.Rows, []string{
			label, f3(res.DeliveryRatio), f1(res.TxPerMessage), ms(res.LatP95),
		})
	}
	return t
}

// A5RateSweep sweeps the injection rate δ: the protocol's fixed beaconing
// cost amortizes as δ grows, which is where the message-count advantage over
// flooding appears (§1's "small number of messages" claim is about loaded
// networks).
func A5RateSweep(c Config) Table {
	t := Table{
		ID:     "A5",
		Title:  "injection rate sweep: overhead amortization",
		Params: "n=75; tx/msg includes beacons, data/msg is dissemination only",
		Header: []string{"rate(msg/s)", "protocol", "tx/msg", "data/msg", "delivery"},
	}
	rates := []float64{0.5, 1, 2, 5, 10}
	if c.Quick {
		rates = []float64{1, 5}
	}
	for _, rate := range rates {
		for _, proto := range []runner.Protocol{runner.ProtoByzCast, runner.ProtoFlooding} {
			sc := c.base()
			sc.N = 75
			sc.Protocol = proto
			sc.Workload.Rate = rate
			res := c.run(sc)
			t.Rows = append(t.Rows, []string{
				f1(rate), proto.String(), f1(res.TxPerMessage),
				perMsg(res.TxByKind[wire.KindData], res.Injected),
				f3(res.DeliveryRatio),
			})
		}
	}
	return t
}

// A6Tamper exercises the signature path under payload-tampering forwarders.
func A6Tamper(c Config) Table {
	t := Table{
		ID:     "A6",
		Title:  "tampering forwarders: signatures catch corruption",
		Params: "n=75, tamperers corrupt every forwarded payload",
		Header: []string{"tamperers", "delivery", "bad-signatures", "detected"},
	}
	counts := []int{0, 3, 6}
	if c.Quick {
		counts = []int{0, 3}
	}
	for _, count := range counts {
		sc := c.base()
		sc.N = 75
		if count > 0 {
			sc.Adversaries = []runner.Adversaries{{Kind: runner.AdvTamper, Count: count}}
			sc.Placement = runner.PlaceDominators
		}
		res := c.run(sc)
		t.Rows = append(t.Rows, []string{
			itoa(count), f3(res.DeliveryRatio),
			u64(res.Node.BadSignatures), itoa(res.AdversariesDetected),
		})
	}
	return t
}

// All runs the complete suite in order. The E15 arms are simulated once and
// rendered as two tables (headline + lineage attribution).
func All(c Config) []Table {
	e15, e15l := e15HostileTables(c)
	return []Table{
		E1MessageOverhead(c),
		E2Delivery(c),
		E3Latency(c),
		E4MuteDelivery(c),
		E5MuteLatency(c),
		E6OverlayCompare(c),
		E7Breakdown(c),
		E8Mobility(c),
		E9Verbose(c),
		E10FPlusOne(c),
		A1GossipAggregation(c),
		A2Recovery(c),
		A3FindMissing(c),
		A4Signatures(c),
		A5RateSweep(c),
		A6Tamper(c),
		A7FDClasses(c),
		A8Poisson(c),
		A9Capture(c),
		E11FastPathTimeline(c),
		E12Churn(c),
		E13PartitionHeal(c),
		E14SpamResilience(c),
		e15,
		e15l,
		E16Knee(c),
		E17AmnesiaRecovery(c),
	}
}

// ByID returns the experiment with the given id (case-sensitive), or false.
func ByID(id string, c Config) (Table, bool) {
	fns := map[string]func(Config) Table{
		"E1": E1MessageOverhead, "E2": E2Delivery, "E3": E3Latency,
		"E4": E4MuteDelivery, "E5": E5MuteLatency, "E6": E6OverlayCompare,
		"E7": E7Breakdown, "E8": E8Mobility, "E9": E9Verbose,
		"E10": E10FPlusOne, "E11": E11FastPathTimeline,
		"E12": E12Churn, "E13": E13PartitionHeal, "E14": E14SpamResilience,
		"E15": E15HostileLinks, "E15L": E15Lineage, "E16": E16Knee,
		"E17": E17AmnesiaRecovery,
		"A1":  A1GossipAggregation, "A2": A2Recovery, "A3": A3FindMissing,
		"A4": A4Signatures, "A5": A5RateSweep, "A6": A6Tamper,
		"A7": A7FDClasses, "A8": A8Poisson, "A9": A9Capture,
	}
	fn, ok := fns[id]
	if !ok {
		return Table{}, false
	}
	return fn(c), true
}

// IDs lists the experiment identifiers in canonical order.
func IDs() []string {
	return []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "E11",
		"E12", "E13", "E14", "E15", "E15L", "E16", "E17", "A1", "A2", "A3", "A4", "A5", "A6", "A7", "A8", "A9"}
}
