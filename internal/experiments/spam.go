package experiments

import (
	"bbcast/internal/runner"
)

// E14SpamResilience runs the resource-exhaustion adversaries against the
// default network and verifies the admission-control layer holds: correct
// traffic keeps flowing (delivery within a few percent of the no-adversary
// baseline) while the state-bounds invariant asserts that no node's protocol
// tables ever exceed their configured caps. A flooder node originates fresh
// validly-signed messages at roughly 10× the workload rate — every one of
// them verifies, so the only defences are rate limiting, dedup-before-verify
// and GC. Spam messages are never injected through the workload, so they do
// not count towards (or against) the delivery ratio.
func E14SpamResilience(c Config) Table {
	t := Table{
		ID:     "E14",
		Title:  "spam resilience: correct-traffic delivery under resource-exhaustion adversaries",
		Params: "n=75, 2 spammers, flooder ~10x workload rate, state bounds + invariants on",
		Header: []string{"adversary", "delivery", "lat-p95(ms)", "rate-limited", "dedup-skips", "evictions", "violations"},
	}
	arms := []struct {
		label string
		kind  runner.AdversaryKind
	}{
		{"none", 0},
		{"flooder", runner.AdvFlooder},
		{"replayer", runner.AdvReplayer},
		{"forge-spammer", runner.AdvForgeSpammer},
	}
	if c.Quick {
		arms = arms[:2]
	}
	for _, arm := range arms {
		sc := c.base()
		sc.N = 75
		if arm.kind != 0 {
			sc.Adversaries = []runner.Adversaries{{Kind: arm.kind, Count: 2}}
		}
		res := c.run(sc)
		t.Rows = append(t.Rows, []string{
			arm.label,
			f3(res.DeliveryRatio),
			ms(res.LatP95),
			u64(res.Node.RateLimited),
			u64(res.Node.DedupSkips),
			u64(res.Node.Evictions),
			itoa(len(res.Violations)),
		})
	}
	return t
}
