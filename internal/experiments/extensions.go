package experiments

import (
	"time"

	"bbcast/internal/runner"
)

// A7FDClasses contrasts the paper's two failure-detector classes under mute
// attack: interval detectors (I_mute: suspicions age out and heal false
// positives — the practical choice for long-running systems, §2.2) versus
// eventually-perfect-style detectors (◇P_mute: suspicions never expire —
// faster convergence, but any false suspicion from radio loss is permanent).
func A7FDClasses(c Config) Table {
	t := Table{
		ID:     "A7",
		Title:  "failure-detector class: interval vs eventually-perfect",
		Params: "n=75, 8 mute dominators",
		Header: []string{"class", "delivery", "lat-mean(ms)", "lat-p95(ms)", "detected"},
	}
	for _, arm := range []struct {
		label   string
		forever bool
	}{{"interval (aging)", false}, {"eventually-perfect", true}} {
		sc := c.base()
		sc.N = 75
		sc.Adversaries = []runner.Adversaries{{Kind: runner.AdvMute, Count: 8}}
		sc.Placement = runner.PlaceDominators
		if arm.forever {
			sc.Core.Mute.SuspicionTTL = 0
			sc.Core.Mute.AgeInterval = 0
			sc.Core.Verbose.SuspicionTTL = 0
			sc.Core.Verbose.AgeInterval = 0
			sc.Core.Trust.DirectTTL = 0
			sc.Core.Trust.ReportTTL = 0
		}
		res := c.run(sc)
		t.Rows = append(t.Rows, []string{
			arm.label, f3(res.DeliveryRatio), ms(res.LatMean), ms(res.LatP95),
			itoa(res.AdversariesDetected),
		})
	}
	return t
}

// A8Poisson compares periodic and Poisson traffic: burstiness stresses the
// MAC and the recovery path.
func A8Poisson(c Config) Table {
	t := Table{
		ID:     "A8",
		Title:  "traffic model: periodic vs Poisson arrivals",
		Params: "n=75, mean rate 2 msg/s",
		Header: []string{"arrivals", "delivery", "lat-mean(ms)", "lat-p95(ms)", "collisions"},
	}
	for _, poisson := range []bool{false, true} {
		sc := c.base()
		sc.N = 75
		sc.Workload.Rate = 2
		sc.Workload.Poisson = poisson
		res := c.run(sc)
		label := "periodic"
		if poisson {
			label = "poisson"
		}
		t.Rows = append(t.Rows, []string{
			label, f3(res.DeliveryRatio), ms(res.LatMean), ms(res.LatP95),
			u64(res.Collisions),
		})
	}
	return t
}

// E11FastPathTimeline shows the failure detectors at work over time: with
// FDs on, latency degrades when mute dominators first black-hole traffic and
// then recovers as suspicions evict them from the overlay; without FDs every
// affected message keeps paying the gossip-recovery latency.
func E11FastPathTimeline(c Config) Table {
	t := Table{
		ID:     "E11",
		Title:  "fast-path restoration timeline under mute attack (latency per 30 s window)",
		Params: "n=75, 10 mute dominators, 3-minute run",
		Header: []string{"window", "mean(+fd) ms", "p95(+fd) ms", "mean(-fd) ms", "p95(-fd) ms"},
	}
	bucket := 30 * time.Second
	end := 165 * time.Second
	if c.Quick {
		bucket = 20 * time.Second
		end = 55 * time.Second
	}
	type series struct {
		mean, p95 []string
	}
	var arms []series
	for _, fds := range []bool{true, false} {
		sc := c.base()
		sc.N = 75
		sc.Adversaries = []runner.Adversaries{{Kind: runner.AdvMute, Count: 10}}
		sc.Placement = runner.PlaceDominators
		sc.Core.EnableFDs = fds
		sc.Workload.End = end
		sc.Duration = end + 15*time.Second
		sc.LatencyBucket = bucket
		res, err := runner.Run(sc)
		if err != nil {
			panic(err)
		}
		var sr series
		for _, b := range res.Timeline {
			sr.mean = append(sr.mean, ms(b.Mean))
			sr.p95 = append(sr.p95, ms(b.P95))
		}
		arms = append(arms, sr)
	}
	rows := len(arms[0].mean)
	if len(arms[1].mean) < rows {
		rows = len(arms[1].mean)
	}
	for i := 0; i < rows; i++ {
		start := time.Duration(i) * bucket
		t.Rows = append(t.Rows, []string{
			start.String(),
			arms[0].mean[i], arms[0].p95[i],
			arms[1].mean[i], arms[1].p95[i],
		})
	}
	return t
}

// A9Capture ablates the radio capture effect: letting the stronger of two
// overlapping frames survive reduces effective collision losses, which
// mostly benefits the dense flooding baseline.
func A9Capture(c Config) Table {
	t := Table{
		ID:     "A9",
		Title:  "radio capture effect",
		Params: "n=75; capture ratio 0.5 (≈6 dB)",
		Header: []string{"capture", "protocol", "delivery", "collisions", "lat-p95(ms)"},
	}
	for _, capture := range []bool{false, true} {
		for _, proto := range []runner.Protocol{runner.ProtoByzCast, runner.ProtoFlooding} {
			sc := c.base()
			sc.N = 75
			sc.Protocol = proto
			if capture {
				sc.Radio.CaptureRatio = 0.5
			}
			res := c.run(sc)
			label := "off"
			if capture {
				label = "on"
			}
			t.Rows = append(t.Rows, []string{
				label, proto.String(), f3(res.DeliveryRatio),
				u64(res.Collisions), ms(res.LatP95),
			})
		}
	}
	return t
}
