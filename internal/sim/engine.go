// Package sim provides a deterministic discrete-event simulation kernel.
//
// The kernel maintains a virtual clock and an ordered queue of events.
// Events scheduled for the same instant fire in scheduling order, which makes
// runs fully reproducible for a fixed seed. The kernel is single-threaded:
// all callbacks run on the goroutine that calls Run or Step.
//
// The event queue is a hand-rolled binary heap over recycled event records:
// scheduling an event allocates nothing once the free list is warm, which
// matters because the heap push/pop pair is the hottest edge in every
// simulation (one per transmission, reception batch, MAC attempt and
// protocol timer).
package sim

import (
	"math/rand"
	"time"
)

// Engine is a discrete-event scheduler with a virtual clock.
// The zero value is not usable; construct with New.
type Engine struct {
	now       time.Duration
	queue     []*event
	free      []*event
	seq       uint64
	rng       *rand.Rand
	seed      int64
	processed uint64

	epochs     []Epoch
	epochHooks []func(Epoch)
}

// New returns an Engine whose clock starts at zero and whose random stream is
// derived from seed. Two engines built with the same seed and fed the same
// schedule of events produce identical runs.
func New(seed int64) *Engine {
	return &Engine{
		rng:  rand.New(rand.NewSource(seed)),
		seed: seed,
	}
}

// Now reports the current virtual time.
func (e *Engine) Now() time.Duration { return e.now }

// Seed reports the seed the engine was built with.
func (e *Engine) Seed() int64 { return e.seed }

// Processed reports how many events have fired so far.
func (e *Engine) Processed() uint64 { return e.processed }

// Rand returns the engine's random stream. Protocol code must draw all
// randomness from here (or from SubRand) to keep runs reproducible.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// SubRand derives an independent, deterministic random stream for the given
// identifier (typically a node ID). Streams for distinct ids are decorrelated
// but fully determined by the engine seed.
func (e *Engine) SubRand(id uint64) *rand.Rand {
	// SplitMix64 finalizer decorrelates nearby ids.
	z := uint64(e.seed) ^ (id + 0x9e3779b97f4a7c15)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return rand.New(rand.NewSource(int64(z)))
}

// Timer is a handle to a scheduled event. A Timer may be stopped before it
// fires; stopping an already-fired or already-stopped timer is a no-op. The
// zero Timer is valid and never pending. Timers are values: copy them
// freely.
type Timer struct {
	ev  *event
	gen uint32
}

// live reports whether the timer still refers to the event it was issued
// for (events are recycled after firing; the generation check keeps a stale
// handle from touching an unrelated reuse).
func (t Timer) live() bool {
	return t.ev != nil && t.ev.gen == t.gen && !t.ev.cancelled && !t.ev.fired
}

// Stop cancels the timer. It reports whether the event was still pending.
func (t Timer) Stop() bool {
	if !t.live() {
		return false
	}
	t.ev.cancelled = true
	return true
}

// Pending reports whether the timer has neither fired nor been stopped.
func (t Timer) Pending() bool { return t.live() }

// alloc takes an event record from the free list (or allocates one) and
// initializes it for time t.
func (e *Engine) alloc(t time.Duration, fn func()) *event {
	var ev *event
	if n := len(e.free); n > 0 {
		ev = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
	} else {
		ev = &event{}
	}
	ev.at = t
	ev.seq = e.seq
	ev.fn = fn
	ev.cancelled = false
	ev.fired = false
	e.seq++
	return ev
}

// recycle returns a popped event to the free list, bumping its generation so
// outstanding Timer handles to it go stale.
func (e *Engine) recycle(ev *event) {
	ev.gen++
	ev.fn = nil
	e.free = append(e.free, ev)
}

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// (or present) runs the event at the current time, after already-queued
// events for that time.
func (e *Engine) At(t time.Duration, fn func()) Timer {
	if t < e.now {
		t = e.now
	}
	ev := e.alloc(t, fn)
	e.push(ev)
	return Timer{ev: ev, gen: ev.gen}
}

// After schedules fn to run d from now. Negative d behaves like zero.
func (e *Engine) After(d time.Duration, fn func()) Timer {
	return e.At(e.now+d, fn)
}

// Every schedules fn to run every period, starting one period from now,
// until the returned stop function is called.
func (e *Engine) Every(period time.Duration, fn func()) (stop func()) {
	stopped := false
	var cur Timer
	var tick func()
	tick = func() {
		if stopped {
			return
		}
		fn()
		if !stopped {
			cur = e.After(period, tick)
		}
	}
	cur = e.After(period, tick)
	return func() {
		stopped = true
		cur.Stop()
	}
}

// Epoch is a named marker in virtual time. Epochs give a run a coarse,
// inspectable timeline: the fault-injection layer schedules each fault event
// as a named epoch, and observers (invariant checkers, tracers) subscribe to
// the firings without coupling to the scheduler of those events.
type Epoch struct {
	Name string
	At   time.Duration
}

// AtEpoch schedules fn at absolute virtual time t like At, and additionally
// records a named epoch and notifies OnEpoch observers when it fires. The
// epoch is recorded before fn runs, so fn (and anything it schedules at the
// same instant) observes it.
func (e *Engine) AtEpoch(t time.Duration, name string, fn func()) Timer {
	return e.At(t, func() {
		ep := Epoch{Name: name, At: e.now}
		e.epochs = append(e.epochs, ep)
		for _, h := range e.epochHooks {
			h(ep)
		}
		if fn != nil {
			fn()
		}
	})
}

// OnEpoch registers an observer for epoch firings. Observers run in
// registration order, synchronously, before the epoch's own callback.
func (e *Engine) OnEpoch(h func(Epoch)) {
	e.epochHooks = append(e.epochHooks, h)
}

// Epochs returns a copy of the epochs fired so far, in firing order.
func (e *Engine) Epochs() []Epoch {
	out := make([]Epoch, len(e.epochs))
	copy(out, e.epochs)
	return out
}

// Step fires the earliest pending event. It reports false when the queue is
// empty.
func (e *Engine) Step() bool {
	for len(e.queue) > 0 {
		ev := e.pop()
		if ev.cancelled {
			e.recycle(ev)
			continue
		}
		e.now = ev.at
		ev.fired = true
		e.processed++
		fn := ev.fn
		e.recycle(ev)
		fn()
		return true
	}
	return false
}

// Run processes events until the queue is exhausted or the clock would pass
// until. The clock is left at min(until, time of last fired event); events
// scheduled beyond until remain queued. It returns the number of events fired.
func (e *Engine) Run(until time.Duration) uint64 {
	var fired uint64
	for len(e.queue) > 0 {
		next := e.queue[0]
		if next.cancelled {
			e.recycle(e.pop())
			continue
		}
		if next.at > until {
			break
		}
		e.Step()
		fired++
	}
	if e.now < until {
		e.now = until
	}
	return fired
}

// RunAll processes events until the queue is exhausted. Use with care: a
// self-rescheduling event makes this loop forever.
func (e *Engine) RunAll() uint64 {
	var fired uint64
	for e.Step() {
		fired++
	}
	return fired
}

type event struct {
	at        time.Duration
	seq       uint64
	fn        func()
	gen       uint32
	cancelled bool
	fired     bool
}

// before orders events by (time, scheduling sequence).
func (ev *event) before(o *event) bool {
	if ev.at != o.at {
		return ev.at < o.at
	}
	return ev.seq < o.seq
}

// push adds ev to the heap (sift-up).
func (e *Engine) push(ev *event) {
	q := append(e.queue, ev)
	i := len(q) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !q[i].before(q[parent]) {
			break
		}
		q[i], q[parent] = q[parent], q[i]
		i = parent
	}
	e.queue = q
}

// pop removes and returns the minimum event (sift-down).
func (e *Engine) pop() *event {
	q := e.queue
	top := q[0]
	n := len(q) - 1
	q[0] = q[n]
	q[n] = nil
	q = q[:n]
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		least := l
		if r := l + 1; r < n && q[r].before(q[l]) {
			least = r
		}
		if !q[least].before(q[i]) {
			break
		}
		q[i], q[least] = q[least], q[i]
		i = least
	}
	e.queue = q
	return top
}
