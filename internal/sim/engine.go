// Package sim provides a deterministic discrete-event simulation kernel.
//
// The kernel maintains a virtual clock and an ordered queue of events.
// Events scheduled for the same instant fire in scheduling order, which makes
// runs fully reproducible for a fixed seed. The kernel is single-threaded:
// all callbacks run on the goroutine that calls Run or Step.
package sim

import (
	"container/heap"
	"math/rand"
	"time"
)

// Engine is a discrete-event scheduler with a virtual clock.
// The zero value is not usable; construct with New.
type Engine struct {
	now       time.Duration
	queue     eventQueue
	seq       uint64
	rng       *rand.Rand
	seed      int64
	processed uint64

	epochs     []Epoch
	epochHooks []func(Epoch)
}

// New returns an Engine whose clock starts at zero and whose random stream is
// derived from seed. Two engines built with the same seed and fed the same
// schedule of events produce identical runs.
func New(seed int64) *Engine {
	return &Engine{
		rng:  rand.New(rand.NewSource(seed)),
		seed: seed,
	}
}

// Now reports the current virtual time.
func (e *Engine) Now() time.Duration { return e.now }

// Seed reports the seed the engine was built with.
func (e *Engine) Seed() int64 { return e.seed }

// Processed reports how many events have fired so far.
func (e *Engine) Processed() uint64 { return e.processed }

// Rand returns the engine's random stream. Protocol code must draw all
// randomness from here (or from SubRand) to keep runs reproducible.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// SubRand derives an independent, deterministic random stream for the given
// identifier (typically a node ID). Streams for distinct ids are decorrelated
// but fully determined by the engine seed.
func (e *Engine) SubRand(id uint64) *rand.Rand {
	// SplitMix64 finalizer decorrelates nearby ids.
	z := uint64(e.seed) ^ (id + 0x9e3779b97f4a7c15)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return rand.New(rand.NewSource(int64(z)))
}

// Timer is a handle to a scheduled event. A Timer may be stopped before it
// fires; stopping an already-fired or already-stopped timer is a no-op.
type Timer struct {
	ev *event
}

// Stop cancels the timer. It reports whether the event was still pending.
func (t *Timer) Stop() bool {
	if t == nil || t.ev == nil || t.ev.cancelled || t.ev.fired {
		return false
	}
	t.ev.cancelled = true
	return true
}

// Pending reports whether the timer has neither fired nor been stopped.
func (t *Timer) Pending() bool {
	return t != nil && t.ev != nil && !t.ev.cancelled && !t.ev.fired
}

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// (or present) runs the event at the current time, after already-queued
// events for that time.
func (e *Engine) At(t time.Duration, fn func()) *Timer {
	if t < e.now {
		t = e.now
	}
	ev := &event{at: t, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.queue, ev)
	return &Timer{ev: ev}
}

// After schedules fn to run d from now. Negative d behaves like zero.
func (e *Engine) After(d time.Duration, fn func()) *Timer {
	return e.At(e.now+d, fn)
}

// Every schedules fn to run every period, starting one period from now,
// until the returned Timer chain is stopped via the returned stop function.
func (e *Engine) Every(period time.Duration, fn func()) (stop func()) {
	stopped := false
	var schedule func()
	var cur *Timer
	schedule = func() {
		cur = e.After(period, func() {
			if stopped {
				return
			}
			fn()
			if !stopped {
				schedule()
			}
		})
	}
	schedule()
	return func() {
		stopped = true
		cur.Stop()
	}
}

// Epoch is a named marker in virtual time. Epochs give a run a coarse,
// inspectable timeline: the fault-injection layer schedules each fault event
// as a named epoch, and observers (invariant checkers, tracers) subscribe to
// the firings without coupling to the scheduler of those events.
type Epoch struct {
	Name string
	At   time.Duration
}

// AtEpoch schedules fn at absolute virtual time t like At, and additionally
// records a named epoch and notifies OnEpoch observers when it fires. The
// epoch is recorded before fn runs, so fn (and anything it schedules at the
// same instant) observes it.
func (e *Engine) AtEpoch(t time.Duration, name string, fn func()) *Timer {
	return e.At(t, func() {
		ep := Epoch{Name: name, At: e.now}
		e.epochs = append(e.epochs, ep)
		for _, h := range e.epochHooks {
			h(ep)
		}
		if fn != nil {
			fn()
		}
	})
}

// OnEpoch registers an observer for epoch firings. Observers run in
// registration order, synchronously, before the epoch's own callback.
func (e *Engine) OnEpoch(h func(Epoch)) {
	e.epochHooks = append(e.epochHooks, h)
}

// Epochs returns a copy of the epochs fired so far, in firing order.
func (e *Engine) Epochs() []Epoch {
	out := make([]Epoch, len(e.epochs))
	copy(out, e.epochs)
	return out
}

// Step fires the earliest pending event. It reports false when the queue is
// empty.
func (e *Engine) Step() bool {
	for e.queue.Len() > 0 {
		ev, _ := heap.Pop(&e.queue).(*event)
		if ev.cancelled {
			continue
		}
		e.now = ev.at
		ev.fired = true
		e.processed++
		ev.fn()
		return true
	}
	return false
}

// Run processes events until the queue is exhausted or the clock would pass
// until. The clock is left at min(until, time of last fired event); events
// scheduled beyond until remain queued. It returns the number of events fired.
func (e *Engine) Run(until time.Duration) uint64 {
	var fired uint64
	for e.queue.Len() > 0 {
		next := e.queue[0]
		if next.cancelled {
			heap.Pop(&e.queue)
			continue
		}
		if next.at > until {
			break
		}
		e.Step()
		fired++
	}
	if e.now < until {
		e.now = until
	}
	return fired
}

// RunAll processes events until the queue is exhausted. Use with care: a
// self-rescheduling event makes this loop forever.
func (e *Engine) RunAll() uint64 {
	var fired uint64
	for e.Step() {
		fired++
	}
	return fired
}

type event struct {
	at        time.Duration
	seq       uint64
	fn        func()
	cancelled bool
	fired     bool
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }

func (q *eventQueue) Push(x any) {
	ev, _ := x.(*event)
	*q = append(*q, ev)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return ev
}
