package sim

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestEngineStartsAtZero(t *testing.T) {
	e := New(1)
	if e.Now() != 0 {
		t.Fatalf("Now() = %v, want 0", e.Now())
	}
}

func TestAfterFiresInOrder(t *testing.T) {
	e := New(1)
	var got []int
	e.After(30*time.Millisecond, func() { got = append(got, 3) })
	e.After(10*time.Millisecond, func() { got = append(got, 1) })
	e.After(20*time.Millisecond, func() { got = append(got, 2) })
	e.RunAll()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
}

func TestSameTimeFIFO(t *testing.T) {
	e := New(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.After(time.Millisecond, func() { got = append(got, i) })
	}
	e.RunAll()
	for i := range got {
		if got[i] != i {
			t.Fatalf("same-time events out of scheduling order: %v", got)
		}
	}
}

func TestClockAdvancesToEventTime(t *testing.T) {
	e := New(1)
	var at time.Duration
	e.After(42*time.Millisecond, func() { at = e.Now() })
	e.RunAll()
	if at != 42*time.Millisecond {
		t.Fatalf("fired at %v, want 42ms", at)
	}
}

func TestRunStopsAtDeadline(t *testing.T) {
	e := New(1)
	fired := 0
	e.After(10*time.Millisecond, func() { fired++ })
	e.After(30*time.Millisecond, func() { fired++ })
	n := e.Run(20 * time.Millisecond)
	if n != 1 || fired != 1 {
		t.Fatalf("fired %d events, want 1", fired)
	}
	if e.Now() != 20*time.Millisecond {
		t.Fatalf("Now() = %v, want 20ms", e.Now())
	}
	e.RunAll()
	if fired != 2 {
		t.Fatalf("second event never fired")
	}
}

func TestTimerStop(t *testing.T) {
	e := New(1)
	fired := false
	tm := e.After(time.Millisecond, func() { fired = true })
	if !tm.Pending() {
		t.Fatal("timer should be pending")
	}
	if !tm.Stop() {
		t.Fatal("Stop should report true for pending timer")
	}
	if tm.Stop() {
		t.Fatal("second Stop should report false")
	}
	e.RunAll()
	if fired {
		t.Fatal("stopped timer fired")
	}
}

func TestTimerStopAfterFire(t *testing.T) {
	e := New(1)
	tm := e.After(time.Millisecond, func() {})
	e.RunAll()
	if tm.Pending() {
		t.Fatal("fired timer still pending")
	}
	if tm.Stop() {
		t.Fatal("Stop after fire should report false")
	}
}

func TestScheduleInPastRunsNow(t *testing.T) {
	e := New(1)
	var at time.Duration
	e.After(10*time.Millisecond, func() {
		e.At(0, func() { at = e.Now() })
	})
	e.RunAll()
	if at != 10*time.Millisecond {
		t.Fatalf("past event ran at %v, want now (10ms)", at)
	}
}

func TestEveryRepeatsAndStops(t *testing.T) {
	e := New(1)
	count := 0
	stop := e.Every(10*time.Millisecond, func() {
		count++
		if count == 5 {
			// stop from within the callback
		}
	})
	e.Run(45 * time.Millisecond)
	if count != 4 {
		t.Fatalf("count = %d, want 4 after 45ms of 10ms period", count)
	}
	stop()
	e.Run(200 * time.Millisecond)
	if count != 4 {
		t.Fatalf("ticker fired after stop: count = %d", count)
	}
}

func TestNestedScheduling(t *testing.T) {
	e := New(1)
	depth := 0
	var recur func()
	recur = func() {
		depth++
		if depth < 100 {
			e.After(time.Microsecond, recur)
		}
	}
	e.After(0, recur)
	e.RunAll()
	if depth != 100 {
		t.Fatalf("depth = %d, want 100", depth)
	}
}

func TestDeterminismSameSeed(t *testing.T) {
	trace := func(seed int64) []int64 {
		e := New(seed)
		var out []int64
		var tick func()
		tick = func() {
			out = append(out, int64(e.Now()), e.Rand().Int63n(1000))
			if len(out) < 200 {
				e.After(time.Duration(1+e.Rand().Intn(50))*time.Millisecond, tick)
			}
		}
		e.After(0, tick)
		e.RunAll()
		return out
	}
	a, b := trace(42), trace(42)
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at %d: %d vs %d", i, a[i], b[i])
		}
	}
	c := trace(43)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical traces")
	}
}

func TestSubRandDeterministicAndDistinct(t *testing.T) {
	e1, e2 := New(7), New(7)
	r1, r2 := e1.SubRand(5), e2.SubRand(5)
	for i := 0; i < 100; i++ {
		if r1.Int63() != r2.Int63() {
			t.Fatal("SubRand not deterministic for same seed/id")
		}
	}
	ra, rb := e1.SubRand(1), e1.SubRand(2)
	same := true
	for i := 0; i < 10; i++ {
		if ra.Int63() != rb.Int63() {
			same = false
		}
	}
	if same {
		t.Fatal("SubRand streams for distinct ids are identical")
	}
}

func TestProcessedCounter(t *testing.T) {
	e := New(1)
	for i := 0; i < 17; i++ {
		e.After(time.Duration(i)*time.Millisecond, func() {})
	}
	e.RunAll()
	if e.Processed() != 17 {
		t.Fatalf("Processed = %d, want 17", e.Processed())
	}
}

// Property: for any set of delays, events fire in nondecreasing time order.
func TestQuickEventOrdering(t *testing.T) {
	f := func(delays []uint16) bool {
		e := New(99)
		var times []time.Duration
		for _, d := range delays {
			e.After(time.Duration(d)*time.Microsecond, func() {
				times = append(times, e.Now())
			})
		}
		e.RunAll()
		for i := 1; i < len(times); i++ {
			if times[i] < times[i-1] {
				return false
			}
		}
		return len(times) == len(delays)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: stopping a random subset of timers means exactly the others fire.
func TestQuickTimerStopSubset(t *testing.T) {
	f := func(delays []uint8, mask uint64) bool {
		if len(delays) > 64 {
			delays = delays[:64]
		}
		e := New(3)
		fired := make([]bool, len(delays))
		timers := make([]Timer, len(delays))
		for i, d := range delays {
			i := i
			timers[i] = e.After(time.Duration(d)*time.Millisecond, func() { fired[i] = true })
		}
		for i := range timers {
			if mask&(1<<uint(i)) != 0 {
				timers[i].Stop()
			}
		}
		e.RunAll()
		for i := range fired {
			stopped := mask&(1<<uint(i)) != 0
			if fired[i] == stopped {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Fatal(err)
	}
}

func TestEpochsRecordedAndObserved(t *testing.T) {
	e := New(1)
	var observed []string
	var fired []string
	e.OnEpoch(func(ep Epoch) {
		observed = append(observed, ep.Name)
		// The epoch must already be visible to observers.
		eps := e.Epochs()
		if len(eps) == 0 || eps[len(eps)-1].Name != ep.Name {
			t.Errorf("epoch %q not recorded before observers ran", ep.Name)
		}
	})
	e.AtEpoch(2*time.Second, "beta", func() { fired = append(fired, "beta") })
	e.AtEpoch(1*time.Second, "alpha", func() { fired = append(fired, "alpha") })
	e.AtEpoch(3*time.Second, "gamma", nil) // nil callback is allowed
	e.RunAll()

	wantNames := []string{"alpha", "beta", "gamma"}
	eps := e.Epochs()
	if len(eps) != 3 {
		t.Fatalf("got %d epochs", len(eps))
	}
	for i, ep := range eps {
		if ep.Name != wantNames[i] {
			t.Fatalf("epoch %d = %q, want %q", i, ep.Name, wantNames[i])
		}
		if ep.At != time.Duration(i+1)*time.Second {
			t.Fatalf("epoch %q at %s", ep.Name, ep.At)
		}
	}
	if len(observed) != 3 || observed[0] != "alpha" {
		t.Fatalf("observers saw %v", observed)
	}
	if len(fired) != 2 {
		t.Fatalf("callbacks fired %v", fired)
	}
	// Epochs() returns a copy.
	eps[0].Name = "mutated"
	if e.Epochs()[0].Name != "alpha" {
		t.Fatal("Epochs() exposed internal state")
	}
}

func TestEpochTimerStopPreventsRecording(t *testing.T) {
	e := New(1)
	tm := e.AtEpoch(time.Second, "cancelled", nil)
	tm.Stop()
	e.RunAll()
	if len(e.Epochs()) != 0 {
		t.Fatalf("stopped epoch recorded: %v", e.Epochs())
	}
}
