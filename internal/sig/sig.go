// Package sig provides the digital-signature substrate of the protocol.
//
// The paper assumes each device holds a private key and can obtain every
// other device's public key (it uses DSA; §2, footnote 3). Two schemes are
// provided behind one interface:
//
//   - Ed25519Scheme: real public-key signatures from the standard library,
//     suitable for deployments over a real transport.
//   - HMACScheme: a fast symmetric simulation stand-in (HMAC-SHA256 with a
//     per-node secret held by an omniscient registry). It preserves the one
//     property the protocol needs — a party that does not hold node p's key
//     cannot produce a tag that verifies as p's — because the adversary API
//     never exposes other nodes' keys. Large parameter sweeps use it to keep
//     simulation time reasonable.
//
// A Registry plays the role of the PKI the paper presumes exists.
package sig

import (
	"crypto/ed25519"
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"hash"
	"math/rand"
	"sync"
)

// Scheme signs and verifies on behalf of registered nodes.
//
// Implementations must be safe for concurrent Verify/Sign after all nodes
// have been registered.
type Scheme interface {
	// Sign produces node id's signature over msg. It panics if id is not
	// registered (a programming error in simulation setup).
	Sign(id uint32, msg []byte) []byte
	// Verify reports whether tag is id's valid signature over msg.
	Verify(id uint32, msg, tag []byte) bool
	// SigSize returns the byte length of signatures, used for airtime
	// accounting.
	SigSize() int
	// Name identifies the scheme in reports.
	Name() string
}

// Ed25519Scheme implements Scheme with real Ed25519 keys.
type Ed25519Scheme struct {
	priv map[uint32]ed25519.PrivateKey
	pub  map[uint32]ed25519.PublicKey
}

var _ Scheme = (*Ed25519Scheme)(nil)

// NewEd25519 generates keys for node ids 0..n-1 deterministically from seed.
func NewEd25519(n int, seed int64) (*Ed25519Scheme, error) {
	s := &Ed25519Scheme{
		priv: make(map[uint32]ed25519.PrivateKey, n),
		pub:  make(map[uint32]ed25519.PublicKey, n),
	}
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		seedBytes := make([]byte, ed25519.SeedSize)
		if _, err := rng.Read(seedBytes); err != nil {
			return nil, fmt.Errorf("generate key %d: %w", i, err)
		}
		priv := ed25519.NewKeyFromSeed(seedBytes)
		s.priv[uint32(i)] = priv
		pubKey, ok := priv.Public().(ed25519.PublicKey)
		if !ok {
			return nil, fmt.Errorf("generate key %d: unexpected public key type", i)
		}
		s.pub[uint32(i)] = pubKey
	}
	return s, nil
}

// Sign implements Scheme.
func (s *Ed25519Scheme) Sign(id uint32, msg []byte) []byte {
	priv, ok := s.priv[id]
	if !ok {
		panic(fmt.Sprintf("sig: no key registered for node %d", id))
	}
	return ed25519.Sign(priv, msg)
}

// Verify implements Scheme.
func (s *Ed25519Scheme) Verify(id uint32, msg, tag []byte) bool {
	pub, ok := s.pub[id]
	if !ok || len(tag) != ed25519.SignatureSize {
		return false
	}
	return ed25519.Verify(pub, msg, tag)
}

// SigSize implements Scheme.
func (s *Ed25519Scheme) SigSize() int { return ed25519.SignatureSize }

// Name implements Scheme.
func (s *Ed25519Scheme) Name() string { return "ed25519" }

// HMACScheme implements Scheme with per-node HMAC-SHA256 keys held by an
// omniscient registry. Simulation only: verification consults the registry,
// which stands in for the PKI. Tags are 32 bytes, in the same size class as
// the 40-byte DSA signatures the paper's implementation used, so airtime
// accounting remains representative.
//
// Keyed HMAC states are cached per node and reused via Reset, which restores
// the precomputed inner/outer pad digests instead of re-hashing the padded
// key on every call — signing dominates the simulator's CPU profile, and the
// cache removes roughly half its hash blocks and nearly all its allocations.
type HMACScheme struct {
	keys [][]byte

	mu   sync.Mutex
	macs []hash.Hash
}

var _ Scheme = (*HMACScheme)(nil)

// hmacTagSize is the byte length of HMAC-SHA256 tags.
const hmacTagSize = sha256.Size

// NewHMAC builds a simulation signature scheme for node ids 0..n-1,
// deterministic in seed.
func NewHMAC(n int, seed int64) *HMACScheme {
	s := &HMACScheme{keys: make([][]byte, n), macs: make([]hash.Hash, n)}
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		k := make([]byte, 32)
		rng.Read(k)
		s.keys[i] = k
	}
	return s
}

// tag appends node id's tag over msg to dst. The caller must hold s.mu.
func (s *HMACScheme) tag(dst []byte, id uint32, msg []byte) []byte {
	mac := s.macs[id]
	if mac == nil {
		mac = hmac.New(sha256.New, s.keys[id])
		s.macs[id] = mac
	} else {
		mac.Reset()
	}
	var idb [4]byte
	binary.LittleEndian.PutUint32(idb[:], id)
	mac.Write(idb[:])
	mac.Write(msg)
	return mac.Sum(dst)
}

// Sign implements Scheme.
func (s *HMACScheme) Sign(id uint32, msg []byte) []byte {
	if int(id) >= len(s.keys) {
		panic(fmt.Sprintf("sig: no key registered for node %d", id))
	}
	s.mu.Lock()
	out := s.tag(make([]byte, 0, hmacTagSize), id, msg)
	s.mu.Unlock()
	return out
}

// Verify implements Scheme.
func (s *HMACScheme) Verify(id uint32, msg, tag []byte) bool {
	if int(id) >= len(s.keys) {
		return false
	}
	var buf [hmacTagSize]byte
	s.mu.Lock()
	want := s.tag(buf[:0], id, msg)
	s.mu.Unlock()
	return hmac.Equal(tag, want)
}

// SigSize implements Scheme.
func (s *HMACScheme) SigSize() int { return hmacTagSize }

// Name implements Scheme.
func (s *HMACScheme) Name() string { return "hmac-sim" }
