package sig

import (
	"crypto/ed25519"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sort"
)

// ErrNoPrivateKey is returned when a loaded key file lacks the private key
// (e.g. a public-only bundle was passed where node keys were needed).
var ErrNoPrivateKey = errors.New("sig: keystore holds no private key for this node")

// keystoreFile is the on-disk JSON layout. Hex encoding keeps files
// greppable and diff-friendly.
type keystoreFile struct {
	// Self is the node id the private key belongs to (absent for a
	// public-only bundle).
	Self *uint32 `json:"self,omitempty"`
	// Private is the hex Ed25519 private key (only in per-node files).
	Private string `json:"private,omitempty"`
	// Public maps node id (decimal string) to hex Ed25519 public key.
	Public map[string]string `json:"public"`
}

// NodeKeys is one node's deployable key material: its own private key and
// the PKI (all public keys). It implements Scheme, so it plugs directly into
// the protocol: Sign only works for the owning node.
type NodeKeys struct {
	self uint32
	priv ed25519.PrivateKey
	pub  map[uint32]ed25519.PublicKey
}

var _ Scheme = (*NodeKeys)(nil)

// Self returns the owning node id.
func (k *NodeKeys) Self() uint32 { return k.self }

// Sign implements Scheme. It panics if id is not the owning node — a node
// must never be asked to sign for somebody else.
func (k *NodeKeys) Sign(id uint32, msg []byte) []byte {
	if id != k.self || k.priv == nil {
		panic(fmt.Sprintf("sig: node %d cannot sign for node %d", k.self, id))
	}
	return ed25519.Sign(k.priv, msg)
}

// Verify implements Scheme.
func (k *NodeKeys) Verify(id uint32, msg, tag []byte) bool {
	pub, ok := k.pub[id]
	if !ok || len(tag) != ed25519.SignatureSize {
		return false
	}
	return ed25519.Verify(pub, msg, tag)
}

// SigSize implements Scheme.
func (k *NodeKeys) SigSize() int { return ed25519.SignatureSize }

// Name implements Scheme.
func (k *NodeKeys) Name() string { return "ed25519-keystore" }

// Known returns the node ids with registered public keys, sorted.
func (k *NodeKeys) Known() []uint32 {
	out := make([]uint32, 0, len(k.pub))
	for id := range k.pub {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// GenerateKeystores produces one key file per node in dir
// (node-<id>.keys.json, private key + full PKI), ready to distribute to the
// devices of a real deployment.
func GenerateKeystores(dir string, n int, seed int64) error {
	scheme, err := NewEd25519(n, seed)
	if err != nil {
		return err
	}
	pub := make(map[string]string, n)
	for i := 0; i < n; i++ {
		pub[fmt.Sprintf("%d", i)] = hex.EncodeToString(scheme.pub[uint32(i)])
	}
	for i := 0; i < n; i++ {
		self := uint32(i)
		file := keystoreFile{
			Self:    &self,
			Private: hex.EncodeToString(scheme.priv[self]),
			Public:  pub,
		}
		if err := writeKeystore(keystorePath(dir, i), file, 0o600); err != nil {
			return err
		}
	}
	return nil
}

// keystorePath names node i's key file in dir.
func keystorePath(dir string, i int) string {
	return fmt.Sprintf("%s/node-%d.keys.json", dir, i)
}

// KeystorePath exposes the per-node key file naming convention.
func KeystorePath(dir string, id uint32) string { return keystorePath(dir, int(id)) }

func writeKeystore(path string, file keystoreFile, mode os.FileMode) error {
	// Deterministic field order for reproducible files.
	data, err := marshalKeystore(file)
	if err != nil {
		return fmt.Errorf("sig: encode keystore: %w", err)
	}
	if err := os.WriteFile(path, data, mode); err != nil {
		return fmt.Errorf("sig: write keystore: %w", err)
	}
	return nil
}

func marshalKeystore(file keystoreFile) ([]byte, error) {
	// json.Marshal writes map keys sorted already; pretty-print for humans.
	return json.MarshalIndent(file, "", "  ")
}

// LoadKeystore reads one node's key file.
func LoadKeystore(path string) (*NodeKeys, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("sig: read keystore: %w", err)
	}
	var file keystoreFile
	if err := json.Unmarshal(data, &file); err != nil {
		return nil, fmt.Errorf("sig: parse keystore %s: %w", path, err)
	}
	if file.Self == nil || file.Private == "" {
		return nil, ErrNoPrivateKey
	}
	privBytes, err := hex.DecodeString(file.Private)
	if err != nil || len(privBytes) != ed25519.PrivateKeySize {
		return nil, fmt.Errorf("sig: keystore %s: bad private key", path)
	}
	keys := &NodeKeys{
		self: *file.Self,
		priv: ed25519.PrivateKey(privBytes),
		pub:  make(map[uint32]ed25519.PublicKey, len(file.Public)),
	}
	ids := make([]string, 0, len(file.Public))
	for id := range file.Public {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, idStr := range ids {
		var id uint32
		if _, err := fmt.Sscanf(idStr, "%d", &id); err != nil {
			return nil, fmt.Errorf("sig: keystore %s: bad node id %q", path, idStr)
		}
		pubBytes, err := hex.DecodeString(file.Public[idStr])
		if err != nil || len(pubBytes) != ed25519.PublicKeySize {
			return nil, fmt.Errorf("sig: keystore %s: bad public key for %s", path, idStr)
		}
		keys.pub[id] = ed25519.PublicKey(pubBytes)
	}
	if _, ok := keys.pub[keys.self]; !ok {
		return nil, fmt.Errorf("sig: keystore %s: own public key missing", path)
	}
	// Cross-check: the private key must match the registered public key.
	derived, ok := keys.priv.Public().(ed25519.PublicKey)
	if !ok || !derived.Equal(keys.pub[keys.self]) {
		return nil, fmt.Errorf("sig: keystore %s: private key does not match public key", path)
	}
	return keys, nil
}
