package sig

import (
	"bytes"
	"testing"
	"testing/quick"
)

func schemes(t *testing.T, n int) []Scheme {
	t.Helper()
	ed, err := NewEd25519(n, 1)
	if err != nil {
		t.Fatal(err)
	}
	return []Scheme{ed, NewHMAC(n, 1)}
}

func TestSignVerifyRoundTrip(t *testing.T) {
	for _, s := range schemes(t, 4) {
		t.Run(s.Name(), func(t *testing.T) {
			msg := []byte("broadcast payload")
			tag := s.Sign(2, msg)
			if !s.Verify(2, msg, tag) {
				t.Fatal("valid signature rejected")
			}
		})
	}
}

func TestVerifyRejectsWrongSigner(t *testing.T) {
	for _, s := range schemes(t, 4) {
		t.Run(s.Name(), func(t *testing.T) {
			msg := []byte("m")
			tag := s.Sign(1, msg)
			if s.Verify(2, msg, tag) {
				t.Fatal("signature by node 1 verified as node 2 (impersonation)")
			}
		})
	}
}

func TestVerifyRejectsTamperedMessage(t *testing.T) {
	for _, s := range schemes(t, 2) {
		t.Run(s.Name(), func(t *testing.T) {
			msg := []byte("original")
			tag := s.Sign(0, msg)
			if s.Verify(0, []byte("originaX"), tag) {
				t.Fatal("tampered message verified")
			}
		})
	}
}

func TestVerifyRejectsTamperedTag(t *testing.T) {
	for _, s := range schemes(t, 2) {
		t.Run(s.Name(), func(t *testing.T) {
			msg := []byte("m")
			tag := s.Sign(0, msg)
			for i := range tag {
				bad := make([]byte, len(tag))
				copy(bad, tag)
				bad[i] ^= 0x01
				if s.Verify(0, msg, bad) {
					t.Fatalf("tag with flipped bit at byte %d verified", i)
				}
			}
		})
	}
}

func TestVerifyUnknownNode(t *testing.T) {
	for _, s := range schemes(t, 2) {
		if s.Verify(99, []byte("m"), []byte("sig")) {
			t.Fatalf("%s: unknown node verified", s.Name())
		}
	}
}

func TestSignUnknownNodePanics(t *testing.T) {
	for _, s := range schemes(t, 2) {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: signing for unregistered node should panic", s.Name())
				}
			}()
			s.Sign(99, []byte("m"))
		}()
	}
}

func TestSigSizeMatches(t *testing.T) {
	for _, s := range schemes(t, 2) {
		tag := s.Sign(0, []byte("m"))
		if len(tag) != s.SigSize() {
			t.Errorf("%s: SigSize()=%d but tag is %d bytes", s.Name(), s.SigSize(), len(tag))
		}
	}
}

func TestDeterministicKeyGeneration(t *testing.T) {
	a := NewHMAC(3, 42)
	b := NewHMAC(3, 42)
	msg := []byte("m")
	if !bytes.Equal(a.Sign(1, msg), b.Sign(1, msg)) {
		t.Fatal("same seed produced different HMAC keys")
	}
	c := NewHMAC(3, 43)
	if bytes.Equal(a.Sign(1, msg), c.Sign(1, msg)) {
		t.Fatal("different seeds produced identical HMAC keys")
	}
	e1, err := NewEd25519(3, 42)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := NewEd25519(3, 42)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(e1.Sign(1, msg), e2.Sign(1, msg)) {
		t.Fatal("same seed produced different ed25519 keys")
	}
}

func TestEmptyMessage(t *testing.T) {
	for _, s := range schemes(t, 1) {
		tag := s.Sign(0, nil)
		if !s.Verify(0, nil, tag) {
			t.Errorf("%s: empty message signature rejected", s.Name())
		}
	}
}

// Property: sign/verify round-trips for arbitrary messages and ids; a
// different id never verifies.
func TestQuickUnforgeability(t *testing.T) {
	s := NewHMAC(8, 7)
	f := func(idRaw uint8, msg []byte) bool {
		id := uint32(idRaw % 8)
		other := (id + 1) % 8
		tag := s.Sign(id, msg)
		return s.Verify(id, msg, tag) && !s.Verify(other, msg, tag)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: messages differing in any byte produce different tags (collision
// resistance smoke test).
func TestQuickDistinctMessagesDistinctTags(t *testing.T) {
	s := NewHMAC(1, 7)
	f := func(msg []byte, idx uint16, delta byte) bool {
		if len(msg) == 0 || delta == 0 {
			return true
		}
		other := make([]byte, len(msg))
		copy(other, msg)
		other[int(idx)%len(msg)] ^= delta
		return !bytes.Equal(s.Sign(0, msg), s.Sign(0, other))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
