package sig

import (
	"encoding/json"
	"os"
	"strings"
	"testing"
)

func TestGenerateAndLoadKeystores(t *testing.T) {
	dir := t.TempDir()
	if err := GenerateKeystores(dir, 3, 7); err != nil {
		t.Fatal(err)
	}
	var keys [3]*NodeKeys
	for i := 0; i < 3; i++ {
		k, err := LoadKeystore(KeystorePath(dir, uint32(i)))
		if err != nil {
			t.Fatal(err)
		}
		if k.Self() != uint32(i) {
			t.Fatalf("Self = %d, want %d", k.Self(), i)
		}
		keys[i] = k
	}
	// Cross-node sign/verify through the file round trip.
	msg := []byte("deployment message")
	tag := keys[0].Sign(0, msg)
	for i := 0; i < 3; i++ {
		if !keys[i].Verify(0, msg, tag) {
			t.Fatalf("node %d rejected node 0's signature", i)
		}
		if keys[i].Verify(1, msg, tag) {
			t.Fatalf("node %d verified the signature under the wrong identity", i)
		}
	}
}

func TestKeystoreMatchesDirectScheme(t *testing.T) {
	// Keys generated with the same seed are the same whether used directly
	// or through the file round trip.
	dir := t.TempDir()
	if err := GenerateKeystores(dir, 2, 42); err != nil {
		t.Fatal(err)
	}
	direct, err := NewEd25519(2, 42)
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadKeystore(KeystorePath(dir, 1))
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("m")
	if !direct.Verify(1, msg, loaded.Sign(1, msg)) {
		t.Fatal("keystore and direct scheme disagree")
	}
}

func TestKeystoreRefusesToSignForOthers(t *testing.T) {
	dir := t.TempDir()
	if err := GenerateKeystores(dir, 2, 1); err != nil {
		t.Fatal(err)
	}
	k, err := LoadKeystore(KeystorePath(dir, 0))
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("signing for another node did not panic")
		}
	}()
	k.Sign(1, []byte("m"))
}

func TestKeystorePrivateFileMode(t *testing.T) {
	dir := t.TempDir()
	if err := GenerateKeystores(dir, 1, 1); err != nil {
		t.Fatal(err)
	}
	info, err := os.Stat(KeystorePath(dir, 0))
	if err != nil {
		t.Fatal(err)
	}
	if info.Mode().Perm() != 0o600 {
		t.Fatalf("key file mode = %v, want 0600", info.Mode().Perm())
	}
}

func TestLoadKeystoreErrors(t *testing.T) {
	dir := t.TempDir()
	if _, err := LoadKeystore(dir + "/absent.json"); err == nil {
		t.Error("missing file accepted")
	}
	bad := dir + "/bad.json"
	os.WriteFile(bad, []byte("{not json"), 0o600)
	if _, err := LoadKeystore(bad); err == nil {
		t.Error("garbage file accepted")
	}
	// Public-only bundle has no private key.
	os.WriteFile(bad, []byte(`{"public":{"0":"00"}}`), 0o600)
	if _, err := LoadKeystore(bad); err == nil {
		t.Error("public-only bundle accepted as node keys")
	}
}

func TestLoadKeystoreDetectsTampering(t *testing.T) {
	dir := t.TempDir()
	if err := GenerateKeystores(dir, 2, 1); err != nil {
		t.Fatal(err)
	}
	path := KeystorePath(dir, 0)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var file map[string]any
	if err := json.Unmarshal(raw, &file); err != nil {
		t.Fatal(err)
	}
	// Swap in node 1's public key for node 0: the private key no longer
	// matches and the load must fail.
	pub, ok := file["public"].(map[string]any)
	if !ok {
		t.Fatal("unexpected keystore layout")
	}
	pub["0"] = pub["1"]
	mutated, _ := json.Marshal(file)
	os.WriteFile(path, mutated, 0o600)
	if _, err := LoadKeystore(path); err == nil {
		t.Fatal("mismatched private/public pair accepted")
	}
}

func TestKeystoreFilesAreHexJSON(t *testing.T) {
	dir := t.TempDir()
	if err := GenerateKeystores(dir, 1, 1); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(KeystorePath(dir, 0))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), `"public"`) || !strings.Contains(string(raw), `"private"`) {
		t.Fatal("keystore layout unexpected")
	}
}
