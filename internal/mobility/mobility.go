// Package mobility provides node-movement models for the wireless simulator.
//
// A Model answers "where is node i at virtual time t". Models are pure given
// their seed, so positions can be sampled lazily without simulation events,
// and two queries for the same (node, time) always agree.
package mobility

import (
	"math"
	"math/rand"
	"time"

	"bbcast/internal/geo"
)

// Model yields node positions over time. Implementations must be
// deterministic: Pos(id, t) depends only on the construction parameters.
type Model interface {
	// Pos returns the position of node id at time t. t must be
	// nondecreasing per node across calls (models may keep per-node cursors).
	Pos(id uint32, t time.Duration) geo.Point
	// Area returns the area nodes move in.
	Area() geo.Rect
}

// Static places nodes at fixed positions.
type Static struct {
	area geo.Rect
	pos  []geo.Point
}

var _ Model = (*Static)(nil)

// NewStatic returns a static model with explicit positions for nodes 0..len-1.
func NewStatic(area geo.Rect, positions []geo.Point) *Static {
	cp := make([]geo.Point, len(positions))
	copy(cp, positions)
	return &Static{area: area, pos: cp}
}

// NewUniformStatic places n nodes uniformly at random in area.
func NewUniformStatic(area geo.Rect, n int, seed int64) *Static {
	rng := rand.New(rand.NewSource(seed))
	pos := make([]geo.Point, n)
	for i := range pos {
		pos[i] = geo.Point{X: rng.Float64() * area.W, Y: rng.Float64() * area.H}
	}
	return &Static{area: area, pos: pos}
}

// NewGridStatic places n nodes on a jittered grid covering area. A jittered
// grid keeps the network connected at moderate densities more reliably than
// uniform placement, which is useful for repeatable experiments.
func NewGridStatic(area geo.Rect, n int, jitter float64, seed int64) *Static {
	rng := rand.New(rand.NewSource(seed))
	cols := 1
	for cols*cols < n {
		cols++
	}
	rows := (n + cols - 1) / cols
	dx := area.W / float64(cols)
	dy := area.H / float64(rows)
	pos := make([]geo.Point, n)
	for i := range pos {
		cx := float64(i%cols)*dx + dx/2
		cy := float64(i/cols)*dy + dy/2
		p := geo.Point{
			X: cx + (rng.Float64()*2-1)*jitter*dx,
			Y: cy + (rng.Float64()*2-1)*jitter*dy,
		}
		pos[i] = p.Clamp(area.W, area.H)
	}
	return &Static{area: area, pos: pos}
}

// Pos implements Model.
func (s *Static) Pos(id uint32, _ time.Duration) geo.Point {
	if int(id) >= len(s.pos) {
		return geo.Point{}
	}
	return s.pos[id]
}

// Area implements Model.
func (s *Static) Area() geo.Rect { return s.area }

// N reports the number of placed nodes.
func (s *Static) N() int { return len(s.pos) }

// waypointLeg is one straight segment of a random-waypoint trajectory.
type waypointLeg struct {
	from, to geo.Point
	start    time.Duration
	end      time.Duration // arrival at `to`; pause until pauseEnd
	pauseEnd time.Duration
}

// RandomWaypoint implements the classic random-waypoint model: each node
// repeatedly picks a uniform destination, moves toward it at a speed drawn
// uniformly from [MinSpeed, MaxSpeed], then pauses for Pause.
type RandomWaypoint struct {
	area     geo.Rect
	minSpeed float64 // m/s, > 0
	maxSpeed float64 // m/s
	pause    time.Duration
	seed     int64

	legs []waypointLeg // current leg per node
	rngs []*rand.Rand
}

var _ Model = (*RandomWaypoint)(nil)

// NewRandomWaypoint builds a random-waypoint model for n nodes. minSpeed must
// be positive (the well-known speed-decay pathology of the model arises from
// allowing speeds near zero).
func NewRandomWaypoint(area geo.Rect, n int, minSpeed, maxSpeed float64, pause time.Duration, seed int64) *RandomWaypoint {
	if minSpeed <= 0 {
		minSpeed = 0.1
	}
	if maxSpeed < minSpeed {
		maxSpeed = minSpeed
	}
	m := &RandomWaypoint{
		area:     area,
		minSpeed: minSpeed,
		maxSpeed: maxSpeed,
		pause:    pause,
		seed:     seed,
		legs:     make([]waypointLeg, n),
		rngs:     make([]*rand.Rand, n),
	}
	for i := 0; i < n; i++ {
		m.rngs[i] = rand.New(rand.NewSource(seed ^ (int64(i)+1)*0x7f4a7c15ee6d1b09))
		start := geo.Point{X: m.rngs[i].Float64() * area.W, Y: m.rngs[i].Float64() * area.H}
		m.legs[i] = m.nextLeg(i, start, 0)
	}
	return m
}

func (m *RandomWaypoint) nextLeg(i int, from geo.Point, start time.Duration) waypointLeg {
	rng := m.rngs[i]
	to := geo.Point{X: rng.Float64() * m.area.W, Y: rng.Float64() * m.area.H}
	speed := m.minSpeed + rng.Float64()*(m.maxSpeed-m.minSpeed)
	dist := from.Dist(to)
	travel := time.Duration(dist / speed * float64(time.Second))
	return waypointLeg{
		from:     from,
		to:       to,
		start:    start,
		end:      start + travel,
		pauseEnd: start + travel + m.pause,
	}
}

// Pos implements Model. Queries must be per-node nondecreasing in t.
func (m *RandomWaypoint) Pos(id uint32, t time.Duration) geo.Point {
	i := int(id)
	if i >= len(m.legs) {
		return geo.Point{}
	}
	leg := &m.legs[i]
	for t >= leg.pauseEnd {
		m.legs[i] = m.nextLeg(i, leg.to, leg.pauseEnd)
		leg = &m.legs[i]
	}
	if t >= leg.end {
		return leg.to // pausing
	}
	if leg.end == leg.start {
		return leg.to
	}
	frac := float64(t-leg.start) / float64(leg.end-leg.start)
	return leg.from.Add(leg.to.Sub(leg.from).Scale(frac))
}

// Area implements Model.
func (m *RandomWaypoint) Area() geo.Rect { return m.area }

// RandomWalk moves each node in a straight line for a fixed epoch, then turns
// to a fresh uniform direction, reflecting off area borders.
type RandomWalk struct {
	area  geo.Rect
	speed float64
	epoch time.Duration

	pos  []geo.Point
	dir  []geo.Point // unit vectors
	at   []time.Duration
	rngs []*rand.Rand
}

var _ Model = (*RandomWalk)(nil)

// NewRandomWalk builds a random-walk model for n nodes moving at speed m/s,
// changing direction every epoch.
func NewRandomWalk(area geo.Rect, n int, speed float64, epoch time.Duration, seed int64) *RandomWalk {
	if epoch <= 0 {
		epoch = time.Second
	}
	m := &RandomWalk{
		area:  area,
		speed: speed,
		epoch: epoch,
		pos:   make([]geo.Point, n),
		dir:   make([]geo.Point, n),
		at:    make([]time.Duration, n),
		rngs:  make([]*rand.Rand, n),
	}
	for i := 0; i < n; i++ {
		m.rngs[i] = rand.New(rand.NewSource(seed ^ (int64(i)+1)*0x2545f4914f6cdd1d))
		m.pos[i] = geo.Point{X: m.rngs[i].Float64() * area.W, Y: m.rngs[i].Float64() * area.H}
		m.dir[i] = randDir(m.rngs[i])
	}
	return m
}

func randDir(rng *rand.Rand) geo.Point {
	for {
		p := geo.Point{X: rng.Float64()*2 - 1, Y: rng.Float64()*2 - 1}
		n := p.Norm()
		if n > 1e-6 && n <= 1 {
			return p.Scale(1 / n)
		}
	}
}

// Pos implements Model. Queries must be per-node nondecreasing in t.
func (m *RandomWalk) Pos(id uint32, t time.Duration) geo.Point {
	i := int(id)
	if i >= len(m.pos) {
		return geo.Point{}
	}
	for m.at[i] < t {
		step := m.epoch
		if m.at[i]+step > t {
			step = t - m.at[i]
		}
		dist := m.speed * step.Seconds()
		next := m.pos[i].Add(m.dir[i].Scale(dist))
		// Reflect off borders.
		if next.X < 0 {
			next.X = -next.X
			m.dir[i].X = -m.dir[i].X
		}
		if next.X > m.area.W {
			next.X = 2*m.area.W - next.X
			m.dir[i].X = -m.dir[i].X
		}
		if next.Y < 0 {
			next.Y = -next.Y
			m.dir[i].Y = -m.dir[i].Y
		}
		if next.Y > m.area.H {
			next.Y = 2*m.area.H - next.Y
			m.dir[i].Y = -m.dir[i].Y
		}
		m.pos[i] = next.Clamp(m.area.W, m.area.H)
		m.at[i] += step
		if m.at[i]%m.epoch == 0 {
			m.dir[i] = randDir(m.rngs[i])
		}
	}
	return m.pos[i]
}

// Area implements Model.
func (m *RandomWalk) Area() geo.Rect { return m.area }

// Ferry models a partitioned network healed only by a message ferry: two
// static clusters at opposite ends of the area, never in mutual radio range,
// plus one node shuttling between them. This realizes the paper's weakened
// connectivity assumption (footnote 7): the well-connected graph is only
// *infinitely often* connected, and dissemination time grows with the
// disconnected durations.
type Ferry struct {
	area    geo.Rect
	pos     []geo.Point // static cluster positions; ferry is the last id
	ferryID uint32
	speed   float64
	left    geo.Point // ferry turnaround points
	right   geo.Point
}

var _ Model = (*Ferry)(nil)

// NewFerry places nPerSide nodes in each of two clusters (columns at the
// left and right edges) and one ferry node (id 2*nPerSide) shuttling between
// cluster centres at the given speed.
func NewFerry(area geo.Rect, nPerSide int, speed float64, seed int64) *Ferry {
	rng := rand.New(rand.NewSource(seed))
	clusterW := area.W / 6
	pos := make([]geo.Point, 0, 2*nPerSide)
	place := func(x0 float64) {
		for i := 0; i < nPerSide; i++ {
			pos = append(pos, geo.Point{
				X: x0 + rng.Float64()*clusterW,
				Y: rng.Float64() * area.H,
			})
		}
	}
	place(0)
	place(area.W - clusterW)
	if speed <= 0 {
		speed = 10
	}
	return &Ferry{
		area:    area,
		pos:     pos,
		ferryID: uint32(2 * nPerSide),
		speed:   speed,
		left:    geo.Point{X: clusterW / 2, Y: area.H / 2},
		right:   geo.Point{X: area.W - clusterW/2, Y: area.H / 2},
	}
}

// N reports the total node count (clusters plus ferry).
func (f *Ferry) N() int { return len(f.pos) + 1 }

// FerryID reports the shuttling node's id.
func (f *Ferry) FerryID() uint32 { return f.ferryID }

// Pos implements Model. The ferry follows a triangle wave between the two
// cluster centres; all other nodes are static.
func (f *Ferry) Pos(id uint32, t time.Duration) geo.Point {
	if id != f.ferryID {
		if int(id) >= len(f.pos) {
			return geo.Point{}
		}
		return f.pos[id]
	}
	span := f.right.X - f.left.X
	period := 2 * span / f.speed // seconds for a round trip
	phase := t.Seconds() - period*float64(int(t.Seconds()/period))
	var x float64
	if phase < period/2 {
		x = f.left.X + f.speed*phase
	} else {
		x = f.right.X - f.speed*(phase-period/2)
	}
	return geo.Point{X: x, Y: f.area.H / 2}
}

// Area implements Model.
func (f *Ferry) Area() geo.Rect { return f.area }

// GaussMarkov is the Gauss–Markov mobility model: each node's velocity
// evolves as a first-order autoregressive process
//
//	v(t+1) = α·v(t) + (1−α)·v̄ + σ·sqrt(1−α²)·w,  w ~ N(0,1)
//
// producing smooth, temporally correlated motion (no sharp waypoint turns).
// α = 1 is a straight line, α = 0 memoryless Brownian-like motion.
type GaussMarkov struct {
	area      geo.Rect
	alpha     float64
	meanSpeed float64
	sigma     float64
	epoch     time.Duration

	pos  []geo.Point
	vel  []geo.Point
	at   []time.Duration
	rngs []*rand.Rand
}

var _ Model = (*GaussMarkov)(nil)

// NewGaussMarkov builds the model for n nodes with memory α ∈ [0,1], mean
// speed (m/s) and speed deviation sigma, updating velocity every epoch.
func NewGaussMarkov(area geo.Rect, n int, alpha, meanSpeed, sigma float64, epoch time.Duration, seed int64) *GaussMarkov {
	if alpha < 0 {
		alpha = 0
	}
	if alpha > 1 {
		alpha = 1
	}
	if epoch <= 0 {
		epoch = time.Second
	}
	m := &GaussMarkov{
		area:      area,
		alpha:     alpha,
		meanSpeed: meanSpeed,
		sigma:     sigma,
		epoch:     epoch,
		pos:       make([]geo.Point, n),
		vel:       make([]geo.Point, n),
		at:        make([]time.Duration, n),
		rngs:      make([]*rand.Rand, n),
	}
	for i := 0; i < n; i++ {
		m.rngs[i] = rand.New(rand.NewSource(seed ^ (int64(i)+1)*0x9e3779b97f4a7))
		m.pos[i] = geo.Point{X: m.rngs[i].Float64() * area.W, Y: m.rngs[i].Float64() * area.H}
		m.vel[i] = randDir(m.rngs[i]).Scale(meanSpeed)
	}
	return m
}

// Pos implements Model. Queries must be per-node nondecreasing in t.
func (m *GaussMarkov) Pos(id uint32, t time.Duration) geo.Point {
	i := int(id)
	if i >= len(m.pos) {
		return geo.Point{}
	}
	for m.at[i] < t {
		step := m.epoch
		if m.at[i]+step > t {
			step = t - m.at[i]
		}
		next := m.pos[i].Add(m.vel[i].Scale(step.Seconds()))
		// Reflect at borders (flipping the offending velocity component).
		if next.X < 0 {
			next.X = -next.X
			m.vel[i].X = -m.vel[i].X
		}
		if next.X > m.area.W {
			next.X = 2*m.area.W - next.X
			m.vel[i].X = -m.vel[i].X
		}
		if next.Y < 0 {
			next.Y = -next.Y
			m.vel[i].Y = -m.vel[i].Y
		}
		if next.Y > m.area.H {
			next.Y = 2*m.area.H - next.Y
			m.vel[i].Y = -m.vel[i].Y
		}
		m.pos[i] = next.Clamp(m.area.W, m.area.H)
		m.at[i] += step
		if m.at[i]%m.epoch == 0 {
			m.updateVelocity(i)
		}
	}
	return m.pos[i]
}

// updateVelocity applies the AR(1) step per component, with the mean
// velocity pointing along the current heading at meanSpeed.
func (m *GaussMarkov) updateVelocity(i int) {
	rng := m.rngs[i]
	speed := m.vel[i].Norm()
	var mean geo.Point
	if speed > 1e-9 {
		mean = m.vel[i].Scale(m.meanSpeed / speed)
	} else {
		mean = randDir(rng).Scale(m.meanSpeed)
	}
	noise := math.Sqrt(1-m.alpha*m.alpha) * m.sigma
	m.vel[i] = geo.Point{
		X: m.alpha*m.vel[i].X + (1-m.alpha)*mean.X + noise*rng.NormFloat64(),
		Y: m.alpha*m.vel[i].Y + (1-m.alpha)*mean.Y + noise*rng.NormFloat64(),
	}
}

// Area implements Model.
func (m *GaussMarkov) Area() geo.Rect { return m.area }
