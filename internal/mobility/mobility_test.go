package mobility

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"bbcast/internal/geo"
)

var area = geo.Rect{W: 1000, H: 1000}

func TestStaticPositionsFixed(t *testing.T) {
	m := NewUniformStatic(area, 10, 1)
	p0 := m.Pos(3, 0)
	p1 := m.Pos(3, time.Hour)
	if p0 != p1 {
		t.Fatalf("static node moved: %v -> %v", p0, p1)
	}
	if !area.Contains(p0) {
		t.Fatalf("position %v outside area", p0)
	}
	if m.N() != 10 {
		t.Fatalf("N = %d", m.N())
	}
}

func TestStaticExplicit(t *testing.T) {
	pts := []geo.Point{{X: 1, Y: 2}, {X: 3, Y: 4}}
	m := NewStatic(area, pts)
	if m.Pos(0, 0) != pts[0] || m.Pos(1, 0) != pts[1] {
		t.Fatal("explicit positions not honoured")
	}
	// Out-of-range id returns origin rather than panicking.
	if m.Pos(99, 0) != (geo.Point{}) {
		t.Fatal("out-of-range id should return zero point")
	}
	// The input slice is copied at the boundary.
	pts[0] = geo.Point{X: 99, Y: 99}
	if m.Pos(0, 0) == (geo.Point{X: 99, Y: 99}) {
		t.Fatal("NewStatic aliased caller slice")
	}
}

func TestGridStaticInArea(t *testing.T) {
	m := NewGridStatic(area, 37, 0.4, 7)
	for i := uint32(0); i < 37; i++ {
		if !area.Contains(m.Pos(i, 0)) {
			t.Fatalf("node %d at %v outside area", i, m.Pos(i, 0))
		}
	}
}

func TestGridStaticSpread(t *testing.T) {
	// With zero jitter nodes sit on distinct grid points.
	m := NewGridStatic(area, 25, 0, 7)
	seen := map[geo.Point]bool{}
	for i := uint32(0); i < 25; i++ {
		seen[m.Pos(i, 0)] = true
	}
	if len(seen) != 25 {
		t.Fatalf("grid placement collided: %d distinct of 25", len(seen))
	}
}

func TestRandomWaypointStaysInArea(t *testing.T) {
	m := NewRandomWaypoint(area, 5, 1, 10, time.Second, 3)
	for ti := 0; ti <= 600; ti++ {
		tm := time.Duration(ti) * time.Second
		for id := uint32(0); id < 5; id++ {
			p := m.Pos(id, tm)
			if !area.Contains(p) {
				t.Fatalf("node %d at %v outside area at t=%v", id, p, tm)
			}
		}
	}
}

func TestRandomWaypointMoves(t *testing.T) {
	m := NewRandomWaypoint(area, 1, 5, 5, 0, 9)
	p0 := m.Pos(0, 0)
	p1 := m.Pos(0, 30*time.Second)
	if p0.Dist(p1) == 0 {
		t.Fatal("waypoint node did not move in 30s")
	}
}

func TestRandomWaypointSpeedBound(t *testing.T) {
	const speed = 10.0
	m := NewRandomWaypoint(area, 3, speed, speed, 0, 11)
	prev := make([]geo.Point, 3)
	for id := uint32(0); id < 3; id++ {
		prev[id] = m.Pos(id, 0)
	}
	step := 100 * time.Millisecond
	for ti := 1; ti <= 3000; ti++ {
		tm := time.Duration(ti) * step
		for id := uint32(0); id < 3; id++ {
			p := m.Pos(id, tm)
			maxStep := speed*step.Seconds() + 1e-6
			if p.Dist(prev[id]) > maxStep {
				t.Fatalf("node %d jumped %.3f m in %v (max %.3f)", id, p.Dist(prev[id]), step, maxStep)
			}
			prev[id] = p
		}
	}
}

func TestRandomWaypointPause(t *testing.T) {
	// With an enormous pause, after the first leg completes the node is
	// parked at its destination for a long stretch.
	m := NewRandomWaypoint(area, 1, 100, 100, time.Hour, 5)
	// Longest possible leg is diagonal/speed = sqrt(2)*1000/100 ≈ 14.2s.
	pA := m.Pos(0, 20*time.Second)
	pB := m.Pos(0, 21*time.Second)
	if pA != pB {
		t.Fatalf("node moved during pause: %v -> %v", pA, pB)
	}
}

func TestRandomWalkStaysInAreaAndMoves(t *testing.T) {
	m := NewRandomWalk(area, 4, 20, 2*time.Second, 13)
	start := make([]geo.Point, 4)
	for id := uint32(0); id < 4; id++ {
		start[id] = m.Pos(id, 0)
	}
	moved := false
	for ti := 1; ti <= 300; ti++ {
		tm := time.Duration(ti) * time.Second
		for id := uint32(0); id < 4; id++ {
			p := m.Pos(id, tm)
			if !area.Contains(p) {
				t.Fatalf("walk node %d at %v outside area", id, p)
			}
			if p.Dist(start[id]) > 1 {
				moved = true
			}
		}
	}
	if !moved {
		t.Fatal("no random-walk node moved")
	}
}

func TestModelsDeterministic(t *testing.T) {
	sample := func() []geo.Point {
		m := NewRandomWaypoint(area, 3, 1, 10, time.Second, 77)
		var out []geo.Point
		for ti := 0; ti < 50; ti++ {
			for id := uint32(0); id < 3; id++ {
				out = append(out, m.Pos(id, time.Duration(ti)*time.Second))
			}
		}
		return out
	}
	a, b := sample(), sample()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("trajectories diverge at sample %d", i)
		}
	}
}

// Property: positions remain in-area for arbitrary query sequences.
func TestQuickWaypointInArea(t *testing.T) {
	f := func(seed int64, steps []uint16) bool {
		m := NewRandomWaypoint(area, 2, 0.5, 30, 500*time.Millisecond, seed)
		var tm time.Duration
		for _, s := range steps {
			tm += time.Duration(s) * time.Millisecond
			for id := uint32(0); id < 2; id++ {
				if !area.Contains(m.Pos(id, tm)) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestFerryClustersStaticAndSeparated(t *testing.T) {
	m := NewFerry(geo.Rect{W: 1200, H: 300}, 5, 20, 1)
	if m.N() != 11 || m.FerryID() != 10 {
		t.Fatalf("N=%d ferry=%d", m.N(), m.FerryID())
	}
	for id := uint32(0); id < 10; id++ {
		if m.Pos(id, 0) != m.Pos(id, time.Hour) {
			t.Fatalf("cluster node %d moved", id)
		}
	}
	// Left and right clusters are far apart.
	for l := uint32(0); l < 5; l++ {
		for r := uint32(5); r < 10; r++ {
			if m.Pos(l, 0).Dist(m.Pos(r, 0)) < 600 {
				t.Fatalf("clusters too close: %v vs %v", m.Pos(l, 0), m.Pos(r, 0))
			}
		}
	}
}

func TestFerryShuttles(t *testing.T) {
	area := geo.Rect{W: 1200, H: 300}
	m := NewFerry(area, 3, 50, 1)
	ferry := m.FerryID()
	start := m.Pos(ferry, 0)
	if start.X > area.W/2 {
		t.Fatalf("ferry starts at %v, want left side", start)
	}
	// span = right.X-left.X = 1200-200 = 1000 m at 50 m/s → 20 s one way.
	mid := m.Pos(ferry, 20*time.Second)
	if mid.X < area.W*3/4 {
		t.Fatalf("ferry at %v after one crossing, want right side", mid)
	}
	back := m.Pos(ferry, 40*time.Second)
	if back.X > area.W/4 {
		t.Fatalf("ferry at %v after a round trip, want left side", back)
	}
	// Never leaves the area.
	for ti := 0; ti < 200; ti++ {
		p := m.Pos(ferry, time.Duration(ti)*time.Second)
		if !area.Contains(p) {
			t.Fatalf("ferry left the area: %v", p)
		}
	}
}

func TestGaussMarkovStaysInAreaAndMoves(t *testing.T) {
	m := NewGaussMarkov(area, 4, 0.75, 10, 3, time.Second, 5)
	start := make([]geo.Point, 4)
	for id := uint32(0); id < 4; id++ {
		start[id] = m.Pos(id, 0)
	}
	moved := false
	for ti := 1; ti <= 400; ti++ {
		tm := time.Duration(ti) * 500 * time.Millisecond
		for id := uint32(0); id < 4; id++ {
			p := m.Pos(id, tm)
			if !area.Contains(p) {
				t.Fatalf("node %d at %v left the area", id, p)
			}
			if p.Dist(start[id]) > 5 {
				moved = true
			}
		}
	}
	if !moved {
		t.Fatal("no Gauss-Markov node moved")
	}
}

func TestGaussMarkovSmootherThanWalk(t *testing.T) {
	// High α motion has temporally correlated headings: the mean turn angle
	// per epoch should be much smaller than for a fresh-direction walk.
	turn := func(positions []geo.Point) float64 {
		var sum float64
		n := 0
		for i := 2; i < len(positions); i++ {
			a := positions[i-1].Sub(positions[i-2])
			b := positions[i].Sub(positions[i-1])
			na, nb := a.Norm(), b.Norm()
			if na < 1e-9 || nb < 1e-9 {
				continue
			}
			cos := (a.X*b.X + a.Y*b.Y) / (na * nb)
			if cos > 1 {
				cos = 1
			}
			if cos < -1 {
				cos = -1
			}
			sum += math.Acos(cos)
			n++
		}
		return sum / float64(n)
	}
	sample := func(m Model) []geo.Point {
		var out []geo.Point
		for ti := 0; ti < 120; ti++ {
			out = append(out, m.Pos(0, time.Duration(ti)*time.Second))
		}
		return out
	}
	smooth := turn(sample(NewGaussMarkov(area, 1, 0.9, 10, 2, time.Second, 3)))
	jerky := turn(sample(NewRandomWalk(area, 1, 10, time.Second, 3)))
	if smooth >= jerky {
		t.Fatalf("Gauss-Markov (α=0.9) mean turn %.2f not smoother than random walk %.2f", smooth, jerky)
	}
}

func TestGaussMarkovAlphaClamped(t *testing.T) {
	m := NewGaussMarkov(area, 1, 5, 10, 2, time.Second, 3) // α>1 clamps to 1
	p := m.Pos(0, 10*time.Second)
	if !area.Contains(p) {
		t.Fatal("clamped-alpha model left the area")
	}
}
