package perfgate

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"bbcast/internal/runner"
)

// report builds a v2 bench report with the given serial-arm figures.
func report(ns, allocs, bytes, simMS float64) runner.BenchReport {
	return runner.BenchReport{
		Schema: runner.BenchSchema,
		Serial: runner.BenchArm{
			Workers: 1, Replicates: 16, Events: 100000,
			NsPerEvent: ns, AllocsPerEvent: allocs, BytesPerEvent: bytes,
			WallClockMS: ns * 100000 / 1e6, EventsPerSec: 1e9 / ns,
		},
		SimMSPerSimS: simMS,
		Knee: &runner.KneeReport{
			N: 40, Senders: 20, InjectS: 15, Threshold: 0.95,
			KneeRate: 8, KneeGoodput: 7.5, WallClockMS: 4000,
		},
	}
}

// TestCompareSyntheticRegression is the gate's own gate: a baseline slowed
// down after the fact must fail Compare, and an identical pair must pass.
func TestCompareSyntheticRegression(t *testing.T) {
	base := report(5600, 23.1, 2360, 2.6)

	if regs := Compare(base, base, Default()); len(regs) != 0 {
		t.Fatalf("identical reports must pass the gate, got %v", regs)
	}

	// Synthetic regression: the "current" run is 2x slower and 50% more
	// allocation-heavy than the committed baseline.
	cur := report(11200, 34.6, 3540, 5.2)
	cur.Knee.WallClockMS = 9000
	cur.Knee.KneeRate = 2
	regs := Compare(base, cur, Default())
	want := map[string]bool{
		"serial.ns_per_event":     true,
		"serial.allocs_per_event": true,
		"serial.bytes_per_event":  true,
		"sim_ms_per_sim_s":        true,
		"knee.wall_clock_ms":      true,
		"knee.offered_msgs_per_s": true,
	}
	if len(regs) != len(want) {
		t.Fatalf("got %d regressions %v, want %d", len(regs), regs, len(want))
	}
	for _, r := range regs {
		if !want[r.Metric] {
			t.Errorf("unexpected regression metric %q", r.Metric)
		}
		if r.Metric != "knee.offered_msgs_per_s" && r.Change <= 0 {
			t.Errorf("%s: change %v should be positive", r.Metric, r.Change)
		}
		if !strings.Contains(r.String(), r.Metric) {
			t.Errorf("String() %q should name the metric", r.String())
		}
	}
}

func TestCompareWithinTolerancePasses(t *testing.T) {
	base := report(5600, 23.1, 2360, 2.6)
	cur := report(5600*1.2, 23.1*1.05, 2360*1.05, 2.6*1.3) // inside defaults
	if regs := Compare(base, cur, Default()); len(regs) != 0 {
		t.Fatalf("within-tolerance drift must pass, got %v", regs)
	}
}

// TestCompareSkipsMissingBaselineFields: a v1 baseline (no simulated-second
// figure, no knee) must not fail a v2 measurement on the fields it lacks.
func TestCompareSkipsMissingBaselineFields(t *testing.T) {
	base := report(5600, 23.1, 2360, 0)
	base.Knee = nil
	base.Schema = "bbcast-bench/v1"
	cur := report(5600, 23.1, 2360, 99) // huge sim-ms, but baseline has none
	if regs := Compare(base, cur, Default()); len(regs) != 0 {
		t.Fatalf("missing baseline fields must be skipped, got %v", regs)
	}
}

// TestCompareKneeShapeMismatch: knee wall-clock only compares like sweeps.
func TestCompareKneeShapeMismatch(t *testing.T) {
	base := report(5600, 23.1, 2360, 2.6)
	cur := report(5600, 23.1, 2360, 2.6)
	cur.Knee.N = 80 // different sweep shape costs different work
	cur.Knee.WallClockMS = base.Knee.WallClockMS * 10
	cur.Knee.KneeRate = base.Knee.KneeRate
	if regs := Compare(base, cur, Default()); len(regs) != 0 {
		t.Fatalf("mismatched knee sweep shapes must not be wall-compared, got %v", regs)
	}
}

func TestFromEnv(t *testing.T) {
	env := map[string]string{
		"BBPERF_TOL_NS_PER_EVENT": "0.8",
		"BBPERF_TOL_SIM_MS":       "off",
		"BBPERF_TOL_KNEE_WALL":    "0",
	}
	tol, err := FromEnv(func(k string) string { return env[k] })
	if err != nil {
		t.Fatal(err)
	}
	if tol.NsPerEvent != 0.8 {
		t.Errorf("NsPerEvent = %v, want 0.8", tol.NsPerEvent)
	}
	if tol.SimMS != 0 || tol.KneeWall != 0 {
		t.Errorf("off/0 must disable: SimMS=%v KneeWall=%v", tol.SimMS, tol.KneeWall)
	}
	if tol.AllocsPerEvent != Default().AllocsPerEvent {
		t.Errorf("unset vars must keep defaults")
	}

	if _, err := FromEnv(func(string) string { return "fast" }); err == nil {
		t.Error("malformed tolerance must error, not silently weaken the gate")
	}
}

func TestParseBaselineWrapper(t *testing.T) {
	after := report(5600, 23.1, 2360, 2.6)
	raw, err := json.Marshal(map[string]any{
		"schema": "bbcast-bench-pr/v2",
		"before": report(6000, 25, 2500, 3.0),
		"after":  after,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := ParseBaseline(raw)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Serial.NsPerEvent != after.Serial.NsPerEvent {
		t.Errorf("wrapper baseline must use the after section: got ns=%v", rep.Serial.NsPerEvent)
	}

	bare, err := json.Marshal(after)
	if err != nil {
		t.Fatal(err)
	}
	rep, err = ParseBaseline(bare)
	if err != nil {
		t.Fatal(err)
	}
	if rep.SimMSPerSimS != 2.6 {
		t.Errorf("bare baseline: SimMSPerSimS = %v, want 2.6", rep.SimMSPerSimS)
	}

	if _, err := ParseBaseline([]byte(`{"schema":"bbcast-bench-pr/v1"}`)); err == nil {
		t.Error("wrapper without after must error")
	}
	if _, err := ParseBaseline([]byte(`not json`)); err == nil {
		t.Error("bad JSON must error")
	}
}

// TestParseBaselineCommitted parses every committed BENCH_*.json so the gate
// can never be wedged by the repository's own trajectory files.
func TestParseBaselineCommitted(t *testing.T) {
	matches, err := filepath.Glob("../../BENCH_*.json")
	if err != nil || len(matches) == 0 {
		t.Skipf("no committed baselines found: %v", err)
	}
	for _, m := range matches {
		rep, err := LoadBaseline(m)
		if err != nil {
			t.Errorf("%s: %v", m, err)
			continue
		}
		if rep.Serial.NsPerEvent <= 0 {
			t.Errorf("%s: baseline serial ns/event = %v, want > 0", m, rep.Serial.NsPerEvent)
		}
	}
}

func TestLatestBaseline(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"BENCH_3.json", "BENCH_10.json", "BENCH_notanumber.json"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("{}"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	got, err := LatestBaseline(dir)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(got) != "BENCH_10.json" {
		t.Errorf("LatestBaseline = %s, want BENCH_10.json (numeric, not lexical, order)", got)
	}

	if _, err := LatestBaseline(t.TempDir()); err == nil {
		t.Error("empty dir must error")
	}
}
