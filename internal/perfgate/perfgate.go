// Package perfgate compares a fresh benchmark report against the committed
// BENCH_*.json trajectory and flags regressions beyond per-metric tolerances.
//
// The gate distinguishes two metric classes. Allocator counters
// (allocs/event, bytes/event) are hardware-independent — the same code on the
// same Go version allocates identically everywhere — so they get tight
// default tolerances. Wall-clock figures (ns/event, sim-ms per simulated
// second, knee sweep wall-clock) vary with the machine, so their defaults are
// loose and every tolerance can be widened or disabled through BBPERF_TOL_*
// environment variables (see FromEnv).
//
// Baselines are loaded from either a bare bbcast-bench report or the
// committed PR wrapper ({"schema": "bbcast-bench-pr/...", "before": ...,
// "after": ...}), in which case the "after" section — the state of the tree
// at that commit — is the baseline. v1 baselines predate the simulated-second
// and knee sections; comparisons against fields the baseline lacks are
// skipped rather than failed, so the gate tightens as the trajectory adopts
// v2.
package perfgate

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"

	"bbcast/internal/runner"
)

// Tolerances are per-metric allowed relative increases: 0.15 means the
// current value may exceed the baseline by up to 15%. A tolerance <= 0
// disables that metric's check.
type Tolerances struct {
	// NsPerEvent gates the serial arm's wall-clock cost per simulator event.
	NsPerEvent float64
	// AllocsPerEvent gates the serial arm's allocations per event
	// (hardware-independent; keep tight).
	AllocsPerEvent float64
	// BytesPerEvent gates the serial arm's allocated bytes per event
	// (hardware-independent; keep tight).
	BytesPerEvent float64
	// SimMS gates wall-clock ms per simulated second of the default scenario.
	SimMS float64
	// KneeWall gates the knee sweep's wall-clock (same sweep shape across
	// generations; see runner.DefaultKneeOptions).
	KneeWall float64
	// KneeRate gates a *decrease* of the located knee rate: the current knee
	// must be at least baseline*(1-KneeRate). Protects delivered throughput,
	// not just simulator speed.
	KneeRate float64
}

// Default returns the standard gate: tight on allocator counters, loose on
// wall-clock.
func Default() Tolerances {
	return Tolerances{
		NsPerEvent:     0.35,
		AllocsPerEvent: 0.10,
		BytesPerEvent:  0.10,
		SimMS:          0.50,
		KneeWall:       0.50,
		KneeRate:       0.01,
	}
}

// envVars maps each tolerance to its override variable. Values are parsed as
// float fractions ("0.2" = 20%); "off" or "0" disables the metric.
var envVars = []struct {
	name  string
	field func(*Tolerances) *float64
}{
	{"BBPERF_TOL_NS_PER_EVENT", func(t *Tolerances) *float64 { return &t.NsPerEvent }},
	{"BBPERF_TOL_ALLOCS_PER_EVENT", func(t *Tolerances) *float64 { return &t.AllocsPerEvent }},
	{"BBPERF_TOL_BYTES_PER_EVENT", func(t *Tolerances) *float64 { return &t.BytesPerEvent }},
	{"BBPERF_TOL_SIM_MS", func(t *Tolerances) *float64 { return &t.SimMS }},
	{"BBPERF_TOL_KNEE_WALL", func(t *Tolerances) *float64 { return &t.KneeWall }},
	{"BBPERF_TOL_KNEE_RATE", func(t *Tolerances) *float64 { return &t.KneeRate }},
}

// FromEnv starts from Default and applies BBPERF_TOL_* overrides via the
// given lookup (pass os.Getenv). Unset or empty variables keep the default;
// "off" (or any value <= 0) disables that metric; malformed values are an
// error so a typo can't silently weaken the gate.
func FromEnv(getenv func(string) string) (Tolerances, error) {
	tol := Default()
	for _, v := range envVars {
		raw := getenv(v.name)
		if raw == "" {
			continue
		}
		if raw == "off" {
			*v.field(&tol) = 0
			continue
		}
		f, err := strconv.ParseFloat(raw, 64)
		if err != nil {
			return tol, fmt.Errorf("perfgate: %s: bad tolerance %q: %v", v.name, raw, err)
		}
		*v.field(&tol) = f
	}
	return tol, nil
}

// Regression is one gated metric that moved past its tolerance.
type Regression struct {
	Metric    string  `json:"metric"`
	Baseline  float64 `json:"baseline"`
	Current   float64 `json:"current"`
	Change    float64 `json:"change"`    // relative: +0.23 = 23% worse
	Tolerance float64 `json:"tolerance"` // the limit that was exceeded
}

func (r Regression) String() string {
	return fmt.Sprintf("%s: %.4g -> %.4g (%+.1f%%, tolerance %.0f%%)",
		r.Metric, r.Baseline, r.Current, 100*r.Change, 100*r.Tolerance)
}

// check appends a regression when current exceeds baseline by more than tol.
// Disabled (tol <= 0) and unmeasured (baseline <= 0) metrics are skipped:
// a v1 baseline without the knee section must not fail a v2 measurement.
func check(regs []Regression, metric string, baseline, current, tol float64) []Regression {
	if tol <= 0 || baseline <= 0 || current <= 0 {
		return regs
	}
	change := current/baseline - 1
	if change > tol {
		regs = append(regs, Regression{
			Metric: metric, Baseline: baseline, Current: current,
			Change: change, Tolerance: tol,
		})
	}
	return regs
}

// Compare gates the current report against the baseline and returns every
// metric that regressed past its tolerance (empty slice = gate passes).
// Wall-clock metrics compare the serial arms — parallel wall-clock depends on
// core count, which differs between the committing machine and CI. The knee
// sweep wall-clock is compared only when both reports swept the same shape
// (n, senders, injection window), since a different sweep costs different
// work by construction.
func Compare(baseline, current runner.BenchReport, tol Tolerances) []Regression {
	var regs []Regression
	regs = check(regs, "serial.ns_per_event", baseline.Serial.NsPerEvent, current.Serial.NsPerEvent, tol.NsPerEvent)
	regs = check(regs, "serial.allocs_per_event", baseline.Serial.AllocsPerEvent, current.Serial.AllocsPerEvent, tol.AllocsPerEvent)
	regs = check(regs, "serial.bytes_per_event", baseline.Serial.BytesPerEvent, current.Serial.BytesPerEvent, tol.BytesPerEvent)
	regs = check(regs, "sim_ms_per_sim_s", baseline.SimMSPerSimS, current.SimMSPerSimS, tol.SimMS)
	if b, c := baseline.Knee, current.Knee; b != nil && c != nil {
		if b.N == c.N && b.Senders == c.Senders && b.InjectS == c.InjectS {
			regs = check(regs, "knee.wall_clock_ms", b.WallClockMS, c.WallClockMS, tol.KneeWall)
		}
		// The knee rate regresses downward; invert so check's ">" applies.
		if tol.KneeRate > 0 && b.KneeRate > 0 && c.KneeRate < b.KneeRate*(1-tol.KneeRate) {
			regs = append(regs, Regression{
				Metric: "knee.offered_msgs_per_s", Baseline: b.KneeRate, Current: c.KneeRate,
				Change: c.KneeRate/b.KneeRate - 1, Tolerance: tol.KneeRate,
			})
		}
	}
	return regs
}

// prWrapper is the committed BENCH_<pr>.json shape: a before/after pair of
// bench reports plus free-form notes.
type prWrapper struct {
	Schema string              `json:"schema"`
	Before *runner.BenchReport `json:"before"`
	After  *runner.BenchReport `json:"after"`
}

// ParseBaseline extracts the baseline report from raw JSON: either a bare
// bbcast-bench report or a bbcast-bench-pr wrapper (its "after" section).
func ParseBaseline(data []byte) (runner.BenchReport, error) {
	var probe struct {
		Schema string `json:"schema"`
	}
	if err := json.Unmarshal(data, &probe); err != nil {
		return runner.BenchReport{}, fmt.Errorf("perfgate: baseline: %v", err)
	}
	if len(probe.Schema) >= len("bbcast-bench-pr/") && probe.Schema[:len("bbcast-bench-pr/")] == "bbcast-bench-pr/" {
		var w prWrapper
		if err := json.Unmarshal(data, &w); err != nil {
			return runner.BenchReport{}, fmt.Errorf("perfgate: baseline wrapper: %v", err)
		}
		if w.After == nil {
			return runner.BenchReport{}, fmt.Errorf("perfgate: baseline wrapper (%s) has no \"after\" report", probe.Schema)
		}
		return *w.After, nil
	}
	var rep runner.BenchReport
	if err := json.Unmarshal(data, &rep); err != nil {
		return runner.BenchReport{}, fmt.Errorf("perfgate: baseline report: %v", err)
	}
	if rep.Serial.NsPerEvent == 0 && rep.Serial.Events == 0 {
		return rep, fmt.Errorf("perfgate: baseline report has no serial arm (schema %q)", probe.Schema)
	}
	return rep, nil
}

// LoadBaseline reads a baseline report from a file (bare or PR-wrapped).
func LoadBaseline(path string) (runner.BenchReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return runner.BenchReport{}, err
	}
	rep, err := ParseBaseline(data)
	if err != nil {
		return rep, fmt.Errorf("%s: %v", path, err)
	}
	return rep, nil
}

// LatestBaseline locates the highest-numbered BENCH_<n>.json in dir — the
// most recent committed point of the perf trajectory.
func LatestBaseline(dir string) (string, error) {
	matches, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil {
		return "", err
	}
	best, bestN := "", -1
	for _, m := range matches {
		base := filepath.Base(m)
		numPart := base[len("BENCH_") : len(base)-len(".json")]
		n, err := strconv.Atoi(numPart)
		if err != nil {
			continue
		}
		if n > bestN {
			best, bestN = m, n
		}
	}
	if best == "" {
		sort.Strings(matches)
		return "", fmt.Errorf("perfgate: no BENCH_<n>.json baseline in %s (found %v)", dir, matches)
	}
	return best, nil
}
