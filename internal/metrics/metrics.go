// Package metrics collects and summarizes experiment measurements: per-kind
// transmission counts, delivery tracking per injected message, and latency
// distributions.
package metrics

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"bbcast/internal/obsv"
	"bbcast/internal/wire"
)

// Collector accumulates raw events during a run. It implements
// obsv.Observer for the events it cares about (tx, inject, accept) and is
// single-threaded (simulation callbacks).
type Collector struct {
	obsv.Nop

	txByKind  map[wire.Kind]uint64
	injected  map[wire.MsgID]injection
	delivered map[wire.MsgID]map[wire.NodeID]delivery

	// Crash-recovery accounting: catch-up sync traffic and per-node
	// rejoin-to-first-accept latency (how long a wiped node stays dark).
	syncReqs      uint64
	syncServed    uint64
	syncApplied   uint64
	syncBytes     uint64
	syncAbandoned uint64
	rejoins       uint64
	rejoinAt      map[wire.NodeID]time.Duration
	rejoinLats    []time.Duration
}

type injection struct {
	at     time.Duration
	origin wire.NodeID
}

// delivery is one node's first acceptance of a message, with the lineage of
// the frame that completed it.
type delivery struct {
	at        time.Duration
	hops      uint32
	recovered bool
}

var _ obsv.Observer = (*Collector)(nil)

// NewCollector returns an empty collector.
func NewCollector() *Collector {
	return &Collector{
		txByKind:  make(map[wire.Kind]uint64),
		injected:  make(map[wire.MsgID]injection),
		delivered: make(map[wire.MsgID]map[wire.NodeID]delivery),
		rejoinAt:  make(map[wire.NodeID]time.Duration),
	}
}

// OnPacketTx records a frame put on the air.
func (c *Collector) OnPacketTx(_ time.Duration, _ wire.NodeID, kind wire.Kind, _ wire.MsgID, _ wire.Meta) {
	c.txByKind[kind]++
}

// OnInject records the origination of message id at node.
func (c *Collector) OnInject(at time.Duration, node wire.NodeID, id wire.MsgID) {
	c.injected[id] = injection{at: at, origin: node}
}

// OnAccept records that node accepted message id at the given time, along
// with the accepting frame's hop count and recovery attribution. Repeat
// accepts for the same (node, id) are ignored.
func (c *Collector) OnAccept(at time.Duration, node wire.NodeID, id wire.MsgID, _ []byte, meta wire.Meta) {
	// Rejoin-to-first-accept: measured before the (node, id) dedup below,
	// because a wiped node's first post-rejoin accept may legitimately be a
	// re-delivery of a message it held before the crash.
	if ra, ok := c.rejoinAt[node]; ok && at >= ra {
		c.rejoinLats = append(c.rejoinLats, at-ra)
		delete(c.rejoinAt, node)
	}
	m := c.delivered[id]
	if m == nil {
		m = make(map[wire.NodeID]delivery)
		c.delivered[id] = m
	}
	if _, ok := m[node]; !ok {
		m[node] = delivery{at: at, hops: meta.Hops, recovered: meta.Recovered}
	}
}

// OnSync accumulates catch-up sync traffic counters.
func (c *Collector) OnSync(_ time.Duration, _, _ wire.NodeID, event obsv.SyncEvent, entries, bytes int) {
	switch event {
	case obsv.SyncReqSent:
		c.syncReqs++
	case obsv.SyncServed:
		c.syncServed += uint64(entries)
		c.syncBytes += uint64(bytes)
	case obsv.SyncApplied:
		c.syncApplied += uint64(entries)
	case obsv.SyncAbandoned:
		c.syncAbandoned++
	}
}

// OnRejoin opens a rejoin-latency measurement for node: the next accept at
// this node closes it.
func (c *Collector) OnRejoin(at time.Duration, node wire.NodeID, _ int) {
	c.rejoins++
	c.rejoinAt[node] = at
}

// Injected reports the number of originated messages.
func (c *Collector) Injected() int { return len(c.injected) }

// Results summarizes a run.
type Results struct {
	Protocol string
	N        int
	Injected int

	// DeliveryRatio is the mean, over injected messages, of the fraction of
	// eligible receivers that accepted the message.
	DeliveryRatio float64

	LatMean time.Duration
	LatP50  time.Duration
	LatP95  time.Duration
	LatP99  time.Duration
	LatMax  time.Duration

	TotalTx    uint64
	TxByKind   map[wire.Kind]uint64
	BytesOnAir uint64
	Collisions uint64

	// TxPerMessage is TotalTx divided by the number of injected messages.
	TxPerMessage float64
	// OverlaySize is the number of overlay-active nodes at the end of the
	// run (zero for protocols without an overlay).
	OverlaySize int

	// Lineage summary over remote deliveries (the originator's own excluded).
	// Hop statistics cover deliveries whose accepting frame carried a hop
	// count (always, under simulation).
	HopMean float64
	HopP50  float64
	HopP95  float64
	HopMax  float64
	// RemoteDeliveries counts deliveries at nodes other than the originator.
	// RecoveryDeliveries counts those whose payload travelled through gossip
	// recovery at any hop; RecoveryShare is their fraction of all remote
	// deliveries (the rest arrived purely on the data path).
	RemoteDeliveries   uint64
	RecoveryDeliveries uint64
	RecoveryShare      float64

	// Crash-recovery summary. Rejoins counts amnesiac rejoins; the rejoin
	// latencies measure rejoin-to-first-accept per rejoin that saw a later
	// accept. Sync counters quantify the catch-up traffic: requests sent,
	// entries served/applied, on-air bytes of served batches, and rejoiners
	// that gave up.
	Rejoins            uint64
	RejoinLatMean      time.Duration
	RejoinLatMax       time.Duration
	SyncReqs           uint64
	SyncEntriesServed  uint64
	SyncEntriesApplied uint64
	SyncBytes          uint64
	SyncAbandoned      uint64
}

// Summarize computes results. receivers maps each message's eligible
// receiver count (correct nodes other than the originator); usually this is
// constant, so a single value is passed.
func (c *Collector) Summarize(protocol string, n int, eligible func(origin wire.NodeID) int) Results {
	r := Results{
		Protocol: protocol,
		N:        n,
		Injected: len(c.injected),
		TxByKind: make(map[wire.Kind]uint64, len(c.txByKind)),
	}
	for k, v := range c.txByKind {
		r.TxByKind[k] = v
		r.TotalTx += v
	}
	if r.Injected > 0 {
		r.TxPerMessage = float64(r.TotalTx) / float64(r.Injected)
	}

	ids := make([]wire.MsgID, 0, len(c.injected))
	for id := range c.injected {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i].Less(ids[j]) })

	var ratioSum float64
	var lats []time.Duration
	var hops []float64
	var remote uint64
	for _, id := range ids {
		inj := c.injected[id]
		want := eligible(inj.origin)
		if want <= 0 {
			ratioSum += 1
			continue
		}
		got := 0
		for node, d := range c.delivered[id] {
			if node == inj.origin {
				continue
			}
			got++
			lats = append(lats, d.at-inj.at)
			remote++
			if d.hops > 0 {
				hops = append(hops, float64(d.hops))
			}
			if d.recovered {
				r.RecoveryDeliveries++
			}
		}
		ratioSum += float64(got) / float64(want)
	}
	if r.Injected > 0 {
		r.DeliveryRatio = ratioSum / float64(r.Injected)
	}
	if len(lats) > 0 {
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		var sum time.Duration
		for _, l := range lats {
			sum += l
		}
		r.LatMean = sum / time.Duration(len(lats))
		r.LatP50 = percentile(lats, 0.50)
		r.LatP95 = percentile(lats, 0.95)
		r.LatP99 = percentile(lats, 0.99)
		r.LatMax = lats[len(lats)-1]
	}
	if len(hops) > 0 {
		sort.Float64s(hops)
		var sum float64
		for _, h := range hops {
			sum += h
		}
		r.HopMean = sum / float64(len(hops))
		r.HopP50 = percentileF(hops, 0.50)
		r.HopP95 = percentileF(hops, 0.95)
		r.HopMax = hops[len(hops)-1]
	}
	r.RemoteDeliveries = remote
	if remote > 0 {
		r.RecoveryShare = float64(r.RecoveryDeliveries) / float64(remote)
	}
	r.Rejoins = c.rejoins
	r.SyncReqs = c.syncReqs
	r.SyncEntriesServed = c.syncServed
	r.SyncEntriesApplied = c.syncApplied
	r.SyncBytes = c.syncBytes
	r.SyncAbandoned = c.syncAbandoned
	if len(c.rejoinLats) > 0 {
		var sum time.Duration
		max := c.rejoinLats[0]
		for _, l := range c.rejoinLats {
			sum += l
			if l > max {
				max = l
			}
		}
		r.RejoinLatMean = sum / time.Duration(len(c.rejoinLats))
		r.RejoinLatMax = max
	}
	return r
}

// Bucket is one time slice of a latency timeline.
type Bucket struct {
	Start time.Duration // bucket start (injection time)
	Count int           // delivery samples whose message was injected in the bucket
	Mean  time.Duration
	P95   time.Duration
}

// Timeline buckets delivery latencies by message injection time, showing how
// dissemination speed evolves over a run (e.g. the overlay fast path
// degrading under attack and healing as failure detectors evict offenders).
func (c *Collector) Timeline(bucket time.Duration) []Bucket {
	if bucket <= 0 || len(c.injected) == 0 {
		return nil
	}
	byBucket := make(map[int][]time.Duration)
	maxIdx := 0
	for id, inj := range c.injected {
		idx := int(inj.at / bucket)
		if idx > maxIdx {
			maxIdx = idx
		}
		for node, d := range c.delivered[id] {
			if node == inj.origin {
				continue
			}
			byBucket[idx] = append(byBucket[idx], d.at-inj.at)
		}
	}
	out := make([]Bucket, 0, maxIdx+1)
	for i := 0; i <= maxIdx; i++ {
		lats := byBucket[i]
		b := Bucket{Start: time.Duration(i) * bucket, Count: len(lats)}
		if len(lats) > 0 {
			sort.Slice(lats, func(x, y int) bool { return lats[x] < lats[y] })
			var sum time.Duration
			for _, l := range lats {
				sum += l
			}
			b.Mean = sum / time.Duration(len(lats))
			b.P95 = percentile(lats, 0.95)
		}
		out = append(out, b)
	}
	return out
}

// percentileF returns the q-quantile of sorted float samples (nearest-rank).
func percentileF(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// percentile returns the q-quantile of sorted samples (nearest-rank).
func percentile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// String renders a one-line summary.
func (r Results) String() string {
	return fmt.Sprintf("%-10s n=%-4d msgs=%-4d delivery=%.3f tx/msg=%-8.1f lat(mean=%s p95=%s) collisions=%d overlay=%d",
		r.Protocol, r.N, r.Injected, r.DeliveryRatio, r.TxPerMessage,
		r.LatMean.Round(time.Millisecond), r.LatP95.Round(time.Millisecond),
		r.Collisions, r.OverlaySize)
}

// KindBreakdown renders the per-kind transmission counts, sorted by kind.
func (r Results) KindBreakdown() string {
	kinds := make([]wire.Kind, 0, len(r.TxByKind))
	for k := range r.TxByKind {
		kinds = append(kinds, k)
	}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })
	parts := make([]string, 0, len(kinds))
	for _, k := range kinds {
		parts = append(parts, fmt.Sprintf("%s=%d", k, r.TxByKind[k]))
	}
	return strings.Join(parts, " ")
}
