package metrics

import (
	"strings"
	"testing"
	"time"

	"bbcast/internal/wire"
)

func tx(c *Collector, kind wire.Kind) {
	c.OnPacketTx(0, 0, kind, wire.MsgID{}, wire.Meta{})
}

func TestTransmissionCounting(t *testing.T) {
	c := NewCollector()
	tx(c, wire.KindData)
	tx(c, wire.KindData)
	tx(c, wire.KindGossip)
	r := c.Summarize("p", 3, func(wire.NodeID) int { return 2 })
	if r.TotalTx != 3 || r.TxByKind[wire.KindData] != 2 || r.TxByKind[wire.KindGossip] != 1 {
		t.Fatalf("tx counts wrong: %+v", r.TxByKind)
	}
}

func TestDeliveryRatioPerMessage(t *testing.T) {
	c := NewCollector()
	id1 := wire.MsgID{Origin: 0, Seq: 1}
	id2 := wire.MsgID{Origin: 0, Seq: 2}
	c.OnInject(0, 0, id1)
	c.OnInject(0, 0, id2)
	// id1 reaches both receivers, id2 reaches one of two.
	c.OnAccept(time.Second, 1, id1, nil, wire.Meta{})
	c.OnAccept(time.Second, 2, id1, nil, wire.Meta{})
	c.OnAccept(time.Second, 1, id2, nil, wire.Meta{})
	r := c.Summarize("p", 3, func(wire.NodeID) int { return 2 })
	if r.DeliveryRatio != 0.75 {
		t.Fatalf("delivery = %v, want 0.75", r.DeliveryRatio)
	}
	if r.Injected != 2 {
		t.Fatalf("injected = %d", r.Injected)
	}
}

func TestOriginatorAcceptExcluded(t *testing.T) {
	c := NewCollector()
	id := wire.MsgID{Origin: 0, Seq: 1}
	c.OnInject(0, 0, id)
	c.OnAccept(0, 0, id, nil, wire.Meta{}) // own delivery must not count toward the ratio
	r := c.Summarize("p", 2, func(wire.NodeID) int { return 1 })
	if r.DeliveryRatio != 0 {
		t.Fatalf("delivery = %v, want 0", r.DeliveryRatio)
	}
}

func TestRepeatAcceptIgnored(t *testing.T) {
	c := NewCollector()
	id := wire.MsgID{Origin: 0, Seq: 1}
	c.OnInject(0, 0, id)
	c.OnAccept(time.Second, 1, id, nil, wire.Meta{})
	c.OnAccept(2*time.Second, 1, id, nil, wire.Meta{}) // later duplicate: first timestamp wins
	r := c.Summarize("p", 2, func(wire.NodeID) int { return 1 })
	if r.DeliveryRatio != 1 {
		t.Fatalf("delivery = %v", r.DeliveryRatio)
	}
	if r.LatMean != time.Second {
		t.Fatalf("latency = %v, want 1s (first accept)", r.LatMean)
	}
}

func TestLatencyPercentiles(t *testing.T) {
	c := NewCollector()
	id := wire.MsgID{Origin: 0, Seq: 1}
	c.OnInject(0, 0, id)
	for i := 1; i <= 100; i++ {
		c.OnAccept(time.Duration(i)*time.Millisecond, wire.NodeID(i), id, nil, wire.Meta{})
	}
	r := c.Summarize("p", 101, func(wire.NodeID) int { return 100 })
	if r.LatP50 != 50*time.Millisecond {
		t.Fatalf("p50 = %v", r.LatP50)
	}
	if r.LatP95 != 95*time.Millisecond {
		t.Fatalf("p95 = %v", r.LatP95)
	}
	if r.LatMax != 100*time.Millisecond {
		t.Fatalf("max = %v", r.LatMax)
	}
	if r.LatMean != 50500*time.Microsecond {
		t.Fatalf("mean = %v", r.LatMean)
	}
}

func TestEmptyCollector(t *testing.T) {
	c := NewCollector()
	r := c.Summarize("p", 0, func(wire.NodeID) int { return 0 })
	if r.DeliveryRatio != 0 || r.LatMean != 0 || r.TotalTx != 0 {
		t.Fatalf("empty summary not zero: %+v", r)
	}
}

func TestTxPerMessage(t *testing.T) {
	c := NewCollector()
	c.OnInject(0, 0, wire.MsgID{Origin: 0, Seq: 1})
	c.OnInject(0, 0, wire.MsgID{Origin: 0, Seq: 2})
	for i := 0; i < 10; i++ {
		tx(c, wire.KindData)
	}
	r := c.Summarize("p", 2, func(wire.NodeID) int { return 1 })
	if r.TxPerMessage != 5 {
		t.Fatalf("tx/msg = %v", r.TxPerMessage)
	}
}

func TestStringAndBreakdown(t *testing.T) {
	c := NewCollector()
	tx(c, wire.KindData)
	tx(c, wire.KindGossip)
	r := c.Summarize("byzcast", 5, func(wire.NodeID) int { return 4 })
	if !strings.Contains(r.String(), "byzcast") {
		t.Fatalf("String() = %q", r.String())
	}
	bd := r.KindBreakdown()
	if !strings.Contains(bd, "data=1") || !strings.Contains(bd, "gossip=1") {
		t.Fatalf("KindBreakdown() = %q", bd)
	}
}

func TestPercentileEdgeCases(t *testing.T) {
	if percentile(nil, 0.5) != 0 {
		t.Fatal("empty percentile should be 0")
	}
	one := []time.Duration{7}
	for _, q := range []float64{0.01, 0.5, 0.95, 0.99} {
		if got := percentile(one, q); got != 7 {
			t.Fatalf("percentile(len 1, %v) = %v, want 7", q, got)
		}
	}
}

func TestPercentileNearestRankRounding(t *testing.T) {
	// Nearest-rank with idx = round(q*n) - 1: for n=10 and q=0.95,
	// round(9.5) = 10 → index 9 (the max), not index 8.
	ten := make([]time.Duration, 10)
	for i := range ten {
		ten[i] = time.Duration(i+1) * time.Millisecond
	}
	if got := percentile(ten, 0.95); got != 10*time.Millisecond {
		t.Fatalf("p95 of 1..10ms = %v, want 10ms", got)
	}
	if got := percentile(ten, 0.5); got != 5*time.Millisecond {
		t.Fatalf("p50 of 1..10ms = %v, want 5ms", got)
	}
	// n=20, q=0.95: round(19) = 19 → index 18, the 19th value.
	twenty := make([]time.Duration, 20)
	for i := range twenty {
		twenty[i] = time.Duration(i+1) * time.Millisecond
	}
	if got := percentile(twenty, 0.95); got != 19*time.Millisecond {
		t.Fatalf("p95 of 1..20ms = %v, want 19ms", got)
	}
}

func TestTimelineBucketsLatencies(t *testing.T) {
	c := NewCollector()
	id1 := wire.MsgID{Origin: 0, Seq: 1} // injected in bucket 0
	id2 := wire.MsgID{Origin: 0, Seq: 2} // injected in bucket 2
	c.OnInject(1*time.Second, 0, id1)
	c.OnInject(25*time.Second, 0, id2)
	c.OnAccept(1500*time.Millisecond, 1, id1, nil, wire.Meta{}) // 500 ms
	c.OnAccept(2*time.Second, 2, id1, nil, wire.Meta{})         // 1 s
	c.OnAccept(1100*time.Millisecond, 0, id1, nil, wire.Meta{}) // originator: excluded
	c.OnAccept(26*time.Second, 1, id2, nil, wire.Meta{})        // 1 s
	tl := c.Timeline(10 * time.Second)
	if len(tl) != 3 {
		t.Fatalf("buckets = %d, want 3", len(tl))
	}
	if tl[0].Count != 2 || tl[0].Mean != 750*time.Millisecond {
		t.Fatalf("bucket 0 = %+v", tl[0])
	}
	if tl[1].Count != 0 {
		t.Fatalf("bucket 1 should be empty: %+v", tl[1])
	}
	if tl[1].Start != 10*time.Second {
		t.Fatalf("gap bucket start = %v", tl[1].Start)
	}
	if tl[2].Count != 1 || tl[2].Mean != time.Second {
		t.Fatalf("bucket 2 = %+v", tl[2])
	}
	if tl[2].Start != 20*time.Second {
		t.Fatalf("bucket 2 start = %v", tl[2].Start)
	}
}

func TestTimelineZeroBucket(t *testing.T) {
	c := NewCollector()
	if got := c.Timeline(0); got != nil {
		t.Fatalf("zero bucket returned %v", got)
	}
}

func TestTimelineNoInjections(t *testing.T) {
	// With nothing injected there is no timeline — not a single phantom
	// zero bucket.
	c := NewCollector()
	if got := c.Timeline(10 * time.Second); got != nil {
		t.Fatalf("empty-collector timeline = %v, want nil", got)
	}
}

func TestInjectedCount(t *testing.T) {
	c := NewCollector()
	c.OnInject(0, 0, wire.MsgID{Origin: 0, Seq: 1})
	if c.Injected() != 1 {
		t.Fatalf("Injected = %d", c.Injected())
	}
}

func TestEligibleZeroCountsAsDelivered(t *testing.T) {
	// A message with no eligible receivers (e.g. every other node is
	// Byzantine) must not drag the ratio down.
	c := NewCollector()
	c.OnInject(0, 0, wire.MsgID{Origin: 0, Seq: 1})
	r := c.Summarize("p", 1, func(wire.NodeID) int { return 0 })
	if r.DeliveryRatio != 1 {
		t.Fatalf("delivery = %v, want 1 for zero eligible receivers", r.DeliveryRatio)
	}
}
