package metrics

import (
	"math/rand"
	"testing"
	"time"

	"bbcast/internal/wire"
)

// accepts replays a latency list for one injected message through a fresh
// collector and returns the summarized results.
func summarizeLatencies(lats []time.Duration) Results {
	c := NewCollector()
	id := wire.MsgID{Origin: 0, Seq: 1}
	c.OnInject(0, 0, id)
	for i, lat := range lats {
		c.OnAccept(lat, wire.NodeID(i+1), id, nil, wire.Meta{})
	}
	return c.Summarize("p", len(lats)+1, func(wire.NodeID) int { return len(lats) })
}

// TestLatencyDigestEdgeTable: boundary shapes of the latency digest,
// including the p99 column the knee experiment reports.
func TestLatencyDigestEdgeTable(t *testing.T) {
	ms := func(n int) time.Duration { return time.Duration(n) * time.Millisecond }
	cases := []struct {
		name               string
		lats               []time.Duration
		p50, p95, p99, max time.Duration
	}{
		{"no accepts", nil, 0, 0, 0, 0},
		{"single accept", []time.Duration{ms(30)}, ms(30), ms(30), ms(30), ms(30)},
		{"two accepts", []time.Duration{ms(10), ms(20)}, ms(10), ms(20), ms(20), ms(20)},
		{"hundred accepts", func() []time.Duration {
			var out []time.Duration
			for i := 1; i <= 100; i++ {
				out = append(out, ms(i))
			}
			return out
		}(), ms(50), ms(95), ms(99), ms(100)},
		{"identical accepts", []time.Duration{ms(5), ms(5), ms(5)}, ms(5), ms(5), ms(5), ms(5)},
	}
	for _, tc := range cases {
		r := summarizeLatencies(tc.lats)
		if r.LatP50 != tc.p50 || r.LatP95 != tc.p95 || r.LatP99 != tc.p99 || r.LatMax != tc.max {
			t.Errorf("%s: p50/p95/p99/max = %v/%v/%v/%v, want %v/%v/%v/%v",
				tc.name, r.LatP50, r.LatP95, r.LatP99, r.LatMax, tc.p50, tc.p95, tc.p99, tc.max)
		}
	}
}

// TestLatencyQuantilesMonotonic: p50 ≤ p95 ≤ p99 ≤ max for arbitrary
// latency distributions.
func TestLatencyQuantilesMonotonic(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.Intn(150)
		lats := make([]time.Duration, n)
		for i := range lats {
			lats[i] = time.Duration(rng.Intn(10_000_000)) // up to 10ms
		}
		r := summarizeLatencies(lats)
		if !(r.LatP50 <= r.LatP95 && r.LatP95 <= r.LatP99 && r.LatP99 <= r.LatMax) {
			t.Fatalf("trial %d (n=%d): quantiles not monotonic: p50=%v p95=%v p99=%v max=%v",
				trial, n, r.LatP50, r.LatP95, r.LatP99, r.LatMax)
		}
	}
}
