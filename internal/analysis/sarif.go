package analysis

import (
	"encoding/json"
	"io"
	"path/filepath"
)

// This file renders diagnostics in machine formats: SARIF 2.1.0 for GitHub
// code scanning (findings become PR annotations) and a flat JSON array for
// ad-hoc tooling. Both are derived from the same sorted, deduplicated
// diagnostic slice the text output prints, so all three views agree
// byte-for-byte on what was found.

// sarifLog is the minimal SARIF 2.1.0 document GitHub code scanning accepts.
type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name  string      `json:"name"`
	Rules []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string    `json:"id"`
	ShortDescription sarifText `json:"shortDescription"`
}

type sarifText struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifText       `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// WriteSARIF renders diags as one SARIF 2.1.0 run. File paths are made
// relative to moduleDir (code scanning wants repo-relative URIs); analyzers
// supplies the rule metadata so every ruleId resolves.
func WriteSARIF(w io.Writer, moduleDir string, analyzers []*Analyzer, diags []Diagnostic) error {
	rules := make([]sarifRule, 0, len(analyzers))
	for _, a := range analyzers {
		rules = append(rules, sarifRule{ID: a.Name, ShortDescription: sarifText{Text: a.Doc}})
	}
	results := make([]sarifResult, 0, len(diags))
	for _, d := range diags {
		results = append(results, sarifResult{
			RuleID:  d.Analyzer,
			Level:   "error",
			Message: sarifText{Text: d.Message},
			Locations: []sarifLocation{{PhysicalLocation: sarifPhysical{
				ArtifactLocation: sarifArtifact{URI: relPath(moduleDir, d.Pos.Filename)},
				Region:           sarifRegion{StartLine: d.Pos.Line, StartColumn: d.Pos.Column},
			}}},
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs:    []sarifRun{{Tool: sarifTool{Driver: sarifDriver{Name: "bbvet", Rules: rules}}, Results: results}},
	})
}

// jsonDiagnostic is one finding in -json output.
type jsonDiagnostic struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Message  string `json:"message"`
}

// WriteJSON renders diags as a flat JSON array with moduleDir-relative paths.
// An empty diagnostic list encodes as [], not null.
func WriteJSON(w io.Writer, moduleDir string, diags []Diagnostic) error {
	out := make([]jsonDiagnostic, 0, len(diags))
	for _, d := range diags {
		out = append(out, jsonDiagnostic{
			Analyzer: d.Analyzer,
			File:     relPath(moduleDir, d.Pos.Filename),
			Line:     d.Pos.Line,
			Column:   d.Pos.Column,
			Message:  d.Message,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// relPath makes name moduleDir-relative with forward slashes, falling back
// to the original path when it lies outside the module.
func relPath(moduleDir, name string) string {
	if moduleDir == "" {
		return filepath.ToSlash(name)
	}
	rel, err := filepath.Rel(moduleDir, name)
	if err != nil || rel == ".." || len(rel) >= 3 && rel[:3] == ".."+string(filepath.Separator) {
		return filepath.ToSlash(name)
	}
	return filepath.ToSlash(rel)
}
