package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	Path      string
	Dir       string
	Fset      *token.FileSet
	Files     []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
}

// listedPkg is the subset of `go list -json` output the loader consumes.
type listedPkg struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Export     string
	Standard   bool
	Error      *struct{ Err string }
}

func goList(moduleDir string, args ...string) ([]listedPkg, error) {
	cmd := exec.Command("go", append([]string{"list", "-e", "-json=ImportPath,Dir,GoFiles,Export,Standard,Error"}, args...)...)
	cmd.Dir = moduleDir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %w\n%s", strings.Join(args, " "), err, stderr.String())
	}
	var pkgs []listedPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decode: %w", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// exportCache accumulates import-path → compiler-export-data-file mappings per
// module root, so repeated loads (several analysistest suites in one test
// binary) invoke the go tool once per distinct package set.
var exportCache = struct {
	sync.Mutex
	byRoot map[string]map[string]string
}{byRoot: map[string]map[string]string{}}

// exportFiles ensures export data exists for patterns (and all their deps) and
// returns the accumulated path→file map for the module root.
func exportFiles(moduleDir string, patterns []string) (map[string]string, error) {
	exportCache.Lock()
	defer exportCache.Unlock()
	cached := exportCache.byRoot[moduleDir]
	if cached == nil {
		cached = map[string]string{}
		exportCache.byRoot[moduleDir] = cached
	}
	missing := patterns[:0:0]
	for _, p := range patterns {
		if strings.Contains(p, "...") || cached[p] == "" { // wildcards are re-listed; plain paths hit the cache
			missing = append(missing, p)
		}
	}
	if len(missing) > 0 {
		listed, err := goList(moduleDir, append([]string{"-deps", "-export"}, missing...)...)
		if err != nil {
			return nil, err
		}
		for _, p := range listed {
			if p.Export != "" {
				cached[p.ImportPath] = p.Export
			}
		}
	}
	return cached, nil
}

// Load lists patterns (e.g. "./...") in the module rooted at moduleDir,
// type-checks every matched non-test package from source against compiler
// export data for its dependencies, and returns them sorted by import path.
func Load(moduleDir string, patterns ...string) ([]*Package, error) {
	targets, err := goList(moduleDir, patterns...)
	if err != nil {
		return nil, err
	}
	exports, err := exportFiles(moduleDir, patterns)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	imp := newExportImporter(fset, exports)
	var pkgs []*Package
	for _, t := range targets {
		if t.Standard || len(t.GoFiles) == 0 {
			continue
		}
		if t.Error != nil {
			return nil, fmt.Errorf("load %s: %s", t.ImportPath, t.Error.Err)
		}
		files := make([]string, len(t.GoFiles))
		for i, f := range t.GoFiles {
			files[i] = filepath.Join(t.Dir, f)
		}
		pkg, err := checkPackage(fset, imp, t.ImportPath, t.Dir, files)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs, nil
}

// LoadDir parses and type-checks the single package in dir (a directory the
// go tool does not list, e.g. an analyzer testdata tree) under the given
// import path. Imports are resolved through export data built in the
// enclosing module, so testdata may import both the standard library and this
// repo's packages.
func LoadDir(dir, importPath string) (*Package, error) {
	pkgs, err := LoadDirs(DirSpec{Dir: dir, ImportPath: importPath})
	if err != nil {
		return nil, err
	}
	return pkgs[0], nil
}

// DirSpec names one directory to load as one fake import path.
type DirSpec struct {
	Dir        string
	ImportPath string
}

// LoadDirs type-checks several non-listed directories into one shared
// FileSet, in order, so whole-program analyzers can see a multi-package
// fixture. A later spec may import an earlier one by its fake import path
// (the in-memory type-checked package shadows export-data resolution);
// every spec may import the enclosing module's packages and the standard
// library through export data. Files excluded by build constraints are
// skipped, matching the go tool's own file selection.
func LoadDirs(specs ...DirSpec) ([]*Package, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("loaddirs: no directories")
	}
	fset := token.NewFileSet()
	loaded := map[string]*types.Package{}
	var pkgs []*Package
	for _, spec := range specs {
		pkg, err := loadDirInto(fset, loaded, spec.Dir, spec.ImportPath)
		if err != nil {
			return nil, err
		}
		loaded[spec.ImportPath] = pkg.Types
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// loadDirInto parses, filters (build tags) and type-checks one directory
// against export data plus the already-loaded fixture packages.
func loadDirInto(fset *token.FileSet, loaded map[string]*types.Package, dir, importPath string) (*Package, error) {
	moduleDir, err := moduleRoot(dir)
	if err != nil {
		return nil, err
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	buildCtx := build.Default
	var files []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		// MatchFile applies //go:build constraints and GOOS/GOARCH suffixes
		// the way `go list` does, so a fixture (or a real package loaded by
		// path) with tag-excluded files type-checks the same file set the
		// compiler would.
		if ok, matchErr := buildCtx.MatchFile(dir, e.Name()); matchErr != nil || !ok {
			continue
		}
		files = append(files, filepath.Join(dir, e.Name()))
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("loaddir %s: no Go files (after build-constraint filtering)", dir)
	}
	sort.Strings(files)
	parsed, err := parseFiles(fset, files)
	if err != nil {
		return nil, err
	}
	var imports []string
	seen := map[string]bool{}
	for _, f := range parsed {
		for _, spec := range f.Imports {
			path, _ := strconv.Unquote(spec.Path.Value)
			if path != "" && !seen[path] && loaded[path] == nil {
				seen[path] = true
				imports = append(imports, path)
			}
		}
	}
	exports := map[string]string{}
	if len(imports) > 0 {
		sort.Strings(imports)
		exports, err = exportFiles(moduleDir, imports)
		if err != nil {
			return nil, err
		}
	}
	imp := preloadedImporter{loaded: loaded, fallback: newExportImporter(fset, exports)}
	return checkPackageParsed(fset, imp, importPath, dir, parsed)
}

// preloadedImporter resolves fixture-to-fixture imports from the in-memory
// packages LoadDirs already type-checked, falling back to export data for
// everything else.
type preloadedImporter struct {
	loaded   map[string]*types.Package
	fallback types.Importer
}

func (p preloadedImporter) Import(path string) (*types.Package, error) {
	if pkg := p.loaded[path]; pkg != nil {
		return pkg, nil
	}
	return p.fallback.Import(path)
}

// moduleRoot walks up from dir to the directory containing go.mod.
func moduleRoot(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for d := abs; ; {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("no go.mod above %s", abs)
		}
		d = parent
	}
}

func parseFiles(fset *token.FileSet, paths []string) ([]*ast.File, error) {
	var files []*ast.File
	for _, path := range paths {
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// newExportImporter returns a gc-export-data importer backed by the given
// path→file map. This is the unitchecker technique: the go tool compiles (or
// reuses from the build cache) every dependency, and the stdlib gc importer
// reads the resulting export data, giving exact types without a full
// from-source type-check of the import graph.
func newExportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			// Without this wrapper the gc importer surfaces an opaque
			// "can't find import" — name the real causes: the path is not a
			// package the go tool can see (typo, fake/vendored path never
			// registered with LoadDirs), or `go list -export` did not
			// compile it (a package with build errors exports nothing).
			return nil, fmt.Errorf("no export data for %q (not a listable package, or it failed to compile under 'go list -export')", path)
		}
		return os.Open(file)
	})
}

func checkPackage(fset *token.FileSet, imp types.Importer, path, dir string, files []string) (*Package, error) {
	parsed, err := parseFiles(fset, files)
	if err != nil {
		return nil, err
	}
	return checkPackageParsed(fset, imp, path, dir, parsed)
}

func checkPackageParsed(fset *token.FileSet, imp types.Importer, path, dir string, parsed []*ast.File) (*Package, error) {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	var firstErr error
	conf := types.Config{
		Importer: imp,
		Error: func(err error) {
			if firstErr == nil {
				firstErr = err
			}
		},
	}
	tpkg, err := conf.Check(path, fset, parsed, info)
	if firstErr != nil {
		return nil, fmt.Errorf("typecheck %s: %w", path, firstErr)
	}
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %w", path, err)
	}
	return &Package{
		Path:      path,
		Dir:       dir,
		Fset:      fset,
		Files:     parsed,
		Types:     tpkg,
		TypesInfo: info,
	}, nil
}
