// Package analysis is a minimal, dependency-free reimplementation of the
// golang.org/x/tools/go/analysis vocabulary: an Analyzer inspects one
// type-checked package at a time and reports position-anchored diagnostics.
//
// The repo intentionally has no external module dependencies, so instead of
// the x/tools driver the loader in this package shells out to `go list
// -export` and feeds compiler export data to the standard library's gc
// importer — the same mechanism `go vet`'s unitchecker uses. Analyzers get
// full syntax (with comments) plus go/types information for the package under
// analysis.
//
// The project-specific analyzers live in the subpackages determinism,
// obsvonce and boundedstate; cmd/bbvet is the multichecker binary that runs
// them over the tree.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer describes one static check. A per-package analyzer sets Run; a
// whole-program analyzer (one that needs the call graph) sets RunProgram.
// Exactly one of the two must be non-nil.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics (a short lowercase word).
	Name string
	// Doc is a one-paragraph description of what the analyzer enforces.
	Doc string
	// Run inspects one package and reports findings through the pass.
	Run func(*Pass) error
	// RunProgram inspects all loaded packages at once with the call graph
	// built; it runs once per Run() invocation, after the per-package
	// analyzers.
	RunProgram func(*ProgramPass) error
}

// Pass is the interface between one Analyzer run and one package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags *[]Diagnostic
}

// Diagnostic is one finding.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Reportf records one finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// ProgramPass is the interface between one whole-program Analyzer run and
// the loaded program.
type ProgramPass struct {
	Analyzer *Analyzer
	Prog     *Program

	diags *[]Diagnostic
}

// Reportf records one finding at pos.
func (p *ProgramPass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Prog.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Run applies each analyzer (per-package passes over every package, then
// whole-program passes over the call graph) and returns the combined
// diagnostics sorted and deduplicated. Analyzer errors (not findings) abort.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			if a.Run == nil {
				continue
			}
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
				diags:     &diags,
			}
			if err := a.Run(pass); err != nil {
				return diags, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
			}
		}
	}
	var prog *Program
	for _, a := range analyzers {
		if a.RunProgram == nil {
			continue
		}
		if prog == nil {
			prog = BuildProgram(pkgs)
		}
		pass := &ProgramPass{Analyzer: a, Prog: prog, diags: &diags}
		if err := a.RunProgram(pass); err != nil {
			return diags, fmt.Errorf("%s: %w", a.Name, err)
		}
	}
	return dedupeSorted(diags), nil
}

// dedupeSorted orders diagnostics by (file, line, column, message, analyzer)
// and drops exact duplicates, so bbvet output is byte-stable across runs and
// usable as a test golden.
func dedupeSorted(diags []Diagnostic) []Diagnostic {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		if diags[i].Message != diags[j].Message {
			return diags[i].Message < diags[j].Message
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	out := diags[:0]
	for i, d := range diags {
		if i > 0 && d == diags[i-1] {
			continue
		}
		out = append(out, d)
	}
	return out
}
