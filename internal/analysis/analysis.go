// Package analysis is a minimal, dependency-free reimplementation of the
// golang.org/x/tools/go/analysis vocabulary: an Analyzer inspects one
// type-checked package at a time and reports position-anchored diagnostics.
//
// The repo intentionally has no external module dependencies, so instead of
// the x/tools driver the loader in this package shells out to `go list
// -export` and feeds compiler export data to the standard library's gc
// importer — the same mechanism `go vet`'s unitchecker uses. Analyzers get
// full syntax (with comments) plus go/types information for the package under
// analysis.
//
// The project-specific analyzers live in the subpackages determinism,
// obsvonce and boundedstate; cmd/bbvet is the multichecker binary that runs
// them over the tree.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics (a short lowercase word).
	Name string
	// Doc is a one-paragraph description of what the analyzer enforces.
	Doc string
	// Run inspects one package and reports findings through the pass.
	Run func(*Pass) error
}

// Pass is the interface between one Analyzer run and one package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags *[]Diagnostic
}

// Diagnostic is one finding.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Reportf records one finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Run applies each analyzer to each package and returns the combined
// diagnostics sorted by position. Analyzer errors (not findings) abort.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
				diags:     &diags,
			}
			if err := a.Run(pass); err != nil {
				return diags, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return diags[i].Message < diags[j].Message
	})
	return diags, nil
}
