package obsvonce_test

import (
	"testing"

	"bbcast/internal/analysis/analysistest"
	"bbcast/internal/analysis/obsvonce"
)

// TestEmissionTable covers the exactly-once rule against look-alike core
// types: designated sources (including closures inside them), stray
// emissions, Observer-implementing forwarders, and same-name methods on
// non-Observer types.
func TestEmissionTable(t *testing.T) {
	analysistest.Run(t, "testdata/core", "bbcast/internal/core", obsvonce.Analyzer)
}
