// Package core is an obsvonce fixture type-checked as bbcast/internal/core,
// so the emission table's core entries (Deps.Accept for OnAccept, and so on)
// apply to the look-alike types defined here. It imports the real obsv
// package: the analyzer resolves Observer through export data exactly as it
// does on the production tree.
package core

import (
	"time"

	"bbcast/internal/obsv"
	"bbcast/internal/wire"
)

// Deps mirrors the real core.Deps; Accept is OnAccept's designated source.
type Deps struct {
	ID  wire.NodeID
	Obs obsv.Observer
}

func (d Deps) Accept(at time.Duration, id wire.MsgID, payload []byte, meta wire.Meta) {
	d.Obs.OnAccept(at, d.ID, id, payload, meta) // designated source: allowed
	emit := func() {
		d.Obs.OnAccept(at, d.ID, id, payload, meta) // closures count as Deps.Accept
	}
	emit()
	d.Obs.OnInject(at, d.ID, id) // want `obsv\.Observer\.OnInject emitted outside its designated source`
}

// ObserveSuppressed is OnForwardSuppressed's designated source.
func (d Deps) ObserveSuppressed(at time.Duration, id wire.MsgID, meta wire.Meta) {
	d.Obs.OnForwardSuppressed(at, d.ID, id, meta) // designated source: allowed
}

func leak(at time.Duration, obs obsv.Observer, node wire.NodeID, id wire.MsgID) {
	obs.OnAccept(at, node, id, nil, wire.Meta{})      // want `obsv\.Observer\.OnAccept emitted outside its designated source`
	obs.OnForwardSuppressed(at, node, id, wire.Meta{}) // want `obsv\.Observer\.OnForwardSuppressed emitted outside its designated source`
}

// tee fans out to a second observer. It implements obsv.Observer through the
// embedded interface and overrides OnInject; a method named like the event it
// forwards is a forwarder, not a second emission.
type tee struct {
	obsv.Observer
	second obsv.Observer
}

func (t tee) OnInject(at time.Duration, node wire.NodeID, id wire.MsgID) {
	t.Observer.OnInject(at, node, id)
	t.second.OnInject(at, node, id)
}

// counter has an Observer-shaped method but does not implement obsv.Observer,
// so calling it is not an emission.
type counter struct{ n int }

func (c *counter) OnInject(time.Duration, wire.NodeID, wire.MsgID) { c.n++ }

func tally(c *counter, at time.Duration, node wire.NodeID, id wire.MsgID) {
	c.OnInject(at, node, id)
}

// forwardWrongEvent is the forwarder rule's limit: a forwarder may re-emit
// only its own event, anything else is a stray emission.
type loud struct {
	obsv.Observer
}

func (l loud) OnInject(at time.Duration, node wire.NodeID, id wire.MsgID) {
	l.Observer.OnInject(at, node, id)
	l.Observer.OnAccept(at, node, id, nil, wire.Meta{}) // want `obsv\.Observer\.OnAccept emitted outside its designated source`
}

// Protocol mirrors the real protocol's adaptive-timing chokepoints:
// observeAdaptation and observeRetry are the designated sources for
// OnAdaptation and OnRetry.
type Protocol struct {
	deps Deps
}

func (p *Protocol) observeAdaptation(at time.Duration, timer obsv.AdaptiveTimer, old, new time.Duration) {
	p.deps.Obs.OnAdaptation(at, p.deps.ID, timer, old, new) // designated source: allowed
}

func (p *Protocol) observeRetry(at time.Duration, id wire.MsgID, attempt int, abandoned bool) {
	p.deps.Obs.OnRetry(at, p.deps.ID, id, attempt, abandoned) // designated source: allowed
}

// adaptTimers must route timer changes through observeAdaptation, not emit
// directly.
func (p *Protocol) adaptTimers(at time.Duration) {
	p.observeAdaptation(at, obsv.TimerGossip, time.Second, time.Second/2)
	p.deps.Obs.OnAdaptation(at, p.deps.ID, obsv.TimerMute, 0, 0) // want `obsv\.Observer\.OnAdaptation emitted outside its designated source`
	p.deps.Obs.OnRetry(at, p.deps.ID, wire.MsgID{}, 1, false)    // want `obsv\.Observer\.OnRetry emitted outside its designated source`
}
