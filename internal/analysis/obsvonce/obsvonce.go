// Package obsvonce enforces PR 2's exactly-once observer-emission rule
// mechanically: every obsv.Observer event kind has exactly one designated
// source function per layer (tx at the transport, rx in the protocol's
// receive path, accept in Deps.Accept, and so on), and a call to an Observer
// method anywhere else is a spurious second emission that would double-count
// metrics, duplicate trace records and confuse the invariant checker.
//
// Allowed call sites for Observer method M:
//
//   - the designated source functions in the emission table below;
//   - a method itself named M on a type that implements obsv.Observer
//     (fan-out composites and adapter wrappers forward events without
//     emitting new ones);
//   - package obsv itself and _test.go files.
package obsvonce

import (
	"go/ast"
	"go/types"
	"strings"

	"bbcast/internal/analysis"
)

// obsvPathSuffix identifies the observability package defining Observer.
const obsvPathSuffix = "internal/obsv"

// EmissionSources is PR 2's emission table: Observer method → the functions
// allowed to emit it, as "import/path.Func" or "import/path.Recv.Method"
// (pointer receivers spelled without the star). Closures count as their
// enclosing named function.
var EmissionSources = map[string][]string{
	// tx: one event per frame put on the air — the simulated medium's
	// transmit hook (installed in runner.Run) and the UDP send path.
	"OnPacketTx": {
		"bbcast/internal/runner.Run",
		"bbcast/internal/transport.UDPNode.send",
	},
	// rx: one event per frame handed to the protocol, emitted through the
	// Deps.ObserveRx choke point HandlePacket calls first.
	"OnPacketRx": {"bbcast/internal/core.Deps.ObserveRx"},
	// inject: one event per originated message — the simulation workload
	// scheduler and the live Broadcast entry point.
	"OnInject": {
		"bbcast/internal/runner.scheduleWorkload",
		"bbcast/internal/transport.UDPNode.Broadcast",
	},
	// accept: the single application-delivery choke point.
	"OnAccept": {"bbcast/internal/core.Deps.Accept"},
	// forward-suppressed: one event per redundant data frame declined, via
	// the Deps.ObserveSuppressed choke point shared with the baselines.
	"OnForwardSuppressed": {"bbcast/internal/core.Deps.ObserveSuppressed"},
	// role: committed overlay role transitions only.
	"OnRoleChange": {"bbcast/internal/core.Protocol.applyRole"},
	// suspicion: the detector hooks wired up in initDetectors (called from
	// New and again on amnesiac Rejoin).
	"OnSuspicion": {"bbcast/internal/core.Protocol.initDetectors"},
	// sigverify: the protocol's verify wrapper.
	"OnSigVerify": {"bbcast/internal/core.Protocol.verify"},
	// queue depth: the maintenance-tick sampler.
	"OnQueueDepth": {"bbcast/internal/core.Protocol.sampleQueues"},
	// admission: the protocol's admission/GC reporter and the transport's
	// ingress-drop path.
	"OnAdmission": {
		"bbcast/internal/core.Protocol.observeAdmission",
		"bbcast/internal/transport.UDPNode.readLoop",
	},
	// adaptation: the adaptive timer controller's commit choke point.
	"OnAdaptation": {"bbcast/internal/core.Protocol.observeAdaptation"},
	// retry: the bounded-retransmission reporter.
	"OnRetry": {"bbcast/internal/core.Protocol.observeRetry"},
	// sync: the catch-up sync reporter.
	"OnSync": {"bbcast/internal/core.Protocol.observeSync"},
	// rejoin: the amnesiac re-initialization path.
	"OnRejoin": {"bbcast/internal/core.Protocol.Rejoin"},
}

// Analyzer is the exactly-once emission pass.
var Analyzer = &analysis.Analyzer{
	Name: "obsvonce",
	Doc:  "report obsv.Observer method calls outside their designated emission source",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if strings.HasSuffix(pass.Pkg.Path(), obsvPathSuffix) {
		return nil // the package defining Observer composes freely
	}
	iface := observerInterface(pass.Pkg)
	if iface == nil {
		return nil // obsv not in the import graph: nothing can emit
	}
	allowed := map[string]map[string]bool{}
	for method, funcs := range EmissionSources {
		allowed[method] = map[string]bool{}
		for _, f := range funcs {
			allowed[method][f] = true
		}
	}
	for _, file := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(file.Pos()).Filename, "_test.go") {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd, iface, allowed)
		}
	}
	return nil
}

// checkFunc reports stray Observer emissions inside fd (closures included).
func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl, iface *types.Interface, allowed map[string]map[string]bool) {
	qualified := pass.Pkg.Path() + "." + funcName(fd)
	// A method named like an Observer method on a type that itself
	// implements Observer is a forwarder (Multi, SkipAccepts, adapters):
	// calls to the same method are fan-out, not emission.
	forwards := ""
	if _, isObserverMethod := allowed[fd.Name.Name]; isObserverMethod && fd.Recv != nil {
		if recv := receiverType(pass, fd); recv != nil && implementsObserver(recv, iface) {
			forwards = fd.Name.Name
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		method := sel.Sel.Name
		sources, isObserverMethod := allowed[method]
		if !isObserverMethod {
			return true
		}
		selection, ok := pass.TypesInfo.Selections[sel]
		if !ok || selection.Kind() != types.MethodVal {
			return true
		}
		if !implementsObserver(selection.Recv(), iface) {
			return true
		}
		if method == forwards || sources[qualified] {
			return true
		}
		pass.Reportf(call.Pos(), "obsv.Observer.%s emitted outside its designated source (allowed: %s); route the event through the emitting layer instead",
			method, strings.Join(EmissionSources[method], ", "))
		return true
	})
}

// funcName renders fd as Func or Recv.Method (pointer stars stripped).
func funcName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	t := fd.Recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr: // generic receiver
			t = tt.X
		case *ast.IndexListExpr:
			t = tt.X
		case *ast.Ident:
			return tt.Name + "." + fd.Name.Name
		default:
			return fd.Name.Name
		}
	}
}

// receiverType returns the (possibly pointer) receiver type of fd.
func receiverType(pass *analysis.Pass, fd *ast.FuncDecl) types.Type {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return nil
	}
	return pass.TypesInfo.TypeOf(fd.Recv.List[0].Type)
}

// implementsObserver reports whether t (or *t) satisfies the Observer
// interface, or is that interface.
func implementsObserver(t types.Type, iface *types.Interface) bool {
	if t == nil {
		return false
	}
	if types.Implements(t, iface) {
		return true
	}
	if _, isPtr := t.Underlying().(*types.Pointer); !isPtr {
		if types.Implements(types.NewPointer(t), iface) {
			return true
		}
	}
	return false
}

// observerInterface finds obsv.Observer in the import graph of pkg.
func observerInterface(pkg *types.Package) *types.Interface {
	seen := map[*types.Package]bool{}
	var find func(p *types.Package) *types.Interface
	find = func(p *types.Package) *types.Interface {
		if seen[p] {
			return nil
		}
		seen[p] = true
		if strings.HasSuffix(p.Path(), obsvPathSuffix) {
			if obj, ok := p.Scope().Lookup("Observer").(*types.TypeName); ok {
				if iface, ok := obj.Type().Underlying().(*types.Interface); ok {
					return iface
				}
			}
			return nil
		}
		for _, imp := range p.Imports() {
			if iface := find(imp); iface != nil {
				return iface
			}
		}
		return nil
	}
	return find(pkg)
}
