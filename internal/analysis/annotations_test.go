package analysis

import (
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

func parseSrc(t *testing.T, src string) (*token.FileSet, *FileAnnotations, *Pass, *[]Diagnostic) {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "fixture.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	var diags []Diagnostic
	pass := &Pass{
		Analyzer: &Analyzer{Name: "test"},
		Fset:     fset,
		diags:    &diags,
	}
	return fset, ParseAnnotations(fset, file), pass, &diags
}

func TestHeaderVersusLineAnnotations(t *testing.T) {
	_, fa, _, _ := parseSrc(t, `//bbvet:wallclock whole file measures real time

package p

func f() {
	//bbvet:unordered commutative fold
	_ = 1
	_ = 2 //bbvet:wallclock inline
}
`)
	if !fa.FileExempt(AnnWallclock) {
		t.Error("header wallclock annotation not recognized as file exemption")
	}
	if fa.FileExempt(AnnUnordered) {
		t.Error("body annotation wrongly treated as file exemption")
	}
	if fa.At(AnnUnordered, 7) == nil { // annotation on line 6 governs line 7
		t.Error("annotation on the preceding line not found")
	}
	if fa.At(AnnUnordered, 8) != nil {
		t.Error("annotation leaked two lines down")
	}
	if a := fa.At(AnnWallclock, 8); a == nil || a.Arg != "inline" {
		t.Errorf("same-line annotation not found or arg mangled: %+v", a)
	}
}

// TestCheckAnnotations covers the grammar errors: bare escapes without a
// justification and unknown kinds. (The analysistest fixtures cannot express
// a bare annotation — the want comment would become its justification — so
// this is checked white-box.)
func TestCheckAnnotations(t *testing.T) {
	_, fa, pass, diags := parseSrc(t, `package p

//bbvet:wallclock
//bbvet:unordered
//bbvet:bounded-by
//bbvet:errflow
//bbvet:wallclock justified because reasons
//bbvet:errflow latched in Store.Err
//bbvet:nonsense some justification
`)
	CheckAnnotations(pass, fa)
	want := []string{
		"//bbvet:wallclock needs a justification",
		"//bbvet:unordered needs a justification",
		"//bbvet:bounded-by needs a cap",
		"//bbvet:errflow needs a justification",
		"unknown annotation //bbvet:nonsense",
	}
	if len(*diags) != len(want) {
		t.Fatalf("got %d diagnostics, want %d: %v", len(*diags), len(want), *diags)
	}
	for i, w := range want {
		if !strings.Contains((*diags)[i].Message, w) {
			t.Errorf("diagnostic %d = %q, want substring %q", i, (*diags)[i].Message, w)
		}
	}
}
