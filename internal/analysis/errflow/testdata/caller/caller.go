// Package runner exercises every errflow shape against the fixture persist
// package and net's datagram writes.
package runner

import (
	"net"

	"bbcast/internal/persist"
)

func dropped(d *persist.FileDevice, b []byte) {
	d.AppendLog(b) // want `error from persist\.FileDevice\.AppendLog is dropped`
}

func discarded(d *persist.FileDevice, b []byte) {
	_ = d.WriteSnapshot(b) // want `error from persist\.FileDevice\.WriteSnapshot is discarded into _`
}

func discardedPair(u *net.UDPConn, b []byte, addr *net.UDPAddr) {
	_, _ = u.WriteToUDP(b, addr) // want `error from net\.UDPConn\.WriteToUDP is discarded into _`
}

func inGoroutine(d *persist.FileDevice, b []byte) {
	go d.AppendLog(b) // want `unobservable in a go statement`
}

func deferred(d *persist.FileDevice) {
	defer d.Close() // want `unobservable in a deferred call`
}

// stale overwrites an unchecked error: the classic shadowed-error bug.
func stale(d *persist.FileDevice, b []byte) error {
	err := d.AppendLog(b)
	if err != nil {
		return err
	}
	err = d.WriteSnapshot(b) // want `assigned to err but never read`
	return nil
}

// viaWrapper drops a propagated error; the diagnostic names the raw write.
func viaWrapper(d *persist.FileDevice, b []byte) {
	persist.Save(d, b) // want `error from persist\.Save \(wraps persist\.FileDevice\.AppendLog\) is dropped`
}

// viaQuiet calls the self-latching wrapper: nothing to handle.
func viaQuiet(d *persist.FileDevice, b []byte) {
	persist.SaveQuiet(d, b)
}

func checked(d *persist.FileDevice, b []byte) error {
	if err := d.AppendLog(b); err != nil {
		return err
	}
	return nil
}

type state struct{ err error }

// latched assigns the error to a field: the prescribed latch pattern.
func latched(s *state, d *persist.FileDevice, b []byte) {
	s.err = d.AppendLog(b)
}

// loopChecked reads each iteration's error at the top of the next one.
func loopChecked(d *persist.FileDevice, bs [][]byte) {
	var err error
	for _, b := range bs {
		if err != nil {
			break
		}
		err = d.AppendLog(b)
	}
}

// excusedDrop carries a reviewed justification.
func excusedDrop(d *persist.FileDevice, b []byte) {
	_ = d.WriteSnapshot(b) //bbvet:errflow fixture: best-effort snapshot, device latches
}
