// Package persist poses as bbcast/internal/persist: its write surface seeds
// the errflow watched set, and the two wrappers cover propagation (Save
// returns the error — callers inherit the obligation) versus discharge
// (SaveQuiet latches it — callers owe nothing).
package persist

type FileDevice struct{ failed error }

func (d *FileDevice) AppendLog(rec []byte) error   { return d.failed }
func (d *FileDevice) WriteSnapshot(b []byte) error { return d.failed }
func (d *FileDevice) ResetLog() error              { return d.failed }
func (d *FileDevice) Close() error                 { return d.failed }

// Save wraps a watched write and returns its error: watched by propagation.
func Save(d *FileDevice, b []byte) error { return d.AppendLog(b) }

// SaveQuiet latches the error internally and returns nothing: not watched.
func SaveQuiet(d *FileDevice, b []byte) {
	if err := d.AppendLog(b); err != nil {
		d.failed = err
	}
}
