// Package errflow turns the PR 9 "latch Store.Err" discipline into a checked
// rule: an error produced by a persist or transport write must be read,
// returned, or explicitly excused — never silently dropped or overwritten.
//
// Watched functions start from a seed set — the internal/persist device and
// store write surface (AppendLog, WriteSnapshot, ResetLog, Close, Snapshot)
// and net's WriteTo* datagram writes — and grow along the call graph: any
// function returning an error that wraps a watched call becomes watched
// itself, so `return s.dev.AppendLog(rec)` moves the obligation to the
// caller rather than discharging it.
//
// At every call site of a watched function, four shapes are flagged:
//
//   - a bare call statement (the error vanishes),
//   - an assignment that discards the error into _,
//   - go/defer of a watched call (the error is unobservable),
//   - an error assigned to a variable that is never read afterwards — the
//     stale-error bug where a later `err = ...` overwrites an unchecked one.
//
// Assigning the error to a struct field (s.err = ...) counts as handling:
// that is precisely the latch pattern the discipline prescribes. A reviewed
// drop is spelled //bbvet:errflow <why> on or above the call line.
package errflow

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"bbcast/internal/analysis"
)

// Analyzer is the dropped-write-error pass.
var Analyzer = &analysis.Analyzer{
	Name:       "errflow",
	Doc:        "flag dropped, discarded, or overwritten errors from persist and transport writes",
	RunProgram: run,
}

// persistMethods is the write surface of internal/persist whose errors are
// latched or surfaced, never ignored.
var persistMethods = map[string]bool{
	"AppendLog": true, "WriteSnapshot": true, "ResetLog": true,
	"Close": true, "Snapshot": true,
}

// isSeed reports whether fn is a raw watched write: a persist device/store
// method or a net datagram write, with an error as last result.
func isSeed(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil || !returnsError(sig) {
		return false
	}
	pkg := fn.Pkg()
	if pkg == nil {
		return false
	}
	switch {
	case strings.HasSuffix(pkg.Path(), "internal/persist") && persistMethods[fn.Name()]:
		return true
	case pkg.Path() == "net" && strings.HasPrefix(fn.Name(), "WriteTo"):
		return true
	}
	return false
}

func returnsError(sig *types.Signature) bool {
	res := sig.Results()
	if res.Len() == 0 {
		return false
	}
	named, ok := res.At(res.Len() - 1).Type().(*types.Named)
	return ok && named.Obj().Name() == "error" && named.Obj().Pkg() == nil
}

func run(pass *analysis.ProgramPass) error {
	prog := pass.Prog

	// Seed taint at every resolved watched call, then grow the watched set
	// through error-returning wrappers.
	direct := map[*types.Func]*analysis.Taint{}
	prog.EachFunc(func(n *analysis.FuncNode) {
		for _, cs := range n.Calls {
			if isSeed(cs.Callee) {
				direct[cs.Callee] = &analysis.Taint{
					Kind: analysis.AnnErrflow,
					Desc: analysis.FuncDisplayName(cs.Callee),
					Pos:  cs.Call.Pos(),
				}
			}
		}
	})
	taints := prog.Propagate(direct, func(n *analysis.FuncNode) bool {
		sig, ok := n.Fn.Type().(*types.Signature)
		return ok && returnsError(sig)
	})

	anns := map[string]*analysis.FileAnnotations{}
	for _, pkg := range prog.Packages {
		for _, file := range pkg.Files {
			anns[pkg.Fset.Position(file.Pos()).Filename] = analysis.ParseAnnotations(pkg.Fset, file)
		}
	}

	prog.EachFunc(func(n *analysis.FuncNode) {
		if n.TestFile {
			return
		}
		checkFunc(pass, n, taints, anns[prog.Fset.Position(n.Decl.Pos()).Filename])
	})
	return nil
}

// checkFunc flags the four bad shapes around watched calls in one function.
func checkFunc(pass *analysis.ProgramPass, n *analysis.FuncNode, taints map[*types.Func]*analysis.Taint, ann *analysis.FileAnnotations) {
	prog := pass.Prog
	info := n.Pkg.TypesInfo
	body := n.Decl.Body

	watched := func(e ast.Expr) (*types.Func, bool) {
		call, ok := ast.Unparen(e).(*ast.CallExpr)
		if !ok {
			return nil, false
		}
		callee := n.Pkg.CalleeOf(call)
		if callee == nil || taints[callee] == nil {
			return nil, false
		}
		return callee, true
	}
	excused := func(pos token.Pos) bool {
		return ann != nil && ann.At(analysis.AnnErrflow, prog.Fset.Position(pos).Line) != nil
	}
	// wraps names the raw write a propagated wrapper reaches, "" for seeds.
	wraps := func(callee *types.Func) string {
		t := taints[callee]
		for t.Next != nil {
			next := taints[t.Next]
			if next == nil {
				break
			}
			t = next
		}
		if t.Desc == analysis.FuncDisplayName(callee) {
			return ""
		}
		return " (wraps " + t.Desc + ")"
	}
	// lhsTargets are idents written by any assignment: a reassignment is
	// not a read of the previous error.
	lhsTargets := map[*ast.Ident]bool{}
	ast.Inspect(body, func(nd ast.Node) bool {
		if as, ok := nd.(*ast.AssignStmt); ok {
			for _, l := range as.Lhs {
				if id, ok := ast.Unparen(l).(*ast.Ident); ok {
					lhsTargets[id] = true
				}
			}
		}
		return true
	})

	ast.Inspect(body, func(nd ast.Node) bool {
		switch nd := nd.(type) {
		case *ast.ExprStmt:
			if callee, ok := watched(nd.X); ok && !excused(nd.Pos()) {
				pass.Reportf(nd.Pos(), "error from %s%s is dropped; check it, latch it, or annotate //bbvet:errflow <why>", analysis.FuncDisplayName(callee), wraps(callee))
			}
		case *ast.GoStmt:
			if callee, ok := watched(nd.Call); ok && !excused(nd.Pos()) {
				pass.Reportf(nd.Pos(), "error from %s%s is unobservable in a go statement; call it synchronously or annotate //bbvet:errflow <why>", analysis.FuncDisplayName(callee), wraps(callee))
			}
		case *ast.DeferStmt:
			if callee, ok := watched(nd.Call); ok && !excused(nd.Pos()) {
				pass.Reportf(nd.Pos(), "error from %s%s is unobservable in a deferred call; capture it or annotate //bbvet:errflow <why>", analysis.FuncDisplayName(callee), wraps(callee))
			}
		case *ast.AssignStmt:
			for i, rhs := range nd.Rhs {
				callee, ok := watched(rhs)
				if !ok || excused(rhs.Pos()) {
					continue
				}
				lhs := nd.Lhs[len(nd.Lhs)-1]
				if len(nd.Lhs) == len(nd.Rhs) {
					lhs = nd.Lhs[i]
				}
				id, isIdent := ast.Unparen(lhs).(*ast.Ident)
				if !isIdent {
					continue // s.err = ... : the latch pattern, handled
				}
				if id.Name == "_" {
					pass.Reportf(rhs.Pos(), "error from %s%s is discarded into _; check it, latch it, or annotate //bbvet:errflow <why>", analysis.FuncDisplayName(callee), wraps(callee))
					continue
				}
				obj := info.ObjectOf(id)
				if obj == nil {
					continue
				}
				if !readAfter(info, body, obj, nd, lhsTargets) {
					pass.Reportf(rhs.Pos(), "error from %s%s is assigned to %s but never read; the stale error hides the failure — check it or annotate //bbvet:errflow <why>", analysis.FuncDisplayName(callee), wraps(callee), id.Name)
				}
			}
		}
		return true
	})
}

// readAfter reports whether obj is read after the assignment — positionally
// later in the function, or anywhere inside the innermost loop enclosing the
// assignment (a check at the top of the next iteration reads this
// iteration's value).
func readAfter(info *types.Info, body *ast.BlockStmt, obj types.Object, assign *ast.AssignStmt, lhsTargets map[*ast.Ident]bool) bool {
	var loop ast.Node
	ast.Inspect(body, func(nd ast.Node) bool {
		switch nd.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			if nd.Pos() <= assign.Pos() && assign.End() <= nd.End() {
				loop = nd // Inspect descends, so the last hit is innermost
			}
		}
		return true
	})
	found := false
	ast.Inspect(body, func(nd ast.Node) bool {
		if found {
			return false
		}
		id, ok := nd.(*ast.Ident)
		if !ok || lhsTargets[id] || info.Uses[id] != obj {
			return true
		}
		if id.Pos() > assign.End() || (loop != nil && loop.Pos() <= id.Pos() && id.Pos() < loop.End()) {
			found = true
		}
		return true
	})
	return found
}
