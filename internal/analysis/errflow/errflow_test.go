package errflow_test

import (
	"testing"

	"bbcast/internal/analysis"
	"bbcast/internal/analysis/analysistest"
	"bbcast/internal/analysis/errflow"
)

// TestErrflow covers all four bad shapes, the propagation and discharge
// wrappers, the latch/checked/loop negatives, and the annotation escape.
func TestErrflow(t *testing.T) {
	analysistest.RunDirs(t, []analysis.DirSpec{
		{Dir: "testdata/dev", ImportPath: "bbcast/internal/persist"},
		{Dir: "testdata/caller", ImportPath: "bbcast/internal/runner"},
	}, errflow.Analyzer)
}
