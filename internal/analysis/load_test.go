package analysis

import (
	"strings"
	"testing"
)

// TestLoadDirSkipsTagExcludedFiles proves the loader applies build
// constraints: testdata/tagged has a live file and one behind an undefined
// tag that redeclares the same constant, so including it would fail the
// type-check.
func TestLoadDirSkipsTagExcludedFiles(t *testing.T) {
	pkg, err := LoadDir("testdata/tagged", "bbcast/internal/taggedfixture")
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if len(pkg.Files) != 1 {
		t.Fatalf("got %d files, want 1 (excluded.go must be filtered)", len(pkg.Files))
	}
	name := pkg.Fset.Position(pkg.Files[0].Pos()).Filename
	if !strings.HasSuffix(name, "tagged.go") {
		t.Errorf("kept %s, want tagged.go", name)
	}
}

// TestLoadDirAllFilesExcluded: a directory whose every file is constraint-
// excluded is an explicit error naming the cause, not an opaque parse or
// typecheck failure.
func TestLoadDirAllFilesExcluded(t *testing.T) {
	_, err := LoadDir("testdata/allexcluded", "bbcast/internal/allexcluded")
	if err == nil || !strings.Contains(err.Error(), "build-constraint") {
		t.Fatalf("got %v, want a no-Go-files error naming build constraints", err)
	}
}

// TestLoadDirMissingExportData: importing a package `go list -export` cannot
// compile must surface the named "no export data" cause, not the gc
// importer's opaque "can't find import".
func TestLoadDirMissingExportData(t *testing.T) {
	_, err := LoadDir("testdata/badimport", "bbcast/internal/badfixture")
	if err == nil || !strings.Contains(err.Error(), `no export data for "example.invalid/nope"`) {
		t.Fatalf("got %v, want the no-export-data error", err)
	}
}

// TestLoadDirsFakePathShadowsRealPackage: a fixture loaded under a real
// import path must shadow the module's own package for later fixtures, and
// all packages must share one FileSet (the whole-program call graph depends
// on it).
func TestLoadDirsFakePathShadowsRealPackage(t *testing.T) {
	pkgs, err := LoadDirs(
		DirSpec{Dir: "testdata/tagged", ImportPath: "bbcast/internal/wire"},
		DirSpec{Dir: "testdata/usestagged", ImportPath: "bbcast/internal/user"},
	)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if len(pkgs) != 2 {
		t.Fatalf("got %d packages, want 2", len(pkgs))
	}
	if pkgs[0].Fset != pkgs[1].Fset {
		t.Error("packages do not share a FileSet")
	}
	// The user package resolved bbcast/internal/wire to the fixture (which
	// has Live), not the real wire package (which does not).
	if pkgs[1].Types.Imports()[0].Scope().Lookup("Live") == nil {
		t.Error("fixture did not shadow the real bbcast/internal/wire")
	}
}

// TestLoadDirsEmpty: zero directories is a usage error, not a panic.
func TestLoadDirsEmpty(t *testing.T) {
	if _, err := LoadDirs(); err == nil {
		t.Fatal("want error for empty spec list")
	}
}
