// Package ordering proves the PR 4 ingress contract of internal/core as a
// build-time fact instead of a code-review convention: every packet-ingress
// path sheds over-budget senders at the token bucket and consults the dedup
// tables before paying for a signature verification.
//
// The pass is table-driven against the call graph. Crypto sinks are the
// Verify methods declared in internal/sig (the Scheme interface method
// anchors interface dispatch); any function whose call chain reaches one is
// "crypto-reaching". Three rules then hold over internal/core:
//
//  1. Protocol.HandlePacket — the single packet-ingress root — must gate the
//     kind dispatch behind `if !p.admit(...) { return }` before its first
//     crypto-reaching call.
//  2. The handlers with a dedup table (handleData, handleGossip,
//     handleSyncResp) must index that table (p.store / p.missing) before
//     their first crypto-reaching call. handleRequest and handleFindMissing
//     verify immediately by design — requests carry no dedup state — and are
//     deliberately absent from the table.
//  3. No other exported function taking a *wire.Packet may reach crypto:
//     a second verify-bearing ingress point would bypass the admission
//     bucket.
//
// The tables themselves are drift-checked: if a named function disappears
// (renamed, split), the pass reports it rather than silently proving nothing,
// the same pattern boundedstate uses for its field table. A reviewed
// exception is spelled //bbvet:ordering <why> on the crypto-reaching line.
package ordering

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"bbcast/internal/analysis"
)

// Analyzer is the admission-before-crypto pass.
var Analyzer = &analysis.Analyzer{
	Name:       "ordering",
	Doc:        "prove internal/core packet ingress hits token-bucket admission and dedup before any sig verify",
	RunProgram: run,
}

// corePathSuffix scopes the pass; fixtures pose as the same path.
const corePathSuffix = "internal/core"

// sigPathSuffix anchors the crypto sinks.
const sigPathSuffix = "internal/sig"

// ingressRoot is the one function allowed to reach crypto from a packet:
// it must run the admission guard first.
const ingressRoot = "Protocol.HandlePacket"

// admissionGuard is the token-bucket method whose negated check guards the
// ingress dispatch.
const admissionGuard = "admit"

// dedupGuards names, per handler, the Protocol map fields that must be
// indexed before the handler's first crypto-reaching call.
var dedupGuards = map[string][]string{
	"Protocol.handleData":     {"store"},
	"Protocol.handleGossip":   {"store", "missing"},
	"Protocol.handleSyncResp": {"store"},
}

func run(pass *analysis.ProgramPass) error {
	prog := pass.Prog

	// Seed crypto taint at every resolved call to a sig Verify method and
	// spread it through every caller (no frontier: "reaches crypto" is a
	// global property).
	direct := map[*types.Func]*analysis.Taint{}
	prog.EachFunc(func(n *analysis.FuncNode) {
		for _, cs := range n.Calls {
			if isCryptoVerify(cs.Callee) {
				direct[cs.Callee] = &analysis.Taint{Kind: "crypto", Desc: analysis.FuncDisplayName(cs.Callee)}
			}
		}
	})
	taints := prog.Propagate(direct, nil)

	// Index the core package's functions and per-file annotations.
	nodes := map[string]*analysis.FuncNode{}
	anns := map[string]*analysis.FileAnnotations{}
	var corePos token.Pos
	for _, pkg := range prog.Packages {
		if !strings.HasSuffix(pkg.Path, corePathSuffix) {
			continue
		}
		if corePos == token.NoPos && len(pkg.Files) > 0 {
			corePos = pkg.Files[0].Name.Pos()
		}
		for _, file := range pkg.Files {
			anns[pkg.Fset.Position(file.Pos()).Filename] = analysis.ParseAnnotations(pkg.Fset, file)
		}
	}
	prog.EachFunc(func(n *analysis.FuncNode) {
		if strings.HasSuffix(n.Pkg.Path, corePathSuffix) && !n.TestFile {
			nodes[localName(n.Fn)] = n
		}
	})
	if corePos == token.NoPos {
		return nil // no core package in this load; nothing to prove
	}
	excused := func(n *analysis.FuncNode, pos token.Pos) bool {
		ann := anns[prog.Fset.Position(n.Decl.Pos()).Filename]
		return ann != nil && ann.At(analysis.AnnOrdering, prog.Fset.Position(pos).Line) != nil
	}

	// Drift check: a renamed table function silently proves nothing.
	for _, name := range tableNames() {
		if nodes[name] == nil {
			pass.Reportf(corePos, "ordering table drift: %s not found in %s; update the analyzer tables to the renamed ingress path", name, corePathSuffix)
		}
	}

	// Rule 1: admission before crypto in the ingress root.
	if root := nodes[ingressRoot]; root != nil {
		cryptoPos, chain := firstCrypto(prog, root, taints)
		if cryptoPos != token.NoPos {
			guardPos := admissionGuardPos(root)
			switch {
			case guardPos == token.NoPos:
				if !excused(root, cryptoPos) {
					pass.Reportf(cryptoPos, "%s reaches crypto (%s) with no `if !%s { return }` admission guard; token-bucket shedding must precede signature work", ingressRoot, chain, admissionGuard)
				}
			case cryptoPos < guardPos:
				if !excused(root, cryptoPos) {
					pass.Reportf(cryptoPos, "%s reaches crypto (%s) before the %s admission guard; a flooding sender must be shed before any signature work", ingressRoot, chain, admissionGuard)
				}
			}
		}
	}

	// Rule 2: dedup lookup before crypto in each table handler.
	for _, name := range sortedKeys(dedupGuards) {
		n := nodes[name]
		if n == nil {
			continue // drift already reported
		}
		cryptoPos, chain := firstCrypto(prog, n, taints)
		if cryptoPos == token.NoPos {
			continue
		}
		for _, field := range dedupGuards[name] {
			if p := firstIndexOf(n.Decl.Body, field); p == token.NoPos || p > cryptoPos {
				if !excused(n, cryptoPos) {
					pass.Reportf(cryptoPos, "%s reaches crypto (%s) before consulting the %s dedup table; a replayed frame must cost a lookup, not a verify", name, chain, field)
				}
			}
		}
	}

	// Rule 3: no second verify-bearing packet ingress.
	prog.EachFunc(func(n *analysis.FuncNode) {
		if !strings.HasSuffix(n.Pkg.Path, corePathSuffix) || n.TestFile {
			return
		}
		name := localName(n.Fn)
		if name == ingressRoot || !ast.IsExported(n.Fn.Name()) || !takesPacket(n.Fn) {
			return
		}
		if cryptoPos, chain := firstCrypto(prog, n, taints); cryptoPos != token.NoPos && !excused(n, cryptoPos) {
			pass.Reportf(cryptoPos, "exported packet entry point %s reaches crypto (%s) outside %s, bypassing the admission bucket", name, chain, ingressRoot)
		}
	})
	return nil
}

// isCryptoVerify reports whether fn is a Verify method (interface or
// concrete) declared in the sig package.
func isCryptoVerify(fn *types.Func) bool {
	if fn.Name() != "Verify" || fn.Pkg() == nil || !strings.HasSuffix(fn.Pkg().Path(), sigPathSuffix) {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() != nil
}

// firstCrypto returns the earliest call site in n whose callee reaches a
// crypto sink, with the rendered chain.
func firstCrypto(prog *analysis.Program, n *analysis.FuncNode, taints map[*types.Func]*analysis.Taint) (token.Pos, string) {
	for _, cs := range n.Calls {
		if taints[cs.Callee] != nil {
			return cs.Call.Pos(), prog.Chain(&analysis.Taint{Next: cs.Callee}, taints)
		}
	}
	return token.NoPos, ""
}

// admissionGuardPos finds the `if ... admit(...) ... { ... return ... }`
// statement in root's body and returns its position.
func admissionGuardPos(root *analysis.FuncNode) token.Pos {
	pos := token.NoPos
	ast.Inspect(root.Decl.Body, func(nd ast.Node) bool {
		if pos != token.NoPos {
			return false
		}
		ifs, ok := nd.(*ast.IfStmt)
		if !ok {
			return true
		}
		callsAdmit := false
		ast.Inspect(ifs.Cond, func(c ast.Node) bool {
			if call, ok := c.(*ast.CallExpr); ok {
				if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == admissionGuard {
					callsAdmit = true
				}
			}
			return true
		})
		if !callsAdmit {
			return true
		}
		for _, stmt := range ifs.Body.List {
			if _, ok := stmt.(*ast.ReturnStmt); ok {
				pos = ifs.If
				break
			}
		}
		return true
	})
	return pos
}

// firstIndexOf returns the position of the first index expression over a
// field or variable named field (e.g. p.store[id]) in body.
func firstIndexOf(body *ast.BlockStmt, field string) token.Pos {
	pos := token.NoPos
	ast.Inspect(body, func(nd ast.Node) bool {
		if pos != token.NoPos {
			return false
		}
		idx, ok := nd.(*ast.IndexExpr)
		if !ok {
			return true
		}
		switch x := ast.Unparen(idx.X).(type) {
		case *ast.SelectorExpr:
			if x.Sel.Name == field {
				pos = idx.Pos()
			}
		case *ast.Ident:
			if x.Name == field {
				pos = idx.Pos()
			}
		}
		return true
	})
	return pos
}

// takesPacket reports whether fn has a parameter of a type named Packet
// (the wire ingress shape).
func takesPacket(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	for i := 0; i < sig.Params().Len(); i++ {
		t := sig.Params().At(i).Type()
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		if named, ok := t.(*types.Named); ok && named.Obj().Name() == "Packet" {
			return true
		}
	}
	return false
}

// localName renders fn without its package: "Func" or "Recv.Method".
func localName(fn *types.Func) string {
	name := fn.Name()
	if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
		rt := recv.Type()
		if ptr, ok := rt.(*types.Pointer); ok {
			rt = ptr.Elem()
		}
		if named, ok := rt.(*types.Named); ok {
			name = named.Obj().Name() + "." + name
		}
	}
	return name
}

// tableNames returns every function the tables expect, sorted.
func tableNames() []string {
	names := sortedKeys(dedupGuards)
	return append([]string{ingressRoot}, names...)
}

func sortedKeys(m map[string][]string) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}
