// Package core poses as bbcast/internal/core with one violation of each
// ordered-ingress rule, proving the pass still fires.
package core

import (
	"bbcast/internal/sig"
	"bbcast/internal/wire"
)

type neighbor struct{ tokens int }

type Protocol struct {
	scheme    sig.Scheme
	store     map[uint64]bool
	missing   map[uint64]bool
	neighbors map[uint32]*neighbor
}

func (p *Protocol) admit(nb *neighbor) bool {
	if nb == nil || nb.tokens <= 0 {
		return false
	}
	nb.tokens--
	return true
}

func (p *Protocol) verify(id uint32, msg, tag []byte) bool {
	return p.scheme.Verify(id, msg, tag)
}

// HandlePacket pays for a verify before shedding over-budget senders.
func (p *Protocol) HandlePacket(pkt *wire.Packet) {
	if !p.verify(pkt.Sender, pkt.Payload, pkt.Sig) { // want `Protocol\.HandlePacket reaches crypto .* before the admit admission guard`
		return
	}
	if !p.admit(p.neighbors[pkt.Sender]) {
		return
	}
	p.handleData(pkt)
}

// handleData verifies before consulting the store.
func (p *Protocol) handleData(pkt *wire.Packet) {
	if !p.verify(pkt.Sender, pkt.Payload, pkt.Sig) { // want `Protocol\.handleData reaches crypto .* before consulting the store dedup table`
		return
	}
	if p.store[pkt.ID] {
		return
	}
	p.store[pkt.ID] = true
}

// handleGossip consults store but never missing before verifying.
func (p *Protocol) handleGossip(pkt *wire.Packet) {
	if p.store[pkt.ID] {
		return
	}
	if !p.verify(pkt.Sender, pkt.Payload, pkt.Sig) { // want `Protocol\.handleGossip reaches crypto .* before consulting the missing dedup table`
		return
	}
	p.missing[pkt.ID] = true
}

// handleSyncResp is clean: dedup precedes the verify.
func (p *Protocol) handleSyncResp(pkt *wire.Packet) {
	if p.store[pkt.ID] {
		return
	}
	if !p.verify(pkt.Sender, pkt.Payload, pkt.Sig) {
		return
	}
	p.store[pkt.ID] = true
}
