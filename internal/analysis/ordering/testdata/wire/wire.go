// Package wire poses as bbcast/internal/wire: Packet is the ingress shape
// rule 3 keys on.
package wire

type Packet struct {
	Kind    int
	Sender  uint32
	ID      uint64
	Payload []byte
	Sig     []byte
}
