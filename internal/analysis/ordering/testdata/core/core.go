// Package core poses as bbcast/internal/core with a contract-conforming
// ingress path: admission gates the dispatch, every table handler consults
// its dedup map first, and the one extra verify-bearing entry point carries
// either a want (rule 3) or a reviewed exception.
package core

import (
	"bbcast/internal/sig"
	"bbcast/internal/wire"
)

type neighbor struct{ tokens int }

type Protocol struct {
	scheme    sig.Scheme
	store     map[uint64]bool
	missing   map[uint64]bool
	neighbors map[uint32]*neighbor
}

func (p *Protocol) admit(nb *neighbor) bool {
	if nb == nil || nb.tokens <= 0 {
		return false
	}
	nb.tokens--
	return true
}

func (p *Protocol) verify(id uint32, msg, tag []byte) bool {
	return p.scheme.Verify(id, msg, tag)
}

func (p *Protocol) HandlePacket(pkt *wire.Packet) {
	nb := p.neighbors[pkt.Sender]
	if !p.admit(nb) {
		return
	}
	switch pkt.Kind {
	case 1:
		p.handleData(pkt)
	case 2:
		p.handleGossip(pkt)
	case 3:
		p.handleSyncResp(pkt)
	}
}

func (p *Protocol) handleData(pkt *wire.Packet) {
	if p.store[pkt.ID] {
		return
	}
	if !p.verify(pkt.Sender, pkt.Payload, pkt.Sig) {
		return
	}
	p.store[pkt.ID] = true
}

func (p *Protocol) handleGossip(pkt *wire.Packet) {
	if p.store[pkt.ID] || p.missing[pkt.ID] {
		return
	}
	if !p.verify(pkt.Sender, pkt.Payload, pkt.Sig) {
		return
	}
	p.missing[pkt.ID] = true
}

func (p *Protocol) handleSyncResp(pkt *wire.Packet) {
	if p.store[pkt.ID] {
		return
	}
	if !p.verify(pkt.Sender, pkt.Payload, pkt.Sig) {
		return
	}
	p.store[pkt.ID] = true
}

// Inject is a second verify-bearing packet entry point: rule 3 flags it.
func (p *Protocol) Inject(pkt *wire.Packet) {
	if !p.verify(pkt.Sender, pkt.Payload, pkt.Sig) { // want `exported packet entry point Protocol\.Inject reaches crypto`
		return
	}
	p.store[pkt.ID] = true
}

// Preverify carries a reviewed exception, so rule 3 stays quiet.
func (p *Protocol) Preverify(pkt *wire.Packet) bool {
	//bbvet:ordering fixture: diagnostic probe, not an ingress path
	return p.verify(pkt.Sender, pkt.Payload, pkt.Sig)
}
