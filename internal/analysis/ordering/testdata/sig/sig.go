// Package sig poses as bbcast/internal/sig: its Verify methods are the
// crypto sinks the ordering pass anchors on (the interface method covers
// dynamic dispatch, the concrete one direct calls).
package sig

type Scheme interface {
	Sign(id uint32, msg []byte) []byte
	Verify(id uint32, msg, tag []byte) bool
}

type HMAC struct{}

func (HMAC) Sign(id uint32, msg []byte) []byte      { return nil }
func (HMAC) Verify(id uint32, msg, tag []byte) bool { return true }
