// Package core omits a table handler so the drift check fires: renaming an
// ingress function must break the build, not silently prove nothing.
package core // want `ordering table drift: Protocol\.handleSyncResp not found`

import "bbcast/internal/wire"

type Protocol struct{ store map[uint64]bool }

func (p *Protocol) HandlePacket(pkt *wire.Packet) {
	p.handleData(pkt)
	p.handleGossip(pkt)
}

func (p *Protocol) handleData(pkt *wire.Packet)   { p.store[pkt.ID] = true }
func (p *Protocol) handleGossip(pkt *wire.Packet) { p.store[pkt.ID] = true }
