package ordering_test

import (
	"testing"

	"bbcast/internal/analysis"
	"bbcast/internal/analysis/analysistest"
	"bbcast/internal/analysis/ordering"
)

func deps() []analysis.DirSpec {
	return []analysis.DirSpec{
		{Dir: "testdata/sig", ImportPath: "bbcast/internal/sig"},
		{Dir: "testdata/wire", ImportPath: "bbcast/internal/wire"},
	}
}

// TestConforming covers the negative and escape cases (plus the rule-3
// second-entry-point positive, which coexists with a clean ingress path).
func TestConforming(t *testing.T) {
	analysistest.RunDirs(t, append(deps(),
		analysis.DirSpec{Dir: "testdata/core", ImportPath: "bbcast/internal/core"}), ordering.Analyzer)
}

// TestViolations proves each table rule fires: verify before admission,
// verify before store dedup, and a missing dedup lookup.
func TestViolations(t *testing.T) {
	analysistest.RunDirs(t, append(deps(),
		analysis.DirSpec{Dir: "testdata/badcore", ImportPath: "bbcast/internal/core"}), ordering.Analyzer)
}

// TestTableDrift proves a renamed handler is reported, not silently skipped.
func TestTableDrift(t *testing.T) {
	analysistest.RunDirs(t, append(deps(),
		analysis.DirSpec{Dir: "testdata/driftcore", ImportPath: "bbcast/internal/core"}), ordering.Analyzer)
}
