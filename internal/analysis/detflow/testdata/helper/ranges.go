package obsv

import "sort"

// Emit leaks map iteration order through a channel send. This package poses
// as bbcast/internal/obsv — outside DetPackages — so the direct map-range
// check never fires here; detflow treats it as a taint source instead.
func Emit(m map[int]int, ch chan int) {
	for _, v := range m {
		ch <- v
	}
}

// Sorted collects and sorts in the same function: order-insensitive, clean.
func Sorted(m map[int]int) []int {
	var out []int
	for _, v := range m {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}

// Justified sends in map order under a reviewed annotation; it does not
// taint.
func Justified(m map[int]int, ch chan int) {
	//bbvet:unordered fixture: receiver drains into a set
	for _, v := range m {
		ch <- v
	}
}
