//bbvet:wallclock fixture: this file measures real time by design

package obsv

import "time"

// Stamp's direct diagnostic is suppressed by the file exemption, so it is a
// taint source for detflow.
func Stamp() int64 { return time.Now().UnixNano() }

// Wrapped carries the taint one call further.
func Wrapped() int64 { return Stamp() }

// Fine never touches the forbidden surface.
func Fine() int64 { return 42 }

// Reviewed's wall-clock call has a line-level justification; reviewed lines
// do not taint.
func Reviewed() int64 {
	t := time.Now().UnixNano() //bbvet:wallclock fixture: reviewed line-level escape
	return t
}
