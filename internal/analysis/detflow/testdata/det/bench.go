//bbvet:wallclock fixture: in-package wall-benchmark file

package sim

import "time"

// wallNow taints despite living in a det package: the file exemption
// silences the direct check, but callers in normal files still must not
// reach it.
func wallNow() int64 { return time.Now().UnixNano() }

// exemptCaller lives in the same exempt file, so it is not a frontier and
// gets no diagnostic.
func exemptCaller() int64 { return wallNow() }
