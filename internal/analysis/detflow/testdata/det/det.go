// Package sim poses as a DetPackages member: every call chain out of a
// non-test, non-exempt function here is a detflow reporting frontier.
package sim

import "bbcast/internal/obsv"

func useStamp() int64 {
	return obsv.Stamp() // want `call chain reaches time\.Now: obsv\.Stamp → time\.Now`
}

func useWrapped() int64 {
	return obsv.Wrapped() // want `obsv\.Wrapped → obsv\.Stamp → time\.Now`
}

func useWallNow() int64 {
	return wallNow() // want `call chain reaches time\.Now: sim\.wallNow → time\.Now`
}

func useFine() int64 { return obsv.Fine() }

func useReviewed() int64 { return obsv.Reviewed() }

func useEmit(m map[int]int, ch chan int) {
	obsv.Emit(m, ch) // want `call chain leaks map iteration order: obsv\.Emit → order-dependent map range \(sends on a channel\)`
}

func useSorted(m map[int]int) []int { return obsv.Sorted(m) }

func useJustified(m map[int]int, ch chan int) { obsv.Justified(m, ch) }

func escapeStamp() int64 {
	//bbvet:wallclock fixture: boot banner timestamp only
	return obsv.Stamp()
}

func escapeEmit(m map[int]int, ch chan int) {
	obsv.Emit(m, ch) //bbvet:unordered fixture: receiver treats the stream as a set
}
