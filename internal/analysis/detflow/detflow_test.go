package detflow_test

import (
	"testing"

	"bbcast/internal/analysis"
	"bbcast/internal/analysis/analysistest"
	"bbcast/internal/analysis/detflow"
)

// TestDetflow runs the transitive-determinism pass over a two-package
// fixture: a helper posing as bbcast/internal/obsv (outside DetPackages)
// and a caller posing as bbcast/internal/sim (a reporting frontier).
func TestDetflow(t *testing.T) {
	analysistest.RunDirs(t, []analysis.DirSpec{
		{Dir: "testdata/helper", ImportPath: "bbcast/internal/obsv"},
		{Dir: "testdata/det", ImportPath: "bbcast/internal/sim"},
	}, detflow.Analyzer)
}
