// Package detflow makes the determinism contract transitive. The per-package
// determinism pass bans wall-clock/global-rand calls and order-leaking map
// ranges where they appear; detflow follows the call graph, so a det-package
// function cannot launder the same nondeterminism through a helper the direct
// check does not cover: a function in a //bbvet:wallclock-exempt file, or an
// effectful map range in a package outside DetPackages (obsv, metrics, trace).
//
// Taint sources are exactly the sinks whose direct diagnostic is suppressed —
// a forbidden call in a wallclock-exempt file or outside internal/, and an
// unannotated effectful map range outside DetPackages. Line-level annotations
// are reviewed justifications and do not taint. Taint propagates up through
// any function that is not itself held to the contract; functions in
// DetPackages are reporting frontiers — the diagnostic lands on their call
// site with the full chain printed, and they never taint their own callers
// (each boundary crossing gets exactly one report).
//
// Resolution is static: calls through interfaces (env.Clock.Now) or function
// values do not propagate taint. That is deliberate — injected interfaces are
// the sanctioned seam for nondeterminism, and flagging them would punish the
// exact pattern the contract prescribes.
package detflow

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"bbcast/internal/analysis"
	"bbcast/internal/analysis/determinism"
)

// Analyzer is the transitive-determinism pass.
var Analyzer = &analysis.Analyzer{
	Name:       "detflow",
	Doc:        "flag det-package call chains that reach wall clock, global rand, or an order-dependent map range through helpers the direct checks cannot see",
	RunProgram: run,
}

// fileFacts caches per-file annotation state keyed by file name.
type fileFacts struct {
	ann    *analysis.FileAnnotations
	exempt bool // //bbvet:wallclock file header
}

func run(pass *analysis.ProgramPass) error {
	prog := pass.Prog
	facts := map[string]*fileFacts{}
	for _, pkg := range prog.Packages {
		for _, file := range pkg.Files {
			ann := analysis.ParseAnnotations(pkg.Fset, file)
			facts[pkg.Fset.Position(file.Pos()).Filename] = &fileFacts{
				ann:    ann,
				exempt: ann.FileExempt(analysis.AnnWallclock),
			}
		}
	}
	factsOf := func(n *analysis.FuncNode) *fileFacts {
		return facts[prog.Fset.Position(n.Decl.Pos()).Filename]
	}
	inDet := func(n *analysis.FuncNode) bool {
		return determinism.DetPackages[n.Pkg.Path] && !n.TestFile
	}

	// Wall-clock taint: forbidden calls whose direct diagnostic is
	// suppressed (file-level exemption, or a package outside internal/
	// the determinism pass does not visit). Det-package functions in
	// non-exempt files are frontiers.
	wallDirect := map[*types.Func]*analysis.Taint{}
	prog.EachFunc(func(n *analysis.FuncNode) {
		ff := factsOf(n)
		suppressed := ff.exempt || !strings.Contains(n.Pkg.Path, "internal/")
		if !suppressed {
			return
		}
		for _, cs := range n.Calls {
			desc, ok := determinism.WallClockFunc(cs.Callee)
			if !ok {
				continue
			}
			if ff.ann.At(analysis.AnnWallclock, prog.Fset.Position(cs.Call.Pos()).Line) != nil {
				continue // a reviewed line-level justification does not taint
			}
			wallDirect[n.Fn] = &analysis.Taint{Kind: analysis.AnnWallclock, Desc: desc, Pos: cs.Call.Pos()}
			break
		}
	})
	wallTaints := prog.Propagate(wallDirect, func(n *analysis.FuncNode) bool {
		return !(inDet(n) && !factsOf(n).exempt)
	})

	// Unordered taint: effectful, unannotated map ranges in internal/
	// packages outside DetPackages. Det-package functions are frontiers
	// regardless of wall-clock exemption — the map-range discipline has no
	// file-level escape.
	unordDirect := map[*types.Func]*analysis.Taint{}
	prog.EachFunc(func(n *analysis.FuncNode) {
		if determinism.DetPackages[n.Pkg.Path] || !strings.Contains(n.Pkg.Path, "internal/") {
			return
		}
		ff := factsOf(n)
		if t := rangeTaint(n.Pkg.TypesInfo, prog.Fset, n.Decl.Body, ff.ann); t != nil {
			unordDirect[n.Fn] = t
		}
	})
	unordTaints := prog.Propagate(unordDirect, func(n *analysis.FuncNode) bool {
		return !inDet(n)
	})

	// Report at det-package frontiers: the first call site of each chain
	// into tainted territory, unless the site carries a matching annotation.
	prog.EachFunc(func(n *analysis.FuncNode) {
		if !inDet(n) {
			return
		}
		ff := factsOf(n)
		for _, cs := range n.Calls {
			if t := wallTaints[cs.Callee]; t != nil && !ff.exempt {
				line := prog.Fset.Position(cs.Call.Pos()).Line
				if ff.ann.At(analysis.AnnWallclock, line) == nil {
					chain := prog.Chain(&analysis.Taint{Next: cs.Callee}, wallTaints)
					pass.Reportf(cs.Call.Pos(), "call chain reaches %s: %s; deterministic code takes time from the injected env.Clock and randomness from the seeded *rand.Rand (or annotate //bbvet:wallclock <why>)", t.Desc, chain)
				}
			}
			if unordTaints[cs.Callee] != nil {
				line := prog.Fset.Position(cs.Call.Pos()).Line
				if ff.ann.At(analysis.AnnUnordered, line) == nil {
					chain := prog.Chain(&analysis.Taint{Next: cs.Callee}, unordTaints)
					pass.Reportf(cs.Call.Pos(), "call chain leaks map iteration order: %s; sort at the source or annotate //bbvet:unordered <why>", chain)
				}
			}
		}
	})
	return nil
}

// rangeTaint scans one function body for an effectful, unannotated map range
// and returns its taint. Closures get their own sort scope, mirroring the
// per-package pass.
func rangeTaint(info *types.Info, fset *token.FileSet, body *ast.BlockStmt, ann *analysis.FileAnnotations) *analysis.Taint {
	var taint *analysis.Taint
	var scan func(scope *ast.BlockStmt)
	scan = func(scope *ast.BlockStmt) {
		ast.Inspect(scope, func(n ast.Node) bool {
			if taint != nil {
				return false
			}
			switch n := n.(type) {
			case *ast.FuncLit:
				scan(n.Body)
				return false
			case *ast.RangeStmt:
				tv := info.TypeOf(n.X)
				if tv == nil {
					return true
				}
				if _, isMap := tv.Underlying().(*types.Map); !isMap {
					return true
				}
				if ann.At(analysis.AnnUnordered, fset.Position(n.For).Line) != nil {
					return true
				}
				if eff := determinism.RangeEffect(info, n, scope); eff != "" {
					taint = &analysis.Taint{
						Kind: analysis.AnnUnordered,
						Desc: "order-dependent map range (" + eff + ")",
						Pos:  n.For,
					}
				}
			}
			return true
		})
	}
	scan(body)
	return taint
}
