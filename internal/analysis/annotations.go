package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// The //bbvet: annotation grammar. An annotation is a line comment of the
// form
//
//	//bbvet:<kind> <argument and/or justification>
//
// with no space between "//" and "bbvet:". Four kinds exist:
//
//	//bbvet:wallclock <why>        file header: exempts the file from the
//	                               determinism wall-clock/global-rand checks;
//	                               on or above a line: exempts that line only.
//	//bbvet:unordered <why>        on or above a `for range` over a map:
//	                               asserts iteration order cannot leak into
//	                               observable output.
//	//bbvet:bounded-by <cap> <why> on a map-typed struct field in
//	                               internal/core: names the config field or
//	                               package constant that bounds the map.
//	//bbvet:errflow <why>          on or above a persist/transport write
//	                               whose error is deliberately dropped:
//	                               asserts the loss is by design (latched in
//	                               Store.Err, or best-effort datagrams).
//	//bbvet:ordering <why>         on or above a crypto-reaching call in an
//	                               internal/core ingress handler: asserts the
//	                               verify legitimately precedes admission or
//	                               dedup there.
//
// Every annotation must carry a non-empty justification; the analyzers
// reject bare escapes.
const (
	annotationPrefix = "//bbvet:"

	// AnnWallclock exempts wall-clock code from determinism checks.
	AnnWallclock = "wallclock"
	// AnnUnordered justifies an order-insensitive map iteration.
	AnnUnordered = "unordered"
	// AnnBoundedBy names the cap bounding a map-typed struct field.
	AnnBoundedBy = "bounded-by"
	// AnnErrflow justifies a deliberately dropped write error.
	AnnErrflow = "errflow"
	// AnnOrdering justifies a verify that precedes admission or dedup.
	AnnOrdering = "ordering"
)

// Annotation is one parsed //bbvet: comment.
type Annotation struct {
	Kind string // "wallclock", "unordered", "bounded-by", or unrecognized text
	Arg  string // everything after the kind, trimmed
	Line int
	Pos  token.Pos
}

// FileAnnotations indexes the //bbvet: comments of one file.
type FileAnnotations struct {
	// Header holds annotations placed before the package clause; a
	// wallclock annotation there exempts the whole file.
	Header []Annotation
	byLine map[int][]Annotation
	all    []Annotation
}

// ParseAnnotations extracts every //bbvet: comment of file.
func ParseAnnotations(fset *token.FileSet, file *ast.File) *FileAnnotations {
	fa := &FileAnnotations{byLine: map[int][]Annotation{}}
	pkgLine := fset.Position(file.Package).Line
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			text, ok := strings.CutPrefix(c.Text, annotationPrefix)
			if !ok {
				continue
			}
			kind, arg, _ := strings.Cut(text, " ")
			ann := Annotation{
				Kind: kind,
				Arg:  strings.TrimSpace(arg),
				Line: fset.Position(c.Pos()).Line,
				Pos:  c.Pos(),
			}
			fa.all = append(fa.all, ann)
			if ann.Line < pkgLine {
				fa.Header = append(fa.Header, ann)
			}
			fa.byLine[ann.Line] = append(fa.byLine[ann.Line], ann)
		}
	}
	return fa
}

// All returns every annotation in the file, in source order.
func (fa *FileAnnotations) All() []Annotation { return fa.all }

// FileExempt reports whether the file header carries the given annotation
// kind (e.g. a //bbvet:wallclock file allowlist).
func (fa *FileAnnotations) FileExempt(kind string) bool {
	for _, a := range fa.Header {
		if a.Kind == kind {
			return true
		}
	}
	return false
}

// At returns the annotation of the given kind that governs line: one written
// on the line itself or on the line directly above it.
func (fa *FileAnnotations) At(kind string, line int) *Annotation {
	for _, l := range [2]int{line, line - 1} {
		for i := range fa.byLine[l] {
			if fa.byLine[l][i].Kind == kind {
				return &fa.byLine[l][i]
			}
		}
	}
	return nil
}

// CheckAnnotations reports malformed //bbvet: comments: unknown kinds and
// annotations without a justification. Called by the determinism analyzer so
// the grammar is validated exactly once per file.
func CheckAnnotations(pass *Pass, fa *FileAnnotations) {
	for _, a := range fa.All() {
		switch a.Kind {
		case AnnWallclock, AnnUnordered, AnnErrflow, AnnOrdering:
			if a.Arg == "" {
				pass.Reportf(a.Pos, "//bbvet:%s needs a justification: //bbvet:%s <why>", a.Kind, a.Kind)
			}
		case AnnBoundedBy:
			if a.Arg == "" {
				pass.Reportf(a.Pos, "//bbvet:bounded-by needs a cap: //bbvet:bounded-by <cap> [why]")
			}
		default:
			pass.Reportf(a.Pos, "unknown annotation //bbvet:%s (want wallclock, unordered, bounded-by, errflow or ordering)", a.Kind)
		}
	}
}
