package analysis

import (
	"go/token"
	"strings"
	"testing"
)

func diag(analyzer, file string, line, col int, msg string) Diagnostic {
	return Diagnostic{
		Analyzer: analyzer,
		Pos:      token.Position{Filename: file, Line: line, Column: col},
		Message:  msg,
	}
}

// TestDedupeSorted: diagnostics come out ordered by (file, line, column,
// message, analyzer) with exact duplicates removed — the byte-stability the
// golden tests below and CI diffs rely on.
func TestDedupeSorted(t *testing.T) {
	in := []Diagnostic{
		diag("b", "z.go", 1, 1, "m"),
		diag("a", "a.go", 2, 1, "m"),
		diag("a", "a.go", 1, 5, "n"),
		diag("a", "a.go", 1, 5, "m"),
		diag("a", "a.go", 2, 1, "m"), // exact duplicate
		diag("a", "a.go", 1, 5, "m"), // exact duplicate
		diag("b", "a.go", 1, 5, "m"), // same position+message, other analyzer: kept
	}
	got := dedupeSorted(in)
	want := []Diagnostic{
		diag("a", "a.go", 1, 5, "m"),
		diag("b", "a.go", 1, 5, "m"),
		diag("a", "a.go", 1, 5, "n"),
		diag("a", "a.go", 2, 1, "m"),
		diag("b", "z.go", 1, 1, "m"),
	}
	if len(got) != len(want) {
		t.Fatalf("got %d diagnostics, want %d: %v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("[%d] = %+v, want %+v", i, got[i], want[i])
		}
	}
}

const sarifGolden = `{
  "$schema": "https://json.schemastore.org/sarif-2.1.0.json",
  "version": "2.1.0",
  "runs": [
    {
      "tool": {
        "driver": {
          "name": "bbvet",
          "rules": [
            {
              "id": "demo",
              "shortDescription": {
                "text": "demo analyzer"
              }
            }
          ]
        }
      },
      "results": [
        {
          "ruleId": "demo",
          "level": "error",
          "message": {
            "text": "something is off"
          },
          "locations": [
            {
              "physicalLocation": {
                "artifactLocation": {
                  "uri": "internal/core/x.go"
                },
                "region": {
                  "startLine": 7,
                  "startColumn": 3
                }
              }
            }
          ]
        }
      ]
    }
  ]
}
`

// TestWriteSARIF pins the exact SARIF bytes: repo-relative URIs, the rule
// table, and stable field order.
func TestWriteSARIF(t *testing.T) {
	var buf strings.Builder
	analyzers := []*Analyzer{{Name: "demo", Doc: "demo analyzer"}}
	diags := []Diagnostic{diag("demo", "/repo/internal/core/x.go", 7, 3, "something is off")}
	if err := WriteSARIF(&buf, "/repo", analyzers, diags); err != nil {
		t.Fatal(err)
	}
	if buf.String() != sarifGolden {
		t.Errorf("SARIF output drifted:\ngot:\n%s\nwant:\n%s", buf.String(), sarifGolden)
	}
}

const jsonGolden = `[
  {
    "analyzer": "demo",
    "file": "internal/core/x.go",
    "line": 7,
    "column": 3,
    "message": "something is off"
  }
]
`

// TestWriteJSON pins the -json format, including [] (not null) when clean.
func TestWriteJSON(t *testing.T) {
	var buf strings.Builder
	diags := []Diagnostic{diag("demo", "/repo/internal/core/x.go", 7, 3, "something is off")}
	if err := WriteJSON(&buf, "/repo", diags); err != nil {
		t.Fatal(err)
	}
	if buf.String() != jsonGolden {
		t.Errorf("JSON output drifted:\ngot:\n%s\nwant:\n%s", buf.String(), jsonGolden)
	}

	buf.Reset()
	if err := WriteJSON(&buf, "/repo", nil); err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(buf.String()) != "[]" {
		t.Errorf("empty diagnostics = %q, want []", buf.String())
	}
}

// TestRelPath covers the out-of-module fallback.
func TestRelPath(t *testing.T) {
	if got := relPath("/repo", "/repo/a/b.go"); got != "a/b.go" {
		t.Errorf("relPath in-module = %q", got)
	}
	if got := relPath("/repo", "/elsewhere/c.go"); got != "/elsewhere/c.go" {
		t.Errorf("relPath out-of-module = %q", got)
	}
	if got := relPath("", "x/y.go"); got != "x/y.go" {
		t.Errorf("relPath empty module = %q", got)
	}
}
