package analysis_test

import (
	"path/filepath"
	"testing"

	"bbcast/internal/analysis"
	"bbcast/internal/analysis/boundedstate"
	"bbcast/internal/analysis/determinism"
	"bbcast/internal/analysis/detflow"
	"bbcast/internal/analysis/errflow"
	"bbcast/internal/analysis/obsvonce"
	"bbcast/internal/analysis/ordering"
)

// TestRepoIsClean runs the bbvet analyzers over the entire repository, so a
// new contract violation fails `go test ./...` even where nobody runs bbvet
// or CI by hand. It is the test-suite twin of `go run ./cmd/bbvet ./...`.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole repository")
	}
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := analysis.Load(root, "./...")
	if err != nil {
		t.Fatalf("load ./...: %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatal("loaded no packages")
	}
	diags, err := analysis.Run(pkgs, []*analysis.Analyzer{
		determinism.Analyzer,
		obsvonce.Analyzer,
		boundedstate.Analyzer,
		detflow.Analyzer,
		ordering.Analyzer,
		errflow.Analyzer,
	})
	if err != nil {
		t.Fatalf("run analyzers: %v", err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}
