package boundedstate_test

import (
	"testing"

	"bbcast/internal/analysis/analysistest"
	"bbcast/internal/analysis/boundedstate"
)

// TestCapsAndAnnotations covers registered tables, //bbvet:bounded-by side
// tables (valid and naming a nonexistent cap), and the unbounded-map report.
func TestCapsAndAnnotations(t *testing.T) {
	analysistest.Run(t, "testdata/core", "bbcast/internal/core", boundedstate.Analyzer)
}

// TestStaleCapsTable checks both drift directions: a registered struct field
// that no longer exists, and a registration whose Config cap was deleted.
func TestStaleCapsTable(t *testing.T) {
	analysistest.Run(t, "testdata/stale", "bbcast/internal/core", boundedstate.Analyzer)
}

// TestScopedToCore checks packages outside internal/core are ignored.
func TestScopedToCore(t *testing.T) {
	analysistest.Run(t, "testdata/other", "bbcast/internal/fd", boundedstate.Analyzer)
}
