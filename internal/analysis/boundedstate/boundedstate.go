// Package boundedstate enforces PR 4's bounded-protocol-state contract in
// internal/core: every map-typed field of a core struct is attacker-growable
// state, so it must either be one of the registered protocol tables (whose
// size caps live in Config: MaxNeighbors, MaxStore, MaxMissing, MaxReqSeen)
// or carry a //bbvet:bounded-by <cap> annotation naming the Config field or
// package constant that bounds it. A new map field without either is exactly
// how the pre-PR-4 unbounded reqSeen table slipped in, and is reported.
package boundedstate

import (
	"go/ast"
	"go/types"
	"strings"

	"bbcast/internal/analysis"
)

// corePathSuffix scopes the analyzer to the protocol-state package.
const corePathSuffix = "internal/core"

// RegisteredCaps is PR 4's caps table: the protocol tables whose bounds are
// enforced at runtime (LRU eviction, rejection, TTL expiry) and sampled by
// the invariant checker's state-bounds probe. Each entry ties a struct field
// to the Config field capping it; the analyzer verifies the cap still exists.
var RegisteredCaps = []struct{ Struct, Field, Cap string }{
	{"Protocol", "store", "MaxStore"},
	{"Protocol", "missing", "MaxMissing"},
	{"Protocol", "neighbors", "MaxNeighbors"},
	{"Protocol", "reqSeen", "MaxReqSeen"},
	// linkQual entries are created only for senders present in the neighbour
	// table and deleted alongside neighbour expiry/eviction, so MaxNeighbors
	// bounds both tables.
	{"Protocol", "linkQual", "MaxNeighbors"},
}

// Analyzer is the bounded-state pass.
var Analyzer = &analysis.Analyzer{
	Name: "boundedstate",
	Doc:  "require every map-typed field of an internal/core struct to be capped (caps table or //bbvet:bounded-by)",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if !strings.HasSuffix(pass.Pkg.Path(), corePathSuffix) {
		return nil
	}
	registered := map[string]string{} // "Struct.field" -> cap
	for _, rc := range RegisteredCaps {
		registered[rc.Struct+"."+rc.Field] = rc.Cap
	}
	seen := map[string]bool{} // registered keys found in source
	for _, file := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(file.Pos()).Filename, "_test.go") {
			continue
		}
		ann := analysis.ParseAnnotations(pass.Fset, file)
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				checkStruct(pass, ann, ts.Name.Name, st, registered, seen)
			}
		}
	}
	for key, cap := range registered {
		structName := key[:strings.IndexByte(key, '.')]
		if !seen[key] && pass.Pkg.Scope().Lookup(structName) != nil {
			pass.Reportf(pass.Files[0].Package, "caps table is stale: registered field %s (cap %s) no longer exists; update boundedstate.RegisteredCaps", key, cap)
		}
	}
	return nil
}

func checkStruct(pass *analysis.Pass, ann *analysis.FileAnnotations, structName string, st *ast.StructType, registered map[string]string, seen map[string]bool) {
	for _, field := range st.Fields.List {
		if !containsMap(field.Type) {
			continue
		}
		names := field.Names
		if len(names) == 0 {
			continue // embedded field: the map lives in the named type's own package
		}
		for _, name := range names {
			key := structName + "." + name.Name
			if cap, ok := registered[key]; ok {
				seen[key] = true
				if !configHasField(pass.Pkg, cap) {
					pass.Reportf(name.Pos(), "map field %s is registered against Config.%s, but that cap field does not exist", key, cap)
				}
				continue
			}
			a := fieldAnnotation(pass, ann, field)
			if a == nil {
				pass.Reportf(name.Pos(), "map field %s is unbounded state: register it in the caps table (MaxNeighbors/MaxStore/MaxMissing/MaxReqSeen) or annotate //bbvet:bounded-by <cap>", key)
				continue
			}
			capName, _, _ := strings.Cut(a.Arg, " ")
			if capName == "" {
				continue // CheckAnnotations (determinism pass) reports the bare annotation
			}
			if !configHasField(pass.Pkg, capName) && pass.Pkg.Scope().Lookup(capName) == nil {
				pass.Reportf(a.Pos, "//bbvet:bounded-by %s: no such Config field or package-level constant", capName)
			}
		}
	}
}

// fieldAnnotation finds a bounded-by annotation in the field's doc comment,
// line comment, or on/above the field's line.
func fieldAnnotation(pass *analysis.Pass, ann *analysis.FileAnnotations, field *ast.Field) *analysis.Annotation {
	line := pass.Fset.Position(field.Pos()).Line
	if a := ann.At(analysis.AnnBoundedBy, line); a != nil {
		return a
	}
	if field.Comment != nil { // trailing comment may sit on the same line already covered above
		if a := ann.At(analysis.AnnBoundedBy, pass.Fset.Position(field.Comment.Pos()).Line); a != nil {
			return a
		}
	}
	return nil
}

// containsMap reports whether a map type occurs anywhere in the field type.
func containsMap(expr ast.Expr) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if _, ok := n.(*ast.MapType); ok {
			found = true
		}
		return !found
	})
	return found
}

// configHasField reports whether the package's Config struct has the field.
func configHasField(pkg *types.Package, name string) bool {
	obj, ok := pkg.Scope().Lookup("Config").(*types.TypeName)
	if !ok {
		return false
	}
	st, ok := obj.Type().Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		if st.Field(i).Name() == name {
			return true
		}
	}
	return false
}
