// Package core is a boundedstate fixture for a drifted caps table: the
// registered reqSeen field was deleted without updating RegisteredCaps, and
// Config lost the MaxMissing cap the missing table is registered against.
package core // want `caps table is stale: registered field Protocol\.reqSeen \(cap MaxReqSeen\) no longer exists`

// Config lost MaxMissing in this fixture.
type Config struct {
	MaxStore     int
	MaxNeighbors int
}

// Protocol lost its reqSeen table in this fixture.
type Protocol struct {
	store     map[int]int
	missing   map[int]int // want `registered against Config\.MaxMissing, but that cap field does not exist`
	neighbors map[int]int
	linkQual  map[int]int
}
