// Package fd is a boundedstate fixture type-checked as bbcast/internal/fd:
// the analyzer is scoped to internal/core, so nothing here is checked.
package fd

type table struct {
	m map[int]int // outside internal/core: not protocol state
}
