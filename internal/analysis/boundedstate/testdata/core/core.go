// Package core is a boundedstate fixture type-checked as
// bbcast/internal/core: registered tables, annotated side tables, and the
// two failure modes (an unbounded map field, an annotation naming a cap that
// does not exist).
package core

// Config carries the caps the registered tables are bounded by.
type Config struct {
	MaxStore     int
	MaxMissing   int
	MaxNeighbors int
	MaxReqSeen   int
}

// maxSide bounds the annotated side table below.
const maxSide = 4

// Protocol mirrors the real protocol state tables.
type Protocol struct {
	store     map[int]int // registered: capped by Config.MaxStore
	missing   map[int]int
	neighbors map[int]int
	reqSeen   map[int]int
	linkQual  map[int]int // registered: shares Config.MaxNeighbors with neighbors

	//bbvet:bounded-by maxSide fixture: insertion refuses growth past the cap
	side map[int]int

	rogue map[int]int // want `map field Protocol\.rogue is unbounded state`

	//bbvet:bounded-by MaxGhost // want `//bbvet:bounded-by MaxGhost: no such Config field or package-level constant`
	ghost map[int]int

	workers []int // non-map fields are not attacker-growable tables
}

// aux shows the rule applies to every struct in the package, not only
// Protocol, and that nested map types count.
type aux struct {
	byPeer map[int]map[int]int // want `map field aux\.byPeer is unbounded state`

	//bbvet:bounded-by MaxStore shares the store cap
	index map[int]int
}
