package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// This file is the interprocedural layer: a project-wide static call graph
// over every loaded package, plus a deterministic taint-propagation engine on
// top of it. Per-package analyzers see one package at a time through Pass;
// whole-program analyzers (detflow, ordering, errflow) see all of them at
// once through ProgramPass and can follow a fact across call boundaries —
// a time.Now() one helper away, a crypto verify reachable before admission,
// a dropped write error returned through three frames.
//
// Resolution is static and best-effort: direct calls to package functions
// and methods resolve exactly; calls through an interface resolve to the
// interface method itself (a useful sink anchor — e.g. sig.Scheme.Verify —
// but not a path into its implementations); calls through function values
// do not resolve. Function literals are attributed to their enclosing named
// function, matching how the per-package analyzers scope closures.

// Program is the whole-program view handed to RunProgram analyzers: every
// loaded package, every function body, and the static call graph between
// them. All packages must share one token.FileSet (Load and LoadDirs
// guarantee this).
type Program struct {
	Packages []*Package
	Fset     *token.FileSet
	// Funcs indexes every function (and method) with a body in the loaded
	// packages by its types object.
	Funcs map[*types.Func]*FuncNode
	// nodes holds the same functions in deterministic source order
	// (file name, then position), the iteration order of EachFunc.
	nodes []*FuncNode
}

// FuncNode is one analyzed function with its resolved outgoing calls.
type FuncNode struct {
	Fn   *types.Func
	Decl *ast.FuncDecl
	Pkg  *Package
	// Calls lists the statically resolved call sites in source order,
	// closures included (attributed to this function).
	Calls []CallSite
	// TestFile marks functions defined in _test.go files; contract
	// analyzers usually skip them, matching the per-package passes.
	TestFile bool
}

// CallSite is one resolved static call inside a FuncNode.
type CallSite struct {
	// Callee is the called function: a FuncNode key when its body was
	// loaded, or an external/interface method (a graph leaf) otherwise.
	Callee *types.Func
	Call   *ast.CallExpr
}

// BuildProgram constructs the call graph over pkgs. It is pure analysis —
// no diagnostics — so several program analyzers share one build.
func BuildProgram(pkgs []*Package) *Program {
	prog := &Program{Packages: pkgs, Funcs: map[*types.Func]*FuncNode{}}
	if len(pkgs) > 0 {
		prog.Fset = pkgs[0].Fset
	}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			testFile := strings.HasSuffix(pkg.Fset.Position(file.Pos()).Filename, "_test.go")
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.TypesInfo.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				node := &FuncNode{Fn: fn, Decl: fd, Pkg: pkg, TestFile: testFile}
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					if callee := pkg.CalleeOf(call); callee != nil {
						node.Calls = append(node.Calls, CallSite{Callee: callee, Call: call})
					}
					return true
				})
				prog.Funcs[fn] = node
				prog.nodes = append(prog.nodes, node)
			}
		}
	}
	sort.Slice(prog.nodes, func(i, j int) bool {
		a := prog.Fset.Position(prog.nodes[i].Decl.Pos())
		b := prog.Fset.Position(prog.nodes[j].Decl.Pos())
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		return a.Offset < b.Offset
	})
	return prog
}

// EachFunc visits every function node in deterministic source order.
func (prog *Program) EachFunc(fn func(*FuncNode)) {
	for _, n := range prog.nodes {
		fn(n)
	}
}

// CalleeOf resolves a call expression to its static callee: a package-level
// function, a concrete method, or an interface method. Calls through
// function values, builtins, and type conversions return nil.
func (p *Package) CalleeOf(call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := p.TypesInfo.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if sel, ok := p.TypesInfo.Selections[fun]; ok {
			if sel.Kind() == types.MethodVal {
				if fn, ok := sel.Obj().(*types.Func); ok {
					return fn
				}
			}
			return nil
		}
		// No selection entry: a package-qualified call like time.Now.
		if fn, ok := p.TypesInfo.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// Taint is one function's path to a sink. Pos is the expression inside the
// function that takes the next step: the sink expression itself when Next is
// nil, or the call into Next otherwise. Kind is analyzer-defined (detflow
// uses it to match the annotation that may excuse a call site).
type Taint struct {
	Kind string
	Desc string // sink description, e.g. "time.Now" or "unordered map range"
	Pos  token.Pos
	Next *types.Func
}

// Propagate spreads direct taints up the call graph to a fixpoint: a
// function that calls a tainted function becomes tainted through that call.
// through gates which functions may carry taint upward (return false to
// make a node a reporting frontier that never taints its own callers).
// Chains are shortest-first and deterministic: propagation runs in rounds,
// visiting functions in source order and picking each function's earliest
// call site into the previous round.
func (prog *Program) Propagate(direct map[*types.Func]*Taint, through func(*FuncNode) bool) map[*types.Func]*Taint {
	taints := make(map[*types.Func]*Taint, len(direct))
	for fn, t := range direct {
		taints[fn] = t
	}
	for {
		added := false
		round := map[*types.Func]*Taint{}
		for _, node := range prog.nodes {
			if taints[node.Fn] != nil || round[node.Fn] != nil {
				continue
			}
			if through != nil && !through(node) {
				continue
			}
			for _, cs := range node.Calls {
				t := taints[cs.Callee]
				if t == nil {
					continue
				}
				round[node.Fn] = &Taint{
					Kind: t.Kind,
					Desc: t.Desc,
					Pos:  cs.Call.Pos(),
					Next: cs.Callee,
				}
				added = true
				break
			}
		}
		if !added {
			return taints
		}
		for fn, t := range round {
			taints[fn] = t
		}
	}
}

// Chain renders the call chain from t to its sink for a diagnostic, e.g.
// "runner.stamp → obsv.flush → time.Now". The first element is the callee
// at the reported call site; the chain ends with the sink description.
func (prog *Program) Chain(t *Taint, taints map[*types.Func]*Taint) string {
	var parts []string
	for t.Next != nil {
		parts = append(parts, FuncDisplayName(t.Next))
		next := taints[t.Next]
		if next == nil {
			break // external sink function: its name is the last hop
		}
		t = next
		if len(parts) > 32 {
			parts = append(parts, "…")
			break
		}
	}
	parts = append(parts, t.Desc)
	return strings.Join(parts, " → ")
}

// FuncDisplayName renders fn compactly for diagnostics: "pkg.Func" or
// "pkg.Recv.Method" with pointer stars stripped.
func FuncDisplayName(fn *types.Func) string {
	name := fn.Name()
	if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
		rt := recv.Type()
		if ptr, ok := rt.(*types.Pointer); ok {
			rt = ptr.Elem()
		}
		if named, ok := rt.(*types.Named); ok {
			name = named.Obj().Name() + "." + name
		}
	}
	if fn.Pkg() != nil {
		name = pathTail(fn.Pkg().Path()) + "." + name
	}
	return name
}

func pathTail(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}
