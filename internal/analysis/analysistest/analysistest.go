// Package analysistest runs analyzers over a testdata package and checks the
// diagnostics against `// want "regex"` comments in the source — a minimal,
// dependency-free stand-in for x/tools' analysistest.
//
// A want comment expects one diagnostic on its own line whose message matches
// the quoted regular expression; several quoted patterns expect several
// diagnostics on that line. Every diagnostic must be expected and every
// expectation must be met, or the test fails.
//
// Testdata directories are deliberately not Go packages the tool would list
// (they sit under testdata/), so they are type-checked by analysis.LoadDir
// under a caller-chosen fake import path. That lets a fixture pose as, say,
// bbcast/internal/sim to exercise the production DetPackages table without
// touching the real package.
package analysistest

import (
	"regexp"
	"strconv"
	"strings"
	"testing"

	"bbcast/internal/analysis"
)

// expectation is one quoted pattern of a want comment.
type expectation struct {
	file string // base name
	line int
	re   *regexp.Regexp
	met  bool
}

// wantRe matches a want comment and captures its quoted patterns (either
// double- or back-quoted; backquotes spare the regexp a double escape).
var wantRe = regexp.MustCompile(`//\s*want((?:\s+(?:"(?:[^"\\]|\\.)*"|` + "`[^`]*`" + `))+)\s*$`)

// strRe matches one Go-quoted string.
var strRe = regexp.MustCompile(`"(?:[^"\\]|\\.)*"|` + "`[^`]*`")

// Run type-checks the package in dir under importPath, applies the analyzers,
// and diffs their diagnostics against the // want comments in dir's sources.
func Run(t *testing.T, dir, importPath string, analyzers ...*analysis.Analyzer) {
	t.Helper()
	RunDirs(t, []analysis.DirSpec{{Dir: dir, ImportPath: importPath}}, analyzers...)
}

// RunDirs is Run over a multi-package fixture: the directories are
// type-checked in order into one program (later ones may import earlier ones
// by their fake import paths), the analyzers — whole-program ones included —
// run over all of them at once, and want comments are collected from every
// fixture file. This is how the interprocedural passes are tested: a sink
// package posing as, say, bbcast/internal/obsv plus a caller posing as a
// DetPackages member.
func RunDirs(t *testing.T, specs []analysis.DirSpec, analyzers ...*analysis.Analyzer) {
	t.Helper()
	pkgs, err := analysis.LoadDirs(specs...)
	if err != nil {
		t.Fatalf("load fixture dirs: %v", err)
	}
	diags, err := analysis.Run(pkgs, analyzers)
	if err != nil {
		t.Fatalf("run analyzers: %v", err)
	}
	var wants []*expectation
	for _, pkg := range pkgs {
		wants = append(wants, collectWants(t, pkg)...)
	}

	for _, d := range diags {
		if !claim(wants, baseName(d.Pos.Filename), d.Pos.Line, d.Message) {
			t.Errorf("unexpected diagnostic at %s:%d: %s: %s",
				baseName(d.Pos.Filename), d.Pos.Line, d.Analyzer, d.Message)
		}
	}
	for _, w := range wants {
		if !w.met {
			t.Errorf("no diagnostic at %s:%d matching %q", w.file, w.line, w.re)
		}
	}
}

// collectWants parses every want comment of the loaded package.
func collectWants(t *testing.T, pkg *analysis.Package) []*expectation {
	t.Helper()
	var wants []*expectation
	for _, file := range pkg.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, q := range strRe.FindAllString(m[1], -1) {
					pat, err := strconv.Unquote(q)
					if err != nil {
						t.Fatalf("%s:%d: bad want pattern %s: %v", pos.Filename, pos.Line, q, err)
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, pat, err)
					}
					wants = append(wants, &expectation{file: baseName(pos.Filename), line: pos.Line, re: re})
				}
			}
		}
	}
	return wants
}

// claim marks the first open expectation matching the diagnostic as met.
func claim(wants []*expectation, file string, line int, message string) bool {
	for _, w := range wants {
		if !w.met && w.file == file && w.line == line && w.re.MatchString(message) {
			w.met = true
			return true
		}
	}
	return false
}

func baseName(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}
