package determinism_test

import (
	"testing"

	"bbcast/internal/analysis/analysistest"
	"bbcast/internal/analysis/determinism"
)

// TestDeterministicPackage covers the full rule set inside a DetPackages
// member: the wall-clock/global-rand ban, order-dependent map iteration with
// the sorted-later and annotation escapes, and annotation-grammar validation.
func TestDeterministicPackage(t *testing.T) {
	analysistest.Run(t, "testdata/det", "bbcast/internal/sim", determinism.Analyzer)
}

// TestWallclockFileAllowlist checks a //bbvet:wallclock file header silences
// the wall-clock checks, and that non-DetPackages internal packages are not
// subject to the map-iteration rule.
func TestWallclockFileAllowlist(t *testing.T) {
	analysistest.Run(t, "testdata/wallclockfile", "bbcast/internal/transport", determinism.Analyzer)
}

// TestOutsideInternal checks packages outside internal/ escape the wall-clock
// ban while their //bbvet: comments are still grammar-checked.
func TestOutsideInternal(t *testing.T) {
	analysistest.Run(t, "testdata/outside", "bbcast/cmd/fixture", determinism.Analyzer)
}
