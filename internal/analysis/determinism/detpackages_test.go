package determinism

import (
	"bytes"
	"os/exec"
	"strings"
	"testing"
)

// detExemptions names every bbcast/internal package that the simulation
// closure (internal/sim + internal/runner) is allowed to import WITHOUT being
// in DetPackages, and why. A new package imported by the closure must either
// join DetPackages (so bbvet's determinism passes cover it) or be added here
// with a justification — this test fails otherwise, which is the drift audit
// PR 10 asks for.
var detExemptions = map[string]string{
	"bbcast/internal/baseline":  "reference implementations compared against the protocol; scored by the harness, not part of the replayed state machine",
	"bbcast/internal/env":       "the determinism substrate itself (Clock, seeded Rand); it defines the contract rather than being subject to it",
	"bbcast/internal/invariant": "read-only checkers over snapshots; they observe state, they never advance it",
	"bbcast/internal/metrics":   "aggregation sinks; output ordering is normalized at render time, not consumed by the protocol",
	"bbcast/internal/obsv":      "observability taps (wall-clock stamps are its job); detflow guards the boundary back into det packages",
	"bbcast/internal/sig":       "pure crypto over explicit inputs; no clocks, no global randomness, nothing to schedule",
	"bbcast/internal/trace":     "post-hoc lineage recording; consumed by forensics tooling after the run completes",
	"bbcast/internal/viz":       "rendering only; emits artifacts for humans, never feeds results back into the run",
}

// simClosure returns the bbcast/internal/* dependency closure of the
// simulation entry packages, via the go tool.
func simClosure(t *testing.T) []string {
	t.Helper()
	cmd := exec.Command("go", "list", "-deps", "bbcast/internal/sim", "bbcast/internal/runner")
	var out, stderr bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		t.Skipf("go list -deps unavailable: %v (%s)", err, stderr.String())
	}
	var pkgs []string
	for _, line := range strings.Split(out.String(), "\n") {
		line = strings.TrimSpace(line)
		if strings.HasPrefix(line, "bbcast/internal/") {
			pkgs = append(pkgs, line)
		}
	}
	if len(pkgs) == 0 {
		t.Fatal("go list -deps returned no bbcast/internal packages; closure query is broken")
	}
	return pkgs
}

// TestDetPackagesCoverSimClosure is the DetPackages drift audit: every
// internal package reachable from the simulation must be either covered by the
// determinism passes or explicitly excused above — never silently neither.
func TestDetPackagesCoverSimClosure(t *testing.T) {
	for _, pkg := range simClosure(t) {
		inDet := DetPackages[pkg]
		why, excused := detExemptions[pkg]
		switch {
		case inDet && excused:
			t.Errorf("%s is both in DetPackages and excused (%q); pick one", pkg, why)
		case !inDet && !excused:
			t.Errorf("%s is imported by the simulation closure but neither in DetPackages nor excused in detExemptions; add it to one with a justification", pkg)
		}
	}
}

// TestDetPackagesDurabilityCoverage pins the PR 9/PR 10 contract directly:
// the durable-state layer is replayed on crash recovery, so it must be under
// the determinism passes.
func TestDetPackagesDurabilityCoverage(t *testing.T) {
	if !DetPackages["bbcast/internal/persist"] {
		t.Error("bbcast/internal/persist must be in DetPackages: recovery replays its state, so it must be deterministic")
	}
}

// TestDetPackagesExist guards against typos and renames: every DetPackages
// entry (and every exemption) must name a package that actually builds in
// this module.
func TestDetPackagesExist(t *testing.T) {
	cmd := exec.Command("go", "list", "./...")
	cmd.Dir = "../../.."
	out, err := cmd.Output()
	if err != nil {
		t.Skipf("go list ./... unavailable: %v", err)
	}
	exists := map[string]bool{}
	for _, line := range strings.Split(string(out), "\n") {
		exists[strings.TrimSpace(line)] = true
	}
	for pkg := range DetPackages {
		if !exists[pkg] {
			t.Errorf("DetPackages names %s, which is not a package in this module", pkg)
		}
	}
	for pkg := range detExemptions {
		if !exists[pkg] {
			t.Errorf("detExemptions names %s, which is not a package in this module", pkg)
		}
	}
}
