// Package determinism enforces the repo's simulation-determinism contract:
// simulation code must take time from the injected env.Clock and randomness
// from the node's seeded *rand.Rand, and must not let Go's randomized map
// iteration order reach anything observable (a packet, an event, a slice
// built without sorting). PR 3's bit-identical serial/parallel replay relies
// on this; the analyzer turns the convention into a build error.
//
// Scope:
//
//   - In every package under internal/, wall-clock sources (time.Now,
//     time.Since, timers) and the global math/rand functions are forbidden.
//     Files that are wall-clock by nature (the UDP transport, the real
//     clock, wall benchmarks) declare it with //bbvet:wallclock <why> in the
//     file header; a single expression can be exempted with the same
//     annotation on or above its line.
//   - In the simulation-deterministic package set (DetPackages), ranging
//     over a map is additionally checked: if the loop body has
//     order-dependent effects (appends to a slice, sends on a channel, calls
//     anything non-pure), the analyzer requires either that every appended
//     slice is sorted later in the same function, or a //bbvet:unordered
//     <why> annotation on the range statement.
package determinism

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"bbcast/internal/analysis"
)

// DetPackages is the simulation-deterministic package set: every package
// whose code runs inside a discrete-event simulation and therefore must be a
// pure function of (scenario, seed). Adding a package here subjects it to
// the map-iteration checks as well as the wall-clock/global-rand ban.
var DetPackages = map[string]bool{
	"bbcast/internal/sim":         true,
	"bbcast/internal/core":        true,
	"bbcast/internal/persist":     true,
	"bbcast/internal/radio":       true,
	"bbcast/internal/mac":         true,
	"bbcast/internal/overlay":     true,
	"bbcast/internal/fd":          true,
	"bbcast/internal/geo":         true,
	"bbcast/internal/mobility":    true,
	"bbcast/internal/faultplan":   true,
	"bbcast/internal/byzantine":   true,
	"bbcast/internal/runner":      true,
	"bbcast/internal/experiments": true,
	"bbcast/internal/wire":        true,
	"bbcast/internal/loadgen":     true,
}

// forbiddenTime are the wall-clock entry points of package time. Simulation
// code gets time exclusively from env.Clock.
var forbiddenTime = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "Tick": true, "NewTimer": true, "NewTicker": true,
	"AfterFunc": true,
}

// forbiddenRand are the top-level math/rand (and v2) functions backed by the
// process-global generator. Constructors (New, NewSource, NewZipf, NewPCG,
// NewChaCha8) stay legal: explicit sources are how determinism is done.
var forbiddenRand = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "ExpFloat64": true, "NormFloat64": true,
	"Perm": true, "Shuffle": true, "Read": true, "Seed": true,
	// math/rand/v2 spellings not shared with v1.
	"IntN": true, "Int32": true, "Int32N": true, "Int64": true,
	"Int64N": true, "Uint": true, "UintN": true, "Uint32N": true,
	"Uint64N": true, "N": true,
}

// sortFuncs recognize "the collected result is sorted in the same function":
// package sort / slices functions whose first argument is the slice.
var sortFuncs = map[string]map[string]bool{
	"sort": {
		"Slice": true, "SliceStable": true, "Sort": true, "Stable": true,
		"Strings": true, "Ints": true, "Float64s": true,
	},
	"slices": {"Sort": true, "SortFunc": true, "SortStableFunc": true},
}

// pureBuiltins may be called inside a map range without creating an
// order-dependent effect (append is handled separately).
var pureBuiltins = map[string]bool{
	"len": true, "cap": true, "delete": true, "make": true, "new": true,
	"min": true, "max": true,
}

// Analyzer is the determinism pass.
var Analyzer = &analysis.Analyzer{
	Name: "determinism",
	Doc:  "forbid wall-clock time, global math/rand and order-leaking map iteration in simulation-deterministic packages",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	path := pass.Pkg.Path()
	inInternal := strings.Contains(path, "internal/")
	inDetSet := DetPackages[path]
	for _, file := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(file.Pos()).Filename, "_test.go") {
			continue
		}
		ann := analysis.ParseAnnotations(pass.Fset, file)
		analysis.CheckAnnotations(pass, ann)
		if !inInternal {
			continue
		}
		wallclockFile := ann.FileExempt(analysis.AnnWallclock)
		if !wallclockFile {
			checkWallClock(pass, file, ann)
		}
		if inDetSet {
			checkMapRanges(pass, file, ann)
		}
	}
	return nil
}

// checkWallClock reports calls into the forbidden time / global-rand surface.
func checkWallClock(pass *analysis.Pass, file *ast.File, ann *analysis.FileAnnotations) {
	ast.Inspect(file, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		pkgPath, name := calledPackageFunc(pass.TypesInfo, call)
		var bad string
		switch {
		case pkgPath == "time" && forbiddenTime[name]:
			bad = fmt.Sprintf("time.%s is wall clock; deterministic code takes time from the injected env.Clock", name)
		case (pkgPath == "math/rand" || pkgPath == "math/rand/v2") && forbiddenRand[name]:
			bad = fmt.Sprintf("global %s.%s is process-shared and unseeded; use the node's injected *rand.Rand", pathBase(pkgPath), name)
		default:
			return true
		}
		if ann.At(analysis.AnnWallclock, pass.Fset.Position(call.Pos()).Line) != nil {
			return true
		}
		pass.Reportf(call.Pos(), "%s (or annotate //bbvet:wallclock <why>)", bad)
		return true
	})
}

// WallClockFunc reports whether fn is on the forbidden wall-clock/global-rand
// surface, naming it for a diagnostic ("time.Now", "rand.IntN"). The detflow
// pass uses this to seed transitive taint from resolved callees, so the
// intraprocedural ban above and the interprocedural one can never drift apart.
func WallClockFunc(fn *types.Func) (string, bool) {
	if fn.Pkg() == nil {
		return "", false
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return "", false
	}
	path := fn.Pkg().Path()
	switch {
	case path == "time" && forbiddenTime[fn.Name()]:
		return "time." + fn.Name(), true
	case (path == "math/rand" || path == "math/rand/v2") && forbiddenRand[fn.Name()]:
		return pathBase(path) + "." + fn.Name(), true
	}
	return "", false
}

// calledPackageFunc resolves call to (package path, function name) when the
// callee is a qualified identifier like time.Now; otherwise ("", "").
func calledPackageFunc(info *types.Info, call *ast.CallExpr) (string, string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	ident, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", ""
	}
	pn, ok := info.Uses[ident].(*types.PkgName)
	if !ok {
		return "", ""
	}
	return pn.Imported().Path(), sel.Sel.Name
}

func pathBase(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}

// checkMapRanges walks every function in file and flags map iterations whose
// body has order-dependent effects.
func checkMapRanges(pass *analysis.Pass, file *ast.File, ann *analysis.FileAnnotations) {
	for _, decl := range file.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		checkFuncMapRanges(pass, fd.Body, ann)
	}
}

// checkFuncMapRanges inspects one function body. fnBody is the scope searched
// for "sorted later"; nested function literals are scanned as their own
// scopes (a sort in the outer function cannot vouch for an append inside a
// closure that may run later).
func checkFuncMapRanges(pass *analysis.Pass, fnBody *ast.BlockStmt, ann *analysis.FileAnnotations) {
	ast.Inspect(fnBody, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			checkFuncMapRanges(pass, n.Body, ann)
			return false
		case *ast.RangeStmt:
			if _, isMap := pass.TypesInfo.TypeOf(n.X).Underlying().(*types.Map); !isMap {
				return true
			}
			if ann.At(analysis.AnnUnordered, pass.Fset.Position(n.For).Line) != nil {
				return true
			}
			reportMapRange(pass, n, fnBody)
		}
		return true
	})
}

// reportMapRange flags n if its body has an effect that leaks iteration
// order out of the loop.
func reportMapRange(pass *analysis.Pass, n *ast.RangeStmt, fnBody *ast.BlockStmt) {
	f := findRangeEffect(pass.TypesInfo, n, fnBody)
	if f == nil {
		return
	}
	if f.badAppend != nil {
		pass.Reportf(n.For, "range over map has order-dependent effects (appends to %s, never sorted in this function); sort the keys first, sort the result, or annotate //bbvet:unordered <why>", f.badAppend.Name())
		return
	}
	pass.Reportf(n.For, "range over map has order-dependent effects (%s at %s); iterate sorted keys or annotate //bbvet:unordered <why>",
		f.effect, pass.Fset.Position(f.effectPos))
}

// RangeEffect describes the order-dependent effect of the map-range statement
// n, or "" when the loop is order-insensitive by the same heuristic the
// per-package pass applies. fnBody is the enclosing function scope searched
// for an after-the-loop sort. The detflow pass uses this to treat effectful
// map ranges in packages outside DetPackages as taint sources, so a
// det-package function cannot launder iteration order through a helper
// package the direct check does not cover.
func RangeEffect(info *types.Info, n *ast.RangeStmt, fnBody *ast.BlockStmt) string {
	f := findRangeEffect(info, n, fnBody)
	switch {
	case f == nil:
		return ""
	case f.badAppend != nil:
		return fmt.Sprintf("appends to %s without sorting", f.badAppend.Name())
	default:
		return f.effect
	}
}

// rangeEffect is one order-dependent effect found inside a map-range body:
// either an append whose target is never sorted (badAppend) or a directly
// leaking statement (effect + position).
type rangeEffect struct {
	effect    string
	effectPos token.Pos
	badAppend types.Object
}

// findRangeEffect runs the order-leak heuristic over n's body and returns the
// first effect that leaks iteration order, or nil if the loop is clean.
func findRangeEffect(info *types.Info, n *ast.RangeStmt, fnBody *ast.BlockStmt) *rangeEffect {
	var firstEffect string
	var effectPos token.Pos
	appendTargets := map[types.Object]token.Pos{}
	appendAssigns := map[*ast.CallExpr]bool{}

	ast.Inspect(n.Body, func(b ast.Node) bool {
		if firstEffect != "" && len(appendTargets) == 0 {
			return false
		}
		switch b := b.(type) {
		case *ast.SendStmt:
			if firstEffect == "" {
				firstEffect, effectPos = "sends on a channel", b.Arrow
			}
		case *ast.AssignStmt:
			for i, rhs := range b.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok || !isBuiltin(info, call, "append") {
					continue
				}
				appendAssigns[call] = true
				if i < len(b.Lhs) {
					if id, ok := b.Lhs[i].(*ast.Ident); ok {
						if obj := info.ObjectOf(id); obj != nil {
							appendTargets[obj] = call.Pos()
							continue
						}
					}
				}
				if firstEffect == "" {
					firstEffect, effectPos = "appends to a non-local slice", call.Pos()
				}
			}
		case *ast.CallExpr:
			if appendAssigns[b] || isConversion(info, b) {
				return true
			}
			if name, isB := builtinName(info, b); isB {
				if pureBuiltins[name] {
					return true
				}
				if name == "append" {
					// append outside a plain assignment: result escapes
					// somewhere we cannot track.
					if firstEffect == "" {
						firstEffect, effectPos = "uses append outside a plain assignment", b.Pos()
					}
					return true
				}
			}
			if firstEffect == "" {
				firstEffect, effectPos = fmt.Sprintf("calls %s", calleeName(b)), b.Pos()
			}
		}
		return true
	})

	// Appends are fine if every target is sorted after the loop in the same
	// function scope.
	for obj := range appendTargets {
		if !sortedAfter(info, fnBody, n.End(), obj) {
			return &rangeEffect{badAppend: obj}
		}
	}
	if firstEffect != "" {
		return &rangeEffect{effect: firstEffect, effectPos: effectPos}
	}
	return nil
}

// sortedAfter reports whether obj is passed to a sort function after pos
// inside scope.
func sortedAfter(info *types.Info, scope *ast.BlockStmt, pos token.Pos, obj types.Object) bool {
	found := false
	ast.Inspect(scope, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < pos || len(call.Args) == 0 {
			return true
		}
		pkgPath, name := calledPackageFunc(info, call)
		base := pathBase(pkgPath)
		if fns, ok := sortFuncs[base]; !ok || !fns[name] {
			return true
		}
		if id, ok := call.Args[0].(*ast.Ident); ok && info.ObjectOf(id) == obj {
			found = true
		}
		return true
	})
	return found
}

func isBuiltin(info *types.Info, call *ast.CallExpr, name string) bool {
	got, ok := builtinName(info, call)
	return ok && got == name
}

func builtinName(info *types.Info, call *ast.CallExpr) (string, bool) {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return "", false
	}
	if b, ok := info.ObjectOf(id).(*types.Builtin); ok {
		return b.Name(), true
	}
	return "", false
}

func isConversion(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[call.Fun]
	return ok && tv.IsType()
}

func calleeName(call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		if id, ok := fun.X.(*ast.Ident); ok {
			return id.Name + "." + fun.Sel.Name
		}
		return fun.Sel.Name
	default:
		return "a function value"
	}
}
