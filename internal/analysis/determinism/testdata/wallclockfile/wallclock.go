//bbvet:wallclock fixture: this whole file is wall-clock by nature

// Package transport is a determinism fixture type-checked as
// bbcast/internal/transport: inside internal/ (so the wall-clock ban would
// apply) but allowlisted by the file-header annotation, and outside
// DetPackages (so map iteration is not checked).
package transport

import (
	"math/rand"
	"time"
)

func uptime(start time.Time) time.Duration {
	return time.Since(start) // exempt: file-level //bbvet:wallclock
}

func jitter() time.Duration {
	return time.Duration(rand.Int63n(1000)) // exempt with the rest of the file
}

func emits(m map[int]int, sink func(int)) {
	for k := range m { // not in DetPackages: the map-range rule does not apply
		sink(k)
	}
}
