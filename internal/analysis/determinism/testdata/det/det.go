// Package sim is a determinism fixture: the test type-checks it under the
// import path bbcast/internal/sim, so both the internal/ wall-clock ban and
// the DetPackages map-iteration rules apply.
package sim

import (
	"math/rand"
	"sort"
	"time"
)

func wallClock() time.Duration {
	now := time.Now()      // want `time\.Now is wall clock`
	return time.Since(now) // want `time\.Since is wall clock`
}

func timers(fn func()) {
	time.Sleep(time.Millisecond)            // want `time\.Sleep is wall clock`
	time.AfterFunc(time.Millisecond, fn)    // want `time\.AfterFunc is wall clock`
	_ = time.Millisecond * time.Duration(3) // duration arithmetic is fine
}

func annotatedWallClock() int64 {
	//bbvet:wallclock fixture: this one line measures real time on purpose
	return time.Now().UnixNano()
}

func globalRand() int {
	return rand.Intn(10) // want `global rand\.Intn is process-shared`
}

func globalShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want `global rand\.Shuffle is process-shared`
}

func seededRand(r *rand.Rand) int {
	return r.Intn(10) // an injected source is exactly how determinism is done
}

func constructorLegal() *rand.Rand {
	return rand.New(rand.NewSource(1))
}

func emits(m map[int]int, sink func(int)) {
	for k := range m { // want `range over map has order-dependent effects \(calls sink`
		sink(k)
	}
}

func sortedAfterLoop(m map[int]int) []int {
	var keys []int
	for k := range m { // collected then sorted below: order cannot leak
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

func neverSorted(m map[int]int) []int {
	var keys []int
	for k := range m { // want `appends to keys, never sorted in this function`
		keys = append(keys, k)
	}
	return keys
}

func annotatedUnordered(m map[int]int, sink func(int)) {
	//bbvet:unordered fixture: sink is order-insensitive by contract
	for k := range m {
		sink(k)
	}
}

func pureFold(m map[int]int) int {
	total := 0
	for _, v := range m { // commutative fold, no calls: nothing to flag
		total += v
	}
	return total
}

func purge(m map[int]int) {
	for k := range m { // delete reaches the same final state in any order
		delete(m, k)
	}
}

func channelSend(m map[int]int, ch chan int) {
	for k := range m { // want `sends on a channel`
		ch <- k
	}
}

func closureScope(m map[int]int) func() []int {
	keys := make([]int, 0, len(m))
	return func() []int {
		for k := range m { // want `appends to keys, never sorted in this function`
			keys = append(keys, k)
		}
		return keys
	}
}

//bbvet:frobnicate trying to invent an escape hatch // want `unknown annotation //bbvet:frobnicate`
