// Package main is a determinism fixture type-checked as bbcast/cmd/fixture:
// outside internal/, so wall clock and global rand are free — but the
// annotation grammar is still validated everywhere.
package main

import "time"

func main() {
	_ = time.Now() // tools may read the wall clock
}

//bbvet:frobnicate annotations are validated even out of scope // want `unknown annotation //bbvet:frobnicate`
