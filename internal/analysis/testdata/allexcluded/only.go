//go:build neverbuildme

package allexcluded
