// Package taggedfixture is loader test data: this file is live, excluded.go
// is behind an undefined build tag and redeclares Live — so if the loader
// ever stops filtering build constraints, type-checking fails loudly.
package taggedfixture

const Live = 1
