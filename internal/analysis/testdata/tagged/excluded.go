//go:build neverbuildme

package taggedfixture

const Live = 2
