// Package badfixture imports a path the go tool cannot resolve, so the
// loader's export-data error message is exercised.
package badfixture

import _ "example.invalid/nope"
