// Package user imports the tagged fixture under a shadowed real import path
// (see load_test.go).
package user

import wire "bbcast/internal/wire"

const Two = wire.Live + 1
