package faultplan

import (
	"encoding/json"
	"math/rand"
	"reflect"
	"sort"
	"strings"
	"testing"
	"time"

	"bbcast/internal/wire"
)

func samplePlan() *Plan {
	return &Plan{
		Events: []Event{
			{At: 10 * time.Second, Kind: Crash, Node: 3},
			{At: 20 * time.Second, Kind: Recover, Node: 3},
			{At: 30 * time.Second, Kind: Partition, Groups: [][]wire.NodeID{{0, 1, 2}, {3, 4}}},
			{At: 40 * time.Second, Kind: Heal},
			{At: 45 * time.Second, Kind: DegradeRadio, LossFactor: 0.3, Duration: 5 * time.Second},
			{At: 50 * time.Second, Kind: SwapBehavior, Node: 2, Behavior: "mute"},
			{At: 52 * time.Second, Kind: BurstLoss, LossFactor: 0.9,
				MeanBad: 200 * time.Millisecond, MeanGood: 800 * time.Millisecond, Duration: 10 * time.Second},
			{At: 54 * time.Second, Kind: Jitter, MaxJitter: 20 * time.Millisecond, Duration: 8 * time.Second},
			{At: 56 * time.Second, Kind: Duplicate, DupProb: 0.15, Duration: 6 * time.Second},
			{At: 58 * time.Second, Kind: AsymDegrade, LossFactor: 0.5, Duration: 4 * time.Second},
		},
		Churn: &Churn{Rate: 0.5, Start: 15 * time.Second, End: 60 * time.Second,
			Downtime: 8 * time.Second, Exclude: []wire.NodeID{0}},
	}
}

func TestJSONRoundTrip(t *testing.T) {
	p := samplePlan()
	data, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p, back) {
		t.Fatalf("round trip mismatch:\n  in  %+v\n  out %+v", p, back)
	}
	// Durations must encode as human-readable strings.
	if !strings.Contains(string(data), `"at":"10s"`) {
		t.Fatalf("expected duration strings in %s", data)
	}
}

func TestParseHumanReadable(t *testing.T) {
	p, err := Parse([]byte(`{
		"events": [
			{"at": "30s", "kind": "crash", "node": 7},
			{"at": "1m10s", "kind": "recover", "node": 7},
			{"at": "40s", "kind": "partition", "groups": [[0,1],[2,3]]},
			{"at": "55s", "kind": "degrade-radio", "lossFactor": 0.4, "duration": "10s"}
		],
		"churn": {"rate": 0.25, "start": "10s", "end": "50s"}
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Events) != 4 {
		t.Fatalf("got %d events", len(p.Events))
	}
	hostile, err := Parse([]byte(`{
		"events": [
			{"at": "5s", "kind": "burst-loss", "lossFactor": 0.8, "meanBad": "150ms", "meanGood": "600ms", "duration": "20s"},
			{"at": "6s", "kind": "jitter", "maxJitter": "15ms", "duration": "10s"},
			{"at": "7s", "kind": "duplicate", "dupProb": 0.2, "duration": "10s"},
			{"at": "8s", "kind": "asym-degrade", "lossFactor": 0.4, "duration": "10s"}
		]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if err := hostile.Validate(8); err != nil {
		t.Fatalf("valid hostile-links plan rejected: %v", err)
	}
	if got := hostile.Events[0].MeanBad; got != 150*time.Millisecond {
		t.Fatalf("meanBad parsed as %s", got)
	}
	if got := hostile.Events[1].MaxJitter; got != 15*time.Millisecond {
		t.Fatalf("maxJitter parsed as %s", got)
	}
	if p.Events[1].At != 70*time.Second {
		t.Fatalf("1m10s parsed as %s", p.Events[1].At)
	}
	if p.Churn == nil || p.Churn.Rate != 0.25 {
		t.Fatalf("churn not parsed: %+v", p.Churn)
	}
	if err := p.Validate(8); err != nil {
		t.Fatalf("valid plan rejected: %v", err)
	}
}

func TestParseRejects(t *testing.T) {
	cases := map[string]string{
		"unknown field":   `{"events": [], "bogus": 1}`,
		"missing at":      `{"events": [{"kind": "crash", "node": 1}]}`,
		"missing node":    `{"events": [{"at": "5s", "kind": "crash"}]}`,
		"negative at":     `{"events": [{"at": "-5s", "kind": "heal"}]}`,
		"bad duration":    `{"events": [{"at": "five", "kind": "heal"}]}`,
		"churn bad start": `{"churn": {"rate": 1, "start": "x", "end": "10s"}}`,
	}
	for name, in := range cases {
		if _, err := Parse([]byte(in)); err == nil {
			t.Errorf("%s: accepted %s", name, in)
		}
	}
}

func TestValidateRejects(t *testing.T) {
	cases := map[string]Plan{
		"node out of range": {Events: []Event{{At: 1, Kind: Crash, Node: 10}}},
		"empty partition":   {Events: []Event{{At: 1, Kind: Partition}}},
		"node in two groups": {Events: []Event{{At: 1, Kind: Partition,
			Groups: [][]wire.NodeID{{0, 1}, {1, 2}}}}},
		"partition node range": {Events: []Event{{At: 1, Kind: Partition,
			Groups: [][]wire.NodeID{{0, 12}}}}},
		"loss factor too big": {Events: []Event{{At: 1, Kind: DegradeRadio,
			LossFactor: 1.5, Duration: time.Second}}},
		"degrade no duration": {Events: []Event{{At: 1, Kind: DegradeRadio,
			LossFactor: 0.5}}},
		"unknown behaviour": {Events: []Event{{At: 1, Kind: SwapBehavior,
			Node: 1, Behavior: "weird"}}},
		"burst loss zero": {Events: []Event{{At: 1, Kind: BurstLoss,
			MeanBad: time.Second, MeanGood: time.Second, Duration: time.Second}}},
		"burst loss too big": {Events: []Event{{At: 1, Kind: BurstLoss, LossFactor: 1.5,
			MeanBad: time.Second, MeanGood: time.Second, Duration: time.Second}}},
		"burst no dwell": {Events: []Event{{At: 1, Kind: BurstLoss, LossFactor: 0.5,
			MeanGood: time.Second, Duration: time.Second}}},
		"burst no duration": {Events: []Event{{At: 1, Kind: BurstLoss, LossFactor: 0.5,
			MeanBad: time.Second, MeanGood: time.Second}}},
		"jitter zero bound": {Events: []Event{{At: 1, Kind: Jitter, Duration: time.Second}}},
		"jitter no duration": {Events: []Event{{At: 1, Kind: Jitter,
			MaxJitter: 10 * time.Millisecond}}},
		"dup prob zero": {Events: []Event{{At: 1, Kind: Duplicate, Duration: time.Second}}},
		"dup prob one": {Events: []Event{{At: 1, Kind: Duplicate, DupProb: 1,
			Duration: time.Second}}},
		"dup no duration": {Events: []Event{{At: 1, Kind: Duplicate, DupProb: 0.5}}},
		"asym severity big": {Events: []Event{{At: 1, Kind: AsymDegrade, LossFactor: 1,
			Duration: time.Second}}},
		"asym no duration": {Events: []Event{{At: 1, Kind: AsymDegrade, LossFactor: 0.5}}},
		"unknown kind":     {Events: []Event{{At: 1, Kind: "melt"}}},
		"churn zero rate":  {Churn: &Churn{Start: 0, End: time.Second}},
		"churn empty":      {Churn: &Churn{Rate: 1, Start: 5 * time.Second, End: 5 * time.Second}},
		"churn excl range": {Churn: &Churn{Rate: 1, End: time.Second, Exclude: []wire.NodeID{10}}},
	}
	for name, p := range cases {
		p := p
		if err := p.Validate(10); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	ok := samplePlan()
	if err := ok.Validate(10); err != nil {
		t.Fatalf("valid plan rejected: %v", err)
	}
}

func TestChurnExpandDeterministic(t *testing.T) {
	c := Churn{Rate: 0.5, Start: 10 * time.Second, End: 120 * time.Second,
		Downtime: 12 * time.Second, Exclude: []wire.NodeID{0, 1}}
	a := c.Expand(rand.New(rand.NewSource(7)), 40)
	b := c.Expand(rand.New(rand.NewSource(7)), 40)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different schedules")
	}
	if len(a) == 0 || len(a)%2 != 0 {
		t.Fatalf("expected crash/recover pairs, got %d events", len(a))
	}
	other := c.Expand(rand.New(rand.NewSource(8)), 40)
	if reflect.DeepEqual(a, other) {
		t.Fatal("different seeds produced identical schedules")
	}
}

func TestChurnExpandRespectsConstraints(t *testing.T) {
	c := Churn{Rate: 1, Start: 0, End: 200 * time.Second,
		Downtime: 10 * time.Second, Exclude: []wire.NodeID{2}}
	events := c.Expand(rand.New(rand.NewSource(3)), 6)
	down := map[wire.NodeID]time.Duration{}
	for _, e := range events {
		switch e.Kind {
		case Crash:
			if e.Node == 2 {
				t.Fatal("excluded node crashed")
			}
			if until, ok := down[e.Node]; ok && e.At < until {
				t.Fatalf("node %d crashed at %s while still down until %s", e.Node, e.At, until)
			}
			down[e.Node] = e.At + 10*time.Second
		case Recover:
			if e.At != down[e.Node] {
				t.Fatalf("node %d recovers at %s, want %s", e.Node, e.At, down[e.Node])
			}
		default:
			t.Fatalf("unexpected kind %s", e.Kind)
		}
	}
}

func TestExpandedSorted(t *testing.T) {
	p := samplePlan()
	events := p.Expanded(rand.New(rand.NewSource(1)), 10)
	if len(events) <= len(p.Events) {
		t.Fatalf("churn not expanded: %d events", len(events))
	}
	if !sort.SliceIsSorted(events, func(i, j int) bool { return events[i].At < events[j].At }) {
		t.Fatal("expanded schedule not sorted by time")
	}
}

func TestSwapTargets(t *testing.T) {
	p := &Plan{Events: []Event{
		{At: 1, Kind: SwapBehavior, Node: 5, Behavior: "mute"},
		{At: 2, Kind: SwapBehavior, Node: 3, Behavior: "tamper"},
		{At: 3, Kind: SwapBehavior, Node: 5, Behavior: "correct"},
		{At: 4, Kind: SwapBehavior, Node: 7, Behavior: "correct"},
	}}
	got := p.SwapTargets()
	want := []wire.NodeID{3, 5}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("SwapTargets = %v, want %v", got, want)
	}
}

func TestPlanStringIsCompactJSON(t *testing.T) {
	p := samplePlan()
	s := p.String()
	if strings.ContainsAny(s, "\n\t") {
		t.Fatalf("not compact: %q", s)
	}
	back, err := Parse([]byte(s))
	if err != nil {
		t.Fatalf("String output does not re-parse: %v", err)
	}
	if !reflect.DeepEqual(p, back) {
		t.Fatal("String round trip mismatch")
	}
}

func TestEventNames(t *testing.T) {
	cases := map[string]Event{
		"crash(3)":               {Kind: Crash, Node: 3},
		"recover(3)":             {Kind: Recover, Node: 3},
		"partition(2 groups)":    {Kind: Partition, Groups: [][]wire.NodeID{{0}, {1}}},
		"heal":                   {Kind: Heal},
		"degrade-radio(0.30,5s)": {Kind: DegradeRadio, LossFactor: 0.3, Duration: 5 * time.Second},
		"swap(2→mute)":           {Kind: SwapBehavior, Node: 2, Behavior: "mute"},
		"burst-loss(0.90,200ms/800ms,10s)": {Kind: BurstLoss, LossFactor: 0.9,
			MeanBad: 200 * time.Millisecond, MeanGood: 800 * time.Millisecond, Duration: 10 * time.Second},
		"jitter(20ms,8s)":       {Kind: Jitter, MaxJitter: 20 * time.Millisecond, Duration: 8 * time.Second},
		"duplicate(0.15,6s)":    {Kind: Duplicate, DupProb: 0.15, Duration: 6 * time.Second},
		"asym-degrade(0.50,4s)": {Kind: AsymDegrade, LossFactor: 0.5, Duration: 4 * time.Second},
	}
	for want, e := range cases {
		if got := e.Name(); got != want {
			t.Errorf("Name() = %q, want %q", got, want)
		}
	}
}

func TestCrashAmnesiaJSONRoundTrip(t *testing.T) {
	p := &Plan{
		Events: []Event{
			{At: 10 * time.Second, Kind: CrashAmnesia, Node: 4},
			{At: 20 * time.Second, Kind: Recover, Node: 4},
		},
		Churn: &Churn{Rate: 0.5, Start: 5 * time.Second, End: 30 * time.Second,
			Downtime: 8 * time.Second, Wipe: true},
	}
	data, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p, back) {
		t.Fatalf("round trip mismatch:\n  in  %+v\n  out %+v", p, back)
	}
	if !strings.Contains(string(data), `"wipe":true`) {
		t.Fatalf("wipe flag not encoded: %s", data)
	}
	// A crash-amnesia event without a node must be rejected like crash.
	if _, err := Parse([]byte(`{"events": [{"at": "1s", "kind": "crash-amnesia"}]}`)); err == nil {
		t.Fatal("crash-amnesia without node accepted")
	}
}

func TestChurnValidateNamedFieldErrors(t *testing.T) {
	cases := map[string]struct {
		churn Churn
		want  string
	}{
		"negative rate": {Churn{Rate: -2, End: time.Second}, "churn.rate:"},
		"zero rate":     {Churn{End: time.Second}, "churn.rate:"},
		"end at start":  {Churn{Rate: 1, Start: 5 * time.Second, End: 5 * time.Second}, "churn.end:"},
		"end before start": {Churn{Rate: 1, Start: 5 * time.Second,
			End: 2 * time.Second}, "churn.end:"},
		"negative downtime": {Churn{Rate: 1, End: time.Second,
			Downtime: -time.Second}, "churn.downtime:"},
		"exclude range": {Churn{Rate: 1, End: time.Second,
			Exclude: []wire.NodeID{99}}, "churn.exclude[0]:"},
	}
	for name, tc := range cases {
		p := &Plan{Churn: &tc.churn}
		err := p.Validate(10)
		if err == nil {
			t.Errorf("%s: accepted", name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not name field %q", name, err, tc.want)
		}
	}
}

func TestChurnExpandWipe(t *testing.T) {
	c := Churn{Rate: 1, Start: 0, End: 60 * time.Second, Downtime: 5 * time.Second, Wipe: true}
	events := c.Expand(rand.New(rand.NewSource(9)), 8)
	if len(events) == 0 {
		t.Fatal("no events expanded")
	}
	for _, e := range events {
		switch e.Kind {
		case CrashAmnesia, Recover:
		default:
			t.Fatalf("wipe churn produced %s, want only crash-amnesia/recover", e.Kind)
		}
	}
}

// TestChurnRecoverAtWindowBoundary pins the boundary semantics of the churn
// window: crashes fire strictly inside [Start, End), but a recover may land
// at or past End — a node that goes down near the window's edge must still
// come back, or later workload would run against a permanently shrunken
// network. Regression for the recover-exactly-at-End case.
func TestChurnRecoverAtWindowBoundary(t *testing.T) {
	c := Churn{Rate: 2, Start: 0, End: 20 * time.Second, Downtime: 10 * time.Second}
	sawLateRecover := false
	for seed := int64(0); seed < 10; seed++ {
		events := c.Expand(rand.New(rand.NewSource(seed)), 12)
		downAt := make(map[wire.NodeID]time.Duration)
		for _, e := range events {
			switch e.Kind {
			case Crash:
				if e.At >= c.End {
					t.Fatalf("crash at %s outside window [%s,%s)", e.At, c.Start, c.End)
				}
				downAt[e.Node] = e.At
			case Recover:
				crashAt, ok := downAt[e.Node]
				if !ok {
					t.Fatalf("recover(%d) without crash", e.Node)
				}
				if e.At != crashAt+c.Downtime {
					t.Fatalf("recover(%d) at %s, want %s", e.Node, e.At, crashAt+c.Downtime)
				}
				if e.At >= c.End {
					sawLateRecover = true
				}
				delete(downAt, e.Node)
			}
		}
		if len(downAt) != 0 {
			t.Fatalf("seed %d: %d crashes never recovered", seed, len(downAt))
		}
	}
	if !sawLateRecover {
		t.Fatal("no recover landed at/after the window end across 10 seeds; boundary untested")
	}
}
