// Package faultplan defines declarative, deterministic fault schedules for
// the simulator — the chaos-engineering layer of the harness.
//
// A Plan is a list of timed events (crash, recover, partition, heal, radio
// degradation, behaviour swap) plus an optional Churn generator that expands
// into crash/recover pairs from a seeded random stream. Plans encode to JSON
// (durations as Go duration strings, e.g. "30s") so they can be stored next
// to experiments and passed to `bbsim -faults plan.json`. The runner
// schedules each event as a named sim.Engine epoch; anything observing the
// run (invariant checker, tracer, result event log) sees the same timeline.
//
// The paper's evaluation (§4) only installs adversaries at t=0; fault plans
// exercise the axis it leaves untested — churn, partitions and mid-run
// degradation — against which the recovery machinery (signature gossip plus
// the MUTE/VERBOSE detectors) is supposed to hold up.
package faultplan

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"time"

	"bbcast/internal/wire"
)

// Kind discriminates fault events.
type Kind string

// Event kinds.
const (
	// Crash takes Node's radio off the air.
	Crash Kind = "crash"
	// CrashAmnesia takes Node's radio off the air AND marks the crash as
	// amnesiac: when the node later Recovers, its volatile protocol state
	// (store, neighbours, detectors, sequence counter) is wiped and
	// re-initialized, restoring only whatever its durable store remembers.
	CrashAmnesia Kind = "crash-amnesia"
	// Recover puts Node's radio back on the air.
	Recover Kind = "recover"
	// Partition splits the network into Groups; frames cross only within a
	// group. Nodes not named in any group form one implicit extra group.
	Partition Kind = "partition"
	// Heal removes the current partition.
	Heal Kind = "heal"
	// DegradeRadio adds LossFactor per-reception loss for Duration.
	// Overlapping windows stack (independent drop chances).
	DegradeRadio Kind = "degrade-radio"
	// SwapBehavior replaces Node's behaviour with Behavior (byzantine.Make
	// vocabulary: correct, mute, mute-silent, verbose, tamper,
	// selective-drop, equivocate).
	SwapBehavior Kind = "swap-behavior"
	// BurstLoss installs a per-link Gilbert–Elliott bursty-loss model for
	// Duration: links flip between a good state and a bad state (mean dwell
	// times MeanGood/MeanBad); receptions in the bad state drop with
	// probability LossFactor.
	BurstLoss Kind = "burst-loss"
	// Jitter defers each delivery by a uniform draw in [0,MaxJitter) for
	// Duration.
	Jitter Kind = "jitter"
	// Duplicate delivers each successful reception twice with probability
	// DupProb, for Duration.
	Duplicate Kind = "duplicate"
	// AsymDegrade degrades each ordered link by a static, direction-dependent
	// extra loss up to LossFactor (severity), for Duration.
	AsymDegrade Kind = "asym-degrade"
)

// Event is one scheduled fault.
type Event struct {
	// At is the virtual time the event fires.
	At time.Duration
	// Kind selects the fault.
	Kind Kind
	// Node is the subject of crash, recover and swap-behavior events.
	Node wire.NodeID
	// Groups are the partition groups for partition events.
	Groups [][]wire.NodeID
	// LossFactor is the additional loss probability for degrade-radio, the
	// bad-state loss probability for burst-loss, and the severity for
	// asym-degrade.
	LossFactor float64
	// Duration is how long a windowed event (degrade-radio, burst-loss,
	// jitter, duplicate, asym-degrade) lasts.
	Duration time.Duration
	// Behavior names the new behaviour for swap-behavior events.
	Behavior string
	// MeanBad and MeanGood are the Gilbert–Elliott dwell times for
	// burst-loss events.
	MeanBad, MeanGood time.Duration
	// MaxJitter is the delivery-latency bound for jitter events.
	MaxJitter time.Duration
	// DupProb is the duplication probability for duplicate events.
	DupProb float64
}

// Name renders a short identifier for the event, used as its epoch name,
// trace detail and result event-log entry.
func (e Event) Name() string {
	switch e.Kind {
	case Crash, CrashAmnesia, Recover:
		return fmt.Sprintf("%s(%d)", e.Kind, e.Node)
	case Partition:
		return fmt.Sprintf("partition(%d groups)", len(e.Groups))
	case Heal:
		return "heal"
	case DegradeRadio:
		return fmt.Sprintf("degrade-radio(%.2f,%s)", e.LossFactor, e.Duration)
	case SwapBehavior:
		return fmt.Sprintf("swap(%d→%s)", e.Node, e.Behavior)
	case BurstLoss:
		return fmt.Sprintf("burst-loss(%.2f,%s/%s,%s)", e.LossFactor, e.MeanBad, e.MeanGood, e.Duration)
	case Jitter:
		return fmt.Sprintf("jitter(%s,%s)", e.MaxJitter, e.Duration)
	case Duplicate:
		return fmt.Sprintf("duplicate(%.2f,%s)", e.DupProb, e.Duration)
	case AsymDegrade:
		return fmt.Sprintf("asym-degrade(%.2f,%s)", e.LossFactor, e.Duration)
	default:
		return string(e.Kind)
	}
}

// eventJSON is the wire form: durations as strings, node optional so that
// "node": 0 and a missing node are distinguishable during validation.
type eventJSON struct {
	At         string          `json:"at"`
	Kind       Kind            `json:"kind"`
	Node       *wire.NodeID    `json:"node,omitempty"`
	Groups     [][]wire.NodeID `json:"groups,omitempty"`
	LossFactor float64         `json:"lossFactor,omitempty"`
	Duration   string          `json:"duration,omitempty"`
	Behavior   string          `json:"behavior,omitempty"`
	MeanBad    string          `json:"meanBad,omitempty"`
	MeanGood   string          `json:"meanGood,omitempty"`
	MaxJitter  string          `json:"maxJitter,omitempty"`
	DupProb    float64         `json:"dupProb,omitempty"`
}

// MarshalJSON implements json.Marshaler.
func (e Event) MarshalJSON() ([]byte, error) {
	j := eventJSON{At: e.At.String(), Kind: e.Kind, Groups: e.Groups,
		LossFactor: e.LossFactor, Behavior: e.Behavior, DupProb: e.DupProb}
	switch e.Kind {
	case Crash, CrashAmnesia, Recover, SwapBehavior:
		node := e.Node
		j.Node = &node
	}
	if e.Duration > 0 {
		j.Duration = e.Duration.String()
	}
	if e.MeanBad > 0 {
		j.MeanBad = e.MeanBad.String()
	}
	if e.MeanGood > 0 {
		j.MeanGood = e.MeanGood.String()
	}
	if e.MaxJitter > 0 {
		j.MaxJitter = e.MaxJitter.String()
	}
	return json.Marshal(j)
}

// UnmarshalJSON implements json.Unmarshaler. Durations accept Go duration
// strings ("30s", "1m30s").
func (e *Event) UnmarshalJSON(data []byte) error {
	var j eventJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return err
	}
	at, err := parseDuration(j.At, "at")
	if err != nil {
		return err
	}
	var dur, meanBad, meanGood, maxJitter time.Duration
	if j.Duration != "" {
		if dur, err = parseDuration(j.Duration, "duration"); err != nil {
			return err
		}
	}
	if j.MeanBad != "" {
		if meanBad, err = parseDuration(j.MeanBad, "meanBad"); err != nil {
			return err
		}
	}
	if j.MeanGood != "" {
		if meanGood, err = parseDuration(j.MeanGood, "meanGood"); err != nil {
			return err
		}
	}
	if j.MaxJitter != "" {
		if maxJitter, err = parseDuration(j.MaxJitter, "maxJitter"); err != nil {
			return err
		}
	}
	*e = Event{At: at, Kind: j.Kind, Groups: j.Groups,
		LossFactor: j.LossFactor, Duration: dur, Behavior: j.Behavior,
		MeanBad: meanBad, MeanGood: meanGood, MaxJitter: maxJitter, DupProb: j.DupProb}
	switch j.Kind {
	case Crash, CrashAmnesia, Recover, SwapBehavior:
		if j.Node == nil {
			return fmt.Errorf("faultplan: %s event needs a node", j.Kind)
		}
		e.Node = *j.Node
	}
	return nil
}

func parseDuration(s, field string) (time.Duration, error) {
	if s == "" {
		return 0, fmt.Errorf("faultplan: missing %q", field)
	}
	d, err := time.ParseDuration(s)
	if err != nil {
		return 0, fmt.Errorf("faultplan: bad %q: %w", field, err)
	}
	if d < 0 {
		return 0, fmt.Errorf("faultplan: negative %q", field)
	}
	return d, nil
}

// Churn generates crash/recover pairs as a Poisson process over a window.
// Expansion is deterministic in the random stream it is given, so the same
// engine seed always yields the same churn schedule.
type Churn struct {
	// Rate is the expected number of crash events per second, network-wide.
	Rate float64
	// Start and End bound the window in which crashes are injected.
	Start, End time.Duration
	// Downtime is how long each churned node stays down (default 10s).
	Downtime time.Duration
	// Wipe makes every generated crash amnesiac (CrashAmnesia instead of
	// Crash): recovering nodes restart from empty volatile state plus
	// whatever their durable store holds.
	Wipe bool
	// Exclude lists nodes the generator must not touch (e.g. the source of
	// a measurement-critical flow).
	Exclude []wire.NodeID
}

// churnJSON is the wire form of Churn.
type churnJSON struct {
	Rate     float64       `json:"rate"`
	Start    string        `json:"start"`
	End      string        `json:"end"`
	Downtime string        `json:"downtime,omitempty"`
	Wipe     bool          `json:"wipe,omitempty"`
	Exclude  []wire.NodeID `json:"exclude,omitempty"`
}

// MarshalJSON implements json.Marshaler.
func (c Churn) MarshalJSON() ([]byte, error) {
	j := churnJSON{Rate: c.Rate, Start: c.Start.String(), End: c.End.String(), Wipe: c.Wipe, Exclude: c.Exclude}
	if c.Downtime > 0 {
		j.Downtime = c.Downtime.String()
	}
	return json.Marshal(j)
}

// UnmarshalJSON implements json.Unmarshaler.
func (c *Churn) UnmarshalJSON(data []byte) error {
	var j churnJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return err
	}
	start, err := parseDuration(j.Start, "start")
	if err != nil {
		return err
	}
	end, err := parseDuration(j.End, "end")
	if err != nil {
		return err
	}
	var down time.Duration
	if j.Downtime != "" {
		if down, err = parseDuration(j.Downtime, "downtime"); err != nil {
			return err
		}
	}
	*c = Churn{Rate: j.Rate, Start: start, End: end, Downtime: down, Wipe: j.Wipe, Exclude: j.Exclude}
	return nil
}

// Expand realizes the churn process into crash/recover event pairs for a
// network of n nodes, drawing from rng. Nodes currently down (from an
// earlier pair) are not crashed again until they recover.
func (c Churn) Expand(rng *rand.Rand, n int) []Event {
	if c.Rate <= 0 || c.End <= c.Start || n == 0 {
		return nil
	}
	down := c.Downtime
	if down <= 0 {
		down = 10 * time.Second
	}
	excluded := make(map[wire.NodeID]bool, len(c.Exclude))
	for _, id := range c.Exclude {
		excluded[id] = true
	}
	crashKind := Crash
	if c.Wipe {
		crashKind = CrashAmnesia
	}
	var out []Event
	upAgain := make(map[wire.NodeID]time.Duration)
	mean := float64(time.Second) / c.Rate
	for t := c.Start; ; {
		t += time.Duration(rng.ExpFloat64() * mean)
		if t >= c.End {
			break
		}
		// Draw a victim that is eligible and currently up; give up after a
		// few tries so a tiny network cannot loop forever.
		for try := 0; try < 8; try++ {
			id := wire.NodeID(rng.Intn(n))
			if excluded[id] || upAgain[id] > t {
				continue
			}
			upAgain[id] = t + down
			out = append(out, Event{At: t, Kind: crashKind, Node: id})
			out = append(out, Event{At: t + down, Kind: Recover, Node: id})
			break
		}
	}
	return out
}

// Plan is a complete fault schedule.
type Plan struct {
	// Events are the explicitly scheduled faults.
	Events []Event `json:"events,omitempty"`
	// Churn, if non-nil, is expanded into additional crash/recover pairs.
	Churn *Churn `json:"churn,omitempty"`
}

// Parse decodes a JSON plan and validates its shape (node ranges are checked
// later, by Validate, once the network size is known).
func Parse(data []byte) (*Plan, error) {
	var p Plan
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&p); err != nil {
		return nil, fmt.Errorf("faultplan: parse: %w", err)
	}
	return &p, nil
}

// Load reads and parses a plan file.
func Load(path string) (*Plan, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("faultplan: %w", err)
	}
	return Parse(data)
}

// String renders the plan as compact JSON (for repro command lines).
func (p *Plan) String() string {
	data, err := json.Marshal(p)
	if err != nil {
		return "{}"
	}
	return string(data)
}

// Validate checks the plan against a network of n nodes.
func (p *Plan) Validate(n int) error {
	for i, e := range p.Events {
		switch e.Kind {
		case Crash, CrashAmnesia, Recover, SwapBehavior:
			if int(e.Node) >= n {
				return fmt.Errorf("faultplan: event %d (%s): node %d out of range [0,%d)", i, e.Kind, e.Node, n)
			}
		case Partition:
			// One listed group suffices: nodes not named in any group form
			// an implicit extra group on the other side of the cut.
			if len(e.Groups) < 1 {
				return fmt.Errorf("faultplan: event %d: partition needs at least 1 group", i)
			}
			seen := make(map[wire.NodeID]bool)
			for _, g := range e.Groups {
				for _, id := range g {
					if int(id) >= n {
						return fmt.Errorf("faultplan: event %d: partition node %d out of range [0,%d)", i, id, n)
					}
					if seen[id] {
						return fmt.Errorf("faultplan: event %d: node %d in two partition groups", i, id)
					}
					seen[id] = true
				}
			}
		case Heal:
			// Always valid.
		case DegradeRadio:
			if e.LossFactor <= 0 || e.LossFactor >= 1 {
				return fmt.Errorf("faultplan: event %d: lossFactor %.3f outside (0,1)", i, e.LossFactor)
			}
			if e.Duration <= 0 {
				return fmt.Errorf("faultplan: event %d: degrade-radio needs a positive duration", i)
			}
		case BurstLoss:
			if e.LossFactor <= 0 || e.LossFactor > 1 {
				return fmt.Errorf("faultplan: event %d: burst-loss lossFactor %.3f outside (0,1]", i, e.LossFactor)
			}
			if e.MeanBad <= 0 || e.MeanGood <= 0 {
				return fmt.Errorf("faultplan: event %d: burst-loss needs positive meanBad and meanGood dwell times", i)
			}
			if e.Duration <= 0 {
				return fmt.Errorf("faultplan: event %d: burst-loss needs a positive duration", i)
			}
		case Jitter:
			if e.MaxJitter <= 0 {
				return fmt.Errorf("faultplan: event %d: jitter needs a positive maxJitter", i)
			}
			if e.Duration <= 0 {
				return fmt.Errorf("faultplan: event %d: jitter needs a positive duration", i)
			}
		case Duplicate:
			if e.DupProb <= 0 || e.DupProb >= 1 {
				return fmt.Errorf("faultplan: event %d: dupProb %.3f outside (0,1)", i, e.DupProb)
			}
			if e.Duration <= 0 {
				return fmt.Errorf("faultplan: event %d: duplicate needs a positive duration", i)
			}
		case AsymDegrade:
			if e.LossFactor <= 0 || e.LossFactor >= 1 {
				return fmt.Errorf("faultplan: event %d: asym-degrade severity %.3f outside (0,1)", i, e.LossFactor)
			}
			if e.Duration <= 0 {
				return fmt.Errorf("faultplan: event %d: asym-degrade needs a positive duration", i)
			}
		default:
			return fmt.Errorf("faultplan: event %d: unknown kind %q", i, e.Kind)
		}
		if e.Kind == SwapBehavior {
			if _, err := makeCheck(e.Behavior); err != nil {
				return fmt.Errorf("faultplan: event %d: %w", i, err)
			}
		}
	}
	if c := p.Churn; c != nil {
		if c.Rate <= 0 {
			return fmt.Errorf("faultplan: churn.rate: must be > 0, got %g", c.Rate)
		}
		if c.End <= c.Start {
			return fmt.Errorf("faultplan: churn.end: must be after start %s, got %s", c.Start, c.End)
		}
		if c.Downtime < 0 {
			return fmt.Errorf("faultplan: churn.downtime: must be >= 0, got %s", c.Downtime)
		}
		for i, id := range c.Exclude {
			if int(id) >= n {
				return fmt.Errorf("faultplan: churn.exclude[%d]: node %d out of range [0,%d)", i, id, n)
			}
		}
	}
	return nil
}

// knownBehaviors mirrors byzantine.Make's vocabulary; kept here as a plain
// set so faultplan does not depend on the byzantine package.
var knownBehaviors = map[string]bool{
	"correct": true, "mute": true, "mute-silent": true, "verbose": true,
	"tamper": true, "selective-drop": true, "equivocate": true,
	"flooder": true, "replayer": true, "forge-spammer": true,
}

func makeCheck(name string) (string, error) {
	if !knownBehaviors[name] {
		return "", fmt.Errorf("unknown behaviour %q", name)
	}
	return name, nil
}

// Expanded merges the explicit events with the churn expansion and returns
// the schedule sorted by time (stably: explicit events precede churn events
// at the same instant, preserving authoring order).
func (p *Plan) Expanded(rng *rand.Rand, n int) []Event {
	out := make([]Event, 0, len(p.Events))
	out = append(out, p.Events...)
	if p.Churn != nil {
		out = append(out, p.Churn.Expand(rng, n)...)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}

// SwapTargets returns the nodes the plan ever swaps to a faulty behaviour.
// The runner excludes them from the "correct" set conservatively, for both
// metrics and invariants.
func (p *Plan) SwapTargets() []wire.NodeID {
	seen := make(map[wire.NodeID]bool)
	var out []wire.NodeID
	for _, e := range p.Events {
		if e.Kind == SwapBehavior && e.Behavior != "correct" && !seen[e.Node] {
			seen[e.Node] = true
			out = append(out, e.Node)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
