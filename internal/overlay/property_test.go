package overlay

import (
	"flag"
	"math/rand"
	"testing"

	"bbcast/internal/fd"
	"bbcast/internal/geo"
)

// Repro flags: a failing property prints a command line naming the exact
// geometry; these flags replay it.
var (
	reproSeed = flag.Int64("overlay-seed", 0, "replay the overlay property suite on exactly this geometry seed")
	reproN    = flag.Int("overlay-n", 0, "node count to pair with -overlay-seed")
)

// tryUnitDisk is unitDisk without the testing.T coupling: it returns nil when
// no connected placement is found, so the shrinker can probe sizes freely.
func tryUnitDisk(n int, area, radius float64, seed int64) *graph {
	rng := rand.New(rand.NewSource(seed))
	for attempt := 0; attempt < 50; attempt++ {
		pts := make([]geo.Point, n)
		for i := range pts {
			pts[i] = geo.Point{X: rng.Float64() * area, Y: rng.Float64() * area}
		}
		g := newGraph(n)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if pts[i].Dist(pts[j]) <= radius {
					g.connect(i, j)
				}
			}
		}
		if graphConnected(g) {
			return g
		}
	}
	return nil
}

// stabilizeQuiet iterates Decide sweeps to a fixpoint, reporting failure
// instead of aborting the test (the shrinker treats non-convergence as a
// property violation too).
func stabilizeQuiet(g *graph, m Maintainer) bool {
	for sweep := 1; sweep <= 60; sweep++ {
		changed := false
		for i := g.n - 1; i >= 0; i-- {
			next := m.Decide(g.view(i))
			if next != g.roles[i] {
				g.roles[i] = next
				changed = true
			}
		}
		if !changed {
			return true
		}
	}
	return false
}

// misIndependent checks no two adjacent dominators exist (rule 1 of MIS+B).
func misIndependent(g *graph) bool {
	for i := 0; i < g.n; i++ {
		for j := i + 1; j < g.n; j++ {
			if g.adj[i][j] && g.roles[i] == Dominator && g.roles[j] == Dominator {
				return false
			}
		}
	}
	return true
}

// misMaximal checks the dominator set is a maximal independent set: every
// non-dominator has a trusted dominator neighbour (otherwise it could join
// the set without breaking independence).
func misMaximal(g *graph) bool {
	for i := 0; i < g.n; i++ {
		if g.roles[i] == Dominator {
			continue
		}
		ok := false
		for j := 0; j < g.n; j++ {
			if g.adj[i][j] && g.roles[j] == Dominator && g.levelOf(i, j) == fd.Trusted {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

// checkOverlayProps runs both maintainers on the (seed, n) geometry and
// returns the names of violated properties (nil if the geometry could not be
// generated — the caller skips it).
func checkOverlayProps(seed int64, n int) (violated []string, generated bool) {
	const area, radius = 800, 300
	for _, kind := range []Kind{CDS, MISB} {
		m := New(kind)
		g := tryUnitDisk(n, area, radius, seed)
		if g == nil {
			return nil, false
		}
		if !stabilizeQuiet(g, m) {
			violated = append(violated, m.Name()+"/converges")
			continue
		}
		if !g.dominated() {
			violated = append(violated, m.Name()+"/dominating")
		}
		if !g.activeConnected() {
			violated = append(violated, m.Name()+"/connected")
		}
		if kind == MISB {
			if !misIndependent(g) {
				violated = append(violated, "mis+b/independent")
			}
			if !misMaximal(g) {
				violated = append(violated, "mis+b/maximal")
			}
		}
	}
	return violated, true
}

// shrink looks for the smallest node count that still violates a property on
// the failing seed, so the printed repro is as small as possible.
func shrink(seed int64, fromN int) (int, []string) {
	bestN, bestViolated := fromN, []string(nil)
	for n := 5; n < fromN; n++ {
		violated, ok := checkOverlayProps(seed, n)
		if ok && len(violated) > 0 {
			bestN, bestViolated = n, violated
			break
		}
	}
	if bestViolated == nil {
		bestViolated, _ = checkOverlayProps(seed, fromN)
	}
	return bestN, bestViolated
}

// TestOverlayProperties fuzzes both maintainers over seeded random
// unit-disk geometries of varying size and checks the paper's structural
// guarantees: the active set dominates the graph and is connected, and the
// MIS+B dominators form a maximal independent set. On failure it shrinks to
// the smallest failing size and prints a one-line repro:
//
//	go test ./internal/overlay/ -run TestOverlayProperties -overlay-seed <s> -overlay-n <n>
func TestOverlayProperties(t *testing.T) {
	type job struct {
		seed int64
		n    int
	}
	var jobs []job
	if *reproSeed != 0 {
		n := *reproN
		if n == 0 {
			n = 25
		}
		jobs = []job{{seed: *reproSeed, n: n}}
	} else {
		// Deterministic sweep: a fixed family of seeds across sizes, so CI
		// failures always replay.
		for seed := int64(1); seed <= 12; seed++ {
			for _, n := range []int{10, 20, 35} {
				jobs = append(jobs, job{seed: seed*7919 + int64(n), n: n})
			}
		}
	}
	skipped := 0
	for _, j := range jobs {
		violated, ok := checkOverlayProps(j.seed, j.n)
		if !ok {
			skipped++
			continue
		}
		if len(violated) == 0 {
			continue
		}
		minN, minViolated := shrink(j.seed, j.n)
		t.Errorf("properties %v violated at seed=%d n=%d (shrunk to n=%d, %v)\nreproduce with:\n  go test ./internal/overlay/ -run TestOverlayProperties -overlay-seed %d -overlay-n %d",
			violated, j.seed, j.n, minN, minViolated, j.seed, minN)
	}
	if skipped == len(jobs) && len(jobs) > 0 {
		t.Fatal("no geometry could be generated — generator parameters are off")
	}
	if skipped > 0 {
		t.Logf("skipped %d/%d disconnected geometries", skipped, len(jobs))
	}
}

// TestOverlayPropertiesUnderDistrust repeats the structural checks with a
// random minority of nodes globally distrusted (as a working failure detector
// would mark Byzantine nodes). The paper's guarantee covers correct nodes
// only — a node every peer has marked Byzantine is promised nothing — so
// domination is asserted for the non-distrusted nodes: each must be active or
// have a trusted active neighbour.
func TestOverlayPropertiesUnderDistrust(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		const n = 25
		for _, kind := range []Kind{CDS, MISB} {
			m := New(kind)
			g := tryUnitDisk(n, 800, 300, seed)
			if g == nil {
				continue
			}
			// Distrust a deterministic minority, everywhere.
			rng := rand.New(rand.NewSource(seed * 31))
			bad := make([]bool, n)
			for k := 0; k < n/6; k++ {
				b := rng.Intn(n)
				bad[b] = true
				for i := 0; i < n; i++ {
					if i != b {
						g.trust(i, b, fd.Untrusted)
					}
				}
			}
			if !stabilizeQuiet(g, m) {
				t.Errorf("%s seed %d: no fixpoint under distrust", m.Name(), seed)
				continue
			}
			for i := 0; i < n; i++ {
				if bad[i] || g.active(i) {
					continue
				}
				covered := false
				for j := 0; j < n; j++ {
					if g.adj[i][j] && g.active(j) && g.levelOf(i, j) == fd.Trusted {
						covered = true
						break
					}
				}
				if !covered {
					t.Errorf("%s seed %d: correct node %d uncovered under distrust\nreproduce with:\n  go test ./internal/overlay/ -run TestOverlayPropertiesUnderDistrust",
						m.Name(), seed, i)
				}
			}
		}
	}
}
