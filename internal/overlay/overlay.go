// Package overlay implements the self-stabilizing overlay-maintenance
// protocols of §3.3: the Connected Dominating Set (CDS) and the Maximal
// Independent Set with Bridges (MIS+B) rules of [21] (self-stabilizing
// generalizations of Wu & Li), augmented with the paper's trust levels.
//
// There is no global knowledge: each node periodically runs a local
// computation step over its current view — its neighbours' last reported
// states — and decides whether it considers itself an overlay (active) node.
// The goodness number is the node identifier, which is unforgeable
// (§3.3: "we replace the notion of a goodness number with the node's id").
//
// Trust levels gate the computation: Untrusted neighbours are ignored
// entirely; Unknown neighbours still count as nodes that must be covered but
// are never relied upon as coverers, ensuring an alternative overlay path
// exists around suspected nodes.
package overlay

import (
	"sort"

	"bbcast/internal/fd"
	"bbcast/internal/wire"
)

// Role is a node's standing in the overlay. Distinguishing dominators
// (independent-set members) from bridges is what makes the MIS+B rules
// self-stabilizing: MIS suppression flows only from dominators, so a bridge
// activating next to a dominator never deactivates it.
type Role int

// Roles.
const (
	Passive Role = iota + 1
	Bridge
	Dominator
)

// Active reports whether the role places the node in the overlay.
func (r Role) Active() bool { return r == Bridge || r == Dominator }

// String implements fmt.Stringer.
func (r Role) String() string {
	switch r {
	case Passive:
		return "passive"
	case Bridge:
		return "bridge"
	case Dominator:
		return "dominator"
	default:
		return "role(?)"
	}
}

// NeighborInfo is a node's knowledge of one neighbour, assembled from the
// neighbour's last (signed) overlay-state report and the local TRUST level.
type NeighborInfo struct {
	ID    wire.NodeID
	Role  Role
	Level fd.Level
	// Neighbors is the neighbour's own reported one-hop neighbourhood.
	Neighbors []wire.NodeID
	// ActiveNeighbors is the subset the neighbour believes active.
	ActiveNeighbors []wire.NodeID
	// DominatorNeighbors is the subset the neighbour believes to be
	// dominators.
	DominatorNeighbors []wire.NodeID
}

// View is the local state a maintainer decides on.
type View struct {
	Self      wire.NodeID
	SelfRole  Role
	Neighbors []NeighborInfo
	// Distrusts, when non-nil, reports whether the local TRUST detector
	// marks a node Untrusted — consulted for bridge candidates that are not
	// direct neighbours (known only through reports).
	Distrusts func(wire.NodeID) bool
}

// Maintainer decides, from purely local knowledge, what role the node should
// take. Decide is invoked periodically (each computation step).
type Maintainer interface {
	// Name identifies the protocol in reports ("cds" or "mis+b").
	Name() string
	// Decide returns the role the node should take.
	Decide(v View) Role
}

// Kind selects a maintainer implementation.
type Kind int

// Maintainer kinds.
const (
	CDS Kind = iota + 1
	MISB
)

// New returns a maintainer of the given kind.
func New(kind Kind) Maintainer {
	switch kind {
	case MISB:
		return misb{}
	default:
		return cds{}
	}
}

// usable reports whether a neighbour may participate in computations at all.
func usable(n NeighborInfo) bool { return n.Level != fd.Untrusted }

// reliable reports whether a neighbour may serve as a coverer/relay.
func reliable(n NeighborInfo) bool { return n.Level == fd.Trusted }

// adjacent reports whether n's reported neighbourhood contains id.
func adjacent(n NeighborInfo, id wire.NodeID) bool {
	for _, x := range n.Neighbors {
		if x == id {
			return true
		}
	}
	return false
}

// cds implements the marking algorithm of Wu & Li with the two ID-based
// pruning rules, filtered by trust.
type cds struct{}

var _ Maintainer = cds{}

func (cds) Name() string { return "cds" }

// Decide marks the node if it has two usable neighbours that are not
// adjacent to each other (it may be needed to connect them), then applies
// the pruning rules: the node retires if its usable neighbourhood is covered
// by one trusted active neighbour with a higher ID (rule 1), or by two
// adjacent trusted active neighbours with higher IDs (rule 2).
func (cds) Decide(v View) Role {
	nbrs := v.Neighbors
	// Leader rule (§3.3): a node with the highest identifier among its
	// usable neighbours elects itself. This covers dense neighbourhoods
	// (cliques) where the marking rule below never fires.
	leader := true
	for _, n := range nbrs {
		if usable(n) && n.ID > v.Self {
			leader = false
			break
		}
	}
	if leader {
		return Dominator
	}
	// Marking step.
	marked := false
	for i := 0; i < len(nbrs) && !marked; i++ {
		if !usable(nbrs[i]) {
			continue
		}
		for j := i + 1; j < len(nbrs); j++ {
			if !usable(nbrs[j]) {
				continue
			}
			if !adjacent(nbrs[i], nbrs[j].ID) && !adjacent(nbrs[j], nbrs[i].ID) {
				marked = true
				break
			}
		}
	}
	if !marked {
		return Passive
	}

	covered := func(coverers ...NeighborInfo) bool {
		for _, n := range nbrs {
			if !usable(n) {
				continue
			}
			ok := false
			for _, c := range coverers {
				if c.ID == n.ID || adjacent(c, n.ID) {
					ok = true
					break
				}
			}
			if !ok {
				return false
			}
		}
		return true
	}

	// Pruning rule 1.
	for _, w := range nbrs {
		if reliable(w) && w.Role.Active() && w.ID > v.Self && covered(w) {
			return Passive
		}
	}
	// Pruning rule 2.
	for i := 0; i < len(nbrs); i++ {
		w1 := nbrs[i]
		if !reliable(w1) || !w1.Role.Active() || w1.ID <= v.Self {
			continue
		}
		for j := i + 1; j < len(nbrs); j++ {
			w2 := nbrs[j]
			if !reliable(w2) || !w2.Role.Active() || w2.ID <= v.Self {
				continue
			}
			if (adjacent(w1, w2.ID) || adjacent(w2, w1.ID)) && covered(w1, w2) {
				return Passive
			}
		}
	}
	return Dominator
}

// misb implements the maximal-independent-set rule plus bridge election.
type misb struct{}

var _ Maintainer = misb{}

func (misb) Name() string { return "mis+b" }

// Decide applies three rules, any of which makes the node active:
//
//  1. MIS: no trusted dominator neighbour has a higher ID (highest-ID
//     greedy independent set; untrusted neighbours never suppress us, so
//     mute nodes claiming membership cannot hollow out the overlay).
//  2. Bridge-2: two dominator neighbours u, v are not adjacent, and we hold
//     the highest ID among their common neighbours (computed from u's and
//     v's own reported neighbour lists, so every contender elects the same
//     node).
//  3. Bridge-3: a dominator neighbour u and a neighbour w that reports a
//     dominator x we cannot hear; we bridge if we hold the highest ID
//     among the common neighbours of u and w. The symmetric rule fires at
//     a neighbour of x, completing a two-bridge path between dominators
//     three hops apart.
//
// Bridges never justify further bridges: both rules anchor on dominator
// endpoints, which keeps the overlay from cascading toward the full node
// set.
func (misb) Decide(v View) Role {
	nbrs := v.Neighbors
	// Rule 1: MIS membership - suppression flows only from higher-ID
	// trusted dominators.
	suppressed := false
	for _, n := range nbrs {
		if reliable(n) && n.Role == Dominator && n.ID > v.Self {
			suppressed = true
			break
		}
	}
	if !suppressed {
		return Dominator
	}

	// Rule 2: bridge between two dominator neighbours that cannot hear
	// each other.
	for i := 0; i < len(nbrs); i++ {
		u := nbrs[i]
		if !usable(u) || u.Role != Dominator {
			continue
		}
		for j := i + 1; j < len(nbrs); j++ {
			w := nbrs[j]
			if !usable(w) || w.Role != Dominator {
				continue
			}
			if adjacent(u, w.ID) || adjacent(w, u.ID) {
				continue
			}
			if alreadyBridged(v, u, w) {
				continue
			}
			if bestCommonID(v, u, w) == v.Self {
				return Bridge
			}
		}
	}

	// Rule 3: seed a two-bridge path toward a dominator three hops away.
	for _, u := range nbrs {
		if !usable(u) || u.Role != Dominator {
			continue
		}
		for _, w := range nbrs {
			if w.ID == u.ID || !reliable(w) {
				continue
			}
			if !reportsFarDominator(v, u, w) {
				continue
			}
			if alreadyBridged(v, u, w) {
				continue
			}
			if bestCommonID(v, u, w) == v.Self {
				return Bridge
			}
		}
	}
	return Passive
}

// alreadyBridged reports whether some node other than self is, per u's and
// w's own reports, an active common neighbour of both — the pair is served
// and electing another bridge would be redundant. This makes elections
// sticky: once a bridge is up, diverging neighbour views cannot elect
// duplicates, and if duplicates do arise the extra ones retire here.
func alreadyBridged(v View, u, w NeighborInfo) bool {
	for _, c := range u.ActiveNeighbors {
		if c == v.Self || c == w.ID {
			continue
		}
		if containsID(w.ActiveNeighbors, c) && !distrusted(v, c) {
			return true
		}
	}
	return false
}

// reportsFarDominator reports whether w advertises a dominator neighbour
// that we cannot hear and that is not adjacent to u (a dominator pair three
// hops apart, with us and w as the candidate connectors).
func reportsFarDominator(v View, u, w NeighborInfo) bool {
	for _, x := range w.DominatorNeighbors {
		if x == u.ID || x == v.Self {
			continue
		}
		if adjacent(u, x) {
			continue // u hears x: a 2-hop (or direct) pair, rule 2 territory
		}
		local := false
		for _, n := range v.Neighbors {
			if n.ID == x {
				local = true
				break
			}
		}
		if !local {
			return true
		}
	}
	return false
}

// bestCommonID returns the highest ID among the nodes adjacent to both u and
// w, per their own reports, skipping candidates the elector distrusts (a
// suspected node must not be relied on as the bridge; electors with
// differing trust views may then over-elect, which costs efficiency but
// never connectivity). Among electors with equal trust views the candidate
// set is identical, so exactly one node elects itself.
func bestCommonID(v View, u, w NeighborInfo) wire.NodeID {
	best := wire.NoNode
	first := true
	for _, a := range u.Neighbors {
		if a == u.ID || a == w.ID {
			continue
		}
		if !containsID(w.Neighbors, a) {
			continue
		}
		if distrusted(v, a) {
			continue
		}
		if first || a > best {
			best = a
			first = false
		}
	}
	if first {
		return wire.NoNode
	}
	return best
}

// distrusted reports whether the elector's own table marks id Untrusted.
func distrusted(v View, id wire.NodeID) bool {
	for _, n := range v.Neighbors {
		if n.ID == id {
			return n.Level == fd.Untrusted
		}
	}
	return v.Distrusts != nil && v.Distrusts(id)
}

func containsID(ids []wire.NodeID, id wire.NodeID) bool {
	for _, x := range ids {
		if x == id {
			return true
		}
	}
	return false
}

// SuppressedByHigherDominator reports whether the view contains a trusted
// dominator neighbour with a higher ID than self — the MIS conflict that
// must demote a dominator immediately (two adjacent dominators violate
// independence; all other role changes may be damped for stability).
func SuppressedByHigherDominator(v View) bool {
	for _, n := range v.Neighbors {
		if reliable(n) && n.Role == Dominator && n.ID > v.Self {
			return true
		}
	}
	return false
}

// SortView normalizes a view's neighbour order (by ID); decisions do not
// depend on order, but deterministic traces are easier to debug.
func SortView(v *View) {
	sort.Slice(v.Neighbors, func(i, j int) bool { return v.Neighbors[i].ID < v.Neighbors[j].ID })
}
