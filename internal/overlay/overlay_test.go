package overlay

import (
	"math/rand"
	"testing"
	"testing/quick"

	"bbcast/internal/fd"
	"bbcast/internal/geo"
	"bbcast/internal/wire"
)

// graph is a synchronous test harness: ground-truth adjacency plus per-node
// trust assignments, iterated to a fixpoint with fair (descending-ID
// sequential) scheduling, as the jittered periodic timers of the real
// protocol provide.
type graph struct {
	n     int
	adj   [][]bool
	roles []Role
	// level[i][j] is i's trust in j (default Trusted).
	level map[[2]int]fd.Level
}

func newGraph(n int) *graph {
	g := &graph{n: n, adj: make([][]bool, n), roles: make([]Role, n), level: map[[2]int]fd.Level{}}
	for i := range g.adj {
		g.adj[i] = make([]bool, n)
		g.roles[i] = Passive
	}
	return g
}

func (g *graph) active(i int) bool { return g.roles[i].Active() }

func (g *graph) connect(a, b int) {
	g.adj[a][b] = true
	g.adj[b][a] = true
}

func (g *graph) trust(a, b int, l fd.Level) { g.level[[2]int{a, b}] = l }

func (g *graph) levelOf(a, b int) fd.Level {
	if l, ok := g.level[[2]int{a, b}]; ok {
		return l
	}
	return fd.Trusted
}

func (g *graph) neighborIDs(i int) []wire.NodeID {
	var out []wire.NodeID
	for j := 0; j < g.n; j++ {
		if g.adj[i][j] {
			out = append(out, wire.NodeID(j))
		}
	}
	return out
}

func (g *graph) view(i int) View {
	v := View{Self: wire.NodeID(i), SelfRole: g.roles[i]}
	v.Distrusts = func(id wire.NodeID) bool { return g.levelOf(i, int(id)) == fd.Untrusted }
	for j := 0; j < g.n; j++ {
		if !g.adj[i][j] {
			continue
		}
		var actNbrs, domNbrs []wire.NodeID
		for k := 0; k < g.n; k++ {
			if g.adj[j][k] && g.active(k) {
				actNbrs = append(actNbrs, wire.NodeID(k))
				if g.roles[k] == Dominator {
					domNbrs = append(domNbrs, wire.NodeID(k))
				}
			}
		}
		v.Neighbors = append(v.Neighbors, NeighborInfo{
			ID:                 wire.NodeID(j),
			Role:               g.roles[j],
			Level:              g.levelOf(i, j),
			Neighbors:          g.neighborIDs(j),
			ActiveNeighbors:    actNbrs,
			DominatorNeighbors: domNbrs,
		})
	}
	return v
}

// stabilize runs computation steps until no decision changes, returning the
// number of full sweeps. It fails the test if no fixpoint is reached.
func (g *graph) stabilize(t *testing.T, m Maintainer) int {
	t.Helper()
	for sweep := 1; sweep <= 60; sweep++ {
		changed := false
		// Descending-ID order: suppression flows from high to low IDs.
		for i := g.n - 1; i >= 0; i-- {
			next := m.Decide(g.view(i))
			if next != g.roles[i] {
				g.roles[i] = next
				changed = true
			}
		}
		if !changed {
			return sweep
		}
	}
	t.Fatalf("%s did not stabilize in 60 sweeps", m.Name())
	return 0
}

// dominated checks every node is active or has an active neighbour it can
// rely on (trusted from the node's perspective).
func (g *graph) dominated() bool {
	for i := 0; i < g.n; i++ {
		if g.active(i) {
			continue
		}
		ok := false
		for j := 0; j < g.n; j++ {
			if g.adj[i][j] && g.active(j) && g.levelOf(i, j) == fd.Trusted {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

// activeConnected checks the subgraph induced by active nodes is connected.
func (g *graph) activeConnected() bool {
	var first = -1
	for i := 0; i < g.n; i++ {
		if g.active(i) {
			first = i
			break
		}
	}
	if first < 0 {
		return false
	}
	seen := make([]bool, g.n)
	stack := []int{first}
	seen[first] = true
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for j := 0; j < g.n; j++ {
			if g.adj[v][j] && g.active(j) && !seen[j] {
				seen[j] = true
				stack = append(stack, j)
			}
		}
	}
	for i := 0; i < g.n; i++ {
		if g.active(i) && !seen[i] {
			return false
		}
	}
	return true
}

func (g *graph) activeCount() int {
	c := 0
	for i := range g.roles {
		if g.active(i) {
			c++
		}
	}
	return c
}

func line(n int) *graph {
	g := newGraph(n)
	for i := 0; i+1 < n; i++ {
		g.connect(i, i+1)
	}
	return g
}

func clique(n int) *graph {
	g := newGraph(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			g.connect(i, j)
		}
	}
	return g
}

// unitDisk builds a random connected unit-disk graph (retrying placements).
func unitDisk(t *testing.T, n int, area, radius float64, seed int64) *graph {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	for attempt := 0; attempt < 50; attempt++ {
		pts := make([]geo.Point, n)
		for i := range pts {
			pts[i] = geo.Point{X: rng.Float64() * area, Y: rng.Float64() * area}
		}
		g := newGraph(n)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if pts[i].Dist(pts[j]) <= radius {
					g.connect(i, j)
				}
			}
		}
		if graphConnected(g) {
			return g
		}
	}
	t.Fatal("could not generate a connected unit-disk graph")
	return nil
}

func graphConnected(g *graph) bool {
	seen := make([]bool, g.n)
	stack := []int{0}
	seen[0] = true
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for j := 0; j < g.n; j++ {
			if g.adj[v][j] && !seen[j] {
				seen[j] = true
				stack = append(stack, j)
			}
		}
	}
	for _, s := range seen {
		if !s {
			return false
		}
	}
	return true
}

func maintainers() []Maintainer { return []Maintainer{New(CDS), New(MISB)} }

func TestSingletonIsActive(t *testing.T) {
	for _, m := range maintainers() {
		g := newGraph(1)
		g.stabilize(t, m)
		if !g.active(0) {
			t.Errorf("%s: isolated node should be active (it is its own overlay)", m.Name())
		}
	}
}

func TestCliqueElectsHighestID(t *testing.T) {
	for _, m := range maintainers() {
		g := clique(5)
		g.stabilize(t, m)
		if !g.active(4) {
			t.Errorf("%s: highest-ID node not active in clique", m.Name())
		}
		if !g.dominated() {
			t.Errorf("%s: clique not dominated", m.Name())
		}
	}
}

func TestLineDominatesAndConnects(t *testing.T) {
	for _, m := range maintainers() {
		for _, n := range []int{2, 3, 5, 8, 13} {
			g := line(n)
			g.stabilize(t, m)
			if !g.dominated() {
				t.Errorf("%s: line(%d) not dominated; roles=%v", m.Name(), n, g.roles)
			}
			if !g.activeConnected() {
				t.Errorf("%s: line(%d) overlay disconnected; roles=%v", m.Name(), n, g.roles)
			}
		}
	}
}

func TestStarTopology(t *testing.T) {
	for _, m := range maintainers() {
		g := newGraph(6)
		for i := 1; i < 6; i++ {
			g.connect(0, i)
		}
		g.stabilize(t, m)
		if !g.active(0) {
			t.Errorf("%s: hub of star must be active; roles=%v", m.Name(), g.roles)
		}
		if !g.dominated() {
			t.Errorf("%s: star not dominated", m.Name())
		}
	}
}

func TestRandomUnitDiskProperties(t *testing.T) {
	for _, m := range maintainers() {
		for seed := int64(1); seed <= 8; seed++ {
			g := unitDisk(t, 40, 1000, 280, seed)
			g.stabilize(t, m)
			if !g.dominated() {
				t.Errorf("%s seed %d: not dominated", m.Name(), seed)
			}
			if !g.activeConnected() {
				t.Errorf("%s seed %d: overlay disconnected", m.Name(), seed)
			}
		}
	}
}

func TestOverlaySmallerThanGraph(t *testing.T) {
	// The whole point of an overlay: fewer forwarders than flooding.
	for _, m := range maintainers() {
		total, active := 0, 0
		for seed := int64(1); seed <= 5; seed++ {
			g := unitDisk(t, 50, 1000, 320, seed)
			g.stabilize(t, m)
			total += g.n
			active += g.activeCount()
		}
		if active >= total*3/4 {
			t.Errorf("%s: overlay has %d of %d nodes; expected a substantially smaller set", m.Name(), active, total)
		}
	}
}

func TestMISDominatorIndependence(t *testing.T) {
	// Rule-1 members (dominators) form an independent set among trusted
	// nodes: no two adjacent dominators.
	m := New(MISB)
	for seed := int64(1); seed <= 5; seed++ {
		g := unitDisk(t, 30, 900, 300, seed)
		g.stabilize(t, m)
		for i := 0; i < g.n; i++ {
			for j := i + 1; j < g.n; j++ {
				if g.adj[i][j] && g.roles[i] == Dominator && g.roles[j] == Dominator {
					t.Fatalf("seed %d: adjacent dominators %d,%d; roles=%v", seed, i, j, g.roles)
				}
			}
		}
	}
}

func TestMISBCliqueSingleActive(t *testing.T) {
	// In a clique the MIS is a single node and no bridges are needed.
	g := clique(6)
	g.stabilize(t, New(MISB))
	if g.activeCount() != 1 || g.roles[5] != Dominator {
		t.Fatalf("clique roles = %v, want only node 5 active", g.roles)
	}
}

func TestUntrustedNeighborCannotSuppress(t *testing.T) {
	// Node 1's only higher-ID neighbour (2) is untrusted: node 1 must stay
	// active (a mute node claiming overlay membership cannot hollow out the
	// overlay).
	for _, m := range maintainers() {
		g := line(3) // 0-1-2
		g.trust(1, 2, fd.Untrusted)
		g.trust(0, 2, fd.Untrusted)
		g.stabilize(t, m)
		if !g.active(1) {
			t.Errorf("%s: node 1 suppressed by untrusted neighbour; roles=%v", m.Name(), g.roles)
		}
	}
}

func TestUnknownNeighborNotRelied(t *testing.T) {
	// Unknown nodes must not serve as coverers: with its higher-ID
	// neighbour Unknown, node 1 stays active.
	for _, m := range maintainers() {
		g := line(3)
		g.trust(1, 2, fd.Unknown)
		g.trust(0, 2, fd.Unknown)
		g.stabilize(t, m)
		if !g.active(1) {
			t.Errorf("%s: node relied on Unknown coverer; roles=%v", m.Name(), g.roles)
		}
	}
}

func TestByzantineSuspectedPathRoutesAround(t *testing.T) {
	// Diamond: 0-1-3, 0-2-3. Node 3 highest. Node 2 untrusted by everyone.
	// The overlay must still connect 0 and 3 through node 1.
	for _, m := range maintainers() {
		g := newGraph(4)
		g.connect(0, 1)
		g.connect(0, 2)
		g.connect(1, 3)
		g.connect(2, 3)
		for _, i := range []int{0, 1, 3} {
			g.trust(i, 2, fd.Untrusted)
		}
		g.stabilize(t, m)
		if !g.active(1) {
			t.Errorf("%s: with node 2 suspected, node 1 must join; roles=%v", m.Name(), g.roles)
		}
	}
}

func TestDecideIsPure(t *testing.T) {
	// Decide must not mutate the view.
	for _, m := range maintainers() {
		g := line(5)
		v := g.view(2)
		before := len(v.Neighbors)
		m.Decide(v)
		m.Decide(v)
		if len(v.Neighbors) != before {
			t.Errorf("%s: Decide mutated the view", m.Name())
		}
	}
}

func TestSortView(t *testing.T) {
	v := View{Self: 0, Neighbors: []NeighborInfo{{ID: 5}, {ID: 2}, {ID: 9}}}
	SortView(&v)
	if v.Neighbors[0].ID != 2 || v.Neighbors[1].ID != 5 || v.Neighbors[2].ID != 9 {
		t.Fatalf("SortView order wrong: %+v", v.Neighbors)
	}
}

func TestNewKinds(t *testing.T) {
	if New(CDS).Name() != "cds" {
		t.Fatal("New(CDS) wrong")
	}
	if New(MISB).Name() != "mis+b" {
		t.Fatal("New(MISB) wrong")
	}
	if New(Kind(99)).Name() != "cds" {
		t.Fatal("unknown kind should default to cds")
	}
}

// Property: on random connected unit-disk graphs with all nodes trusted,
// stabilization yields a dominating set (both maintainers).
func TestQuickDomination(t *testing.T) {
	f := func(seedRaw uint32) bool {
		seed := int64(seedRaw%1000) + 1
		for _, m := range maintainers() {
			g := unitDisk(t, 25, 800, 300, seed)
			g.stabilize(t, m)
			if !g.dominated() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestBridgeElectionConsistent(t *testing.T) {
	// Two dominators two hops apart with several common neighbours: exactly
	// the max-ID common neighbour elects itself.
	// Topology: dominators 8 and 9; common neighbours 2, 5, 7.
	g := newGraph(10)
	for _, c := range []int{2, 5, 7} {
		g.connect(8, c)
		g.connect(9, c)
	}
	g.roles[8] = Dominator
	g.roles[9] = Dominator
	m := New(MISB)
	for _, c := range []int{2, 5} {
		if got := m.Decide(g.view(c)); got == Bridge {
			t.Errorf("node %d elected itself despite higher common neighbour 7", c)
		}
	}
	if got := m.Decide(g.view(7)); got != Bridge {
		t.Errorf("max-ID common neighbour 7 did not bridge: got %v", got)
	}
}

func TestBridgeElectionSkipsDistrustedCandidate(t *testing.T) {
	// As above, but every elector distrusts node 7: node 5 takes over.
	g := newGraph(10)
	for _, c := range []int{2, 5, 7} {
		g.connect(8, c)
		g.connect(9, c)
	}
	g.roles[8] = Dominator
	g.roles[9] = Dominator
	for _, i := range []int{2, 5, 8, 9} {
		g.trust(i, 7, fd.Untrusted)
	}
	m := New(MISB)
	if got := m.Decide(g.view(5)); got != Bridge {
		t.Errorf("next-best candidate did not bridge around distrusted 7: got %v", got)
	}
	if got := m.Decide(g.view(2)); got == Bridge {
		t.Errorf("node 2 elected itself though 5 outranks it")
	}
}

func TestBridgeSticky(t *testing.T) {
	// Once a bridge is active between the pair, no further node elects
	// itself even if it outranks the incumbent in the candidate set.
	g := newGraph(10)
	for _, c := range []int{2, 5, 7} {
		g.connect(8, c)
		g.connect(9, c)
	}
	g.roles[8] = Dominator
	g.roles[9] = Dominator
	g.roles[5] = Bridge // incumbent (lower than 7)
	m := New(MISB)
	if got := m.Decide(g.view(7)); got == Bridge {
		t.Errorf("node 7 duplicated an already-bridged pair")
	}
}

func TestAdjacentDominatorsNeedNoBridge(t *testing.T) {
	g := newGraph(4)
	g.connect(2, 3) // dominators hear each other
	g.connect(1, 2)
	g.connect(1, 3)
	g.roles[2] = Dominator
	g.roles[3] = Dominator
	if got := New(MISB).Decide(g.view(1)); got == Bridge {
		t.Error("bridged two adjacent dominators")
	}
}

func TestSuppressedByHigherDominatorHelper(t *testing.T) {
	g := newGraph(3)
	g.connect(0, 2)
	g.roles[2] = Dominator
	if !SuppressedByHigherDominator(g.view(0)) {
		t.Error("higher dominator not detected")
	}
	if SuppressedByHigherDominator(g.view(2)) {
		t.Error("dominator suppressed by nothing")
	}
	// Untrusted dominators do not suppress.
	g.trust(0, 2, fd.Untrusted)
	if SuppressedByHigherDominator(g.view(0)) {
		t.Error("untrusted dominator suppressed a node")
	}
}

func TestRoleHelpers(t *testing.T) {
	if Passive.Active() || !Bridge.Active() || !Dominator.Active() {
		t.Error("Role.Active wrong")
	}
	names := map[Role]string{Passive: "passive", Bridge: "bridge", Dominator: "dominator", Role(9): "role(?)"}
	for r, want := range names {
		if r.String() != want {
			t.Errorf("%d.String() = %q", r, r.String())
		}
	}
}
