// Package invariant is the runtime safety/liveness checker wired into every
// simulated run. It continuously asserts the properties the protocol claims
// (§2.3 of the paper) and the recovery behaviour the fault-injection harness
// exercises:
//
//  1. Agreement — no two correct nodes deliver different payloads for the
//     same message id. (The paper's protocol accepts the first validly
//     signed copy, so an equivocating Byzantine *source* genuinely violates
//     this; the checker exists to catch exactly that class of bug/attack.)
//  2. Validity — every correct node that stayed up and connected to the
//     source's partition group eventually delivers, modulo nodes the fault
//     plan crashed.
//  3. Detector soundness — after a quiet heal window, no correct reachable
//     node remains suspected by a majority of correct nodes.
//  4. Overlay recovery — a bounded time after each fault event, the overlay
//     backbone again covers the network: every correct up node is in the
//     overlay or adjacent to it, and the overlay is connected within each
//     connected component of up nodes.
//
// The checker is fed by the runner through plain callbacks and probes; it
// never touches protocol internals itself. Violations are recorded, not
// thrown: the runner surfaces them in Result and the CLI fails the run with
// a reproducible seed and the fault-event log.
package invariant

import (
	"fmt"
	"hash/fnv"
	"sort"
	"time"

	"bbcast/internal/wire"
)

// Config selects which invariants run and their windows. The zero value
// disables everything; start from DefaultConfig.
type Config struct {
	// Agreement enables the delivered-payload agreement check.
	Agreement bool
	// Validity enables the end-of-run eventual-delivery check.
	Validity bool
	// Detectors enables the end-of-run detector-soundness check.
	Detectors bool
	// Recovery enables the post-fault overlay-coverage check.
	Recovery bool
	// StateBounds enables the resource-bound check: every sampled
	// protocol-state queue must stay at or under its configured cap
	// (Probes.Bounds), no matter what adversaries send.
	StateBounds bool
	// TimerBounds enables the adaptive-timer check: every committed
	// adaptive-timer change must land inside the timer's configured range
	// (Probes.TimerRanges), no matter how hostile the channel gets.
	TimerBounds bool
	// AtMostOnce enables the duplicate-delivery check: a correct node must
	// never deliver the same message id twice. Two exemptions reflect the
	// protocol's documented semantics: a node whose amnesiac wipe (OnWipe)
	// erased its duplicate filter may re-deliver pre-wipe traffic, and a
	// re-delivery at least RedeliveryGrace after the first reflects benign
	// tombstone quiescence GC. Dedup must hold again for post-rejoin traffic:
	// a second re-delivery of the same id after one wipe is a violation.
	AtMostOnce bool

	// RedeliveryGrace exempts re-deliveries separated from the previous
	// delivery of the same id by at least this much: the store's quiescence
	// GC may legitimately forget a message that old, letting a late replay
	// through. Zero disables the exemption (strict at-most-once).
	RedeliveryGrace time.Duration

	// ValidityGrace exempts messages injected within this window before the
	// end of the run — they may legitimately still be in flight.
	ValidityGrace time.Duration
	// ValidityRatio is the minimum fraction of eligible correct nodes that
	// must deliver each checked message. Radio loss makes per-message
	// delivery statistical even in correct runs, so this is a floor rather
	// than 1.0.
	ValidityRatio float64
	// HealWindow is the quiet time after the last fault event before the
	// detector-soundness check applies; it must exceed the detectors'
	// suspicion TTL so honest suspicions from the fault itself can age out.
	HealWindow time.Duration
	// RecoveryWindow is the deadline for the overlay to re-cover the
	// network after a fault event. The checker probes repeatedly inside the
	// window (roles flap while the detectors digest a topology change) and
	// records a violation only if no probe before the deadline comes back
	// clean. It should exceed the detectors' suspicion TTL, which paces the
	// flapping.
	RecoveryWindow time.Duration
}

// DefaultConfig enables all four invariants with windows suited to the
// default protocol timescales (30 s suspicion TTL, 1 s maintenance period).
func DefaultConfig() Config {
	return Config{
		Agreement:       true,
		Validity:        true,
		Detectors:       true,
		Recovery:        true,
		StateBounds:     true,
		TimerBounds:     true,
		AtMostOnce:      true,
		RedeliveryGrace: 60 * time.Second,
		ValidityGrace:   10 * time.Second,
		ValidityRatio:   0.90,
		HealWindow:      45 * time.Second,
		RecoveryWindow:  35 * time.Second,
	}
}

// Enabled reports whether any invariant is switched on.
func (c Config) Enabled() bool {
	return c.Agreement || c.Validity || c.Detectors || c.Recovery || c.StateBounds || c.TimerBounds || c.AtMostOnce
}

// Violation is one detected invariant breach.
type Violation struct {
	// At is the virtual time the breach was detected.
	At time.Duration
	// Invariant names the property: agreement, validity,
	// detector-soundness or overlay-recovery.
	Invariant string
	// Detail is a human-readable description with the offending ids.
	Detail string
}

// String implements fmt.Stringer.
func (v Violation) String() string {
	return fmt.Sprintf("[%s] %s: %s", v.At, v.Invariant, v.Detail)
}

// Probes are the read-only views of the live run the checker consults. All
// probes are invoked synchronously on the simulation goroutine.
type Probes struct {
	// N is the network size.
	N int
	// Correct reports whether a node is correct for the whole run (not an
	// adversary at t=0 and never swapped to a faulty behaviour).
	Correct func(wire.NodeID) bool
	// Up reports whether the node's radio is currently on the air.
	Up func(wire.NodeID) bool
	// Neighbors returns the ground-truth reachable neighbours of a node
	// (mask-aware: crashed nodes and cross-partition links excluded).
	Neighbors func(wire.NodeID) []wire.NodeID
	// ReliableNeighbors, when set, restricts the validity reachability
	// snapshot to links the radio model treats as loss-free (inside the
	// fringe-decay boundary). Nodes connected only through lossy fringe
	// links cannot be promised delivery within a bounded grace window.
	// Falls back to Neighbors when nil.
	ReliableNeighbors func(wire.NodeID) []wire.NodeID
	// OverlayActive reports whether the node currently considers itself in
	// the overlay.
	OverlayActive func(wire.NodeID) bool
	// Suspects reports whether observer currently distrusts subject.
	Suspects func(observer, subject wire.NodeID) bool
	// Bounds maps a sampled queue name (obsv.Queue values, string-keyed so
	// this package stays observer-agnostic) to its configured cap. Queues
	// absent from the map are unbounded. Consulted by the state-bounds check.
	Bounds map[string]int
	// TimerRanges maps an adaptive timer name (obsv.AdaptiveTimer values,
	// string-keyed) to its configured [min, max] range. Timers absent from
	// the map are unchecked. Consulted by the timer-bounds check.
	TimerRanges map[string][2]time.Duration
}

// delivery records the first payload a correct node delivered for a message.
type delivery struct {
	hash uint64
	node wire.NodeID
}

// window is a closed downtime interval; To==0 means still down.
type window struct {
	from time.Duration
	to   time.Duration
	open bool
}

// partEpoch is one partition era: group assignment per node from At until
// the next epoch. groups==nil means healed (single group).
type partEpoch struct {
	at     time.Duration
	groups []int // per-node group index; nil = all connected
}

// injection records one workload origination.
type injection struct {
	id         wire.MsgID
	origin     wire.NodeID
	at         time.Duration
	originDown bool // origin was off the air when it "sent" — uncheckable
	// reachable snapshots the origin's connected component at injection
	// time; nodes outside it (sparse deployments legitimately leave
	// disconnected clusters) owe no delivery. nil means no topology probe
	// was available and every node counts.
	reachable map[wire.NodeID]bool
}

// Checker accumulates run events and evaluates the invariants. It is
// single-threaded (simulation callbacks only).
type Checker struct {
	cfg    Config
	probes Probes
	now    func() time.Duration

	firstPayload map[wire.MsgID]delivery
	// delivered maps each message to the time of the most recent delivery at
	// each node. Presence feeds the validity check; the timestamp feeds the
	// at-most-once check (re-delivery is exempt only if a wipe or the
	// RedeliveryGrace window separates it from the previous delivery).
	delivered  map[wire.MsgID]map[wire.NodeID]time.Duration
	injections []injection
	// wipes records amnesiac-wipe times per node: a wipe erases the node's
	// duplicate filter, so exactly the deliveries preceding it may repeat.
	wipes map[wire.NodeID][]time.Duration

	downtime   map[wire.NodeID][]window
	partitions []partEpoch
	lastFault  time.Duration
	faultLog   []string

	// boundBreached dedupes state-bounds violations: one report per
	// (node, queue), not one per sample while the breach persists.
	boundBreached map[boundKey]bool
	// timerBreached dedupes timer-bounds violations per (node, timer).
	timerBreached map[boundKey]bool

	violations []Violation
}

// boundKey identifies one node's sampled queue for violation dedup.
type boundKey struct {
	node  wire.NodeID
	queue string
}

// New builds a checker. probes.N, Correct, Up, Neighbors, OverlayActive and
// Suspects must be set for the checks enabled in cfg.
func New(cfg Config, now func() time.Duration, probes Probes) *Checker {
	return &Checker{
		cfg:           cfg,
		probes:        probes,
		now:           now,
		firstPayload:  make(map[wire.MsgID]delivery),
		delivered:     make(map[wire.MsgID]map[wire.NodeID]time.Duration),
		wipes:         make(map[wire.NodeID][]time.Duration),
		downtime:      make(map[wire.NodeID][]window),
		partitions:    []partEpoch{{at: 0, groups: nil}},
		boundBreached: make(map[boundKey]bool),
		timerBreached: make(map[boundKey]bool),
	}
}

// Violations returns the breaches recorded so far.
func (c *Checker) Violations() []Violation { return c.violations }

// FaultLog returns the fault events observed, formatted "t name".
func (c *Checker) FaultLog() []string { return c.faultLog }

func (c *Checker) violate(invariant, format string, args ...any) {
	c.violations = append(c.violations, Violation{
		At:        c.now(),
		Invariant: invariant,
		Detail:    fmt.Sprintf(format, args...),
	})
}

// OnInject records a workload origination.
func (c *Checker) OnInject(id wire.MsgID, origin wire.NodeID, at time.Duration) {
	c.injections = append(c.injections, injection{
		id: id, origin: origin, at: at,
		originDown: c.downNow(origin),
		reachable:  c.component(origin),
	})
}

// component returns the set of nodes reachable from start over the current
// ground-truth adjacency (reliable links when that probe is wired up), or
// nil when no topology probe is available.
func (c *Checker) component(start wire.NodeID) map[wire.NodeID]bool {
	adj := c.probes.ReliableNeighbors
	if adj == nil {
		adj = c.probes.Neighbors
	}
	if adj == nil {
		return nil
	}
	reached := map[wire.NodeID]bool{start: true}
	queue := []wire.NodeID{start}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, w := range adj(v) {
			if !reached[w] {
				reached[w] = true
				queue = append(queue, w)
			}
		}
	}
	return reached
}

// OnDeliver records that a correct node accepted (id, payload), checks the
// at-most-once property against the node's previous delivery of the same id,
// and checks agreement against every earlier delivery of the same id.
func (c *Checker) OnDeliver(node wire.NodeID, id wire.MsgID, payload []byte) {
	at := c.now()
	m := c.delivered[id]
	if m == nil {
		m = make(map[wire.NodeID]time.Duration)
		c.delivered[id] = m
	}
	if prev, again := m[node]; again && c.cfg.AtMostOnce {
		// A repeat delivery is legitimate only when the node's duplicate
		// filter could not have caught it: an amnesiac wipe erased the
		// filter after the previous delivery, or the previous delivery is so
		// old the quiescence GC forgot it. Because the exemption is measured
		// against the *latest* delivery, dedup is re-established for
		// post-rejoin traffic: a second repeat after one wipe violates.
		grace := c.cfg.RedeliveryGrace > 0 && at-prev >= c.cfg.RedeliveryGrace
		if !grace && !c.wipedBetween(node, prev, at) {
			c.violate("at-most-once",
				"node %d delivered message %s twice (%s then %s) with no wipe in between",
				node, id, prev, at)
		}
	}
	m[node] = at

	if !c.cfg.Agreement {
		return
	}
	h := fnv.New64a()
	h.Write(payload)
	sum := h.Sum64()
	if first, ok := c.firstPayload[id]; ok {
		if first.hash != sum {
			c.violate("agreement",
				"message %s: node %d delivered a payload different from node %d's (%#x vs %#x)",
				id, node, first.node, sum, first.hash)
		}
		return
	}
	c.firstPayload[id] = delivery{hash: sum, node: node}
}

// OnQueueSample checks one periodic queue-depth sample against the node's
// configured state bound (the resource-exhaustion hardening invariant: no
// adversary traffic may push a node's tables past their caps; behaviours only
// wrap the send path, so the bound holds for every protocol instance). A
// persistent breach is reported once per (node, queue).
func (c *Checker) OnQueueSample(node wire.NodeID, queue string, depth int) {
	if !c.cfg.StateBounds {
		return
	}
	bound, ok := c.probes.Bounds[queue]
	if !ok || bound <= 0 || depth <= bound {
		return
	}
	key := boundKey{node: node, queue: queue}
	if c.boundBreached[key] {
		return
	}
	c.boundBreached[key] = true
	c.violate("state-bounds",
		"node %d: queue %q depth %d exceeds configured bound %d", node, queue, depth, bound)
}

// OnTimerChange checks one committed adaptive-timer change against the
// timer's configured range (the adaptive-timing invariant: no channel
// condition may drive a timer outside its hard [min, max] bounds). A
// persistently out-of-range timer is reported once per (node, timer).
func (c *Checker) OnTimerChange(node wire.NodeID, timer string, value time.Duration) {
	if !c.cfg.TimerBounds {
		return
	}
	r, ok := c.probes.TimerRanges[timer]
	if !ok || (value >= r[0] && value <= r[1]) {
		return
	}
	key := boundKey{node: node, queue: timer}
	if c.timerBreached[key] {
		return
	}
	c.timerBreached[key] = true
	c.violate("timer-bounds",
		"node %d: adaptive timer %q moved to %s, outside configured bounds [%s, %s]",
		node, timer, value, r[0], r[1])
}

// OnFault records a fault event (crash/recover/partition/heal/degrade/swap)
// for the event log and the heal-window bookkeeping.
func (c *Checker) OnFault(name string, at time.Duration) {
	c.lastFault = at
	c.faultLog = append(c.faultLog, fmt.Sprintf("%s %s", at, name))
}

// OnDown records node id going off the air.
func (c *Checker) OnDown(id wire.NodeID, at time.Duration) {
	c.downtime[id] = append(c.downtime[id], window{from: at, open: true})
}

// OnWipe records an amnesiac wipe: node id lost its volatile state
// (including its duplicate filter) at time at, so deliveries made before the
// wipe may legitimately repeat once afterwards.
func (c *Checker) OnWipe(id wire.NodeID, at time.Duration) {
	c.wipes[id] = append(c.wipes[id], at)
}

// wipedBetween reports whether node id was wiped at any point in [from, to].
// The interval is closed on both ends: in the discrete-event world a wipe can
// share an instant with a delivery, and ordering inside one instant is not
// observable here, so ties resolve leniently.
func (c *Checker) wipedBetween(id wire.NodeID, from, to time.Duration) bool {
	for _, w := range c.wipes[id] {
		if w >= from && w <= to {
			return true
		}
	}
	return false
}

// OnUp records node id coming back on the air.
func (c *Checker) OnUp(id wire.NodeID, at time.Duration) {
	ws := c.downtime[id]
	if len(ws) > 0 && ws[len(ws)-1].open {
		ws[len(ws)-1].to = at
		ws[len(ws)-1].open = false
	}
}

// OnPartition records a new partition era. groups is the per-node group
// assignment (length N); nil records a heal.
func (c *Checker) OnPartition(groups []int, at time.Duration) {
	c.partitions = append(c.partitions, partEpoch{at: at, groups: groups})
}

func (c *Checker) downNow(id wire.NodeID) bool {
	ws := c.downtime[id]
	return len(ws) > 0 && ws[len(ws)-1].open
}

// downDuring reports whether id was down at any point in [from, to].
func (c *Checker) downDuring(id wire.NodeID, from, to time.Duration) bool {
	for _, w := range c.downtime[id] {
		end := w.to
		if w.open {
			end = to
		}
		if w.from <= to && from <= end {
			return true
		}
	}
	return false
}

// coGrouped reports whether a and b were in the same partition group for the
// whole of [from, to].
func (c *Checker) coGrouped(a, b wire.NodeID, from, to time.Duration) bool {
	for i, ep := range c.partitions {
		end := to
		if i+1 < len(c.partitions) {
			end = c.partitions[i+1].at
		}
		if ep.at > to || end < from {
			continue // era does not overlap the window
		}
		if ep.groups == nil {
			continue
		}
		if int(a) >= len(ep.groups) || int(b) >= len(ep.groups) || ep.groups[a] != ep.groups[b] {
			return false
		}
	}
	return true
}

// CheckRecovery asserts the overlay-recovery invariant now, recording any
// breaches. Equivalent to recording ProbeRecovery's findings.
func (c *Checker) CheckRecovery() {
	c.violations = append(c.violations, c.ProbeRecovery()...)
}

// ProbeRecovery evaluates the overlay-recovery invariant at this instant
// without recording anything. Overlay roles legitimately flap while failure
// detectors digest a topology change (suspicions age out on their own
// 30-second clocks), so the runner probes repeatedly after each fault event
// and records a violation only if no clean cover appears before the
// RecoveryWindow deadline.
func (c *Checker) ProbeRecovery() []Violation {
	if !c.cfg.Recovery {
		return nil
	}
	var out []Violation
	p := c.probes
	// Components of the up-nodes graph (ground truth, mask-aware).
	seen := make([]bool, p.N)
	for start := 0; start < p.N; start++ {
		id := wire.NodeID(start)
		if seen[start] || !p.Up(id) {
			continue
		}
		var comp []wire.NodeID
		queue := []wire.NodeID{id}
		seen[start] = true
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			comp = append(comp, v)
			for _, w := range p.Neighbors(v) {
				if int(w) < p.N && !seen[w] {
					seen[w] = true
					queue = append(queue, w)
				}
			}
		}
		if len(comp) < 2 {
			continue // a lone node has nobody to cover or reach
		}
		out = append(out, c.probeComponent(comp)...)
	}
	return out
}

func (c *Checker) recViolation(format string, args ...any) Violation {
	return Violation{
		At:        c.now(),
		Invariant: "overlay-recovery",
		Detail:    fmt.Sprintf(format, args...),
	}
}

// probeComponent evaluates domination and overlay connectivity inside one
// connected component of up nodes.
func (c *Checker) probeComponent(comp []wire.NodeID) []Violation {
	p := c.probes
	var out []Violation
	inComp := make(map[wire.NodeID]bool, len(comp))
	var active []wire.NodeID
	for _, v := range comp {
		inComp[v] = true
		if p.OverlayActive(v) {
			active = append(active, v)
		}
	}
	if len(active) == 0 {
		return append(out, c.recViolation(
			"component of %d nodes (e.g. node %d) has no overlay node", len(comp), comp[0]))
	}
	// Domination: every correct node is active or hears an active neighbour.
	for _, v := range comp {
		if !p.Correct(v) || p.OverlayActive(v) {
			continue
		}
		covered := false
		for _, w := range p.Neighbors(v) {
			if inComp[w] && p.OverlayActive(w) {
				covered = true
				break
			}
		}
		if !covered {
			out = append(out, c.recViolation(
				"correct node %d has no overlay neighbour (component of %d nodes)", v, len(comp)))
		}
	}
	// Connectivity: the active nodes inside the component must be one
	// cluster under ground-truth adjacency.
	activeSet := make(map[wire.NodeID]bool, len(active))
	for _, v := range active {
		activeSet[v] = true
	}
	reached := map[wire.NodeID]bool{active[0]: true}
	queue := []wire.NodeID{active[0]}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, w := range p.Neighbors(v) {
			if activeSet[w] && !reached[w] {
				reached[w] = true
				queue = append(queue, w)
			}
		}
	}
	if len(reached) != len(active) {
		out = append(out, c.recViolation(
			"overlay disconnected: %d of %d overlay nodes reachable from node %d (component of %d nodes)",
			len(reached), len(active), active[0], len(comp)))
	}
	return out
}

// Report records externally-evaluated violations (e.g. the last failing
// recovery probe once its deadline passes).
func (c *Checker) Report(vs ...Violation) {
	c.violations = append(c.violations, vs...)
}

// Finish runs the end-of-run checks (validity, detector soundness) at
// virtual time end.
func (c *Checker) Finish(end time.Duration) {
	if c.cfg.Validity {
		c.checkValidity(end)
	}
	if c.cfg.Detectors {
		c.checkDetectors(end)
	}
}

func (c *Checker) checkValidity(end time.Duration) {
	p := c.probes
	for _, inj := range c.injections {
		if inj.originDown || !p.Correct(inj.origin) {
			continue // nothing is promised for Byzantine or dark senders
		}
		if inj.at > end-c.cfg.ValidityGrace {
			continue // may legitimately still be in flight
		}
		var eligible, got int
		var missing []wire.NodeID
		for i := 0; i < p.N; i++ {
			id := wire.NodeID(i)
			if id == inj.origin || !p.Correct(id) {
				continue
			}
			if c.downDuring(id, inj.at, end) || !c.coGrouped(id, inj.origin, inj.at, end) {
				continue // the plan cut it off; validity is modulo those
			}
			if inj.reachable != nil && !inj.reachable[id] {
				continue // physically disconnected from the origin at injection
			}
			eligible++
			if _, ok := c.delivered[inj.id][id]; ok {
				got++
			} else if len(missing) < 8 {
				missing = append(missing, id)
			}
		}
		if eligible == 0 {
			continue
		}
		if ratio := float64(got) / float64(eligible); ratio < c.cfg.ValidityRatio {
			c.violate("validity",
				"message %s (injected %s): delivered to %d/%d eligible correct nodes (%.3f < %.2f); missing e.g. %v",
				inj.id, inj.at, got, eligible, ratio, c.cfg.ValidityRatio, missing)
		}
	}
}

func (c *Checker) checkDetectors(end time.Duration) {
	p := c.probes
	if p.Suspects == nil {
		return
	}
	if end-c.lastFault < c.cfg.HealWindow {
		return // not quiet long enough for suspicions to age out
	}
	// Observers: correct, up nodes.
	var observers []wire.NodeID
	for i := 0; i < p.N; i++ {
		id := wire.NodeID(i)
		if p.Correct(id) && p.Up(id) {
			observers = append(observers, id)
		}
	}
	for _, subject := range observers {
		if len(p.Neighbors(subject)) == 0 {
			continue // unreachable nodes may be honestly suspected forever
		}
		var suspectors []wire.NodeID
		for _, obs := range observers {
			if obs != subject && p.Suspects(obs, subject) {
				suspectors = append(suspectors, obs)
			}
		}
		if 2*len(suspectors) > len(observers)-1 {
			sort.Slice(suspectors, func(i, j int) bool { return suspectors[i] < suspectors[j] })
			if len(suspectors) > 8 {
				suspectors = suspectors[:8]
			}
			c.violate("detector-soundness",
				"correct reachable node %d still suspected by a majority (%d of %d correct nodes, e.g. %v) %s after the last fault",
				subject, len(suspectors), len(observers)-1, suspectors, end-c.lastFault)
		}
	}
}
