package invariant

import (
	"strings"
	"testing"
	"time"

	"bbcast/internal/wire"
)

// fakeNet is a hand-built network for probing the checker: a ground-truth
// adjacency list plus per-node overlay/suspicion state.
type fakeNet struct {
	n       int
	adj     map[wire.NodeID][]wire.NodeID
	down    map[wire.NodeID]bool
	faulty  map[wire.NodeID]bool
	active  map[wire.NodeID]bool
	suspect map[[2]wire.NodeID]bool
	now     time.Duration
}

func newFakeNet(n int) *fakeNet {
	return &fakeNet{
		n:       n,
		adj:     map[wire.NodeID][]wire.NodeID{},
		down:    map[wire.NodeID]bool{},
		faulty:  map[wire.NodeID]bool{},
		active:  map[wire.NodeID]bool{},
		suspect: map[[2]wire.NodeID]bool{},
	}
}

func (f *fakeNet) connect(a, b wire.NodeID) {
	f.adj[a] = append(f.adj[a], b)
	f.adj[b] = append(f.adj[b], a)
}

func (f *fakeNet) probes() Probes {
	return Probes{
		N:       f.n,
		Correct: func(id wire.NodeID) bool { return !f.faulty[id] },
		Up:      func(id wire.NodeID) bool { return !f.down[id] },
		Neighbors: func(id wire.NodeID) []wire.NodeID {
			if f.down[id] {
				return nil
			}
			var out []wire.NodeID
			for _, w := range f.adj[id] {
				if !f.down[w] {
					out = append(out, w)
				}
			}
			return out
		},
		OverlayActive: func(id wire.NodeID) bool { return f.active[id] },
		Suspects: func(obs, sub wire.NodeID) bool {
			return f.suspect[[2]wire.NodeID{obs, sub}]
		},
	}
}

func (f *fakeNet) checker(cfg Config) *Checker {
	return New(cfg, func() time.Duration { return f.now }, f.probes())
}

func countByKind(vs []Violation, kind string) int {
	n := 0
	for _, v := range vs {
		if v.Invariant == kind {
			n++
		}
	}
	return n
}

func TestAgreementViolation(t *testing.T) {
	f := newFakeNet(3)
	c := f.checker(Config{Agreement: true})
	id := wire.MsgID{Origin: 0, Seq: 1}
	c.OnDeliver(1, id, []byte("variant A"))
	c.OnDeliver(2, id, []byte("variant A"))
	if len(c.Violations()) != 0 {
		t.Fatalf("identical payloads flagged: %v", c.Violations())
	}
	c.OnDeliver(0, id, []byte("variant B"))
	if got := countByKind(c.Violations(), "agreement"); got != 1 {
		t.Fatalf("want 1 agreement violation, got %v", c.Violations())
	}
	// A second message with consistent payloads stays clean.
	id2 := wire.MsgID{Origin: 0, Seq: 2}
	c.OnDeliver(1, id2, []byte("x"))
	c.OnDeliver(2, id2, []byte("x"))
	if got := countByKind(c.Violations(), "agreement"); got != 1 {
		t.Fatalf("consistent message added violations: %v", c.Violations())
	}
}

// TestTimerBoundsViolation: adaptive-timer changes inside the configured
// range are clean, the first excursion outside it is one violation, and
// repeats on the same (node, timer) pair are deduplicated. Unregistered
// timers are ignored.
func TestTimerBoundsViolation(t *testing.T) {
	f := newFakeNet(3)
	p := f.probes()
	p.TimerRanges = map[string][2]time.Duration{
		"gossip": {250 * time.Millisecond, 2 * time.Second},
	}
	c := New(Config{TimerBounds: true}, func() time.Duration { return f.now }, p)
	c.OnTimerChange(1, "gossip", 250*time.Millisecond) // at the floor: fine
	c.OnTimerChange(1, "gossip", 2*time.Second)        // at the ceiling: fine
	c.OnTimerChange(1, "unregistered", time.Hour)      // unknown timer: ignored
	if len(c.Violations()) != 0 {
		t.Fatalf("in-range changes flagged: %v", c.Violations())
	}
	c.OnTimerChange(1, "gossip", 200*time.Millisecond)
	c.OnTimerChange(1, "gossip", 100*time.Millisecond) // same pair: deduplicated
	c.OnTimerChange(2, "gossip", 3*time.Second)        // other node: its own violation
	if got := countByKind(c.Violations(), "timer-bounds"); got != 2 {
		t.Fatalf("want 2 timer-bounds violations, got %v", c.Violations())
	}
	// With the check disabled, nothing fires.
	off := New(Config{}, func() time.Duration { return f.now }, p)
	off.OnTimerChange(1, "gossip", time.Hour)
	if len(off.Violations()) != 0 {
		t.Fatalf("disabled check fired: %v", off.Violations())
	}
}

// connectedFakeNet builds a fakeNet where every node hears every other.
func connectedFakeNet(n int) *fakeNet {
	f := newFakeNet(n)
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			f.connect(wire.NodeID(a), wire.NodeID(b))
		}
	}
	return f
}

func TestValidityViolationAndExemptions(t *testing.T) {
	cfg := Config{Validity: true, ValidityRatio: 0.9, ValidityGrace: 10 * time.Second}
	end := 100 * time.Second

	// All eligible nodes delivered: clean.
	f := connectedFakeNet(4)
	c := f.checker(cfg)
	id := wire.MsgID{Origin: 0, Seq: 1}
	c.OnInject(id, 0, 20*time.Second)
	for _, n := range []wire.NodeID{1, 2, 3} {
		c.OnDeliver(n, id, []byte("p"))
	}
	c.Finish(end)
	if len(c.Violations()) != 0 {
		t.Fatalf("full delivery flagged: %v", c.Violations())
	}

	// A missing eligible node below the ratio: violation.
	f = connectedFakeNet(4)
	c = f.checker(cfg)
	c.OnInject(id, 0, 20*time.Second)
	c.OnDeliver(1, id, []byte("p"))
	c.Finish(end)
	if got := countByKind(c.Violations(), "validity"); got != 1 {
		t.Fatalf("want validity violation, got %v", c.Violations())
	}

	// The same miss is exempt if the node was crashed meanwhile.
	f = connectedFakeNet(4)
	c = f.checker(cfg)
	c.OnInject(id, 0, 20*time.Second)
	c.OnDeliver(1, id, []byte("p"))
	c.OnDown(2, 30*time.Second)
	c.OnDown(3, 40*time.Second)
	c.Finish(end)
	if len(c.Violations()) != 0 {
		t.Fatalf("crashed nodes not exempt: %v", c.Violations())
	}

	// Exempt if injected within the grace window before the end.
	f = connectedFakeNet(4)
	c = f.checker(cfg)
	c.OnInject(id, 0, 95*time.Second)
	c.Finish(end)
	if len(c.Violations()) != 0 {
		t.Fatalf("grace window not honoured: %v", c.Violations())
	}

	// Exempt if the origin was in another partition group.
	f = connectedFakeNet(4)
	c = f.checker(cfg)
	c.OnPartition([]int{0, 0, 1, 1}, 10*time.Second)
	c.OnInject(id, 0, 20*time.Second)
	c.OnDeliver(1, id, []byte("p"))
	c.Finish(end)
	if len(c.Violations()) != 0 {
		t.Fatalf("cross-partition nodes not exempt: %v", c.Violations())
	}

	// Nothing is promised for a Byzantine origin.
	f = connectedFakeNet(4)
	f.faulty[0] = true
	c = f.checker(cfg)
	c.OnInject(id, 0, 20*time.Second)
	c.Finish(end)
	if len(c.Violations()) != 0 {
		t.Fatalf("byzantine origin not exempt: %v", c.Violations())
	}
}

func TestDetectorSoundness(t *testing.T) {
	cfg := Config{Detectors: true, HealWindow: 45 * time.Second}
	// 5 connected correct nodes; 3 of the other 4 suspect node 0.
	build := func() *fakeNet {
		f := newFakeNet(5)
		for i := 1; i < 5; i++ {
			f.connect(0, wire.NodeID(i))
		}
		for _, obs := range []wire.NodeID{1, 2, 3} {
			f.suspect[[2]wire.NodeID{obs, 0}] = true
		}
		return f
	}

	f := build()
	c := f.checker(cfg)
	c.OnFault("crash(9)", 10*time.Second)
	c.Finish(100 * time.Second) // 90s quiet > HealWindow
	if got := countByKind(c.Violations(), "detector-soundness"); got != 1 {
		t.Fatalf("want a detector violation, got %v", c.Violations())
	}

	// Not yet quiet for HealWindow: the check must not fire.
	f = build()
	c = f.checker(cfg)
	c.OnFault("crash(9)", 70*time.Second)
	c.Finish(100 * time.Second)
	if len(c.Violations()) != 0 {
		t.Fatalf("fired inside the heal window: %v", c.Violations())
	}

	// A minority of suspicions is tolerated.
	f = build()
	delete(f.suspect, [2]wire.NodeID{3, 0})
	c = f.checker(cfg)
	c.Finish(100 * time.Second)
	if len(c.Violations()) != 0 {
		t.Fatalf("minority suspicion flagged: %v", c.Violations())
	}
}

func TestRecoveryProbe(t *testing.T) {
	cfg := Config{Recovery: true, RecoveryWindow: 10 * time.Second}
	// Line 0-1-2-3-4; node 2 active covers 1 and 3 but not 0 and 4.
	f := newFakeNet(5)
	for i := 0; i < 4; i++ {
		f.connect(wire.NodeID(i), wire.NodeID(i+1))
	}
	f.active[2] = true
	c := f.checker(cfg)
	vs := c.ProbeRecovery()
	if len(vs) != 2 {
		t.Fatalf("want 2 coverage violations (nodes 0 and 4), got %v", vs)
	}

	// Dominators at 1 and 3: full cover, and active nodes 1,3 are NOT
	// adjacent — connectivity violation.
	f.active[2] = false
	f.active[1], f.active[3] = true, true
	vs = c.ProbeRecovery()
	if len(vs) != 1 || !strings.Contains(vs[0].Detail, "disconnected") {
		t.Fatalf("want a connectivity violation, got %v", vs)
	}

	// Add node 2 as a bridge: clean.
	f.active[2] = true
	if vs = c.ProbeRecovery(); len(vs) != 0 {
		t.Fatalf("covered+connected overlay flagged: %v", vs)
	}

	// Crash node 4: the shrunken component must still be judged correctly,
	// and the lone remainder is skipped.
	f.down[4] = true
	if vs = c.ProbeRecovery(); len(vs) != 0 {
		t.Fatalf("after crash: %v", vs)
	}

	// No overlay at all in a component of two.
	f2 := newFakeNet(2)
	f2.connect(0, 1)
	c2 := f2.checker(cfg)
	if vs := c2.ProbeRecovery(); len(vs) != 1 || !strings.Contains(vs[0].Detail, "no overlay node") {
		t.Fatalf("want no-overlay violation, got %v", vs)
	}

	// CheckRecovery records what ProbeRecovery reports.
	c2.CheckRecovery()
	if len(c2.Violations()) != 1 {
		t.Fatalf("CheckRecovery did not record: %v", c2.Violations())
	}
}

func TestDownWindowsAndPartitionEras(t *testing.T) {
	f := newFakeNet(3)
	c := f.checker(Config{Validity: true, ValidityRatio: 0.9})
	c.OnDown(1, 10*time.Second)
	c.OnUp(1, 20*time.Second)
	if c.downDuring(1, 0, 5*time.Second) {
		t.Fatal("down before the window")
	}
	if !c.downDuring(1, 15*time.Second, 30*time.Second) {
		t.Fatal("missed an overlapping down window")
	}
	if c.downDuring(1, 25*time.Second, 30*time.Second) {
		t.Fatal("down after recovery")
	}
	// Open-ended window.
	c.OnDown(2, 40*time.Second)
	if !c.downDuring(2, 50*time.Second, 60*time.Second) {
		t.Fatal("missed an open down window")
	}

	// Partition eras: same group throughout vs split.
	c.OnPartition([]int{0, 0, 1}, 30*time.Second)
	c.OnPartition(nil, 50*time.Second)
	if !c.coGrouped(0, 1, 35*time.Second, 45*time.Second) {
		t.Fatal("co-grouped nodes reported split")
	}
	if c.coGrouped(0, 2, 35*time.Second, 45*time.Second) {
		t.Fatal("split nodes reported co-grouped")
	}
	if !c.coGrouped(0, 2, 55*time.Second, 60*time.Second) {
		t.Fatal("healed nodes reported split")
	}
}

func TestFaultLogAndViolationString(t *testing.T) {
	f := newFakeNet(2)
	c := f.checker(DefaultConfig())
	c.OnFault("crash(1)", 5*time.Second)
	c.OnFault("heal", 9*time.Second)
	log := c.FaultLog()
	if len(log) != 2 || !strings.Contains(log[0], "crash(1)") {
		t.Fatalf("fault log = %v", log)
	}
	v := Violation{At: 3 * time.Second, Invariant: "agreement", Detail: "boom"}
	if s := v.String(); !strings.Contains(s, "agreement") || !strings.Contains(s, "boom") {
		t.Fatalf("Violation.String() = %q", s)
	}
	if !DefaultConfig().Enabled() || (Config{}).Enabled() {
		t.Fatal("Enabled() wrong")
	}
}

// TestAtMostOnceRejoinSemantics: re-delivery without a wipe violates; a wipe
// re-arms the allowance exactly once per pre-wipe delivery; dedup must hold
// again for traffic delivered after the rejoin; and a quiescence-old repeat
// is exempt under RedeliveryGrace.
func TestAtMostOnceRejoinSemantics(t *testing.T) {
	cfg := Config{AtMostOnce: true, RedeliveryGrace: 60 * time.Second}
	id := wire.MsgID{Origin: 0, Seq: 1}

	// Plain duplicate: violation.
	f := newFakeNet(3)
	c := f.checker(cfg)
	f.now = 10 * time.Second
	c.OnDeliver(1, id, []byte("p"))
	f.now = 12 * time.Second
	c.OnDeliver(1, id, []byte("p"))
	if got := countByKind(c.Violations(), "at-most-once"); got != 1 {
		t.Fatalf("want 1 at-most-once violation, got %v", c.Violations())
	}
	// Different nodes delivering the same id is not a duplicate.
	f.now = 13 * time.Second
	c.OnDeliver(2, id, []byte("p"))
	if got := countByKind(c.Violations(), "at-most-once"); got != 1 {
		t.Fatalf("cross-node delivery flagged: %v", c.Violations())
	}

	// Deliver → wipe → re-deliver: clean (the wipe erased the filter).
	f = newFakeNet(3)
	c = f.checker(cfg)
	f.now = 10 * time.Second
	c.OnDeliver(1, id, []byte("p"))
	f.now = 15 * time.Second
	c.OnWipe(1, f.now)
	f.now = 18 * time.Second
	c.OnDeliver(1, id, []byte("p"))
	if len(c.Violations()) != 0 {
		t.Fatalf("post-wipe re-delivery flagged: %v", c.Violations())
	}
	// ...but the rejoined node's filter is re-established: repeating the same
	// id again with no further wipe violates.
	f.now = 20 * time.Second
	c.OnDeliver(1, id, []byte("p"))
	if got := countByKind(c.Violations(), "at-most-once"); got != 1 {
		t.Fatalf("post-rejoin duplicate not flagged: %v", c.Violations())
	}

	// A wipe only excuses the node it hit.
	f = newFakeNet(3)
	c = f.checker(cfg)
	f.now = 10 * time.Second
	c.OnDeliver(1, id, []byte("p"))
	f.now = 15 * time.Second
	c.OnWipe(2, f.now)
	f.now = 18 * time.Second
	c.OnDeliver(1, id, []byte("p"))
	if got := countByKind(c.Violations(), "at-most-once"); got != 1 {
		t.Fatalf("other node's wipe excused the duplicate: %v", c.Violations())
	}

	// Quiescence GC: a repeat older than RedeliveryGrace is benign.
	f = newFakeNet(3)
	c = f.checker(cfg)
	f.now = 10 * time.Second
	c.OnDeliver(1, id, []byte("p"))
	f.now = 75 * time.Second // 65s later > 60s grace
	c.OnDeliver(1, id, []byte("p"))
	if len(c.Violations()) != 0 {
		t.Fatalf("quiescence-old repeat flagged: %v", c.Violations())
	}

	// Strict mode (zero grace): the same old repeat violates.
	f = newFakeNet(3)
	c = f.checker(Config{AtMostOnce: true})
	f.now = 10 * time.Second
	c.OnDeliver(1, id, []byte("p"))
	f.now = 75 * time.Second
	c.OnDeliver(1, id, []byte("p"))
	if got := countByKind(c.Violations(), "at-most-once"); got != 1 {
		t.Fatalf("strict mode missed the repeat: %v", c.Violations())
	}

	// Disabled: duplicates pass silently.
	f = newFakeNet(3)
	c = f.checker(Config{})
	c.OnDeliver(1, id, []byte("p"))
	c.OnDeliver(1, id, []byte("p"))
	if len(c.Violations()) != 0 {
		t.Fatalf("disabled check fired: %v", c.Violations())
	}
}

func TestValidityExemptsDisconnectedCluster(t *testing.T) {
	cfg := Config{Validity: true, ValidityRatio: 0.9, ValidityGrace: 10 * time.Second}
	// Two components: 0-1-2 and 3-4. A message from node 0 owes nothing to
	// the far cluster.
	f := newFakeNet(5)
	f.connect(0, 1)
	f.connect(1, 2)
	f.connect(3, 4)
	c := f.checker(cfg)
	id := wire.MsgID{Origin: 0, Seq: 1}
	c.OnInject(id, 0, 20*time.Second)
	c.OnDeliver(1, id, []byte("p"))
	c.OnDeliver(2, id, []byte("p"))
	c.Finish(100 * time.Second)
	if len(c.Violations()) != 0 {
		t.Fatalf("disconnected cluster not exempt: %v", c.Violations())
	}
	// But a missing node inside the origin's own component still counts.
	c = f.checker(cfg)
	c.OnInject(id, 0, 20*time.Second)
	c.OnDeliver(1, id, []byte("p"))
	c.Finish(100 * time.Second)
	if got := countByKind(c.Violations(), "validity"); got != 1 {
		t.Fatalf("want 1 violation for in-component miss, got %v", c.Violations())
	}
}
