package invariant

import (
	"time"

	"bbcast/internal/obsv"
	"bbcast/internal/wire"
)

// observer feeds injections and acceptances from the observability layer
// into a Checker. The checker's other hooks (faults, churn, partitions) stay
// direct calls: they come from the fault plan, not from protocol events.
type observer struct {
	obsv.Nop
	c *Checker
}

// AsObserver adapts c into an event observer; nil for a nil c, so the result
// can be passed straight to obsv.Multi.
func AsObserver(c *Checker) obsv.Observer {
	if c == nil {
		return nil
	}
	return observer{c: c}
}

// OnInject implements obsv.Observer.
func (o observer) OnInject(at time.Duration, node wire.NodeID, id wire.MsgID) {
	o.c.OnInject(id, node, at)
}

// OnAccept implements obsv.Observer.
func (o observer) OnAccept(_ time.Duration, node wire.NodeID, id wire.MsgID, payload []byte, _ wire.Meta) {
	o.c.OnDeliver(node, id, payload)
}

// OnQueueDepth implements obsv.Observer, feeding the state-bounds check.
func (o observer) OnQueueDepth(_ time.Duration, node wire.NodeID, queue obsv.Queue, depth int) {
	o.c.OnQueueSample(node, string(queue), depth)
}

// OnAdaptation implements obsv.Observer, feeding the timer-bounds check.
func (o observer) OnAdaptation(_ time.Duration, node wire.NodeID, timer obsv.AdaptiveTimer, _, new time.Duration) {
	o.c.OnTimerChange(node, string(timer), new)
}
