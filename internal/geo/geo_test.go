package geo

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestPointArithmetic(t *testing.T) {
	p := Point{3, 4}
	if got := p.Norm(); got != 5 {
		t.Fatalf("Norm = %v, want 5", got)
	}
	if got := p.Add(Point{1, 1}); got != (Point{4, 5}) {
		t.Fatalf("Add = %v", got)
	}
	if got := p.Sub(Point{1, 1}); got != (Point{2, 3}) {
		t.Fatalf("Sub = %v", got)
	}
	if got := p.Scale(2); got != (Point{6, 8}) {
		t.Fatalf("Scale = %v", got)
	}
}

func TestDistSymmetric(t *testing.T) {
	a, b := Point{1, 2}, Point{4, 6}
	if a.Dist(b) != b.Dist(a) {
		t.Fatal("Dist not symmetric")
	}
	if a.Dist(b) != 5 {
		t.Fatalf("Dist = %v, want 5", a.Dist(b))
	}
	if a.Dist2(b) != 25 {
		t.Fatalf("Dist2 = %v, want 25", a.Dist2(b))
	}
}

func TestClamp(t *testing.T) {
	cases := []struct{ in, want Point }{
		{Point{-1, 5}, Point{0, 5}},
		{Point{5, -1}, Point{5, 0}},
		{Point{11, 5}, Point{10, 5}},
		{Point{5, 12}, Point{5, 10}},
		{Point{5, 5}, Point{5, 5}},
	}
	for _, c := range cases {
		if got := c.in.Clamp(10, 10); got != c.want {
			t.Errorf("Clamp(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestRectContains(t *testing.T) {
	r := Rect{10, 20}
	if !r.Contains(Point{0, 0}) || !r.Contains(Point{10, 20}) {
		t.Fatal("boundary points should be contained")
	}
	if r.Contains(Point{-0.1, 5}) || r.Contains(Point{5, 20.1}) {
		t.Fatal("outside points should not be contained")
	}
}

func TestGridInsertRemove(t *testing.T) {
	g := NewGrid(Rect{100, 100}, 10)
	g.Insert(1, Point{5, 5})
	if g.Len() != 1 {
		t.Fatalf("Len = %d, want 1", g.Len())
	}
	p, ok := g.Pos(1)
	if !ok || p != (Point{5, 5}) {
		t.Fatalf("Pos = %v,%v", p, ok)
	}
	g.Remove(1)
	if g.Len() != 0 {
		t.Fatal("Remove did not delete")
	}
	if _, ok := g.Pos(1); ok {
		t.Fatal("Pos found removed item")
	}
	g.Remove(1) // no-op
}

func TestGridInsertReplaces(t *testing.T) {
	g := NewGrid(Rect{100, 100}, 10)
	g.Insert(1, Point{5, 5})
	g.Insert(1, Point{95, 95})
	if g.Len() != 1 {
		t.Fatalf("Len = %d, want 1 after re-insert", g.Len())
	}
	near := g.Near(Point{5, 5}, 2, nil)
	if len(near) != 0 {
		t.Fatal("item still found at old location")
	}
	near = g.Near(Point{95, 95}, 2, nil)
	if len(near) != 1 {
		t.Fatal("item not found at new location")
	}
}

func TestGridMoveAcrossCells(t *testing.T) {
	g := NewGrid(Rect{100, 100}, 10)
	g.Insert(7, Point{5, 5})
	g.Move(7, Point{55, 55})
	if got := g.Near(Point{55, 55}, 1, nil); len(got) != 1 || got[0] != 7 {
		t.Fatalf("Near after move = %v", got)
	}
	if got := g.Near(Point{5, 5}, 1, nil); len(got) != 0 {
		t.Fatalf("item remains at old cell: %v", got)
	}
}

func TestGridMoveWithinCell(t *testing.T) {
	g := NewGrid(Rect{100, 100}, 10)
	g.Insert(7, Point{5, 5})
	g.Move(7, Point{6, 6})
	p, _ := g.Pos(7)
	if p != (Point{6, 6}) {
		t.Fatalf("Pos = %v, want {6 6}", p)
	}
	if got := g.Near(Point{6, 6}, 0.5, nil); len(got) != 1 {
		t.Fatalf("Near = %v", got)
	}
}

func TestGridMoveAbsentInserts(t *testing.T) {
	g := NewGrid(Rect{100, 100}, 10)
	g.Move(3, Point{1, 1})
	if g.Len() != 1 {
		t.Fatal("Move of absent id should insert")
	}
}

func TestGridNearEdge(t *testing.T) {
	g := NewGrid(Rect{100, 100}, 10)
	g.Insert(1, Point{0, 0})
	g.Insert(2, Point{100, 100})
	// Query disks that extend outside the area must not panic and must find
	// the boundary items.
	if got := g.Near(Point{0, 0}, 5, nil); len(got) != 1 {
		t.Fatalf("corner query = %v", got)
	}
	if got := g.Near(Point{100, 100}, 5, nil); len(got) != 1 {
		t.Fatalf("far corner query = %v", got)
	}
}

// Property: Near returns exactly the items within radius, per brute force.
func TestQuickGridNearMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	f := func(seed int64, radiusRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		area := Rect{500, 300}
		g := NewGrid(area, 50)
		n := 80
		pts := make(map[uint32]Point, n)
		for i := 0; i < n; i++ {
			p := Point{r.Float64() * area.W, r.Float64() * area.H}
			g.Insert(uint32(i), p)
			pts[uint32(i)] = p
		}
		q := Point{r.Float64() * area.W, r.Float64() * area.H}
		radius := float64(radiusRaw) // 0..255 m
		got := g.Near(q, radius, nil)
		sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
		var want []uint32
		for id, p := range pts {
			if p.Dist(q) <= radius {
				want = append(want, id)
			}
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

// Property: distance satisfies the triangle inequality.
func TestQuickTriangleInequality(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy int16) bool {
		a := Point{float64(ax), float64(ay)}
		b := Point{float64(bx), float64(by)}
		c := Point{float64(cx), float64(cy)}
		return a.Dist(c) <= a.Dist(b)+b.Dist(c)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGridDegenerateCellSize(t *testing.T) {
	g := NewGrid(Rect{10, 10}, 0) // falls back to 1
	g.Insert(1, Point{5, 5})
	if got := g.Near(Point{5, 5}, 1, nil); len(got) != 1 {
		t.Fatalf("Near = %v", got)
	}
}

func TestGridEach(t *testing.T) {
	g := NewGrid(Rect{10, 10}, 5)
	g.Insert(1, Point{1, 1})
	g.Insert(2, Point{9, 9})
	seen := map[uint32]bool{}
	g.Each(func(id uint32, p Point) { seen[id] = true })
	if !seen[1] || !seen[2] || len(seen) != 2 {
		t.Fatalf("Each visited %v", seen)
	}
}

func TestNearOutsideAreaPoints(t *testing.T) {
	// Items inserted slightly outside the nominal area are clamped to border
	// cells and must still be findable.
	g := NewGrid(Rect{100, 100}, 10)
	g.Insert(1, Point{-3, -3})
	got := g.Near(Point{0, 0}, 5, nil)
	if len(got) != 1 {
		t.Fatalf("Near = %v, want the out-of-area item", got)
	}
	if math.IsNaN(g.pos[1].X) {
		t.Fatal("position corrupted")
	}
}
