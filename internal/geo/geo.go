// Package geo provides 2-D geometry primitives and a spatial grid index used
// by the wireless medium for fast neighbourhood queries.
package geo

import "math"

// Point is a position in the plane, in metres.
type Point struct {
	X, Y float64
}

// Add returns p translated by q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns p - q.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Scale returns p scaled by k.
func (p Point) Scale(k float64) Point { return Point{p.X * k, p.Y * k} }

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return math.Sqrt(dx*dx + dy*dy)
}

// Dist2 returns the squared Euclidean distance between p and q. Prefer this
// in hot paths that only compare distances.
func (p Point) Dist2(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return dx*dx + dy*dy
}

// Norm returns the Euclidean length of p viewed as a vector.
func (p Point) Norm() float64 { return math.Sqrt(p.X*p.X + p.Y*p.Y) }

// Clamp returns p clamped into the rectangle [0,w]×[0,h].
func (p Point) Clamp(w, h float64) Point {
	return Point{math.Min(math.Max(p.X, 0), w), math.Min(math.Max(p.Y, 0), h)}
}

// Rect is an axis-aligned area [0,W]×[0,H].
type Rect struct {
	W, H float64
}

// Contains reports whether p lies inside r (inclusive).
func (r Rect) Contains(p Point) bool {
	return p.X >= 0 && p.X <= r.W && p.Y >= 0 && p.Y <= r.H
}

// Grid is a uniform spatial hash over a rectangular area. It maps integer
// item ids to positions and answers range queries in time proportional to the
// number of cells intersecting the query disk.
//
// Cells and positions are dense slices (item ids are expected to be small and
// dense, as node ids are), so queries and moves touch no hash buckets on the
// simulator's hot path.
//
// The zero value is not usable; construct with NewGrid. Grid is not safe for
// concurrent use.
type Grid struct {
	cell    float64
	cols    int
	rows    int
	cells   [][]uint32 // bucket of ids per cell, indexed cy*cols+cx
	pos     []Point    // position per id; valid iff present[id]
	present []bool
	count   int
}

// NewGrid returns a grid over area with the given cell size. Cell size should
// be on the order of the query radius (the transmission range) for best
// performance.
func NewGrid(area Rect, cellSize float64) *Grid {
	if cellSize <= 0 {
		cellSize = 1
	}
	cols := int(area.W/cellSize) + 1
	rows := int(area.H/cellSize) + 1
	if cols < 1 {
		cols = 1
	}
	if rows < 1 {
		rows = 1
	}
	return &Grid{
		cell:  cellSize,
		cols:  cols,
		rows:  rows,
		cells: make([][]uint32, cols*rows),
	}
}

// grow ensures the per-id slices cover id.
func (g *Grid) grow(id uint32) {
	if int(id) < len(g.pos) {
		return
	}
	n := int(id) + 1
	pos := make([]Point, n)
	copy(pos, g.pos)
	g.pos = pos
	present := make([]bool, n)
	copy(present, g.present)
	g.present = present
}

func (g *Grid) cellIndex(p Point) int {
	cx := int(p.X / g.cell)
	cy := int(p.Y / g.cell)
	if cx < 0 {
		cx = 0
	}
	if cx >= g.cols {
		cx = g.cols - 1
	}
	if cy < 0 {
		cy = 0
	}
	if cy >= g.rows {
		cy = g.rows - 1
	}
	return cy*g.cols + cx
}

// Insert places id at p, replacing any previous position for id.
func (g *Grid) Insert(id uint32, p Point) {
	g.grow(id)
	if g.present[id] {
		g.Remove(id)
	}
	g.pos[id] = p
	g.present[id] = true
	g.count++
	ci := g.cellIndex(p)
	g.cells[ci] = append(g.cells[ci], id)
}

// Remove deletes id from the grid. Removing an absent id is a no-op.
func (g *Grid) Remove(id uint32) {
	if int(id) >= len(g.present) || !g.present[id] {
		return
	}
	ci := g.cellIndex(g.pos[id])
	bucket := g.cells[ci]
	for i, v := range bucket {
		if v == id {
			bucket[i] = bucket[len(bucket)-1]
			g.cells[ci] = bucket[:len(bucket)-1]
			break
		}
	}
	g.present[id] = false
	g.count--
}

// Move updates id's position. It is equivalent to Remove+Insert but cheaper
// when the item stays in the same cell.
func (g *Grid) Move(id uint32, p Point) {
	if int(id) >= len(g.present) || !g.present[id] {
		g.Insert(id, p)
		return
	}
	old := g.pos[id]
	if g.cellIndex(old) == g.cellIndex(p) {
		g.pos[id] = p
		return
	}
	g.Remove(id)
	g.Insert(id, p)
}

// Pos returns the position of id and whether it is present.
func (g *Grid) Pos(id uint32) (Point, bool) {
	if int(id) >= len(g.present) || !g.present[id] {
		return Point{}, false
	}
	return g.pos[id], true
}

// Len reports the number of items in the grid.
func (g *Grid) Len() int { return g.count }

// Near appends to dst the ids of all items within radius r of p (excluding
// none; callers filter self). The result order is deterministic only up to
// grid bucket order; callers that need determinism should sort.
func (g *Grid) Near(p Point, r float64, dst []uint32) []uint32 {
	r2 := r * r
	minCX := int((p.X - r) / g.cell)
	maxCX := int((p.X + r) / g.cell)
	minCY := int((p.Y - r) / g.cell)
	maxCY := int((p.Y + r) / g.cell)
	if minCX < 0 {
		minCX = 0
	}
	if minCY < 0 {
		minCY = 0
	}
	if maxCX >= g.cols {
		maxCX = g.cols - 1
	}
	if maxCY >= g.rows {
		maxCY = g.rows - 1
	}
	for cy := minCY; cy <= maxCY; cy++ {
		for cx := minCX; cx <= maxCX; cx++ {
			for _, id := range g.cells[cy*g.cols+cx] {
				if g.pos[id].Dist2(p) <= r2 {
					dst = append(dst, id)
				}
			}
		}
	}
	return dst
}

// Each calls fn for every (id, position) pair, in ascending id order.
func (g *Grid) Each(fn func(id uint32, p Point)) {
	for id, ok := range g.present {
		if ok {
			fn(uint32(id), g.pos[id])
		}
	}
}
