package trace

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// sampleEvents builds a small dissemination: node 1 injects 1/1 and
// transmits frame 1; node 2 accepts off frame 1 and relays as frame 2;
// node 3 accepts off frame 2 via gossip recovery; node 4 is present (role
// event) but never delivers; node 2 also sees a duplicate (suppressed).
func sampleEvents() []Event {
	ms := func(n int) int64 { return int64(time.Duration(n) * time.Millisecond) }
	return []Event{
		{T: ms(10), Node: 1, Type: TypeInject, Msg: "1/1"},
		{T: ms(10), Node: 1, Type: TypeAccept, Msg: "1/1", Cause: "origin"},
		{T: ms(12), Node: 1, Type: TypeTx, Kind: "data", Msg: "1/1", Frame: 1, Hops: 1, Cause: "origin"},
		{T: ms(20), Node: 2, Type: TypeRx, Kind: "data", Msg: "1/1", Frame: 1, Hops: 1, Cause: "origin"},
		{T: ms(20), Node: 2, Type: TypeAccept, Msg: "1/1", Frame: 1, Hops: 1, Cause: "origin"},
		{T: ms(25), Node: 2, Type: TypeTx, Kind: "data", Msg: "1/1", Frame: 2, Parent: 1, Hops: 2, Cause: "gossip-recovery", Rec: true},
		{T: ms(40), Node: 3, Type: TypeRx, Kind: "data", Msg: "1/1", Frame: 2, Hops: 2, Rec: true},
		{T: ms(40), Node: 3, Type: TypeAccept, Msg: "1/1", Frame: 2, Hops: 2, Rec: true, Cause: "gossip-recovery"},
		{T: ms(41), Node: 2, Type: TypeRx, Kind: "data", Msg: "1/1", Frame: 1},
		{T: ms(41), Node: 2, Type: TypeSuppress, Msg: "1/1", Frame: 1},
		{T: ms(50), Node: 4, Type: TypeRole, Detail: "dominator"},
		{T: ms(60), Node: 4, Type: TypeTx, Kind: "request", Msg: "1/1", Cause: "request"},
	}
}

func TestBuildLineagePhasesAndAttribution(t *testing.T) {
	l := BuildLineage(sampleEvents(), DecodeStats{FirstBadOffset: -1})
	if l.Nodes != 4 {
		t.Fatalf("Nodes = %d, want 4", l.Nodes)
	}
	m := l.Message("1/1")
	if m == nil {
		t.Fatal("message 1/1 missing")
	}
	if m.Origin != 1 || m.Injected != 10*time.Millisecond {
		t.Fatalf("origin/inject = %d/%s", m.Origin, m.Injected)
	}
	if m.FirstRelay != 15*time.Millisecond {
		t.Fatalf("FirstRelay = %s, want 15ms (frame 2 at 25ms - inject 10ms)", m.FirstRelay)
	}
	if m.Last != 30*time.Millisecond {
		t.Fatalf("Last = %s, want 30ms (accept at 40ms)", m.Last)
	}
	if m.Accepts != 3 {
		t.Fatalf("Accepts = %d, want 3 (origin included)", m.Accepts)
	}
	if m.DataPath != 1 || m.Recovered != 1 {
		t.Fatalf("attribution = data %d / recovered %d, want 1/1", m.DataPath, m.Recovered)
	}
	if m.Suppressed != 1 {
		t.Fatalf("Suppressed = %d, want 1", m.Suppressed)
	}
	if m.HopDist[1] != 1 || m.HopDist[2] != 1 || m.HopMax != 2 {
		t.Fatalf("hop dist = %v max %d", m.HopDist, m.HopMax)
	}
	if len(m.Frames) != 2 || m.Frames[0].Frame != 1 || m.Frames[1].Parent != 1 {
		t.Fatalf("frames = %+v", m.Frames)
	}
	if m.Frames[0].RxCount != 2 || m.Frames[0].AcceptCount != 1 {
		t.Fatalf("frame 1 rx/accepts = %d/%d, want 2/1", m.Frames[0].RxCount, m.Frames[0].AcceptCount)
	}
	if len(m.Losses) != 1 || m.Losses[0].Node != 4 {
		t.Fatalf("losses = %+v, want node 4", m.Losses)
	}
	ls := m.Losses[0]
	if ls.Requests != 1 || ls.DataRx != 0 {
		t.Fatalf("loss site = %+v, want 1 request, 0 data rx", ls)
	}
	if ls.LastHolder != 2 || ls.LastHolderAt != 25*time.Millisecond {
		t.Fatalf("last holder = %d @ %s, want 2 @ 25ms", ls.LastHolder, ls.LastHolderAt)
	}
}

func TestLineageReportOrderIndependent(t *testing.T) {
	evs := sampleEvents()
	l1 := BuildLineage(evs, DecodeStats{FirstBadOffset: -1})
	// Reverse the event order: the report must not change.
	rev := make([]Event, len(evs))
	for i, ev := range evs {
		rev[len(evs)-1-i] = ev
	}
	l2 := BuildLineage(rev, DecodeStats{FirstBadOffset: -1})
	if l1.Report() != l2.Report() {
		t.Fatalf("report depends on event order:\n--- forward:\n%s--- reversed:\n%s", l1.Report(), l2.Report())
	}
}

func TestLineageExplain(t *testing.T) {
	l := BuildLineage(sampleEvents(), DecodeStats{FirstBadOffset: -1})
	got := l.Explain("1/1", 3)
	if !strings.Contains(got, "delivered") || !strings.Contains(got, "gossip recovery") {
		t.Fatalf("explain delivered:\n%s", got)
	}
	if !strings.Contains(got, "frame 2") || !strings.Contains(got, "frame 1") {
		t.Fatalf("explain did not walk the parent chain:\n%s", got)
	}
	got = l.Explain("1/1", 4)
	if !strings.Contains(got, "never delivered") || !strings.Contains(got, "recovery request") {
		t.Fatalf("explain non-deliverer:\n%s", got)
	}
	if !strings.Contains(got, "last holder") {
		t.Fatalf("explain missing loss localization:\n%s", got)
	}
	if got := l.Explain("9/9", 1); !strings.Contains(got, "not present") {
		t.Fatalf("explain unknown message:\n%s", got)
	}
}

func TestLineageChromeTraceDeterministic(t *testing.T) {
	l := BuildLineage(sampleEvents(), DecodeStats{FirstBadOffset: -1})
	var a, b bytes.Buffer
	if err := l.ChromeTrace(&a); err != nil {
		t.Fatal(err)
	}
	if err := l.ChromeTrace(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("ChromeTrace output is not deterministic")
	}
	if !strings.Contains(a.String(), `"traceEvents"`) || !strings.Contains(a.String(), `"ph":"X"`) {
		t.Fatalf("chrome export malformed:\n%s", a.String())
	}
}

// TestLineageDegradesOnTruncatedTrace serializes a run, truncates it
// mid-line, and checks the lineage still reports what survived, with the
// damage called out instead of hidden.
func TestLineageDegradesOnTruncatedTrace(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for _, ev := range sampleEvents() {
		w.Emit(ev)
	}
	full := buf.Bytes()
	// Cut inside the final line.
	cut := bytes.LastIndexByte(full[:len(full)-1], '\n') + 5
	events, stats, err := Decode(bytes.NewReader(full[:cut]))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Undecodable != 1 {
		t.Fatalf("Undecodable = %d, want 1", stats.Undecodable)
	}
	wantOffset := int64(bytes.LastIndexByte(full[:len(full)-1], '\n') + 1)
	if stats.FirstBadOffset != wantOffset {
		t.Fatalf("FirstBadOffset = %d, want %d", stats.FirstBadOffset, wantOffset)
	}
	l := BuildLineage(events, stats)
	rep := l.Report()
	if !strings.Contains(rep, "msg 1/1") {
		t.Fatalf("truncated lineage lost the message:\n%s", rep)
	}
	if !strings.Contains(rep, "warning: 1 undecodable") {
		t.Fatalf("truncated lineage did not surface the damage:\n%s", rep)
	}
}
