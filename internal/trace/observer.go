package trace

import (
	"strconv"
	"time"

	"bbcast/internal/obsv"
	"bbcast/internal/overlay"
	"bbcast/internal/wire"
)

// Observer writes protocol events to a Writer as trace records. Signature
// verifications and queue-depth samples are deliberately not traced: they
// are high-volume distribution data, which the metrics registry summarizes.
type Observer struct {
	obsv.Nop
	w *Writer
}

var _ obsv.Observer = (*Observer)(nil)

// NewObserver adapts w into an event observer. w must be non-nil.
func NewObserver(w *Writer) *Observer {
	return &Observer{w: w}
}

// causal copies a frame's lineage metadata into a trace record.
func causal(ev Event, meta wire.Meta) Event {
	ev.Frame = meta.Frame
	ev.Parent = meta.Parent
	ev.Hops = meta.Hops
	ev.Cause = meta.Cause.String()
	ev.Digest = meta.Digest
	ev.Rec = meta.Recovered
	return ev
}

// OnPacketTx implements obsv.Observer.
func (o *Observer) OnPacketTx(at time.Duration, node wire.NodeID, kind wire.Kind, id wire.MsgID, meta wire.Meta) {
	o.w.Emit(causal(Event{T: At(at), Node: node, Type: TypeTx, Kind: kind.String(), Msg: id.String()}, meta))
}

// OnPacketRx implements obsv.Observer.
func (o *Observer) OnPacketRx(at time.Duration, node wire.NodeID, kind wire.Kind, id wire.MsgID, meta wire.Meta) {
	o.w.Emit(causal(Event{T: At(at), Node: node, Type: TypeRx, Kind: kind.String(), Msg: id.String()}, meta))
}

// OnInject implements obsv.Observer.
func (o *Observer) OnInject(at time.Duration, node wire.NodeID, id wire.MsgID) {
	o.w.Emit(Event{T: At(at), Node: node, Type: TypeInject, Msg: id.String()})
}

// OnAccept implements obsv.Observer.
func (o *Observer) OnAccept(at time.Duration, node wire.NodeID, id wire.MsgID, _ []byte, meta wire.Meta) {
	o.w.Emit(causal(Event{T: At(at), Node: node, Type: TypeAccept, Msg: id.String()}, meta))
}

// OnForwardSuppressed implements obsv.Observer.
func (o *Observer) OnForwardSuppressed(at time.Duration, node wire.NodeID, id wire.MsgID, meta wire.Meta) {
	o.w.Emit(causal(Event{T: At(at), Node: node, Type: TypeSuppress, Msg: id.String()}, meta))
}

// OnRoleChange implements obsv.Observer.
func (o *Observer) OnRoleChange(at time.Duration, node wire.NodeID, role overlay.Role) {
	o.w.Emit(Event{T: At(at), Node: node, Type: TypeRole, Detail: role.String()})
}

// OnSuspicion implements obsv.Observer.
func (o *Observer) OnSuspicion(at time.Duration, node, subject wire.NodeID, detector obsv.Detector, raised bool) {
	detail := string(detector) + ":raised"
	if !raised {
		detail = string(detector) + ":cleared"
	}
	o.w.Emit(Event{T: At(at), Node: node, Type: TypeSuspect, Peer: subject, Detail: detail})
}

// OnSync implements obsv.Observer.
func (o *Observer) OnSync(at time.Duration, node, peer wire.NodeID, event obsv.SyncEvent, entries, _ int) {
	o.w.Emit(Event{T: At(at), Node: node, Type: TypeSync, Peer: peer,
		Detail: string(event) + ":" + strconv.Itoa(entries)})
}

// OnRejoin implements obsv.Observer.
func (o *Observer) OnRejoin(at time.Duration, node wire.NodeID, restored int) {
	o.w.Emit(Event{T: At(at), Node: node, Type: TypeRejoin,
		Detail: "restored:" + strconv.Itoa(restored)})
}
