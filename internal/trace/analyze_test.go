package trace

import (
	"fmt"
	"strings"
	"testing"
	"time"
)

func sampleTrace(t *testing.T) string {
	t.Helper()
	var b strings.Builder
	w := NewWriter(&b)
	w.Emit(Event{T: At(time.Second), Node: 0, Type: TypeInject, Msg: "0/1"})
	w.Emit(Event{T: At(time.Second), Node: 0, Type: TypeTx, Kind: "data", Msg: "0/1"})
	w.Emit(Event{T: At(1100 * time.Millisecond), Node: 1, Type: TypeAccept, Msg: "0/1"})
	w.Emit(Event{T: At(1200 * time.Millisecond), Node: 2, Type: TypeAccept, Msg: "0/1"})
	w.Emit(Event{T: At(1900 * time.Millisecond), Node: 3, Type: TypeAccept, Msg: "0/1"})
	w.Emit(Event{T: At(2 * time.Second), Node: 5, Type: TypeRole, Detail: "dominator"})
	w.Emit(Event{T: At(3 * time.Second), Node: 5, Type: TypeRole, Detail: "passive"})
	w.Emit(Event{T: At(4 * time.Second), Node: 1, Type: TypeTx, Kind: "gossip"})
	return b.String()
}

func TestAnalyzeCounts(t *testing.T) {
	a, err := Analyze(strings.NewReader(sampleTrace(t)))
	if err != nil {
		t.Fatal(err)
	}
	if a.Events != 8 {
		t.Fatalf("events = %d", a.Events)
	}
	if a.TxByKind["data"] != 1 || a.TxByKind["gossip"] != 1 {
		t.Fatalf("tx = %v", a.TxByKind)
	}
	if len(a.Messages) != 1 {
		t.Fatalf("messages = %d", len(a.Messages))
	}
	m := a.Messages[0]
	if m.Msg != "0/1" || m.Accepts != 3 {
		t.Fatalf("message = %+v", m)
	}
	if m.TimeTo50 != 200*time.Millisecond {
		t.Fatalf("t50 = %v", m.TimeTo50)
	}
	if m.Last != 900*time.Millisecond {
		t.Fatalf("last = %v", m.Last)
	}
	if a.RoleChanges["5"] != 2 {
		t.Fatalf("role changes = %v", a.RoleChanges)
	}
}

func TestAnalyzeSkipsGarbageLines(t *testing.T) {
	in := sampleTrace(t) + "not json\n{\"broken\n"
	a, err := Analyze(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if a.Events != 8 {
		t.Fatalf("garbage lines counted as events: %d", a.Events)
	}
}

func TestSummaryRenders(t *testing.T) {
	a, err := Analyze(strings.NewReader(sampleTrace(t)))
	if err != nil {
		t.Fatal(err)
	}
	out := a.Summary()
	for _, want := range []string{"events: 8", "data=1", "messages: 1", "0/1", "role changes: 2"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
}

func TestAnalyzeEmpty(t *testing.T) {
	a, err := Analyze(strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	if a.Events != 0 || len(a.Messages) != 0 {
		t.Fatalf("empty trace produced %+v", a)
	}
	if !strings.Contains(a.Summary(), "events: 0") {
		t.Fatal("empty summary broken")
	}
}

func TestAnalyzeFaultCorrelation(t *testing.T) {
	var lines strings.Builder
	// 5 accepts in the 10s before the fault, 2 after.
	sec := int64(time.Second)
	for _, at := range []int64{22, 24, 25, 27, 29, 31, 33} {
		fmt.Fprintf(&lines, `{"t":%d,"node":1,"type":"accept","msg":"0/1"}`+"\n", at*sec)
	}
	fmt.Fprintf(&lines, `{"t":%d,"type":"fault","detail":"crash(7)"}`+"\n", 30*sec)
	fmt.Fprintf(&lines, `{"t":%d,"type":"fault","detail":"heal"}`+"\n", 60*sec)
	a, err := Analyze(strings.NewReader(lines.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Faults) != 2 {
		t.Fatalf("faults = %v", a.Faults)
	}
	f := a.Faults[0]
	if f.Name != "crash(7)" || f.At != 30*time.Second {
		t.Fatalf("fault[0] = %+v", f)
	}
	if f.AcceptsBefore != 5 || f.AcceptsAfter != 2 {
		t.Fatalf("correlation = before %d after %d, want 5/2", f.AcceptsBefore, f.AcceptsAfter)
	}
	if h := a.Faults[1]; h.AcceptsBefore != 0 || h.AcceptsAfter != 0 {
		t.Fatalf("quiet fault shows accepts: %+v", h)
	}
	out := a.Summary()
	if !strings.Contains(out, "faults: 2") || !strings.Contains(out, "crash(7)") {
		t.Fatalf("summary missing fault section:\n%s", out)
	}
}
