package trace

// Tests for the analysis of the observability event types: receptions and
// per-kind reach (the loss estimator) and suspicion lifecycles.

import (
	"strings"
	"testing"
	"time"

	"bbcast/internal/wire"
)

func lossTrace(t *testing.T) string {
	t.Helper()
	var b strings.Builder
	w := NewWriter(&b)
	// Two data tx reaching 2+1 receivers; two gossip tx reaching 4+4:
	// data reach 1.5, gossip reach 4 — data is being lost preferentially.
	w.Emit(Event{T: At(time.Second), Node: 0, Type: TypeTx, Kind: "data", Msg: "0/1"})
	w.Emit(Event{T: At(time.Second), Node: 1, Type: TypeRx, Kind: "data", Msg: "0/1"})
	w.Emit(Event{T: At(time.Second), Node: 2, Type: TypeRx, Kind: "data", Msg: "0/1"})
	w.Emit(Event{T: At(2 * time.Second), Node: 1, Type: TypeTx, Kind: "data", Msg: "0/1"})
	w.Emit(Event{T: At(2 * time.Second), Node: 3, Type: TypeRx, Kind: "data", Msg: "0/1"})
	for i := 0; i < 2; i++ {
		w.Emit(Event{T: At(3 * time.Second), Node: 0, Type: TypeTx, Kind: "gossip"})
		for n := 1; n <= 4; n++ {
			w.Emit(Event{T: At(3 * time.Second), Node: wire.NodeID(n), Type: TypeRx, Kind: "gossip"})
		}
	}
	// A mute suspicion held for 10s, one still standing, one trust raise.
	w.Emit(Event{T: At(5 * time.Second), Node: 1, Peer: 7, Type: TypeSuspect, Detail: "mute:raised"})
	w.Emit(Event{T: At(15 * time.Second), Node: 1, Peer: 7, Type: TypeSuspect, Detail: "mute:cleared"})
	w.Emit(Event{T: At(6 * time.Second), Node: 2, Peer: 8, Type: TypeSuspect, Detail: "mute:raised"})
	w.Emit(Event{T: At(7 * time.Second), Node: 3, Peer: 9, Type: TypeSuspect, Detail: "trust:raised"})
	if err := w.Err(); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

func TestAnalyzeReachEstimatesLoss(t *testing.T) {
	a, err := Analyze(strings.NewReader(lossTrace(t)))
	if err != nil {
		t.Fatal(err)
	}
	if a.RxByKind["data"] != 3 || a.RxByKind["gossip"] != 8 {
		t.Fatalf("rx = %v", a.RxByKind)
	}
	if a.Reach["data"] != 1.5 || a.Reach["gossip"] != 4 {
		t.Fatalf("reach = %v", a.Reach)
	}
	out := a.Summary()
	if !strings.Contains(out, "receptions: data=3 gossip=8") {
		t.Fatalf("summary missing receptions:\n%s", out)
	}
	// data reaches 1.5/4 of the best kind: a 62% shortfall flagged inline.
	if !strings.Contains(out, "data=1.50 (-62%)") {
		t.Fatalf("summary missing loss annotation:\n%s", out)
	}
}

func TestAnalyzeSuspicionLifecycles(t *testing.T) {
	a, err := Analyze(strings.NewReader(lossTrace(t)))
	if err != nil {
		t.Fatal(err)
	}
	mute := a.Suspicions["mute"]
	if mute.Raised != 2 || mute.Cleared != 1 || mute.Active != 1 {
		t.Fatalf("mute = %+v", mute)
	}
	if mute.MeanDuration != 10*time.Second {
		t.Fatalf("mute mean = %v, want 10s", mute.MeanDuration)
	}
	trust := a.Suspicions["trust"]
	if trust.Raised != 1 || trust.Cleared != 0 || trust.Active != 1 {
		t.Fatalf("trust = %+v", trust)
	}
	out := a.Summary()
	if !strings.Contains(out, "suspicions:") || !strings.Contains(out, "mean-held=10s") {
		t.Fatalf("summary missing suspicion block:\n%s", out)
	}
}

func TestAnalyzeDuplicateRaiseKeepsFirstStart(t *testing.T) {
	var b strings.Builder
	w := NewWriter(&b)
	w.Emit(Event{T: At(1 * time.Second), Node: 1, Peer: 7, Type: TypeSuspect, Detail: "mute:raised"})
	w.Emit(Event{T: At(5 * time.Second), Node: 1, Peer: 7, Type: TypeSuspect, Detail: "mute:raised"})
	w.Emit(Event{T: At(11 * time.Second), Node: 1, Peer: 7, Type: TypeSuspect, Detail: "mute:cleared"})
	w.Emit(Event{T: At(12 * time.Second), Node: 1, Peer: 7, Type: TypeSuspect, Detail: "mute:cleared"})
	a, err := Analyze(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	mute := a.Suspicions["mute"]
	if mute.Raised != 2 || mute.Cleared != 2 || mute.Active != 0 {
		t.Fatalf("mute = %+v", mute)
	}
	// The refresh at 5s must not restart the clock; the second clear has no
	// standing suspicion and contributes nothing.
	if mute.MeanDuration != 10*time.Second {
		t.Fatalf("mean = %v, want 10s from first raise", mute.MeanDuration)
	}
}

func TestParseSuspectDetail(t *testing.T) {
	cases := []struct {
		in       string
		detector string
		raised   bool
		ok       bool
	}{
		{"mute:raised", "mute", true, true},
		{"trust:cleared", "trust", false, true},
		{"raised", "", false, false},
		{":raised", "", false, false},
		{"mute:unknown", "", false, false},
		{"", "", false, false},
	}
	for _, c := range cases {
		d, raised, ok := parseSuspectDetail(c.in)
		if d != c.detector || raised != c.raised || ok != c.ok {
			t.Fatalf("parseSuspectDetail(%q) = %q/%v/%v, want %q/%v/%v",
				c.in, d, raised, ok, c.detector, c.raised, c.ok)
		}
	}
}
