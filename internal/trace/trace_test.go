package trace

import (
	"bufio"
	"encoding/json"
	"errors"
	"strings"
	"testing"
	"time"

	"bbcast/internal/wire"
)

func TestWriterEmitsJSONLines(t *testing.T) {
	var b strings.Builder
	w := NewWriter(&b)
	w.Emit(Event{T: At(time.Second), Node: 3, Type: TypeTx, Kind: "data", Msg: "1/2"})
	w.Emit(Event{T: At(2 * time.Second), Node: 4, Type: TypeAccept, Msg: "1/2"})
	if w.Count() != 2 {
		t.Fatalf("Count = %d", w.Count())
	}
	scanner := bufio.NewScanner(strings.NewReader(b.String()))
	var events []Event
	for scanner.Scan() {
		var ev Event
		if err := json.Unmarshal(scanner.Bytes(), &ev); err != nil {
			t.Fatalf("line not JSON: %v", err)
		}
		events = append(events, ev)
	}
	if len(events) != 2 {
		t.Fatalf("parsed %d events", len(events))
	}
	if events[0].Type != TypeTx || events[0].Node != 3 || events[0].Kind != "data" {
		t.Fatalf("event 0 = %+v", events[0])
	}
	if events[1].T != int64(2*time.Second) {
		t.Fatalf("event 1 timestamp = %d", events[1].T)
	}
}

func TestNilWriterSafe(t *testing.T) {
	var w *Writer
	w.Emit(Event{Node: wire.NodeID(1)}) // must not panic
}

func TestOmitEmptyFields(t *testing.T) {
	var b strings.Builder
	NewWriter(&b).Emit(Event{T: 1, Node: 2, Type: TypeRole, Detail: "dominator"})
	line := b.String()
	if strings.Contains(line, `"kind"`) || strings.Contains(line, `"msg"`) {
		t.Fatalf("empty fields not omitted: %s", line)
	}
	if !strings.Contains(line, `"detail":"dominator"`) {
		t.Fatalf("detail missing: %s", line)
	}
}

// failAfter errors every write past the first n.
type failAfter struct {
	n     int
	wrote int
}

func (f *failAfter) Write(p []byte) (int, error) {
	if f.wrote >= f.n {
		return 0, errors.New("disk full")
	}
	f.wrote++
	return len(p), nil
}

func TestWriterRetainsFirstError(t *testing.T) {
	w := NewWriter(&failAfter{n: 1})
	w.Emit(Event{Type: TypeTx})
	if w.Err() != nil {
		t.Fatalf("premature error: %v", w.Err())
	}
	w.Emit(Event{Type: TypeTx}) // fails
	w.Emit(Event{Type: TypeTx}) // fails too; first error sticks
	if w.Err() == nil || !strings.Contains(w.Err().Error(), "disk full") {
		t.Fatalf("Err = %v, want the first write error", w.Err())
	}
	if w.Count() != 1 {
		t.Fatalf("Count = %d, want 1 (failed emits are dropped)", w.Count())
	}
	var nilW *Writer
	if nilW.Err() != nil {
		t.Fatal("nil writer Err should be nil")
	}
}

// TestWriterNoSilentDrops checks the accounting contract a lossy-trace
// warning depends on: every Emit either increments Count or sets Err, so
// Count == attempts exactly when Err is nil. A drop can never hide.
func TestWriterNoSilentDrops(t *testing.T) {
	sink := &failAfter{n: 3}
	w := NewWriter(sink)
	attempts := 10
	for i := 0; i < attempts; i++ {
		w.Emit(Event{Type: TypeTx, T: int64(i)})
		if w.Err() == nil && w.Count() != i+1 {
			t.Fatalf("silent drop: %d attempts, Count %d, Err nil", i+1, w.Count())
		}
	}
	if w.Err() == nil {
		t.Fatal("failing sink never surfaced through Err")
	}
	if w.Count() != 3 {
		t.Fatalf("Count = %d, want the 3 successful writes", w.Count())
	}
}

// shortWriter accepts only half of every write — a blocking/backpressured
// sink as seen by the encoder.
type shortWriter struct{}

func (shortWriter) Write(p []byte) (int, error) { return len(p) / 2, nil }

func TestWriterShortWriteSetsErr(t *testing.T) {
	w := NewWriter(shortWriter{})
	w.Emit(Event{Type: TypeAccept, Msg: "1/1"})
	if w.Err() == nil {
		t.Fatal("short write did not set Err — the trace would be silently corrupt")
	}
	if w.Count() != 0 {
		t.Fatalf("Count = %d, want 0", w.Count())
	}
}
