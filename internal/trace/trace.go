// Package trace records structured simulation events as JSON lines, for
// offline analysis and debugging of protocol runs (who transmitted what
// when, when messages were accepted, how overlay roles evolved).
package trace

import (
	"encoding/json"
	"io"
	"time"

	"bbcast/internal/wire"
)

// Type classifies events.
type Type string

// Event types.
const (
	// TypeTx is a frame put on the air.
	TypeTx Type = "tx"
	// TypeAccept is an application-level message acceptance.
	TypeAccept Type = "accept"
	// TypeRole is an overlay role change.
	TypeRole Type = "role"
	// TypeInject is a workload origination.
	TypeInject Type = "inject"
	// TypeFault is a fault-plan event firing (Detail carries the event
	// name, e.g. "crash(12)"). Fault events are network-wide, so the
	// Node field is meaningless for them.
	TypeFault Type = "fault"
)

// Event is one trace record.
type Event struct {
	// T is the virtual time in nanoseconds.
	T int64 `json:"t"`
	// Node is the acting node.
	Node wire.NodeID `json:"node"`
	// Type classifies the event.
	Type Type `json:"type"`
	// Kind is the packet kind for tx events.
	Kind string `json:"kind,omitempty"`
	// Msg is the message id ("origin/seq") where applicable.
	Msg string `json:"msg,omitempty"`
	// Detail carries event-specific text (e.g. the new role).
	Detail string `json:"detail,omitempty"`
}

// Writer serializes events as JSON lines. Not safe for concurrent use (the
// simulator is single-threaded).
type Writer struct {
	enc *json.Encoder
	n   int
}

// NewWriter wraps w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{enc: json.NewEncoder(w)}
}

// Emit writes one event. Encoding errors are swallowed after the first (a
// trace must never abort a run); Err-free operation can be checked by
// comparing Count against expectations.
func (t *Writer) Emit(ev Event) {
	if t == nil {
		return
	}
	if err := t.enc.Encode(ev); err == nil {
		t.n++
	}
}

// Count reports how many events were written successfully.
func (t *Writer) Count() int { return t.n }

// At converts a virtual time to the event timestamp field.
func At(d time.Duration) int64 { return int64(d) }
