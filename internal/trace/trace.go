// Package trace records structured simulation events as JSON lines, for
// offline analysis and debugging of protocol runs (who transmitted what
// when, when messages were accepted, how overlay roles evolved).
package trace

import (
	"encoding/json"
	"io"
	"time"

	"bbcast/internal/wire"
)

// Type classifies events.
type Type string

// Event types.
const (
	// TypeTx is a frame put on the air.
	TypeTx Type = "tx"
	// TypeRx is a frame delivered to a node's protocol.
	TypeRx Type = "rx"
	// TypeAccept is an application-level message acceptance.
	TypeAccept Type = "accept"
	// TypeSuppress is a redundant data frame suppressed instead of
	// forwarded (the receiver already held or had delivered the message).
	TypeSuppress Type = "suppress"
	// TypeRole is an overlay role change.
	TypeRole Type = "role"
	// TypeInject is a workload origination.
	TypeInject Type = "inject"
	// TypeSuspect is a suspicion transition: Node's detector started or
	// stopped suspecting Peer (Detail is "<detector>:raised" or
	// "<detector>:cleared").
	TypeSuspect Type = "suspect"
	// TypeFault is a fault-plan event firing (Detail carries the event
	// name, e.g. "crash(12)"). Fault events are network-wide, so the
	// Node field is meaningless for them.
	TypeFault Type = "fault"
	// TypeSync is a catch-up sync action: Node requested, served, applied,
	// or abandoned a bulk transfer involving Peer (Detail is
	// "<event>:<entries>").
	TypeSync Type = "sync"
	// TypeRejoin is an amnesiac rejoin: Node's volatile state was wiped and
	// re-initialized (Detail is "restored:<n>" dedup tombstones recovered
	// from the durable store).
	TypeRejoin Type = "rejoin"
)

// Event is one trace record.
type Event struct {
	// T is the virtual time in nanoseconds.
	T int64 `json:"t"`
	// Node is the acting node.
	Node wire.NodeID `json:"node"`
	// Type classifies the event.
	Type Type `json:"type"`
	// Kind is the packet kind for tx/rx events.
	Kind string `json:"kind,omitempty"`
	// Msg is the message id ("origin/seq") where applicable.
	Msg string `json:"msg,omitempty"`
	// Peer is the other node involved (the subject of a suspect event).
	Peer wire.NodeID `json:"peer,omitempty"`
	// Detail carries event-specific text (e.g. the new role).
	Detail string `json:"detail,omitempty"`

	// Causal correlation (tx/rx/accept/suppress events). Frame is the
	// transmission's unique id; Parent is the frame that caused it (0 for
	// origin sends); Cause tags why the frame was sent; Hops and Digest
	// describe data frames; Rec marks payloads repaired by gossip recovery
	// at some hop.
	Frame  uint64 `json:"frame,omitempty"`
	Parent uint64 `json:"parent,omitempty"`
	Hops   uint32 `json:"hops,omitempty"`
	Cause  string `json:"cause,omitempty"`
	Digest uint64 `json:"digest,omitempty"`
	Rec    bool   `json:"rec,omitempty"`
}

// Writer serializes events as JSON lines. Not safe for concurrent use (the
// simulator is single-threaded).
type Writer struct {
	enc *json.Encoder
	n   int
	err error
}

// NewWriter wraps w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{enc: json.NewEncoder(fullWriter{w})}
}

// fullWriter turns short writes into io.ErrShortWrite. encoding/json ignores
// the byte count its sink returns, so without this a backpressured sink that
// accepts partial writes would corrupt the trace with no error recorded in
// Err — a silent drop.
type fullWriter struct{ w io.Writer }

func (f fullWriter) Write(p []byte) (int, error) {
	n, err := f.w.Write(p)
	if err == nil && n < len(p) {
		err = io.ErrShortWrite
	}
	return n, err
}

// Emit writes one event. Encoding errors never abort a run: the event is
// dropped and the first error is retained for Err.
func (t *Writer) Emit(ev Event) {
	if t == nil {
		return
	}
	if err := t.enc.Encode(ev); err != nil {
		if t.err == nil {
			t.err = err
		}
		return
	}
	t.n++
}

// Count reports how many events were written successfully.
func (t *Writer) Count() int { return t.n }

// Err returns the first encoding error, if any — a non-nil Err means the
// trace is lossy and downstream analysis may be incomplete.
func (t *Writer) Err() error {
	if t == nil {
		return nil
	}
	return t.err
}

// At converts a virtual time to the event timestamp field.
func At(d time.Duration) int64 { return int64(d) }
