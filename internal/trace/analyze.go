package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// MessageStats summarizes one message's propagation through a trace.
type MessageStats struct {
	Msg      string
	Injected time.Duration
	Accepts  int
	// TimeTo50 and TimeTo95 are the delays until half / 95% of the final
	// acceptance count was reached.
	TimeTo50 time.Duration
	TimeTo95 time.Duration
	// Last is the delay of the final acceptance.
	Last time.Duration
}

// FaultStat is one fault-plan event with the acceptance rate around it, so
// a delivery dip can be read off next to the fault that caused it.
type FaultStat struct {
	At   time.Duration
	Name string
	// AcceptsBefore and AcceptsAfter count application-level acceptances in
	// the faultWindow preceding and following the event.
	AcceptsBefore int
	AcceptsAfter  int
}

// faultWindow is the correlation window around each fault event.
const faultWindow = 10 * time.Second

// SuspicionStats aggregates one detector's suspicion lifecycles.
type SuspicionStats struct {
	// Raised and Cleared count transitions; Active is how many suspicions
	// were still standing when the trace ended.
	Raised  int
	Cleared int
	Active  int
	// MeanDuration is the mean raise-to-clear time over completed
	// lifecycles (zero when none completed).
	MeanDuration time.Duration
}

// Analysis is the digest of a whole trace.
type Analysis struct {
	Events   int
	TxByKind map[string]int
	// RxByKind counts frames delivered to protocols, per kind. One
	// transmission reaches many receivers, so RxByKind[k]/TxByKind[k] is the
	// mean receivers-per-transmission; see Reach.
	RxByKind map[string]int
	// Reach is RxByKind/TxByKind per kind. All kinds share one radio, so a
	// kind reaching fewer receivers per transmission than its peers is being
	// lost preferentially (larger frames collide and fade more) — the
	// per-kind asymmetry is a loss estimator without ground truth.
	Reach    map[string]float64
	Messages []MessageStats
	// RoleChanges counts committed role transitions per node id.
	RoleChanges map[string]int
	// Suspicions aggregates suspicion lifecycles per detector
	// ("mute", "verbose", "trust").
	Suspicions map[string]SuspicionStats
	// Faults lists fault-plan events with accept counts around each.
	Faults []FaultStat
	// Undecodable counts lines that failed to decode; FirstBadOffset is the
	// byte offset of the first such line (-1 when every line decoded).
	Undecodable    int
	FirstBadOffset int64
}

// DecodeStats reports trace decoding health: how many lines decoded, how
// many could not, and where the first undecodable line starts.
type DecodeStats struct {
	Decoded     int
	Undecodable int
	// FirstBadOffset is the byte offset of the first undecodable line, or -1
	// when every line decoded.
	FirstBadOffset int64
}

// decodeLines scans a JSONL trace, invoking fn for every decoded event.
// Undecodable lines are counted, and the byte offset of the first one is
// retained, so callers can report a truncated or corrupt trace instead of
// silently producing an empty digest.
func decodeLines(r io.Reader, fn func(Event)) (DecodeStats, error) {
	st := DecodeStats{FirstBadOffset: -1}
	scanner := bufio.NewScanner(r)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	var offset int64
	for scanner.Scan() {
		line := scanner.Bytes()
		lineStart := offset
		offset += int64(len(line)) + 1 // +1 for the newline the scanner strips
		if len(line) == 0 {
			continue
		}
		var ev Event
		if err := json.Unmarshal(line, &ev); err != nil {
			st.Undecodable++
			if st.FirstBadOffset < 0 {
				st.FirstBadOffset = lineStart
			}
			continue
		}
		st.Decoded++
		fn(ev)
	}
	if err := scanner.Err(); err != nil {
		return st, fmt.Errorf("trace: scan: %w", err)
	}
	return st, nil
}

// Decode reads a whole JSONL trace into memory. Undecodable lines are
// reported through DecodeStats rather than failing the read.
func Decode(r io.Reader) ([]Event, DecodeStats, error) {
	var evs []Event
	st, err := decodeLines(r, func(ev Event) { evs = append(evs, ev) })
	return evs, st, err
}

// Analyze reads a JSONL trace and digests it. Unparseable lines are counted
// (with the first one's byte offset) but otherwise skipped.
func Analyze(r io.Reader) (Analysis, error) {
	a := Analysis{
		TxByKind:    make(map[string]int),
		RxByKind:    make(map[string]int),
		Reach:       make(map[string]float64),
		RoleChanges: make(map[string]int),
		Suspicions:  make(map[string]SuspicionStats),
	}
	injected := map[string]time.Duration{}
	accepts := map[string][]time.Duration{}
	var acceptTimes []time.Duration
	type suspKey struct {
		node, peer uint32
		detector   string
	}
	suspStart := map[suspKey]time.Duration{}
	suspSum := map[string]time.Duration{}
	suspDone := map[string]int{}

	dec, scanErr := decodeLines(r, func(ev Event) {
		a.Events++
		switch ev.Type {
		case TypeTx:
			a.TxByKind[ev.Kind]++
		case TypeRx:
			a.RxByKind[ev.Kind]++
		case TypeSuspect:
			detector, raised, ok := parseSuspectDetail(ev.Detail)
			if !ok {
				break
			}
			st := a.Suspicions[detector]
			key := suspKey{node: uint32(ev.Node), peer: uint32(ev.Peer), detector: detector}
			if raised {
				st.Raised++
				if _, dup := suspStart[key]; !dup {
					suspStart[key] = time.Duration(ev.T)
				}
			} else {
				st.Cleared++
				if start, active := suspStart[key]; active {
					suspSum[detector] += time.Duration(ev.T) - start
					suspDone[detector]++
					delete(suspStart, key)
				}
			}
			a.Suspicions[detector] = st
		case TypeInject:
			injected[ev.Msg] = time.Duration(ev.T)
		case TypeAccept:
			accepts[ev.Msg] = append(accepts[ev.Msg], time.Duration(ev.T))
			acceptTimes = append(acceptTimes, time.Duration(ev.T))
		case TypeRole:
			a.RoleChanges[fmt.Sprintf("%d", ev.Node)]++
		case TypeFault:
			a.Faults = append(a.Faults, FaultStat{
				At: time.Duration(ev.T), Name: ev.Detail,
			})
		}
	})
	a.Undecodable = dec.Undecodable
	a.FirstBadOffset = dec.FirstBadOffset
	if scanErr != nil {
		return a, scanErr
	}

	msgs := make([]string, 0, len(injected))
	for m := range injected {
		msgs = append(msgs, m)
	}
	sort.Strings(msgs)
	for _, m := range msgs {
		at := injected[m]
		times := accepts[m]
		sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
		st := MessageStats{Msg: m, Injected: at, Accepts: len(times)}
		if len(times) > 0 {
			st.TimeTo50 = times[(len(times)-1)/2] - at
			st.TimeTo95 = times[(len(times)-1)*95/100] - at
			st.Last = times[len(times)-1] - at
		}
		a.Messages = append(a.Messages, st)
	}
	sort.Slice(acceptTimes, func(i, j int) bool { return acceptTimes[i] < acceptTimes[j] })
	countBetween := func(from, to time.Duration) int {
		lo := sort.Search(len(acceptTimes), func(i int) bool { return acceptTimes[i] >= from })
		hi := sort.Search(len(acceptTimes), func(i int) bool { return acceptTimes[i] >= to })
		return hi - lo
	}
	for i := range a.Faults {
		f := &a.Faults[i]
		f.AcceptsBefore = countBetween(f.At-faultWindow, f.At)
		f.AcceptsAfter = countBetween(f.At, f.At+faultWindow)
	}
	for kind, rx := range a.RxByKind {
		if tx := a.TxByKind[kind]; tx > 0 {
			a.Reach[kind] = float64(rx) / float64(tx)
		}
	}
	for key := range suspStart {
		st := a.Suspicions[key.detector]
		st.Active++
		a.Suspicions[key.detector] = st
	}
	for detector, done := range suspDone {
		if done > 0 {
			st := a.Suspicions[detector]
			st.MeanDuration = suspSum[detector] / time.Duration(done)
			a.Suspicions[detector] = st
		}
	}
	return a, nil
}

// parseSuspectDetail splits a suspect event's "<detector>:raised" /
// "<detector>:cleared" detail.
func parseSuspectDetail(detail string) (detector string, raised, ok bool) {
	detector, event, found := strings.Cut(detail, ":")
	if !found || detector == "" {
		return "", false, false
	}
	switch event {
	case "raised":
		return detector, true, true
	case "cleared":
		return detector, false, true
	default:
		return "", false, false
	}
}

// Summary renders the analysis as text.
func (a Analysis) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "events: %d\n", a.Events)
	kinds := make([]string, 0, len(a.TxByKind))
	for k := range a.TxByKind {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	b.WriteString("transmissions:")
	for _, k := range kinds {
		fmt.Fprintf(&b, " %s=%d", k, a.TxByKind[k])
	}
	b.WriteByte('\n')
	if len(a.RxByKind) > 0 {
		rxKinds := make([]string, 0, len(a.RxByKind))
		for k := range a.RxByKind {
			rxKinds = append(rxKinds, k)
		}
		sort.Strings(rxKinds)
		b.WriteString("receptions:")
		for _, k := range rxKinds {
			fmt.Fprintf(&b, " %s=%d", k, a.RxByKind[k])
		}
		b.WriteByte('\n')
		// Reach is mean receivers per transmission; the kind with the best
		// reach is the baseline, shortfalls estimate preferential loss.
		best := 0.0
		for _, r := range a.Reach {
			if r > best {
				best = r
			}
		}
		if best > 0 {
			b.WriteString("reach (rx/tx):")
			for _, k := range rxKinds {
				r, ok := a.Reach[k]
				if !ok {
					continue
				}
				fmt.Fprintf(&b, " %s=%.2f", k, r)
				if loss := 1 - r/best; loss > 0.005 {
					fmt.Fprintf(&b, " (-%.0f%%)", 100*loss)
				}
			}
			b.WriteByte('\n')
		}
	}
	fmt.Fprintf(&b, "messages: %d\n", len(a.Messages))
	if len(a.Messages) > 0 {
		fmt.Fprintf(&b, "%-10s %-10s %-8s %-12s %-12s %-12s\n",
			"msg", "inject", "accepts", "t50", "t95", "last")
		for _, m := range a.Messages {
			fmt.Fprintf(&b, "%-10s %-10s %-8d %-12s %-12s %-12s\n",
				m.Msg, m.Injected.Round(time.Millisecond), m.Accepts,
				m.TimeTo50.Round(time.Millisecond), m.TimeTo95.Round(time.Millisecond),
				m.Last.Round(time.Millisecond))
		}
	}
	churn := 0
	for _, c := range a.RoleChanges {
		churn += c
	}
	fmt.Fprintf(&b, "role changes: %d across %d nodes\n", churn, len(a.RoleChanges))
	if len(a.Suspicions) > 0 {
		detectors := make([]string, 0, len(a.Suspicions))
		for d := range a.Suspicions {
			detectors = append(detectors, d)
		}
		sort.Strings(detectors)
		b.WriteString("suspicions:\n")
		for _, d := range detectors {
			s := a.Suspicions[d]
			fmt.Fprintf(&b, "  %-8s raised=%-5d cleared=%-5d active=%-5d mean-held=%s\n",
				d, s.Raised, s.Cleared, s.Active, s.MeanDuration.Round(time.Millisecond))
		}
	}
	if len(a.Faults) > 0 {
		fmt.Fprintf(&b, "faults: %d (accepts ±%s around each)\n", len(a.Faults), faultWindow)
		for _, f := range a.Faults {
			fmt.Fprintf(&b, "  %-10s %-24s before=%-6d after=%d\n",
				f.At.Round(time.Millisecond), f.Name, f.AcceptsBefore, f.AcceptsAfter)
		}
	}
	return b.String()
}
