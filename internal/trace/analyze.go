package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// MessageStats summarizes one message's propagation through a trace.
type MessageStats struct {
	Msg      string
	Injected time.Duration
	Accepts  int
	// TimeTo50 and TimeTo95 are the delays until half / 95% of the final
	// acceptance count was reached.
	TimeTo50 time.Duration
	TimeTo95 time.Duration
	// Last is the delay of the final acceptance.
	Last time.Duration
}

// FaultStat is one fault-plan event with the acceptance rate around it, so
// a delivery dip can be read off next to the fault that caused it.
type FaultStat struct {
	At   time.Duration
	Name string
	// AcceptsBefore and AcceptsAfter count application-level acceptances in
	// the faultWindow preceding and following the event.
	AcceptsBefore int
	AcceptsAfter  int
}

// faultWindow is the correlation window around each fault event.
const faultWindow = 10 * time.Second

// Analysis is the digest of a whole trace.
type Analysis struct {
	Events   int
	TxByKind map[string]int
	Messages []MessageStats
	// RoleChanges counts committed role transitions per node id.
	RoleChanges map[string]int
	// Faults lists fault-plan events with accept counts around each.
	Faults []FaultStat
}

// Analyze reads a JSONL trace and digests it. Unparseable lines are counted
// but otherwise skipped.
func Analyze(r io.Reader) (Analysis, error) {
	a := Analysis{
		TxByKind:    make(map[string]int),
		RoleChanges: make(map[string]int),
	}
	injected := map[string]time.Duration{}
	accepts := map[string][]time.Duration{}
	var acceptTimes []time.Duration

	scanner := bufio.NewScanner(r)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	for scanner.Scan() {
		line := scanner.Bytes()
		if len(line) == 0 {
			continue
		}
		var ev Event
		if err := json.Unmarshal(line, &ev); err != nil {
			continue
		}
		a.Events++
		switch ev.Type {
		case TypeTx:
			a.TxByKind[ev.Kind]++
		case TypeInject:
			injected[ev.Msg] = time.Duration(ev.T)
		case TypeAccept:
			accepts[ev.Msg] = append(accepts[ev.Msg], time.Duration(ev.T))
			acceptTimes = append(acceptTimes, time.Duration(ev.T))
		case TypeRole:
			a.RoleChanges[fmt.Sprintf("%d", ev.Node)]++
		case TypeFault:
			a.Faults = append(a.Faults, FaultStat{
				At: time.Duration(ev.T), Name: ev.Detail,
			})
		}
	}
	if err := scanner.Err(); err != nil {
		return a, fmt.Errorf("trace: scan: %w", err)
	}

	msgs := make([]string, 0, len(injected))
	for m := range injected {
		msgs = append(msgs, m)
	}
	sort.Strings(msgs)
	for _, m := range msgs {
		at := injected[m]
		times := accepts[m]
		sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
		st := MessageStats{Msg: m, Injected: at, Accepts: len(times)}
		if len(times) > 0 {
			st.TimeTo50 = times[(len(times)-1)/2] - at
			st.TimeTo95 = times[(len(times)-1)*95/100] - at
			st.Last = times[len(times)-1] - at
		}
		a.Messages = append(a.Messages, st)
	}
	sort.Slice(acceptTimes, func(i, j int) bool { return acceptTimes[i] < acceptTimes[j] })
	countBetween := func(from, to time.Duration) int {
		lo := sort.Search(len(acceptTimes), func(i int) bool { return acceptTimes[i] >= from })
		hi := sort.Search(len(acceptTimes), func(i int) bool { return acceptTimes[i] >= to })
		return hi - lo
	}
	for i := range a.Faults {
		f := &a.Faults[i]
		f.AcceptsBefore = countBetween(f.At-faultWindow, f.At)
		f.AcceptsAfter = countBetween(f.At, f.At+faultWindow)
	}
	return a, nil
}

// Summary renders the analysis as text.
func (a Analysis) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "events: %d\n", a.Events)
	kinds := make([]string, 0, len(a.TxByKind))
	for k := range a.TxByKind {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	b.WriteString("transmissions:")
	for _, k := range kinds {
		fmt.Fprintf(&b, " %s=%d", k, a.TxByKind[k])
	}
	b.WriteByte('\n')
	fmt.Fprintf(&b, "messages: %d\n", len(a.Messages))
	if len(a.Messages) > 0 {
		fmt.Fprintf(&b, "%-10s %-10s %-8s %-12s %-12s %-12s\n",
			"msg", "inject", "accepts", "t50", "t95", "last")
		for _, m := range a.Messages {
			fmt.Fprintf(&b, "%-10s %-10s %-8d %-12s %-12s %-12s\n",
				m.Msg, m.Injected.Round(time.Millisecond), m.Accepts,
				m.TimeTo50.Round(time.Millisecond), m.TimeTo95.Round(time.Millisecond),
				m.Last.Round(time.Millisecond))
		}
	}
	churn := 0
	for _, c := range a.RoleChanges {
		churn += c
	}
	fmt.Fprintf(&b, "role changes: %d across %d nodes\n", churn, len(a.RoleChanges))
	if len(a.Faults) > 0 {
		fmt.Fprintf(&b, "faults: %d (accepts ±%s around each)\n", len(a.Faults), faultWindow)
		for _, f := range a.Faults {
			fmt.Fprintf(&b, "  %-10s %-24s before=%-6d after=%d\n",
				f.At.Round(time.Millisecond), f.Name, f.AcceptsBefore, f.AcceptsAfter)
		}
	}
	return b.String()
}
