package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"time"

	"bbcast/internal/wire"
)

// Lineage is the causal digest of a trace: one dissemination DAG per
// injected message, reconstructed from frame ids and parent links on
// tx/rx/accept/suppress events. Everything is ordered deterministically
// (messages by numeric origin/seq, frames by frame id, nodes by id), so the
// rendered report over a deterministic trace is byte-stable.
type Lineage struct {
	Messages []*MsgLineage
	// Nodes is the number of distinct nodes observed anywhere in the trace
	// (the coverage denominator for loss-site localization).
	Nodes int
	// Undecodable / FirstBadOffset mirror DecodeStats for the source trace.
	Undecodable    int
	FirstBadOffset int64

	byMsg map[string]*MsgLineage
}

// MsgLineage is one message's dissemination DAG and phase breakdown.
type MsgLineage struct {
	Msg    string
	Origin wire.NodeID
	// Injected is the absolute injection time; all phase fields below are
	// relative to it.
	Injected time.Duration

	// FirstRelay is the delay until the first data transmission by a node
	// other than the origin (zero when nothing was ever relayed).
	FirstRelay time.Duration
	// T50 and T95 are the delays until half / 95% of the final acceptance
	// count was reached; Last is the final acceptance's delay.
	T50, T95, Last time.Duration

	// Accepts counts accepting nodes (the origin's own delivery included).
	Accepts int
	// DataPath and Recovered attribute each remote delivery: Recovered
	// deliveries travelled through gossip recovery at some hop, DataPath
	// deliveries arrived purely on the relay data path.
	DataPath, Recovered int
	// Suppressed counts redundant data frames that receivers declined to
	// forward — the protocol's duplicate-suppression work for this message.
	Suppressed int

	// HopDist histograms remote deliveries by the accepting frame's hop
	// count; HopP50 and HopMax summarize it.
	HopDist map[uint32]int
	HopP50  uint32
	HopMax  uint32

	// Frames is the dissemination DAG: every data-frame transmission of this
	// message, sorted by frame id. Parent links point at the frame each
	// transmission was forwarded from (zero for origin sends).
	Frames []*FrameNode

	// Losses localizes every node that never delivered the message.
	Losses []LossSite

	frameByID map[uint64]*FrameNode
	acceptBy  map[wire.NodeID]acceptRec
	dataRxBy  map[wire.NodeID][]rxRec
	reqTxBy   map[wire.NodeID][]time.Duration
}

// FrameNode is one data-frame transmission in a message's dissemination DAG.
type FrameNode struct {
	Frame  uint64
	Parent uint64
	Node   wire.NodeID
	At     time.Duration
	Cause  string
	Hops   uint32
	Rec    bool
	// RxCount is how many receivers the frame reached; AcceptCount is how
	// many deliveries this exact frame completed.
	RxCount     int
	AcceptCount int
}

// LossSite explains one node that never delivered a message: what it heard,
// and the last node observed transmitting the payload (the point past which
// dissemination toward this node died).
type LossSite struct {
	Node wire.NodeID
	// DataRx counts data frames of the message the node received without
	// delivering (signature rejection or Byzantine payload); Requests counts
	// recovery requests the node sent for it.
	DataRx   int
	Requests int
	// LastHolder / LastHolderAt identify the message's final transmitter in
	// the whole trace — the closest surviving copy the node never got.
	LastHolder   wire.NodeID
	LastHolderAt time.Duration
}

type acceptRec struct {
	at    time.Duration
	frame uint64
	hops  uint32
	rec   bool
	cause string
}

type rxRec struct {
	at    time.Duration
	frame uint64
}

// BuildLineage reconstructs per-message dissemination DAGs from decoded
// events. Events may be in any order; stats carries the decode health of the
// source trace (pass a zero DecodeStats with FirstBadOffset -1 when the
// events did not come from Decode).
func BuildLineage(events []Event, stats DecodeStats) *Lineage {
	l := &Lineage{
		Undecodable:    stats.Undecodable,
		FirstBadOffset: stats.FirstBadOffset,
		byMsg:          make(map[string]*MsgLineage),
	}
	nodes := make(map[wire.NodeID]bool)
	kindData := wire.KindData.String()
	kindRequest := wire.KindRequest.String()
	kindFind := wire.KindFindMissing.String()

	get := func(msg string) *MsgLineage {
		m := l.byMsg[msg]
		if m == nil {
			m = &MsgLineage{
				Msg:       msg,
				HopDist:   make(map[uint32]int),
				frameByID: make(map[uint64]*FrameNode),
				acceptBy:  make(map[wire.NodeID]acceptRec),
				dataRxBy:  make(map[wire.NodeID][]rxRec),
				reqTxBy:   make(map[wire.NodeID][]time.Duration),
			}
			l.byMsg[msg] = m
			l.Messages = append(l.Messages, m)
		}
		return m
	}

	for _, ev := range events {
		switch ev.Type {
		case TypeInject, TypeTx, TypeRx, TypeAccept, TypeSuppress, TypeRole:
			nodes[ev.Node] = true
		}
		if ev.Msg == "" {
			continue
		}
		at := time.Duration(ev.T)
		switch ev.Type {
		case TypeInject:
			m := get(ev.Msg)
			m.Origin = ev.Node
			m.Injected = at
		case TypeTx:
			switch ev.Kind {
			case kindData:
				m := get(ev.Msg)
				fn := &FrameNode{
					Frame: ev.Frame, Parent: ev.Parent, Node: ev.Node,
					At: at, Cause: ev.Cause, Hops: ev.Hops, Rec: ev.Rec,
				}
				m.Frames = append(m.Frames, fn)
				if ev.Frame != 0 {
					m.frameByID[ev.Frame] = fn
				}
			case kindRequest, kindFind:
				m := get(ev.Msg)
				m.reqTxBy[ev.Node] = append(m.reqTxBy[ev.Node], at)
			}
		case TypeRx:
			if ev.Kind == kindData {
				m := get(ev.Msg)
				m.dataRxBy[ev.Node] = append(m.dataRxBy[ev.Node], rxRec{at: at, frame: ev.Frame})
			}
		case TypeAccept:
			m := get(ev.Msg)
			if _, dup := m.acceptBy[ev.Node]; !dup {
				m.acceptBy[ev.Node] = acceptRec{
					at: at, frame: ev.Frame, hops: ev.Hops, rec: ev.Rec, cause: ev.Cause,
				}
			}
		case TypeSuppress:
			get(ev.Msg).Suppressed++
		}
	}
	l.Nodes = len(nodes)

	for _, m := range l.Messages {
		finishMessage(m, nodes)
	}
	sort.Slice(l.Messages, func(i, j int) bool {
		return msgLess(l.Messages[i].Msg, l.Messages[j].Msg)
	})
	return l
}

// finishMessage derives the per-message summaries once all events are in.
func finishMessage(m *MsgLineage, universe map[wire.NodeID]bool) {
	sort.Slice(m.Frames, func(i, j int) bool {
		a, b := m.Frames[i], m.Frames[j]
		if a.Frame != b.Frame {
			return a.Frame < b.Frame
		}
		if a.At != b.At {
			return a.At < b.At
		}
		return a.Node < b.Node
	})
	// Receiver and delivery counts per frame.
	for _, rxs := range m.dataRxBy {
		for _, rx := range rxs {
			if fn := m.frameByID[rx.frame]; fn != nil {
				fn.RxCount++
			}
		}
	}
	for _, acc := range m.acceptBy {
		if fn := m.frameByID[acc.frame]; fn != nil {
			fn.AcceptCount++
		}
	}

	// Phase breakdown. Acceptance times sorted; t50/t95 are against the
	// final acceptance count, matching Analyze's message table.
	var times []time.Duration
	var hops []uint32
	for node, acc := range m.acceptBy {
		times = append(times, acc.at)
		if node == m.Origin {
			continue
		}
		if acc.rec {
			m.Recovered++
		} else {
			m.DataPath++
		}
		if acc.hops > 0 {
			m.HopDist[acc.hops]++
			hops = append(hops, acc.hops)
		}
	}
	m.Accepts = len(times)
	sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
	if len(times) > 0 {
		m.T50 = times[(len(times)-1)/2] - m.Injected
		m.T95 = times[(len(times)-1)*95/100] - m.Injected
		m.Last = times[len(times)-1] - m.Injected
	}
	// m.Frames is frame-id ordered (transmission order under the simulator),
	// but scan all frames for the earliest relay to stay order-independent.
	for _, fn := range m.Frames {
		if fn.Node != m.Origin && (m.FirstRelay == 0 || fn.At-m.Injected < m.FirstRelay) {
			m.FirstRelay = fn.At - m.Injected
		}
	}
	sort.Slice(hops, func(i, j int) bool { return hops[i] < hops[j] })
	if len(hops) > 0 {
		m.HopP50 = hops[(len(hops)-1)/2]
		m.HopMax = hops[len(hops)-1]
	}

	// Loss-site localization: the last transmitter of the payload is the
	// closest copy every non-deliverer missed.
	var lastHolder wire.NodeID
	var lastHolderAt time.Duration
	for _, fn := range m.Frames {
		if fn.At >= lastHolderAt {
			lastHolder, lastHolderAt = fn.Node, fn.At
		}
	}
	var missing []wire.NodeID
	for node := range universe {
		if _, ok := m.acceptBy[node]; !ok {
			missing = append(missing, node)
		}
	}
	sort.Slice(missing, func(i, j int) bool { return missing[i] < missing[j] })
	for _, node := range missing {
		m.Losses = append(m.Losses, LossSite{
			Node:         node,
			DataRx:       len(m.dataRxBy[node]),
			Requests:     len(m.reqTxBy[node]),
			LastHolder:   lastHolder,
			LastHolderAt: lastHolderAt,
		})
	}
}

// msgLess orders "origin/seq" message ids numerically, falling back to
// string order for ids that do not parse.
func msgLess(a, b string) bool {
	ao, as, aok := parseMsg(a)
	bo, bs, bok := parseMsg(b)
	if aok && bok {
		if ao != bo {
			return ao < bo
		}
		return as < bs
	}
	return a < b
}

func parseMsg(s string) (origin, seq uint64, ok bool) {
	o, rest, found := strings.Cut(s, "/")
	if !found {
		return 0, 0, false
	}
	origin, err1 := strconv.ParseUint(o, 10, 64)
	seq, err2 := strconv.ParseUint(rest, 10, 64)
	return origin, seq, err1 == nil && err2 == nil
}

// Message returns the lineage for one message id, or nil.
func (l *Lineage) Message(msg string) *MsgLineage {
	return l.byMsg[msg]
}

// Report renders the lineage as text.
func (l *Lineage) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "lineage: %d messages across %d nodes\n", len(l.Messages), l.Nodes)
	for _, m := range l.Messages {
		fmt.Fprintf(&b, "msg %s origin=%d injected=%s\n",
			m.Msg, m.Origin, m.Injected.Round(time.Millisecond))
		fmt.Fprintf(&b, "  phases: first-relay=%s t50=%s t95=%s last=%s\n",
			m.FirstRelay.Round(time.Millisecond), m.T50.Round(time.Millisecond),
			m.T95.Round(time.Millisecond), m.Last.Round(time.Millisecond))
		fmt.Fprintf(&b, "  coverage: %d/%d accepted", m.Accepts, l.Nodes)
		if never := l.Nodes - m.Accepts; never > 0 {
			fmt.Fprintf(&b, " (%d never)", never)
		}
		b.WriteByte('\n')
		remote := m.DataPath + m.Recovered
		share := 0.0
		if remote > 0 {
			share = float64(m.Recovered) / float64(remote)
		}
		fmt.Fprintf(&b, "  paths: data=%d recovery=%d (share %.2f) suppressed=%d\n",
			m.DataPath, m.Recovered, share, m.Suppressed)
		if len(m.HopDist) > 0 {
			fmt.Fprintf(&b, "  hops: p50=%d max=%d dist", m.HopP50, m.HopMax)
			hs := make([]uint32, 0, len(m.HopDist))
			for h := range m.HopDist {
				hs = append(hs, h)
			}
			sort.Slice(hs, func(i, j int) bool { return hs[i] < hs[j] })
			for _, h := range hs {
				fmt.Fprintf(&b, " %d:%d", h, m.HopDist[h])
			}
			b.WriteByte('\n')
		}
		fmt.Fprintf(&b, "  frames: %d data transmissions\n", len(m.Frames))
		for _, ls := range m.Losses {
			fmt.Fprintf(&b, "  loss: node %d never delivered (data-rx=%d requests=%d, last holder %d @ %s)\n",
				ls.Node, ls.DataRx, ls.Requests, ls.LastHolder,
				ls.LastHolderAt.Round(time.Millisecond))
		}
	}
	if l.Undecodable > 0 {
		fmt.Fprintf(&b, "warning: %d undecodable line(s), first at byte offset %d\n",
			l.Undecodable, l.FirstBadOffset)
	}
	return b.String()
}

// Explain reconstructs why node delivered msg late — or never. For delivered
// nodes it walks the accepting frame's parent chain back to the origin; for
// non-deliverers it reports what the node heard and where the closest copy
// died.
func (l *Lineage) Explain(msg string, node wire.NodeID) string {
	m := l.byMsg[msg]
	if m == nil {
		return fmt.Sprintf("msg %s: not present in trace\n", msg)
	}
	var b strings.Builder
	acc, delivered := m.acceptBy[node]
	if !delivered {
		fmt.Fprintf(&b, "msg %s at node %d: never delivered\n", msg, node)
		if len(m.dataRxBy[node]) == 0 && len(m.reqTxBy[node]) == 0 {
			fmt.Fprintf(&b, "  dead air: node saw no data frame and sent no recovery request\n")
		}
		if n := len(m.dataRxBy[node]); n > 0 {
			fmt.Fprintf(&b, "  received %d data frame(s) without delivering (rejected payload or signature)\n", n)
		}
		if reqs := m.reqTxBy[node]; len(reqs) > 0 {
			fmt.Fprintf(&b, "  sent %d recovery request(s), first @ %s, last @ %s — never served\n",
				len(reqs), reqs[0].Round(time.Millisecond),
				reqs[len(reqs)-1].Round(time.Millisecond))
		}
		var lastHolder wire.NodeID
		var lastHolderAt time.Duration
		for _, fn := range m.Frames {
			if fn.At >= lastHolderAt {
				lastHolder, lastHolderAt = fn.Node, fn.At
			}
		}
		if lastHolderAt > 0 || len(m.Frames) > 0 {
			fmt.Fprintf(&b, "  last holder to transmit: node %d @ %s\n",
				lastHolder, lastHolderAt.Round(time.Millisecond))
		}
		return b.String()
	}

	delay := acc.at - m.Injected
	fmt.Fprintf(&b, "msg %s at node %d: delivered @ %s (+%s after inject)\n",
		msg, node, acc.at.Round(time.Millisecond), delay.Round(time.Millisecond))
	verdict := "on the fast path"
	switch {
	case delay > m.T95:
		verdict = "late (beyond the message's t95)"
	case delay > m.T50:
		verdict = "after the median"
	}
	path := "data path"
	if acc.rec {
		path = "gossip recovery"
	}
	fmt.Fprintf(&b, "  %s, via %s, %d hop(s)\n", verdict, path, acc.hops)
	if reqs := m.reqTxBy[node]; len(reqs) > 0 {
		fmt.Fprintf(&b, "  node requested recovery %d time(s) before delivery\n", len(reqs))
	}
	// Walk the frame chain origin-ward. Parent links stop at 0 (origin send)
	// or at frames the trace never saw (live-transport rx has no frame id).
	var chain []*FrameNode
	for f := m.frameByID[acc.frame]; f != nil && len(chain) < 64; {
		chain = append(chain, f)
		if f.Parent == 0 {
			break
		}
		next := m.frameByID[f.Parent]
		if next == f {
			break
		}
		f = next
	}
	if len(chain) == 0 {
		fmt.Fprintf(&b, "  path: accepting frame not in trace (own origin, or live transport)\n")
		return b.String()
	}
	fmt.Fprintf(&b, "  path (delivery back to origin):\n")
	for _, f := range chain {
		cause := f.Cause
		if cause == "" {
			cause = "?"
		}
		fmt.Fprintf(&b, "    frame %d: node %d @ %s cause=%s hops=%d rec=%v\n",
			f.Frame, f.Node, f.At.Round(time.Millisecond), cause, f.Hops, f.Rec)
	}
	return b.String()
}

// chromeEvent is one Chrome trace-event record (about:tracing / Perfetto).
// Field order is fixed so serialization is deterministic.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int64          `json:"tid"`
	ID   uint64         `json:"id,omitempty"`
	BP   string         `json:"bp,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// ChromeTrace exports the lineage in Chrome trace-event JSON: one process
// per message, one thread per node, a slice per data frame (spanning tx to
// the frame's last reception), flow arrows along parent links, and instant
// events for deliveries. Load the output in about:tracing or Perfetto.
func (l *Lineage) ChromeTrace(w io.Writer) error {
	usec := func(d time.Duration) float64 { return float64(d) / float64(time.Microsecond) }
	var evs []chromeEvent
	for pi, m := range l.Messages {
		pid := pi + 1
		evs = append(evs, chromeEvent{
			Name: "process_name", Ph: "M", Pid: pid,
			Args: map[string]any{"name": "msg " + m.Msg},
		})
		// Last-rx time per frame bounds each slice.
		lastRx := make(map[uint64]time.Duration)
		nodeRx := make(map[wire.NodeID]bool)
		for node, rxs := range m.dataRxBy {
			nodeRx[node] = true
			for _, rx := range rxs {
				if rx.at > lastRx[rx.frame] {
					lastRx[rx.frame] = rx.at
				}
			}
		}
		for _, fn := range m.Frames {
			cause := fn.Cause
			if cause == "" {
				cause = "data"
			}
			end := lastRx[fn.Frame]
			dur := usec(end - fn.At)
			if dur < 1 {
				dur = 1
			}
			evs = append(evs, chromeEvent{
				Name: cause, Ph: "X", Ts: usec(fn.At), Dur: dur,
				Pid: pid, Tid: int64(fn.Node),
				Args: map[string]any{
					"frame": fn.Frame, "parent": fn.Parent,
					"hops": fn.Hops, "rec": fn.Rec, "rx": fn.RxCount,
				},
			})
			if fn.Parent != 0 {
				if parent := m.frameByID[fn.Parent]; parent != nil {
					evs = append(evs, chromeEvent{
						Name: "hop", Ph: "s", Ts: usec(parent.At),
						Pid: pid, Tid: int64(parent.Node), ID: fn.Frame,
					})
					evs = append(evs, chromeEvent{
						Name: "hop", Ph: "f", BP: "e", Ts: usec(fn.At),
						Pid: pid, Tid: int64(fn.Node), ID: fn.Frame,
					})
				}
			}
		}
		// Deliveries, node-ordered for determinism.
		accNodes := make([]wire.NodeID, 0, len(m.acceptBy))
		for node := range m.acceptBy {
			accNodes = append(accNodes, node)
		}
		sort.Slice(accNodes, func(i, j int) bool { return accNodes[i] < accNodes[j] })
		for _, node := range accNodes {
			acc := m.acceptBy[node]
			name := "accept"
			if acc.rec {
				name = "accept(recovered)"
			}
			evs = append(evs, chromeEvent{
				Name: name, Ph: "i", Ts: usec(acc.at), Pid: pid, Tid: int64(node),
				Args: map[string]any{"hops": acc.hops},
			})
		}
	}
	out := struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
	}{TraceEvents: evs}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}
