//bbvet:wallclock live transport: socket deadlines, RealClock and seed entropy are wall-clock by nature

// Package transport runs the broadcast protocol over real UDP datagrams.
//
// A UDPNode emulates the radio's one-hop broadcast by sending each frame to
// every peer in its broadcast domain (for a real ad-hoc deployment this
// would be the 802.11 broadcast address; a peer list keeps the package
// portable and testable on loopback). The protocol engine itself is the same
// code the simulator runs: only the Clock and Send dependencies differ.
package transport

import (
	cryptorand "crypto/rand"
	"encoding/binary"
	"errors"
	"expvar"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"

	"bbcast/internal/core"
	"bbcast/internal/env"
	"bbcast/internal/obsv"
	"bbcast/internal/persist"
	"bbcast/internal/sig"
	"bbcast/internal/wire"
)

// maxDatagram bounds receive buffers.
const maxDatagram = 64 * 1024

// inboxDepth bounds the decoded-packet queue between the socket reader and
// the protocol goroutine. When the protocol cannot keep up (e.g. a LAN
// flooder outpacing signature verification), further datagrams are dropped at
// ingress instead of wedging the read loop or growing a queue without bound.
const inboxDepth = 256

// readBufs recycles receive buffers across datagrams. wire.Unmarshal copies
// every byte slice out of the input, so a buffer can be reused as soon as
// decoding returns.
var readBufs = sync.Pool{
	New: func() any {
		b := make([]byte, maxDatagram)
		return &b
	},
}

// randSeed produces the seed for a live node's protocol RNG. Tests that need
// reproducible live nodes may swap it; production uses the OS entropy pool.
// The previous time.Now().UnixNano()^id<<32 seed was predictable (an attacker
// who can bound the start instant can enumerate it, and with it every gossip
// jitter and forwarding delay the node will ever pick) and collided outright
// for nodes created in the same nanosecond, correlating their backoff.
var randSeed = secureSeed

// secureSeed draws a 64-bit seed from crypto/rand; it panics if the OS
// entropy source is unusable, matching crypto/rand's own contract — a live
// node with predictable jitter is worse than one that fails to start.
func secureSeed() int64 {
	var b [8]byte
	if _, err := cryptorand.Read(b[:]); err != nil {
		panic(fmt.Sprintf("transport: cannot seed RNG: %v", err))
	}
	return int64(binary.LittleEndian.Uint64(b[:]))
}

// UDPNode hosts one protocol instance over a UDP socket.
type UDPNode struct {
	id    wire.NodeID
	conn  *net.UDPConn
	proto *core.Protocol
	// dev is the durable-state device when the node was opened with a
	// persist directory; closed with the node.
	dev *persist.FileDevice

	registry *obsv.Registry
	obs      obsv.Observer
	clock    env.Clock

	mu    sync.Mutex // serializes all protocol access
	peers []*net.UDPAddr
	// txFrames numbers frames this node put on the wire (under mu), giving
	// lineage events a local frame id. Meta does not cross the wire, so
	// received frames carry a zero Meta on a live transport.
	txFrames uint64

	deliver func(origin wire.NodeID, id wire.MsgID, payload []byte)

	debugMu  sync.Mutex
	debugSrv *http.Server

	inbox chan *wire.Packet

	closeOnce sync.Once
	closed    chan struct{}
	done      chan struct{}
	procDone  chan struct{}
}

// lockedClock wraps a Clock so timer callbacks run under the node mutex,
// because core.Protocol is not safe for concurrent use.
type lockedClock struct {
	inner env.Clock
	mu    *sync.Mutex
	node  *UDPNode
}

var _ env.Clock = lockedClock{}

func (c lockedClock) Now() time.Duration { return c.inner.Now() }

func (c lockedClock) After(d time.Duration, fn func()) func() {
	return c.inner.After(d, func() {
		select {
		case <-c.node.closed:
			return
		default:
		}
		c.mu.Lock()
		defer c.mu.Unlock()
		fn()
	})
}

// NewUDPNode binds listen (e.g. "127.0.0.1:0") and starts the protocol.
// Deliver, if non-nil, receives accepted messages; it is invoked with the
// node's internal lock held and must not call back into the node.
func NewUDPNode(cfg core.Config, id wire.NodeID, scheme sig.Scheme, listen string,
	deliver func(origin wire.NodeID, msgID wire.MsgID, payload []byte)) (*UDPNode, error) {
	return NewUDPNodeDir(cfg, id, scheme, listen, "", deliver)
}

// NewUDPNodeDir is NewUDPNode with a durable-state directory. A non-empty dir
// opens (or replays, after a crash) a file-backed persist device there: the
// restarting daemon recovers its sequence high-water mark, delivered-message
// dedup state and TRUST verdicts, and — with cfg.CatchUpSync — bulk-fetches
// the messages it missed from a neighbour. An empty dir keeps the node
// stateless across restarts.
func NewUDPNodeDir(cfg core.Config, id wire.NodeID, scheme sig.Scheme, listen, dir string,
	deliver func(origin wire.NodeID, msgID wire.MsgID, payload []byte)) (*UDPNode, error) {
	var dev *persist.FileDevice
	var store *persist.Store
	if dir != "" {
		var err error
		if dev, err = persist.OpenDir(dir); err != nil {
			return nil, fmt.Errorf("transport: persist: %w", err)
		}
		if store, err = persist.Open(dev); err != nil {
			dev.Close() //bbvet:errflow cleanup on a failed constructor path; the open error being returned is the root cause
			return nil, fmt.Errorf("transport: persist: %w", err)
		}
		cfg.Persist = true
	}
	addr, err := net.ResolveUDPAddr("udp", listen)
	if err != nil {
		if dev != nil {
			dev.Close() //bbvet:errflow cleanup on a failed constructor path; the resolve error being returned is the root cause
		}
		return nil, fmt.Errorf("transport: resolve %q: %w", listen, err)
	}
	conn, err := net.ListenUDP("udp", addr)
	if err != nil {
		if dev != nil {
			dev.Close() //bbvet:errflow cleanup on a failed constructor path; the listen error being returned is the root cause
		}
		return nil, fmt.Errorf("transport: listen %q: %w", listen, err)
	}
	n := &UDPNode{
		id:       id,
		dev:      dev,
		conn:     conn,
		registry: obsv.NewRegistry(),
		deliver:  deliver,
		inbox:    make(chan *wire.Packet, inboxDepth),
		closed:   make(chan struct{}),
		done:     make(chan struct{}),
		procDone: make(chan struct{}),
	}
	n.obs = obsv.NewRegistryObserver(n.registry)
	clock := lockedClock{inner: &env.RealClock{}, mu: &n.mu, node: n}
	n.clock = clock
	n.proto = core.New(cfg, core.Deps{
		ID:     id,
		Clock:  clock,
		Send:   n.send,
		Scheme: scheme,
		Rand:   rand.New(rand.NewSource(randSeed())),
		Obs:    n.obs,
		Store:  store,
		Deliver: func(origin wire.NodeID, msgID wire.MsgID, payload []byte) {
			if n.deliver != nil {
				n.deliver(origin, msgID, payload)
			}
		},
	})
	go n.readLoop()
	go n.procLoop()
	return n, nil
}

// Addr returns the bound UDP address.
func (n *UDPNode) Addr() *net.UDPAddr {
	addr, _ := n.conn.LocalAddr().(*net.UDPAddr)
	return addr
}

// ID returns the node id.
func (n *UDPNode) ID() wire.NodeID { return n.id }

// SetPeers replaces the broadcast domain.
func (n *UDPNode) SetPeers(addrs []string) error {
	resolved := make([]*net.UDPAddr, 0, len(addrs))
	for _, a := range addrs {
		ua, err := net.ResolveUDPAddr("udp", a)
		if err != nil {
			return fmt.Errorf("transport: resolve peer %q: %w", a, err)
		}
		resolved = append(resolved, ua)
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	n.peers = resolved
	return nil
}

// Broadcast originates an application message.
func (n *UDPNode) Broadcast(payload []byte) wire.MsgID {
	n.mu.Lock()
	defer n.mu.Unlock()
	id := n.proto.Broadcast(payload)
	n.obs.OnInject(n.clock.Now(), n.id, id)
	return id
}

// InOverlay reports the node's current overlay membership.
func (n *UDPNode) InOverlay() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.proto.InOverlay()
}

// Stats returns a snapshot of the protocol counters.
func (n *UDPNode) Stats() core.Stats {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.proto.Stats()
}

// Metrics exposes the node's metrics registry (tx/rx by kind, accepts,
// suspicions, signature-verify latency, queue depths). Scraping it is safe
// from any goroutine.
func (n *UDPNode) Metrics() *obsv.Registry { return n.registry }

// ServeDebug starts an HTTP server on addr exposing the node's internals:
//
//	/metrics      Prometheus text exposition of the metrics registry
//	/metrics.json the same registry as JSON (the bbsim -metrics-out schema)
//	/status       one-line JSON snapshot (id, role, store/neighbour sizes)
//	/debug/vars   expvar
//	/debug/pprof/ CPU, heap and the other standard profiles
//
// It returns the listener's address (useful with ":0") and stops the server
// when the node is closed. One debug server per node; calling ServeDebug
// again replaces the previous server.
func (n *UDPNode) ServeDebug(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: debug listen %q: %w", addr, err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = n.registry.WriteProm(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = n.registry.WriteJSON(w)
	})
	mux.HandleFunc("/status", func(w http.ResponseWriter, _ *http.Request) {
		n.mu.Lock()
		role := n.proto.Role().String()
		held, tombstones := n.proto.StoreSize()
		neighbors := n.proto.NeighborCount()
		missing := n.proto.MissingCount()
		n.mu.Unlock()
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, `{"id":%d,"role":%q,"store":%d,"tombstones":%d,"neighbors":%d,"missing":%d}`+"\n",
			n.id, role, held, tombstones, neighbors, missing)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	srv := &http.Server{Handler: mux}
	n.debugMu.Lock()
	if prev := n.debugSrv; prev != nil {
		_ = prev.Close()
	}
	n.debugSrv = srv
	n.debugMu.Unlock()
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr(), nil
}

// send transmits one frame to every peer (the one-hop broadcast). Called
// with the node lock held (all protocol entry points hold it).
func (n *UDPNode) send(pkt *wire.Packet) {
	buf := pkt.Marshal()
	// One tx event per frame put on the air, not per peer: the peer loop
	// emulates a single radio broadcast.
	n.txFrames++
	pkt.Meta.Frame = n.txFrames
	n.obs.OnPacketTx(n.clock.Now(), n.id, pkt.Kind, pkt.ID(), pkt.Meta)
	for _, peer := range n.peers {
		// Best-effort datagrams: losses are the protocol's problem by
		// design, so write errors are intentionally dropped.
		_, _ = n.conn.WriteToUDP(buf, peer) //bbvet:errflow a lost datagram is indistinguishable from a lost packet; gossip/recovery handles both
	}
}

// readLoop pulls datagrams off the socket, decodes them and hands them to the
// protocol goroutine through the bounded inbox. It never takes the node lock
// and never blocks on the protocol: when the inbox is full the datagram is
// dropped (with an ingress-drop event), so a flooder saturating the protocol
// layer cannot wedge the kernel receive path.
func (n *UDPNode) readLoop() {
	defer close(n.done)
	bufp := readBufs.Get().(*[]byte)
	defer readBufs.Put(bufp)
	buf := *bufp
	for {
		sz, _, err := n.conn.ReadFromUDP(buf)
		if err != nil {
			select {
			case <-n.closed:
				return
			default:
			}
			if errors.Is(err, net.ErrClosed) {
				// The socket is gone for good; without this the loop would
				// spin hot on a permanently failing read.
				return
			}
			// Transient read errors: keep serving until closed.
			continue
		}
		pkt, err := wire.Unmarshal(buf[:sz])
		if err != nil {
			continue // garbage datagram
		}
		select {
		case n.inbox <- pkt:
		default:
			// Protocol layer saturated: shed at ingress. The registry
			// observer's counters are atomic, so this is safe off the
			// protocol goroutine.
			n.obs.OnAdmission(n.clock.Now(), n.id, obsv.AdmitIngressDrop)
		}
	}
}

// procLoop drains the inbox into the protocol under the node lock.
func (n *UDPNode) procLoop() {
	defer close(n.procDone)
	for pkt := range n.inbox {
		n.mu.Lock()
		n.proto.HandlePacket(pkt)
		n.mu.Unlock()
	}
}

// Close stops the node and waits for its read and protocol loops to exit. It
// returns promptly even if the read loop is blocked in a kernel read: an
// immediate read deadline forces the pending ReadFromUDP to fail before the
// socket is torn down, so the loop observes the closed flag without waiting
// for traffic.
func (n *UDPNode) Close() error {
	var err error
	n.closeOnce.Do(func() {
		close(n.closed)
		n.debugMu.Lock()
		if n.debugSrv != nil {
			_ = n.debugSrv.Close()
			n.debugSrv = nil
		}
		n.debugMu.Unlock()
		_ = n.conn.SetReadDeadline(time.Now())
		n.mu.Lock()
		n.proto.Stop()
		n.mu.Unlock()
		err = n.conn.Close()
		<-n.done
		// The reader is gone; close the inbox so the protocol goroutine
		// drains whatever was queued (HandlePacket is a no-op after Stop)
		// and exits.
		close(n.inbox)
		<-n.procDone
		if n.dev != nil {
			if cerr := n.dev.Close(); err == nil {
				err = cerr
			}
		}
	})
	return err
}
