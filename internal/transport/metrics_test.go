package transport

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"bbcast/internal/obsv"
	"bbcast/internal/wire"
)

func httpGet(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read: %v", url, err)
	}
	return resp.StatusCode, string(body)
}

// promValue extracts one sample value from a Prometheus text exposition.
func promValue(body, series string) (float64, bool) {
	for _, line := range strings.Split(body, "\n") {
		if rest, ok := strings.CutPrefix(line, series+" "); ok {
			var v float64
			if _, err := fmt.Sscanf(rest, "%g", &v); err == nil {
				return v, true
			}
		}
	}
	return 0, false
}

// TestUDPMetricsSmoke is the CI smoke: two live UDP nodes exchange one
// broadcast, and the sender's debug endpoint must expose non-zero
// bbcast_tx_total while the receiver counts the matching rx and accept.
func TestUDPMetricsSmoke(t *testing.T) {
	nodes, sinks := mesh(t, 2)
	addr0, err := nodes[0].ServeDebug("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr1, err := nodes[1].ServeDebug("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	id := nodes[0].Broadcast([]byte("scrape me"))
	if !waitFor(t, 5*time.Second, func() bool { return sinks[1].has(id) }) {
		t.Fatalf("receiver never delivered %v", id)
	}

	status, body := httpGet(t, fmt.Sprintf("http://%s/metrics", addr0))
	if status != http.StatusOK {
		t.Fatalf("/metrics status = %d", status)
	}
	if !strings.Contains(body, "# TYPE bbcast_tx_total counter") {
		t.Fatalf("exposition missing TYPE line:\n%s", body)
	}
	txData, ok := promValue(body, `bbcast_tx_total{kind="data"}`)
	if !ok || txData == 0 {
		t.Fatalf("sender tx data = %v (found=%v); scrape:\n%s", txData, ok, body)
	}
	if injects, _ := promValue(body, "bbcast_injects_total"); injects != 1 {
		t.Fatalf("sender injects = %v, want 1", injects)
	}

	_, body1 := httpGet(t, fmt.Sprintf("http://%s/metrics", addr1))
	if rxData, ok := promValue(body1, `bbcast_rx_total{kind="data"}`); !ok || rxData == 0 {
		t.Fatalf("receiver rx data = %v", rxData)
	}
	if accepts, _ := promValue(body1, "bbcast_accepts_total"); accepts == 0 {
		t.Fatal("receiver accepts = 0 after delivery")
	}
}

func TestUDPMetricsJSONAndStatus(t *testing.T) {
	nodes, _ := mesh(t, 2)
	addr, err := nodes[0].ServeDebug("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	nodes[0].Broadcast([]byte("x"))

	_, body := httpGet(t, fmt.Sprintf("http://%s/metrics.json", addr))
	var d obsv.Dump
	if err := json.Unmarshal([]byte(body), &d); err != nil {
		t.Fatalf("/metrics.json is not a registry dump: %v\n%s", err, body)
	}
	if d.Counters[obsv.MetricInjectsTotal] != 1 {
		t.Fatalf("injects in dump = %d", d.Counters[obsv.MetricInjectsTotal])
	}

	_, body = httpGet(t, fmt.Sprintf("http://%s/status", addr))
	var st struct {
		ID   *int   `json:"id"`
		Role string `json:"role"`
	}
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatalf("/status is not JSON: %v\n%s", err, body)
	}
	if st.ID == nil || wire.NodeID(*st.ID) != nodes[0].ID() || st.Role == "" {
		t.Fatalf("/status = %s", body)
	}

	status, _ := httpGet(t, fmt.Sprintf("http://%s/debug/vars", addr))
	if status != http.StatusOK {
		t.Fatalf("/debug/vars status = %d", status)
	}
}

func TestServeDebugReplacesAndClosesWithNode(t *testing.T) {
	nodes, _ := mesh(t, 2)
	addr1, err := nodes[0].ServeDebug("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr2, err := nodes[0].ServeDebug("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	// The first server is gone, the second serves.
	if _, err := http.Get(fmt.Sprintf("http://%s/metrics", addr1)); err == nil {
		t.Fatal("replaced debug server still serving")
	}
	if status, _ := httpGet(t, fmt.Sprintf("http://%s/metrics", addr2)); status != http.StatusOK {
		t.Fatalf("second debug server status = %d", status)
	}
	nodes[0].Close()
	if _, err := http.Get(fmt.Sprintf("http://%s/metrics", addr2)); err == nil {
		t.Fatal("debug server survived node Close")
	}
}
