package transport

import (
	"testing"

	"bbcast/internal/sig"
)

// TestSecureSeedDistinct checks the crypto/rand seed path never repeats: the
// previous wall-clock seed collided for nodes created in the same nanosecond.
func TestSecureSeedDistinct(t *testing.T) {
	seen := map[int64]bool{}
	for i := 0; i < 16; i++ {
		s := secureSeed()
		if seen[s] {
			t.Fatalf("secureSeed returned %d twice in 16 draws", s)
		}
		seen[s] = true
	}
}

// TestRandSeedInjectable checks the seed hook: a test can pin the protocol
// RNG seed, and node construction draws exactly one seed through it.
func TestRandSeedInjectable(t *testing.T) {
	old := randSeed
	defer func() { randSeed = old }()
	calls := 0
	randSeed = func() int64 { calls++; return 42 }

	n, err := NewUDPNode(fastConfig(), 0, sig.NewHMAC(1, 1), "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	if calls != 1 {
		t.Fatalf("node construction drew %d seeds, want exactly 1", calls)
	}
}
