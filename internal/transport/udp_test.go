package transport

import (
	"net"
	"runtime"
	"sync"
	"testing"
	"time"

	"bbcast/internal/core"
	"bbcast/internal/sig"
	"bbcast/internal/wire"
)

// fastConfig shrinks protocol periods so tests over loopback finish quickly.
func fastConfig() core.Config {
	cfg := core.DefaultConfig()
	cfg.GossipInterval = 100 * time.Millisecond
	cfg.GossipJitter = 20 * time.Millisecond
	cfg.MaintenanceInterval = 100 * time.Millisecond
	cfg.MaintenanceJitter = 20 * time.Millisecond
	cfg.RequestDelay = 50 * time.Millisecond
	cfg.NeighborTTL = time.Second
	return cfg
}

type sink struct {
	mu  sync.Mutex
	got map[wire.MsgID][]byte
}

func newSink() *sink { return &sink{got: map[wire.MsgID][]byte{}} }

func (s *sink) deliver(_ wire.NodeID, id wire.MsgID, payload []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	cp := make([]byte, len(payload))
	copy(cp, payload)
	s.got[id] = cp
}

func (s *sink) has(id wire.MsgID) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.got[id]
	return ok
}

func waitFor(t *testing.T, timeout time.Duration, cond func() bool) bool {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return true
		}
		time.Sleep(10 * time.Millisecond)
	}
	return cond()
}

// mesh builds n fully connected loopback nodes.
func mesh(t *testing.T, n int) ([]*UDPNode, []*sink) {
	t.Helper()
	scheme := sig.NewHMAC(n, 1)
	nodes := make([]*UDPNode, n)
	sinks := make([]*sink, n)
	for i := 0; i < n; i++ {
		sinks[i] = newSink()
		node, err := NewUDPNode(fastConfig(), wire.NodeID(i), scheme, "127.0.0.1:0", sinks[i].deliver)
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = node
		t.Cleanup(func() { node.Close() })
	}
	for i, node := range nodes {
		var peers []string
		for j, other := range nodes {
			if i != j {
				peers = append(peers, other.Addr().String())
			}
		}
		if err := node.SetPeers(peers); err != nil {
			t.Fatal(err)
		}
	}
	return nodes, sinks
}

func TestUDPBroadcastDelivers(t *testing.T) {
	nodes, sinks := mesh(t, 3)
	id := nodes[0].Broadcast([]byte("over the air"))
	for i := 1; i < 3; i++ {
		if !waitFor(t, 5*time.Second, func() bool { return sinks[i].has(id) }) {
			t.Fatalf("node %d never delivered %v", i, id)
		}
	}
	sinks[1].mu.Lock()
	payload := string(sinks[1].got[id])
	sinks[1].mu.Unlock()
	if payload != "over the air" {
		t.Fatalf("payload = %q", payload)
	}
}

func TestUDPLateJoinerRecoversViaGossip(t *testing.T) {
	// A node that joins after the broadcast has no way to get the data
	// except the signature-gossip + request path — the protocol's core
	// recovery mechanism, here over real sockets.
	scheme := sig.NewHMAC(4, 1)
	sinkA, sinkB, sinkC := newSink(), newSink(), newSink()
	a, err := NewUDPNode(fastConfig(), 0, scheme, "127.0.0.1:0", sinkA.deliver)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := NewUDPNode(fastConfig(), 1, scheme, "127.0.0.1:0", sinkB.deliver)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if err := a.SetPeers([]string{b.Addr().String()}); err != nil {
		t.Fatal(err)
	}
	if err := b.SetPeers([]string{a.Addr().String()}); err != nil {
		t.Fatal(err)
	}

	id := a.Broadcast([]byte("early message"))
	if !waitFor(t, 5*time.Second, func() bool { return sinkB.has(id) }) {
		t.Fatal("peer never delivered the initial broadcast")
	}

	// C joins late; A and B learn about it via its traffic and gossip the
	// old message's signature; C requests and recovers it.
	c, err := NewUDPNode(fastConfig(), 2, scheme, "127.0.0.1:0", sinkC.deliver)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	all := []string{a.Addr().String(), b.Addr().String(), c.Addr().String()}
	for i, n := range []*UDPNode{a, b, c} {
		var peers []string
		for j, addr := range all {
			if i != j {
				peers = append(peers, addr)
			}
		}
		if err := n.SetPeers(peers); err != nil {
			t.Fatal(err)
		}
	}
	if !waitFor(t, 10*time.Second, func() bool { return sinkC.has(id) }) {
		t.Fatal("late joiner never recovered the message via gossip")
	}
}

func TestUDPCloseIdempotent(t *testing.T) {
	scheme := sig.NewHMAC(1, 1)
	n, err := NewUDPNode(fastConfig(), 0, scheme, "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Close(); err != nil {
		t.Fatal(err)
	}
	if err := n.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestUDPGarbageDatagramIgnored(t *testing.T) {
	// Garbage and truncated datagrams must not wedge the read loop.
	nodes, sinks := mesh(t, 2)
	conn, err := net.Dial("udp", nodes[1].Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte{0xde, 0xad, 0xbe, 0xef}); err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write(nil); err != nil {
		t.Fatal(err)
	}
	id := nodes[0].Broadcast([]byte("still alive"))
	if !waitFor(t, 5*time.Second, func() bool { return sinks[1].has(id) }) {
		t.Fatal("node stopped processing after garbage datagrams")
	}
}

func TestUDPBadListenAddress(t *testing.T) {
	scheme := sig.NewHMAC(1, 1)
	if _, err := NewUDPNode(fastConfig(), 0, scheme, "not-an-address", nil); err == nil {
		t.Fatal("bad listen address accepted")
	}
}

func TestUDPBadPeerAddress(t *testing.T) {
	scheme := sig.NewHMAC(1, 1)
	n, err := NewUDPNode(fastConfig(), 0, scheme, "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	if err := n.SetPeers([]string{"::not valid::"}); err == nil {
		t.Fatal("bad peer address accepted")
	}
}

func TestUDPWithDeploymentKeystores(t *testing.T) {
	// The full deployment path: generate per-node key files, load each
	// node's own file, run the protocol over UDP with real Ed25519.
	dir := t.TempDir()
	if err := sig.GenerateKeystores(dir, 2, 9); err != nil {
		t.Fatal(err)
	}
	sinks := []*sink{newSink(), newSink()}
	nodes := make([]*UDPNode, 2)
	for i := 0; i < 2; i++ {
		keys, err := sig.LoadKeystore(sig.KeystorePath(dir, uint32(i)))
		if err != nil {
			t.Fatal(err)
		}
		node, err := NewUDPNode(fastConfig(), wire.NodeID(i), keys, "127.0.0.1:0", sinks[i].deliver)
		if err != nil {
			t.Fatal(err)
		}
		defer node.Close()
		nodes[i] = node
	}
	if err := nodes[0].SetPeers([]string{nodes[1].Addr().String()}); err != nil {
		t.Fatal(err)
	}
	if err := nodes[1].SetPeers([]string{nodes[0].Addr().String()}); err != nil {
		t.Fatal(err)
	}
	id := nodes[0].Broadcast([]byte("keystore-signed"))
	if !waitFor(t, 5*time.Second, func() bool { return sinks[1].has(id) }) {
		t.Fatal("message never delivered under deployment keystores")
	}
}

func TestUDPClosePromptAndLeakFree(t *testing.T) {
	scheme := sig.NewHMAC(1, 4)
	before := runtime.NumGoroutine()
	// A batch of idle nodes: every read loop is blocked in the kernel with
	// no traffic to wake it, the worst case for Close.
	var nodes []*UDPNode
	for i := 0; i < 4; i++ {
		n, err := NewUDPNode(fastConfig(), wire.NodeID(i), scheme, "127.0.0.1:0", nil)
		if err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, n)
	}
	start := time.Now()
	done := make(chan struct{})
	go func() {
		for _, n := range nodes {
			if err := n.Close(); err != nil {
				t.Errorf("Close: %v", err)
			}
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not return within 5s")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("Close took %s on idle nodes", elapsed)
	}
	// The read loops must all be gone; poll briefly since goroutine exit
	// is asynchronous with the done-channel close.
	deadline := time.Now().Add(3 * time.Second)
	for {
		if g := runtime.NumGoroutine(); g <= before {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutines leaked: %d -> %d\n%s",
				before, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func TestUDPRestartResumesSequence(t *testing.T) {
	// A node restarted over the same durable-state directory must carry on
	// from its persisted sequence number instead of reusing ids — the
	// at-most-once guarantee for a live deployment that loses power.
	dir := t.TempDir()
	scheme := sig.NewHMAC(2, 1)
	sink0 := newSink()

	node, err := NewUDPNodeDir(fastConfig(), 0, scheme, "127.0.0.1:0", dir, sink0.deliver)
	if err != nil {
		t.Fatal(err)
	}
	a := node.Broadcast([]byte("first life, first"))
	b := node.Broadcast([]byte("first life, second"))
	if err := node.Close(); err != nil {
		t.Fatal(err)
	}

	reborn, err := NewUDPNodeDir(fastConfig(), 0, scheme, "127.0.0.1:0", dir, sink0.deliver)
	if err != nil {
		t.Fatal(err)
	}
	defer reborn.Close()
	c := reborn.Broadcast([]byte("second life"))
	if c == a || c == b {
		t.Fatalf("restarted node reused message id %v (earlier: %v, %v)", c, a, b)
	}
	if c.Seq <= b.Seq {
		t.Fatalf("sequence went backwards across restart: %d after %d", c.Seq, b.Seq)
	}
}
