package obsv

import (
	"math/rand"
	"testing"
)

// TestSummaryStatsEdgeTable drives the Summary digest through its boundary
// shapes in one table: empty, single sample, exactly-full ring, wraparound
// at capacity, and a deep wrap where the retained window is a small suffix.
func TestSummaryStatsEdgeTable(t *testing.T) {
	seq := func(from, to int) []float64 {
		var out []float64
		for i := from; i <= to; i++ {
			out = append(out, float64(i))
		}
		return out
	}
	cases := []struct {
		name    string
		cap     int
		samples []float64
		want    SummaryStats
	}{
		{
			name: "empty", cap: 8,
			want: SummaryStats{},
		},
		{
			name: "single sample", cap: 8, samples: []float64{42},
			// Every quantile of a singleton is the sample itself.
			want: SummaryStats{Count: 1, Sum: 42, P50: 42, P95: 42, P99: 42},
		},
		{
			name: "two samples", cap: 8, samples: []float64{10, 20},
			// Nearest rank: round(0.5*2)=1 → first; round(0.95*2)=2 → second.
			want: SummaryStats{Count: 2, Sum: 30, P50: 10, P95: 20, P99: 20},
		},
		{
			name: "exactly at capacity", cap: 4, samples: seq(1, 4),
			want: SummaryStats{Count: 4, Sum: 10, P50: 2, P95: 4, P99: 4},
		},
		{
			name: "one past capacity", cap: 4, samples: seq(1, 5),
			// Ring retains 2..5; count and sum still cover everything.
			want: SummaryStats{Count: 5, Sum: 15, P50: 3, P95: 5, P99: 5},
		},
		{
			name: "deep wraparound", cap: 4, samples: seq(1, 100),
			// Retained window is 97..100.
			want: SummaryStats{Count: 100, Sum: 5050, P50: 98, P95: 100, P99: 100},
		},
		{
			name: "identical samples", cap: 4, samples: []float64{7, 7, 7, 7, 7, 7},
			want: SummaryStats{Count: 6, Sum: 42, P50: 7, P95: 7, P99: 7},
		},
		{
			name: "unsorted input", cap: 8, samples: []float64{9, 1, 5, 3, 7},
			want: SummaryStats{Count: 5, Sum: 25, P50: 5, P95: 9, P99: 9},
		},
	}
	for _, tc := range cases {
		s := NewRegistry().Summary(tc.name, tc.cap)
		for _, v := range tc.samples {
			s.Observe(v)
		}
		if got := s.Stats(); got != tc.want {
			t.Errorf("%s: stats = %+v, want %+v", tc.name, got, tc.want)
		}
	}
}

// TestSummaryQuantileMonotonic: for any fill pattern, p50 ≤ p95 ≤ p99 ≤ max
// of the retained window — the digest must never invert its own quantiles.
func TestSummaryQuantileMonotonic(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 50; trial++ {
		cap := 1 + rng.Intn(64)
		n := 1 + rng.Intn(200)
		s := NewRegistry().Summary("m", cap)
		var all []float64
		for i := 0; i < n; i++ {
			v := rng.NormFloat64() * 100
			s.Observe(v)
			all = append(all, v)
		}
		retained := all
		if len(all) > cap {
			retained = all[len(all)-cap:]
		}
		max := retained[0]
		for _, v := range retained {
			if v > max {
				max = v
			}
		}
		st := s.Stats()
		if !(st.P50 <= st.P95 && st.P95 <= st.P99 && st.P99 <= max) {
			t.Fatalf("trial %d (cap %d, n %d): quantiles not monotonic: p50=%v p95=%v p99=%v max=%v",
				trial, cap, n, st.P50, st.P95, st.P99, max)
		}
	}
}
