package obsv

import (
	"testing"
	"time"

	"bbcast/internal/overlay"
	"bbcast/internal/wire"
)

func TestRegistryObserverCountsByKind(t *testing.T) {
	r := NewRegistry()
	o := NewRegistryObserver(r)
	o.OnPacketTx(0, 1, wire.KindData, wire.MsgID{}, wire.Meta{})
	o.OnPacketTx(0, 1, wire.KindData, wire.MsgID{}, wire.Meta{})
	o.OnPacketRx(0, 2, wire.KindGossip, wire.MsgID{}, wire.Meta{})
	o.OnPacketRx(0, 2, wire.Kind(99), wire.MsgID{}, wire.Meta{}) // out of range → "unknown"
	if got := r.Counter(`bbcast_tx_total{kind="data"}`).Value(); got != 2 {
		t.Fatalf("tx data = %d", got)
	}
	if got := r.Counter(`bbcast_rx_total{kind="gossip"}`).Value(); got != 1 {
		t.Fatalf("rx gossip = %d", got)
	}
	if got := r.Counter(`bbcast_rx_total{kind="unknown"}`).Value(); got != 1 {
		t.Fatalf("rx unknown = %d", got)
	}
}

func TestRegistryObserverDeliveryLatency(t *testing.T) {
	r := NewRegistry()
	o := NewRegistryObserver(r)
	id := wire.MsgID{Origin: 1, Seq: 1}
	o.OnInject(time.Second, 1, id)
	o.OnAccept(time.Second, 1, id, nil, wire.Meta{})                  // originator: excluded
	o.OnAccept(1500*time.Millisecond, 2, id, nil, wire.Meta{})        // 0.5 s
	o.OnAccept(3*time.Second, 3, id, nil, wire.Meta{})                // 2 s
	o.OnAccept(0, 4, wire.MsgID{Origin: 9, Seq: 9}, nil, wire.Meta{}) // unknown inject: counted, no latency
	if got := r.Counter(MetricInjectsTotal).Value(); got != 1 {
		t.Fatalf("injects = %d", got)
	}
	if got := r.Counter(MetricAcceptsTotal).Value(); got != 4 {
		t.Fatalf("accepts = %d", got)
	}
	st := r.Summary(MetricDeliveryLatency, 0).Stats()
	if st.Count != 2 || st.Sum != 2.5 {
		t.Fatalf("latency = %+v, want count 2 sum 2.5", st)
	}
}

func TestRegistryObserverLineageMetrics(t *testing.T) {
	r := NewRegistry()
	o := NewRegistryObserver(r)
	id := wire.MsgID{Origin: 1, Seq: 1}
	o.OnInject(time.Second, 1, id)
	o.OnAccept(time.Second, 1, id, nil, wire.Meta{})                             // own delivery: no hop sample
	o.OnAccept(2*time.Second, 2, id, nil, wire.Meta{Hops: 2})                    // data path
	o.OnAccept(3*time.Second, 3, id, nil, wire.Meta{Hops: 4, Recovered: true})   // via recovery
	o.OnForwardSuppressed(3*time.Second, 2, id, wire.Meta{Frame: 7})
	st := r.Summary(MetricAcceptHops, 0).Stats()
	if st.Count != 2 || st.Sum != 6 {
		t.Fatalf("accept hops = %+v, want count 2 sum 6", st)
	}
	if got := r.Counter(MetricRecoveryDeliveries).Value(); got != 1 {
		t.Fatalf("recovery deliveries = %d, want 1", got)
	}
	if got := r.Counter(MetricSuppressedTotal).Value(); got != 1 {
		t.Fatalf("suppressed = %d, want 1", got)
	}
}

func TestRegistryObserverOverlayActiveGauge(t *testing.T) {
	r := NewRegistry()
	o := NewRegistryObserver(r)
	o.OnRoleChange(0, 1, overlay.Dominator)
	o.OnRoleChange(0, 2, overlay.Bridge)
	o.OnRoleChange(0, 1, overlay.Bridge) // still active: no delta
	o.OnRoleChange(0, 2, overlay.Passive)
	if got := r.Gauge(MetricOverlayActive).Value(); got != 1 {
		t.Fatalf("active gauge = %v, want 1", got)
	}
	if got := r.Counter(MetricRoleChanges).Value(); got != 4 {
		t.Fatalf("role changes = %d", got)
	}
}

func TestRegistryObserverSuspicions(t *testing.T) {
	r := NewRegistry()
	o := NewRegistryObserver(r)
	o.OnSuspicion(0, 1, 7, DetectorMute, true)
	o.OnSuspicion(0, 1, 7, DetectorMute, true) // dup raise: counter yes, gauge no
	o.OnSuspicion(0, 2, 7, DetectorVerbose, true)
	o.OnSuspicion(0, 1, 7, DetectorMute, false)
	if got := r.Counter(`bbcast_suspicions_total{detector="mute",event="raised"}`).Value(); got != 2 {
		t.Fatalf("mute raised = %d", got)
	}
	if got := r.Counter(`bbcast_suspicions_total{detector="mute",event="cleared"}`).Value(); got != 1 {
		t.Fatalf("mute cleared = %d", got)
	}
	if got := r.Gauge(MetricSuspectedNodes).Value(); got != 1 {
		t.Fatalf("suspected gauge = %v, want 1 (verbose still standing)", got)
	}
}

func TestRegistryObserverSigVerify(t *testing.T) {
	r := NewRegistry()
	o := NewRegistryObserver(r)
	o.OnSigVerify(0, 1, true, 2*time.Millisecond)
	o.OnSigVerify(0, 1, false, time.Millisecond)
	if got := r.Counter(MetricSigVerifyFails).Value(); got != 1 {
		t.Fatalf("fails = %d", got)
	}
	if st := r.Summary(MetricSigVerifySecs, 0).Stats(); st.Count != 2 {
		t.Fatalf("verify summary = %+v", st)
	}
}

func TestRegistryObserverQueueDepthSumsNodes(t *testing.T) {
	r := NewRegistry()
	o := NewRegistryObserver(r)
	o.OnQueueDepth(0, 1, QueueStore, 5)
	o.OnQueueDepth(0, 2, QueueStore, 3)
	o.OnQueueDepth(0, 1, QueueStore, 2) // resample replaces node 1's last value
	if got := r.Gauge(`bbcast_queue_depth{queue="store"}`).Value(); got != 5 {
		t.Fatalf("store depth = %v, want 5 (2+3)", got)
	}
}

func TestRegistryObserverExposesFullSchemaWhenIdle(t *testing.T) {
	r := NewRegistry()
	NewRegistryObserver(r)
	d := r.Snapshot()
	for _, name := range []string{
		`bbcast_tx_total{kind="data"}`, `bbcast_rx_total{kind="overlay-state"}`,
		MetricAcceptsTotal, MetricInjectsTotal, MetricRoleChanges, MetricSigVerifyFails,
		MetricRecoveryDeliveries, MetricSuppressedTotal,
	} {
		if _, ok := d.Counters[name]; !ok {
			t.Fatalf("idle schema missing counter %q", name)
		}
	}
	for _, name := range []string{
		MetricOverlayActive, MetricSuspectedNodes, `bbcast_queue_depth{queue="missing"}`,
	} {
		if _, ok := d.Gauges[name]; !ok {
			t.Fatalf("idle schema missing gauge %q", name)
		}
	}
	for _, name := range []string{MetricDeliveryLatency, MetricSigVerifySecs, MetricAcceptHops} {
		if _, ok := d.Summaries[name]; !ok {
			t.Fatalf("idle schema missing summary %q", name)
		}
	}
}
