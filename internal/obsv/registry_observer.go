package obsv

import (
	"sync"
	"time"

	"bbcast/internal/overlay"
	"bbcast/internal/wire"
)

// Metric names exposed by RegistryObserver. Kind- and detector-specific
// series carry a label, e.g. `bbcast_tx_total{kind="data"}`.
const (
	MetricTxTotal         = "bbcast_tx_total"
	MetricRxTotal         = "bbcast_rx_total"
	MetricAcceptsTotal    = "bbcast_accepts_total"
	MetricInjectsTotal    = "bbcast_injects_total"
	MetricRoleChanges     = "bbcast_role_changes_total"
	MetricOverlayActive   = "bbcast_overlay_active"
	MetricSuspicionsTotal = "bbcast_suspicions_total"
	MetricSuspectedNodes  = "bbcast_suspected_nodes"
	MetricSigVerifyFails  = "bbcast_sigverify_fail_total"
	MetricSigVerifySecs   = "bbcast_sigverify_seconds"
	MetricQueueDepth      = "bbcast_queue_depth"
	MetricDeliveryLatency = "bbcast_delivery_latency_seconds"
	MetricAdmissionTotal  = "bbcast_admission_total"
	MetricAdaptationTotal = "bbcast_adaptation_total"
	MetricRetryTotal      = "bbcast_retry_total"
	// MetricAcceptHops summarizes the data-path hop count of each remote
	// acceptance (the originator's own delivery, hops 0, is excluded).
	MetricAcceptHops = "bbcast_accept_hops"
	// MetricRecoveryDeliveries counts remote acceptances whose payload
	// travelled through gossip recovery at any hop.
	MetricRecoveryDeliveries = "bbcast_recovery_deliveries_total"
	// MetricSuppressedTotal counts redundant data frames suppressed instead
	// of forwarded.
	MetricSuppressedTotal = "bbcast_forward_suppressed_total"
	// MetricSyncTotal counts catch-up sync actions by event.
	MetricSyncTotal = "bbcast_sync_total"
	// MetricSyncEntries counts messages moved by catch-up sync, by event.
	MetricSyncEntries = "bbcast_sync_entries_total"
	// MetricSyncBytes counts on-air bytes served in SYNC-RESP transfers.
	MetricSyncBytes = "bbcast_sync_bytes_total"
	// MetricRejoins counts amnesiac rejoins (volatile state wiped and
	// re-initialized).
	MetricRejoins = "bbcast_rejoins_total"
	// MetricRejoinRestored counts dedup tombstones restored from the durable
	// store across all rejoins.
	MetricRejoinRestored = "bbcast_rejoin_restored_total"
)

// maxTrackedInjects bounds the inject-time map used to derive delivery
// latency; injects beyond the bound still count but stop feeding the latency
// summary.
const maxTrackedInjects = 65536

type suspicionKey struct {
	node, subject wire.NodeID
	detector      Detector
}

// RegistryObserver folds protocol events into a Registry: tx/rx counters by
// kind, accept/inject/role-change counters, suspicion counters and a live
// suspected-nodes gauge, a signature-verify duration summary, per-queue depth
// gauges, and an end-to-end delivery-latency summary (inject-to-accept,
// excluding the originator's own delivery, mirroring the simulation metrics).
// Per-kind and per-outcome handles are resolved once at construction so the
// hot-path methods only touch atomics.
type RegistryObserver struct {
	tx [wire.NumKinds + 1]*Counter
	rx [wire.NumKinds + 1]*Counter

	accepts     *Counter
	injects     *Counter
	roleChanges *Counter

	suspRaised  map[Detector]*Counter
	suspCleared map[Detector]*Counter

	sigFails *Counter
	sigSecs  *Summary

	activeGauge    *Gauge
	suspectedGauge *Gauge
	queueGauges    map[Queue]*Gauge
	admissions     map[AdmissionEvent]*Counter
	adaptations    map[AdaptiveTimer]*Counter
	retriesSent    *Counter
	retriesGivenUp *Counter

	latency            *Summary
	acceptHops         *Summary
	recoveryDeliveries *Counter
	suppressed         *Counter

	syncEvents     map[SyncEvent]*Counter
	syncEntries    map[SyncEvent]*Counter
	syncBytes      *Counter
	rejoins        *Counter
	rejoinRestored *Counter

	mu        sync.Mutex
	active    map[wire.NodeID]bool
	suspected map[suspicionKey]struct{}
	queues    map[Queue]map[wire.NodeID]int
	injectAt  map[wire.MsgID]time.Duration
}

var _ Observer = (*RegistryObserver)(nil)

// NewRegistryObserver binds an observer to r, registering every metric it
// maintains (so an idle node still exposes the full schema at zero).
func NewRegistryObserver(r *Registry) *RegistryObserver {
	o := &RegistryObserver{
		accepts:            r.Counter(MetricAcceptsTotal),
		injects:            r.Counter(MetricInjectsTotal),
		roleChanges:        r.Counter(MetricRoleChanges),
		suspRaised:         make(map[Detector]*Counter, 3),
		suspCleared:        make(map[Detector]*Counter, 3),
		sigFails:           r.Counter(MetricSigVerifyFails),
		sigSecs:            r.Summary(MetricSigVerifySecs, 0),
		activeGauge:        r.Gauge(MetricOverlayActive),
		suspectedGauge:     r.Gauge(MetricSuspectedNodes),
		queueGauges:        make(map[Queue]*Gauge, 6),
		admissions:         make(map[AdmissionEvent]*Counter, 8),
		adaptations:        make(map[AdaptiveTimer]*Counter, 2),
		retriesSent:        r.Counter(labelled(MetricRetryTotal, "event", "sent")),
		retriesGivenUp:     r.Counter(labelled(MetricRetryTotal, "event", "abandoned")),
		latency:            r.Summary(MetricDeliveryLatency, 0),
		acceptHops:         r.Summary(MetricAcceptHops, 0),
		recoveryDeliveries: r.Counter(MetricRecoveryDeliveries),
		suppressed:         r.Counter(MetricSuppressedTotal),
		syncEvents:         make(map[SyncEvent]*Counter, 4),
		syncEntries:        make(map[SyncEvent]*Counter, 4),
		syncBytes:          r.Counter(MetricSyncBytes),
		rejoins:            r.Counter(MetricRejoins),
		rejoinRestored:     r.Counter(MetricRejoinRestored),
		active:             make(map[wire.NodeID]bool),
		suspected:          make(map[suspicionKey]struct{}),
		queues:             make(map[Queue]map[wire.NodeID]int, 4),
		injectAt:           make(map[wire.MsgID]time.Duration),
	}
	for k := wire.KindData; k <= wire.KindSyncResp; k++ {
		o.tx[k] = r.Counter(labelled(MetricTxTotal, "kind", k.String()))
		o.rx[k] = r.Counter(labelled(MetricRxTotal, "kind", k.String()))
	}
	// Slot 0 absorbs out-of-range kinds rather than panicking.
	o.tx[0] = r.Counter(labelled(MetricTxTotal, "kind", "unknown"))
	o.rx[0] = r.Counter(labelled(MetricRxTotal, "kind", "unknown"))
	for _, d := range []Detector{DetectorMute, DetectorVerbose, DetectorTrust} {
		base := labelled(MetricSuspicionsTotal, "detector", string(d))
		o.suspRaised[d] = r.Counter(labelled(base, "event", "raised"))
		o.suspCleared[d] = r.Counter(labelled(base, "event", "cleared"))
	}
	for _, q := range []Queue{QueueStore, QueueMissing, QueueNeighbors, QueueExpectations, QueueReqSeen, QueueLinkQual} {
		o.queueGauges[q] = r.Gauge(labelled(MetricQueueDepth, "queue", string(q)))
		o.queues[q] = make(map[wire.NodeID]int)
	}
	for _, tm := range []AdaptiveTimer{TimerGossip, TimerMute} {
		o.adaptations[tm] = r.Counter(labelled(MetricAdaptationTotal, "timer", string(tm)))
	}
	for _, e := range []AdmissionEvent{
		AdmitRateLimit, AdmitDedup, AdmitGossipTrim, AdmitNeighborEvict,
		AdmitStoreEvict, AdmitMissingReject, AdmitReqSeenExpire, AdmitIngressDrop,
	} {
		o.admissions[e] = r.Counter(labelled(MetricAdmissionTotal, "event", string(e)))
	}
	for _, e := range []SyncEvent{SyncReqSent, SyncServed, SyncApplied, SyncAbandoned} {
		o.syncEvents[e] = r.Counter(labelled(MetricSyncTotal, "event", string(e)))
		o.syncEntries[e] = r.Counter(labelled(MetricSyncEntries, "event", string(e)))
	}
	return o
}

func (o *RegistryObserver) kindCounter(set *[wire.NumKinds + 1]*Counter, kind wire.Kind) *Counter {
	if kind >= 1 && int(kind) <= wire.NumKinds {
		return set[kind]
	}
	return set[0]
}

// OnPacketTx implements Observer.
func (o *RegistryObserver) OnPacketTx(_ time.Duration, _ wire.NodeID, kind wire.Kind, _ wire.MsgID, _ wire.Meta) {
	o.kindCounter(&o.tx, kind).Inc()
}

// OnPacketRx implements Observer.
func (o *RegistryObserver) OnPacketRx(_ time.Duration, _ wire.NodeID, kind wire.Kind, _ wire.MsgID, _ wire.Meta) {
	o.kindCounter(&o.rx, kind).Inc()
}

// OnInject implements Observer.
func (o *RegistryObserver) OnInject(at time.Duration, _ wire.NodeID, id wire.MsgID) {
	o.injects.Inc()
	o.mu.Lock()
	if len(o.injectAt) < maxTrackedInjects {
		o.injectAt[id] = at
	}
	o.mu.Unlock()
}

// OnAccept implements Observer.
func (o *RegistryObserver) OnAccept(at time.Duration, node wire.NodeID, id wire.MsgID, _ []byte, meta wire.Meta) {
	o.accepts.Inc()
	if node == id.Origin {
		return // own delivery: zero latency by construction, excluded like in metrics.Summarize
	}
	if meta.Hops > 0 {
		o.acceptHops.Observe(float64(meta.Hops))
	}
	if meta.Recovered {
		o.recoveryDeliveries.Inc()
	}
	o.mu.Lock()
	t0, ok := o.injectAt[id]
	o.mu.Unlock()
	if ok {
		o.latency.Observe((at - t0).Seconds())
	}
}

// OnForwardSuppressed implements Observer.
func (o *RegistryObserver) OnForwardSuppressed(_ time.Duration, _ wire.NodeID, _ wire.MsgID, _ wire.Meta) {
	o.suppressed.Inc()
}

// OnRoleChange implements Observer.
func (o *RegistryObserver) OnRoleChange(_ time.Duration, node wire.NodeID, role overlay.Role) {
	o.roleChanges.Inc()
	o.mu.Lock()
	was := o.active[node]
	now := role.Active()
	if was != now {
		o.active[node] = now
		if now {
			o.activeGauge.Add(1)
		} else {
			o.activeGauge.Add(-1)
		}
	}
	o.mu.Unlock()
}

// OnSuspicion implements Observer.
func (o *RegistryObserver) OnSuspicion(_ time.Duration, node, subject wire.NodeID, detector Detector, raised bool) {
	key := suspicionKey{node, subject, detector}
	o.mu.Lock()
	if raised {
		if c := o.suspRaised[detector]; c != nil {
			c.Inc()
		}
		if _, dup := o.suspected[key]; !dup {
			o.suspected[key] = struct{}{}
			o.suspectedGauge.Add(1)
		}
	} else {
		if c := o.suspCleared[detector]; c != nil {
			c.Inc()
		}
		if _, ok := o.suspected[key]; ok {
			delete(o.suspected, key)
			o.suspectedGauge.Add(-1)
		}
	}
	o.mu.Unlock()
}

// OnSigVerify implements Observer.
func (o *RegistryObserver) OnSigVerify(_ time.Duration, _ wire.NodeID, ok bool, took time.Duration) {
	if !ok {
		o.sigFails.Inc()
	}
	o.sigSecs.Observe(took.Seconds())
}

// OnQueueDepth implements Observer.
func (o *RegistryObserver) OnQueueDepth(_ time.Duration, node wire.NodeID, queue Queue, depth int) {
	g := o.queueGauges[queue]
	if g == nil {
		return
	}
	o.mu.Lock()
	perNode := o.queues[queue]
	delta := depth - perNode[node]
	perNode[node] = depth
	o.mu.Unlock()
	if delta != 0 {
		g.Add(float64(delta))
	}
}

// OnAdmission implements Observer.
func (o *RegistryObserver) OnAdmission(_ time.Duration, _ wire.NodeID, event AdmissionEvent) {
	if c := o.admissions[event]; c != nil {
		c.Inc()
	}
}

// OnAdaptation implements Observer.
func (o *RegistryObserver) OnAdaptation(_ time.Duration, _ wire.NodeID, timer AdaptiveTimer, _, _ time.Duration) {
	if c := o.adaptations[timer]; c != nil {
		c.Inc()
	}
}

// OnRetry implements Observer.
func (o *RegistryObserver) OnRetry(_ time.Duration, _ wire.NodeID, _ wire.MsgID, _ int, abandoned bool) {
	if abandoned {
		o.retriesGivenUp.Inc()
	} else {
		o.retriesSent.Inc()
	}
}

// OnSync implements Observer.
func (o *RegistryObserver) OnSync(_ time.Duration, _, _ wire.NodeID, event SyncEvent, entries, bytes int) {
	if c := o.syncEvents[event]; c != nil {
		c.Inc()
	}
	if c := o.syncEntries[event]; c != nil && entries > 0 {
		c.Add(uint64(entries))
	}
	if event == SyncServed && bytes > 0 {
		o.syncBytes.Add(uint64(bytes))
	}
}

// OnRejoin implements Observer.
func (o *RegistryObserver) OnRejoin(_ time.Duration, _ wire.NodeID, restored int) {
	o.rejoins.Inc()
	if restored > 0 {
		o.rejoinRestored.Add(uint64(restored))
	}
}
