package obsv

import (
	"fmt"
	"testing"
	"time"

	"bbcast/internal/overlay"
	"bbcast/internal/wire"
)

// recorder captures every event as a rendered line, preserving order.
type recorder struct {
	events []string
}

func (r *recorder) add(format string, args ...any) {
	r.events = append(r.events, fmt.Sprintf(format, args...))
}

func (r *recorder) OnPacketTx(at time.Duration, node wire.NodeID, kind wire.Kind, id wire.MsgID) {
	r.add("tx %s %d %s %v", at, node, kind, id)
}

func (r *recorder) OnPacketRx(at time.Duration, node wire.NodeID, kind wire.Kind, id wire.MsgID) {
	r.add("rx %s %d %s %v", at, node, kind, id)
}

func (r *recorder) OnInject(at time.Duration, node wire.NodeID, id wire.MsgID) {
	r.add("inject %s %d %v", at, node, id)
}

func (r *recorder) OnAccept(at time.Duration, node wire.NodeID, id wire.MsgID, payload []byte) {
	r.add("accept %s %d %v %q", at, node, id, payload)
}

func (r *recorder) OnRoleChange(at time.Duration, node wire.NodeID, role overlay.Role) {
	r.add("role %s %d %s", at, node, role)
}

func (r *recorder) OnSuspicion(at time.Duration, node, subject wire.NodeID, detector Detector, raised bool) {
	r.add("susp %s %d %d %s %v", at, node, subject, detector, raised)
}

func (r *recorder) OnSigVerify(at time.Duration, node wire.NodeID, ok bool, took time.Duration) {
	r.add("sig %s %d %v %s", at, node, ok, took)
}

func (r *recorder) OnQueueDepth(at time.Duration, node wire.NodeID, queue Queue, depth int) {
	r.add("queue %s %d %s %d", at, node, queue, depth)
}

func (r *recorder) OnAdmission(at time.Duration, node wire.NodeID, event AdmissionEvent) {
	r.add("admit %s %d %s", at, node, event)
}

func (r *recorder) OnAdaptation(at time.Duration, node wire.NodeID, timer AdaptiveTimer, old, new time.Duration) {
	r.add("adapt %s %d %s %s→%s", at, node, timer, old, new)
}

func (r *recorder) OnRetry(at time.Duration, node wire.NodeID, id wire.MsgID, attempt int, abandoned bool) {
	r.add("retry %s %d %v %d %v", at, node, id, attempt, abandoned)
}

// emitAll fires one of each event at o.
func emitAll(o Observer) {
	o.OnPacketTx(1, 2, wire.KindData, wire.MsgID{Origin: 3, Seq: 4})
	o.OnPacketRx(1, 2, wire.KindGossip, wire.MsgID{})
	o.OnInject(2, 3, wire.MsgID{Origin: 3, Seq: 1})
	o.OnAccept(3, 4, wire.MsgID{Origin: 3, Seq: 1}, []byte("p"))
	o.OnRoleChange(4, 5, overlay.Dominator)
	o.OnSuspicion(5, 6, 7, DetectorMute, true)
	o.OnSigVerify(6, 8, false, time.Microsecond)
	o.OnQueueDepth(7, 9, QueueStore, 11)
	o.OnAdmission(8, 10, AdmitRateLimit)
	o.OnAdaptation(9, 11, TimerGossip, time.Second, 800*time.Millisecond)
	o.OnRetry(10, 12, wire.MsgID{Origin: 3, Seq: 1}, 2, false)
}

func TestMultiFansOutEveryEvent(t *testing.T) {
	a, b := &recorder{}, &recorder{}
	m := Multi(a, nil, b)
	emitAll(m)
	if len(a.events) != 11 || len(b.events) != 11 {
		t.Fatalf("fan-out counts = %d, %d, want 11 each", len(a.events), len(b.events))
	}
	for i := range a.events {
		if a.events[i] != b.events[i] {
			t.Fatalf("members diverged at %d: %q vs %q", i, a.events[i], b.events[i])
		}
	}
}

func TestMultiNilHandling(t *testing.T) {
	if Multi() != nil {
		t.Fatal("Multi() should be nil")
	}
	if Multi(nil, nil) != nil {
		t.Fatal("Multi(nil, nil) should be nil")
	}
	r := &recorder{}
	if got := Multi(nil, r, nil); got != Observer(r) {
		t.Fatalf("single member should be returned unwrapped, got %T", got)
	}
}

func TestSkipAccepts(t *testing.T) {
	if SkipAccepts(nil) != nil {
		t.Fatal("SkipAccepts(nil) should be nil")
	}
	r := &recorder{}
	emitAll(SkipAccepts(r))
	if len(r.events) != 10 {
		t.Fatalf("events = %d, want 10 (accept dropped)", len(r.events))
	}
	for _, e := range r.events {
		if e[:6] == "accept" {
			t.Fatalf("accept leaked through: %q", e)
		}
	}
}

func TestNopImplementsObserver(t *testing.T) {
	var o Observer = Nop{}
	emitAll(o) // must not panic
}
