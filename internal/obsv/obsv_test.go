package obsv

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"bbcast/internal/overlay"
	"bbcast/internal/wire"
)

// recorder captures every event as a rendered line, preserving order.
type recorder struct {
	events []string
}

func (r *recorder) add(format string, args ...any) {
	r.events = append(r.events, fmt.Sprintf(format, args...))
}

func (r *recorder) OnPacketTx(at time.Duration, node wire.NodeID, kind wire.Kind, id wire.MsgID, meta wire.Meta) {
	r.add("tx %s %d %s %v f=%d", at, node, kind, id, meta.Frame)
}

func (r *recorder) OnPacketRx(at time.Duration, node wire.NodeID, kind wire.Kind, id wire.MsgID, meta wire.Meta) {
	r.add("rx %s %d %s %v f=%d", at, node, kind, id, meta.Frame)
}

func (r *recorder) OnInject(at time.Duration, node wire.NodeID, id wire.MsgID) {
	r.add("inject %s %d %v", at, node, id)
}

func (r *recorder) OnAccept(at time.Duration, node wire.NodeID, id wire.MsgID, payload []byte, meta wire.Meta) {
	r.add("accept %s %d %v %q hops=%d rec=%v", at, node, id, payload, meta.Hops, meta.Recovered)
}

func (r *recorder) OnForwardSuppressed(at time.Duration, node wire.NodeID, id wire.MsgID, meta wire.Meta) {
	r.add("suppress %s %d %v f=%d", at, node, id, meta.Frame)
}

func (r *recorder) OnRoleChange(at time.Duration, node wire.NodeID, role overlay.Role) {
	r.add("role %s %d %s", at, node, role)
}

func (r *recorder) OnSuspicion(at time.Duration, node, subject wire.NodeID, detector Detector, raised bool) {
	r.add("susp %s %d %d %s %v", at, node, subject, detector, raised)
}

func (r *recorder) OnSigVerify(at time.Duration, node wire.NodeID, ok bool, took time.Duration) {
	r.add("sig %s %d %v %s", at, node, ok, took)
}

func (r *recorder) OnQueueDepth(at time.Duration, node wire.NodeID, queue Queue, depth int) {
	r.add("queue %s %d %s %d", at, node, queue, depth)
}

func (r *recorder) OnAdmission(at time.Duration, node wire.NodeID, event AdmissionEvent) {
	r.add("admit %s %d %s", at, node, event)
}

func (r *recorder) OnAdaptation(at time.Duration, node wire.NodeID, timer AdaptiveTimer, old, new time.Duration) {
	r.add("adapt %s %d %s %s→%s", at, node, timer, old, new)
}

func (r *recorder) OnRetry(at time.Duration, node wire.NodeID, id wire.MsgID, attempt int, abandoned bool) {
	r.add("retry %s %d %v %d %v", at, node, id, attempt, abandoned)
}

func (r *recorder) OnSync(at time.Duration, node, peer wire.NodeID, event SyncEvent, entries, bytes int) {
	r.add("sync %s %d %d %s %d %d", at, node, peer, event, entries, bytes)
}

func (r *recorder) OnRejoin(at time.Duration, node wire.NodeID, restored int) {
	r.add("rejoin %s %d %d", at, node, restored)
}

// emitAll fires one of each event at o.
func emitAll(o Observer) {
	o.OnPacketTx(1, 2, wire.KindData, wire.MsgID{Origin: 3, Seq: 4}, wire.Meta{Frame: 1, Hops: 1, Cause: wire.CauseOrigin})
	o.OnPacketRx(1, 2, wire.KindGossip, wire.MsgID{}, wire.Meta{Frame: 1})
	o.OnInject(2, 3, wire.MsgID{Origin: 3, Seq: 1})
	o.OnAccept(3, 4, wire.MsgID{Origin: 3, Seq: 1}, []byte("p"), wire.Meta{Hops: 2, Recovered: true})
	o.OnForwardSuppressed(3, 5, wire.MsgID{Origin: 3, Seq: 1}, wire.Meta{Frame: 2})
	o.OnRoleChange(4, 5, overlay.Dominator)
	o.OnSuspicion(5, 6, 7, DetectorMute, true)
	o.OnSigVerify(6, 8, false, time.Microsecond)
	o.OnQueueDepth(7, 9, QueueStore, 11)
	o.OnAdmission(8, 10, AdmitRateLimit)
	o.OnAdaptation(9, 11, TimerGossip, time.Second, 800*time.Millisecond)
	o.OnRetry(10, 12, wire.MsgID{Origin: 3, Seq: 1}, 2, false)
	o.OnSync(11, 13, 14, SyncReqSent, 5, 320)
	o.OnRejoin(12, 15, 7)
}

func TestMultiFansOutEveryEvent(t *testing.T) {
	a, b := &recorder{}, &recorder{}
	m := Multi(a, nil, b)
	emitAll(m)
	if len(a.events) != 14 || len(b.events) != 14 {
		t.Fatalf("fan-out counts = %d, %d, want 14 each", len(a.events), len(b.events))
	}
	for i := range a.events {
		if a.events[i] != b.events[i] {
			t.Fatalf("members diverged at %d: %q vs %q", i, a.events[i], b.events[i])
		}
	}
}

func TestMultiNilHandling(t *testing.T) {
	if Multi() != nil {
		t.Fatal("Multi() should be nil")
	}
	if Multi(nil, nil) != nil {
		t.Fatal("Multi(nil, nil) should be nil")
	}
	r := &recorder{}
	if got := Multi(nil, r, nil); got != Observer(r) {
		t.Fatalf("single member should be returned unwrapped, got %T", got)
	}
}

func TestSkipAccepts(t *testing.T) {
	if SkipAccepts(nil) != nil {
		t.Fatal("SkipAccepts(nil) should be nil")
	}
	r := &recorder{}
	emitAll(SkipAccepts(r))
	if len(r.events) != 13 {
		t.Fatalf("events = %d, want 13 (accept dropped)", len(r.events))
	}
	for _, e := range r.events {
		if strings.HasPrefix(e, "accept") {
			t.Fatalf("accept leaked through: %q", e)
		}
	}
}

func TestNopImplementsObserver(t *testing.T) {
	var o Observer = Nop{}
	emitAll(o) // must not panic
}
