package obsv

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. Safe for concurrent use.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a metric that can go up and down. Safe for concurrent use.
type Gauge struct{ bits atomic.Uint64 }

// Set replaces the value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add shifts the value by delta.
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Summary is a bounded-memory sample distribution exposing count, sum and
// the p50/p95/p99 quantiles. It keeps the most recent Cap samples in a ring,
// so quantiles reflect recent behaviour once the ring wraps. Safe for
// concurrent use.
type Summary struct {
	mu    sync.Mutex
	count uint64
	sum   float64
	ring  []float64
	n     int // valid samples in ring
	next  int // ring write cursor
}

// DefaultSummaryCap bounds summary memory when no explicit cap is given:
// large enough that a full default experiment's delivery latencies all fit.
const DefaultSummaryCap = 16384

// Observe records one sample.
func (s *Summary) Observe(v float64) {
	s.mu.Lock()
	s.count++
	s.sum += v
	s.ring[s.next] = v
	s.next = (s.next + 1) % len(s.ring)
	if s.n < len(s.ring) {
		s.n++
	}
	s.mu.Unlock()
}

// SummaryStats is a point-in-time digest of a Summary.
type SummaryStats struct {
	Count uint64  `json:"count"`
	Sum   float64 `json:"sum"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
}

// Stats digests the summary: total count and sum, and nearest-rank quantiles
// over the retained samples (the same nearest-rank rule the simulation
// metrics use, so the two agree on identical sample sets).
func (s *Summary) Stats() SummaryStats {
	s.mu.Lock()
	st := SummaryStats{Count: s.count, Sum: s.sum}
	samples := make([]float64, s.n)
	copy(samples, s.ring[:s.n])
	s.mu.Unlock()
	if len(samples) == 0 {
		return st
	}
	sort.Float64s(samples)
	st.P50 = quantile(samples, 0.50)
	st.P95 = quantile(samples, 0.95)
	st.P99 = quantile(samples, 0.99)
	return st
}

// quantile returns the nearest-rank q-quantile of sorted samples, with the
// same rounding as internal/metrics.percentile.
func quantile(sorted []float64, q float64) float64 {
	idx := int(q*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// Registry is a named collection of counters, gauges and summaries with
// Prometheus-style text exposition and a JSON dump sharing one schema
// between live nodes and simulation runs. Metric names may carry a label
// suffix in Prometheus syntax (`name{k="v"}`); the base name groups the
// exposition. Safe for concurrent use; get-or-create calls are intended for
// setup, with handles cached by the hot path.
type Registry struct {
	mu        sync.Mutex
	counters  map[string]*Counter
	gauges    map[string]*Gauge
	summaries map[string]*Summary
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:  make(map[string]*Counter),
		gauges:    make(map[string]*Gauge),
		summaries: make(map[string]*Summary),
	}
}

// Counter returns the counter registered under name, creating it if needed.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge registered under name, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Summary returns the summary registered under name, creating it with the
// given sample capacity if needed (cap <= 0 uses DefaultSummaryCap).
func (r *Registry) Summary(name string, cap int) *Summary {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.summaries[name]
	if s == nil {
		if cap <= 0 {
			cap = DefaultSummaryCap
		}
		s = &Summary{ring: make([]float64, cap)}
		r.summaries[name] = s
	}
	return s
}

// baseName strips a label suffix: `a_total{kind="data"}` -> `a_total`.
func baseName(name string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i]
	}
	return name
}

// labelled re-renders name with an extra label appended inside the braces
// (or a fresh label set when it has none).
func labelled(name, k, v string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:len(name)-1] + "," + k + "=\"" + v + "\"}"
	}
	return name + "{" + k + "=\"" + v + "\"}"
}

func sortedKeys[M ~map[string]V, V any](m M) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// WriteProm writes the registry in the Prometheus text exposition format:
// counters and gauges one line each, summaries as quantile series plus _sum
// and _count.
func (r *Registry) WriteProm(w io.Writer) error {
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	summaries := make(map[string]*Summary, len(r.summaries))
	for k, v := range r.summaries {
		summaries[k] = v
	}
	r.mu.Unlock()

	typed := make(map[string]bool)
	typeLine := func(name, typ string) string {
		base := baseName(name)
		if typed[base] {
			return ""
		}
		typed[base] = true
		return "# TYPE " + base + " " + typ + "\n"
	}
	var b strings.Builder
	for _, name := range sortedKeys(counters) {
		b.WriteString(typeLine(name, "counter"))
		fmt.Fprintf(&b, "%s %d\n", name, counters[name].Value())
	}
	for _, name := range sortedKeys(gauges) {
		b.WriteString(typeLine(name, "gauge"))
		fmt.Fprintf(&b, "%s %g\n", name, gauges[name].Value())
	}
	for _, name := range sortedKeys(summaries) {
		st := summaries[name].Stats()
		b.WriteString(typeLine(name, "summary"))
		fmt.Fprintf(&b, "%s %g\n", labelled(name, "quantile", "0.5"), st.P50)
		fmt.Fprintf(&b, "%s %g\n", labelled(name, "quantile", "0.95"), st.P95)
		fmt.Fprintf(&b, "%s %g\n", labelled(name, "quantile", "0.99"), st.P99)
		fmt.Fprintf(&b, "%s_sum%s %g\n", baseName(name), labelSuffix(name), st.Sum)
		fmt.Fprintf(&b, "%s_count%s %d\n", baseName(name), labelSuffix(name), st.Count)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func labelSuffix(name string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[i:]
	}
	return ""
}

// Dump is the JSON form of a registry: one schema shared by live nodes
// (scraped over HTTP) and simulation runs (`bbsim -metrics-out`).
type Dump struct {
	Counters  map[string]uint64       `json:"counters"`
	Gauges    map[string]float64      `json:"gauges"`
	Summaries map[string]SummaryStats `json:"summaries"`
}

// Snapshot digests every metric into a Dump.
func (r *Registry) Snapshot() Dump {
	r.mu.Lock()
	d := Dump{
		Counters:  make(map[string]uint64, len(r.counters)),
		Gauges:    make(map[string]float64, len(r.gauges)),
		Summaries: make(map[string]SummaryStats, len(r.summaries)),
	}
	summaries := make(map[string]*Summary, len(r.summaries))
	for k, v := range r.counters {
		d.Counters[k] = v.Value()
	}
	for k, v := range r.gauges {
		d.Gauges[k] = v.Value()
	}
	for k, v := range r.summaries {
		summaries[k] = v
	}
	r.mu.Unlock()
	for k, v := range summaries {
		d.Summaries[k] = v.Stats()
	}
	return d
}

// WriteJSON writes the Snapshot as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}
