package obsv

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d", c.Value())
	}
	if r.Counter("c_total") != c {
		t.Fatal("get-or-create returned a different counter")
	}
	g := r.Gauge("g")
	g.Set(2.5)
	g.Add(-1)
	if g.Value() != 1.5 {
		t.Fatalf("gauge = %v", g.Value())
	}
}

func TestSummaryStatsNearestRank(t *testing.T) {
	r := NewRegistry()
	s := r.Summary("lat", 0)
	for i := 1; i <= 100; i++ {
		s.Observe(float64(i))
	}
	st := s.Stats()
	if st.Count != 100 || st.Sum != 5050 {
		t.Fatalf("count/sum = %d/%v", st.Count, st.Sum)
	}
	// Same nearest-rank rule as internal/metrics.percentile.
	if st.P50 != 50 || st.P95 != 95 || st.P99 != 99 {
		t.Fatalf("quantiles = %v/%v/%v, want 50/95/99", st.P50, st.P95, st.P99)
	}
}

func TestSummaryRingWrap(t *testing.T) {
	r := NewRegistry()
	s := r.Summary("lat", 4)
	for i := 1; i <= 10; i++ {
		s.Observe(float64(i))
	}
	st := s.Stats()
	// Count and sum cover everything; quantiles only the retained window
	// (7, 8, 9, 10).
	if st.Count != 10 || st.Sum != 55 {
		t.Fatalf("count/sum = %d/%v", st.Count, st.Sum)
	}
	if st.P50 != 8 || st.P99 != 10 {
		t.Fatalf("windowed quantiles = %v/%v, want 8/10", st.P50, st.P99)
	}
}

func TestEmptySummaryStats(t *testing.T) {
	r := NewRegistry()
	if st := r.Summary("lat", 2).Stats(); st != (SummaryStats{}) {
		t.Fatalf("empty summary stats = %+v", st)
	}
}

func TestQuantileMatchesMetricsRounding(t *testing.T) {
	ten := make([]float64, 10)
	for i := range ten {
		ten[i] = float64(i + 1)
	}
	// round(0.95*10) = 10 → index 9, the max (mirrors
	// metrics.TestPercentileNearestRankRounding).
	if got := quantile(ten, 0.95); got != 10 {
		t.Fatalf("p95 of 1..10 = %v, want 10", got)
	}
	if got := quantile(ten[:1], 0.01); got != 1 {
		t.Fatalf("low quantile of singleton = %v, want 1", got)
	}
}

func TestWritePromFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter(`bbcast_tx_total{kind="data"}`).Add(3)
	r.Counter(`bbcast_tx_total{kind="gossip"}`).Add(7)
	r.Gauge("bbcast_overlay_active").Set(1)
	s := r.Summary("bbcast_delivery_latency_seconds", 8)
	s.Observe(0.25)
	var b strings.Builder
	if err := r.WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE bbcast_tx_total counter\n",
		"bbcast_tx_total{kind=\"data\"} 3\n",
		"bbcast_tx_total{kind=\"gossip\"} 7\n",
		"# TYPE bbcast_overlay_active gauge\n",
		"# TYPE bbcast_delivery_latency_seconds summary\n",
		"bbcast_delivery_latency_seconds{quantile=\"0.95\"} 0.25\n",
		"bbcast_delivery_latency_seconds_sum 0.25\n",
		"bbcast_delivery_latency_seconds_count 1\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	if strings.Count(out, "# TYPE bbcast_tx_total") != 1 {
		t.Fatalf("labelled series must share one TYPE line:\n%s", out)
	}
}

func TestSnapshotJSONSchema(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total").Inc()
	r.Gauge("g").Set(0.5)
	r.Summary("s_seconds", 4).Observe(2)
	var b strings.Builder
	if err := r.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var d Dump
	if err := json.Unmarshal([]byte(b.String()), &d); err != nil {
		t.Fatalf("dump does not round-trip: %v", err)
	}
	if d.Counters["c_total"] != 1 || d.Gauges["g"] != 0.5 {
		t.Fatalf("dump = %+v", d)
	}
	if st := d.Summaries["s_seconds"]; st.Count != 1 || st.P50 != 2 {
		t.Fatalf("summary dump = %+v", st)
	}
}

func TestLabelHelpers(t *testing.T) {
	if got := labelled("a_total", "k", "v"); got != `a_total{k="v"}` {
		t.Fatalf("labelled = %q", got)
	}
	if got := labelled(`a_total{k="v"}`, "e", "x"); got != `a_total{k="v",e="x"}` {
		t.Fatalf("labelled append = %q", got)
	}
	if baseName(`a_total{k="v"}`) != "a_total" || labelSuffix(`a_total{k="v"}`) != `{k="v"}` {
		t.Fatal("baseName/labelSuffix disagree")
	}
}

func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				r.Counter("c_total").Inc()
				r.Gauge("g").Add(1)
				r.Summary("s", 64).Observe(float64(j))
				if j%100 == 0 {
					r.Snapshot()
				}
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("c_total").Value(); got != 4000 {
		t.Fatalf("counter = %d, want 4000", got)
	}
	if got := r.Gauge("g").Value(); got != 4000 {
		t.Fatalf("gauge = %v, want 4000", got)
	}
	if st := r.Summary("s", 64).Stats(); st.Count != 4000 {
		t.Fatalf("summary count = %d, want 4000", st.Count)
	}
}
