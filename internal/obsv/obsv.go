// Package obsv defines the unified observability layer shared by the
// simulator and live deployments: a pluggable Observer interface fed
// exactly once per protocol event at the emitting layer, a composite for
// fan-out to several consumers, and a dependency-free metrics registry
// (counters, gauges, bounded summaries) with Prometheus-style text and JSON
// exposition.
//
// Event sources:
//
//   - packet tx: the transport layer (the simulated radio medium or the UDP
//     socket) emits one event per frame actually put on the air;
//   - packet rx: the protocol emits one event per frame the host hands it;
//   - inject: the workload source (the simulation scheduler or a live
//     Broadcast call) emits one event per originated message;
//   - accept: the protocol emits one event per application-level acceptance
//     (the paper's accept() upcall), including the originator's own when
//     DeliverOwn is set;
//   - forward suppressed: the protocol emits one event per redundant data
//     frame it suppressed (already held or tombstoned) instead of forwarding;
//   - role change: the protocol emits one event per committed overlay role
//     transition;
//   - suspicion: the MUTE/VERBOSE detectors emit raise and clear
//     transitions, TRUST emits raises for direct deviations;
//   - sig verify: the protocol emits one event per signature verification,
//     with outcome and wall-clock duration (virtual-time zero under
//     simulation);
//   - queue depth: the protocol samples its internal queues (message store,
//     recovery backlog, neighbour table, armed expectations) once per
//     maintenance tick.
//
// Consumers (the metrics collector, the trace writer, the invariant checker,
// the metrics registry) implement Observer and are fanned out to with Multi;
// none of them re-derives events from protocol internals.
package obsv

import (
	"time"

	"bbcast/internal/overlay"
	"bbcast/internal/wire"
)

// Detector names the failure detector that raised or cleared a suspicion.
type Detector string

// Detectors.
const (
	DetectorMute    Detector = "mute"
	DetectorVerbose Detector = "verbose"
	DetectorTrust   Detector = "trust"
)

// Queue names a protocol-internal queue sampled for depth.
type Queue string

// Sampled queues.
const (
	// QueueStore is the message-store size: held payloads plus retained
	// tombstones (the table MaxStore caps).
	QueueStore Queue = "store"
	// QueueMissing is the number of gossip-advertised messages still being
	// recovered.
	QueueMissing Queue = "missing"
	// QueueNeighbors is the neighbour-table size.
	QueueNeighbors Queue = "neighbors"
	// QueueExpectations is the number of armed MUTE expectations.
	QueueExpectations Queue = "expectations"
	// QueueReqSeen is the number of tracked per-requester request records.
	QueueReqSeen Queue = "reqseen"
	// QueueLinkQual is the number of tracked per-neighbour link-quality
	// estimator entries.
	QueueLinkQual Queue = "linkqual"
)

// AdaptiveTimer names a protocol timer the link-quality estimator drives.
type AdaptiveTimer string

// Adaptive timers.
const (
	// TimerGossip is the gossip-round period.
	TimerGossip AdaptiveTimer = "gossip"
	// TimerMute is the MUTE failure-detector expectation timeout.
	TimerMute AdaptiveTimer = "mute"
)

// AdmissionEvent names one admission-control or state-GC action taken to keep
// a node's resources bounded under hostile traffic.
type AdmissionEvent string

// Admission events.
const (
	// AdmitRateLimit is a packet dropped because its sender exceeded the
	// per-sender token-bucket rate.
	AdmitRateLimit AdmissionEvent = "rate-limit"
	// AdmitDedup is a duplicate suppressed by byte comparison before any
	// signature verification was spent on it.
	AdmitDedup AdmissionEvent = "dedup"
	// AdmitGossipTrim is a received gossip batch truncated to the per-packet
	// entry cap.
	AdmitGossipTrim AdmissionEvent = "gossip-trim"
	// AdmitNeighborEvict is a neighbour-table entry evicted (LRU) to stay
	// under the configured cap.
	AdmitNeighborEvict AdmissionEvent = "neighbor-evict"
	// AdmitStoreEvict is a message-store entry evicted (quiescence GC or the
	// hard cap) rather than purged to a tombstone.
	AdmitStoreEvict AdmissionEvent = "store-evict"
	// AdmitMissingReject is a new recovery entry refused because the missing
	// table was full.
	AdmitMissingReject AdmissionEvent = "missing-reject"
	// AdmitReqSeenExpire is a request-count record dropped by TTL expiry or
	// cap eviction.
	AdmitReqSeenExpire AdmissionEvent = "reqseen-expire"
	// AdmitIngressDrop is a datagram dropped at the transport because the
	// protocol layer was saturated.
	AdmitIngressDrop AdmissionEvent = "ingress-drop"
)

// SyncEvent names one catch-up sync action.
type SyncEvent string

// Sync events.
const (
	// SyncReqSent is a rejoiner's SYNC-REQ transmission (entries counts the
	// have-summary ids it carried).
	SyncReqSent SyncEvent = "req-sent"
	// SyncServed is a responder's SYNC-RESP transmission (entries counts the
	// messages shipped; bytes their on-air size).
	SyncServed SyncEvent = "served"
	// SyncApplied is a rejoiner accepting a SYNC-RESP batch (entries counts
	// the messages newly accepted from it).
	SyncApplied SyncEvent = "applied"
	// SyncAbandoned is a rejoiner giving up catch-up (attempt cap reached
	// without completing a sync round).
	SyncAbandoned SyncEvent = "abandoned"
)

// Observer receives protocol and transport events. Implementations must be
// cheap and must not call back into the protocol; hot-path methods (tx, rx,
// sig verify) must not allocate. All methods are invoked synchronously from
// the emitting goroutine: single-threaded under simulation, under the node
// lock on a live transport.
type Observer interface {
	// OnPacketTx is one frame put on the air by node. meta carries the
	// frame's causal metadata: its frame id, the reception that caused it,
	// the cause tag and (for data) hop count and payload digest.
	OnPacketTx(at time.Duration, node wire.NodeID, kind wire.Kind, id wire.MsgID, meta wire.Meta)
	// OnPacketRx is one frame the host delivered to node's protocol. Under
	// simulation meta is the transmitter's; on a live transport it is zero
	// (causal metadata does not cross the wire).
	OnPacketRx(at time.Duration, node wire.NodeID, kind wire.Kind, id wire.MsgID, meta wire.Meta)
	// OnInject is one application message originated at node.
	OnInject(at time.Duration, node wire.NodeID, id wire.MsgID)
	// OnAccept is one application-level acceptance at node. The payload is
	// only valid for the duration of the call. meta is the metadata of the
	// frame that completed delivery (hops, recovery attribution, digest); an
	// originator's own acceptance carries Hops 0 and CauseOrigin.
	OnAccept(at time.Duration, node wire.NodeID, id wire.MsgID, payload []byte, meta wire.Meta)
	// OnForwardSuppressed is one data frame node received for a message it
	// already held (or had purged): the redundant arrival was suppressed
	// rather than re-forwarded. meta is the suppressed frame's metadata.
	OnForwardSuppressed(at time.Duration, node wire.NodeID, id wire.MsgID, meta wire.Meta)
	// OnRoleChange is one committed overlay role transition at node.
	OnRoleChange(at time.Duration, node wire.NodeID, role overlay.Role)
	// OnSuspicion is a suspicion transition: node's detector started
	// (raised=true) or stopped (raised=false) suspecting subject.
	OnSuspicion(at time.Duration, node, subject wire.NodeID, detector Detector, raised bool)
	// OnSigVerify is one signature verification at node with its outcome and
	// duration (zero under virtual time).
	OnSigVerify(at time.Duration, node wire.NodeID, ok bool, took time.Duration)
	// OnQueueDepth is one periodic sample of a protocol-internal queue.
	OnQueueDepth(at time.Duration, node wire.NodeID, queue Queue, depth int)
	// OnAdmission is one admission-control or state-GC action at node (a
	// rate-limited packet, a verify-free dedup, an eviction, an expiry, an
	// ingress drop).
	OnAdmission(at time.Duration, node wire.NodeID, event AdmissionEvent)
	// OnAdaptation is one committed adaptive-timer change at node: the named
	// timer moved from old to new (both within its configured bounds).
	OnAdaptation(at time.Duration, node wire.NodeID, timer AdaptiveTimer, old, new time.Duration)
	// OnRetry is one bounded-retransmission action at node for a missing
	// message: attempt counts from 1; abandoned marks the give-up transition
	// (the attempt cap was reached; no request was sent).
	OnRetry(at time.Duration, node wire.NodeID, id wire.MsgID, attempt int, abandoned bool)
	// OnSync is one catch-up sync action at node involving peer: a SYNC-REQ
	// sent, a SYNC-RESP served or applied, or the rejoiner abandoning.
	// entries and bytes quantify the event (see SyncEvent).
	OnSync(at time.Duration, node, peer wire.NodeID, event SyncEvent, entries, bytes int)
	// OnRejoin is one amnesiac rejoin at node: its volatile state was wiped
	// and re-initialized; restored counts the dedup tombstones recovered
	// from the durable store (0 without persistence).
	OnRejoin(at time.Duration, node wire.NodeID, restored int)
}

// Nop is a no-op Observer. Embed it to implement only the events a consumer
// cares about.
type Nop struct{}

// OnPacketTx implements Observer.
func (Nop) OnPacketTx(time.Duration, wire.NodeID, wire.Kind, wire.MsgID, wire.Meta) {}

// OnPacketRx implements Observer.
func (Nop) OnPacketRx(time.Duration, wire.NodeID, wire.Kind, wire.MsgID, wire.Meta) {}

// OnInject implements Observer.
func (Nop) OnInject(time.Duration, wire.NodeID, wire.MsgID) {}

// OnAccept implements Observer.
func (Nop) OnAccept(time.Duration, wire.NodeID, wire.MsgID, []byte, wire.Meta) {}

// OnForwardSuppressed implements Observer.
func (Nop) OnForwardSuppressed(time.Duration, wire.NodeID, wire.MsgID, wire.Meta) {}

// OnRoleChange implements Observer.
func (Nop) OnRoleChange(time.Duration, wire.NodeID, overlay.Role) {}

// OnSuspicion implements Observer.
func (Nop) OnSuspicion(time.Duration, wire.NodeID, wire.NodeID, Detector, bool) {}

// OnSigVerify implements Observer.
func (Nop) OnSigVerify(time.Duration, wire.NodeID, bool, time.Duration) {}

// OnQueueDepth implements Observer.
func (Nop) OnQueueDepth(time.Duration, wire.NodeID, Queue, int) {}

// OnAdmission implements Observer.
func (Nop) OnAdmission(time.Duration, wire.NodeID, AdmissionEvent) {}

// OnAdaptation implements Observer.
func (Nop) OnAdaptation(time.Duration, wire.NodeID, AdaptiveTimer, time.Duration, time.Duration) {}

// OnRetry implements Observer.
func (Nop) OnRetry(time.Duration, wire.NodeID, wire.MsgID, int, bool) {}

// OnSync implements Observer.
func (Nop) OnSync(time.Duration, wire.NodeID, wire.NodeID, SyncEvent, int, int) {}

// OnRejoin implements Observer.
func (Nop) OnRejoin(time.Duration, wire.NodeID, int) {}

// multi fans every event out to each member, in order.
type multi []Observer

// Multi composes observers into one. Nil members are dropped; Multi(nil...)
// returns nil and a single member is returned unwrapped, so the caller can
// always test the result against nil to skip emission entirely.
func Multi(obs ...Observer) Observer {
	kept := make(multi, 0, len(obs))
	for _, o := range obs {
		if o != nil {
			kept = append(kept, o)
		}
	}
	switch len(kept) {
	case 0:
		return nil
	case 1:
		return kept[0]
	default:
		return kept
	}
}

func (m multi) OnPacketTx(at time.Duration, node wire.NodeID, kind wire.Kind, id wire.MsgID, meta wire.Meta) {
	for _, o := range m {
		o.OnPacketTx(at, node, kind, id, meta)
	}
}

func (m multi) OnPacketRx(at time.Duration, node wire.NodeID, kind wire.Kind, id wire.MsgID, meta wire.Meta) {
	for _, o := range m {
		o.OnPacketRx(at, node, kind, id, meta)
	}
}

func (m multi) OnInject(at time.Duration, node wire.NodeID, id wire.MsgID) {
	for _, o := range m {
		o.OnInject(at, node, id)
	}
}

func (m multi) OnAccept(at time.Duration, node wire.NodeID, id wire.MsgID, payload []byte, meta wire.Meta) {
	for _, o := range m {
		o.OnAccept(at, node, id, payload, meta)
	}
}

func (m multi) OnForwardSuppressed(at time.Duration, node wire.NodeID, id wire.MsgID, meta wire.Meta) {
	for _, o := range m {
		o.OnForwardSuppressed(at, node, id, meta)
	}
}

func (m multi) OnRoleChange(at time.Duration, node wire.NodeID, role overlay.Role) {
	for _, o := range m {
		o.OnRoleChange(at, node, role)
	}
}

func (m multi) OnSuspicion(at time.Duration, node, subject wire.NodeID, detector Detector, raised bool) {
	for _, o := range m {
		o.OnSuspicion(at, node, subject, detector, raised)
	}
}

func (m multi) OnSigVerify(at time.Duration, node wire.NodeID, ok bool, took time.Duration) {
	for _, o := range m {
		o.OnSigVerify(at, node, ok, took)
	}
}

func (m multi) OnQueueDepth(at time.Duration, node wire.NodeID, queue Queue, depth int) {
	for _, o := range m {
		o.OnQueueDepth(at, node, queue, depth)
	}
}

func (m multi) OnAdmission(at time.Duration, node wire.NodeID, event AdmissionEvent) {
	for _, o := range m {
		o.OnAdmission(at, node, event)
	}
}

func (m multi) OnAdaptation(at time.Duration, node wire.NodeID, timer AdaptiveTimer, old, new time.Duration) {
	for _, o := range m {
		o.OnAdaptation(at, node, timer, old, new)
	}
}

func (m multi) OnRetry(at time.Duration, node wire.NodeID, id wire.MsgID, attempt int, abandoned bool) {
	for _, o := range m {
		o.OnRetry(at, node, id, attempt, abandoned)
	}
}

func (m multi) OnSync(at time.Duration, node, peer wire.NodeID, event SyncEvent, entries, bytes int) {
	for _, o := range m {
		o.OnSync(at, node, peer, event, entries, bytes)
	}
}

func (m multi) OnRejoin(at time.Duration, node wire.NodeID, restored int) {
	for _, o := range m {
		o.OnRejoin(at, node, restored)
	}
}

// skipAccepts suppresses accept events (used for nodes whose deliveries must
// not count, e.g. Byzantine nodes in a measured simulation).
type skipAccepts struct{ Observer }

func (skipAccepts) OnAccept(time.Duration, wire.NodeID, wire.MsgID, []byte, wire.Meta) {}

// SkipAccepts wraps o so accept events are dropped; every other event passes
// through. Returns nil for a nil o.
func SkipAccepts(o Observer) Observer {
	if o == nil {
		return nil
	}
	return skipAccepts{o}
}
