package core

import (
	"testing"
	"time"

	"bbcast/internal/env"
	"bbcast/internal/persist"
	"bbcast/internal/sig"
	"bbcast/internal/sim"
	"bbcast/internal/wire"
)

// newPersistHarness is newHarness with a MemDevice-backed durable store
// attached, the way the runner attaches one when Config.Persist is on.
func newPersistHarness(t *testing.T, selfID wire.NodeID, cfg Config) (*harness, *persist.MemDevice) {
	t.Helper()
	cfg.Persist = true
	dev := &persist.MemDevice{}
	st, err := persist.Open(dev)
	if err != nil {
		t.Fatal(err)
	}
	h := &harness{t: t, eng: sim.New(1), scheme: sig.NewHMAC(16, 7)}
	h.p = New(cfg, Deps{
		ID:     selfID,
		Clock:  env.SimClock{Eng: h.eng},
		Send:   func(pkt *wire.Packet) { h.sent = append(h.sent, pkt) },
		Scheme: h.scheme,
		Rand:   h.eng.SubRand(uint64(selfID)),
		Store:  st,
		Deliver: func(origin wire.NodeID, id wire.MsgID, payload []byte) {
			h.delivered = append(h.delivered, id)
		},
	})
	t.Cleanup(h.p.Stop)
	return h, dev
}

func TestRejoinRestoresSeqAndDedup(t *testing.T) {
	h, dev := newPersistHarness(t, 0, testConfig())
	a := h.p.Broadcast([]byte("one"))
	b := h.p.Broadcast([]byte("two"))
	foreign := h.dataFrom(3, 1, []byte("from elsewhere"))
	h.p.HandlePacket(foreign)
	if len(h.delivered) != 3 {
		t.Fatalf("delivered %d messages before the crash, want 3", len(h.delivered))
	}

	// The amnesiac reboot: volatile state gone, the device re-opened.
	st, err := persist.Open(dev)
	if err != nil {
		t.Fatal(err)
	}
	h.p.SetStore(st)
	h.p.Rejoin()
	h.delivered = nil

	c := h.p.Broadcast([]byte("after"))
	if c.Seq <= b.Seq {
		t.Fatalf("sequence went backwards across rejoin: %d after %d (ids %v %v)", c.Seq, b.Seq, a, c)
	}
	h.delivered = nil
	h.p.HandlePacket(foreign)
	if len(h.delivered) != 0 {
		t.Fatalf("restored tombstones did not stop re-delivery: %v", h.delivered)
	}
}

func TestRejoinWithoutStoreIsAmnesiac(t *testing.T) {
	h := newHarness(t, 0, testConfig())
	a := h.p.Broadcast([]byte("one"))
	foreign := h.dataFrom(3, 1, []byte("from elsewhere"))
	h.p.HandlePacket(foreign)

	h.p.Rejoin()
	h.delivered = nil

	if b := h.p.Broadcast([]byte("again")); b.Seq != a.Seq {
		t.Fatalf("amnesiac node should reuse seq %d, got %d", a.Seq, b.Seq)
	}
	h.p.HandlePacket(foreign)
	found := false
	for _, id := range h.delivered {
		if id == foreign.ID() {
			found = true
		}
	}
	if !found {
		t.Fatal("truly amnesiac node should have re-delivered the old message")
	}
}

func TestSyncReqServedWithMissingEntries(t *testing.T) {
	h := newHarness(t, 0, testConfig())
	held := h.p.Broadcast([]byte("you missed this"))
	known := h.p.Broadcast([]byte("you have this"))
	h.introduceNeighbors(map[wire.NodeID]*wire.OverlayState{5: {}})
	h.sent = nil

	h.p.HandlePacket(&wire.Packet{
		Kind:     wire.KindSyncReq,
		Sender:   5,
		TTL:      1,
		Target:   0,
		Origin:   wire.NoNode,
		SyncHave: []wire.MsgID{known},
	})
	resps := h.sentOfKind(wire.KindSyncResp)
	if len(resps) != 1 {
		t.Fatalf("sent %d sync responses, want 1", len(resps))
	}
	resp := resps[0]
	if resp.Target != 5 {
		t.Fatalf("response targeted %d, want 5", resp.Target)
	}
	if len(resp.SyncEntries) != 1 || resp.SyncEntries[0].ID != held {
		t.Fatalf("response entries %v, want exactly %v", resp.SyncEntries, held)
	}
	if !h.scheme.Verify(0, wire.DataSigBytes(held, resp.SyncEntries[0].Payload), resp.SyncEntries[0].Sig) {
		t.Fatal("served entry's data signature does not verify")
	}
}

func TestCatchUpSyncRoundTrip(t *testing.T) {
	cfg := testConfig()
	cfg.CatchUpSync = true
	h := newHarness(t, 0, cfg)
	h.p.Rejoin()
	if h.p.Synced() {
		t.Fatal("rejoin with CatchUpSync should arm the sync loop")
	}
	// The rejoiner hears its neighbourhood again, then the first sync round
	// fires after the retry delay.
	h.introduceNeighbors(map[wire.NodeID]*wire.OverlayState{3: {}})
	h.sent = nil
	h.run(cfg.syncRetryDelay() + 100*time.Millisecond)
	reqs := h.sentOfKind(wire.KindSyncReq)
	if len(reqs) == 0 {
		t.Fatal("armed rejoiner with an admitted neighbour never sent a SYNC-REQ")
	}
	if reqs[0].Target != 3 {
		t.Fatalf("SYNC-REQ targeted %d, want 3", reqs[0].Target)
	}

	id := wire.MsgID{Origin: 4, Seq: 9}
	payload := []byte("missed while down")
	h.delivered = nil
	h.p.HandlePacket(&wire.Packet{
		Kind:   wire.KindSyncResp,
		Sender: 3,
		TTL:    1,
		Target: 0,
		Origin: wire.NoNode,
		SyncEntries: []wire.SyncEntry{{
			ID:        id,
			Payload:   payload,
			Sig:       h.scheme.Sign(4, wire.DataSigBytes(id, payload)),
			HeaderSig: h.scheme.Sign(4, wire.HeaderSigBytes(id)),
		}},
	})
	if len(h.delivered) != 1 || h.delivered[0] != id {
		t.Fatalf("sync response not applied: delivered %v", h.delivered)
	}
	if !h.p.Holds(id) {
		t.Fatal("applied sync entry not held")
	}
	// A short batch means the neighbour had nothing else: caught up.
	if !h.p.Synced() {
		t.Fatal("short batch should complete catch-up")
	}
}

func TestSyncRespWithBadSignatureRejected(t *testing.T) {
	cfg := testConfig()
	cfg.CatchUpSync = true
	h := newHarness(t, 0, cfg)
	h.p.Rejoin()
	id := wire.MsgID{Origin: 4, Seq: 9}
	h.p.HandlePacket(&wire.Packet{
		Kind:   wire.KindSyncResp,
		Sender: 3,
		TTL:    1,
		Target: 0,
		Origin: wire.NoNode,
		SyncEntries: []wire.SyncEntry{{
			ID:      id,
			Payload: []byte("forged"),
			Sig:     []byte("not a signature"),
		}},
	})
	if len(h.delivered) != 0 {
		t.Fatalf("forged sync entry delivered: %v", h.delivered)
	}
	if h.p.Holds(id) {
		t.Fatal("forged sync entry stored")
	}
}
