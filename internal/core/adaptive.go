package core

// Adaptive timing under hostile links (ISSUE 6 tentpole): a per-neighbour
// link-quality estimator scores how many of the gossip rounds we expected
// from each neighbour actually arrived, and an AIMD controller moves the
// gossip period and the MUTE expectation timeout between hard configured
// bounds — gossiping faster and suspecting slower while the channel is bad,
// returning additively to the nominal values once it recovers. A bounded
// retransmission chain with exponential backoff re-requests missing messages
// a capped number of times before handing recovery back to the natural
// gossip cycle.
//
// Nothing here draws randomness on the estimator or AIMD path, and under a
// clean channel the quality stays above the degradation threshold so the
// timers never move: with AdaptiveTiming on but links healthy, the protocol
// is bit-identical to the static configuration.

import (
	"sort"
	"time"

	"bbcast/internal/obsv"
	"bbcast/internal/wire"
)

const (
	// linkQualAlpha is the EWMA weight of each maintenance window's
	// observed/expected gossip-arrival ratio.
	linkQualAlpha = 0.3
	// linkQualLow is the aggregate quality below which the timers take one
	// multiplicative step toward their degraded settings; at or above it they
	// recover additively toward nominal (the AIMD asymmetry: back off fast,
	// return cautiously).
	linkQualLow = 0.65
)

// linkEstimate is one neighbour's link-quality state: the gossip arrivals
// counted in the current maintenance window and the EWMA quality in [0, 1].
type linkEstimate struct {
	seen int
	q    float64
}

// noteGossipArrival counts one gossip packet heard from a neighbour. New
// links start optimistic (q=1): a neighbour is only tracked once it has
// proven it can deliver at least one packet, and pessimistic starts would
// make every join look like a degraded channel.
func (p *Protocol) noteGossipArrival(from wire.NodeID) {
	if !p.cfg.AdaptiveTiming {
		return
	}
	le := p.linkQual[from]
	if le == nil {
		if p.neighbors[from] == nil {
			return // estimator entries never outnumber the neighbour table
		}
		le = &linkEstimate{q: 1}
		p.linkQual[from] = le
	}
	le.seen++
}

// adaptTimers rolls every link estimator's window and applies one AIMD step
// to the adaptive timers. Runs once per maintenance tick, after neighbour
// expiry so dead links have already been dropped.
func (p *Protocol) adaptTimers() {
	if !p.cfg.AdaptiveTiming {
		return
	}
	// One gossip round is expected per GossipInterval; scale to the
	// maintenance window the counters cover. Expectations are measured
	// against the nominal interval — neighbours under the same degraded
	// channel gossip faster, which only helps the ratio.
	expected := 1.0
	if p.cfg.GossipInterval > 0 && p.cfg.MaintenanceInterval > 0 {
		if e := float64(p.cfg.MaintenanceInterval) / float64(p.cfg.GossipInterval); e > 1 {
			expected = e
		}
	}
	qs := make([]float64, 0, len(p.linkQual))
	for id, le := range p.linkQual { //bbvet:unordered per-entry EWMA updates commute and the collected set is sorted below; the loop emits nothing
		if p.neighbors[id] == nil {
			delete(p.linkQual, id)
			continue
		}
		ratio := float64(le.seen) / expected
		if ratio > 1 {
			ratio = 1
		}
		le.q = (1-linkQualAlpha)*le.q + linkQualAlpha*ratio
		le.seen = 0
		qs = append(qs, le.q)
	}
	if len(qs) == 0 {
		return // no links under observation: leave the timers alone
	}
	// Aggregate with the (upper) median, not the mean: a Byzantine minority of
	// mute neighbours looks exactly like a set of dead links, and a mean would
	// let them drag the aggregate down — inflating the MUTE timeout and
	// delaying their own eviction. Genuine channel degradation hits every link
	// at once, so the median still falls with it.
	sort.Float64s(qs)
	quality := qs[len(qs)/2]

	gMin, gMax := p.cfg.GossipBounds()
	mMin, mMax := p.cfg.MuteTimeoutBounds()
	oldG, oldM := p.gossipPeriod, p.mute.Timeout()
	var newG, newM time.Duration
	if quality < linkQualLow {
		// Multiplicative step into the degraded regime: gossip 25% faster
		// (more advertisement rounds survive a loss epoch) and stretch the
		// MUTE timeout by 50% (a late arrival on a bursty link is loss, not
		// muteness — suspecting correct neighbours dissolves the overlay
		// exactly when it is needed most).
		newG = oldG * 3 / 4
		newM = oldM * 3 / 2
	} else {
		// Additive recovery toward nominal, one small step per tick.
		newG = stepToward(oldG, p.cfg.GossipInterval, p.cfg.GossipInterval/8)
		newM = stepToward(oldM, p.cfg.Mute.Timeout, p.cfg.Mute.Timeout/8)
	}
	newG = clampDuration(newG, gMin, gMax)
	newM = clampDuration(newM, mMin, mMax)
	if newG != oldG {
		p.gossipPeriod = newG
		p.observeAdaptation(obsv.TimerGossip, oldG, newG)
	}
	if newM != oldM {
		p.mute.SetTimeout(newM)
		p.observeAdaptation(obsv.TimerMute, oldM, newM)
	}
}

// stepToward moves cur one additive step toward nominal, never overshooting.
func stepToward(cur, nominal, step time.Duration) time.Duration {
	if step <= 0 {
		return nominal
	}
	switch {
	case cur < nominal:
		cur += step
		if cur > nominal {
			cur = nominal
		}
	case cur > nominal:
		cur -= step
		if cur < nominal {
			cur = nominal
		}
	}
	return cur
}

func clampDuration(d, min, max time.Duration) time.Duration {
	if d < min {
		return min
	}
	if d > max {
		return max
	}
	return d
}

// observeAdaptation commits one adaptive-timer change: the counter and the
// observer event are emitted here and nowhere else (obsvonce's designated
// source for OnAdaptation).
func (p *Protocol) observeAdaptation(timer obsv.AdaptiveTimer, old, new time.Duration) {
	p.stats.Adaptations++
	if p.deps.Obs != nil {
		p.deps.Obs.OnAdaptation(p.deps.Clock.Now(), p.deps.ID, timer, old, new)
	}
}

// observeRetry records one retransmission action (obsvonce's designated
// source for OnRetry).
func (p *Protocol) observeRetry(id wire.MsgID, attempt int, abandoned bool) {
	if abandoned {
		p.stats.RetriesAbandoned++
	} else {
		p.stats.RetriesSent++
	}
	if p.deps.Obs != nil {
		p.deps.Obs.OnRetry(p.deps.Clock.Now(), p.deps.ID, id, attempt, abandoned)
	}
}

// retryBackoff returns the backoff before retransmission attempt+1:
// RetryBackoffBase doubled per completed attempt, capped at RetryBackoffMax.
func (p *Protocol) retryBackoff(attempt int) time.Duration {
	base := p.cfg.RetryBackoffBase
	if base <= 0 {
		base = p.cfg.RequestDelay
	}
	if base <= 0 {
		base = 400 * time.Millisecond
	}
	max := p.cfg.RetryBackoffMax
	if max <= 0 {
		max = 8 * base
	}
	d := base
	for i := 0; i < attempt && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	return d
}

// armRetries starts the bounded retransmission chain for a missing message,
// once per entry: the first request that actually fires arms it, and later
// firing requests for other gossipers find it armed.
func (p *Protocol) armRetries(id wire.MsgID, miss *pendingMiss) {
	if p.cfg.RetryMaxAttempts <= 0 || miss.retryArmed {
		return
	}
	miss.retryArmed = true
	p.scheduleRetryStep(id, miss)
}

// scheduleRetryStep schedules the next retransmission for miss after the
// current backoff plus a deterministic jitter (co-located recoverers must not
// re-collide every attempt). At fire time: if the entry resolved, stop; if
// the attempt cap is reached, give up explicitly (the entry stays — later
// gossip rounds still retry recovery naturally); otherwise re-request from
// the next known gossiper, round-robin over the sorted set.
func (p *Protocol) scheduleRetryStep(id wire.MsgID, miss *pendingMiss) {
	backoff := p.retryBackoff(miss.attempts)
	delay := backoff + time.Duration(p.deps.Rand.Int63n(int64(backoff/4)+1))
	cancel := p.deps.Clock.After(delay, func() {
		if p.stopped {
			return
		}
		if cur, ok := p.missing[id]; !ok || cur != miss {
			return
		}
		if st, held := p.store[id]; held && !st.purged {
			delete(p.missing, id)
			return
		}
		if miss.attempts >= p.cfg.RetryMaxAttempts {
			p.observeRetry(id, miss.attempts, true)
			return
		}
		target := miss.retryTarget(p.cfg.RequestTolerance)
		if target == wire.NoNode {
			// Every known gossiper has already been asked up to the
			// server-side RequestTolerance: one more request would get this
			// node indicted as VERBOSE and cut off from recovery entirely,
			// which is far worse than waiting for the next gossip round.
			p.observeRetry(id, miss.attempts, true)
			return
		}
		miss.attempts++
		miss.gossipers[target]++
		p.stats.RequestsSent++
		p.observeRetry(id, miss.attempts, false)
		p.send(&wire.Packet{
			Kind:   wire.KindRequest,
			TTL:    1,
			Target: target,
			Origin: id.Origin,
			Seq:    id.Seq,
			Sig:    miss.headerSig,
			Meta:   wire.Meta{Parent: miss.srcFrame, Cause: wire.CauseRetry},
		})
		p.scheduleRetryStep(id, miss)
	})
	miss.cancels = append(miss.cancels, cancel)
}

// retryTarget picks the least-asked known gossiper (ties to the lowest id),
// skipping any already asked `limit` times: spreading retries means a mute or
// Byzantine first choice cannot absorb the whole budget, and capping the
// per-target count at the server-side RequestTolerance means an honest
// requester never crosses the line where a correct server would indict it as
// VERBOSE. Returns NoNode when every gossiper is exhausted (limit > 0).
func (m *pendingMiss) retryTarget(limit int) wire.NodeID {
	ids := make([]wire.NodeID, 0, len(m.gossipers))
	for id := range m.gossipers {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	best, bestAsked := wire.NoNode, -1
	for _, id := range ids {
		asked := m.gossipers[id]
		if limit > 0 && asked >= limit {
			continue
		}
		if bestAsked == -1 || asked < bestAsked {
			best, bestAsked = id, asked
		}
	}
	return best
}
