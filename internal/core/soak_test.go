package core

import (
	"runtime"
	"testing"
	"time"

	"bbcast/internal/wire"
)

// Spam soak (ISSUE 4 satellite c): one correct node absorbs two simulated
// hours of combined flooding (fresh signed data), replay (byte-identical
// retransmissions) and forgery (junk signatures from nonexistent origins and
// spoofed senders). Every protocol table must stay under its configured cap
// throughout, and the process heap must not grow past a generous margin —
// the whole point of the admission/GC layer is that this traffic is O(1)
// state, not O(packets).

func TestSpamSoakStateStaysBounded(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}

	cfg := testConfig() // default caps: the production configuration
	h := newHarness(t, 0, cfg)

	// Warm up allocators and protocol steady state before the baseline heap
	// reading so one-time allocations don't count against the margin.
	for seq := wire.Seq(1); seq <= 50; seq++ {
		h.p.HandlePacket(h.dataFrom(1, seq, make([]byte, 64)))
	}
	h.run(5 * time.Second)
	h.sent, h.delivered = nil, nil
	runtime.GC()
	var base runtime.MemStats
	runtime.ReadMemStats(&base)

	// Replay fodder: a handful of real packets harvested up front, re-sent
	// every tick for the whole run (long after their originals are purged
	// and even tombstone-collected).
	replays := make([]*wire.Packet, 0, 8)
	for seq := wire.Seq(100); seq < 108; seq++ {
		pkt := h.dataFrom(2, seq, make([]byte, 64))
		h.p.HandlePacket(pkt)
		replays = append(replays, pkt)
	}

	const (
		hours    = 2
		ticks    = hours * 3600 // one simulated second per tick
		checkGap = 60           // assert bounds once per simulated minute
	)
	payload := make([]byte, 64)
	junkSig := make([]byte, 20)
	seq := wire.Seq(1000)
	for tick := 0; tick < ticks; tick++ {
		// Hot flooder: one sender pushing past AdmitRate — the token bucket
		// must shed the excess every second, indefinitely.
		for j := 0; j < 70; j++ {
			seq++
			h.p.HandlePacket(h.dataFrom(1, seq, payload))
		}
		// Background flood: fresh validly signed messages spread over the
		// other registered peers, together past MaxStore's steady-state
		// headroom, so the store cap and purge/quiescence GC stay engaged.
		for j := 0; j < 28; j++ {
			from := wire.NodeID(2 + (j % 14))
			seq++
			h.p.HandlePacket(h.dataFrom(from, seq, payload))
		}
		// Replay: harvested traffic, byte-identical, from an under-limit
		// sender (so the replays reach the dedup path, not the bucket).
		for _, pkt := range replays {
			cp := pkt.Clone()
			cp.Sender = 2
			h.p.HandlePacket(cp)
		}
		// Forge: junk signatures from origins no PKI ever issued, carried by
		// a rotating window of spoofed senders wide enough to roll the
		// neighbour table past MaxNeighbors many times over.
		for j := 0; j < 10; j++ {
			spoofed := wire.NodeID(16 + (tick*10+j)%1024)
			bogus := wire.MsgID{Origin: wire.NodeID(1 << 20), Seq: wire.Seq(tick*10 + j)}
			h.p.HandlePacket(&wire.Packet{
				Kind: wire.KindGossip, Sender: spoofed, TTL: 1,
				Target: wire.NoNode, Origin: wire.NoNode,
				Gossip: []wire.GossipEntry{{ID: bogus, Sig: junkSig}},
			})
			h.p.HandlePacket(&wire.Packet{
				Kind: wire.KindData, Sender: spoofed, TTL: 1, Target: wire.NoNode,
				Origin: bogus.Origin, Seq: bogus.Seq, Payload: payload, Sig: junkSig,
			})
		}
		h.run(time.Second)
		// The harness accumulates outputs for inspection; a soak would turn
		// that into the test's own leak, so drain it.
		h.sent, h.delivered = nil, nil

		if tick%checkGap != 0 {
			continue
		}
		if n := len(h.p.store); n > cfg.MaxStore {
			t.Fatalf("t=%ds: store %d > MaxStore %d", tick, n, cfg.MaxStore)
		}
		if n := h.p.NeighborCount(); n > cfg.MaxNeighbors {
			t.Fatalf("t=%ds: neighbours %d > MaxNeighbors %d", tick, n, cfg.MaxNeighbors)
		}
		if n := len(h.p.missing); n > cfg.MaxMissing {
			t.Fatalf("t=%ds: missing %d > MaxMissing %d", tick, n, cfg.MaxMissing)
		}
		if n := h.p.ReqSeenCount(); n > cfg.MaxReqSeen {
			t.Fatalf("t=%ds: reqSeen %d > MaxReqSeen %d", tick, n, cfg.MaxReqSeen)
		}
	}

	st := h.p.Stats()
	if st.RateLimited == 0 {
		t.Error("the hot flooder was never rate-limited")
	}
	if st.DedupSkips == 0 {
		t.Error("replays never hit the dedup path")
	}
	if st.Evictions == 0 {
		t.Error("caps never evicted anything despite sustained spam")
	}
	if st.BadSignatures == 0 {
		t.Error("forged packets never counted as bad signatures")
	}
	t.Logf("soak stats after %dh simulated: accepted=%d duplicates=%d bad-sigs=%d "+
		"rate-limited=%d dedup-skips=%d evictions=%d store=%d neighbours=%d",
		hours, st.Accepted, st.Duplicates, st.BadSignatures,
		st.RateLimited, st.DedupSkips, st.Evictions,
		len(h.p.store), h.p.NeighborCount())

	// Heap growth: the margin is deliberately generous (GC timing, map
	// bucket growth to the caps, engine internals) — catching an O(packets)
	// leak, which at ~500k packets would be tens of MB minimum.
	runtime.GC()
	var end runtime.MemStats
	runtime.ReadMemStats(&end)
	if end.HeapAlloc > base.HeapAlloc && end.HeapAlloc-base.HeapAlloc > 32<<20 {
		t.Fatalf("heap grew %d MB over the soak (32 MB margin): state is not bounded",
			(end.HeapAlloc-base.HeapAlloc)>>20)
	}
}
